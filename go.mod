module github.com/flipbit-sim/flipbit

go 1.22
