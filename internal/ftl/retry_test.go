package ftl

import (
	"bytes"
	"testing"
	"time"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

func retrySpec() flash.Spec {
	spec := flash.DefaultSpec()
	spec.PageSize = 64
	spec.NumPages = 8
	spec.Banks = 1 // single bank: the shared fault scope fires deterministically
	return spec
}

// TestTransientExhaustRetiresOntoSpare covers the interaction between the
// core retry budget and the FTL's retry-once retirement: a transient-program
// incident that outlasts the core budget must retire the physical page
// exactly once, remap the logical page onto a spare and complete the write —
// the two retry layers compose without a double-retry storm.
func TestTransientExhaustRetiresOntoSpare(t *testing.T) {
	dev := core.MustNewDevice(retrySpec(), core.WithRetry(2, time.Microsecond))
	f := New(dev, WithSpares(2))

	data := bytes.Repeat([]byte{0x5A}, 64)
	// Budget the incident to the initial failure plus both core retries,
	// so the core gives up exactly as the incident drains.
	dev.Flash().ArmFault(flash.Fault{Kind: flash.FaultTransientProgram, Retries: 3})

	if err := f.Write(0, data); err != nil {
		t.Fatalf("write through transient exhaust: %v", err)
	}
	got := make([]byte, len(data))
	if err := f.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data lost across retirement")
	}

	if n := f.Stats().Retirements; n != 1 {
		t.Errorf("Retirements = %d, want exactly 1", n)
	}
	cs := dev.Stats()
	if cs.RetryAttempts != 2 || cs.RetrySaves != 0 || cs.RetryRetired != 1 {
		t.Errorf("retry stats = attempts %d saves %d retired %d, want 2/0/1",
			cs.RetryAttempts, cs.RetrySaves, cs.RetryRetired)
	}
	fs := dev.Flash().Stats()
	if fs.ProgramFails != 3 {
		t.Errorf("ProgramFails = %d, want 3 (initial + 2 retries, no storm)", fs.ProgramFails)
	}
	if fs.Waits != 2 {
		t.Errorf("Waits = %d, want 2 backoff charges", fs.Waits)
	}
}

// TestTransientRecoveredNoRetirement: an incident inside the core budget is
// absorbed by the retry policy alone — the FTL never sees an error and no
// page is retired.
func TestTransientRecoveredNoRetirement(t *testing.T) {
	dev := core.MustNewDevice(retrySpec(), core.WithRetry(2, time.Microsecond))
	f := New(dev, WithSpares(2))

	data := bytes.Repeat([]byte{0xC3}, 64)
	dev.Flash().ArmFault(flash.Fault{Kind: flash.FaultTransientProgram, Retries: 2})

	if err := f.Write(0, data); err != nil {
		t.Fatalf("write through recoverable transient: %v", err)
	}
	got := make([]byte, len(data))
	if err := f.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data corrupted by recovered transient")
	}

	if n := f.Stats().Retirements; n != 0 {
		t.Errorf("Retirements = %d, want 0", n)
	}
	cs := dev.Stats()
	if cs.RetryAttempts != 2 || cs.RetrySaves != 1 || cs.RetryRetired != 0 {
		t.Errorf("retry stats = attempts %d saves %d retired %d, want 2/1/0",
			cs.RetryAttempts, cs.RetrySaves, cs.RetryRetired)
	}
	if fs := dev.Flash().Stats(); fs.ProgramFails != 2 {
		t.Errorf("ProgramFails = %d, want 2", fs.ProgramFails)
	}
}

// TestTransientEraseRetriedThroughFTL: the FTL's ErasePage routes through
// the core retry policy, so a recoverable transient erase never surfaces.
func TestTransientEraseRetriedThroughFTL(t *testing.T) {
	dev := core.MustNewDevice(retrySpec(), core.WithRetry(2, time.Microsecond))
	f := New(dev, WithSpares(2))

	data := bytes.Repeat([]byte{0x0F}, 64)
	if err := f.Write(0, data); err != nil {
		t.Fatal(err)
	}
	dev.Flash().ArmFault(flash.Fault{Kind: flash.FaultTransientErase, Retries: 2})
	if err := f.ErasePage(0); err != nil {
		t.Fatalf("erase through recoverable transient: %v", err)
	}
	got := make([]byte, len(data))
	if err := f.Read(0, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0xFF {
			t.Fatalf("byte %d = %02x after erase, want FF", i, v)
		}
	}
	cs := dev.Stats()
	if cs.RetrySaves != 1 || cs.RetryRetired != 0 {
		t.Errorf("retry stats = saves %d retired %d, want 1/0", cs.RetrySaves, cs.RetryRetired)
	}
	if fs := dev.Flash().Stats(); fs.EraseFails != 2 {
		t.Errorf("EraseFails = %d, want 2", fs.EraseFails)
	}
}
