package ftl

import (
	"bytes"
	"errors"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// wearOutPhys erases physical page p at the flash layer until it is past
// endurance.
func wearOutPhys(t *testing.T, fl *flash.Device, p int) {
	t.Helper()
	for !fl.WornOut(p) {
		if err := fl.ErasePage(p); err != nil && !errors.Is(err, flash.ErrWornOut) {
			t.Fatal(err)
		}
	}
}

func TestRetirementPersistsAcrossRemount(t *testing.T) {
	dev := core.MustNewDevice(journalSpec())
	f, err := Open(dev, WithSpares(2))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != 10 {
		t.Fatalf("logical pages = %d, want 10 (12 minus 2 spares)", f.NumPages())
	}
	want := fillPages(t, f)

	pp := f.l2p[3]
	if err := f.RetirePage(pp); err != nil {
		t.Fatalf("retire: %v", err)
	}
	if !dev.Flash().Retired(pp) {
		t.Error("retired page not fenced at the flash layer")
	}
	if f.l2p[3] == pp {
		t.Error("logical page 3 still maps to the retired page")
	}
	checkPages(t, f, want)
	if got := f.SparesRemaining(); got != 1 {
		t.Errorf("SparesRemaining = %d, want 1", got)
	}

	f2, err := Open(dev, WithSpares(2))
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	checkPages(t, f2, want)
	if f2.l2p[3] != f.l2p[3] {
		t.Errorf("remap lost: l2p[3] = %d, want %d", f2.l2p[3], f.l2p[3])
	}
	if !dev.Flash().Retired(pp) {
		t.Error("fence not rebuilt after remount")
	}
	h := f2.Health()
	if h.SparesTotal != 2 || h.SparesFree != 1 || h.RetiredData != 1 {
		t.Errorf("health after remount: %+v", h)
	}
}

func TestSpareExhaustion(t *testing.T) {
	dev := core.MustNewDevice(journalSpec())
	f, err := Open(dev, WithSpares(1))
	if err != nil {
		t.Fatal(err)
	}
	want := fillPages(t, f)

	first := f.l2p[0]
	if err := f.RetirePage(first); err != nil {
		t.Fatalf("first retire: %v", err)
	}
	if err := f.RetirePage(f.l2p[1]); !errors.Is(err, ErrNoSpares) {
		t.Fatalf("second retire: got %v, want ErrNoSpares", err)
	}
	checkPages(t, f, want) // a refused retirement must not disturb data

	// Metadata and unmapped pages are refused outright.
	if err := f.RetirePage(f.lay.spare); err == nil {
		t.Error("retiring the swap-scratch page succeeded")
	}
	if err := f.RetirePage(first); err == nil {
		t.Error("retiring an already-retired page succeeded")
	}
}

func TestVolatileSpares(t *testing.T) {
	s := journalSpec()
	s.EnduranceCycles = 4
	dev := core.MustNewDevice(s)
	f := New(dev, WithSpares(2))
	if f.NumPages() != 14 {
		t.Fatalf("logical pages = %d, want 14", f.NumPages())
	}

	wearOutPhys(t, dev.Flash(), f.l2p[0])
	// Erasing the worn logical page retires it onto a blank spare.
	if err := f.ErasePage(0); err != nil {
		t.Fatalf("erase after wear-out: %v", err)
	}
	buf := make([]byte, f.PageSize())
	if err := f.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if !allFF(buf) {
		t.Errorf("retired-and-replaced page not blank: %x", buf)
	}
	if st := f.Stats(); st.Retirements != 1 {
		t.Errorf("stats: %+v", st)
	}
	if got := f.SparesRemaining(); got != 1 {
		t.Errorf("SparesRemaining = %d, want 1", got)
	}
}

// TestWriteRetriesOntoSpare: the health gate refuses a degraded page, the
// FTL retires it and the write lands on the spare — callers never see the
// refusal while spares remain.
func TestWriteRetriesOntoSpare(t *testing.T) {
	s := journalSpec()
	s.EnduranceCycles = 4
	dev := core.MustNewDevice(s, core.WithHealthGate())
	f, err := Open(dev, WithSpares(1))
	if err != nil {
		t.Fatal(err)
	}
	ps := f.PageSize()
	const lp = 2
	wearOutPhys(t, dev.Flash(), f.l2p[lp])

	data := bytes.Repeat([]byte{0xA5}, 8)
	if err := f.Write(lp*ps, data); err != nil {
		t.Fatalf("write onto degraded page: %v", err)
	}
	got := make([]byte, len(data))
	if err := f.Read(lp*ps, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %x, want %x", got, data)
	}
	if st := f.Stats(); st.Retirements != 1 {
		t.Errorf("stats: %+v", st)
	}
	h := f.Health()
	if h.SparesFree != 0 || h.RetiredData != 1 {
		t.Errorf("health: %+v", h)
	}
}

// TestRefreshCrashSweep: inject a power loss at every state-changing
// operation inside a scrub refresh and verify the page always recovers to
// either its drifted pre-refresh content or the fully restored image —
// never a torn mixture — and every other page is untouched.
func TestRefreshCrashSweep(t *testing.T) {
	survivedAll := false
	for skip := 0; skip < 300; skip++ {
		dev := core.MustNewDevice(journalSpec())
		f, err := Open(dev, WithSpares(1))
		if err != nil {
			t.Fatal(err)
		}
		want := fillPages(t, f)
		fl := dev.Flash()

		// Drift the page under test until at least one legitimate 1 has
		// flipped, so the restored image differs from the raw content.
		const lp = 2
		pp := f.l2p[lp]
		buf := make([]byte, f.PageSize())
		for fl.StuckBits(pp) == 0 {
			fl.ArmBankFault(fl.BankOf(pp), flash.Fault{Kind: flash.FaultReadDisturb, Bits: 8})
			if err := fl.ReadPage(pp, buf); err != nil {
				t.Fatal(err)
			}
		}
		drifted := make([]byte, f.PageSize())
		if err := fl.ReadPage(pp, drifted); err != nil {
			t.Fatal(err)
		}
		mask := make([]byte, f.PageSize())
		if _, err := fl.StuckMaskInto(pp, mask); err != nil {
			t.Fatal(err)
		}
		restored := make([]byte, f.PageSize())
		for i := range restored {
			restored[i] = drifted[i] | mask[i]
		}
		if !bytes.Equal(restored, want[lp]) {
			t.Fatalf("skip %d: drift mask does not reconstruct the intended image", skip)
		}

		fl.InjectPowerLoss(skip)
		err = f.RefreshPage(pp, restored)
		fl.ClearFaults()
		if err == nil {
			survivedAll = true
			checkPages(t, f, want)
			if st := f.Stats(); st.Refreshes != 1 {
				t.Errorf("skip %d: stats %+v", skip, st)
			}
			break
		}
		if !errors.Is(err, flash.ErrPowerLoss) {
			t.Fatalf("skip %d: unexpected error %v", skip, err)
		}

		f2, err := Open(dev, WithSpares(1))
		if err != nil {
			t.Fatalf("skip %d: remount failed: %v", skip, err)
		}
		got := make([]byte, f2.PageSize())
		if err := f2.Read(lp*f2.PageSize(), got); err != nil {
			t.Fatalf("skip %d: read: %v", skip, err)
		}
		if !bytes.Equal(got, restored) && !bytes.Equal(got, drifted) {
			t.Fatalf("skip %d: torn refresh:\n got      %x\n drifted  %x\n restored %x",
				skip, got, drifted, restored)
		}
		for olp := range want {
			if olp == lp {
				continue
			}
			if err := f2.Read(olp*f2.PageSize(), got); err != nil {
				t.Fatalf("skip %d: read page %d: %v", skip, olp, err)
			}
			if !bytes.Equal(got, want[olp]) {
				t.Fatalf("skip %d: bystander page %d corrupted", skip, olp)
			}
		}
		if err := f2.Write(0, []byte{9, 8, 7}); err != nil {
			t.Fatalf("skip %d: post-recovery write: %v", skip, err)
		}
	}
	if !survivedAll {
		t.Error("sweep never reached the fault-free completion point; raise the skip range")
	}
}

// TestRefreshSkipsMetadata: journal metadata refreshes are a no-op — those
// pages protect themselves with CRCs and ping-pong slots.
func TestRefreshSkipsMetadata(t *testing.T) {
	dev := core.MustNewDevice(journalSpec())
	f, err := Open(dev, WithSpares(1))
	if err != nil {
		t.Fatal(err)
	}
	blank := make([]byte, f.PageSize())
	before := dev.Flash().Stats()
	for _, p := range []int{f.lay.spare, f.lay.intent, f.lay.slot[0], f.lay.slot[1]} {
		if err := f.RefreshPage(p, blank); err != nil {
			t.Fatalf("refresh of meta page %d: %v", p, err)
		}
	}
	if delta := dev.Flash().Stats().Sub(before); delta.Erases != 0 || delta.Programs != 0 {
		t.Errorf("metadata refresh touched flash: %+v", delta)
	}
	if st := f.Stats(); st.Refreshes != 0 {
		t.Errorf("stats: %+v", st)
	}
}
