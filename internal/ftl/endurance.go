// Endurance management: bad-page retirement onto a spare pool, and the
// crash-consistent scrub refresh. Retirement needs no intent record — the
// replacement copy is written to a free spare *before* the map flips, so a
// crash at any point either recovers the old map (the bad page still holds
// the data, readable even when fenced) or the new checkpointed map (the
// spare holds it). Which spares are free is derived from the map itself: a
// pool page is free exactly while no logical page maps to it, so a torn
// retirement can never leak a spare.
package ftl

import (
	"fmt"
	"hash/crc32"

	"github.com/flipbit-sim/flipbit/internal/flash"
)

// isMeta reports whether pp is journal metadata (swap scratch, intent log
// or a checkpoint slot) — pages with their own integrity machinery that
// must never be remapped or scrub-refreshed through the data path.
func (f *FTL) isMeta(pp int) bool {
	return f.journaled && pp >= f.lay.nl && pp < f.lay.poolBase
}

// freeSpare returns the first usable free spare, or -1. A spare is free
// while unmapped; worn or fenced spares are skipped.
func (f *FTL) freeSpare() int {
	fl := f.dev.Flash()
	for i := 0; i < f.poolSize; i++ {
		pp := f.poolBase + i
		if f.p2l[pp] == -1 && !fl.Retired(pp) && !fl.WornOut(pp) {
			return pp
		}
	}
	return -1
}

// SparesRemaining returns how many usable spares the pool still holds.
func (f *FTL) SparesRemaining() int {
	fl := f.dev.Flash()
	n := 0
	for i := 0; i < f.poolSize; i++ {
		pp := f.poolBase + i
		if f.p2l[pp] == -1 && !fl.Retired(pp) && !fl.WornOut(pp) {
			n++
		}
	}
	return n
}

// RetiredPages returns how many physical pages have been taken out of
// service: unmapped data pages plus unusable spares.
func (f *FTL) RetiredPages() int {
	fl := f.dev.Flash()
	n := 0
	dataEnd := f.dataEnd()
	for pp := 0; pp < dataEnd; pp++ {
		if f.p2l[pp] == -1 {
			n++
		}
	}
	for i := 0; i < f.poolSize; i++ {
		pp := f.poolBase + i
		if f.p2l[pp] == -1 && (fl.Retired(pp) || fl.WornOut(pp)) {
			n++
		}
	}
	return n
}

// dataEnd returns one past the last data-region physical page.
func (f *FTL) dataEnd() int {
	if f.journaled {
		return f.lay.nl
	}
	return f.poolBase
}

// HealthReport augments the flash device's endurance snapshot with the
// FTL's management state.
type HealthReport struct {
	flash.HealthReport
	SparesTotal int // pool size at construction
	SparesFree  int // usable spares remaining
	RetiredData int // physical pages taken out of service
}

// Health returns the combined device + FTL endurance snapshot.
func (f *FTL) Health() HealthReport {
	return HealthReport{
		HealthReport: f.dev.Flash().Health(),
		SparesTotal:  f.poolSize,
		SparesFree:   f.SparesRemaining(),
		RetiredData:  f.RetiredPages(),
	}
}

// RetirePage retires the mapped physical page pp, moving its repaired
// contents onto a spare. This is the scrubber's Retire hook; journal
// metadata is refused.
func (f *FTL) RetirePage(pp int) error {
	if f.isMeta(pp) {
		return fmt.Errorf("ftl: page %d is journal metadata; cannot retire", pp)
	}
	if pp < 0 || pp >= len(f.p2l) || f.p2l[pp] == -1 {
		return fmt.Errorf("ftl: page %d is not mapped; nothing to retire", pp)
	}
	return f.retirePhys(pp, false)
}

// retirePhys remaps the logical owner of physical page pp onto a free
// spare and fences pp off. With blank set the spare starts erased instead
// of carrying a copy (the caller wanted an erased page anyway).
//
// Crash safety without an intent record: the spare is fully written before
// the RAM map flips and the checkpoint lands. Recovering the old map keeps
// reading pp (still intact, still readable while fenced); recovering the
// new one reads the spare. A spare written by a torn retirement stays
// unmapped and is simply reused next time.
func (f *FTL) retirePhys(pp int, blank bool) error {
	lp := f.p2l[pp]
	if lp < 0 {
		return fmt.Errorf("ftl: page %d is not mapped", pp)
	}
	sp := f.freeSpare()
	if sp < 0 {
		return fmt.Errorf("%w: retiring page %d", ErrNoSpares, pp)
	}
	fl := f.dev.Flash()
	if blank {
		if err := f.eraseMetaPage(sp); err != nil {
			return err
		}
	} else {
		// Repair what the bad page still holds — stuck cells read 0 but
		// the drift mask knows which ones were meant to be 1 — and land
		// the restored image on the spare, verified.
		restored := make([]byte, f.PageSize())
		if err := fl.ReadPage(pp, restored); err != nil {
			return err
		}
		mask := make([]byte, f.PageSize())
		if _, err := fl.StuckMaskInto(pp, mask); err != nil {
			return err
		}
		for i := range restored {
			restored[i] |= mask[i]
		}
		if err := f.writeExactPage(sp, restored); err != nil {
			return err
		}
		if err := f.verifyPage(sp, restored); err != nil {
			return err
		}
	}
	f.l2p[lp] = sp
	f.p2l[sp] = lp
	f.p2l[pp] = -1
	_ = fl.Retire(pp)
	f.stats.Retirements++
	if f.journaled {
		f.mapSeq++
		return f.writeCheckpoint(1 - f.checkpointSlot)
	}
	return nil
}

// RefreshPage rewrites physical page pp to its restored intended image —
// the scrubber's Refresh hook. Journal metadata and unmapped pages are
// skipped (metadata maintains its own integrity; unmapped pages hold no
// data). In journaled mode the refresh follows the intent protocol with
// a == b marking an in-place rewrite, so a power loss mid-refresh recovers
// to either the old or the new image, never a torn one.
func (f *FTL) RefreshPage(pp int, restored []byte) error {
	if len(restored) != f.PageSize() {
		return fmt.Errorf("ftl: refresh buffer %d bytes, page size %d", len(restored), f.PageSize())
	}
	if pp < 0 || pp >= len(f.p2l) {
		return fmt.Errorf("%w: page %d", ErrBounds, pp)
	}
	if f.isMeta(pp) || f.p2l[pp] == -1 {
		return nil
	}
	if !f.journaled {
		if err := f.writeExactPage(pp, restored); err != nil {
			return err
		}
		if err := f.verifyPage(pp, restored); err != nil {
			return err
		}
		f.stats.Refreshes++
		return nil
	}

	seq := f.mapSeq + 1
	if err := f.appendIntent(intentRec{
		seq: seq, a: pp, b: pp,
		crcA: f.pageCRC(pp), crcB: crc32.ChecksumIEEE(restored),
	}); err != nil {
		return err
	}
	// Stage the restored image on the spare first and verify it: once it
	// is durable there, a crash tearing the in-place rewrite rolls
	// forward from the spare at mount.
	if err := f.writeExactPage(f.lay.spare, restored); err != nil {
		return err
	}
	if err := f.verifyPage(f.lay.spare, restored); err != nil {
		return err
	}
	if err := f.writeExactPage(pp, restored); err != nil {
		return err
	}
	f.mapSeq = seq
	if err := f.writeCheckpoint(1 - f.checkpointSlot); err != nil {
		return err
	}
	f.stats.Refreshes++
	return nil
}

// repairRefresh settles an interrupted in-place refresh (intent a == b):
// roll forward from the spare when the staged image made it there, else
// leave the page as it was.
func (f *FTL) repairRefresh(it intentRec) error {
	ca := f.pageCRC(it.a)
	cs := f.pageCRC(f.lay.spare)
	switch {
	case ca == it.crcB:
		// The rewrite landed before the crash.
		f.stats.RolledForward++
	case cs == it.crcB:
		// Staged image is durable on the spare; redo the rewrite.
		buf := make([]byte, f.lay.ps)
		if err := f.dev.Flash().ReadPage(f.lay.spare, buf); err != nil {
			return err
		}
		if err := f.writeExactPage(it.a, buf); err != nil {
			return err
		}
		f.stats.RolledForward++
		f.stats.Refreshes++
	default:
		// Crash before the spare was staged (or everything torn): the
		// page keeps its pre-refresh content — a refresh is always
		// re-derivable, so losing one is safe.
		f.stats.RolledBack++
	}
	f.mapSeq = it.seq
	return f.writeCheckpoint(1 - f.checkpointSlot)
}

// verifyPage reads p back and compares against want.
func (f *FTL) verifyPage(p int, want []byte) error {
	got := make([]byte, len(want))
	if err := f.dev.Flash().ReadPage(p, got); err != nil {
		return err
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("ftl: page %d verify failed at byte %d: got %02x want %02x",
				p, i, got[i], want[i])
		}
	}
	return nil
}
