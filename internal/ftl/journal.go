// Journaled mode. The legacy FTL (New) keeps its translation table only in
// RAM, so a reboot silently forgets every wear-leveling swap and logical
// reads land on the wrong physical pages. Open mounts the FTL in journaled
// mode instead: the tail of the device is reserved for metadata — a spare
// copy page, an intent log and two ping-pong map checkpoints — and every
// swap follows a write-ahead protocol so that after a crash at *any* byte
// offset the mount either completes the swap or rolls it back to the
// previous-good map. Metadata is written with exact flash operations
// (erase + program + read-back verify), never through the approximate write
// path, so a stuck or drifted cell cannot silently remap a page.
//
// Physical layout (pages):
//
//	[0, nl)                       data pages, the logical space
//	nl                            spare (swap scratch)
//	nl+1                          intent log
//	nl+2 … nl+2+mapPages          checkpoint slot 0
//	…    … nl+2+2*mapPages        checkpoint slot 1
//	poolBase … poolBase+spares    retirement pool (WithSpares)
//
// Checkpoint blob: seq(4, LE) | l2p entries (2 bytes LE each) | crc32(4, LE).
// Intent record:   magic(0xF7) | seq(4) | a(2) | b(2) | crcA(4) | crcB(4) | crc32(4).
//
// Swap protocol for data pages a, b at sequence s = mapSeq+1:
//
//  1. append intent {s, a, b, crc(A), crc(B)} to the log
//  2. spare ← A
//  3. a     ← B
//  4. b     ← spare
//  5. update the RAM map, write checkpoint s to the older slot
//
// Recovery compares the page CRCs against the intent's recorded crcA/crcB to
// decide how far the swap got, finishes or undoes it, and always commits a
// fresh checkpoint so a half-done intent can never be replayed twice.
package ftl

import (
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/flipbit-sim/flipbit/internal/flash"
)

// ErrNoJournalSpace is returned by Open when the device is too small to
// hold data pages plus the journal metadata.
var ErrNoJournalSpace = errors.New("ftl: device too small for journal metadata")

// errCheckpointVerify is returned when a checkpoint slot cannot be made to
// read back correctly even after retries (worn-out metadata pages).
var errCheckpointVerify = errors.New("ftl: checkpoint read-back verify failed")

const (
	intentMagic   = 0xF7
	intentRecSize = 1 + 4 + 2 + 2 + 4 + 4 + 4

	// writeRetries bounds erase+program+verify attempts on metadata pages;
	// each retry's erase clears recoverable stuck cells.
	writeRetries = 3
)

// layout is the physical geometry of a journaled FTL.
type layout struct {
	ps       int // page size
	nl       int // logical (data) pages
	spare    int // swap scratch page
	intent   int // intent log page
	mapPages int // pages per checkpoint slot
	slot     [2]int
	poolBase int // first retirement-pool page
	spares   int // retirement-pool size
}

// mapBlobSize returns the checkpoint blob size for nl logical pages.
func mapBlobSize(nl int) int { return 4 + 2*nl + 4 }

// computeLayout reserves the largest possible logical space that still
// leaves room for spare + intent + two checkpoint slots + the retirement
// pool. With ns == 0 the layout is identical to one computed before spare
// pools existed, so old checkpoint blobs remain readable.
func computeLayout(ps, np, ns int) (layout, error) {
	if ns < 0 {
		ns = 0
	}
	for nl := np - 4 - ns; nl > 0; nl-- {
		mp := (mapBlobSize(nl) + ps - 1) / ps
		if nl+2+2*mp+ns <= np {
			l := layout{ps: ps, nl: nl, spare: nl, intent: nl + 1, mapPages: mp}
			l.slot[0] = nl + 2
			l.slot[1] = nl + 2 + mp
			l.poolBase = nl + 2 + 2*mp
			l.spares = ns
			return l, nil
		}
	}
	return layout{}, fmt.Errorf("%w: %d pages of %d bytes (%d spares)",
		ErrNoJournalSpace, np, ps, ns)
}

// recover mounts the journaled map: pick the newest valid checkpoint,
// replay intents past it, and repair the one swap that may have been in
// flight when power was lost. Idempotent — a crash during recovery just
// re-runs it.
func (f *FTL) recover() error {
	lay := f.lay

	bestSeq, bestSlot := uint32(0), -1
	var bestMap []int
	for i := 0; i < 2; i++ {
		if m, seq, ok := f.readSlot(i); ok && (bestSlot < 0 || seq > bestSeq) {
			bestSeq, bestSlot, bestMap = seq, i, m
		}
	}
	if bestSlot < 0 {
		// Fresh device (or metadata lost beyond repair — indistinguishable
		// here; the kvs layer's CRCs catch the latter). Identity map.
		for i := range f.l2p {
			f.l2p[i] = i
			f.p2l[i] = i
		}
		f.mapSeq = 1
		if err := f.writeCheckpoint(0); err != nil {
			return err
		}
	} else {
		for lp, pp := range bestMap {
			f.l2p[lp] = pp
			f.p2l[pp] = lp
		}
		f.mapSeq = bestSeq
		f.checkpointSlot = bestSlot
	}

	intents, end := f.parseIntents()
	f.intentOff = end

	var pending []intentRec
	for _, it := range intents {
		if it.seq > f.mapSeq {
			pending = append(pending, it)
		}
	}
	// All but the newest pending intent belong to swaps whose data copies
	// completed long ago (their checkpoints existed once; we fell back to
	// an older slot). Only the mapping needs replaying.
	for i := 0; i+1 < len(pending); i++ {
		f.applySwap(pending[i].a, pending[i].b)
		f.mapSeq = pending[i].seq
	}
	if len(pending) > 0 {
		if err := f.repairIntent(pending[len(pending)-1]); err != nil {
			return err
		}
	}

	// The log now holds only committed intents; reclaim it when dirty so
	// it cannot fill up across many clean reboots.
	if f.intentOff > 0 {
		if err := f.eraseMetaPage(lay.intent); err != nil {
			return err
		}
		f.intentOff = 0
		f.stats.IntentErases++
	}

	// Re-fence retired pages. The retired set is not persisted separately:
	// a data page absent from the recovered map was retired onto a spare,
	// so the flash-level fence (lost across remount) is rebuilt here.
	fl := f.dev.Flash()
	for pp := 0; pp < lay.nl; pp++ {
		if f.p2l[pp] == -1 {
			_ = fl.Retire(pp)
		}
	}
	return nil
}

// intentRec is one parsed intent-log record.
type intentRec struct {
	seq        uint32
	a, b       int
	crcA, crcB uint32
}

// repairIntent finishes or undoes the single swap that may have been
// interrupted, then commits a checkpoint at the intent's sequence so the
// intent can never fire again.
func (f *FTL) repairIntent(it intentRec) error {
	if it.a == it.b {
		// Not a swap: an in-place scrub refresh (endurance.go).
		return f.repairRefresh(it)
	}
	fl := f.dev.Flash()
	ca := f.pageCRC(it.a)
	cb := f.pageCRC(it.b)
	cs := f.pageCRC(f.lay.spare)

	copyPage := func(dst, src int) error {
		buf := make([]byte, f.lay.ps)
		if err := fl.ReadPage(src, buf); err != nil {
			return err
		}
		return f.writeExactPage(dst, buf)
	}

	forward := false
	switch {
	case ca == it.crcA && cb == it.crcB:
		// Nothing durable happened (crash before or during spare ← A).
	case cs == it.crcA && cb == it.crcB:
		// spare ← A done, a ← B torn: redo both remaining copies.
		if err := copyPage(it.a, it.b); err != nil {
			return err
		}
		if err := copyPage(it.b, f.lay.spare); err != nil {
			return err
		}
		forward = true
	case cs == it.crcA && ca == it.crcB:
		// a ← B done, b ← spare torn: redo the last copy.
		if err := copyPage(it.b, f.lay.spare); err != nil {
			return err
		}
		forward = true
	case ca == it.crcB && cb == it.crcA:
		// All copies landed; only the checkpoint was lost.
		forward = true
	default:
		// No recognisable state (metadata pages disturbed past the
		// single-bit repair). Keep the previous-good map — the kvs
		// layer's record CRCs contain the damage.
	}
	if forward {
		f.applySwap(it.a, it.b)
		f.stats.RolledForward++
	} else {
		f.stats.RolledBack++
	}
	// Either way the intent is now settled: bump the map sequence past it.
	f.mapSeq = it.seq
	return f.writeCheckpoint(1 - f.checkpointSlot)
}

// applySwap exchanges the logical owners of physical pages a and b in the
// RAM map.
func (f *FTL) applySwap(a, b int) {
	la, lb := f.p2l[a], f.p2l[b]
	f.l2p[la], f.l2p[lb] = b, a
	f.p2l[a], f.p2l[b] = lb, la
}

// journalSwap is the crash-consistent swap of data pages a and b.
func (f *FTL) journalSwap(a, b int) error {
	fl := f.dev.Flash()
	ps := f.lay.ps
	bufA := make([]byte, ps)
	bufB := make([]byte, ps)
	if err := fl.ReadPage(a, bufA); err != nil {
		return err
	}
	if err := fl.ReadPage(b, bufB); err != nil {
		return err
	}
	seq := f.mapSeq + 1
	if err := f.appendIntent(intentRec{
		seq: seq, a: a, b: b,
		crcA: crc32.ChecksumIEEE(bufA), crcB: crc32.ChecksumIEEE(bufB),
	}); err != nil {
		return err
	}
	if err := f.writeExactPage(f.lay.spare, bufA); err != nil {
		return err
	}
	if err := f.writeExactPage(a, bufB); err != nil {
		return err
	}
	// Read the spare back rather than trusting bufA: the copy chain pays
	// for its own reads, and a torn spare would be caught here.
	bufS := make([]byte, ps)
	if err := fl.ReadPage(f.lay.spare, bufS); err != nil {
		return err
	}
	if err := f.writeExactPage(b, bufS); err != nil {
		return err
	}
	f.applySwap(a, b)
	f.mapSeq = seq
	if err := f.writeCheckpoint(1 - f.checkpointSlot); err != nil {
		return err
	}
	f.stats.Swaps++
	f.stats.SwapReads += 3
	f.stats.SwapWrites += 3
	return nil
}

// appendIntent programs one intent record into the log, erasing the log
// first when it is full (every prior intent is committed by then — a
// checkpoint follows every swap).
func (f *FTL) appendIntent(it intentRec) error {
	fl := f.dev.Flash()
	if f.intentOff+intentRecSize > f.lay.ps {
		if err := f.eraseMetaPage(f.lay.intent); err != nil {
			return err
		}
		f.intentOff = 0
		f.stats.IntentErases++
	}
	rec := make([]byte, intentRecSize)
	rec[0] = intentMagic
	putU32(rec[1:], it.seq)
	putU16(rec[5:], uint16(it.a))
	putU16(rec[7:], uint16(it.b))
	putU32(rec[9:], it.crcA)
	putU32(rec[13:], it.crcB)
	putU32(rec[17:], crc32.ChecksumIEEE(rec[:17]))
	base := f.dev.Flash().PageBase(f.lay.intent) + f.intentOff
	// Mark the space consumed before programming: if the program tears,
	// the dirty bytes must never be reused.
	f.intentOff += intentRecSize
	for i, v := range rec {
		if err := fl.ProgramByte(base+i, v); err != nil {
			return err
		}
	}
	return nil
}

// parseIntents scans the intent log, applying single-bit repair to records
// whose CRC fails, and returns the valid records plus the append offset
// (one past the last non-erased byte, so torn tails are never overwritten).
func (f *FTL) parseIntents() ([]intentRec, int) {
	fl := f.dev.Flash()
	buf := make([]byte, f.lay.ps)
	if err := fl.ReadPage(f.lay.intent, buf); err != nil {
		return nil, 0
	}
	var recs []intentRec
	off := 0
	for off+intentRecSize <= len(buf) {
		rec := buf[off : off+intentRecSize]
		if allFF(rec) {
			break
		}
		if crc32.ChecksumIEEE(rec[:17]) != readU32(rec[17:]) || rec[0] != intentMagic {
			if n, ok := correctSingleBit(rec, 17); ok && rec[0] == intentMagic {
				f.stats.CorrectedBits += uint64(n)
			} else {
				// Torn record: it is always the last one written.
				off += intentRecSize
				break
			}
		}
		recs = append(recs, intentRec{
			seq:  readU32(rec[1:]),
			a:    int(readU16(rec[5:])),
			b:    int(readU16(rec[7:])),
			crcA: readU32(rec[9:]),
			crcB: readU32(rec[13:]),
		})
		off += intentRecSize
	}
	// Skip past any trailing dirt (a torn record's stray bits).
	end := off
	for i := len(buf) - 1; i >= off; i-- {
		if buf[i] != 0xFF {
			end = i + 1
			break
		}
	}
	return recs, end
}

// writeCheckpoint serialises the map at f.mapSeq into the given slot with
// erase + program + read-back verify, retrying so recoverable stuck cells
// get a second erase.
func (f *FTL) writeCheckpoint(slot int) error {
	blob := make([]byte, mapBlobSize(f.lay.nl))
	putU32(blob, f.mapSeq)
	for lp, pp := range f.l2p {
		putU16(blob[4+2*lp:], uint16(pp))
	}
	putU32(blob[len(blob)-4:], crc32.ChecksumIEEE(blob[:len(blob)-4]))

	fl := f.dev.Flash()
	ps := f.lay.ps
	var lastErr error
	for attempt := 0; attempt < writeRetries; attempt++ {
		ok := true
		for i := 0; i < f.lay.mapPages; i++ {
			page := f.lay.slot[slot] + i
			chunk := make([]byte, ps)
			for j := range chunk {
				chunk[j] = 0xFF
			}
			copy(chunk, blob[min(i*ps, len(blob)):min((i+1)*ps, len(blob))])
			if err := fl.EraseProgramPage(page, chunk); err != nil {
				if !retryableWriteErr(err) {
					return err
				}
				lastErr, ok = err, false
				break
			}
			got := make([]byte, ps)
			if err := fl.ReadPage(page, got); err != nil {
				return err
			}
			for j := range chunk {
				if got[j] != chunk[j] {
					lastErr, ok = errCheckpointVerify, false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			f.checkpointSlot = slot
			f.stats.Checkpoints++
			return nil
		}
	}
	return lastErr
}

// readSlot loads and validates one checkpoint slot, applying single-bit
// repair when the CRC fails. The map must be injective into the data
// region plus the retirement pool — anything else marks the slot invalid.
// (Data pages missing from the image are the retired ones; pool pages
// missing from it are the free spares.)
func (f *FTL) readSlot(slot int) ([]int, uint32, bool) {
	fl := f.dev.Flash()
	ps := f.lay.ps
	blob := make([]byte, f.lay.mapPages*ps)
	for i := 0; i < f.lay.mapPages; i++ {
		if err := fl.ReadPage(f.lay.slot[slot]+i, blob[i*ps:(i+1)*ps]); err != nil {
			return nil, 0, false
		}
	}
	blob = blob[:mapBlobSize(f.lay.nl)]
	if crc32.ChecksumIEEE(blob[:len(blob)-4]) != readU32(blob[len(blob)-4:]) {
		n, ok := correctSingleBit(blob, len(blob)-4)
		if !ok {
			return nil, 0, false
		}
		f.stats.CorrectedBits += uint64(n)
	}
	seq := readU32(blob)
	if seq == 0 || seq == ^uint32(0) {
		return nil, 0, false
	}
	m := make([]int, f.lay.nl)
	seen := make([]bool, f.lay.nl+2+2*f.lay.mapPages+f.lay.spares)
	validPhys := func(pp int) bool {
		return pp < f.lay.nl ||
			(pp >= f.lay.poolBase && pp < f.lay.poolBase+f.lay.spares)
	}
	for lp := range m {
		pp := int(readU16(blob[4+2*lp:]))
		if pp >= len(seen) || !validPhys(pp) || seen[pp] {
			return nil, 0, false
		}
		m[lp] = pp
		seen[pp] = true
	}
	return m, seq, true
}

// writeExactPage stores buf into physical page p through the flash layer
// directly (erase + program, no approximation), retrying so a stuck cell
// left by a faulted erase gets cleared by the next one.
func (f *FTL) writeExactPage(p int, buf []byte) error {
	fl := f.dev.Flash()
	var lastErr error
	for attempt := 0; attempt < writeRetries; attempt++ {
		err := fl.EraseProgramPage(p, buf)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryableWriteErr(err) {
			return err
		}
	}
	return lastErr
}

// retryableWriteErr reports whether a metadata write failure is worth
// another erase + program attempt. A stuck cell (ErrNeedsErase from the
// program phase, or a worn-out erase) may clear on the next cycle; a power
// loss means the device is down and must propagate immediately.
func retryableWriteErr(err error) bool {
	return !errors.Is(err, flash.ErrPowerLoss)
}

// eraseMetaPage erases a metadata page, retrying recoverable failures.
func (f *FTL) eraseMetaPage(p int) error {
	fl := f.dev.Flash()
	var lastErr error
	for attempt := 0; attempt < writeRetries; attempt++ {
		err := fl.ErasePage(p)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryableWriteErr(err) {
			return err
		}
	}
	return lastErr
}

// pageCRC returns the CRC32 of a physical page's current contents.
func (f *FTL) pageCRC(p int) uint32 {
	buf := make([]byte, f.lay.ps)
	if err := f.dev.Flash().ReadPage(p, buf); err != nil {
		return 0
	}
	return crc32.ChecksumIEEE(buf)
}

// correctSingleBit brute-forces a single-bit repair of a CRC-protected
// buffer whose checksum trailer starts at crcOff: flip each bit (including
// the stored CRC's own bits) and keep the flip that makes the checksum
// pass. Returns the number of corrected bits (1) and success. This is the
// read-disturb defence: a drifted cell is a single 1 → 0 flip.
func correctSingleBit(buf []byte, crcOff int) (int, bool) {
	for i := range buf {
		for bit := 0; bit < 8; bit++ {
			buf[i] ^= 1 << uint(bit)
			if crc32.ChecksumIEEE(buf[:crcOff]) == readU32(buf[crcOff:]) {
				return 1, true
			}
			buf[i] ^= 1 << uint(bit)
		}
	}
	return 0, false
}

// allFF reports whether every byte is erased.
func allFF(b []byte) bool {
	for _, v := range b {
		if v != 0xFF {
			return false
		}
	}
	return true
}

func readU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func putU16(b []byte, v uint16) { b[0], b[1] = byte(v), byte(v>>8) }
func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
