package ftl

import (
	"errors"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// journalSpec: small geometry so a crash sweep covers every protocol step
// quickly. Layout solves to 12 data pages + spare + intent + 2×1 map slots.
func journalSpec() flash.Spec {
	s := flash.DefaultSpec()
	s.PageSize = 32
	s.NumPages = 16
	s.Banks = 1
	return s
}

func TestComputeLayout(t *testing.T) {
	lay, err := computeLayout(32, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lay.nl != 12 || lay.spare != 12 || lay.intent != 13 || lay.mapPages != 1 {
		t.Errorf("unexpected layout: %+v", lay)
	}
	if lay.slot[0] != 14 || lay.slot[1] != 15 {
		t.Errorf("unexpected slots: %+v", lay.slot)
	}
	if _, err := computeLayout(32, 3, 0); err == nil {
		t.Error("want error for a device too small to journal")
	}

	// Reserving spares shrinks the logical space and appends the pool after
	// the checkpoint slots.
	lay, err = computeLayout(32, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lay.nl != 10 || lay.poolBase != 14 || lay.spares != 2 {
		t.Errorf("unexpected spared layout: %+v", lay)
	}
	if lay.poolBase+lay.spares != 16 {
		t.Errorf("pool overruns device: %+v", lay)
	}
	if _, err := computeLayout(32, 16, 13); err == nil {
		t.Error("want error when spares leave no room for data")
	}
}

// fillPages writes a distinct pattern to every logical page and returns the
// expected images.
func fillPages(t *testing.T, f *FTL) [][]byte {
	t.Helper()
	ps := f.PageSize()
	want := make([][]byte, f.NumPages())
	for lp := range want {
		buf := make([]byte, ps)
		for i := range buf {
			buf[i] = byte(lp*31 + i)
		}
		if err := f.Write(lp*ps, buf); err != nil {
			t.Fatalf("fill page %d: %v", lp, err)
		}
		want[lp] = buf
	}
	return want
}

// checkPages asserts every logical page still reads back its expected image.
func checkPages(t *testing.T, f *FTL, want [][]byte) {
	t.Helper()
	ps := f.PageSize()
	got := make([]byte, ps)
	for lp := range want {
		if err := f.Read(lp*ps, got); err != nil {
			t.Fatalf("read page %d: %v", lp, err)
		}
		for i := range got {
			if got[i] != want[lp][i] {
				t.Fatalf("page %d byte %d: got %02x want %02x", lp, i, got[i], want[lp][i])
			}
		}
	}
}

func TestOpenFreshAndRemount(t *testing.T) {
	dev := core.MustNewDevice(journalSpec())
	f, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != 12 {
		t.Fatalf("logical pages = %d, want 12", f.NumPages())
	}
	want := fillPages(t, f)
	checkPages(t, f, want)

	f2, err := Open(dev)
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	checkPages(t, f2, want)
}

func TestJournalSwapSurvivesRemount(t *testing.T) {
	dev := core.MustNewDevice(journalSpec())
	f, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	want := fillPages(t, f)
	if err := f.journalSwap(f.l2p[0], f.l2p[7]); err != nil {
		t.Fatal(err)
	}
	if err := f.journalSwap(f.l2p[3], f.l2p[9]); err != nil {
		t.Fatal(err)
	}
	checkPages(t, f, want) // logical view unchanged by swaps
	if f.Stats().Swaps != 2 || f.Stats().Checkpoints < 3 {
		t.Errorf("stats: %+v", f.Stats())
	}

	f2, err := Open(dev)
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	checkPages(t, f2, want)
	for lp := range f.l2p {
		if f.l2p[lp] != f2.l2p[lp] {
			t.Errorf("map not recovered: l2p[%d] %d vs %d", lp, f.l2p[lp], f2.l2p[lp])
		}
	}
}

// TestSwapCrashSweep is the protocol's proof by exhaustion: inject a power
// loss at every possible state-changing operation inside a swap and verify
// that after remount every logical page still reads its committed data —
// the swap either fully landed or fully rolled back.
func TestSwapCrashSweep(t *testing.T) {
	survivedAll := false
	for skip := 0; skip < 400; skip++ {
		dev := core.MustNewDevice(journalSpec())
		f, err := Open(dev)
		if err != nil {
			t.Fatal(err)
		}
		want := fillPages(t, f)

		dev.Flash().InjectPowerLoss(skip)
		err = f.journalSwap(f.l2p[2], f.l2p[10])
		if err != nil && !errors.Is(err, flash.ErrPowerLoss) {
			t.Fatalf("skip %d: unexpected error %v", skip, err)
		}
		if err == nil {
			// The whole swap fit under the skip budget; nothing to
			// recover. Once this happens every larger skip is the same.
			dev.Flash().ClearFaults()
			survivedAll = true
			checkPages(t, f, want)
			break
		}
		dev.Flash().ClearFaults()

		f2, err := Open(dev)
		if err != nil {
			t.Fatalf("skip %d: remount failed: %v", skip, err)
		}
		checkPages(t, f2, want)
		// A crash inside the intent append leaves a torn intent (nothing
		// to settle), and a crash on the checkpoint's final bits can be
		// healed by single-bit repair (already settled) — so zero or one
		// settlement, never more.
		st := f2.Stats()
		if st.RolledForward+st.RolledBack > 1 {
			t.Errorf("skip %d: recovery settled more than one intent: %+v", skip, st)
		}
		// The recovered FTL must be fully usable.
		if err := f2.Write(0, []byte{1, 2, 3, 4}); err != nil {
			t.Fatalf("skip %d: post-recovery write: %v", skip, err)
		}
	}
	if !survivedAll {
		t.Error("sweep never reached the fault-free completion point; raise the skip range")
	}
}

// TestCrashDuringRecovery: power loss while the mount is repairing an
// earlier interrupted swap. Recovery must be idempotent — a later clean
// mount still lands in a consistent state.
func TestCrashDuringRecovery(t *testing.T) {
	for firstSkip := 0; firstSkip < 120; firstSkip += 7 {
		for secondSkip := 0; secondSkip < 40; secondSkip += 3 {
			dev := core.MustNewDevice(journalSpec())
			f, err := Open(dev)
			if err != nil {
				t.Fatal(err)
			}
			want := fillPages(t, f)

			dev.Flash().InjectPowerLoss(firstSkip)
			if err := f.journalSwap(f.l2p[1], f.l2p[8]); err == nil {
				dev.Flash().ClearFaults()
				continue // swap completed; no recovery to interrupt
			}
			dev.Flash().ClearFaults()

			// Crash again during the recovery mount.
			dev.Flash().InjectPowerLoss(secondSkip)
			if _, err := Open(dev); err != nil && !errors.Is(err, flash.ErrPowerLoss) {
				t.Fatalf("skips %d/%d: unexpected mount error %v", firstSkip, secondSkip, err)
			}
			dev.Flash().ClearFaults()

			f3, err := Open(dev)
			if err != nil {
				t.Fatalf("skips %d/%d: final mount failed: %v", firstSkip, secondSkip, err)
			}
			checkPages(t, f3, want)
		}
	}
}

// TestIntentLogReclaim: enough swaps to overflow the intent page must
// recycle it instead of failing.
func TestIntentLogReclaim(t *testing.T) {
	dev := core.MustNewDevice(journalSpec())
	f, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	want := fillPages(t, f)
	// 32-byte intent page holds one 21-byte record; every swap past the
	// first needs a reclaim.
	for i := 0; i < 6; i++ {
		if err := f.journalSwap(f.l2p[i], f.l2p[11-i]); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	if f.Stats().IntentErases == 0 {
		t.Error("intent log never reclaimed")
	}
	checkPages(t, f, want)
	f2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	checkPages(t, f2, want)
}
