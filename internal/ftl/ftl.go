// Package ftl implements a small page-mapped flash translation layer with
// static wear leveling — the class of technique §II-B discusses. The paper
// argues FlipBit extends lifetime *without* an FTL's memory and management
// overheads, and that the two are orthogonal and composable; this package
// exists to measure both claims (see the exp-wear experiment).
//
// Design, matching embedded NOR practice: logical pages map to physical
// pages through an in-RAM table; writes go in place (so FlipBit's
// previous-content approximation still applies), and when the wear of a hot
// page exceeds the coldest page's wear by a threshold, the two pages swap —
// classic static wear leveling. Each swap costs two page reads, two page
// writes and whatever erases those writes need.
package ftl

import (
	"errors"
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/core"
)

// ErrBounds is returned for out-of-range logical addresses.
var ErrBounds = errors.New("ftl: logical address out of range")

// Stats counts the FTL's own activity.
type Stats struct {
	Swaps      uint64 // wear-leveling page swaps performed
	SwapReads  uint64 // pages read by swaps
	SwapWrites uint64 // pages written by swaps

	// Journaled-mode counters (zero for a volatile FTL built with New).
	Checkpoints   uint64 // map checkpoints written (with read-back verify)
	IntentErases  uint64 // intent-log page reclaims
	RolledForward uint64 // interrupted swaps completed at mount
	RolledBack    uint64 // interrupted swaps undone at mount
	CorrectedBits uint64 // single-bit metadata repairs (read disturb)
}

// FTL is a page-mapped translation layer over a FlipBit device.
type FTL struct {
	dev *core.Device

	// map logical page -> physical page, and its inverse.
	l2p []int
	p2l []int

	// swapDelta is the wear imbalance (in erase cycles) that triggers a
	// swap between the hottest and coldest pages.
	swapDelta uint32

	// Journaled mode (journal.go). A volatile FTL built with New keeps
	// journaled false and maps the whole device; Open reserves the tail
	// of the device for the journal and survives crashes.
	journaled      bool
	lay            layout
	mapSeq         uint32 // sequence of the in-RAM map's last durable point
	intentOff      int    // append offset within the intent-log page
	checkpointSlot int    // slot holding the newest durable map

	stats Stats
}

// Option configures the FTL.
type Option func(*FTL)

// WithSwapDelta sets the wear-imbalance threshold that triggers a swap
// (default 16 cycles; smaller = more aggressive leveling, more copy cost).
func WithSwapDelta(d uint32) Option {
	return func(f *FTL) {
		if d > 0 {
			f.swapDelta = d
		}
	}
}

// New builds an FTL mapping every page of dev identity-initialised. The map
// lives only in RAM: a reboot forgets every swap, so New is for lifetime
// experiments, not for data that must survive power loss — use Open for
// that.
func New(dev *core.Device, opts ...Option) *FTL {
	n := dev.Flash().Spec().NumPages
	f := &FTL{
		dev:       dev,
		l2p:       make([]int, n),
		p2l:       make([]int, n),
		swapDelta: 16,
	}
	for i := range f.l2p {
		f.l2p[i] = i
		f.p2l[i] = i
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Open mounts a journaled FTL (see journal.go): the tail of the device is
// reserved for a spare page, an intent log and two map checkpoints, and
// mounting recovers the translation map — finishing or rolling back a swap
// that was interrupted by power loss. The logical space (NumPages) is
// smaller than the device by the journal overhead.
func Open(dev *core.Device, opts ...Option) (*FTL, error) {
	spec := dev.Flash().Spec()
	lay, err := computeLayout(spec.PageSize, spec.NumPages)
	if err != nil {
		return nil, err
	}
	f := &FTL{
		dev:       dev,
		l2p:       make([]int, lay.nl),
		p2l:       make([]int, lay.nl),
		swapDelta: 16,
		journaled: true,
		lay:       lay,
	}
	for _, o := range opts {
		o(f)
	}
	if err := f.recover(); err != nil {
		return nil, err
	}
	return f, nil
}

// Stats returns the FTL's activity counters.
func (f *FTL) Stats() Stats { return f.stats }

// PageSize returns the logical page size (identical to the physical one).
func (f *FTL) PageSize() int { return f.dev.Flash().Spec().PageSize }

// NumPages returns the number of logical pages: the whole device for a
// volatile FTL, the data region for a journaled one.
func (f *FTL) NumPages() int { return len(f.l2p) }

// ErasePage erases the physical page currently backing logical page lp.
// Together with Read, Write, PageSize and NumPages this makes the FTL a
// kvs backend, so the store's log can live on wear-leveled storage.
func (f *FTL) ErasePage(lp int) error {
	if lp < 0 || lp >= len(f.l2p) {
		return fmt.Errorf("%w: page %d", ErrBounds, lp)
	}
	return f.dev.Flash().ErasePage(f.l2p[lp])
}

// MapOverheadBytes returns the RAM the translation table consumes — the
// overhead §II-B calls prohibitive on small IoT devices.
func (f *FTL) MapOverheadBytes() int { return 8 * len(f.l2p) }

// Translate returns the physical address for a logical address.
func (f *FTL) Translate(laddr int) (int, error) {
	ps := f.dev.Flash().Spec().PageSize
	if laddr < 0 {
		return 0, fmt.Errorf("%w: %#x", ErrBounds, laddr)
	}
	lp := laddr / ps
	if lp >= len(f.l2p) {
		return 0, fmt.Errorf("%w: %#x", ErrBounds, laddr)
	}
	return f.l2p[lp]*ps + laddr%ps, nil
}

// Read fills dst from the logical address, translating page by page.
func (f *FTL) Read(laddr int, dst []byte) error {
	return f.forEachPage(laddr, len(dst), func(paddr, off, n int) error {
		return f.dev.Read(paddr, dst[off:off+n])
	})
}

// Write stores data at the logical address through the FlipBit device,
// then runs the wear-leveling check on the pages the write touched —
// leveling chases the hot data, not global wear statistics, so cold pages
// are never churned against each other.
func (f *FTL) Write(laddr int, data []byte) error {
	var touched []int
	err := f.forEachPage(laddr, len(data), func(paddr, off, n int) error {
		touched = append(touched, paddr/f.dev.Flash().Spec().PageSize)
		return f.dev.Write(paddr, data[off:off+n])
	})
	if err != nil {
		return err
	}
	for _, p := range touched {
		if err := f.levelWear(p); err != nil {
			return err
		}
	}
	return nil
}

// forEachPage splits [laddr, laddr+n) into per-page runs and calls fn with
// the translated physical address of each run.
func (f *FTL) forEachPage(laddr, n int, fn func(paddr, off, n int) error) error {
	ps := f.dev.Flash().Spec().PageSize
	off := 0
	for n > 0 {
		paddr, err := f.Translate(laddr)
		if err != nil {
			return err
		}
		run := ps - laddr%ps
		if run > n {
			run = n
		}
		if err := fn(paddr, off, run); err != nil {
			return err
		}
		laddr += run
		off += run
		n -= run
	}
	return nil
}

// levelWear swaps the just-written physical page with the coldest page
// when their wear gap exceeds the threshold. A journaled FTL only levels
// inside its data region — the journal pages are not remappable.
func (f *FTL) levelWear(hot int) error {
	fl := f.dev.Flash()
	n := fl.Spec().NumPages
	if f.journaled {
		n = f.lay.nl
	}
	cold := 0
	var coldW uint32
	first := true
	for p := 0; p < n; p++ {
		w := fl.Wear(p)
		if first || w < coldW {
			cold, coldW = p, w
		}
		first = false
	}
	if hot == cold || fl.Wear(hot)-coldW < f.swapDelta {
		return nil
	}
	if f.journaled {
		return f.journalSwap(hot, cold)
	}
	return f.swap(hot, cold)
}

// swap exchanges the contents and logical mappings of two physical pages.
func (f *FTL) swap(a, b int) error {
	fl := f.dev.Flash()
	ps := fl.Spec().PageSize
	bufA := make([]byte, ps)
	bufB := make([]byte, ps)
	if err := f.dev.Read(fl.PageBase(a), bufA); err != nil {
		return err
	}
	if err := f.dev.Read(fl.PageBase(b), bufB); err != nil {
		return err
	}
	if err := f.dev.Write(fl.PageBase(a), bufB); err != nil {
		return err
	}
	if err := f.dev.Write(fl.PageBase(b), bufA); err != nil {
		return err
	}
	la, lb := f.p2l[a], f.p2l[b]
	f.l2p[la], f.l2p[lb] = b, a
	f.p2l[a], f.p2l[b] = lb, la
	f.stats.Swaps++
	f.stats.SwapReads += 2
	f.stats.SwapWrites += 2
	return nil
}

// WearSpread returns (max wear, mean wear) across physical pages — the
// leveling quality metric; device lifetime ends at max wear.
func (f *FTL) WearSpread() (max uint32, mean float64) {
	fl := f.dev.Flash()
	var sum uint64
	for p := 0; p < fl.Spec().NumPages; p++ {
		w := fl.Wear(p)
		if w > max {
			max = w
		}
		sum += uint64(w)
	}
	return max, float64(sum) / float64(fl.Spec().NumPages)
}
