// Package ftl implements a small page-mapped flash translation layer with
// static wear leveling — the class of technique §II-B discusses. The paper
// argues FlipBit extends lifetime *without* an FTL's memory and management
// overheads, and that the two are orthogonal and composable; this package
// exists to measure both claims (see the exp-wear experiment).
//
// Design, matching embedded NOR practice: logical pages map to physical
// pages through an in-RAM table; writes go in place (so FlipBit's
// previous-content approximation still applies), and when the wear of a hot
// page exceeds the coldest page's wear by a threshold, the two pages swap —
// classic static wear leveling. Each swap costs two page reads, two page
// writes and whatever erases those writes need.
package ftl

import (
	"errors"
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// ErrBounds is returned for out-of-range logical addresses.
var ErrBounds = errors.New("ftl: logical address out of range")

// ErrNoSpares is returned when a failing page should be retired but the
// spare pool is exhausted — the device is out of healthy replacements.
var ErrNoSpares = errors.New("ftl: spare pool exhausted")

// Stats counts the FTL's own activity.
type Stats struct {
	Swaps      uint64 // wear-leveling page swaps performed
	SwapReads  uint64 // pages read by swaps
	SwapWrites uint64 // pages written by swaps

	// Endurance-management counters.
	Retirements uint64 // pages retired onto spares
	Refreshes   uint64 // scrub refreshes written through RefreshPage

	// Journaled-mode counters (zero for a volatile FTL built with New).
	Checkpoints   uint64 // map checkpoints written (with read-back verify)
	IntentErases  uint64 // intent-log page reclaims
	RolledForward uint64 // interrupted swaps completed at mount
	RolledBack    uint64 // interrupted swaps undone at mount
	CorrectedBits uint64 // single-bit metadata repairs (read disturb)
}

// FTL is a page-mapped translation layer over a FlipBit device.
type FTL struct {
	dev *core.Device

	// map logical page -> physical page, and its inverse. p2l covers the
	// whole device; entries for unmapped physical pages (free spares,
	// retired pages, journal metadata) hold -1.
	l2p []int
	p2l []int

	// Spare pool for bad-page retirement: poolSize physical pages starting
	// at poolBase. A spare is free while unmapped; retirement remaps a
	// failing data page's logical owner onto a free spare. wantSpares is
	// the construction-time request (clamped by geometry).
	poolBase   int
	poolSize   int
	wantSpares int

	// swapDelta is the wear imbalance (in erase cycles) that triggers a
	// swap between the hottest and coldest pages.
	swapDelta uint32

	// Journaled mode (journal.go). A volatile FTL built with New keeps
	// journaled false and maps the whole device; Open reserves the tail
	// of the device for the journal and survives crashes.
	journaled      bool
	lay            layout
	mapSeq         uint32 // sequence of the in-RAM map's last durable point
	intentOff      int    // append offset within the intent-log page
	checkpointSlot int    // slot holding the newest durable map

	stats Stats
}

// Option configures the FTL.
type Option func(*FTL)

// WithSwapDelta sets the wear-imbalance threshold that triggers a swap
// (default 16 cycles; smaller = more aggressive leveling, more copy cost).
func WithSwapDelta(d uint32) Option {
	return func(f *FTL) {
		if d > 0 {
			f.swapDelta = d
		}
	}
}

// WithSpares reserves n physical pages as a retirement pool: when a data
// page wears out or is refused by the health gate, its logical page is
// remapped onto a free spare and the bad page is fenced off. The logical
// space shrinks by n pages.
func WithSpares(n int) Option {
	return func(f *FTL) {
		if n > 0 {
			f.wantSpares = n
		}
	}
}

// New builds an FTL mapping every page of dev identity-initialised. The map
// lives only in RAM: a reboot forgets every swap, so New is for lifetime
// experiments, not for data that must survive power loss — use Open for
// that.
func New(dev *core.Device, opts ...Option) *FTL {
	f := &FTL{dev: dev, swapDelta: 16}
	for _, o := range opts {
		o(f)
	}
	np := dev.Flash().Spec().NumPages
	ns := f.wantSpares
	if ns >= np {
		ns = np - 1
	}
	nl := np - ns
	f.l2p = make([]int, nl)
	f.p2l = make([]int, np)
	f.poolBase, f.poolSize = nl, ns
	for pp := range f.p2l {
		f.p2l[pp] = -1
	}
	for lp := range f.l2p {
		f.l2p[lp] = lp
		f.p2l[lp] = lp
	}
	return f
}

// Open mounts a journaled FTL (see journal.go): the tail of the device is
// reserved for a spare page, an intent log, two map checkpoints and the
// retirement pool, and mounting recovers the translation map — finishing or
// rolling back a swap that was interrupted by power loss. The logical space
// (NumPages) is smaller than the device by the journal overhead and the
// spare pool.
func Open(dev *core.Device, opts ...Option) (*FTL, error) {
	f := &FTL{dev: dev, swapDelta: 16, journaled: true}
	for _, o := range opts {
		o(f)
	}
	spec := dev.Flash().Spec()
	lay, err := computeLayout(spec.PageSize, spec.NumPages, f.wantSpares)
	if err != nil {
		return nil, err
	}
	f.lay = lay
	f.poolBase, f.poolSize = lay.poolBase, lay.spares
	f.l2p = make([]int, lay.nl)
	f.p2l = make([]int, spec.NumPages)
	for pp := range f.p2l {
		f.p2l[pp] = -1
	}
	if err := f.recover(); err != nil {
		return nil, err
	}
	return f, nil
}

// Stats returns the FTL's activity counters.
func (f *FTL) Stats() Stats { return f.stats }

// PageSize returns the logical page size (identical to the physical one).
func (f *FTL) PageSize() int { return f.dev.Flash().Spec().PageSize }

// NumPages returns the number of logical pages: the whole device for a
// volatile FTL, the data region for a journaled one.
func (f *FTL) NumPages() int { return len(f.l2p) }

// ErasePage erases the physical page currently backing logical page lp.
// Together with Read, Write, PageSize and NumPages this makes the FTL a
// kvs backend, so the store's log can live on wear-leveled storage. A
// worn-out erase retires the page onto a fresh spare (when the pool has
// one), so the logical page comes back blank and healthy.
func (f *FTL) ErasePage(lp int) error {
	if lp < 0 || lp >= len(f.l2p) {
		return fmt.Errorf("%w: page %d", ErrBounds, lp)
	}
	err := f.dev.ErasePage(f.l2p[lp])
	if err != nil && f.poolSize > 0 && retirableWriteErr(err) {
		if rerr := f.retirePhys(f.l2p[lp], true); rerr == nil {
			return nil
		}
	}
	return err
}

// MapOverheadBytes returns the RAM the translation table consumes — the
// overhead §II-B calls prohibitive on small IoT devices.
func (f *FTL) MapOverheadBytes() int { return 8 * len(f.l2p) }

// Translate returns the physical address for a logical address.
func (f *FTL) Translate(laddr int) (int, error) {
	ps := f.dev.Flash().Spec().PageSize
	if laddr < 0 {
		return 0, fmt.Errorf("%w: %#x", ErrBounds, laddr)
	}
	lp := laddr / ps
	if lp >= len(f.l2p) {
		return 0, fmt.Errorf("%w: %#x", ErrBounds, laddr)
	}
	return f.l2p[lp]*ps + laddr%ps, nil
}

// Read fills dst from the logical address, translating page by page.
func (f *FTL) Read(laddr int, dst []byte) error {
	return f.forEachPage(laddr, len(dst), func(paddr, off, n int) error {
		return f.dev.Read(paddr, dst[off:off+n])
	})
}

// SensePage margin-senses logical page lp into dst (one page), resolving
// marginal retention cells to their stored values. It satisfies the
// store's optional sense extension so the hardened read path works through
// the translation layer.
func (f *FTL) SensePage(lp int, dst []byte) error {
	if lp < 0 || lp >= len(f.l2p) {
		return fmt.Errorf("%w: logical page %d", ErrBounds, lp)
	}
	return f.dev.SensePage(f.l2p[lp], dst)
}

// Write stores data at the logical address through the FlipBit device,
// then runs the wear-leveling check on the pages the write touched —
// leveling chases the hot data, not global wear statistics, so cold pages
// are never churned against each other.
//
// When a page fails with the health gate's ErrExactDegraded (or wears out
// mid-write) and the spare pool has a replacement, the physical page is
// retired — its repaired contents move to a spare — and the write retries
// once on the healthy page.
func (f *FTL) Write(laddr int, data []byte) error {
	ps := f.dev.Flash().Spec().PageSize
	var touched []int
	off := 0
	n := len(data)
	for n > 0 {
		paddr, err := f.Translate(laddr)
		if err != nil {
			return err
		}
		run := ps - laddr%ps
		if run > n {
			run = n
		}
		werr := f.dev.Write(paddr, data[off:off+run])
		if werr != nil && f.poolSize > 0 && retirableWriteErr(werr) {
			pp := paddr / ps
			if rerr := f.retirePhys(pp, false); rerr == nil {
				// The logical page moved; retry once on its new home.
				paddr, _ = f.Translate(laddr)
				werr = f.dev.Write(paddr, data[off:off+run])
			}
		}
		if werr != nil {
			return werr
		}
		touched = append(touched, paddr/ps)
		laddr += run
		off += run
		n -= run
	}
	for _, p := range touched {
		if err := f.levelWear(p); err != nil {
			return err
		}
	}
	return nil
}

// retirableWriteErr reports whether a write failure is fixed by moving the
// page onto a spare: the health gate refusing a degraded page, the page
// wearing out under the write, or the page being fenced (possible after a
// crash rolled the map back to a since-retired page).
func retirableWriteErr(err error) bool {
	return errors.Is(err, core.ErrExactDegraded) ||
		errors.Is(err, flash.ErrWornOut) ||
		errors.Is(err, flash.ErrPageRetired)
}

// forEachPage splits [laddr, laddr+n) into per-page runs and calls fn with
// the translated physical address of each run.
func (f *FTL) forEachPage(laddr, n int, fn func(paddr, off, n int) error) error {
	ps := f.dev.Flash().Spec().PageSize
	off := 0
	for n > 0 {
		paddr, err := f.Translate(laddr)
		if err != nil {
			return err
		}
		run := ps - laddr%ps
		if run > n {
			run = n
		}
		if err := fn(paddr, off, run); err != nil {
			return err
		}
		laddr += run
		off += run
		n -= run
	}
	return nil
}

// levelWear swaps the just-written physical page with the coldest mapped
// page when their wear gap exceeds the threshold. Only mapped pages are
// candidates: journal metadata is not remappable, free spares must stay
// blank for retirement, and retired pages are out of service. The wear
// figures come from one consistent WearSnapshot rather than per-page lock
// round-trips.
func (f *FTL) levelWear(hot int) error {
	fl := f.dev.Flash()
	snap := fl.WearSnapshot()
	cold := -1
	var coldW uint32
	for _, pp := range f.l2p {
		if fl.Degraded(pp) || fl.AtRating(pp) {
			continue
		}
		if cold < 0 || snap[pp] < coldW {
			cold, coldW = pp, snap[pp]
		}
	}
	// A swap rewrites both pages, so a degraded endpoint could tear the
	// exchange mid-way (the health gate refuses the second write after the
	// first landed). An at-rating endpoint is as bad: the erase the swap
	// needs is the one that corrupts it — that page's future is retirement,
	// not relocation. Leveling is an optimisation; skip rather than risk it.
	if cold < 0 || hot == cold || fl.Degraded(hot) || fl.AtRating(hot) || snap[hot]-coldW < f.swapDelta {
		return nil
	}
	if f.journaled {
		return f.journalSwap(hot, cold)
	}
	return f.swap(hot, cold)
}

// swap exchanges the contents and logical mappings of two physical pages.
func (f *FTL) swap(a, b int) error {
	fl := f.dev.Flash()
	ps := fl.Spec().PageSize
	bufA := make([]byte, ps)
	bufB := make([]byte, ps)
	if err := f.dev.Read(fl.PageBase(a), bufA); err != nil {
		return err
	}
	if err := f.dev.Read(fl.PageBase(b), bufB); err != nil {
		return err
	}
	if err := f.dev.Write(fl.PageBase(a), bufB); err != nil {
		return err
	}
	if err := f.dev.Write(fl.PageBase(b), bufA); err != nil {
		return err
	}
	la, lb := f.p2l[a], f.p2l[b]
	f.l2p[la], f.l2p[lb] = b, a
	f.p2l[a], f.p2l[b] = lb, la
	f.stats.Swaps++
	f.stats.SwapReads += 2
	f.stats.SwapWrites += 2
	return nil
}

// PageWear returns the erase count of the physical page currently backing
// logical page lp. This makes the FTL a kvs.WearBackend, so the store's
// proactive compaction biases victim selection toward low-wear pages even
// when its log rides on translated storage.
func (f *FTL) PageWear(lp int) uint32 {
	if lp < 0 || lp >= len(f.l2p) {
		return 0
	}
	return f.dev.Flash().Wear(f.l2p[lp])
}

// WearSpread returns (max wear, mean wear) across physical pages — the
// leveling quality metric; device lifetime ends at max wear.
func (f *FTL) WearSpread() (max uint32, mean float64) {
	snap := f.dev.Flash().WearSnapshot()
	var sum uint64
	for _, w := range snap {
		if w > max {
			max = w
		}
		sum += uint64(w)
	}
	return max, float64(sum) / float64(len(snap))
}
