package ftl

import (
	"errors"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

func newFTL(t *testing.T, pages int, opts ...Option) (*FTL, *core.Device) {
	t.Helper()
	spec := flash.DefaultSpec()
	spec.PageSize = 32
	spec.NumPages = pages
	dev := core.MustNewDevice(spec)
	return New(dev, opts...), dev
}

func TestReadWriteRoundTrip(t *testing.T) {
	f, _ := newFTL(t, 8)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := f.Write(10, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.Read(10, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestWriteSpanningPages(t *testing.T) {
	f, _ := newFTL(t, 8)
	rng := xrand.New(1)
	data := make([]byte, 100) // spans 4 pages of 32
	for i := range data {
		data[i] = rng.Byte()
	}
	if err := f.Write(16, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.Read(16, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}

func TestBounds(t *testing.T) {
	f, dev := newFTL(t, 4)
	size := dev.Flash().Spec().Size()
	if err := f.Write(size, []byte{1}); !errors.Is(err, ErrBounds) {
		t.Error("out-of-range write should fail")
	}
	if _, err := f.Translate(-1); !errors.Is(err, ErrBounds) {
		t.Error("negative address should fail")
	}
}

// TestWearLevelingSpreadsHotspot: hammering one logical page must spread
// erases across physical pages, keeping max wear near mean wear.
func TestWearLevelingSpreadsHotspot(t *testing.T) {
	f, dev := newFTL(t, 8, WithSwapDelta(4))
	a := make([]byte, 32)
	b := make([]byte, 32)
	for i := range a {
		a[i], b[i] = 0x55, 0xAA // alternating forces an erase per write
	}
	const rounds = 200
	for i := 0; i < rounds; i++ {
		buf := a
		if i%2 == 1 {
			buf = b
		}
		if err := f.Write(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	max, mean := f.WearSpread()
	if f.Stats().Swaps == 0 {
		t.Fatal("no wear-leveling swaps happened")
	}
	// Without leveling max wear would be ~200 on one page (mean 25 over
	// 8 pages). With leveling it must be far closer to the mean.
	if float64(max) > 3*mean {
		t.Errorf("max wear %d vs mean %.1f: leveling ineffective", max, mean)
	}
	_ = dev
}

// TestNoLevelingBaseline: with a huge swap threshold the hotspot stays on
// one page — the contrast case for the test above.
func TestNoLevelingBaseline(t *testing.T) {
	f, dev := newFTL(t, 8, WithSwapDelta(1<<30))
	a := make([]byte, 32)
	b := make([]byte, 32)
	for i := range a {
		a[i], b[i] = 0x55, 0xAA
	}
	for i := 0; i < 100; i++ {
		buf := a
		if i%2 == 1 {
			buf = b
		}
		if err := f.Write(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Flash().Wear(0) < 90 {
		t.Errorf("hotspot page wear %d; expected ~100 without leveling", dev.Flash().Wear(0))
	}
	if f.Stats().Swaps != 0 {
		t.Error("swaps happened despite the disabled threshold")
	}
}

// TestDataSurvivesSwaps: after many swaps every logical page still reads
// back what was last written to it.
func TestDataSurvivesSwaps(t *testing.T) {
	f, _ := newFTL(t, 8, WithSwapDelta(2))
	rng := xrand.New(7)
	ps := 32
	// Track expected logical content.
	want := make([][]byte, 8)
	for lp := range want {
		want[lp] = make([]byte, ps)
		for i := range want[lp] {
			want[lp][i] = rng.Byte()
		}
		if err := f.Write(lp*ps, want[lp]); err != nil {
			t.Fatal(err)
		}
	}
	// Hammer logical page 3 to force swaps.
	for i := 0; i < 120; i++ {
		for j := range want[3] {
			want[3][j] = rng.Byte()
		}
		if err := f.Write(3*ps, want[3]); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().Swaps == 0 {
		t.Fatal("expected swaps")
	}
	got := make([]byte, ps)
	for lp := range want {
		if err := f.Read(lp*ps, got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[lp][i] {
				t.Fatalf("logical page %d byte %d corrupted after swaps", lp, i)
			}
		}
	}
}

// TestComposesWithFlipBit: approximation still works through the FTL (the
// §II-B orthogonality claim): a hot logical page written with similar data
// avoids erases entirely, so leveling never even needs to kick in.
func TestComposesWithFlipBit(t *testing.T) {
	f, dev := newFTL(t, 8, WithSwapDelta(4))
	if err := dev.SetApproxRegion(0, dev.Flash().Spec().Size()); err != nil {
		t.Fatal(err)
	}
	dev.SetThreshold(4)
	buf := make([]byte, 32)
	rng := xrand.New(11)
	for i := range buf {
		buf[i] = rng.Byte()
	}
	if err := f.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	erasesAfterFirst := dev.Flash().Stats().Erases
	for round := 0; round < 100; round++ {
		for i := range buf {
			buf[i] = buf[i] - byte(rng.Intn(3)) + 1 // small drift
		}
		if err := f.Write(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	// The upward component of the drift is unreachable without an erase,
	// so occasional erases are physics, not a bug; FlipBit must still
	// avoid the large majority of the ~100 a plain device would need.
	after := dev.Flash().Stats().Erases
	if got := after - erasesAfterFirst; got > 50 {
		t.Errorf("FlipBit through FTL erased %d times in 100 similar writes; expected well under half", got)
	}
}

func TestMapOverhead(t *testing.T) {
	f, _ := newFTL(t, 8)
	if f.MapOverheadBytes() != 64 {
		t.Errorf("map overhead = %d, want 64", f.MapOverheadBytes())
	}
}
