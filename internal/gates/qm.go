package gates

import (
	"math/bits"
	"sort"
)

// Quine–McCluskey two-level minimization. Used to synthesize compact
// sum-of-products logic for the truth-table block of the FlipBit slice
// (paper §III-B: "The truth table logic block implements Table II ...
// through combinational logic").

// TruthTable is a single-output boolean function of NumInputs variables.
// Out[v] is the function value for input assignment v (bit i of v = input i).
type TruthTable struct {
	NumInputs int
	Out       []bool
}

// NewTruthTable builds a table by evaluating f on every assignment.
func NewTruthTable(numInputs int, f func(v uint32) bool) TruthTable {
	out := make([]bool, 1<<uint(numInputs))
	for v := range out {
		out[v] = f(uint32(v))
	}
	return TruthTable{NumInputs: numInputs, Out: out}
}

// Implicant is a product term: for input i, if Mask bit i is 0 the input is
// "don't care"; otherwise it must equal bit i of Value.
type Implicant struct {
	Value uint32
	Mask  uint32
}

// Covers reports whether the implicant covers minterm v.
func (im Implicant) Covers(v uint32) bool { return v&im.Mask == im.Value }

// Literals returns the number of literals in the product term.
func (im Implicant) Literals() int { return bits.OnesCount32(im.Mask) }

// Minimize returns a small sum-of-products cover of tt using the
// Quine–McCluskey procedure: generate prime implicants by iterative merging,
// pick essential primes, then cover the remainder greedily (largest
// coverage first). The result is exact in function, heuristic in size.
func Minimize(tt TruthTable) []Implicant {
	var minterms []uint32
	for v, o := range tt.Out {
		if o {
			minterms = append(minterms, uint32(v))
		}
	}
	if len(minterms) == 0 {
		return nil
	}
	fullMask := uint32(1)<<uint(tt.NumInputs) - 1
	if len(minterms) == 1<<uint(tt.NumInputs) {
		// Constant true: one implicant with no literals.
		return []Implicant{{Value: 0, Mask: 0}}
	}

	primes := primeImplicants(minterms, fullMask)
	return coverMinterms(primes, minterms)
}

// primeImplicants merges adjacent implicants level by level until no merge
// applies; unmerged implicants are prime.
func primeImplicants(minterms []uint32, fullMask uint32) []Implicant {
	current := make(map[Implicant]bool, len(minterms))
	for _, m := range minterms {
		current[Implicant{Value: m, Mask: fullMask}] = false
	}
	var primes []Implicant
	for len(current) > 0 {
		next := make(map[Implicant]bool)
		// Group by mask then try single-bit merges within a group.
		var list []Implicant
		for im := range current {
			list = append(list, im)
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].Mask != list[j].Mask {
				return list[i].Mask < list[j].Mask
			}
			return list[i].Value < list[j].Value
		})
		index := make(map[Implicant]int, len(list))
		for i, im := range list {
			index[im] = i
		}
		merged := make([]bool, len(list))
		for i, im := range list {
			// Try flipping each cared-about bit; if the sibling
			// exists, they merge into a term without that bit.
			for m := im.Mask; m != 0; m &= m - 1 {
				bit := m & -m
				sib := Implicant{Value: im.Value ^ bit, Mask: im.Mask}
				j, ok := index[sib]
				if !ok {
					continue
				}
				merged[i] = true
				merged[j] = true
				nm := Implicant{Value: im.Value &^ bit, Mask: im.Mask &^ bit}
				next[nm] = false
			}
		}
		for i, im := range list {
			if !merged[i] {
				primes = append(primes, im)
			}
		}
		current = next
	}
	return primes
}

// coverMinterms selects essential primes first, then greedily the prime
// covering the most uncovered minterms (ties: fewer literals).
func coverMinterms(primes []Implicant, minterms []uint32) []Implicant {
	covering := make([][]int, len(minterms)) // minterm -> prime indices
	for pi, p := range primes {
		for mi, m := range minterms {
			if p.Covers(m) {
				covering[mi] = append(covering[mi], pi)
			}
		}
	}
	chosen := make(map[int]bool)
	covered := make([]bool, len(minterms))

	// Essential primes: sole cover of some minterm.
	for mi := range minterms {
		if len(covering[mi]) == 1 {
			chosen[covering[mi][0]] = true
		}
	}
	markCovered := func() {
		for mi, m := range minterms {
			if covered[mi] {
				continue
			}
			for pi := range chosen {
				if primes[pi].Covers(m) {
					covered[mi] = true
					break
				}
			}
		}
	}
	markCovered()

	// Greedy cover of the rest.
	for {
		remaining := 0
		for _, c := range covered {
			if !c {
				remaining++
			}
		}
		if remaining == 0 {
			break
		}
		best, bestCount, bestLits := -1, 0, 0
		for pi, p := range primes {
			if chosen[pi] {
				continue
			}
			count := 0
			for mi, m := range minterms {
				if !covered[mi] && p.Covers(m) {
					count++
				}
			}
			if count > bestCount || (count == bestCount && count > 0 && p.Literals() < bestLits) {
				best, bestCount, bestLits = pi, count, p.Literals()
			}
		}
		if best < 0 {
			break // unreachable if primes cover all minterms
		}
		chosen[best] = true
		markCovered()
	}

	out := make([]Implicant, 0, len(chosen))
	for pi := range chosen {
		out = append(out, primes[pi])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value < out[j].Value
		}
		return out[i].Mask < out[j].Mask
	})
	return out
}

// EvalCover evaluates a sum-of-products cover on assignment v.
func EvalCover(cover []Implicant, v uint32) bool {
	for _, im := range cover {
		if im.Covers(v) {
			return true
		}
	}
	return false
}

// SynthesizeSOP instantiates the cover as AND-OR logic over the given input
// signals (inputs[i] corresponds to variable i) and returns the output.
func SynthesizeSOP(c *Circuit, cover []Implicant, inputs []Signal) Signal {
	terms := make([]Signal, 0, len(cover))
	for _, im := range cover {
		term := c.Const(true)
		for i, in := range inputs {
			bit := uint32(1) << uint(i)
			if im.Mask&bit == 0 {
				continue
			}
			if im.Value&bit != 0 {
				term = c.And(term, in)
			} else {
				term = c.And(term, c.Not(in))
			}
		}
		terms = append(terms, term)
	}
	return c.OrN(terms...)
}
