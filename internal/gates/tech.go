package gates

import (
	"github.com/flipbit-sim/flipbit/internal/energy"
)

// Tech is a standard-cell technology model used to turn gate counts into
// area and power figures comparable to the paper's Synopsys DC results
// (Table IV, 65 nm, 33 MHz).
type Tech struct {
	Name string
	// Area per gate type in µm².
	Area map[Op]float64
	// Dynamic+leakage power per gate type at 1 MHz toggle-dominated
	// activity, in µW/MHz. Power at frequency f scales linearly.
	PowerPerMHz map[Op]float64
}

// Tech65nm returns a 65 nm low-power library calibrated to commodity cell
// data: a NAND2-equivalent occupies ≈1.44 µm² and more complex cells scale
// by their transistor counts. Power density is calibrated so the FlipBit
// unit lands in the regime the paper reports (tens of µW at 33 MHz).
func Tech65nm() Tech {
	// A 65 nm LP NAND2 is ≈1.44 µm²; switching a ~2 fF node at 1.2 V with
	// ~15% activity dissipates ≈0.5 nW/MHz, i.e. 0.0005 µW/MHz.
	const nand2 = 1.44
	const p = 0.0005
	return Tech{
		Name: "generic-65nm-lp",
		Area: map[Op]float64{
			OpNot: 0.75 * nand2,
			OpAnd: 1.25 * nand2,
			OpOr:  1.25 * nand2,
			OpXor: 2.25 * nand2,
			OpMux: 2.5 * nand2,
			OpDFF: 4.5 * nand2,
		},
		PowerPerMHz: map[Op]float64{
			OpNot: 0.75 * p,
			OpAnd: 1.25 * p,
			OpOr:  1.25 * p,
			OpXor: 2.25 * p,
			OpMux: 2.5 * p,
			OpDFF: 4.5 * p,
		},
	}
}

// Report is a synthesis-style summary of a circuit in a technology.
type Report struct {
	Gates    int
	ByOp     map[Op]int
	AreaUm2  float64
	Power    energy.Power // at the report's frequency
	FreqMHz  float64
	DepthGat int
}

// Synthesize produces area/power figures for circuit c in tech t at the
// given clock frequency.
func Synthesize(c *Circuit, t Tech, freqMHz float64) Report {
	counts := c.Counts()
	var area, powerUw float64
	gatesTotal := 0
	for op, n := range counts {
		gatesTotal += n
		area += t.Area[op] * float64(n)
		powerUw += t.PowerPerMHz[op] * float64(n) * freqMHz
	}
	return Report{
		Gates:    gatesTotal,
		ByOp:     counts,
		AreaUm2:  area,
		Power:    energy.Power(powerUw) * energy.Microwatt,
		FreqMHz:  freqMHz,
		DepthGat: c.Depth(),
	}
}
