package gates

// Word-level arithmetic blocks built from gates. Words are LSB-first signal
// slices. These are the building blocks of the FlipBit slice comparator and
// the error-tracking datapath (Fig. 9).

// FullAdder returns (sum, carry) for a + b + cin.
func FullAdder(c *Circuit, a, b, cin Signal) (Signal, Signal) {
	axb := c.Xor(a, b)
	sum := c.Xor(axb, cin)
	carry := c.Or(c.And(a, b), c.And(axb, cin))
	return sum, carry
}

// AddRipple returns the width-len(a) sum and the carry out of a + b + cin.
// a and b must have equal width.
func AddRipple(c *Circuit, a, b []Signal, cin Signal) ([]Signal, Signal) {
	if len(a) != len(b) {
		panic("gates: AddRipple width mismatch")
	}
	sum := make([]Signal, len(a))
	carry := cin
	for i := range a {
		sum[i], carry = FullAdder(c, a[i], b[i], carry)
	}
	return sum, carry
}

// Sub returns a - b (two's complement, same width) and a "no borrow" flag
// that is true when a >= b.
func Sub(c *Circuit, a, b []Signal) ([]Signal, Signal) {
	nb := make([]Signal, len(b))
	for i := range b {
		nb[i] = c.Not(b[i])
	}
	diff, carry := AddRipple(c, a, nb, c.Const(true))
	return diff, carry
}

// LessThan returns the unsigned comparison a < b for equal-width words.
func LessThan(c *Circuit, a, b []Signal) Signal {
	_, geq := Sub(c, a, b)
	return c.Not(geq)
}

// AbsDiff returns |a - b| for equal-width unsigned words, as the Fig. 9
// error hardware computes it: subtract both ways and select the
// non-negative result.
func AbsDiff(c *Circuit, a, b []Signal) []Signal {
	ab, aGeqB := Sub(c, a, b)
	ba, _ := Sub(c, b, a)
	out := make([]Signal, len(a))
	for i := range a {
		out[i] = c.Mux(aGeqB, ab[i], ba[i])
	}
	return out
}

// ZeroExtend widens w to width bits with constant zeros.
func ZeroExtend(c *Circuit, w []Signal, width int) []Signal {
	out := make([]Signal, width)
	copy(out, w)
	for i := len(w); i < width; i++ {
		out[i] = c.Const(false)
	}
	return out
}

// ConstWord returns width signals holding the constant v, LSB first.
func ConstWord(c *Circuit, v uint64, width int) []Signal {
	out := make([]Signal, width)
	for i := range out {
		out[i] = c.Const(v&(1<<uint(i)) != 0)
	}
	return out
}
