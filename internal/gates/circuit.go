// Package gates provides a small combinational-logic framework: a netlist
// builder with structural hashing and constant folding, an evaluator, a
// Quine–McCluskey two-level minimizer, and a 65 nm technology model for
// area/power estimation.
//
// It is the substrate under internal/hw, which builds the FlipBit
// approximation and error-tracking circuits (paper Figs. 6–9) and estimates
// their synthesis cost (Table IV).
package gates

import "fmt"

// Op is a gate type.
type Op uint8

// Supported gate types. Input and Const nodes are free; everything else has
// area and power in a technology library. DFF models a flip-flop for the
// sequential accumulator in the error-tracking datapath.
const (
	OpConst Op = iota
	OpInput
	OpNot
	OpAnd
	OpOr
	OpXor
	OpMux // Mux(sel, a, b) = sel ? a : b
	OpDFF // state element; evaluated combinationally via its D input in Eval
)

func (o Op) String() string {
	switch o {
	case OpConst:
		return "CONST"
	case OpInput:
		return "INPUT"
	case OpNot:
		return "NOT"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpXor:
		return "XOR"
	case OpMux:
		return "MUX"
	case OpDFF:
		return "DFF"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Signal identifies a net in a circuit.
type Signal int32

type node struct {
	op   Op
	a, b Signal // operands (a = sel for MUX)
	c    Signal // third operand for MUX
	val  bool   // for OpConst
}

// Circuit is a combinational netlist under construction. Nodes are stored
// in topological (creation) order, so evaluation is a single forward pass.
//
// The builder performs light logic optimization on the fly: constants fold,
// identical structural nodes are shared, and trivial identities simplify
// (a&0=0, a|1=1, a^a=0, …). This mirrors what synthesis would do and is why
// the hardcoded n = 2 unit comes out smaller than the configurable one.
type Circuit struct {
	nodes   []node
	inputs  []Signal
	inNames []string
	outputs []Signal
	outName []string
	hash    map[node]Signal
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{hash: make(map[node]Signal)}
}

// Input declares a primary input and returns its signal.
func (c *Circuit) Input(name string) Signal {
	s := c.add(node{op: OpInput, a: Signal(len(c.inputs))})
	c.inputs = append(c.inputs, s)
	c.inNames = append(c.inNames, name)
	return s
}

// Inputs declares count inputs named prefix0..prefixN-1, LSB first.
func (c *Circuit) Inputs(prefix string, count int) []Signal {
	out := make([]Signal, count)
	for i := range out {
		out[i] = c.Input(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// Const returns a constant signal.
func (c *Circuit) Const(v bool) Signal {
	return c.add(node{op: OpConst, val: v})
}

func (c *Circuit) isConst(s Signal) (bool, bool) {
	n := c.nodes[s]
	return n.val, n.op == OpConst
}

// Not returns ¬a.
func (c *Circuit) Not(a Signal) Signal {
	if v, ok := c.isConst(a); ok {
		return c.Const(!v)
	}
	// ¬¬a = a
	if c.nodes[a].op == OpNot {
		return c.nodes[a].a
	}
	return c.add(node{op: OpNot, a: a})
}

// And returns a ∧ b.
func (c *Circuit) And(a, b Signal) Signal {
	if a > b {
		a, b = b, a
	}
	if v, ok := c.isConst(a); ok {
		if !v {
			return c.Const(false)
		}
		return b
	}
	if v, ok := c.isConst(b); ok {
		if !v {
			return c.Const(false)
		}
		return a
	}
	if a == b {
		return a
	}
	return c.add(node{op: OpAnd, a: a, b: b})
}

// Or returns a ∨ b.
func (c *Circuit) Or(a, b Signal) Signal {
	if a > b {
		a, b = b, a
	}
	if v, ok := c.isConst(a); ok {
		if v {
			return c.Const(true)
		}
		return b
	}
	if v, ok := c.isConst(b); ok {
		if v {
			return c.Const(true)
		}
		return a
	}
	if a == b {
		return a
	}
	return c.add(node{op: OpOr, a: a, b: b})
}

// Xor returns a ⊕ b.
func (c *Circuit) Xor(a, b Signal) Signal {
	if a > b {
		a, b = b, a
	}
	if v, ok := c.isConst(a); ok {
		if v {
			return c.Not(b)
		}
		return b
	}
	if v, ok := c.isConst(b); ok {
		if v {
			return c.Not(a)
		}
		return a
	}
	if a == b {
		return c.Const(false)
	}
	return c.add(node{op: OpXor, a: a, b: b})
}

// Mux returns sel ? a : b.
func (c *Circuit) Mux(sel, a, b Signal) Signal {
	if v, ok := c.isConst(sel); ok {
		if v {
			return a
		}
		return b
	}
	if a == b {
		return a
	}
	return c.add(node{op: OpMux, a: sel, b: a, c: b})
}

// DFF declares a flip-flop fed by d. In combinational evaluation the flop
// is transparent; it exists so sequential datapaths (the MAE accumulator)
// are counted in area and power.
func (c *Circuit) DFF(d Signal) Signal {
	return c.add(node{op: OpDFF, a: d})
}

// AndN folds And over signals (true for the empty list).
func (c *Circuit) AndN(ss ...Signal) Signal {
	out := c.Const(true)
	for _, s := range ss {
		out = c.And(out, s)
	}
	return out
}

// OrN folds Or over signals (false for the empty list).
func (c *Circuit) OrN(ss ...Signal) Signal {
	out := c.Const(false)
	for _, s := range ss {
		out = c.Or(out, s)
	}
	return out
}

// Output registers s as a primary output.
func (c *Circuit) Output(name string, s Signal) {
	c.outputs = append(c.outputs, s)
	c.outName = append(c.outName, name)
}

func (c *Circuit) add(n node) Signal {
	if s, ok := c.hash[n]; ok {
		return s
	}
	s := Signal(len(c.nodes))
	c.nodes = append(c.nodes, n)
	c.hash[n] = s
	return s
}

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return len(c.inputs) }

// NumOutputs returns the number of primary outputs.
func (c *Circuit) NumOutputs() int { return len(c.outputs) }

// InputNames returns the declared input names in order.
func (c *Circuit) InputNames() []string { return append([]string(nil), c.inNames...) }

// OutputNames returns the declared output names in order.
func (c *Circuit) OutputNames() []string { return append([]string(nil), c.outName...) }

// Eval evaluates the circuit for one input vector (in declaration order)
// and returns the outputs (in declaration order). DFFs are transparent.
func (c *Circuit) Eval(in []bool) []bool {
	if len(in) != len(c.inputs) {
		panic(fmt.Sprintf("gates: Eval with %d inputs, circuit has %d", len(in), len(c.inputs)))
	}
	vals := make([]bool, len(c.nodes))
	for i, n := range c.nodes {
		switch n.op {
		case OpConst:
			vals[i] = n.val
		case OpInput:
			vals[i] = in[n.a]
		case OpNot:
			vals[i] = !vals[n.a]
		case OpAnd:
			vals[i] = vals[n.a] && vals[n.b]
		case OpOr:
			vals[i] = vals[n.a] || vals[n.b]
		case OpXor:
			vals[i] = vals[n.a] != vals[n.b]
		case OpMux:
			if vals[n.a] {
				vals[i] = vals[n.b]
			} else {
				vals[i] = vals[n.c]
			}
		case OpDFF:
			vals[i] = vals[n.a]
		}
	}
	out := make([]bool, len(c.outputs))
	for i, s := range c.outputs {
		out[i] = vals[s]
	}
	return out
}

// Counts returns the number of live gates by type, counting only nodes
// reachable from an output (dead logic is what a synthesis tool would
// sweep). Inputs and constants are excluded.
func (c *Circuit) Counts() map[Op]int {
	live := c.liveSet()
	counts := make(map[Op]int)
	for i, n := range c.nodes {
		if !live[i] || n.op == OpInput || n.op == OpConst {
			continue
		}
		counts[n.op]++
	}
	return counts
}

// NumGates returns the total live gate count (excluding inputs/constants).
func (c *Circuit) NumGates() int {
	total := 0
	for _, v := range c.Counts() {
		total += v
	}
	return total
}

// Depth returns the longest combinational path length in gates, a proxy for
// the critical path that bounds the clock frequency.
func (c *Circuit) Depth() int {
	depth := make([]int, len(c.nodes))
	max := 0
	for i, n := range c.nodes {
		switch n.op {
		case OpConst, OpInput:
			depth[i] = 0
		case OpNot, OpDFF:
			depth[i] = depth[n.a] + 1
		case OpAnd, OpOr, OpXor:
			depth[i] = maxInt(depth[n.a], depth[n.b]) + 1
		case OpMux:
			depth[i] = maxInt(depth[n.a], maxInt(depth[n.b], depth[n.c])) + 1
		}
		if depth[i] > max {
			max = depth[i]
		}
	}
	return max
}

func (c *Circuit) liveSet() []bool {
	live := make([]bool, len(c.nodes))
	var stack []Signal
	for _, s := range c.outputs {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if live[s] {
			continue
		}
		live[s] = true
		n := c.nodes[s]
		switch n.op {
		case OpNot, OpDFF:
			stack = append(stack, n.a)
		case OpAnd, OpOr, OpXor:
			stack = append(stack, n.a, n.b)
		case OpMux:
			stack = append(stack, n.a, n.b, n.c)
		}
	}
	return live
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
