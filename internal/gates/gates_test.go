package gates

import (
	"testing"
	"testing/quick"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

func TestBasicGates(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	c.Output("and", c.And(a, b))
	c.Output("or", c.Or(a, b))
	c.Output("xor", c.Xor(a, b))
	c.Output("not", c.Not(a))
	for _, tc := range []struct {
		a, b bool
	}{{false, false}, {false, true}, {true, false}, {true, true}} {
		out := c.Eval([]bool{tc.a, tc.b})
		if out[0] != (tc.a && tc.b) || out[1] != (tc.a || tc.b) ||
			out[2] != (tc.a != tc.b) || out[3] != !tc.a {
			t.Fatalf("a=%v b=%v: got %v", tc.a, tc.b, out)
		}
	}
}

func TestMux(t *testing.T) {
	c := New()
	s := c.Input("s")
	a := c.Input("a")
	b := c.Input("b")
	c.Output("m", c.Mux(s, a, b))
	if got := c.Eval([]bool{true, true, false}); !got[0] {
		t.Error("mux sel=1 should pick a")
	}
	if got := c.Eval([]bool{false, true, false}); got[0] {
		t.Error("mux sel=0 should pick b")
	}
}

func TestConstantFolding(t *testing.T) {
	c := New()
	a := c.Input("a")
	one := c.Const(true)
	zero := c.Const(false)
	c.Output("o1", c.And(a, zero)) // == 0
	c.Output("o2", c.Or(a, one))   // == 1
	c.Output("o3", c.Xor(a, a))    // == 0
	c.Output("o4", c.Not(c.Not(a)))
	if c.NumGates() != 0 {
		t.Errorf("all outputs fold to constants/wires; got %d gates (%v)", c.NumGates(), c.Counts())
	}
	out := c.Eval([]bool{true})
	if out[0] || !out[1] || out[2] || !out[3] {
		t.Errorf("folded outputs wrong: %v", out)
	}
}

func TestStructuralHashing(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	x := c.And(a, b)
	y := c.And(b, a) // commutative duplicate
	if x != y {
		t.Error("commutative AND not shared")
	}
	c.Output("o", c.Or(x, y))
	if c.NumGates() != 1 { // the OR folds: Or(x,x) = x → only the AND remains
		t.Errorf("gates = %d (%v), want 1", c.NumGates(), c.Counts())
	}
}

func TestDeadGateElimination(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	_ = c.Xor(a, b) // dead
	c.Output("o", c.And(a, b))
	if got := c.Counts()[OpXor]; got != 0 {
		t.Errorf("dead XOR counted: %d", got)
	}
	if c.NumGates() != 1 {
		t.Errorf("NumGates = %d, want 1", c.NumGates())
	}
}

func TestDepth(t *testing.T) {
	c := New()
	a := c.Input("a")
	b := c.Input("b")
	x := c.And(a, b)
	y := c.Or(x, a)
	c.Output("o", c.Xor(y, b))
	if d := c.Depth(); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
}

func TestAddRipple(t *testing.T) {
	const w = 8
	c := New()
	a := c.Inputs("a", w)
	b := c.Inputs("b", w)
	sum, cout := AddRipple(c, a, b, c.Const(false))
	for _, s := range sum {
		c.Output("s", s)
	}
	c.Output("cout", cout)
	f := func(x, y uint8) bool {
		out := c.Eval(append(toBits(uint32(x), w), toBits(uint32(y), w)...))
		got := fromBits(out[:w])
		carry := out[w]
		want := uint32(x) + uint32(y)
		return got == want&0xFF && carry == (want > 0xFF)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubAndLessThan(t *testing.T) {
	const w = 8
	c := New()
	a := c.Inputs("a", w)
	b := c.Inputs("b", w)
	diff, geq := Sub(c, a, b)
	lt := LessThan(c, a, b)
	for _, s := range diff {
		c.Output("d", s)
	}
	c.Output("geq", geq)
	c.Output("lt", lt)
	f := func(x, y uint8) bool {
		out := c.Eval(append(toBits(uint32(x), w), toBits(uint32(y), w)...))
		d := fromBits(out[:w])
		return d == uint32(x-y) && out[w] == (x >= y) && out[w+1] == (x < y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAbsDiff(t *testing.T) {
	const w = 8
	c := New()
	a := c.Inputs("a", w)
	b := c.Inputs("b", w)
	ad := AbsDiff(c, a, b)
	for _, s := range ad {
		c.Output("o", s)
	}
	f := func(x, y uint8) bool {
		out := c.Eval(append(toBits(uint32(x), w), toBits(uint32(y), w)...))
		want := int(x) - int(y)
		if want < 0 {
			want = -want
		}
		return fromBits(out[:w]) == uint32(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstWordZeroExtend(t *testing.T) {
	c := New()
	w := ConstWord(c, 0b1011, 6)
	for _, s := range w {
		c.Output("w", s)
	}
	z := ZeroExtend(c, c.Inputs("i", 2), 4)
	for _, s := range z {
		c.Output("z", s)
	}
	out := c.Eval([]bool{true, false})
	if fromBits(out[:6]) != 0b1011 {
		t.Errorf("ConstWord = %v", out[:6])
	}
	if fromBits(out[6:]) != 0b0001 {
		t.Errorf("ZeroExtend = %v", out[6:])
	}
}

// --- Quine–McCluskey ---

func TestMinimizeClassicExample(t *testing.T) {
	// f(a,b,c) = majority: minimizes to ab + ac + bc (3 implicants).
	tt := NewTruthTable(3, func(v uint32) bool {
		n := 0
		for i := 0; i < 3; i++ {
			if v&(1<<uint(i)) != 0 {
				n++
			}
		}
		return n >= 2
	})
	cover := Minimize(tt)
	if len(cover) != 3 {
		t.Errorf("majority cover size = %d, want 3 (%v)", len(cover), cover)
	}
	verifyCover(t, tt, cover)
}

func TestMinimizeConstants(t *testing.T) {
	zero := NewTruthTable(4, func(uint32) bool { return false })
	if got := Minimize(zero); len(got) != 0 {
		t.Errorf("constant-0 cover = %v", got)
	}
	one := NewTruthTable(4, func(uint32) bool { return true })
	got := Minimize(one)
	if len(got) != 1 || got[0].Mask != 0 {
		t.Errorf("constant-1 cover = %v", got)
	}
}

func TestMinimizeSingleVariable(t *testing.T) {
	tt := NewTruthTable(4, func(v uint32) bool { return v&0b0100 != 0 })
	cover := Minimize(tt)
	if len(cover) != 1 || cover[0].Literals() != 1 {
		t.Errorf("single-variable cover = %v", cover)
	}
	verifyCover(t, tt, cover)
}

// TestMinimizeRandomFunctions: QM output must be functionally identical to
// the source truth table for arbitrary functions.
func TestMinimizeRandomFunctions(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6) // 2..7 inputs
		size := 1 << uint(n)
		out := make([]bool, size)
		for i := range out {
			out[i] = rng.Intn(2) == 1
		}
		tt := TruthTable{NumInputs: n, Out: out}
		verifyCover(t, tt, Minimize(tt))
	}
}

// TestSynthesizeSOP: the synthesized gates must compute the cover.
func TestSynthesizeSOP(t *testing.T) {
	tt := NewTruthTable(4, func(v uint32) bool {
		// XOR of all bits: worst case for two-level logic (8 implicants).
		n := 0
		for i := 0; i < 4; i++ {
			if v&(1<<uint(i)) != 0 {
				n++
			}
		}
		return n%2 == 1
	})
	cover := Minimize(tt)
	if len(cover) != 8 {
		t.Errorf("4-input XOR cover size = %d, want 8", len(cover))
	}
	c := New()
	in := c.Inputs("x", 4)
	c.Output("f", SynthesizeSOP(c, cover, in))
	for v := uint32(0); v < 16; v++ {
		got := c.Eval(toBits(v, 4))[0]
		if got != tt.Out[v] {
			t.Fatalf("synthesized f(%04b) = %v, want %v", v, got, tt.Out[v])
		}
	}
}

func TestSynthesizeReport(t *testing.T) {
	c := New()
	a := c.Inputs("a", 8)
	b := c.Inputs("b", 8)
	sum, _ := AddRipple(c, a, b, c.Const(false))
	for _, s := range sum {
		c.Output("s", s)
	}
	r := Synthesize(c, Tech65nm(), 33)
	if r.Gates == 0 || r.AreaUm2 <= 0 || r.Power <= 0 {
		t.Errorf("empty report: %+v", r)
	}
	if r.DepthGat <= 0 {
		t.Error("depth missing")
	}
	// An 8-bit ripple adder is ~40 gates and well under 1000 µm².
	if r.Gates > 100 || r.AreaUm2 > 1000 {
		t.Errorf("adder suspiciously large: %+v", r)
	}
}

func verifyCover(t *testing.T, tt TruthTable, cover []Implicant) {
	t.Helper()
	for v := uint32(0); v < 1<<uint(tt.NumInputs); v++ {
		if EvalCover(cover, v) != tt.Out[v] {
			t.Fatalf("cover wrong at %b: got %v, want %v", v, EvalCover(cover, v), tt.Out[v])
		}
	}
}

func toBits(v uint32, w int) []bool {
	out := make([]bool, w)
	for i := range out {
		out[i] = v&(1<<uint(i)) != 0
	}
	return out
}

func fromBits(bs []bool) uint32 {
	var v uint32
	for i, b := range bs {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
