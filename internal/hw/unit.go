package hw

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/gates"
)

// Unit is a complete value-approximation circuit: `width` chained slices
// (Fig. 7). Inputs are the exact and previous values (LSB first) plus, for
// the configurable variant, a 3-bit window configuration; the output is the
// approximate value.
type Unit struct {
	Circuit      *gates.Circuit
	Width        int
	Configurable bool
	n            int // fixed window size when !Configurable
}

// NewUnit builds a fixed window-size unit: width slices, each seeing n bits
// of exact and previous (zero padded past the LSB, as in Fig. 7).
func NewUnit(width, n int) (*Unit, error) {
	if width <= 0 || width > 32 {
		return nil, fmt.Errorf("hw: unit width must be 1..32, got %d", width)
	}
	if n < 1 || n > 8 {
		return nil, fmt.Errorf("hw: window size must be 1..8, got %d", n)
	}
	c := gates.New()
	e := c.Inputs("exact", width)
	p := c.Inputs("previous", width)
	chain(c, e, p, nil, width, n)
	return &Unit{Circuit: c, Width: width, n: n}, nil
}

// NewConfigurableUnit builds the run-time configurable unit with a 3-bit
// window configuration input (cfg = n-1).
func NewConfigurableUnit(width int) (*Unit, error) {
	if width <= 0 || width > 32 {
		return nil, fmt.Errorf("hw: unit width must be 1..32, got %d", width)
	}
	c := gates.New()
	e := c.Inputs("exact", width)
	p := c.Inputs("previous", width)
	cfg := c.Inputs("cfg", 3)
	chain(c, e, p, cfg, width, 8)
	return &Unit{Circuit: c, Width: width, Configurable: true}, nil
}

// chain wires the slices MSB→LSB, propagating setOnes/setZeros (Fig. 7).
func chain(c *gates.Circuit, e, p, cfg []gates.Signal, width, n int) {
	zero := c.Const(false)
	window := func(v []gates.Signal, i int) []gates.Signal {
		w := make([]gates.Signal, n)
		for k := 0; k < n; k++ { // w[n-1] = bit i, w[n-1-k] = bit i-k
			idx := i - (n - 1 - k)
			if idx >= 0 {
				w[k] = v[idx]
			} else {
				w[k] = zero
			}
		}
		return w
	}
	outs := make([]gates.Signal, width)
	so, sz := zero, zero
	for i := width - 1; i >= 0; i-- {
		var io SliceIO
		if cfg != nil {
			io = BuildConfigurableSlice(c, window(e, i), window(p, i), cfg, so, sz)
		} else {
			io = BuildSlice(c, window(e, i), window(p, i), so, sz)
		}
		outs[i] = io.Out
		so, sz = io.SetOnesOut, io.SetZerosOut
	}
	for i := 0; i < width; i++ {
		c.Output(fmt.Sprintf("approx%d", i), outs[i])
	}
}

// Approximate runs the circuit on concrete values. For configurable units,
// n selects the window size (1..8); for fixed units n must match the build.
// This is the hardware twin of approx.NBit.Approximate.
func (u *Unit) Approximate(previous, exact uint32, n int) uint32 {
	if !u.Configurable && n != u.n {
		panic(fmt.Sprintf("hw: unit built for n=%d, asked for n=%d", u.n, n))
	}
	numIn := u.Width * 2
	if u.Configurable {
		numIn += 3
	}
	in := make([]bool, numIn)
	for i := 0; i < u.Width; i++ {
		in[i] = exact&(1<<uint(i)) != 0
		in[u.Width+i] = previous&(1<<uint(i)) != 0
	}
	if u.Configurable {
		cfg := uint32(n - 1)
		for i := 0; i < 3; i++ {
			in[2*u.Width+i] = cfg&(1<<uint(i)) != 0
		}
	}
	out := u.Circuit.Eval(in)
	var v uint32
	for i := 0; i < u.Width; i++ {
		if out[i] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// WidthOf returns the bits.Width matching the unit, for cross-checks
// against the algorithmic encoders.
func (u *Unit) WidthOf() bits.Width { return bits.Width(u.Width) }
