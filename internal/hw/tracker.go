package hw

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/gates"
)

// Tracker is the error-tracking datapath of Fig. 9: per committed value it
// computes |exact − approx| and accumulates it; the accumulated sum is
// compared against the threshold to decide whether the approximate buffer
// may be programmed.
//
// The accumulator register is exposed as circuit inputs (acc) and outputs
// (accNext) so one evaluation performs one accumulation step; the DFF nodes
// on accNext make the flops visible to area/power reporting.
type Tracker struct {
	Circuit *gates.Circuit
	Width   int // value width
	AccBits int // accumulator width
}

// NewTracker builds the datapath for values of the given width with an
// accumulator wide enough for a full page of worst-case errors: for a
// 256-byte page of 8-bit values, 256 × 255 needs 16 bits; accBits adds
// headroom for 16/32-bit configurations.
func NewTracker(width, accBits int) (*Tracker, error) {
	if width <= 0 || width > 32 {
		return nil, fmt.Errorf("hw: tracker width must be 1..32, got %d", width)
	}
	if accBits < width+1 {
		return nil, fmt.Errorf("hw: accumulator (%d bits) must exceed value width (%d)", accBits, width)
	}
	c := gates.New()
	e := c.Inputs("exact", width)
	a := c.Inputs("approx", width)
	acc := c.Inputs("acc", accBits)
	thr := c.Inputs("threshold", accBits)

	diff := gates.AbsDiff(c, e, a)
	wide := gates.ZeroExtend(c, diff, accBits)
	next, _ := gates.AddRipple(c, acc, wide, c.Const(false))
	over := c.Not(gates.LessThan(c, next, thr)) // accNext >= threshold
	for i, s := range next {
		c.Output(fmt.Sprintf("accNext%d", i), c.DFF(s))
	}
	c.Output("over", over)
	return &Tracker{Circuit: c, Width: width, AccBits: accBits}, nil
}

// Step performs one accumulation: given the current accumulator value, an
// (exact, approx) pair and the threshold, it returns the next accumulator
// value and whether it reached the threshold.
func (t *Tracker) Step(acc uint64, exact, approxVal uint32, threshold uint64) (uint64, bool) {
	in := make([]bool, 2*t.Width+2*t.AccBits)
	for i := 0; i < t.Width; i++ {
		in[i] = exact&(1<<uint(i)) != 0
		in[t.Width+i] = approxVal&(1<<uint(i)) != 0
	}
	for i := 0; i < t.AccBits; i++ {
		in[2*t.Width+i] = acc&(1<<uint(i)) != 0
		in[2*t.Width+t.AccBits+i] = threshold&(1<<uint(i)) != 0
	}
	out := t.Circuit.Eval(in)
	var next uint64
	for i := 0; i < t.AccBits; i++ {
		if out[i] {
			next |= 1 << uint(i)
		}
	}
	return next, out[t.AccBits]
}
