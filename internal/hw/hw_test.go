package hw

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// TestUnitMatchesAlgorithmExhaustive8: the fixed-n hardware must equal the
// algorithmic reference on every 8-bit input pair, for every window size.
func TestUnitMatchesAlgorithmExhaustive8(t *testing.T) {
	for n := 1; n <= 8; n++ {
		u, err := NewUnit(8, n)
		if err != nil {
			t.Fatal(err)
		}
		ref := approx.MustNBit(n)
		for p := uint32(0); p < 256; p++ {
			for e := uint32(0); e < 256; e++ {
				hwOut := u.Approximate(p, e, n)
				swOut := ref.Approximate(p, e, bits.W8)
				if hwOut != swOut {
					t.Fatalf("n=%d p=%08b e=%08b: hw %08b != sw %08b", n, p, e, hwOut, swOut)
				}
			}
		}
	}
}

// TestUnitMatchesAlgorithm32Sampled: 32-bit unit vs reference on random
// values.
func TestUnitMatchesAlgorithm32Sampled(t *testing.T) {
	u, err := NewUnit(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := approx.MustNBit(2)
	rng := xrand.New(41)
	for i := 0; i < 2000; i++ {
		p, e := rng.Uint32(), rng.Uint32()
		if got, want := u.Approximate(p, e, 2), ref.Approximate(p, e, bits.W32); got != want {
			t.Fatalf("p=%032b e=%032b: hw %032b != sw %032b", p, e, got, want)
		}
	}
}

// TestConfigurableUnitMatchesEveryN: the masked nmax = 8 hardware must
// reproduce every smaller window size exactly (§III-B's claim that the
// n = 8 table contains all smaller tables).
func TestConfigurableUnitMatchesEveryN(t *testing.T) {
	u, err := NewConfigurableUnit(8)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 8; n++ {
		ref := approx.MustNBit(n)
		for p := uint32(0); p < 256; p += 3 {
			for e := uint32(0); e < 256; e += 3 {
				hwOut := u.Approximate(p, e, n)
				swOut := ref.Approximate(p, e, bits.W8)
				if hwOut != swOut {
					t.Fatalf("cfg n=%d p=%08b e=%08b: hw %08b != sw %08b", n, p, e, hwOut, swOut)
				}
			}
		}
	}
}

// TestConfigurable32 spot-checks the full-width configurable unit.
func TestConfigurable32(t *testing.T) {
	u, err := NewConfigurableUnit(32)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(43)
	for _, n := range []int{1, 2, 4, 8} {
		ref := approx.MustNBit(n)
		for i := 0; i < 300; i++ {
			p, e := rng.Uint32(), rng.Uint32()
			if got, want := u.Approximate(p, e, n), ref.Approximate(p, e, bits.W32); got != want {
				t.Fatalf("n=%d: hw %032b != sw %032b", n, got, want)
			}
		}
	}
}

// TestHardcodedSmallerThanConfigurable: Table IV's key qualitative result —
// fixing n = 2 lets optimization shrink the design.
func TestHardcodedSmallerThanConfigurable(t *testing.T) {
	rows, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	cfg, fixed := rows[0], rows[1]
	if fixed.AreaUm2 >= cfg.AreaUm2 {
		t.Errorf("hardcoded area %.0f µm² >= configurable %.0f µm²", fixed.AreaUm2, cfg.AreaUm2)
	}
	if fixed.Power >= cfg.Power {
		t.Errorf("hardcoded power %v >= configurable %v", fixed.Power, cfg.Power)
	}
	if fixed.Gates >= cfg.Gates {
		t.Errorf("hardcoded gates %d >= configurable %d", fixed.Gates, cfg.Gates)
	}
}

// TestSoCShareTiny: the paper reports ≈0.1% of an M0+ SoC; our structural
// estimate must stay in that regime (well under 1%).
func TestSoCShareTiny(t *testing.T) {
	rows, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SoCShare <= 0 || r.SoCShare > 0.01 {
			t.Errorf("%s: SoC share %.4f%% outside (0, 1%%]", r.Config, r.SoCShare*100)
		}
	}
}

// TestTrackerMatchesReference: the Fig. 9 datapath must accumulate |e-a|
// and flag threshold crossings exactly.
func TestTrackerMatchesReference(t *testing.T) {
	tr, err := NewTracker(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(47)
	const threshold = 1000
	var acc uint64
	var ref uint64
	for i := 0; i < 200; i++ {
		e := rng.Uint32() & 0xFF
		a := rng.Uint32() & 0xFF
		var over bool
		acc, over = tr.Step(acc, e, a, threshold)
		d := uint64(bits.AbsDiff(e, a))
		ref += d
		if acc != ref {
			t.Fatalf("step %d: acc %d != ref %d", i, acc, ref)
		}
		if over != (ref >= threshold) {
			t.Fatalf("step %d: over=%v, ref=%d thr=%d", i, over, ref, threshold)
		}
	}
}

func TestTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0, 16); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewTracker(16, 16); err == nil {
		t.Error("accumulator narrower than width+1 accepted")
	}
}

func TestUnitValidation(t *testing.T) {
	if _, err := NewUnit(0, 2); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewUnit(8, 0); err == nil {
		t.Error("n 0 accepted")
	}
	if _, err := NewUnit(8, 9); err == nil {
		t.Error("n 9 accepted")
	}
	if _, err := NewConfigurableUnit(33); err == nil {
		t.Error("width 33 accepted")
	}
}

// TestUnitGateScale sanity-checks the synthesis numbers' scale: one value
// circuit must be in the hundreds-to-thousands of gates, not millions — the
// paper's point is that this hardware is tiny.
func TestUnitGateScale(t *testing.T) {
	u, err := NewConfigurableUnit(32)
	if err != nil {
		t.Fatal(err)
	}
	gatesN := u.Circuit.NumGates()
	if gatesN < 100 || gatesN > 20000 {
		t.Errorf("configurable 32-bit unit = %d gates; expected hundreds to thousands", gatesN)
	}
	t.Logf("configurable unit: %d gates, depth %d", gatesN, u.Circuit.Depth())
}
