package hw

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// TestPLAUnitMatchesAlgorithmExhaustive8: the two-level synthesized slices
// must agree with the algorithmic reference everywhere — an end-to-end
// check of Quine–McCluskey on the real FlipBit decision function.
func TestPLAUnitMatchesAlgorithmExhaustive8(t *testing.T) {
	for n := 1; n <= 3; n++ {
		u, err := NewPLAUnit(8, n)
		if err != nil {
			t.Fatal(err)
		}
		ref := approx.MustNBit(n)
		for p := uint32(0); p < 256; p++ {
			for e := uint32(0); e < 256; e++ {
				if got, want := u.Approximate(p, e, n), ref.Approximate(p, e, bits.W8); got != want {
					t.Fatalf("PLA n=%d p=%08b e=%08b: %08b != %08b", n, p, e, got, want)
				}
			}
		}
	}
}

// TestPLAMatchesStructural32: PLA and structural 32-bit units, two
// completely different syntheses of the same specification, must agree.
func TestPLAMatchesStructural32(t *testing.T) {
	pla, err := NewPLAUnit(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	structural, err := NewUnit(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(53)
	for i := 0; i < 500; i++ {
		p, e := rng.Uint32(), rng.Uint32()
		if got, want := pla.Approximate(p, e, 2), structural.Approximate(p, e, 2); got != want {
			t.Fatalf("p=%032b e=%032b: PLA %032b != structural %032b", p, e, got, want)
		}
	}
}

func TestPLAUnitValidation(t *testing.T) {
	if _, err := NewPLAUnit(8, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewPLAUnit(8, 5); err == nil {
		t.Error("n=5 accepted (PLA capped at 4)")
	}
	if _, err := NewPLAUnit(0, 2); err == nil {
		t.Error("width 0 accepted")
	}
}

// TestPLAGateScaling: the PLA form must grow much faster with n than the
// structural form — the reason the structural design exists.
func TestPLAGateScaling(t *testing.T) {
	pla2, err := NewPLAUnit(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	pla4, err := NewPLAUnit(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pla4.Circuit.NumGates() <= pla2.Circuit.NumGates() {
		t.Errorf("PLA gates should grow with n: n=2 %d, n=4 %d",
			pla2.Circuit.NumGates(), pla4.Circuit.NumGates())
	}
	t.Logf("PLA gates: n=2 %d, n=4 %d", pla2.Circuit.NumGates(), pla4.Circuit.NumGates())
}
