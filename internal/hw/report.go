package hw

import (
	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/gates"
)

// FlashClockMHz is the clock the flash logic runs at; the paper constrains
// the synthesized design to 33 MHz to match the part's interface [75].
const FlashClockMHz = 33

// SoCAreaUm2 is the area of an ARM Cortex-M0+ SoC in the same 65 nm
// technology [64]; the paper's configurable unit is 0.104% of it, putting
// the SoC at ≈3.77 mm².
const SoCAreaUm2 = 3.77e6

// OverheadRow is one line of Table IV: the cost of the full FlipBit
// hardware (32-slice approximation unit plus error tracking) for one
// configuration.
type OverheadRow struct {
	Config    string // "1–8 (configurable)" or "2"
	Gates     int
	AreaUm2   float64
	SoCShare  float64      // fraction of the M0+ SoC area
	Power     energy.Power // at FlashClockMHz
	DepthGate int          // longest combinational path, in gates
}

// GateDelayNs is a representative 65 nm LP gate delay including local
// wiring (FO4-ish). The critical path bounds the clock: Fmax ≈
// 1/(depth × delay). The paper synthesizes up to 1 GHz but runs the logic
// at the flash's 33 MHz, where our depth leaves enormous slack.
const GateDelayNs = 0.035

// FmaxMHz estimates the maximum clock frequency from the critical path.
func (r OverheadRow) FmaxMHz() float64 {
	if r.DepthGate == 0 {
		return 0
	}
	return 1e3 / (float64(r.DepthGate) * GateDelayNs)
}

// TableIV synthesizes the designs the paper reports — the run-time
// configurable n = 1..8 unit and the hardcoded n = 2 unit — plus a
// two-level (PLA) n = 2 variant for comparison, each paired with a 32-bit
// error-tracking datapath.
func TableIV() ([3]OverheadRow, error) {
	tech := gates.Tech65nm()

	cfgUnit, err := NewConfigurableUnit(32)
	if err != nil {
		return [3]OverheadRow{}, err
	}
	fixedUnit, err := NewUnit(32, 2)
	if err != nil {
		return [3]OverheadRow{}, err
	}
	plaUnit, err := NewPLAUnit(32, 2)
	if err != nil {
		return [3]OverheadRow{}, err
	}
	tracker, err := NewTracker(32, 40)
	if err != nil {
		return [3]OverheadRow{}, err
	}

	trackRep := gates.Synthesize(tracker.Circuit, tech, FlashClockMHz)
	row := func(name string, u *Unit) OverheadRow {
		rep := gates.Synthesize(u.Circuit, tech, FlashClockMHz)
		area := rep.AreaUm2 + trackRep.AreaUm2
		return OverheadRow{
			Config:    name,
			Gates:     rep.Gates + trackRep.Gates,
			AreaUm2:   area,
			SoCShare:  area / SoCAreaUm2,
			Power:     rep.Power + trackRep.Power,
			DepthGate: maxInt(rep.DepthGat, trackRep.DepthGat),
		}
	}
	return [3]OverheadRow{
		row("1–8 (configurable)", cfgUnit),
		row("2", fixedUnit),
		row("2 (two-level PLA)", plaUnit),
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
