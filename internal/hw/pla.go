package hw

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/gates"
)

// Two-level (PLA-style) slice synthesis. The paper describes the decision
// block as "a truth table ... implemented through combinational logic"
// (§III-B); this file builds that literal form: the slice's three outputs
// are each minimized with Quine–McCluskey over the full input space and
// instantiated as AND-OR planes. It exists alongside the structural slice
// of slice.go so Table IV can compare implementation styles, and as a
// second, independently derived implementation the tests can cross-check.

// NewPLAUnit builds a width-bit approximation unit whose slices are
// two-level synthesized for a fixed window size n. Practical for n <= 4
// (the PLA input space is 2n+2 variables; beyond that the planes explode,
// which is exactly why the structural form wins for n = 8).
func NewPLAUnit(width, n int) (*Unit, error) {
	if width <= 0 || width > 32 {
		return nil, fmt.Errorf("hw: unit width must be 1..32, got %d", width)
	}
	if n < 1 || n > 4 {
		return nil, fmt.Errorf("hw: PLA synthesis supported for n = 1..4, got %d", n)
	}
	covers := plaCovers(n)
	c := gates.New()
	e := c.Inputs("exact", width)
	p := c.Inputs("previous", width)
	zero := c.Const(false)
	window := func(v []gates.Signal, i int) []gates.Signal {
		w := make([]gates.Signal, n)
		for k := 0; k < n; k++ {
			idx := i - (n - 1 - k)
			if idx >= 0 {
				w[k] = v[idx]
			} else {
				w[k] = zero
			}
		}
		return w
	}
	outs := make([]gates.Signal, width)
	so, sz := zero, zero
	for i := width - 1; i >= 0; i-- {
		in := make([]gates.Signal, 0, 2*n+2)
		in = append(in, window(e, i)...)
		in = append(in, window(p, i)...)
		in = append(in, so, sz)
		outs[i] = gates.SynthesizeSOP(c, covers[0], in)
		so2 := gates.SynthesizeSOP(c, covers[1], in)
		sz2 := gates.SynthesizeSOP(c, covers[2], in)
		so, sz = so2, sz2
	}
	for i := 0; i < width; i++ {
		c.Output(fmt.Sprintf("approx%d", i), outs[i])
	}
	return &Unit{Circuit: c, Width: width, n: n}, nil
}

// plaCovers minimizes the three slice outputs (bit, setOnesOut,
// setZerosOut) as functions of (eWin, pWin, setOnesIn, setZerosIn) using
// the algorithmic truth table of internal/approx as the oracle.
func plaCovers(n int) [3][]gates.Implicant {
	table := approx.DeriveTable(n)
	numIn := 2*n + 2
	var covers [3][]gates.Implicant
	for out := 0; out < 3; out++ {
		out := out
		tt := gates.NewTruthTable(numIn, func(v uint32) bool {
			eWin := v & (1<<uint(n) - 1)
			pWin := v >> uint(n) & (1<<uint(n) - 1)
			so := v>>uint(2*n)&1 == 1
			sz := v>>uint(2*n+1)&1 == 1
			bit, oOnes, oZeros := table.Decide(eWin, pWin, so, sz)
			switch out {
			case 0:
				return bit == 1
			case 1:
				return oOnes
			default:
				return oZeros
			}
		})
		covers[out] = gates.Minimize(tt)
	}
	return covers
}
