// Package hw builds the FlipBit hardware at gate level: the per-bit
// approximation slice (Fig. 6), the 32-slice chain generating a whole value
// (Fig. 7), the run-time-configurable 1..8-bit variant (§III-B), and the
// error-tracking datapath (Fig. 9). Synthesis-style area/power reports
// reproduce Table IV.
//
// Every circuit is verified bit-exact against the algorithmic reference in
// internal/approx by the package tests — the hardware IS the algorithm.
package hw

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/gates"
)

// SliceIO names the boundary of one approximation slice. Window signals are
// LSB-first: EWin[n-1] is the current ("top") bit, lower indices are the
// lookahead bits below it.
type SliceIO struct {
	EWin, PWin []gates.Signal // n-bit windows of exact and previous
	SetOnesIn  gates.Signal
	SetZerosIn gates.Signal

	Out         gates.Signal // approx bit for this position
	SetOnesOut  gates.Signal
	SetZerosOut gates.Signal
}

// BuildSlice instantiates one fixed-n approximation slice (Fig. 6) in c.
//
// The structural decomposition follows §III-A3's minimax rule directly.
// With m = n-1 lookahead bits, the slice overshoots (sets the output when
// exact's bit is 0) iff
//
//	2^m - eLow < eLow - g + 1   ⟺   2^m + g <= 2·eLow
//
// where g is the value Algorithm 1 could still recover inside the window.
// The right-hand form is what the comparator implements.
func BuildSlice(c *gates.Circuit, eWin, pWin []gates.Signal, setOnesIn, setZerosIn gates.Signal) SliceIO {
	n := len(eWin)
	if n == 0 || n != len(pWin) {
		panic(fmt.Sprintf("hw: bad slice window widths %d/%d", len(eWin), len(pWin)))
	}
	m := n - 1
	eTop, pTop := eWin[m], pWin[m]
	eLow, pLow := eWin[:m], pWin[:m]

	// Greedy recovery value g inside the window (MSB→LSB chain).
	g := make([]gates.Signal, m)
	s := c.Const(false)
	for i := m - 1; i >= 0; i-- {
		g[i] = c.And(pLow[i], c.Or(eLow[i], s))
		s = c.Or(s, c.And(eLow[i], c.Not(pLow[i])))
	}

	// Comparator: overshoot = (2·eLow >= 2^m + g).
	left := append([]gates.Signal{c.Const(false)}, eLow...) // 2·eLow, m+1 bits
	right := make([]gates.Signal, 0, m+1)
	right = append(right, g...)
	right = append(right, c.Const(true)) // + 2^m
	overshoot := c.Not(gates.LessThan(c, left, right))

	notZi := c.Not(setZerosIn)
	notSi := c.Not(setOnesIn)
	notETop := c.Not(eTop)
	takeOvershoot := c.AndN(pTop, notZi, notSi, notETop)

	out := c.AndN(pTop, notZi, c.OrN(setOnesIn, eTop, overshoot))
	setOnesOut := c.Or(setOnesIn, c.AndN(eTop, c.Not(pTop), notZi))
	setZerosOut := c.Or(setZerosIn, c.And(takeOvershoot, overshoot))

	return SliceIO{
		EWin: eWin, PWin: pWin,
		SetOnesIn: setOnesIn, SetZerosIn: setZerosIn,
		Out: out, SetOnesOut: setOnesOut, SetZerosOut: setZerosOut,
	}
}

// BuildConfigurableSlice instantiates the run-time configurable slice: a
// fixed nmax = 8 slice whose seven lookahead inputs are masked by a 3-bit
// configuration value cfg = n-1 (§III-B: "by tying the m least significant
// exact and previous inputs to 0, we create the truth table for nmax − m").
func BuildConfigurableSlice(c *gates.Circuit, eWin, pWin []gates.Signal, cfg []gates.Signal, setOnesIn, setZerosIn gates.Signal) SliceIO {
	const nmax = 8
	if len(eWin) != nmax || len(pWin) != nmax {
		panic("hw: configurable slice needs 8-bit windows")
	}
	if len(cfg) != 3 {
		panic("hw: configurable slice needs a 3-bit config")
	}
	// Lookahead input at window index j sits at distance d = 7-j below
	// the top bit; it participates iff d <= cfg.
	me := make([]gates.Signal, nmax)
	mp := make([]gates.Signal, nmax)
	me[nmax-1], mp[nmax-1] = eWin[nmax-1], pWin[nmax-1]
	for j := 0; j < nmax-1; j++ {
		en := cfgAtLeast(c, cfg, nmax-1-j)
		me[j] = c.And(eWin[j], en)
		mp[j] = c.And(pWin[j], en)
	}
	io := BuildSlice(c, me, mp, setOnesIn, setZerosIn)
	io.EWin, io.PWin = eWin, pWin
	return io
}

// cfgAtLeast returns (cfg >= k) for a 3-bit cfg and constant 1 <= k <= 7.
func cfgAtLeast(c *gates.Circuit, cfg []gates.Signal, k int) gates.Signal {
	return c.Not(gates.LessThan(c, cfg, gates.ConstWord(c, uint64(k), len(cfg))))
}
