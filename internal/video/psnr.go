package video

import "math"

// PSNRCap is the value reported for identical frames (MSE 0 → infinite
// PSNR); 99 dB keeps averages finite while remaining clearly "lossless".
const PSNRCap = 99.0

// MSE returns the mean squared error between two equally sized frames.
func MSE(a, b Frame) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var sum float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return sum / float64(len(a))
}

// psnrFromMSE converts a mean squared error to PSNR in dB, capped.
func psnrFromMSE(mse float64) float64 {
	if mse <= 0 {
		return PSNRCap
	}
	p := 10 * math.Log10(255*255/mse)
	if p > PSNRCap {
		return PSNRCap
	}
	return p
}

// PSNR returns the peak signal-to-noise ratio in dB between a reference
// frame and a degraded frame, capped at PSNRCap.
func PSNR(ref, got Frame) float64 {
	mse := MSE(ref, got)
	if math.IsNaN(mse) {
		return math.NaN()
	}
	if mse == 0 {
		return PSNRCap
	}
	p := 10 * math.Log10(255*255/mse)
	if p > PSNRCap {
		return PSNRCap
	}
	return p
}
