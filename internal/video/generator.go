// Package video provides the "sense and send" workload of the paper (§IV):
// an IoT camera writing frames to flash before transmission. Because the
// Xiph.org test videos cannot ship with the repository, a procedural
// generator synthesizes a benchmark suite spanning the same axis that
// matters to FlipBit — temporal similarity between consecutive frames at
// fixed flash addresses — from fully static scenes through talking-head
// style local motion to high-motion scenes over shimmering water.
package video

import (
	"fmt"
	"math"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Frame is an 8-bit grayscale image, row major.
type Frame []byte

// Box is an axis-aligned bounding box (inclusive min, exclusive max).
type Box struct {
	X0, Y0, X1, Y1 int
}

// Area returns the box area in pixels.
func (b Box) Area() int {
	w, h := b.X1-b.X0, b.Y1-b.Y0
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Intersect returns the intersection area of two boxes.
func (b Box) Intersect(o Box) int {
	x0, y0 := maxInt(b.X0, o.X0), maxInt(b.Y0, o.Y0)
	x1, y1 := minInt(b.X1, o.X1), minInt(b.Y1, o.Y1)
	return Box{x0, y0, x1, y1}.Area()
}

// IoU returns the intersection-over-union of two boxes.
func (b Box) IoU(o Box) float64 {
	inter := b.Intersect(o)
	union := b.Area() + o.Area() - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// object is a bright moving disc over the background.
type object struct {
	cx, cy     float64 // initial centre
	vx, vy     float64 // velocity, pixels/frame
	radius     float64
	brightness float64
}

// Video is a procedurally generated clip. Frames are a pure function of the
// frame index, so generation is reproducible and random access.
type Video struct {
	ID     int
	Name   string
	Width  int
	Height int
	Frames int

	seed       uint64
	noiseSigma float64  // per-pixel, per-frame sensor noise
	shimmer    float64  // amplitude of water-like background motion
	waterline  float64  // fraction of height below which shimmer applies (0 = everywhere)
	panSpeed   float64  // global pan, pixels/frame
	objects    []object // moving foreground objects

	// Auto-exposure flicker: every flickerEvery frames the camera's gain
	// steps, shifting the whole frame by flickerAmp. This models the AGC
	// adjustments real sensors make and gives even static scenes
	// occasional frames that no approximation threshold can absorb.
	flickerEvery int
	flickerAmp   float64
}

// Size returns the frame size in bytes.
func (v *Video) Size() int { return v.Width * v.Height }

// Frame renders frame t. Pixels are generated from a static background,
// optional global pan, water shimmer, moving objects, and per-frame sensor
// noise; everything is seeded so two calls agree exactly.
func (v *Video) Frame(t int) Frame {
	f := make(Frame, v.Size())
	// Per-frame noise stream; the background pattern stream is fixed.
	noise := xrand.New(v.seed*1000003 + uint64(t)*7919)
	pan := v.panSpeed * float64(t)
	gain := 0.0
	if v.flickerEvery > 0 {
		// Gain alternates between two steps, so each flicker boundary
		// shifts every pixel by flickerAmp at once.
		if (t/v.flickerEvery)%2 == 1 {
			gain = v.flickerAmp
		}
	}
	for y := 0; y < v.Height; y++ {
		for x := 0; x < v.Width; x++ {
			val := v.background(float64(x)+pan, float64(y), t) + gain
			for _, o := range v.objects {
				val = o.render(val, x, y, t, v.Width, v.Height)
			}
			if v.noiseSigma > 0 {
				val += noise.NormFloat64() * v.noiseSigma
			}
			f[y*v.Width+x] = clampByte(val)
		}
	}
	return f
}

// background returns the scene luminance at (fractional) scene coordinates.
func (v *Video) background(x, y float64, t int) float64 {
	// Smooth deterministic texture from a few sinusoids keyed by seed.
	s := float64(v.seed%97) * 0.13
	val := 110 +
		35*math.Sin(0.11*x+s) +
		25*math.Cos(0.07*y+0.5*s) +
		15*math.Sin(0.05*(x+y)+2*s)
	if v.shimmer > 0 && y >= v.waterline*float64(v.Height) {
		// Water-like shimmer: spatial waves drifting every frame,
		// below the waterline only (the sky stays still).
		ph := float64(t) * 0.9
		val += v.shimmer * math.Sin(0.45*x+0.31*y+ph)
		val += 0.6 * v.shimmer * math.Sin(0.23*x-0.51*y-1.7*ph)
	}
	return val
}

// render draws the object's disc over the pixel value if covered.
func (o object) render(val float64, x, y, t, w, h int) float64 {
	cx, cy := o.pos(t, w, h)
	dx, dy := float64(x)-cx, float64(y)-cy
	d2 := dx*dx + dy*dy
	r2 := o.radius * o.radius
	if d2 < r2 {
		// Soft edge to avoid single-pixel aliasing artifacts.
		edge := 1 - d2/r2
		if edge > 0.25 {
			edge = 1
		} else {
			edge *= 4
		}
		return val*(1-edge) + o.brightness*edge
	}
	return val
}

// pos returns the object centre at frame t, bouncing off frame edges.
func (o object) pos(t int, w, h int) (float64, float64) {
	return bounce(o.cx+o.vx*float64(t), float64(w)),
		bounce(o.cy+o.vy*float64(t), float64(h))
}

// bounce reflects x into [0, limit) with mirror wrapping.
func bounce(x, limit float64) float64 {
	if limit <= 0 {
		return 0
	}
	period := 2 * limit
	x = math.Mod(x, period)
	if x < 0 {
		x += period
	}
	if x >= limit {
		x = period - x
	}
	return x
}

// BackgroundFrame renders frame t without objects or sensor noise — the
// background model a deployed detector maintains (pan, shimmer and gain
// steps included, so only objects and noise differ from Frame(t)).
func (v *Video) BackgroundFrame(t int) Frame {
	f := make(Frame, v.Size())
	pan := v.panSpeed * float64(t)
	gain := 0.0
	if v.flickerEvery > 0 && (t/v.flickerEvery)%2 == 1 {
		gain = v.flickerAmp
	}
	for y := 0; y < v.Height; y++ {
		for x := 0; x < v.Width; x++ {
			f[y*v.Width+x] = clampByte(v.background(float64(x)+pan, float64(y), t) + gain)
		}
	}
	return f
}

// ObjectBoxes returns the ground-truth bounding boxes of all objects at
// frame t, clipped to the frame.
func (v *Video) ObjectBoxes(t int) []Box {
	boxes := make([]Box, 0, len(v.objects))
	for _, o := range v.objects {
		cx, cy := o.pos(t, v.Width, v.Height)
		b := Box{
			X0: int(cx - o.radius), Y0: int(cy - o.radius),
			X1: int(cx + o.radius + 1), Y1: int(cy + o.radius + 1),
		}
		b.X0 = maxInt(b.X0, 0)
		b.Y0 = maxInt(b.Y0, 0)
		b.X1 = minInt(b.X1, v.Width)
		b.Y1 = minInt(b.Y1, v.Height)
		if b.Area() > 0 {
			boxes = append(boxes, b)
		}
	}
	return boxes
}

func clampByte(v float64) byte {
	switch {
	case v <= 0:
		return 0
	case v >= 255:
		return 255
	default:
		return byte(v + 0.5)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (v *Video) String() string {
	return fmt.Sprintf("video %d (%s, %dx%d, %d frames)", v.ID, v.Name, v.Width, v.Height, v.Frames)
}
