package video

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// CaptureConfig configures one capture run of a video through a (FlipBit)
// flash device.
type CaptureConfig struct {
	// EncoderN selects the n-bit approximation window (1..8). 0 disables
	// approximation entirely: the exact baseline.
	EncoderN int
	// Threshold is the MAE threshold handed to setApproxThreshold().
	// Ignored when EncoderN == 0.
	Threshold float64
	// FrameStride writes only every k-th frame — the "reduce the frame
	// rate" alternative of Fig. 11. Default (0 or 1) writes every frame.
	FrameStride int
	// FrameKeepRatio, when in (0, 1), keeps that fraction of frames,
	// evenly spaced — a fractional frame-rate reduction used to match an
	// arbitrary energy budget (§V: energy is proportional to frame
	// rate). Ignored when 0 or >= 1; combines multiplicatively with
	// FrameStride only in the sense that stride is applied first.
	FrameKeepRatio float64
	// Spec optionally overrides the flash part; nil uses DefaultSpec.
	Spec *flash.Spec
	// OnFrame, when set, receives every source frame and the frame the
	// flash holds after the write (used by the object-detection study).
	OnFrame func(t int, exact, stored Frame)

	// Ablation knobs (defaults reproduce the paper's design).
	Metric     core.ErrorMetric    // MAE (default) or MSE page gating
	Fallback   core.FallbackPolicy // per-page (default) or per-value
	ProgramAll bool                // charge programs even for unchanged bytes
}

// CaptureResult summarizes a run: output quality and flash cost.
type CaptureResult struct {
	Video         *Video
	FramesWritten int
	// MeanPSNR is averaged over every source frame against what the
	// flash holds at that instant (skipped frames compare against the
	// last stored one, so frame-rate reduction pays its quality cost).
	MeanPSNR float64
	// GlobalPSNR aggregates MSE over all frames before converting to
	// dB — the standard whole-sequence PSNR. Unlike MeanPSNR it is not
	// distorted by the per-frame cap on lossless frames, so it is the
	// right metric when some strategy stores frames exactly (Fig. 11).
	GlobalPSNR float64
	Flash      flash.Stats
	Ctrl       core.Stats
}

// Capture streams video v into flash frame by frame, always at the same
// flash location (the paper applies approximation to the flash region that
// is repeatedly written to), reading each stored frame back to score PSNR.
func Capture(v *Video, cfg CaptureConfig) (CaptureResult, error) {
	spec := flash.DefaultSpec()
	if cfg.Spec != nil {
		spec = *cfg.Spec
	}
	frameBytes := v.Size()
	if frameBytes > spec.Size() {
		return CaptureResult{}, fmt.Errorf("video: frame (%d B) exceeds flash (%d B)", frameBytes, spec.Size())
	}
	dev, err := core.NewDevice(spec,
		core.WithErrorMetric(cfg.Metric), core.WithFallbackPolicy(cfg.Fallback))
	if err != nil {
		return CaptureResult{}, err
	}
	dev.Flash().SetProgramAll(cfg.ProgramAll)
	if cfg.EncoderN > 0 {
		enc, err := approx.NewNBit(cfg.EncoderN)
		if err != nil {
			return CaptureResult{}, err
		}
		dev.SetEncoder(enc)
		region := pagesFor(frameBytes, spec.PageSize) * spec.PageSize
		if err := dev.SetApproxRegion(0, region); err != nil {
			return CaptureResult{}, err
		}
		if err := dev.SetWidth(bits.W8); err != nil {
			return CaptureResult{}, err
		}
		dev.SetThreshold(cfg.Threshold)
	}

	stride := cfg.FrameStride
	if stride < 1 {
		stride = 1
	}
	keep := func(t int) bool {
		if t%stride != 0 {
			return false
		}
		r := cfg.FrameKeepRatio
		if r <= 0 || r >= 1 {
			return true
		}
		// Keep frame t iff the accumulated keep phase crosses an
		// integer boundary — evenly spaced retention at ratio r.
		return int(float64(t+1)*r) > int(float64(t)*r)
	}
	stored := make(Frame, frameBytes)
	var psnrSum, mseSum float64
	written := 0
	for t := 0; t < v.Frames; t++ {
		exact := v.Frame(t)
		if keep(t) || t == 0 {
			if err := dev.Write(0, exact); err != nil {
				return CaptureResult{}, fmt.Errorf("video: frame %d: %w", t, err)
			}
			written++
		}
		if err := dev.Read(0, stored); err != nil {
			return CaptureResult{}, err
		}
		psnrSum += PSNR(exact, stored)
		mseSum += MSE(exact, stored)
		if cfg.OnFrame != nil {
			cfg.OnFrame(t, exact, stored)
		}
	}
	global := psnrFromMSE(mseSum / float64(v.Frames))
	return CaptureResult{
		Video:         v,
		FramesWritten: written,
		MeanPSNR:      psnrSum / float64(v.Frames),
		GlobalPSNR:    global,
		Flash:         dev.Flash().Stats(),
		Ctrl:          dev.Stats(),
	}, nil
}

// EnergyReduction returns 1 - approx/baseline for two runs of the same
// video, i.e. the fraction of flash energy FlipBit saved.
func EnergyReduction(baseline, flipbit CaptureResult) float64 {
	if baseline.Flash.Energy == 0 {
		return 0
	}
	return 1 - float64(flipbit.Flash.Energy)/float64(baseline.Flash.Energy)
}

// LifetimeIncrease returns erases_baseline/erases_flipbit - 1, the paper's
// proxy for flash lifetime extension (§V-C).
func LifetimeIncrease(baseline, flipbit CaptureResult) float64 {
	if flipbit.Flash.Erases == 0 {
		if baseline.Flash.Erases == 0 {
			return 0
		}
		return float64(baseline.Flash.Erases) // effectively unbounded; report the ratio
	}
	return float64(baseline.Flash.Erases)/float64(flipbit.Flash.Erases) - 1
}

func pagesFor(bytes, pageSize int) int {
	return (bytes + pageSize - 1) / pageSize
}
