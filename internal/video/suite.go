package video

// Suite returns the benchmark videos. IDs are ordered by motion intensity,
// mirroring the paper's observation that low-ID videos (mostly static)
// approximate well while high-ID, high-motion clips (e.g. a boat on water)
// force frequent exact writes.
//
// Four families, four clips each:
//
//	1–4   static-*  : fixed scene, sensor noise and occasional gain steps
//	5–8   talker-*  : one slow object over a static background (talking head)
//	9–12  traffic-* : several objects crossing the frame (traffic camera)
//	13–16 boat-*    : a moving object over shimmering water plus a slow pan
//
// All clips include mild auto-exposure flicker so even perfectly static
// scenes occasionally demand an exact frame, as real sensors do.
func Suite() []*Video {
	const (
		w      = 64
		h      = 64
		frames = 72
	)
	mk := func(id int, name string, noise, shimmer, pan float64, objs []object) *Video {
		return &Video{
			ID: id, Name: name, Width: w, Height: h, Frames: frames,
			seed: uint64(id)*0x9E37 + 17, noiseSigma: noise, shimmer: shimmer,
			waterline: 0.45, panSpeed: pan, objects: objs,
			flickerEvery: 18 + id%3*3, flickerAmp: 7,
		}
	}
	disc := func(cx, cy, vx, vy, r, bright float64) object {
		return object{cx: cx, cy: cy, vx: vx, vy: vy, radius: r, brightness: bright}
	}
	return []*Video{
		mk(1, "static-lab", 0.8, 0, 0, nil),
		mk(2, "static-warehouse", 1.0, 0, 0, nil),
		mk(3, "static-greenhouse", 1.3, 0, 0, nil),
		mk(4, "static-night", 1.6, 0, 0, nil),

		mk(5, "talker-desk", 1.0, 0, 0, []object{disc(32, 30, 0.12, 0.05, 9, 215)}),
		mk(6, "talker-podium", 1.2, 0, 0, []object{disc(26, 34, 0.18, 0.08, 10, 200)}),
		mk(7, "talker-kiosk", 1.4, 0, 0, []object{disc(38, 28, 0.25, 0.12, 8, 225)}),
		mk(8, "talker-window", 1.6, 0, 0, []object{disc(30, 32, 0.3, 0.15, 9, 190)}),

		mk(9, "traffic-dawn", 1.1, 0, 0, []object{
			disc(8, 20, 0.9, 0, 5, 230), disc(50, 44, -0.7, 0, 6, 40)}),
		mk(10, "traffic-noon", 1.3, 0, 0, []object{
			disc(4, 16, 1.2, 0, 5, 235), disc(60, 40, -1.0, 0, 5, 30), disc(30, 54, 0.8, 0, 4, 210)}),
		mk(11, "traffic-rush", 1.5, 0, 0, []object{
			disc(10, 14, 1.5, 0.1, 6, 240), disc(55, 36, -1.3, 0, 5, 25),
			disc(20, 50, 1.1, -0.1, 4, 215), disc(40, 26, -0.9, 0, 5, 205)}),
		mk(12, "traffic-night", 1.7, 0, 0, []object{
			disc(6, 22, 1.8, 0.2, 5, 245), disc(58, 46, -1.6, -0.1, 6, 20), disc(34, 12, 1.2, 0.3, 4, 230)}),

		mk(13, "boat-harbor", 1.2, 3, 0, []object{disc(16, 40, 0.8, 0.1, 8, 220)}),
		mk(14, "boat-river", 1.4, 5, 0, []object{disc(12, 42, 1.1, 0.15, 9, 210)}),
		mk(15, "boat-chop", 1.6, 8, 0.1, []object{disc(20, 44, 1.4, -0.2, 8, 230)}),
		mk(16, "boat-storm", 1.9, 12, 0.15, []object{disc(24, 42, 1.8, 0.3, 9, 240), disc(48, 50, -1.2, 0.2, 5, 35)}),
	}
}

// ByID returns the suite video with the given ID, or nil.
func ByID(id int) *Video {
	for _, v := range Suite() {
		if v.ID == id {
			return v
		}
	}
	return nil
}
