package video

import (
	"math"
	"testing"
)

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 16 {
		t.Fatalf("suite has %d videos, want 16", len(suite))
	}
	seen := map[int]bool{}
	for _, v := range suite {
		if seen[v.ID] {
			t.Errorf("duplicate ID %d", v.ID)
		}
		seen[v.ID] = true
		if v.Width <= 0 || v.Height <= 0 || v.Frames <= 0 {
			t.Errorf("%s: bad geometry", v)
		}
	}
	if ByID(3) == nil || ByID(3).ID != 3 {
		t.Error("ByID(3) lookup failed")
	}
	if ByID(99) != nil {
		t.Error("ByID(99) should be nil")
	}
}

func TestFrameDeterministic(t *testing.T) {
	v := ByID(13)
	a := v.Frame(7)
	b := v.Frame(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame generation not deterministic at pixel %d", i)
		}
	}
}

func TestFramesDiffer(t *testing.T) {
	v := ByID(16) // high motion
	if MSE(v.Frame(0), v.Frame(10)) == 0 {
		t.Error("high-motion frames 0 and 10 identical")
	}
}

// TestMotionOrdering: static clips must have higher frame-to-frame
// similarity than boat clips; this is the axis the suite is built to span.
func TestMotionOrdering(t *testing.T) {
	delta := func(v *Video) float64 {
		var sum float64
		const pairs = 6
		for i := 0; i < pairs; i++ {
			sum += MSE(v.Frame(i), v.Frame(i+1))
		}
		return sum / pairs
	}
	static := delta(ByID(1))
	boat := delta(ByID(15))
	if static >= boat {
		t.Errorf("static Δ %.2f >= boat Δ %.2f; suite motion axis broken", static, boat)
	}
}

func TestPSNRIdentity(t *testing.T) {
	v := ByID(5)
	f := v.Frame(0)
	if got := PSNR(f, f); got != PSNRCap {
		t.Errorf("PSNR(f,f) = %v, want cap %v", got, PSNRCap)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	a := make(Frame, 100)
	b := make(Frame, 100)
	for i := range b {
		b[i] = 5 // MSE 25 → PSNR = 10·log10(255²/25) ≈ 34.15 dB
	}
	got := PSNR(a, b)
	want := 10 * math.Log10(255*255/25.0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("PSNR = %v, want %v", got, want)
	}
}

func TestPSNRMismatchedFrames(t *testing.T) {
	if !math.IsNaN(PSNR(make(Frame, 4), make(Frame, 5))) {
		t.Error("mismatched sizes should give NaN")
	}
}

func TestBoxIoU(t *testing.T) {
	a := Box{0, 0, 10, 10}
	if a.IoU(a) != 1 {
		t.Error("IoU with self should be 1")
	}
	b := Box{5, 0, 15, 10}
	// inter = 50, union = 150 → 1/3.
	if got := a.IoU(b); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("IoU = %v, want 1/3", got)
	}
	if a.IoU(Box{20, 20, 30, 30}) != 0 {
		t.Error("disjoint boxes should have IoU 0")
	}
}

func TestObjectBoxesTrackMotion(t *testing.T) {
	v := ByID(9) // traffic with moving objects
	b0 := v.ObjectBoxes(0)
	b20 := v.ObjectBoxes(20)
	if len(b0) == 0 || len(b20) == 0 {
		t.Fatal("traffic video should have object boxes")
	}
	if b0[0] == b20[0] {
		t.Error("object box did not move over 20 frames")
	}
}

func TestCaptureExactIsLossless(t *testing.T) {
	v := smallClip(1, 0, 0)
	res, err := Capture(v, CaptureConfig{EncoderN: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPSNR != PSNRCap {
		t.Errorf("exact capture PSNR = %v, want %v (lossless)", res.MeanPSNR, PSNRCap)
	}
	if res.FramesWritten != v.Frames {
		t.Errorf("wrote %d frames, want %d", res.FramesWritten, v.Frames)
	}
}

func TestCaptureFlipBitSavesEnergyOnStaticScene(t *testing.T) {
	v := smallClip(2, 0, 0) // static + mild noise
	base, err := Capture(v, CaptureConfig{EncoderN: 0})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Capture(v, CaptureConfig{EncoderN: 2, Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	red := EnergyReduction(base, fb)
	if red <= 0.2 {
		t.Errorf("static-scene energy reduction = %.2f, expected substantial savings", red)
	}
	if fb.MeanPSNR < 30 {
		t.Errorf("FlipBit PSNR = %.1f dB, too low", fb.MeanPSNR)
	}
	if fb.Flash.Erases >= base.Flash.Erases {
		t.Errorf("erases %d >= baseline %d", fb.Flash.Erases, base.Flash.Erases)
	}
	if li := LifetimeIncrease(base, fb); li <= 0 {
		t.Errorf("lifetime increase = %.2f, want positive", li)
	}
}

func TestCaptureFrameStride(t *testing.T) {
	v := smallClip(3, 0.6, 0)
	full, err := Capture(v, CaptureConfig{EncoderN: 0})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Capture(v, CaptureConfig{EncoderN: 0, FrameStride: 2})
	if err != nil {
		t.Fatal(err)
	}
	if half.FramesWritten*2 != full.FramesWritten && half.FramesWritten*2 != full.FramesWritten+2 {
		t.Errorf("stride 2 wrote %d frames vs %d at stride 1", half.FramesWritten, full.FramesWritten)
	}
	if half.Flash.Energy >= full.Flash.Energy {
		t.Error("halving the frame rate should reduce flash energy")
	}
	if half.MeanPSNR >= full.MeanPSNR {
		t.Error("halving the frame rate of a moving scene must cost PSNR")
	}
}

// TestThresholdMonotonicity: raising the threshold must not increase flash
// energy and must not improve PSNR (Fig. 14's two curves).
func TestThresholdMonotonicity(t *testing.T) {
	v := smallClip(4, 0.3, 4)
	base, err := Capture(v, CaptureConfig{EncoderN: 0})
	if err != nil {
		t.Fatal(err)
	}
	prevRed := -1.0
	prevPSNR := math.Inf(1)
	for _, thr := range []float64{0.5, 2, 8, 32} {
		res, err := Capture(v, CaptureConfig{EncoderN: 2, Threshold: thr})
		if err != nil {
			t.Fatal(err)
		}
		red := EnergyReduction(base, res)
		if red < prevRed-0.02 {
			t.Errorf("threshold %v: energy reduction %.3f dropped below %.3f", thr, red, prevRed)
		}
		if res.MeanPSNR > prevPSNR+0.5 {
			t.Errorf("threshold %v: PSNR %.2f rose above %.2f", thr, res.MeanPSNR, prevPSNR)
		}
		prevRed, prevPSNR = red, res.MeanPSNR
	}
}

// smallClip builds a fast 16x16 test clip.
func smallClip(seed uint64, motion, shimmer float64) *Video {
	v := &Video{
		ID: 1000 + int(seed), Name: "test", Width: 16, Height: 16, Frames: 12,
		seed: seed, noiseSigma: 1.5, shimmer: shimmer,
	}
	if motion > 0 {
		v.objects = []object{{cx: 8, cy: 8, vx: motion, vy: motion / 2, radius: 4, brightness: 220}}
	}
	return v
}
