package video

import "testing"

// TestFlickerSteps: the auto-exposure gain step must shift whole frames at
// flicker boundaries and leave adjacent frames within a flicker block
// similar.
func TestFlickerSteps(t *testing.T) {
	v := &Video{
		ID: 2001, Name: "flicker", Width: 16, Height: 16, Frames: 40,
		seed: 5, noiseSigma: 0, flickerEvery: 10, flickerAmp: 8,
	}
	within := MSE(v.Frame(3), v.Frame(4))  // same gain block, no noise
	across := MSE(v.Frame(9), v.Frame(10)) // gain steps here
	if within != 0 {
		t.Errorf("noise-free frames within a gain block differ: MSE %v", within)
	}
	if across < 30 { // amp 8 → MSE ≈ 64 on most pixels
		t.Errorf("gain boundary MSE %v too small; flicker inactive", across)
	}
}

// TestWaterline: shimmer must move only pixels below the waterline.
func TestWaterline(t *testing.T) {
	v := &Video{
		ID: 2002, Name: "water", Width: 16, Height: 16, Frames: 10,
		seed: 7, noiseSigma: 0, shimmer: 10, waterline: 0.5,
	}
	a, b := v.Frame(0), v.Frame(1)
	var skyDiff, seaDiff int
	for y := 0; y < v.Height; y++ {
		for x := 0; x < v.Width; x++ {
			d := int(a[y*v.Width+x]) - int(b[y*v.Width+x])
			if d < 0 {
				d = -d
			}
			if y < v.Height/2 {
				skyDiff += d
			} else {
				seaDiff += d
			}
		}
	}
	if skyDiff != 0 {
		t.Errorf("sky above the waterline moved: total diff %d", skyDiff)
	}
	if seaDiff == 0 {
		t.Error("water below the waterline did not shimmer")
	}
}

// TestBackgroundFrameMatchesObjectFreeScene: Frame minus objects and noise
// must equal BackgroundFrame exactly.
func TestBackgroundFrameMatchesObjectFreeScene(t *testing.T) {
	v := &Video{
		ID: 2003, Name: "bg", Width: 16, Height: 16, Frames: 5,
		seed: 9, noiseSigma: 0, flickerEvery: 3, flickerAmp: 6, panSpeed: 0.5,
	}
	for ti := 0; ti < 5; ti++ {
		f := v.Frame(ti)
		bg := v.BackgroundFrame(ti)
		for i := range f {
			if f[i] != bg[i] {
				t.Fatalf("t=%d pixel %d: frame %d != background %d", ti, i, f[i], bg[i])
			}
		}
	}
}

func TestBounceReflects(t *testing.T) {
	cases := []struct {
		x, limit, want float64
	}{
		{5, 10, 5},
		{12, 10, 8}, // reflect off the far edge
		{-3, 10, 3}, // reflect off zero
		{25, 10, 5}, // full period wrap
	}
	for _, c := range cases {
		if got := bounce(c.x, c.limit); got != c.want {
			t.Errorf("bounce(%v, %v) = %v, want %v", c.x, c.limit, got, c.want)
		}
	}
}

func TestClampByte(t *testing.T) {
	if clampByte(-5) != 0 || clampByte(300) != 255 || clampByte(99.6) != 100 {
		t.Error("clampByte wrong")
	}
}
