package faultcampaign

import (
	"reflect"
	"testing"
	"time"

	"github.com/flipbit-sim/flipbit/internal/flash"
)

// TestCampaignDeterministic: the whole campaign — fault schedule, workload,
// crashes, recovery stats, fingerprint — is a pure function of the config.
func TestCampaignDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Cycles: 150}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.Fingerprint == 0 {
		t.Error("fingerprint never mixed")
	}
}

// TestCampaignSeedsDiffer: different seeds must explore different schedules.
func TestCampaignSeedsDiffer(t *testing.T) {
	a, err := Run(Config{Seed: 1, Cycles: 60})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 2, Cycles: 60})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Error("distinct seeds produced identical fingerprints")
	}
}

// TestCampaignDirectKVS is the acceptance run: ≥1000 seeded crash/reboot
// cycles against the store on raw flash, zero recovery-invariant violations.
func TestCampaignDirectKVS(t *testing.T) {
	res, err := Run(Config{Seed: 7, Cycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	assertClean(t, res)
}

// TestCampaignKVSOnFTL: the same campaign through the journaled FTL, with
// commit read-back verification on.
func TestCampaignKVSOnFTL(t *testing.T) {
	res, err := Run(Config{Seed: 7, Cycles: 1000, UseFTL: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	assertClean(t, res)
}

// TestCampaignPowerLossOnly: a pure brown-out storm with short gaps so most
// cycles crash mid-operation.
func TestCampaignPowerLossOnly(t *testing.T) {
	res, err := Run(Config{
		Seed:   11,
		Cycles: 400,
		Mix:    flash.FaultMix{PowerLoss: 1, MinGap: 0, MaxGap: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertClean(t, res)
	if res.Crashes < res.Cycles/4 {
		t.Errorf("only %d/%d cycles crashed; gaps too generous for a brown-out storm", res.Crashes, res.Cycles)
	}
}

// TestCampaignScrub: the scrubber runs a deterministic pass every cycle
// through the FTL's crash-consistent refresh/retire hooks while power
// losses and wear faults fire — including mid-scrub. Determinism must hold
// with the scrubber armed, and no acked data may be lost.
func TestCampaignScrub(t *testing.T) {
	cfg := Config{
		Seed:       42,
		Cycles:     400,
		UseFTL:     true,
		Verify:     true,
		Spares:     2,
		Scrub:      true,
		ScrubPages: 4,
		Mix: flash.FaultMix{
			PowerLoss: 4, StuckBits: 4, ReadDisturb: 2,
			MinGap: 0, MaxGap: 300, MaxBits: 6,
		},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertClean(t, a)
	if a.ScrubSampled == 0 {
		t.Error("scrubber never sampled a page")
	}
	if a.ScrubAbsorbed+a.ScrubRefreshed == 0 {
		t.Error("scrubber never acted on drift; fault mix too gentle")
	}
	t.Logf("scrub: sampled=%d absorbed=%d refreshed=%d retired=%d errors=%d ftlRefreshes=%d",
		a.ScrubSampled, a.ScrubAbsorbed, a.ScrubRefreshed, a.ScrubRetired,
		a.ScrubErrors, a.FTLRefreshes)

	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scrub campaign diverged across identical runs:\n%+v\nvs\n%+v", a, b)
	}
}

// assertClean fails the test on any recovery-invariant violation and checks
// the campaign actually exercised faults.
func assertClean(t *testing.T, res *Result) {
	t.Helper()
	if res.ViolationCount != 0 {
		t.Fatalf("%d invariant violations, first: %v", res.ViolationCount, res.Violations)
	}
	if res.Crashes == 0 {
		t.Error("campaign never crashed; fault schedule too sparse to prove anything")
	}
	if res.FaultsFired == 0 {
		t.Error("no fault ever fired")
	}
	t.Logf("cycles=%d crashes=%d (during recovery %d) fired=%d wasted=%d corrected=%d torn=%d meanRecovery=%v fp=%016x",
		res.Cycles, res.Crashes, res.CrashesDuringRecovery, res.FaultsFired,
		res.WastedPages, res.CorrectedBits, res.TornSkipped, res.MeanRecoveryBusy, res.Fingerprint)
}

// TestCampaignAsyncCommitReplayByteIdentical: routing the store's writes
// through the async commit pipeline must not perturb the campaign at all —
// per-op waits keep each bank's operation sequence serial-identical, so the
// full Result (fingerprint included) matches the synchronous run bit for
// bit, and a second async run replays itself.
func TestCampaignAsyncCommitReplayByteIdentical(t *testing.T) {
	sync, err := Run(Config{Seed: 7, Cycles: 400})
	if err != nil {
		t.Fatal(err)
	}
	async, err := Run(Config{Seed: 7, Cycles: 400, AsyncCommit: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sync, async) {
		t.Fatalf("async campaign diverged from synchronous run:\nsync  %+v\nasync %+v", sync, async)
	}
	again, err := Run(Config{Seed: 7, Cycles: 400, AsyncCommit: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(async, again) {
		t.Fatalf("async campaign diverged across identical runs:\n%+v\nvs\n%+v", async, again)
	}
	assertClean(t, async)
	if async.Crashes == 0 {
		t.Error("async campaign never crashed; pipeline is not exercising faults")
	}
}

// ckptTestConfig is the crash-during-GC/checkpoint configuration: proactive
// compaction and interval checkpointing armed on a geometry with room for
// two 4-page checkpoint slots.
func ckptTestConfig(seed uint64, cycles int) Config {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 32
	spec.Banks = 1
	return Config{
		Seed: seed, Cycles: cycles, Spec: spec,
		Compact: true, CheckpointEvery: 12, CheckpointPages: 4,
	}
}

// TestCampaignCompactionCheckpoint is the crash-during-GC/checkpoint
// acceptance run: power loss lands mid-compaction and mid-checkpoint-write,
// reboots restore from whatever checkpoint survived and replay the tail,
// and no acked key is ever lost. The workload must actually exercise the
// machinery: GC passes, committed checkpoints, and checkpointed mounts all
// have to show up in the totals.
func TestCampaignCompactionCheckpoint(t *testing.T) {
	res, err := Run(ckptTestConfig(7, 1000))
	if err != nil {
		t.Fatal(err)
	}
	assertClean(t, res)
	if res.Compactions == 0 {
		t.Error("campaign never compacted")
	}
	if res.Checkpoints == 0 {
		t.Error("campaign never committed a checkpoint")
	}
	if res.CheckpointMounts == 0 {
		t.Error("no reboot ever mounted from a checkpoint")
	}
	t.Logf("compactions=%d checkpoints=%d (failures %d) mounts: %d ckpt / %d scan",
		res.Compactions, res.Checkpoints, res.CheckpointFailures,
		res.CheckpointMounts, res.ScanMounts)
}

// TestCampaignCompactionCheckpointReplay: the compact+ckpt campaign replays
// byte-identically — torn checkpoints, GC crash points and all.
func TestCampaignCompactionCheckpointReplay(t *testing.T) {
	a, err := Run(ckptTestConfig(99, 300))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ckptTestConfig(99, 300))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// transientTestConfig arms the full robustness stack: transient program and
// erase verify failures absorbed by the core retry budget, retention aging
// on every reboot, and a scrub pass per cycle absorbing marginal cells in
// the (fully approximatable) raw store. Retry covers Mix.MaxRetries, so
// every transient incident recovers without retirement.
func transientTestConfig(seed uint64, cycles int) Config {
	return Config{
		Seed:           seed,
		Cycles:         cycles,
		Retry:          3,
		RetentionEvery: 2 * time.Millisecond,
		Scrub:          true,
		Mix: flash.FaultMix{
			PowerLoss:        4,
			TransientProgram: 3,
			TransientErase:   1,
			Retention:        2,
			MinGap:           0,
			MaxGap:           250,
			MaxRetries:       3,
		},
	}
}

// TestCampaignTransientRetention is the transient+retention acceptance run:
// 1000 cycles of verify failures, brown-outs, read-time retention marks and
// power-off aging, with zero recovery-invariant violations. The machinery
// has to actually fire: retries must save writes (and, with the budget
// covering every incident, never retire), aging must mark cells, and the
// hardened read path must re-sense flicker.
func TestCampaignTransientRetention(t *testing.T) {
	res, err := Run(transientTestConfig(7, 1000))
	if err != nil {
		t.Fatal(err)
	}
	assertClean(t, res)
	if res.TransientProgramArmed+res.TransientEraseArmed == 0 {
		t.Error("schedule never armed a transient fault")
	}
	if res.RetrySaves == 0 {
		t.Error("retry policy never saved a write")
	}
	if res.RetryRetired != 0 {
		t.Errorf("RetryRetired = %d; budget covers every incident, nothing should retire", res.RetryRetired)
	}
	if res.RetentionAged == 0 {
		t.Error("reboots never aged retention")
	}
	if res.SenseRetries == 0 {
		t.Error("store never re-sensed a flickering read")
	}
	t.Logf("retry: attempts=%d saves=%d | fails: program=%d erase=%d | retention: aged=%d senses=%d recovered=%d scrubAbsorbed=%d",
		res.RetryAttempts, res.RetrySaves, res.ProgramFails, res.EraseFails,
		res.RetentionAged, res.SenseRetries, res.SenseRecovered, res.ScrubRetentionAbsorbed)

	again, err := Run(transientTestConfig(7, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatalf("transient campaign diverged across identical runs:\n%+v\nvs\n%+v", res, again)
	}
}

// TestCampaignTransientAsyncByteIdentical: retry backoffs, retention aging
// and re-senses are all charged per bank in issue order, so the async
// commit pipeline must replay the transient campaign bit for bit.
func TestCampaignTransientAsyncByteIdentical(t *testing.T) {
	cfg := transientTestConfig(21, 400)
	sync, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertClean(t, sync)
	acfg := cfg
	acfg.AsyncCommit = 8
	async, err := Run(acfg)
	if err != nil {
		t.Fatal(err)
	}
	sync.Cycles, async.Cycles = 0, 0 // compare everything else field-for-field
	if sync.Fingerprint != async.Fingerprint {
		t.Fatalf("async fingerprint %x != sync %x", async.Fingerprint, sync.Fingerprint)
	}
	if !reflect.DeepEqual(sync, async) {
		t.Fatalf("async transient campaign diverged from sync:\n%+v\nvs\n%+v", sync, async)
	}
}

// TestCampaignTransientExhaust: with the retry budget below the worst
// incident, some transient-program faults must exhaust the budget and
// retire the page — and the store has to absorb every retirement without
// losing acked data. Erase transients are left out of the mix: a torn
// erase that outlasts the budget legitimately destroys the page image,
// which is the FTL's remap territory, not the raw store's.
func TestCampaignTransientExhaust(t *testing.T) {
	res, err := Run(Config{
		Seed:   13,
		Cycles: 400,
		Retry:  1,
		Mix: flash.FaultMix{
			PowerLoss:        2,
			TransientProgram: 4,
			MinGap:           0,
			MaxGap:           150,
			MaxRetries:       4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertClean(t, res)
	if res.RetrySaves == 0 {
		t.Error("no single-shot incident was saved by the retry")
	}
	if res.RetryRetired == 0 {
		t.Error("no incident exhausted the budget; MaxRetries too low to exercise retirement")
	}
	t.Logf("exhaust: attempts=%d saves=%d retired=%d", res.RetryAttempts, res.RetrySaves, res.RetryRetired)
}

// TestCampaignTransientRequiresRetry: arming transient weights without a
// retry policy is a configuration error, not a latent campaign failure.
func TestCampaignTransientRequiresRetry(t *testing.T) {
	_, err := Run(Config{
		Seed: 1, Cycles: 10,
		Mix: flash.FaultMix{PowerLoss: 1, TransientProgram: 1, MaxGap: 50},
	})
	if err == nil {
		t.Fatal("transient mix without Retry accepted")
	}
}

// TestCampaignNegativeMixRejected: schedule construction validates weights,
// so a negative weight surfaces as an error from Run, not a panic or a
// skewed draw.
func TestCampaignNegativeMixRejected(t *testing.T) {
	_, err := Run(Config{
		Seed: 1, Cycles: 10,
		Mix: flash.FaultMix{PowerLoss: -1, StuckBits: 2, MaxGap: 50},
	})
	if err == nil {
		t.Fatal("negative fault weight accepted")
	}
}
