// Package faultcampaign drives thousands of simulated crash/reboot cycles
// against the full stack — flash → core → ftl → kvs — and checks recovery
// invariants after every one. Each cycle arms a fault drawn from a seeded
// stream (power loss tearing a program or erase, stuck-at-0 cells, read
// disturb), runs a seeded key-value workload mirrored in a RAM model,
// reboots on crash and verifies that every acknowledged write survived
// exactly: a key holds its acked value, or — for the single operation that
// was in flight when power died — either the old or the new value, never a
// torn in-between. Everything derives from Config.Seed, so a failing
// campaign replays byte-identically (Result.Fingerprint pins the whole
// fault schedule and stats stream).
package faultcampaign

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/ftl"
	"github.com/flipbit-sim/flipbit/internal/kvs"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Config parameterises one campaign. The zero value of every field has a
// usable default.
type Config struct {
	Seed   uint64
	Cycles int // crash/reboot cycles to run (default 1000)

	// Spec is the flash geometry (default: 24 pages × 128 B, 1 bank — a
	// small device so faults hit live data often).
	Spec flash.Spec

	// Mix weights the fault kinds and their gaps (default: power loss
	// heavy with occasional wear faults). Read-disturb faults are always
	// narrowed to a single bit: that is the store's repair guarantee.
	// Transient weights (TransientProgram, TransientErase) require Retry
	// > 0 — without a retry policy a verify failure surfaces as a write
	// error the store was never meant to absorb.
	Mix flash.FaultMix

	// Retry > 0 arms the core verify-retry policy (core.WithRetry) with
	// the given re-issue budget; transient faults whose incident outlasts
	// the budget retire the page instead of failing the write.
	Retry int

	// RetentionEvery > 0 applies retention aging at every reboot: one
	// cell-leak event per RetentionEvery of device busy time accumulated
	// since the last aging step (capped per reboot), modelling charge
	// leaking while the node was powered down between campaign cycles.
	RetentionEvery time.Duration

	// Workload shape.
	MaxOpsPerCycle int     // ops attempted per cycle (default 60)
	Keys           int     // distinct keys (default 8)
	ValueSize      int     // value bytes (default 24)
	Threshold      float64 // MAE threshold for the approximate write path

	// UseFTL runs the store on a journaled FTL instead of raw flash.
	UseFTL bool
	// Verify mounts the store with read-back verification of commits.
	Verify bool

	// AsyncCommit > 0 routes the store's writes through the async commit
	// pipeline (WithAsyncCommit) at the given queue depth, with each store
	// write waiting on its completion future. The campaign stays fully
	// deterministic: while a fault is armed the pipeline commits one
	// request at a time, and the per-op wait means each bank observes the
	// same operation sequence as the synchronous path — so the fingerprint
	// must match the AsyncCommit == 0 run bit for bit. Raw-kvs campaigns
	// only (the FTL drives the device directly).
	AsyncCommit int

	// Compact arms the store's proactive garbage collector
	// (kvs.WithCompaction, default tuning), so space is reclaimed under the
	// cycle workload — and power loss lands mid-compaction — instead of GC
	// running only when an append finds the log full.
	Compact bool
	// CheckpointEvery > 0 arms index checkpointing (kvs.WithCheckpoint): a
	// checkpoint every N committed appends, so reboots restore from the
	// newest valid slot and replay only the tail — and power loss can tear
	// a checkpoint mid-write, which recovery must shrug off.
	CheckpointEvery int
	// CheckpointPages sizes each of the two checkpoint slots, in pages
	// (default 2, with CheckpointEvery set).
	CheckpointPages int

	// Spares reserves a retirement pool in the FTL (requires UseFTL), so
	// worn pages are remapped instead of quarantined.
	Spares int
	// Scrub arms the background scrubber, driven synchronously (one
	// deterministic pass per cycle, before the workload) so campaigns stay
	// replayable. With UseFTL the scrubber routes refreshes and
	// retirements through the FTL's crash-consistent paths — power loss
	// mid-scrub exercises the refresh-intent recovery.
	Scrub bool
	// ScrubPages is how many pages each cycle's scrub pass samples per
	// bank (default 2, with Scrub set).
	ScrubPages int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Cycles <= 0 {
		c.Cycles = 1000
	}
	if c.Spec.PageSize == 0 {
		c.Spec = flash.DefaultSpec()
		c.Spec.PageSize = 128
		c.Spec.NumPages = 24
		c.Spec.Banks = 1
	}
	if c.Mix.PowerLoss+c.Mix.StuckBits+c.Mix.ReadDisturb+
		c.Mix.TransientProgram+c.Mix.TransientErase+c.Mix.Retention <= 0 {
		c.Mix = flash.FaultMix{
			PowerLoss: 8, StuckBits: 1, ReadDisturb: 1,
			MinGap: 0, MaxGap: 300, MaxBits: 2,
		}
	}
	if c.MaxOpsPerCycle <= 0 {
		c.MaxOpsPerCycle = 60
	}
	if c.Keys <= 0 {
		c.Keys = 8
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 24
	}
	if c.Scrub && c.ScrubPages <= 0 {
		c.ScrubPages = 2
	}
	if c.CheckpointEvery > 0 && c.CheckpointPages <= 0 {
		c.CheckpointPages = 2
	}
	return c
}

// Result is one campaign's outcome. Two runs with the same Config are
// byte-identical, Fingerprint included.
type Result struct {
	Seed   uint64 `json:"seed"`
	Cycles int    `json:"cycles"`

	Crashes               int `json:"crashes"`                 // cycles ended by a power loss
	CrashesDuringRecovery int `json:"crashes_during_recovery"` // power loss injected into a remount

	PowerLossArmed        int `json:"power_loss_armed"`
	StuckBitsArmed        int `json:"stuck_bits_armed"`
	ReadDisturbArmed      int `json:"read_disturb_armed"`
	TransientProgramArmed int `json:"transient_program_armed,omitempty"`
	TransientEraseArmed   int `json:"transient_erase_armed,omitempty"`
	RetentionArmed        int `json:"retention_armed,omitempty"`

	FaultsFired uint64 `json:"faults_fired"`

	// Verify-retry outcomes (with Config.Retry): re-issues, writes the
	// retry saved from failing, and pages retired on budget exhaustion.
	RetryAttempts uint64 `json:"retry_attempts,omitempty"`
	RetrySaves    uint64 `json:"retry_saves,omitempty"`
	RetryRetired  uint64 `json:"retry_retired,omitempty"`
	ProgramFails  uint64 `json:"program_fails,omitempty"`
	EraseFails    uint64 `json:"erase_fails,omitempty"`

	// Retention-drift outcomes: cells aged marginal at reboots, read-path
	// re-senses, and the scrubber's absorb/recharge decisions.
	RetentionAged           uint64 `json:"retention_aged,omitempty"`
	SenseRetries            uint64 `json:"sense_retries,omitempty"`
	SenseRecovered          uint64 `json:"sense_recovered,omitempty"`
	MarginSenses            uint64 `json:"margin_senses,omitempty"`
	ScrubRetentionAbsorbed  uint64 `json:"scrub_retention_absorbed,omitempty"`
	ScrubRetentionRefreshed uint64 `json:"scrub_retention_refreshed,omitempty"`

	Violations     []string `json:"violations,omitempty"` // capped detail strings
	ViolationCount int      `json:"violation_count"`

	// Recovery cost: flash activity between crash and completed remount.
	RecoveryBusy     time.Duration `json:"recovery_busy_ns"`
	RecoveryEnergy   energy.Energy `json:"recovery_energy_j"`
	MeanRecoveryBusy time.Duration `json:"mean_recovery_busy_ns"`

	// Resilience counters from the final store state; Compactions and the
	// checkpoint counters accumulate across every reboot's store lifetime.
	WastedPages   uint64 `json:"wasted_pages"` // retired + quarantined
	CorrectedBits uint64 `json:"corrected_bits"`
	TornSkipped   uint64 `json:"torn_skipped"`
	Compactions   uint64 `json:"compactions"`

	Checkpoints        uint64 `json:"checkpoints,omitempty"`
	CheckpointFailures uint64 `json:"checkpoint_failures,omitempty"`
	CheckpointMounts   uint64 `json:"checkpoint_mounts,omitempty"`
	ScanMounts         uint64 `json:"scan_mounts,omitempty"`

	FTLRolledForward uint64 `json:"ftl_rolled_forward,omitempty"`
	FTLRolledBack    uint64 `json:"ftl_rolled_back,omitempty"`
	FTLRetirements   uint64 `json:"ftl_retirements,omitempty"`
	FTLRefreshes     uint64 `json:"ftl_refreshes,omitempty"`

	// Scrub activity (with Config.Scrub), accumulated across reboots.
	ScrubSampled   uint64 `json:"scrub_sampled,omitempty"`
	ScrubAbsorbed  uint64 `json:"scrub_absorbed,omitempty"`
	ScrubRefreshed uint64 `json:"scrub_refreshed,omitempty"`
	ScrubRetired   uint64 `json:"scrub_retired,omitempty"`
	ScrubErrors    uint64 `json:"scrub_errors,omitempty"`

	FinalLiveKeys int    `json:"final_live_keys"`
	Fingerprint   uint64 `json:"fingerprint"`
}

// violationCap bounds the detail strings kept in Result.
const violationCap = 10

// pendingOp is the single operation in flight when power died.
type pendingOp struct {
	key    string
	val    []byte // nil for a delete
	delete bool
	active bool
}

// campaign is the engine's run state.
type campaign struct {
	cfg   Config
	rng   *xrand.RNG
	dev   *core.Device
	fl    *flash.Device
	ftl   *ftl.FTL
	store *kvs.Store

	// scr is rebuilt on every mount (its hooks capture the live FTL);
	// scrubTotals accumulates the stats of scrubbers retired by reboots,
	// and ftlRetireTotal/ftlRefreshTotal do the same for the FTLs.
	scr             *core.Scrubber
	scrubTotals     core.ScrubStats
	ftlRetireTotal  uint64
	ftlRefreshTotal uint64
	// kvsTotals accumulates the lifetime counters (compactions,
	// checkpoints, mount paths) of stores retired by reboots — a remount
	// starts a fresh kvs.Stats, but the campaign reports totals.
	kvsTotals kvs.Stats

	model   map[string][]byte // acked key → value
	pending pendingOp

	// agedBusy is the device busy-time watermark of the last retention
	// aging step (Config.RetentionEvery).
	agedBusy time.Duration

	res  Result
	fp   uint64 // FNV-1a running fingerprint
	keys []string
}

// retryBackoff is the base backoff the campaign's retry policy charges per
// re-issue; fixed so fingerprints depend only on Config.
const retryBackoff = 10 * time.Microsecond

// Run executes the campaign described by cfg.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Mix.Validate(); err != nil {
		return nil, fmt.Errorf("faultcampaign: %w", err)
	}
	if cfg.Mix.TransientProgram+cfg.Mix.TransientErase > 0 && cfg.Retry <= 0 {
		return nil, fmt.Errorf("faultcampaign: transient fault weights require Retry > 0")
	}
	c := &campaign{
		cfg:   cfg,
		rng:   xrand.New(cfg.Seed),
		model: map[string][]byte{},
	}
	c.res.Seed = cfg.Seed
	c.res.Cycles = cfg.Cycles
	c.fp = 14695981039346656037 // FNV-1a offset basis

	var opts []core.Option
	if cfg.AsyncCommit > 0 {
		opts = append(opts, core.WithAsyncCommit(cfg.AsyncCommit))
	}
	if cfg.Retry > 0 {
		opts = append(opts, core.WithRetry(cfg.Retry, retryBackoff))
	}
	c.dev = core.MustNewDevice(cfg.Spec, opts...)
	defer c.dev.Close()
	c.fl = c.dev.Flash()
	c.dev.SetThreshold(cfg.Threshold)
	if err := c.mount(); err != nil {
		return nil, fmt.Errorf("faultcampaign: initial mount: %w", err)
	}
	for i := 0; i < cfg.Keys; i++ {
		c.keys = append(c.keys, fmt.Sprintf("k%02d", i))
	}

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		c.runCycle(cycle)
	}
	c.finish()
	return &c.res, nil
}

// mount (re)builds the software stack over the persistent flash array,
// as a reboot would.
func (c *campaign) mount() error {
	if c.store != nil {
		c.foldStoreStats(c.store.Stats())
		c.store = nil
	}
	var backendErr error
	if c.cfg.UseFTL {
		if c.ftl != nil {
			fst := c.ftl.Stats()
			c.ftlRetireTotal += fst.Retirements
			c.ftlRefreshTotal += fst.Refreshes
		}
		f, err := ftl.Open(c.dev, ftl.WithSpares(c.cfg.Spares))
		if err != nil {
			return err
		}
		c.ftl = f
		ps := c.fl.Spec().PageSize
		if err := c.dev.SetApproxRegion(0, f.NumPages()*ps); err != nil {
			return err
		}
		c.store, backendErr = c.openStore(f)
	} else {
		if err := c.dev.SetApproxRegion(0, c.fl.Spec().Size()); err != nil {
			return err
		}
		c.store, backendErr = c.openStore(nil)
	}
	if backendErr == nil && c.cfg.Scrub {
		c.rebuildScrubber()
	}
	return backendErr
}

// rebuildScrubber replaces the scrubber after a (re)mount: its hooks must
// capture the freshly mounted FTL. The outgoing scrubber's stats fold into
// the campaign totals. The scrubber is never Started — runCycle drives it
// synchronously, keeping the op stream deterministic.
func (c *campaign) rebuildScrubber() {
	if c.scr != nil {
		c.scrubTotals = addScrubStats(c.scrubTotals, c.scr.Stats())
	}
	// MaxStuck 1: single-cell drift (the read-disturb case the record CRCs
	// already repair) is absorbed, anything wider is refreshed — so the
	// campaign exercises both scrub outcomes.
	cfg := core.ScrubConfig{MaxStuck: 1}
	if c.ftl != nil {
		f := c.ftl
		cfg.Refresh = f.RefreshPage
		cfg.Retire = f.RetirePage
	}
	c.scr = core.NewScrubber(c.dev, cfg)
}

// addScrubStats sums two scrub-stat snapshots.
func addScrubStats(a, b core.ScrubStats) core.ScrubStats {
	return core.ScrubStats{
		Sampled:            a.Sampled + b.Sampled,
		Clean:              a.Clean + b.Clean,
		Absorbed:           a.Absorbed + b.Absorbed,
		Refreshed:          a.Refreshed + b.Refreshed,
		Retired:            a.Retired + b.Retired,
		Errors:             a.Errors + b.Errors,
		RetentionAbsorbed:  a.RetentionAbsorbed + b.RetentionAbsorbed,
		RetentionRefreshed: a.RetentionRefreshed + b.RetentionRefreshed,
	}
}

// foldStoreStats accumulates a retired store's lifetime counters.
func (c *campaign) foldStoreStats(st kvs.Stats) {
	c.kvsTotals.Compactions += st.Compactions
	c.kvsTotals.Checkpoints += st.Checkpoints
	c.kvsTotals.CheckpointFailures += st.CheckpointFailures
	c.kvsTotals.CheckpointMounts += st.CheckpointMounts
	c.kvsTotals.ScanMounts += st.ScanMounts
	c.kvsTotals.SenseRetries += st.SenseRetries
	c.kvsTotals.SenseRecovered += st.SenseRecovered
	c.kvsTotals.MarginSenses += st.MarginSenses
}

// openStore mounts the kvs layer on the chosen backend.
func (c *campaign) openStore(f *ftl.FTL) (*kvs.Store, error) {
	var opts []kvs.Option
	if c.cfg.Verify {
		opts = append(opts, kvs.WithVerify())
	}
	if c.cfg.Compact {
		opts = append(opts, kvs.WithCompaction(kvs.CompactionConfig{}))
	}
	if c.cfg.CheckpointEvery > 0 {
		opts = append(opts, kvs.WithCheckpoint(kvs.CheckpointConfig{
			SlotPages: c.cfg.CheckpointPages,
			Interval:  c.cfg.CheckpointEvery,
		}))
	}
	if f != nil {
		return kvs.OpenOn(f, opts...)
	}
	if c.cfg.AsyncCommit > 0 {
		return kvs.OpenOn(asyncBackend{c.dev}, opts...)
	}
	return kvs.Open(c.dev, opts...)
}

// asyncBackend routes the store's writes through the async commit pipeline,
// waiting on each completion future so error semantics — and therefore the
// campaign's recovery behaviour — match the synchronous backend exactly.
type asyncBackend struct{ dev *core.Device }

func (a asyncBackend) Read(addr int, dst []byte) error { return a.dev.Read(addr, dst) }
func (a asyncBackend) Write(addr int, data []byte) error {
	return a.dev.WriteAsync(addr, data).Wait()
}
func (a asyncBackend) ErasePage(p int) error { return a.dev.ErasePage(p) }
func (a asyncBackend) SensePage(p int, dst []byte) error {
	return a.dev.SensePage(p, dst)
}
func (a asyncBackend) PageSize() int { return a.dev.Flash().Spec().PageSize }
func (a asyncBackend) NumPages() int { return a.dev.Flash().Spec().NumPages }

// runCycle arms one fault, drives workload until it fires (or the op budget
// runs out), and — if power was lost — reboots and checks every invariant.
func (c *campaign) runCycle(cycle int) {
	f := c.drawFault()
	c.fl.ArmFault(f)
	c.mix(uint64(f.Kind), uint64(f.After), uint64(f.Bits), uint64(f.Retries))

	if c.scr != nil {
		// One synchronous scrub pass with the fault armed: a power loss
		// here tears a refresh or retirement mid-protocol, and the crash
		// surfaces on the first workload op below.
		for b := 0; b < c.fl.Banks(); b++ {
			c.scr.ScrubBank(b, c.cfg.ScrubPages)
		}
		st := addScrubStats(c.scrubTotals, c.scr.Stats())
		c.mix(st.Sampled, st.Absorbed, st.Refreshed, st.Retired, st.Errors)
		c.mix(st.RetentionAbsorbed, st.RetentionRefreshed)
	}

	crashed := false
	ops := 0
	for ; ops < c.cfg.MaxOpsPerCycle; ops++ {
		if c.driveOp(cycle) {
			crashed = true
			break
		}
	}
	c.mix(uint64(ops), boolU64(crashed))

	if crashed {
		c.res.Crashes++
		c.reboot(cycle)
	} else {
		// The armed fault may not have fired (gap longer than the
		// cycle's traffic); the next cycle's arming replaces it.
		c.resolvePending(cycle)
	}

	st := c.fl.Stats()
	c.mix(st.Programs, st.Erases, st.Reads, st.ProgramsSkipped, uint64(len(c.model)))
}

// drawFault picks the next fault of the campaign's schedule. Read-disturb
// is narrowed to one bit — the single-bit repair guarantee; wider drifts
// would need a real ECC. The draw mirrors flash.RandomSchedule.Next: extra
// draws (bits, retries) only happen for the kinds that use them, so legacy
// mixes reproduce their historical streams.
func (c *campaign) drawFault() flash.Fault {
	m := c.cfg.Mix
	total := m.PowerLoss + m.StuckBits + m.ReadDisturb +
		m.TransientProgram + m.TransientErase + m.Retention
	pick := c.rng.Intn(total)
	kind := flash.FaultPowerLoss
	switch {
	case pick < m.PowerLoss:
		kind = flash.FaultPowerLoss
		c.res.PowerLossArmed++
	case pick < m.PowerLoss+m.StuckBits:
		kind = flash.FaultStuckBits
		c.res.StuckBitsArmed++
	case pick < m.PowerLoss+m.StuckBits+m.ReadDisturb:
		kind = flash.FaultReadDisturb
		c.res.ReadDisturbArmed++
	case pick < m.PowerLoss+m.StuckBits+m.ReadDisturb+m.TransientProgram:
		kind = flash.FaultTransientProgram
		c.res.TransientProgramArmed++
	case pick < m.PowerLoss+m.StuckBits+m.ReadDisturb+m.TransientProgram+m.TransientErase:
		kind = flash.FaultTransientErase
		c.res.TransientEraseArmed++
	default:
		kind = flash.FaultRetention
		c.res.RetentionArmed++
	}
	gap := m.MinGap
	if m.MaxGap > m.MinGap {
		gap += c.rng.Intn(m.MaxGap - m.MinGap + 1)
	}
	bits := 1
	if kind == flash.FaultStuckBits && m.MaxBits > 1 {
		bits += c.rng.Intn(m.MaxBits)
	}
	f := flash.Fault{Kind: kind, After: gap, Bits: bits}
	if kind == flash.FaultTransientProgram || kind == flash.FaultTransientErase {
		f.Retries = 1
		if m.MaxRetries > 1 {
			f.Retries += c.rng.Intn(m.MaxRetries)
		}
	}
	return f
}

// driveOp performs one workload operation, returning true on power loss.
func (c *campaign) driveOp(cycle int) bool {
	key := c.keys[c.rng.Intn(len(c.keys))]
	switch r := c.rng.Intn(10); {
	case r < 5: // put
		val := make([]byte, c.cfg.ValueSize)
		for i := range val {
			val[i] = c.rng.Byte()
		}
		c.pending = pendingOp{key: key, val: val, active: true}
		err := c.store.Put(key, val)
		if isPowerLoss(err) {
			return true
		}
		c.pending.active = false
		if err == nil {
			c.model[key] = val
		} else if !errors.Is(err, kvs.ErrFull) && !errors.Is(err, kvs.ErrDeviceReadOnly) {
			c.violation(cycle, "put %q: %v", key, err)
		}
	case r < 7: // delete
		c.pending = pendingOp{key: key, delete: true, active: true}
		err := c.store.Delete(key)
		if isPowerLoss(err) {
			return true
		}
		c.pending.active = false
		if err == nil {
			delete(c.model, key)
		} else if !errors.Is(err, kvs.ErrFull) && !errors.Is(err, kvs.ErrDeviceReadOnly) {
			c.violation(cycle, "delete %q: %v", key, err)
		}
	default: // get
		got, err := c.store.Get(key)
		if isPowerLoss(err) {
			return true
		}
		c.checkKey(cycle, key, got, err, "get")
	}
	return false
}

// maxAgingPerReboot bounds the cell-leak events one reboot applies, so a
// long-lived campaign with a tight RetentionEvery stays O(1) per reboot.
const maxAgingPerReboot = 64

// ageRetention applies the retention aging a reboot owes: one cell-leak
// event per RetentionEvery of busy time accumulated since the last step —
// charge leaks in real time, and the reboot is when the node was dark.
func (c *campaign) ageRetention() {
	if c.cfg.RetentionEvery <= 0 {
		return
	}
	busy := c.fl.Stats().Busy
	n := int((busy - c.agedBusy) / c.cfg.RetentionEvery)
	if n > maxAgingPerReboot {
		n = maxAgingPerReboot
	}
	c.agedBusy = busy
	if n <= 0 {
		return
	}
	marked := c.fl.AgeRetention(n)
	c.res.RetentionAged += uint64(marked)
	c.mix(uint64(n), uint64(marked))
}

// reboot clears faults, ages retention for the downtime, optionally injects
// a power loss into the recovery itself, remounts the stack and verifies
// every invariant.
func (c *campaign) reboot(cycle int) {
	c.fl.ClearFaults()
	c.ageRetention()

	// A remount can itself be interrupted — energy-harvesting nodes
	// brown out repeatedly. Bounded so the campaign always makes
	// progress.
	for attempt := 0; attempt < 5; attempt++ {
		if attempt == 0 && c.rng.Intn(10) == 0 {
			c.res.CrashesDuringRecovery++
			c.fl.ArmFault(flash.Fault{Kind: flash.FaultPowerLoss, After: c.rng.Intn(40)})
		}
		before := c.fl.Stats()
		err := c.mount()
		after := c.fl.Stats()
		c.res.RecoveryBusy += after.Busy - before.Busy
		c.res.RecoveryEnergy += after.Energy - before.Energy
		if err == nil {
			c.resolvePending(cycle)
			c.checkModel(cycle)
			return
		}
		c.fl.ClearFaults()
		if !isPowerLoss(err) {
			c.violation(cycle, "remount: %v", err)
			return
		}
	}
	c.violation(cycle, "remount: power lost on every attempt")
}

// resolvePending settles the operation that was in flight at the crash:
// after reboot the key must hold either its acked value or the pending one
// — the pending outcome is then absorbed into the model.
func (c *campaign) resolvePending(cycle int) {
	if !c.pending.active {
		return
	}
	p := c.pending
	c.pending.active = false
	got, err := c.store.Get(p.key)
	acked, hadAcked := c.model[p.key]

	switch {
	case p.delete:
		if errors.Is(err, kvs.ErrNotFound) {
			delete(c.model, p.key) // tombstone landed
			return
		}
		if err == nil && hadAcked && bytes.Equal(got, acked) {
			return // rolled back
		}
	default:
		if err == nil && bytes.Equal(got, p.val) {
			c.model[p.key] = p.val // landed
			return
		}
		if err == nil && hadAcked && bytes.Equal(got, acked) {
			return // rolled back
		}
		if errors.Is(err, kvs.ErrNotFound) && !hadAcked {
			return // rolled back to absent
		}
	}
	c.violation(cycle, "in-flight %q settled to torn state (err %v)", p.key, err)
}

// checkModel verifies every acked key after a reboot. It walks the fixed
// key universe, not the model map: map iteration order is randomised, and
// Get's read-repair programs flash — order must stay deterministic for the
// fingerprint to replay.
func (c *campaign) checkModel(cycle int) {
	for _, key := range c.keys {
		want, ok := c.model[key]
		if !ok {
			continue
		}
		got, err := c.store.Get(key)
		if err != nil || !bytes.Equal(got, want) {
			c.violation(cycle, "acked %q lost after reboot: err %v", key, err)
		}
	}
}

// checkKey verifies one read against the model.
func (c *campaign) checkKey(cycle int, key string, got []byte, err error, op string) {
	want, ok := c.model[key]
	switch {
	case !ok:
		if !errors.Is(err, kvs.ErrNotFound) {
			c.violation(cycle, "%s %q: want not-found, got err %v", op, key, err)
		}
	case err != nil:
		c.violation(cycle, "%s %q: %v", op, key, err)
	case !bytes.Equal(got, want):
		c.violation(cycle, "%s %q: value mismatch", op, key)
	}
}

// violation records one invariant failure.
func (c *campaign) violation(cycle int, format string, args ...any) {
	c.res.ViolationCount++
	if len(c.res.Violations) < violationCap {
		msg := fmt.Sprintf(format, args...)
		c.res.Violations = append(c.res.Violations, fmt.Sprintf("cycle %d: %s", cycle, msg))
	}
}

// finish folds the terminal state into the result.
func (c *campaign) finish() {
	st := c.store.Stats()
	c.foldStoreStats(st)
	c.res.WastedPages = st.RetiredPages + st.QuarantinedPages
	c.res.CorrectedBits = st.CorrectedBits
	c.res.TornSkipped = st.TornSkipped
	c.res.Compactions = c.kvsTotals.Compactions
	c.res.Checkpoints = c.kvsTotals.Checkpoints
	c.res.CheckpointFailures = c.kvsTotals.CheckpointFailures
	c.res.CheckpointMounts = c.kvsTotals.CheckpointMounts
	c.res.ScanMounts = c.kvsTotals.ScanMounts
	c.res.FinalLiveKeys = c.store.Len()
	c.res.FaultsFired = c.fl.FaultsFired()
	if c.ftl != nil {
		fst := c.ftl.Stats()
		c.res.FTLRolledForward = fst.RolledForward
		c.res.FTLRolledBack = fst.RolledBack
		c.res.FTLRetirements = c.ftlRetireTotal + fst.Retirements
		c.res.FTLRefreshes = c.ftlRefreshTotal + fst.Refreshes
		c.res.CorrectedBits += fst.CorrectedBits
	}
	if c.scr != nil {
		sst := addScrubStats(c.scrubTotals, c.scr.Stats())
		c.res.ScrubSampled = sst.Sampled
		c.res.ScrubAbsorbed = sst.Absorbed
		c.res.ScrubRefreshed = sst.Refreshed
		c.res.ScrubRetired = sst.Retired
		c.res.ScrubErrors = sst.Errors
		c.res.ScrubRetentionAbsorbed = sst.RetentionAbsorbed
		c.res.ScrubRetentionRefreshed = sst.RetentionRefreshed
	}
	cs := c.dev.Stats()
	c.res.RetryAttempts = cs.RetryAttempts
	c.res.RetrySaves = cs.RetrySaves
	c.res.RetryRetired = cs.RetryRetired
	flStats := c.fl.Stats()
	c.res.ProgramFails = flStats.ProgramFails
	c.res.EraseFails = flStats.EraseFails
	c.res.SenseRetries = c.kvsTotals.SenseRetries
	c.res.SenseRecovered = c.kvsTotals.SenseRecovered
	c.res.MarginSenses = c.kvsTotals.MarginSenses
	if c.res.Crashes > 0 {
		c.res.MeanRecoveryBusy = c.res.RecoveryBusy / time.Duration(c.res.Crashes)
	}
	c.mix(c.res.FaultsFired, uint64(c.res.Crashes), uint64(c.res.ViolationCount))
	c.mix(c.res.Compactions, c.res.Checkpoints, c.res.CheckpointMounts, c.res.ScanMounts)
	c.mix(c.res.RetryAttempts, c.res.RetrySaves, c.res.RetryRetired,
		c.res.ProgramFails, c.res.EraseFails)
	c.mix(c.res.RetentionAged, c.res.SenseRetries, c.res.SenseRecovered,
		c.res.MarginSenses, c.res.ScrubRetentionAbsorbed, c.res.ScrubRetentionRefreshed)
	c.res.Fingerprint = c.fp
}

// mix folds values into the FNV-1a fingerprint.
func (c *campaign) mix(vs ...uint64) {
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			c.fp ^= v & 0xFF
			c.fp *= 1099511628211
			v >>= 8
		}
	}
}

// isPowerLoss unwraps the sentinel through every layer.
func isPowerLoss(err error) bool { return errors.Is(err, flash.ErrPowerLoss) }

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
