package nn

import (
	"math"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/datasets"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// numericGradCheck compares analytic parameter gradients against central
// differences for a tiny network, the canonical backprop correctness test.
func TestDenseGradientCheck(t *testing.T) {
	rng := xrand.New(1)
	d := NewDense(4, 3, rng)
	net := &Network{Name: "g", Layers: []Layer{d, NewReLU(3), NewDense(3, 2, rng)}}
	x := []float32{0.3, -0.7, 0.9, 0.1}
	label := 1

	loss := func() float32 {
		out := net.Forward(x)
		probs := softmax(out)
		return -log32(clamp32(probs[label], 1e-9, 1))
	}

	// Analytic gradient of d.W[0] via one TrainStep on a clone-free path:
	// compute by hand using Backward.
	out := net.Forward(x)
	probs := softmax(out)
	grad := make([]float32, len(out))
	copy(grad, probs)
	grad[label] -= 1
	g := grad
	for i := len(net.Layers) - 1; i >= 0; i-- {
		g = net.Layers[i].Backward(g)
	}
	analytic := make([]float32, len(d.W))
	copy(analytic, d.gw)
	// Clear accumulated grads without stepping.
	for _, l := range net.Layers {
		l.Update(0)
	}

	const eps = 1e-3
	for _, idx := range []int{0, 3, 7, 11} {
		orig := d.W[idx]
		d.W[idx] = orig + eps
		up := loss()
		d.W[idx] = orig - eps
		down := loss()
		d.W[idx] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(float64(numeric-analytic[idx])) > 2e-2 {
			t.Errorf("dW[%d]: analytic %v vs numeric %v", idx, analytic[idx], numeric)
		}
	}
}

func TestConv2DGradientCheck(t *testing.T) {
	rng := xrand.New(2)
	c := NewConv2D(5, 5, 2, 3, 2, rng)
	net := &Network{Name: "g", Layers: []Layer{c, NewReLU(c.OutLen()), NewDense(c.OutLen(), 2, rng)}}
	x := make([]float32, 5*5*2)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	label := 0

	loss := func() float32 {
		out := net.Forward(x)
		probs := softmax(out)
		return -log32(clamp32(probs[label], 1e-9, 1))
	}
	out := net.Forward(x)
	probs := softmax(out)
	grad := make([]float32, len(out))
	copy(grad, probs)
	grad[label] -= 1
	g := grad
	for i := len(net.Layers) - 1; i >= 0; i-- {
		g = net.Layers[i].Backward(g)
	}
	analytic := make([]float32, len(c.Wt))
	copy(analytic, c.gw)
	for _, l := range net.Layers {
		l.Update(0)
	}
	const eps = 1e-3
	for _, idx := range []int{0, 5, 17, 35} {
		orig := c.Wt[idx]
		c.Wt[idx] = orig + eps
		up := loss()
		c.Wt[idx] = orig - eps
		down := loss()
		c.Wt[idx] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(float64(numeric-analytic[idx])) > 2e-2 {
			t.Errorf("dWt[%d]: analytic %v vs numeric %v", idx, analytic[idx], numeric)
		}
	}
}

func TestConv1DGradientCheck(t *testing.T) {
	rng := xrand.New(21)
	c := NewConv1D(8, 3, 3, 2, rng)
	net := &Network{Name: "g", Layers: []Layer{c, NewReLU(c.OutLen()), NewDense(c.OutLen(), 2, rng)}}
	x := make([]float32, 8*3)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	label := 1
	loss := func() float32 {
		out := net.Forward(x)
		probs := softmax(out)
		return -log32(clamp32(probs[label], 1e-9, 1))
	}
	out := net.Forward(x)
	probs := softmax(out)
	grad := make([]float32, len(out))
	copy(grad, probs)
	grad[label] -= 1
	g := grad
	for i := len(net.Layers) - 1; i >= 0; i-- {
		g = net.Layers[i].Backward(g)
	}
	analytic := make([]float32, len(c.Wt))
	copy(analytic, c.gw)
	for _, l := range net.Layers {
		l.Update(0)
	}
	const eps = 1e-3
	for _, idx := range []int{0, 4, 9, 15} {
		orig := c.Wt[idx]
		c.Wt[idx] = orig + eps
		up := loss()
		c.Wt[idx] = orig - eps
		down := loss()
		c.Wt[idx] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(float64(numeric-analytic[idx])) > 2e-2 {
			t.Errorf("dWt[%d]: analytic %v vs numeric %v", idx, analytic[idx], numeric)
		}
	}
}

func TestConv1DForwardKnown(t *testing.T) {
	rng := xrand.New(3)
	c := NewConv1D(4, 1, 2, 1, rng)
	// Set kernel to [1, 2], bias 0: out[t] = in[t] + 2·in[t+1].
	c.Wt[0], c.Wt[1] = 1, 2
	c.B[0] = 0
	out := c.Forward([]float32{1, 2, 3, 4})
	want := []float32{5, 8, 11}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D(2, 2, 1)
	out := p.Forward([]float32{1, 5, 3, 2})
	if len(out) != 1 || out[0] != 5 {
		t.Fatalf("maxpool out = %v", out)
	}
	din := p.Backward([]float32{7})
	want := []float32{0, 7, 0, 0}
	for i := range want {
		if din[i] != want[i] {
			t.Errorf("din[%d] = %v, want %v", i, din[i], want[i])
		}
	}
}

func TestMaxPool1D(t *testing.T) {
	p := NewMaxPool1D(4, 1)
	out := p.Forward([]float32{1, 3, 7, 2})
	if out[0] != 3 || out[1] != 7 {
		t.Fatalf("maxpool1d out = %v", out)
	}
}

func TestSoftmaxNormalized(t *testing.T) {
	p := softmax([]float32{1, 2, 3})
	var sum float32
	for _, v := range p {
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-5 {
		t.Errorf("softmax sums to %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax not monotone: %v", p)
	}
}

// TestTinyNetworkLearns: a small MLP must fit a separable 2-class problem.
func TestTinyNetworkLearns(t *testing.T) {
	rng := xrand.New(5)
	net := &Network{Name: "tiny", Layers: []Layer{
		NewDense(2, 8, rng), NewReLU(8), NewDense(8, 2, rng),
	}}
	set := &datasets.Set{Name: "xor-ish", InputShape: []int{2}, NumClasses: 2}
	gen := xrand.New(6)
	for i := 0; i < 300; i++ {
		x := []float32{float32(gen.NormFloat64()), float32(gen.NormFloat64())}
		y := 0
		if x[0]+x[1] > 0 {
			y = 1
		}
		if i < 240 {
			set.TrainX = append(set.TrainX, x)
			set.TrainY = append(set.TrainY, y)
		} else {
			set.TestX = append(set.TestX, x)
			set.TestY = append(set.TestY, y)
		}
	}
	net.Fit(set, 20, 0.05)
	if acc := net.Accuracy(set); acc < 0.9 {
		t.Errorf("tiny network accuracy %.2f, want >= 0.9", acc)
	}
}

// TestBinaryNetworkLearns: sigmoid + BCE path.
func TestBinaryNetworkLearns(t *testing.T) {
	rng := xrand.New(7)
	net := &Network{Name: "bin", Binary: true, Layers: []Layer{
		NewDense(3, 8, rng), NewReLU(8), NewDense(8, 1, rng), NewSigmoid(1),
	}}
	set := &datasets.Set{Name: "sep", InputShape: []int{3}, NumClasses: 2}
	gen := xrand.New(8)
	for i := 0; i < 300; i++ {
		x := []float32{float32(gen.NormFloat64()), float32(gen.NormFloat64()), float32(gen.NormFloat64())}
		y := 0
		if 2*x[0]-x[1] > 0.2 {
			y = 1
		}
		if i < 240 {
			set.TrainX = append(set.TrainX, x)
			set.TrainY = append(set.TrainY, y)
		} else {
			set.TestX = append(set.TestX, x)
			set.TestY = append(set.TestY, y)
		}
	}
	net.Fit(set, 25, 0.1)
	if acc := net.Accuracy(set); acc < 0.85 {
		t.Errorf("binary network accuracy %.2f, want >= 0.85", acc)
	}
}

// TestTableIIIParamCounts: the MLP models must match the paper exactly and
// the CNNs must be within 1%.
func TestTableIIIParamCounts(t *testing.T) {
	exact := map[string]bool{"mnist_mlp": true, "ecg_mlp": true}
	for _, name := range ModelNames() {
		m := BuildModel(name)
		if m == nil {
			t.Fatalf("BuildModel(%q) = nil", name)
		}
		got := m.Net.NumParams()
		if exact[name] {
			if got != m.PaperParams {
				t.Errorf("%s: %d params, paper says %d (exact match required)", name, got, m.PaperParams)
			}
			continue
		}
		ratio := float64(got) / float64(m.PaperParams)
		if ratio < 0.99 || ratio > 1.01 {
			t.Errorf("%s: %d params vs paper %d (%.2f%% off)", name, got, m.PaperParams, 100*(ratio-1))
		}
	}
}

func TestBuildModelUnknown(t *testing.T) {
	if BuildModel("nope") != nil {
		t.Error("unknown model should be nil")
	}
}

func TestQuantizerRoundTrip(t *testing.T) {
	q := NewQuantizer(0, 10)
	for _, v := range []float32{0, 2.5, 5, 9.99, 10} {
		back := q.Dequantize(q.Quantize(v))
		if math.Abs(float64(back-v)) > float64(q.Scale)/2+1e-6 {
			t.Errorf("quantize(%v) round-tripped to %v (scale %v)", v, back, q.Scale)
		}
	}
	if q.Quantize(-5) != 0 || q.Quantize(100) != 255 {
		t.Error("out-of-range values must clamp")
	}
}

func TestQuantizerDegenerate(t *testing.T) {
	q := NewQuantizer(3, 3)
	if q.Quantize(3) != 0 || q.Dequantize(0) != 3 {
		t.Error("degenerate quantizer should map everything to lo")
	}
}

func TestNetworkSummary(t *testing.T) {
	m := BuildModel("mnist_mlp")
	s := m.Net.Summary()
	if len(s) == 0 {
		t.Error("empty summary")
	}
}
