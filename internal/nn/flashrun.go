package nn

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/datasets"
)

// FlashRunner executes a trained network the way the paper's IoT device
// does (§IV): the activation output of every layer is quantized to uint8,
// written to flash (through the FlipBit controller), read back, and
// dequantized before feeding the next layer. Layer buffers live at fixed,
// page-aligned flash offsets that are rewritten on every inference, which
// is precisely the access pattern FlipBit exploits.
type FlashRunner struct {
	Net   *Network
	Dev   *core.Device
	Quant []Quantizer
	offs  []int
}

// NewFlashRunner calibrates quantizers on calib inputs, lays the layer
// activation buffers out in flash and configures the device's
// approximatable region to cover them (width 8). The caller chooses the
// encoder and threshold; threshold 0 is the lossless baseline.
func NewFlashRunner(net *Network, dev *core.Device, calib [][]float32) (*FlashRunner, error) {
	if len(calib) == 0 {
		return nil, fmt.Errorf("nn: flash runner needs calibration inputs")
	}
	quant := CalibrateLayers(net, calib)
	ps := dev.Flash().Spec().PageSize
	offs := make([]int, len(net.Layers))
	next := 0
	for li, l := range net.Layers {
		offs[li] = next
		pages := (l.OutLen() + ps - 1) / ps
		next += pages * ps
	}
	if next > dev.Flash().Spec().Size() {
		return nil, fmt.Errorf("nn: activations need %d B, flash has %d B", next, dev.Flash().Spec().Size())
	}
	if err := dev.SetApproxRegion(0, next); err != nil {
		return nil, err
	}
	if err := dev.SetWidth(bits.W8); err != nil {
		return nil, err
	}
	return &FlashRunner{Net: net, Dev: dev, Quant: quant, offs: offs}, nil
}

// ActivationBytes returns the number of activation bytes written to flash
// per inference.
func (r *FlashRunner) ActivationBytes() int {
	total := 0
	for _, l := range r.Net.Layers {
		total += l.OutLen()
	}
	return total
}

// Infer runs one flash-backed inference and returns the predicted class.
func (r *FlashRunner) Infer(x []float32) (int, error) {
	act := x
	for li, l := range r.Net.Layers {
		act = l.Forward(act)
		q := r.Quant[li]
		buf := make([]byte, len(act))
		q.QuantizeSlice(buf, act)
		if err := r.Dev.Write(r.offs[li], buf); err != nil {
			return 0, fmt.Errorf("nn: layer %d (%s): %w", li, l.Name(), err)
		}
		if err := r.Dev.Read(r.offs[li], buf); err != nil {
			return 0, err
		}
		next := make([]float32, len(buf))
		q.DequantizeSlice(next, buf)
		act = next
	}
	return decide(act, r.Net.Binary), nil
}

// Evaluate runs flash-backed inference over up to limit test samples
// (0 = all) and returns the accuracy.
func (r *FlashRunner) Evaluate(set *datasets.Set, limit int) (float64, error) {
	n := len(set.TestX)
	if limit > 0 && limit < n {
		n = limit
	}
	correct := 0
	for i := 0; i < n; i++ {
		pred, err := r.Infer(set.TestX[i])
		if err != nil {
			return 0, err
		}
		if pred == set.TestY[i] {
			correct++
		}
	}
	return float64(correct) / float64(n), nil
}
