package nn

import (
	"sync"

	"github.com/flipbit-sim/flipbit/internal/datasets"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Model pairs one of the paper's evaluated networks (Table III) with its
// dataset and the parameter count the paper reports.
type Model struct {
	Name        string
	Kind        string // "CNN" or "MLP"
	Application string
	Net         *Network
	Set         *datasets.Set
	PaperParams int
}

// ModelNames lists the Table III models in paper order.
func ModelNames() []string {
	return []string{"mnist_cnn", "mnist_mlp", "har_cnn", "ecg_mlp"}
}

// BuildModel constructs an untrained model with its dataset. Training
// sample counts are sized so the models reach high accuracy in seconds on
// the prototype-based synthetic sets.
func BuildModel(name string) *Model {
	rng := xrand.New(hashName(name))
	switch name {
	case "mnist_mlp":
		// 784–128–10: exactly the paper's 101,770 parameters.
		set := datasets.MNISTLike(400, 200, 11)
		net := &Network{Name: name, Layers: []Layer{
			NewDense(784, 128, rng),
			NewReLU(128),
			NewDense(128, 10, rng),
		}}
		return &Model{Name: name, Kind: "MLP", Application: "Image Classification",
			Net: net, Set: set, PaperParams: 101770}
	case "mnist_cnn":
		// conv(1→8,3) – pool – conv(8→11,3) – pool – dense(275→10):
		// 3,643 parameters vs the paper's 3,620 (+0.6%).
		set := datasets.MNISTLike(400, 200, 13)
		c1 := NewConv2D(28, 28, 1, 3, 8, rng)  // 26×26×8
		p1 := NewMaxPool2D(26, 26, 8)          // 13×13×8
		c2 := NewConv2D(13, 13, 8, 3, 11, rng) // 11×11×11
		p2 := NewMaxPool2D(11, 11, 11)         // 5×5×11 = 275
		net := &Network{Name: name, Layers: []Layer{
			c1, NewReLU(c1.OutLen()), p1,
			c2, NewReLU(c2.OutLen()), p2,
			NewDense(275, 10, rng),
		}}
		return &Model{Name: name, Kind: "CNN", Application: "Image Classification",
			Net: net, Set: set, PaperParams: 3620}
	case "har_cnn":
		// conv1d(9→64,3) – conv1d(64→64,3) – pool – dense(3968→182) –
		// dense(182→6): 737,600 parameters vs the paper's 738,950 (−0.2%).
		set := datasets.HARLike(150, 100, 17)
		c1 := NewConv1D(128, 9, 3, 64, rng)  // 126×64
		c2 := NewConv1D(126, 64, 3, 64, rng) // 124×64
		p := NewMaxPool1D(124, 64)           // 62×64 = 3968
		net := &Network{Name: name, Layers: []Layer{
			c1, NewReLU(c1.OutLen()),
			c2, NewReLU(c2.OutLen()), p,
			NewDense(3968, 182, rng), NewReLU(182),
			NewDense(182, 6, rng),
		}}
		return &Model{Name: name, Kind: "CNN", Application: "Human Activity",
			Net: net, Set: set, PaperParams: 738950}
	case "ecg_mlp":
		// 187–200–1: exactly the paper's 37,801 parameters.
		set := datasets.ECGLike(400, 200, 19)
		net := &Network{Name: name, Binary: true, Layers: []Layer{
			NewDense(187, 200, rng),
			NewReLU(200),
			NewDense(200, 1, rng),
			NewSigmoid(1),
		}}
		return &Model{Name: name, Kind: "MLP", Application: "ECG Abnormal Heartbeat Detection",
			Net: net, Set: set, PaperParams: 37801}
	default:
		return nil
	}
}

// trainRecipe returns per-model epochs and learning rate.
func trainRecipe(name string) (epochs int, lr float32) {
	switch name {
	case "mnist_mlp":
		return 5, 0.05
	case "mnist_cnn":
		return 6, 0.03
	case "har_cnn":
		return 2, 0.01
	case "ecg_mlp":
		return 8, 0.05
	default:
		return 3, 0.05
	}
}

var trainedCache sync.Map // name -> *Model

// TrainedModel returns the named model trained on its synthetic dataset.
// Training happens once per process; subsequent calls share the instance,
// so callers must not mutate the network.
func TrainedModel(name string) *Model {
	if m, ok := trainedCache.Load(name); ok {
		return m.(*Model)
	}
	m := BuildModel(name)
	if m == nil {
		return nil
	}
	epochs, lr := trainRecipe(name)
	m.Net.Fit(m.Set, epochs, lr)
	actual, _ := trainedCache.LoadOrStore(name, m)
	return actual.(*Model)
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
