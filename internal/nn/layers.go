// Package nn is a compact neural-network engine for the paper's "compute
// and send" workloads (§IV): float32 training with SGD, post-training uint8
// quantization, and flash-backed inference in which every layer's activation
// is written to (FlipBit) flash and read back before the next layer — the
// exact data path the paper evaluates on embedded DNNs.
package nn

import (
	"fmt"
	"math"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Layer is one differentiable stage of a network. Forward caches whatever
// Backward needs; Backward returns the gradient with respect to the input
// and accumulates parameter gradients, which Update applies and clears.
type Layer interface {
	Name() string
	Forward(in []float32) []float32
	Backward(dout []float32) []float32
	Update(lr float32)
	NumParams() int
	OutLen() int
}

// initWeights fills w with scaled uniform values (He-style fan-in scaling).
func initWeights(w []float32, fanIn int, rng *xrand.RNG) {
	scale := float32(1.0)
	if fanIn > 0 {
		scale = 2.4 / float32(sqrtInt(fanIn))
	}
	for i := range w {
		w[i] = (float32(rng.Float64())*2 - 1) * scale
	}
}

func sqrtInt(n int) float32 {
	x := float32(n)
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Dense is a fully connected layer: out = W·in + b.
type Dense struct {
	In, Out int
	W       []float32 // Out × In, row major
	B       []float32

	in   []float32
	gw   []float32
	gb   []float32
	outv []float32
}

// NewDense builds a Dense layer with randomly initialized weights.
func NewDense(in, out int, rng *xrand.RNG) *Dense {
	d := &Dense{
		In: in, Out: out,
		W: make([]float32, in*out), B: make([]float32, out),
		gw: make([]float32, in*out), gb: make([]float32, out),
		outv: make([]float32, out),
	}
	initWeights(d.W, in, rng)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d→%d)", d.In, d.Out) }

// NumParams implements Layer.
func (d *Dense) NumParams() int { return d.In*d.Out + d.Out }

// OutLen implements Layer.
func (d *Dense) OutLen() int { return d.Out }

// Forward implements Layer.
func (d *Dense) Forward(in []float32) []float32 {
	d.in = in
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, v := range in {
			sum += row[i] * v
		}
		d.outv[o] = sum
	}
	return d.outv
}

// Backward implements Layer.
func (d *Dense) Backward(dout []float32) []float32 {
	din := make([]float32, d.In)
	for o := 0; o < d.Out; o++ {
		g := dout[o]
		d.gb[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.gw[o*d.In : (o+1)*d.In]
		for i := range row {
			grow[i] += g * d.in[i]
			din[i] += g * row[i]
		}
	}
	return din
}

// Update implements Layer.
func (d *Dense) Update(lr float32) {
	for i := range d.W {
		d.W[i] -= lr * d.gw[i]
		d.gw[i] = 0
	}
	for i := range d.B {
		d.B[i] -= lr * d.gb[i]
		d.gb[i] = 0
	}
}

// ReLU is an elementwise rectifier.
type ReLU struct {
	n    int
	mask []bool
	outv []float32
}

// NewReLU builds a ReLU over n elements.
func NewReLU(n int) *ReLU {
	return &ReLU{n: n, mask: make([]bool, n), outv: make([]float32, n)}
}

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// NumParams implements Layer.
func (r *ReLU) NumParams() int { return 0 }

// OutLen implements Layer.
func (r *ReLU) OutLen() int { return r.n }

// Forward implements Layer.
func (r *ReLU) Forward(in []float32) []float32 {
	for i, v := range in {
		if v > 0 {
			r.outv[i] = v
			r.mask[i] = true
		} else {
			r.outv[i] = 0
			r.mask[i] = false
		}
	}
	return r.outv
}

// Backward implements Layer.
func (r *ReLU) Backward(dout []float32) []float32 {
	din := make([]float32, r.n)
	for i := range dout {
		if r.mask[i] {
			din[i] = dout[i]
		}
	}
	return din
}

// Update implements Layer.
func (r *ReLU) Update(float32) {}

// Sigmoid is an elementwise logistic activation (used by the ECG head).
type Sigmoid struct {
	n    int
	outv []float32
}

// NewSigmoid builds a Sigmoid over n elements.
func NewSigmoid(n int) *Sigmoid { return &Sigmoid{n: n, outv: make([]float32, n)} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// NumParams implements Layer.
func (s *Sigmoid) NumParams() int { return 0 }

// OutLen implements Layer.
func (s *Sigmoid) OutLen() int { return s.n }

// Forward implements Layer.
func (s *Sigmoid) Forward(in []float32) []float32 {
	for i, v := range in {
		s.outv[i] = 1 / (1 + exp32(-v))
	}
	return s.outv
}

// Backward implements Layer.
func (s *Sigmoid) Backward(dout []float32) []float32 {
	din := make([]float32, s.n)
	for i := range dout {
		y := s.outv[i]
		din[i] = dout[i] * y * (1 - y)
	}
	return din
}

// Update implements Layer.
func (s *Sigmoid) Update(float32) {}

func exp32(x float32) float32 { return float32(math.Exp(float64(x))) }
