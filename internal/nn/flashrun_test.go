package nn

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/datasets"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// tinyModel builds a fast 2-class MLP with a streaming test set.
func tinyModel(t *testing.T) (*Network, *datasets.Set) {
	t.Helper()
	rng := xrand.New(100)
	net := &Network{Name: "tiny", Layers: []Layer{
		NewDense(16, 24, rng), NewReLU(24), NewDense(24, 2, rng),
	}}
	set := &datasets.Set{Name: "t", InputShape: []int{16}, NumClasses: 2}
	gen := xrand.New(101)
	protos := [][]float32{make([]float32, 16), make([]float32, 16)}
	for j := range protos[0] {
		protos[0][j] = float32(gen.NormFloat64())
		protos[1][j] = float32(gen.NormFloat64())
	}
	sample := func(c int, noise float64) []float32 {
		x := make([]float32, 16)
		for j := range x {
			x[j] = protos[c][j] + float32(gen.NormFloat64()*noise)
		}
		return x
	}
	for i := 0; i < 200; i++ {
		c := gen.Intn(2)
		set.TrainX = append(set.TrainX, sample(c, 0.3))
		set.TrainY = append(set.TrainY, c)
	}
	for r := 0; r < 10; r++ {
		c := gen.Intn(2)
		for k := 0; k < 6; k++ {
			set.TestX = append(set.TestX, sample(c, 0.1))
			set.TestY = append(set.TestY, c)
		}
	}
	net.Fit(set, 15, 0.05)
	return net, set
}

func newRunner(t *testing.T, net *Network, set *datasets.Set) (*FlashRunner, *core.Device) {
	t.Helper()
	spec := flash.DefaultSpec()
	dev := core.MustNewDevice(spec)
	r, err := NewFlashRunner(net, dev, set.TrainX[:10])
	if err != nil {
		t.Fatal(err)
	}
	return r, dev
}

// TestFlashInferenceLosslessAtZeroThreshold: threshold 0 must reproduce the
// quantized network's decisions exactly.
func TestFlashInferenceLosslessAtZeroThreshold(t *testing.T) {
	net, set := tinyModel(t)
	r, dev := newRunner(t, net, set)
	dev.SetThreshold(0)
	acc, err := r.Evaluate(set, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Quantization alone may cost a little; flash must not add more.
	// Verify by predicting again with plain float inference.
	floatAcc := net.Accuracy(set)
	if acc < floatAcc-0.05 {
		t.Errorf("flash-backed accuracy %.3f well below float accuracy %.3f", acc, floatAcc)
	}
}

// TestFlashInferenceSavesEnergyOnStream: a moderate threshold on a
// correlated stream must reduce flash energy without hurting accuracy —
// the core DNN claim of the paper.
func TestFlashInferenceSavesEnergyOnStream(t *testing.T) {
	net, set := tinyModel(t)

	rBase, devBase := newRunner(t, net, set)
	devBase.SetThreshold(0)
	baseAcc, err := rBase.Evaluate(set, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseStats := devBase.Flash().Stats()

	rFB, devFB := newRunner(t, net, set)
	devFB.SetThreshold(4)
	fbAcc, err := rFB.Evaluate(set, 0)
	if err != nil {
		t.Fatal(err)
	}
	fbStats := devFB.Flash().Stats()

	if fbStats.Energy >= baseStats.Energy {
		t.Errorf("FlipBit energy %v >= baseline %v", fbStats.Energy, baseStats.Energy)
	}
	if fbStats.Erases >= baseStats.Erases {
		t.Errorf("FlipBit erases %d >= baseline %d", fbStats.Erases, baseStats.Erases)
	}
	if fbAcc < baseAcc-0.05 {
		t.Errorf("accuracy dropped %.3f → %.3f at threshold 4", baseAcc, fbAcc)
	}
}

// TestThresholdMonotoneEnergy: higher thresholds must not increase energy.
func TestThresholdMonotoneEnergy(t *testing.T) {
	net, set := tinyModel(t)
	var prev float64 = -1
	for _, thr := range []float64{0, 2, 8, 32} {
		r, dev := newRunner(t, net, set)
		dev.SetThreshold(thr)
		if _, err := r.Evaluate(set, 0); err != nil {
			t.Fatal(err)
		}
		red := float64(dev.Flash().Stats().Energy)
		if prev >= 0 && red > prev*1.02 {
			t.Errorf("threshold %v: energy %v above previous %v", thr, red, prev)
		}
		prev = red
	}
}

func TestActivationBytes(t *testing.T) {
	net, set := tinyModel(t)
	r, _ := newRunner(t, net, set)
	if got := r.ActivationBytes(); got != 24+24+2 {
		t.Errorf("ActivationBytes = %d, want 50", got)
	}
}

func TestNewFlashRunnerNeedsCalibration(t *testing.T) {
	net, _ := tinyModel(t)
	dev := core.MustNewDevice(flash.DefaultSpec())
	if _, err := NewFlashRunner(net, dev, nil); err == nil {
		t.Error("empty calibration should fail")
	}
}

func TestNewFlashRunnerRejectsTooSmallFlash(t *testing.T) {
	net, set := tinyModel(t)
	spec := flash.DefaultSpec()
	spec.PageSize = 32
	spec.NumPages = 1
	dev := core.MustNewDevice(spec)
	if _, err := NewFlashRunner(net, dev, set.TrainX[:2]); err == nil {
		t.Error("3-layer activations cannot fit one 32-byte page")
	}
}

// TestCalibrateLayersCoversActivations: quantizers must cover the observed
// activation ranges of the calibration inputs.
func TestCalibrateLayersCoversActivations(t *testing.T) {
	net, set := tinyModel(t)
	qs := CalibrateLayers(net, set.TrainX[:10])
	if len(qs) != len(net.Layers) {
		t.Fatalf("%d quantizers for %d layers", len(qs), len(net.Layers))
	}
	for _, x := range set.TrainX[:10] {
		act := x
		for li, l := range net.Layers {
			act = l.Forward(act)
			for _, v := range act {
				q := qs[li]
				back := q.Dequantize(q.Quantize(v))
				if diff := float64(back - v); diff > float64(q.Scale)+1e-5 || diff < -float64(q.Scale)-1e-5 {
					t.Fatalf("layer %d: value %v quantizes to %v (scale %v)", li, v, back, q.Scale)
				}
			}
		}
	}
}
