package nn

import (
	"fmt"
	"math"

	"github.com/flipbit-sim/flipbit/internal/datasets"
)

// Network is a feed-forward stack of layers.
type Network struct {
	Name   string
	Layers []Layer
	// Binary marks single-output sigmoid heads (ECG): classification by
	// 0.5 threshold instead of argmax.
	Binary bool
}

// NumParams returns the total trainable parameter count — the Table III
// figure.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += l.NumParams()
	}
	return total
}

// SizeKB returns the model size in kilobytes assuming float32 storage had
// the model been deployed unquantized, matching Table III's convention of
// size tracking parameter count.
func (n *Network) SizeKB() float64 { return float64(n.NumParams()) * 1.95 / 1000 }

// Forward runs the network and returns the final activation.
func (n *Network) Forward(x []float32) []float32 {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Predict returns the class decision for input x.
func (n *Network) Predict(x []float32) int {
	out := n.Forward(x)
	return decide(out, n.Binary)
}

func decide(out []float32, binary bool) int {
	if binary {
		if out[0] >= 0.5 {
			return 1
		}
		return 0
	}
	best, arg := float32(math.Inf(-1)), 0
	for i, v := range out {
		if v > best {
			best, arg = v, i
		}
	}
	return arg
}

// TrainStep performs one SGD step on (x, label) and returns the loss.
// Multi-class networks train with softmax cross-entropy on the final
// (linear) layer output; binary networks with BCE on the sigmoid output.
func (n *Network) TrainStep(x []float32, label int, lr float32) float32 {
	out := n.Forward(x)
	var loss float32
	grad := make([]float32, len(out))
	if n.Binary {
		y := float32(label)
		p := clamp32(out[0], 1e-6, 1-1e-6)
		loss = -y*log32(p) - (1-y)*log32(1-p)
		// d(BCE)/d(sigmoid input) folds through Sigmoid.Backward; here
		// we provide d(BCE)/d(p).
		grad[0] = (p - y) / (p * (1 - p))
	} else {
		probs := softmax(out)
		loss = -log32(clamp32(probs[label], 1e-9, 1))
		copy(grad, probs)
		grad[label] -= 1
	}
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	for _, l := range n.Layers {
		l.Update(lr)
	}
	return loss
}

// Fit trains for the given number of epochs over the set's training split.
func (n *Network) Fit(set *datasets.Set, epochs int, lr float32) {
	for e := 0; e < epochs; e++ {
		for i := range set.TrainX {
			n.TrainStep(set.TrainX[i], set.TrainY[i], lr)
		}
	}
}

// Accuracy returns the fraction of test samples classified correctly by
// plain float inference.
func (n *Network) Accuracy(set *datasets.Set) float64 {
	correct := 0
	for i := range set.TestX {
		if n.Predict(set.TestX[i]) == set.TestY[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(set.TestX))
}

func softmax(logits []float32) []float32 {
	max := logits[0]
	for _, v := range logits {
		if v > max {
			max = v
		}
	}
	var sum float32
	out := make([]float32, len(logits))
	for i, v := range logits {
		out[i] = exp32(v - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func log32(x float32) float32 { return float32(math.Log(float64(x))) }

func clamp32(x, lo, hi float32) float32 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Summary returns a one-line-per-layer description.
func (n *Network) Summary() string {
	s := fmt.Sprintf("%s (%d params)\n", n.Name, n.NumParams())
	for _, l := range n.Layers {
		s += fmt.Sprintf("  %-28s %7d params → %d\n", l.Name(), l.NumParams(), l.OutLen())
	}
	return s
}
