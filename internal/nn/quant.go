package nn

// Quantizer maps float activations to the uint8 domain stored in flash.
// Affine per-tensor quantization: q = round((x - lo) / scale), clamped to
// [0, 255]; dequantization is exact for in-range values up to scale/2.
type Quantizer struct {
	Lo    float32 // real value mapped to 0
	Scale float32 // real-value step per code
}

// NewQuantizer builds a quantizer covering [lo, hi]. Degenerate ranges
// quantize everything to 0 and dequantize to lo.
func NewQuantizer(lo, hi float32) Quantizer {
	if hi <= lo {
		return Quantizer{Lo: lo, Scale: 0}
	}
	return Quantizer{Lo: lo, Scale: (hi - lo) / 255}
}

// Quantize maps a real activation to its uint8 code.
func (q Quantizer) Quantize(x float32) uint8 {
	if q.Scale == 0 {
		return 0
	}
	v := (x - q.Lo) / q.Scale
	switch {
	case v <= 0:
		return 0
	case v >= 255:
		return 255
	default:
		return uint8(v + 0.5)
	}
}

// Dequantize maps a uint8 code back to the real domain.
func (q Quantizer) Dequantize(b uint8) float32 {
	return q.Lo + float32(b)*q.Scale
}

// QuantizeSlice fills dst with the codes for src.
func (q Quantizer) QuantizeSlice(dst []byte, src []float32) {
	for i, v := range src {
		dst[i] = q.Quantize(v)
	}
}

// DequantizeSlice fills dst with the real values for src.
func (q Quantizer) DequantizeSlice(dst []float32, src []byte) {
	for i, b := range src {
		dst[i] = q.Dequantize(b)
	}
}

// CalibrateLayers runs the network over calibration inputs and returns a
// per-layer quantizer spanning each layer's observed activation range —
// standard post-training quantization.
func CalibrateLayers(net *Network, calib [][]float32) []Quantizer {
	lo := make([]float32, len(net.Layers))
	hi := make([]float32, len(net.Layers))
	first := true
	for _, x := range calib {
		act := x
		for li, l := range net.Layers {
			act = l.Forward(act)
			for _, v := range act {
				if first || v < lo[li] {
					lo[li] = v
				}
				if first || v > hi[li] {
					hi[li] = v
				}
			}
			if first {
				// Initialise from the first value per layer.
				lo[li], hi[li] = act[0], act[0]
				for _, v := range act {
					if v < lo[li] {
						lo[li] = v
					}
					if v > hi[li] {
						hi[li] = v
					}
				}
			}
		}
		first = false
	}
	qs := make([]Quantizer, len(net.Layers))
	for i := range qs {
		qs[i] = NewQuantizer(lo[i], hi[i])
	}
	return qs
}
