package nn

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Conv2D is a stride-1, valid-padding 2-D convolution over channel-last
// input (H × W × C) producing (H-K+1) × (W-K+1) × OC.
type Conv2D struct {
	H, W, C int // input geometry
	K, OC   int // square kernel size, output channels

	Wt []float32 // K × K × C × OC
	B  []float32 // OC

	in   []float32
	gw   []float32
	gb   []float32
	outv []float32
}

// NewConv2D builds the layer with random weights.
func NewConv2D(h, w, c, k, oc int, rng *xrand.RNG) *Conv2D {
	l := &Conv2D{
		H: h, W: w, C: c, K: k, OC: oc,
		Wt: make([]float32, k*k*c*oc), B: make([]float32, oc),
		gw: make([]float32, k*k*c*oc), gb: make([]float32, oc),
		outv: make([]float32, (h-k+1)*(w-k+1)*oc),
	}
	initWeights(l.Wt, k*k*c, rng)
	return l
}

// OutH returns the output height.
func (l *Conv2D) OutH() int { return l.H - l.K + 1 }

// OutW returns the output width.
func (l *Conv2D) OutW() int { return l.W - l.K + 1 }

// Name implements Layer.
func (l *Conv2D) Name() string {
	return fmt.Sprintf("conv2d(%dx%dx%d,k%d→%d)", l.H, l.W, l.C, l.K, l.OC)
}

// NumParams implements Layer.
func (l *Conv2D) NumParams() int { return l.K*l.K*l.C*l.OC + l.OC }

// OutLen implements Layer.
func (l *Conv2D) OutLen() int { return l.OutH() * l.OutW() * l.OC }

// wIdx addresses the weight for kernel position (ky,kx), input channel c,
// output channel o.
func (l *Conv2D) wIdx(ky, kx, c, o int) int {
	return ((ky*l.K+kx)*l.C+c)*l.OC + o
}

// Forward implements Layer.
func (l *Conv2D) Forward(in []float32) []float32 {
	l.in = in
	oh, ow := l.OutH(), l.OutW()
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			outBase := (y*ow + x) * l.OC
			for o := 0; o < l.OC; o++ {
				l.outv[outBase+o] = l.B[o]
			}
			for ky := 0; ky < l.K; ky++ {
				for kx := 0; kx < l.K; kx++ {
					inBase := ((y+ky)*l.W + (x + kx)) * l.C
					for c := 0; c < l.C; c++ {
						v := in[inBase+c]
						if v == 0 {
							continue
						}
						wBase := ((ky*l.K+kx)*l.C + c) * l.OC
						for o := 0; o < l.OC; o++ {
							l.outv[outBase+o] += v * l.Wt[wBase+o]
						}
					}
				}
			}
		}
	}
	return l.outv
}

// Backward implements Layer.
func (l *Conv2D) Backward(dout []float32) []float32 {
	din := make([]float32, len(l.in))
	oh, ow := l.OutH(), l.OutW()
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			outBase := (y*ow + x) * l.OC
			for o := 0; o < l.OC; o++ {
				g := dout[outBase+o]
				if g == 0 {
					continue
				}
				l.gb[o] += g
				for ky := 0; ky < l.K; ky++ {
					for kx := 0; kx < l.K; kx++ {
						inBase := ((y+ky)*l.W + (x + kx)) * l.C
						for c := 0; c < l.C; c++ {
							idx := l.wIdx(ky, kx, c, o)
							l.gw[idx] += g * l.in[inBase+c]
							din[inBase+c] += g * l.Wt[idx]
						}
					}
				}
			}
		}
	}
	return din
}

// Update implements Layer.
func (l *Conv2D) Update(lr float32) {
	for i := range l.Wt {
		l.Wt[i] -= lr * l.gw[i]
		l.gw[i] = 0
	}
	for i := range l.B {
		l.B[i] -= lr * l.gb[i]
		l.gb[i] = 0
	}
}

// Conv1D is a stride-1, valid-padding 1-D convolution over channel-last
// input (T × C) producing (T-K+1) × OC. Used by the HAR model.
type Conv1D struct {
	T, C  int
	K, OC int

	Wt []float32 // K × C × OC
	B  []float32

	in   []float32
	gw   []float32
	gb   []float32
	outv []float32
}

// NewConv1D builds the layer with random weights.
func NewConv1D(t, c, k, oc int, rng *xrand.RNG) *Conv1D {
	l := &Conv1D{
		T: t, C: c, K: k, OC: oc,
		Wt: make([]float32, k*c*oc), B: make([]float32, oc),
		gw: make([]float32, k*c*oc), gb: make([]float32, oc),
		outv: make([]float32, (t-k+1)*oc),
	}
	initWeights(l.Wt, k*c, rng)
	return l
}

// OutT returns the output length in timesteps.
func (l *Conv1D) OutT() int { return l.T - l.K + 1 }

// Name implements Layer.
func (l *Conv1D) Name() string { return fmt.Sprintf("conv1d(%dx%d,k%d→%d)", l.T, l.C, l.K, l.OC) }

// NumParams implements Layer.
func (l *Conv1D) NumParams() int { return l.K*l.C*l.OC + l.OC }

// OutLen implements Layer.
func (l *Conv1D) OutLen() int { return l.OutT() * l.OC }

// Forward implements Layer.
func (l *Conv1D) Forward(in []float32) []float32 {
	l.in = in
	ot := l.OutT()
	for t := 0; t < ot; t++ {
		outBase := t * l.OC
		for o := 0; o < l.OC; o++ {
			l.outv[outBase+o] = l.B[o]
		}
		for k := 0; k < l.K; k++ {
			inBase := (t + k) * l.C
			for c := 0; c < l.C; c++ {
				v := in[inBase+c]
				if v == 0 {
					continue
				}
				wBase := (k*l.C + c) * l.OC
				for o := 0; o < l.OC; o++ {
					l.outv[outBase+o] += v * l.Wt[wBase+o]
				}
			}
		}
	}
	return l.outv
}

// Backward implements Layer.
func (l *Conv1D) Backward(dout []float32) []float32 {
	din := make([]float32, len(l.in))
	ot := l.OutT()
	for t := 0; t < ot; t++ {
		outBase := t * l.OC
		for o := 0; o < l.OC; o++ {
			g := dout[outBase+o]
			if g == 0 {
				continue
			}
			l.gb[o] += g
			for k := 0; k < l.K; k++ {
				inBase := (t + k) * l.C
				for c := 0; c < l.C; c++ {
					idx := (k*l.C+c)*l.OC + o
					l.gw[idx] += g * l.in[inBase+c]
					din[inBase+c] += g * l.Wt[idx]
				}
			}
		}
	}
	return din
}

// Update implements Layer.
func (l *Conv1D) Update(lr float32) {
	for i := range l.Wt {
		l.Wt[i] -= lr * l.gw[i]
		l.gw[i] = 0
	}
	for i := range l.B {
		l.B[i] -= lr * l.gb[i]
		l.gb[i] = 0
	}
}

// MaxPool2D is a 2×2, stride-2 max pool over H × W × C input. Odd trailing
// rows/columns are dropped (floor semantics), as in the paper's frameworks.
type MaxPool2D struct {
	H, W, C int
	argmax  []int
	outv    []float32
}

// NewMaxPool2D builds the layer.
func NewMaxPool2D(h, w, c int) *MaxPool2D {
	oh, ow := h/2, w/2
	return &MaxPool2D{H: h, W: w, C: c,
		argmax: make([]int, oh*ow*c), outv: make([]float32, oh*ow*c)}
}

// OutH returns the output height.
func (l *MaxPool2D) OutH() int { return l.H / 2 }

// OutW returns the output width.
func (l *MaxPool2D) OutW() int { return l.W / 2 }

// Name implements Layer.
func (l *MaxPool2D) Name() string { return "maxpool2d" }

// NumParams implements Layer.
func (l *MaxPool2D) NumParams() int { return 0 }

// OutLen implements Layer.
func (l *MaxPool2D) OutLen() int { return l.OutH() * l.OutW() * l.C }

// Forward implements Layer.
func (l *MaxPool2D) Forward(in []float32) []float32 {
	oh, ow := l.OutH(), l.OutW()
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for c := 0; c < l.C; c++ {
				best := float32(0)
				bestIdx := -1
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := ((2*y+dy)*l.W+(2*x+dx))*l.C + c
						if bestIdx < 0 || in[idx] > best {
							best, bestIdx = in[idx], idx
						}
					}
				}
				o := (y*ow+x)*l.C + c
				l.outv[o] = best
				l.argmax[o] = bestIdx
			}
		}
	}
	return l.outv
}

// Backward implements Layer.
func (l *MaxPool2D) Backward(dout []float32) []float32 {
	din := make([]float32, l.H*l.W*l.C)
	for o, idx := range l.argmax {
		din[idx] += dout[o]
	}
	return din
}

// Update implements Layer.
func (l *MaxPool2D) Update(float32) {}

// MaxPool1D is a size-2, stride-2 max pool over T × C input.
type MaxPool1D struct {
	T, C   int
	argmax []int
	outv   []float32
}

// NewMaxPool1D builds the layer.
func NewMaxPool1D(t, c int) *MaxPool1D {
	return &MaxPool1D{T: t, C: c, argmax: make([]int, t/2*c), outv: make([]float32, t/2*c)}
}

// OutT returns the output length in timesteps.
func (l *MaxPool1D) OutT() int { return l.T / 2 }

// Name implements Layer.
func (l *MaxPool1D) Name() string { return "maxpool1d" }

// NumParams implements Layer.
func (l *MaxPool1D) NumParams() int { return 0 }

// OutLen implements Layer.
func (l *MaxPool1D) OutLen() int { return l.OutT() * l.C }

// Forward implements Layer.
func (l *MaxPool1D) Forward(in []float32) []float32 {
	ot := l.OutT()
	for t := 0; t < ot; t++ {
		for c := 0; c < l.C; c++ {
			a := in[(2*t)*l.C+c]
			b := in[(2*t+1)*l.C+c]
			o := t*l.C + c
			if a >= b {
				l.outv[o] = a
				l.argmax[o] = (2*t)*l.C + c
			} else {
				l.outv[o] = b
				l.argmax[o] = (2*t+1)*l.C + c
			}
		}
	}
	return l.outv
}

// Backward implements Layer.
func (l *MaxPool1D) Backward(dout []float32) []float32 {
	din := make([]float32, l.T*l.C)
	for o, idx := range l.argmax {
		din[idx] += dout[o]
	}
	return din
}

// Update implements Layer.
func (l *MaxPool1D) Update(float32) {}
