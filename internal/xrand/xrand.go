// Package xrand provides a tiny deterministic pseudo-random number generator
// (SplitMix64) used to make every workload in the repository reproducible.
//
// math/rand would work, but its generator and seeding behaviour have changed
// across Go releases; experiments must produce identical numbers forever.
package xrand

import "math"

// RNG is a SplitMix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; prefer New to give streams distinct seeds.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint32 returns 32 uniformly random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Byte returns a uniformly random byte.
func (r *RNG) Byte() byte { return byte(r.Uint64()) }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
