package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestKnownVector(t *testing.T) {
	// SplitMix64 reference value: seed 0, first output.
	r := New(0)
	if got := r.Uint64(); got != 0xE220A8397B1DCDAF {
		t.Errorf("SplitMix64(seed=0) first output = %#x, want 0xE220A8397B1DCDAF", got)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) returned %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) only produced %d distinct values in 10k draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 returned %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := New(13)
	p := r.Perm(20)
	if len(p) != 20 {
		t.Fatalf("Perm(20) length %d", len(p))
	}
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm(20) not a permutation: %v", p)
		}
		seen[v] = true
	}
}
