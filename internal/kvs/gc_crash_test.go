package kvs

import (
	"errors"
	"fmt"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// TestPowerLossDuringGC: a crash anywhere inside garbage collection (during
// the live-record copies or the victim erase) must never lose committed
// data — after remount every key written before GC began is readable with
// its latest value. The copies carry later sequence numbers, so duplicates
// resolve in their favour; a torn victim erase leaves CRC-invalid debris
// that mount skips.
func TestPowerLossDuringGC(t *testing.T) {
	// Sweep the fault position so the crash lands at different points of
	// the GC (copy 1, copy 2, ..., the erase itself).
	for fault := 0; fault < 40; fault += 4 {
		fault := fault
		t.Run(fmt.Sprintf("fault-%d", fault), func(t *testing.T) {
			spec := flash.DefaultSpec()
			spec.PageSize = 128
			spec.NumPages = 6
			spec.Banks = 2 // six pages must split evenly across banks
			dev := core.MustNewDevice(spec)
			s, err := Open(dev)
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]byte{}
			val := make([]byte, 24)
			// Fill until just before GC would trigger.
			var i int
			for i = 0; ; i++ {
				k := fmt.Sprintf("k%d", i%6)
				val[0] = byte(i)
				if s.Compactions() > 0 {
					break
				}
				if err := s.Put(k, val); err != nil {
					t.Fatal(err)
				}
				want[k] = byte(i)
			}
			// Arm the fault and keep writing until it fires.
			dev.Flash().InjectPowerLoss(fault)
			for j := i; j < i+100; j++ {
				k := fmt.Sprintf("k%d", j%6)
				val[0] = byte(j)
				err := s.Put(k, val)
				if err == nil {
					want[k] = byte(j)
					continue
				}
				if !errors.Is(err, flash.ErrPowerLoss) {
					t.Fatalf("unexpected error: %v", err)
				}
				break // crashed
			}
			// Reboot and verify nothing committed was lost.
			s2, err := Open(dev)
			if err != nil {
				t.Fatal(err)
			}
			for k, first := range want {
				got, err := s2.Get(k)
				if err != nil {
					t.Fatalf("key %q lost after GC crash: %v", k, err)
				}
				// The value must be the last acknowledged write (a
				// newer, unacknowledged one may also have landed if
				// the crash hit after the record was durable; both
				// are acceptable — but never an older value).
				if got[0] != first && int(got[0]) < int(first) {
					t.Fatalf("key %q rolled back: got %d, want >= %d", k, got[0], first)
				}
			}
		})
	}
}
