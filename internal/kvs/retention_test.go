package kvs

import (
	"bytes"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
)

// plantMarginalCell stores one zero-heavy record under key "k" and ages
// retention until the marginal cell lands inside the record's bytes on
// page 0, so every host read of the record may flicker.
func plantMarginalCell(t *testing.T, s *Store, dev *core.Device) {
	t.Helper()
	if err := s.Put("k", make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	loc := s.index["k"]
	if loc.page != 0 {
		t.Fatalf("record landed on page %d, want 0", loc.page)
	}
	fl := dev.Flash()
	mask := make([]byte, s.ps)
	for tries := 0; ; tries++ {
		if tries > 500 {
			t.Fatal("could not place a marginal cell inside the record")
		}
		fl.AgeRetention(1) // one leak event in bank 0
		n, err := fl.RiseMaskInto(0, mask)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			continue
		}
		off := -1
		for i, b := range mask {
			if b != 0 {
				off = i
				break
			}
		}
		if off >= loc.off && off < loc.off+loc.size {
			return
		}
		// Marginal cell landed in the page header; recharge and redraw.
		if _, err := fl.RefreshRetention(0); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGetReSensesMarginalCell: a marginal retention cell inside a record
// flickers on host reads; Get must absorb it — usually by re-sensing, in
// the worst case by single-bit repair — and always return the right value.
func TestGetReSensesMarginalCell(t *testing.T) {
	s, dev := newStore(t, 8)
	plantMarginalCell(t, s, dev)

	want := make([]byte, 80)
	for i := 0; i < 200; i++ {
		got, err := s.Get("k")
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("get %d returned a corrupted value", i)
		}
		if s.index["k"].page != 0 {
			break // read repair moved the record off the marginal cell
		}
	}
	st := s.Stats()
	if st.SenseRetries == 0 {
		t.Error("no re-sense attempted despite a marginal cell in the record")
	}
	if st.SenseRecovered == 0 && st.CorrectedBits == 0 {
		t.Error("flicker neither re-sensed nor repaired")
	}
}

// TestMountReSensesMarginalCell: mount replay reads are host-facing, so a
// committed record can flicker its CRC check at mount. The re-sense must
// keep the record from being dropped as torn.
func TestMountReSensesMarginalCell(t *testing.T) {
	s, dev := newStore(t, 8)
	plantMarginalCell(t, s, dev)

	want := make([]byte, 80)
	var senses uint64
	for i := 0; i < 40; i++ {
		s2, err := Open(dev)
		if err != nil {
			t.Fatalf("mount %d: %v", i, err)
		}
		st := s2.Stats()
		if st.TornSkipped != 0 {
			t.Fatalf("mount %d dropped a committed record as torn", i)
		}
		senses += st.SenseRetries
		got, err := s2.Get("k")
		if err != nil {
			t.Fatalf("mount %d get: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("mount %d returned a corrupted value", i)
		}
	}
	if senses == 0 {
		t.Error("no mount-path re-sense across 40 mounts with a marginal cell armed")
	}
}
