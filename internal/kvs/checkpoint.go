package kvs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"github.com/flipbit-sim/flipbit/internal/flash"
)

// Index checkpointing. A plain mount reads every page twice (classify,
// then replay) and CRC-checks every record — O(device). WithCheckpoint
// reserves two slots at the end of the page array and periodically
// serializes the whole in-memory state — index, per-page accounting,
// nextSeq — into a CRC'd blob written ping-pong into the older slot, the
// same discipline as the FTL's map checkpoints (internal/ftl/journal.go).
// Mount then reads the newest valid blob plus one 8-byte header per page,
// and replays only the pages written since the checkpoint: O(tail).
//
// The full scan stays the universal safety valve: a torn, stale or
// structurally implausible checkpoint — or any page whose header disagrees
// with the blob in a way the divergence rules below cannot explain — is
// rejected wholesale and the store falls back to scanning. Both mount
// paths honor the nextSeq floor recorded in every valid slot, so sequence
// numbers are monotonic across mounts whichever path ran, and a surviving
// checkpoint can never mistake a recycled sequence number for a page it
// knew.
//
// Checkpoint blob layout (all integers little-endian):
//
//	magic "FBCP" | version(1) | flags(1) | blobLen(4) | cpSeq(8) |
//	nextSeq(4) | dataPages(4) | keyCount(4)
//	dataPages × [ seq(4) | used(4) | live(4) | flags(1) ]   (bit0 = bad)
//	keyCount  × [ keyLen(1) | key | page(4) | off(2) | size(2) | flags(1) ]
//	crc32(4) over everything before it
const (
	ckptMagic    = "FBCP"
	ckptVersion  = 1
	ckptHdrSize  = 4 + 1 + 1 + 4 + 8 + 4 + 4 + 4
	ckptPageSize = 13 // per-page table entry
	ckptKeyFixed = 10 // per-key entry, excluding the key bytes

	ckptPageBad   = 0x01
	ckptEntryDead = 0x01
)

// ErrNoCheckpoint reports a Checkpoint call on a store mounted without
// WithCheckpoint.
var ErrNoCheckpoint = errors.New("kvs: checkpointing not configured")

// CheckpointConfig tunes index checkpointing.
type CheckpointConfig struct {
	// SlotPages is the size of each of the two checkpoint slots, in pages
	// (default 1). The blob must fit one slot: 30 bytes + 13 per data page
	// + (10 + len(key)) per key + 4.
	SlotPages int
	// Interval auto-checkpoints every Interval committed appends
	// (0 = manual Checkpoint calls only).
	Interval int
	// ScanOnly reserves the region and honors the recorded nextSeq floor,
	// but always mounts by full scan — the differential baseline for the
	// checkpointed mount path.
	ScanOnly bool
}

// WithCheckpoint reserves two checkpoint slots at the end of the page
// array and arms O(tail) mounts.
func WithCheckpoint(cfg CheckpointConfig) Option {
	return func(s *Store) {
		s.ckpt = &checkpointState{cfg: cfg}
	}
}

// checkpointState is the store's runtime checkpoint bookkeeping.
type checkpointState struct {
	cfg      CheckpointConfig
	slotBase [2]int // first absolute page of each slot
	lastSlot int    // slot holding the newest valid checkpoint; writes go to the other
	cpSeq    uint64 // sequence of the newest valid checkpoint
	appends  int    // committed appends since the last checkpoint
}

// layoutCheckpoint carves the checkpoint region out of the page array.
func (s *Store) layoutCheckpoint() error {
	if s.ckpt == nil {
		return nil
	}
	c := &s.ckpt.cfg
	if c.SlotPages <= 0 {
		c.SlotPages = 1
	}
	if s.ps < ckptHdrSize+crcSize {
		return fmt.Errorf("kvs: checkpointing needs pages of at least %d bytes, got %d", ckptHdrSize+crcSize, s.ps)
	}
	if s.ps > 0xFFFF {
		return fmt.Errorf("kvs: checkpointing needs pages of at most 64 KiB, got %d", s.ps)
	}
	reserve := 2 * c.SlotPages
	if s.np-reserve < 3 {
		return fmt.Errorf("kvs: checkpoint region (%d of %d pages) leaves too little data space", reserve, s.np)
	}
	s.np -= reserve
	s.ckpt.slotBase[0] = s.np
	s.ckpt.slotBase[1] = s.np + c.SlotPages
	return nil
}

// Checkpoint serializes the store's state into the older slot. On success
// the next mount restores from it and replays only younger pages. Failures
// (oversized blob, erase or program error, torn read-back) leave the
// previous checkpoint in force; power loss propagates.
func (s *Store) Checkpoint() error {
	if s.ckpt == nil {
		return ErrNoCheckpoint
	}
	c := s.ckpt
	blob := s.encodeCheckpoint(c.cpSeq + 1)
	if cap := c.cfg.SlotPages * s.ps; len(blob) > cap {
		s.stats.CheckpointFailures++
		return fmt.Errorf("kvs: checkpoint blob (%d bytes) exceeds slot capacity (%d bytes)", len(blob), cap)
	}
	slot := 1 - c.lastSlot
	base := c.slotBase[slot]
	pages := (len(blob) + s.ps - 1) / s.ps
	for i := 0; i < pages; i++ {
		if err := s.b.ErasePage(base + i); err != nil {
			s.stats.CheckpointFailures++
			if errors.Is(err, flash.ErrPowerLoss) {
				return err
			}
			return fmt.Errorf("kvs: checkpoint slot erase: %w", err)
		}
	}
	addr := s.pageBase(base)
	if err := s.b.Write(addr, blob); err != nil {
		s.stats.CheckpointFailures++
		if errors.Is(err, flash.ErrPowerLoss) {
			return err
		}
		return fmt.Errorf("kvs: checkpoint program: %w", err)
	}
	// Read-back: a checkpoint that does not verify is worse than none — a
	// stuck cell in the blob would burn a mount's fallback scan every boot.
	got := make([]byte, len(blob))
	if err := s.b.Read(addr, got); err != nil {
		s.stats.CheckpointFailures++
		return err
	}
	for i := range blob {
		if got[i] != blob[i] {
			s.stats.CheckpointFailures++
			return fmt.Errorf("kvs: checkpoint read-back mismatch at byte %d", i)
		}
	}
	c.lastSlot = slot
	c.cpSeq++
	c.appends = 0
	s.stats.Checkpoints++
	return nil
}

// maybeCheckpoint is the post-append hook implementing
// CheckpointConfig.Interval. Non-fatal checkpoint failures are absorbed
// (counted in CheckpointFailures; the previous checkpoint stays in force
// and the next interval retries); power loss propagates.
func (s *Store) maybeCheckpoint() error {
	c := s.ckpt
	if c == nil || c.cfg.Interval <= 0 {
		return nil
	}
	c.appends++
	if c.appends < c.cfg.Interval {
		return nil
	}
	if err := s.Checkpoint(); err != nil {
		if errors.Is(err, flash.ErrPowerLoss) {
			return err
		}
		c.appends = 0
	}
	return nil
}

// encodeCheckpoint serializes the store state. Keys are emitted sorted so
// the blob bytes are a deterministic function of the logical state.
func (s *Store) encodeCheckpoint(cpSeq uint64) []byte {
	keys := make([]string, 0, len(s.index))
	n := ckptHdrSize + s.np*ckptPageSize + crcSize
	for k := range s.index {
		keys = append(keys, k)
		n += ckptKeyFixed + len(k)
	}
	sort.Strings(keys)

	blob := make([]byte, n)
	copy(blob, ckptMagic)
	blob[4] = ckptVersion
	blob[5] = 0
	putLEU32(blob[6:], uint32(n))
	putLEU64(blob[10:], cpSeq)
	putLEU32(blob[18:], s.nextSeq)
	putLEU32(blob[22:], uint32(s.np))
	putLEU32(blob[26:], uint32(len(keys)))
	off := ckptHdrSize
	for p := 0; p < s.np; p++ {
		putLEU32(blob[off:], s.pageSeq[p])
		putLEU32(blob[off+4:], uint32(s.pageUsed[p]))
		putLEU32(blob[off+8:], uint32(s.pageLive[p]))
		if s.pageBad[p] {
			blob[off+12] = ckptPageBad
		}
		off += ckptPageSize
	}
	for _, k := range keys {
		loc := s.index[k]
		blob[off] = byte(len(k))
		copy(blob[off+1:], k)
		off += 1 + len(k)
		putLEU32(blob[off:], uint32(loc.page))
		putLEU16(blob[off+4:], uint16(loc.off))
		putLEU16(blob[off+6:], uint16(loc.size))
		if loc.dead {
			blob[off+8] = ckptEntryDead
		}
		off += ckptKeyFixed - 1
	}
	putLEU32(blob[off:], crc32.ChecksumIEEE(blob[:off]))
	return blob
}

// ckptImage is a decoded, validated checkpoint blob.
type ckptImage struct {
	cpSeq    uint64
	nextSeq  uint32
	pageSeq  []uint32
	pageUsed []int
	pageLive []int
	pageBad  []bool
	entries  map[string]location
}

// loadCheckpoint reads both slots and returns the newest valid image (nil
// when neither slot holds one) plus the nextSeq floor across every valid
// slot. It also primes the writer state — slot rotation and checkpoint
// sequence continue from the newest image whichever mount path runs.
func (s *Store) loadCheckpoint() (*ckptImage, uint32, error) {
	var best *ckptImage
	var floor uint32
	bestSlot := 0
	for slot := 0; slot < 2; slot++ {
		img, err := s.readCkptSlot(slot)
		if err != nil {
			return nil, 0, err
		}
		if img == nil {
			continue
		}
		if img.nextSeq > floor {
			floor = img.nextSeq
		}
		if best == nil || img.cpSeq > best.cpSeq {
			best, bestSlot = img, slot
		}
	}
	if best != nil {
		s.ckpt.lastSlot = bestSlot
		s.ckpt.cpSeq = best.cpSeq
	}
	return best, floor, nil
}

// readCkptSlot reads and fully validates one slot. A nil image (with nil
// error) means the slot holds no usable checkpoint; only backend read
// errors propagate. Validation is strict on purpose: every field an
// attacker — or a torn write — could skew either fails a check here or is
// caught by the divergence rules in applyCheckpoint, and anything
// suspicious rejects the whole blob rather than risking a wrong index.
func (s *Store) readCkptSlot(slot int) (*ckptImage, error) {
	base := s.ckpt.slotBase[slot]
	capacity := s.ckpt.cfg.SlotPages * s.ps
	first := make([]byte, s.ps)
	if err := s.b.Read(s.pageBase(base), first); err != nil {
		return nil, err
	}
	if string(first[:4]) != ckptMagic || first[4] != ckptVersion {
		return nil, nil
	}
	blobLen := int(leU32(first[6:]))
	if blobLen < ckptHdrSize+crcSize || blobLen > capacity {
		return nil, nil
	}
	blob := make([]byte, blobLen)
	n := copy(blob, first)
	if n < blobLen {
		if err := s.b.Read(s.pageBase(base)+n, blob[n:]); err != nil {
			return nil, err
		}
	}
	if crc32.ChecksumIEEE(blob[:blobLen-crcSize]) != leU32(blob[blobLen-crcSize:]) {
		return nil, nil
	}

	img := &ckptImage{
		cpSeq:   leU64(blob[10:]),
		nextSeq: leU32(blob[18:]),
	}
	dataPages := int(leU32(blob[22:]))
	keyCount := int(leU32(blob[26:]))
	if dataPages != s.np || img.nextSeq == freeSeq || keyCount < 0 {
		return nil, nil
	}
	need := ckptHdrSize + dataPages*ckptPageSize + keyCount*ckptKeyFixed + crcSize
	if need > blobLen {
		return nil, nil
	}
	img.pageSeq = make([]uint32, dataPages)
	img.pageUsed = make([]int, dataPages)
	img.pageLive = make([]int, dataPages)
	img.pageBad = make([]bool, dataPages)
	seen := make(map[uint32]bool, dataPages)
	off := ckptHdrSize
	for p := 0; p < dataPages; p++ {
		seq := leU32(blob[off:])
		used := int(leU32(blob[off+4:]))
		live := int(leU32(blob[off+8:]))
		flags := blob[off+12]
		off += ckptPageSize
		if flags&^byte(ckptPageBad) != 0 {
			return nil, nil
		}
		switch {
		case flags&ckptPageBad != 0:
			if seq != freeSeq || used != s.ps || live != 0 {
				return nil, nil
			}
		case seq == freeSeq:
			if used != 0 || live != 0 {
				return nil, nil
			}
		default:
			if seq >= img.nextSeq || seen[seq] {
				return nil, nil
			}
			seen[seq] = true
			if used < pageHeaderSize || used > s.ps || live < 0 || live > used-pageHeaderSize {
				return nil, nil
			}
		}
		img.pageSeq[p] = seq
		img.pageUsed[p] = used
		img.pageLive[p] = live
		img.pageBad[p] = flags&ckptPageBad != 0
	}
	img.entries = make(map[string]location, keyCount)
	entryLive := make([]int, dataPages)
	for i := 0; i < keyCount; i++ {
		if off+1 > blobLen-crcSize {
			return nil, nil
		}
		keyLen := int(blob[off])
		if keyLen == 0 || off+1+keyLen+ckptKeyFixed-1 > blobLen-crcSize {
			return nil, nil
		}
		key := string(blob[off+1 : off+1+keyLen])
		off += 1 + keyLen
		page := int(leU32(blob[off:]))
		recOff := int(leU16(blob[off+4:]))
		size := int(leU16(blob[off+6:]))
		flags := blob[off+8]
		off += ckptKeyFixed - 1
		if flags&^byte(ckptEntryDead) != 0 {
			return nil, nil
		}
		if page < 0 || page >= dataPages || img.pageBad[page] || img.pageSeq[page] == freeSeq {
			return nil, nil
		}
		if recOff < pageHeaderSize || size < recHeaderSize+1+crcSize || recOff+size > img.pageUsed[page] {
			return nil, nil
		}
		if _, dup := img.entries[key]; dup {
			return nil, nil
		}
		img.entries[key] = location{
			seq: img.pageSeq[page], page: page, off: recOff, size: size,
			dead: flags&ckptEntryDead != 0,
		}
		entryLive[page] += size
	}
	if off != blobLen-crcSize {
		return nil, nil
	}
	// Every live byte the page table claims must be exactly accounted for
	// by entries — the store writes checkpoints that balance, so anything
	// else is damage or forgery.
	for p := 0; p < dataPages; p++ {
		if entryLive[p] != img.pageLive[p] {
			return nil, nil
		}
	}
	return img, nil
}

// applyCheckpoint installs a checkpoint image and reconciles it with the
// flash, reading one 8-byte header per page to classify each page against
// the blob's page table:
//
//	blob state  header state          meaning                     action
//	─────────── ───────────────────── ──────────────────────────  ──────────
//	in-use      same seq              unchanged (or appended to)  trust; replay tail if used < ps
//	in-use      free                  erased by GC after ckpt     drop its entries (copies live past nextSeq)
//	in-use      seq >= blob nextSeq   erased and reused           drop entries; replay fully
//	in-use      quarantined           damaged after ckpt          drop entries; mark bad
//	free/bad    free                  free (or reclaimed)         free
//	free/bad    seq >= blob nextSeq   opened after ckpt           replay fully
//	bad         quarantined           still bad                   keep bad
//	free        quarantined           torn header after ckpt      mark bad
//	any         seq < blob nextSeq,   a page the checkpoint       REJECT: full-scan fallback
//	            and != blob seq       cannot explain
//
// Tail pages replay in sequence order after the checkpoint's index is
// installed, exactly as the scan path would order them — every pre-ckpt
// page's sequence is below blob nextSeq, every replayed page's is at or
// above it (or is the partially-filled head continuing its own page).
// ok=false means the image was rejected; the caller falls back to a scan.
func (s *Store) applyCheckpoint(img *ckptImage) (ok bool, err error) {
	saved := s.stats
	copy(s.pageSeq, img.pageSeq)
	copy(s.pageUsed, img.pageUsed)
	copy(s.pageLive, img.pageLive)
	copy(s.pageBad, img.pageBad)
	s.index = img.entries
	s.nextSeq = img.nextSeq

	var partial, tail []pageInfo
	var hdr [pageHeaderSize]byte
	for p := 0; p < s.np; p++ {
		if err := s.b.Read(s.pageBase(p), hdr[:]); err != nil {
			return false, err
		}
		seq, state := parsePageHeader(hdr[:], &s.stats)
		switch {
		case img.pageBad[p] || img.pageSeq[p] == freeSeq: // free or bad at ckpt
			switch state {
			case pageFree:
				s.markMountFree(p)
			case pageQuarantined:
				s.markMountBad(p)
			default:
				if seq < img.nextSeq {
					s.stats = saved
					return false, nil
				}
				s.markMountFree(p)
				tail = append(tail, pageInfo{p, seq})
			}
		default: // in use at ckpt
			switch {
			case state == pageInUse && seq == img.pageSeq[p]:
				if img.pageUsed[p] < s.ps {
					partial = append(partial, pageInfo{p, seq})
				}
			case state == pageFree:
				s.dropPageEntries(p)
				s.markMountFree(p)
			case state == pageQuarantined:
				s.dropPageEntries(p)
				s.markMountBad(p)
			case seq >= img.nextSeq:
				s.dropPageEntries(p)
				s.markMountFree(p)
				tail = append(tail, pageInfo{p, seq})
			default:
				s.stats = saved
				return false, nil
			}
		}
	}

	// Replay the divergent pages oldest-first, the same order a scan
	// imposes; partially-filled checkpointed pages (sequences below the
	// blob's nextSeq) replay before post-checkpoint pages by construction.
	sort.Slice(partial, func(i, j int) bool { return partial[i].seq < partial[j].seq })
	sort.Slice(tail, func(i, j int) bool { return tail[i].seq < tail[j].seq })
	buf := make([]byte, s.ps)
	replayed := 0
	for _, pi := range partial {
		// Only the suffix past the checkpointed fill point can hold new
		// records; the parse below starts there, so skip re-reading the
		// prefix the blob already described (usually the whole page bar a
		// few slack bytes).
		start := img.pageUsed[pi.page]
		if err := s.b.Read(s.pageBase(pi.page)+start, buf[start:]); err != nil {
			return false, err
		}
		s.replayPageFrom(pi.page, pi.seq, buf, start)
		if s.pageUsed[pi.page] != start {
			replayed++
		}
	}
	for _, pi := range tail {
		if err := s.b.Read(s.pageBase(pi.page), buf); err != nil {
			return false, err
		}
		s.pageSeq[pi.page] = pi.seq
		s.replayPage(pi.page, pi.seq, buf)
		if pi.seq >= s.nextSeq {
			s.nextSeq = pi.seq + 1
		}
		replayed++
	}
	s.stats.TailPagesReplayed += uint64(replayed)

	// Resume appending into the newest page if it has room, and recount
	// the quarantine pool — exactly what a scan would have concluded.
	newest := -1
	for p := 0; p < s.np; p++ {
		if s.pageBad[p] {
			s.stats.QuarantinedPages++
			continue
		}
		if s.pageSeq[p] == freeSeq {
			continue
		}
		if newest < 0 || s.pageSeq[p] > s.pageSeq[newest] {
			newest = p
		}
	}
	s.head = -1
	if newest >= 0 && s.pageUsed[newest] < s.ps {
		s.head = newest
	}
	return true, nil
}

// markMountFree resets a page's accounting to free during checkpoint mount.
func (s *Store) markMountFree(p int) {
	s.pageSeq[p] = freeSeq
	s.pageUsed[p] = 0
	s.pageLive[p] = 0
	s.pageBad[p] = false
}

// markMountBad quarantines a page during checkpoint mount.
func (s *Store) markMountBad(p int) {
	s.pageSeq[p] = freeSeq
	s.pageUsed[p] = s.ps
	s.pageLive[p] = 0
	s.pageBad[p] = true
}

// dropPageEntries removes every index entry pointing at page p — the page
// was erased, reused or quarantined after the checkpoint, and whatever was
// live on it either lives on in GC copies past the checkpoint's nextSeq
// (restored by tail replay) or is gone with the quarantine, matching scan.
func (s *Store) dropPageEntries(p int) {
	for k, loc := range s.index {
		if loc.page == p {
			delete(s.index, k)
		}
	}
	s.pageLive[p] = 0
}

func leU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func putLEU16(b []byte, v uint16) { b[0], b[1] = byte(v), byte(v>>8) }

func leU64(b []byte) uint64 {
	return uint64(leU32(b)) | uint64(leU32(b[4:]))<<32
}

func putLEU64(b []byte, v uint64) {
	putLEU32(b, uint32(v))
	putLEU32(b[4:], uint32(v>>32))
}
