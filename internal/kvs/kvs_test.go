package kvs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

func newStore(t *testing.T, pages int) (*Store, *core.Device) {
	t.Helper()
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = pages
	if pages%spec.Banks != 0 {
		spec.Banks = 2 // pages must split evenly across banks
	}
	dev := core.MustNewDevice(spec)
	s, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := newStore(t, 8)
	if err := s.Put("temp", []byte("21.5C")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("temp")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("21.5C")) {
		t.Errorf("got %q", got)
	}
}

func TestGetMissing(t *testing.T) {
	s, _ := newStore(t, 8)
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
}

func TestUpdateWins(t *testing.T) {
	s, _ := newStore(t, 8)
	for i := 0; i < 20; i++ {
		if err := s.Put("k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 19 {
		t.Errorf("latest update lost: %v", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s, _ := newStore(t, 8)
	_ = s.Put("a", []byte("1"))
	_ = s.Put("b", []byte("2"))
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted key still readable")
	}
	keys := s.Keys()
	if len(keys) != 1 || keys[0] != "b" {
		t.Errorf("keys = %v", keys)
	}
	// Deleting again is a no-op.
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	s, _ := newStore(t, 8)
	if err := s.Put("", []byte("x")); !errors.Is(err, ErrBadKey) {
		t.Error("empty key accepted")
	}
	big := make([]byte, 1024)
	if err := s.Put("k", big); !errors.Is(err, ErrTooLarge) {
		t.Error("oversized record accepted")
	}
}

func TestMountRebuildsIndex(t *testing.T) {
	s, dev := newStore(t, 8)
	want := map[string]string{}
	rng := xrand.New(3)
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("key%02d", i%10)
		v := fmt.Sprintf("val-%d-%d", i, rng.Intn(100))
		want[k] = v
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Delete("key03")
	delete(want, "key03")

	// Remount from the same flash contents.
	s2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != len(want) {
		t.Fatalf("remounted Len = %d, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, err := s2.Get(k)
		if err != nil {
			t.Fatalf("remounted Get(%q): %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("remounted %q = %q, want %q", k, got, v)
		}
	}
}

// TestGCCompactsAndPreservesData: filling the store far beyond raw capacity
// must trigger compactions while keeping every live key readable.
func TestGCCompactsAndPreservesData(t *testing.T) {
	s, _ := newStore(t, 6) // 6 × 128 B pages
	val := make([]byte, 24)
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("k%d", i%8)
		for j := range val {
			val[j] = byte(i + j)
		}
		if err := s.Put(k, val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if s.Compactions() == 0 {
		t.Error("no compaction despite 300 overwrites in a 6-page store")
	}
	for i := 292; i < 300; i++ {
		k := fmt.Sprintf("k%d", i%8)
		got, err := s.Get(k)
		if err != nil {
			t.Fatalf("get %q after GC: %v", k, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("%q holds stale data after GC", k)
		}
	}
}

// TestStoreFull: unique keys eventually exhaust the store; ErrFull must
// surface rather than a corrupt state.
func TestStoreFull(t *testing.T) {
	s, _ := newStore(t, 4)
	val := make([]byte, 32)
	var sawFull bool
	for i := 0; i < 200; i++ {
		if err := s.Put(fmt.Sprintf("unique-key-%03d", i), val); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("store never reported full")
	}
	// Existing data still readable.
	if _, err := s.Get("unique-key-000"); err != nil {
		t.Errorf("data lost on full store: %v", err)
	}
}

// TestPowerLossDuringPutRecovers: a torn Put must not corrupt the store;
// after remount the old value is intact and the torn record is ignored.
func TestPowerLossDuringPutRecovers(t *testing.T) {
	s, dev := newStore(t, 8)
	if err := s.Put("cfg", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	dev.Flash().InjectPowerLoss(0)
	err := s.Put("cfg", []byte("v2"))
	if !errors.Is(err, flash.ErrPowerLoss) {
		t.Fatalf("want ErrPowerLoss, got %v", err)
	}
	// Reboot: remount from flash.
	s2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("cfg")
	if err != nil {
		t.Fatalf("key lost after torn put: %v", err)
	}
	if string(got) != "v1" {
		t.Errorf("recovered %q, want the pre-crash value \"v1\"", got)
	}
}

// TestTombstoneSurvivesGC: deleting a key, then forcing GC churn, then
// remounting must NOT resurrect the old value (the §VII-family resurrection
// bug this store's tombstone-forwarding prevents).
func TestTombstoneSurvivesGC(t *testing.T) {
	s, dev := newStore(t, 6)
	if err := s.Put("ghost", []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Push other data so "ghost" sits in an old page.
	val := make([]byte, 24)
	for i := 0; i < 20; i++ {
		_ = s.Put(fmt.Sprintf("f%d", i%6), val)
	}
	if err := s.Delete("ghost"); err != nil {
		t.Fatal(err)
	}
	// Churn until multiple compactions have happened.
	for i := 0; i < 200; i++ {
		if err := s.Put(fmt.Sprintf("f%d", i%6), val); err != nil {
			t.Fatal(err)
		}
	}
	if s.Compactions() < 2 {
		t.Fatalf("churn produced only %d compactions", s.Compactions())
	}
	s2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted key resurrected after GC + remount")
	}
}

// TestErasesAmortized: log-structured updates must use far fewer erases
// than one per update.
func TestErasesAmortized(t *testing.T) {
	s, dev := newStore(t, 8)
	val := make([]byte, 16)
	const updates = 200
	for i := 0; i < updates; i++ {
		val[0] = byte(i)
		if err := s.Put("sensor", val); err != nil {
			t.Fatal(err)
		}
	}
	erases := dev.Flash().Stats().Erases
	if erases*3 > updates {
		t.Errorf("%d erases for %d updates; log structure not amortizing", erases, updates)
	}
}
