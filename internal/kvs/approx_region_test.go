package kvs

import (
	"errors"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// TestStoreUnderApproxRegion documents two composition facts:
//
//  1. CRC-protected metadata is not error tolerant, so the paper's design
//     keeps it outside the approx region (Listing 2's separate sections) —
//     the exact configuration must never lose a record.
//  2. This particular store is *intrinsically* FlipBit-safe even inside the
//     region, because log-structured writes append into erased (all-ones)
//     space, and every value is exactly representable by clearing bits.
//     Approximation only ever bites in-place overwrites. That is the same
//     physics the log-structured related work exploits (§VII) — the two
//     techniques don't conflict, they just never overlap.
func TestStoreUnderApproxRegion(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 8

	run := func(approxRegion bool) (lost int) {
		dev := core.MustNewDevice(spec)
		if approxRegion {
			if err := dev.SetApproxRegion(0, spec.PageSize*spec.NumPages); err != nil {
				t.Fatal(err)
			}
			dev.SetThreshold(4)
		}
		s, err := Open(dev)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			key := []string{"a", "b", "c", "d"}[i%4]
			val := make([]byte, 20)
			for j := range val {
				val[j] = byte(i*7 + j)
			}
			if err := s.Put(key, val); err != nil {
				t.Fatal(err)
			}
		}
		s2, err := Open(dev)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"a", "b", "c", "d"} {
			if _, err := s2.Get(key); errors.Is(err, ErrNotFound) {
				lost++
			}
		}
		return lost
	}

	if lost := run(false); lost != 0 {
		t.Fatalf("store outside the approx region lost %d keys", lost)
	}
	// Fact 2: append-only writes land in erased space and are exactly
	// representable, so even inside the region nothing is lost.
	if lost := run(true); lost != 0 {
		t.Fatalf("append-only store lost %d keys inside the approx region; "+
			"appends into erased space must be exact", lost)
	}
}
