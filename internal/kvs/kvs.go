// Package kvs is a miniature log-structured key-value store over the flash
// device — the "flash file system" family of §VII ([24,26,43,94]) reduced
// to its essence so its costs can be measured against FlipBit's approach.
//
// Layout: every page begins with a 4-byte sequence number (all-ones while
// the page is free); records append within pages:
//
//	magic(0xA5) | flags | keyLen | valLen(2, LE) | key | value | crc32(4, LE)
//
// The CRC covers magic..value, so a record torn by power loss is detected
// and skipped at mount. Updates append a new record; the highest-sequence
// copy of a key wins, and a flags bit marks tombstones. Garbage collection
// copies a victim page's live records to the log head and erases the
// victim — crash-safe, because the copies carry later sequence numbers.
package kvs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"github.com/flipbit-sim/flipbit/internal/core"
)

// Record format constants.
const (
	recMagic      = 0xA5
	flagTombstone = 0x01

	pageHeaderSize = 4
	recHeaderSize  = 5 // magic + flags + keyLen + valLen(2)
	crcSize        = 4

	freeSeq = ^uint32(0)
)

// Errors.
var (
	ErrNotFound = errors.New("kvs: key not found")
	ErrTooLarge = errors.New("kvs: record does not fit in a page")
	ErrFull     = errors.New("kvs: store full even after compaction")
	ErrBadKey   = errors.New("kvs: keys must be 1..255 bytes")
)

// location addresses the newest record for a key.
type location struct {
	seq  uint32 // sequence of the page holding it
	page int
	off  int // offset of the record within the page (past the page header)
	size int // full record size in bytes
	dead bool
}

// Store is a mounted key-value store.
type Store struct {
	dev *core.Device

	index    map[string]location
	pageSeq  []uint32 // sequence per page (freeSeq = free)
	pageUsed []int    // bytes consumed per page (including header)
	pageLive []int    // live record bytes per page
	head     int      // page currently being appended to (-1 = none)
	nextSeq  uint32
	inGC     bool

	// Stats.
	compactions uint64
}

// Open mounts the store, scanning every page and rebuilding the index.
// Torn records (bad CRC) and torn pages are skipped, so a store survives
// power loss during writes.
func Open(dev *core.Device) (*Store, error) {
	s := &Store{
		dev:      dev,
		index:    make(map[string]location),
		pageSeq:  make([]uint32, dev.Flash().Spec().NumPages),
		pageUsed: make([]int, dev.Flash().Spec().NumPages),
		pageLive: make([]int, dev.Flash().Spec().NumPages),
		head:     -1,
		nextSeq:  0,
	}
	type pageInfo struct {
		page int
		seq  uint32
	}
	var used []pageInfo
	ps := dev.Flash().Spec().PageSize
	buf := make([]byte, ps)
	for p := 0; p < dev.Flash().Spec().NumPages; p++ {
		if err := dev.Read(dev.Flash().PageBase(p), buf); err != nil {
			return nil, err
		}
		seq := leU32(buf)
		s.pageSeq[p] = seq
		if seq == freeSeq {
			continue
		}
		used = append(used, pageInfo{p, seq})
		if seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	// Replay pages in sequence order so newer records win.
	sort.Slice(used, func(i, j int) bool { return used[i].seq < used[j].seq })
	for _, pi := range used {
		if err := dev.Read(dev.Flash().PageBase(pi.page), buf); err != nil {
			return nil, err
		}
		s.replayPage(pi.page, pi.seq, buf)
	}
	if len(used) > 0 {
		last := used[len(used)-1]
		// Resume appending into the newest page if it has room.
		if s.pageUsed[last.page] < ps {
			s.head = last.page
		}
	}
	return s, nil
}

// replayPage parses the records of one page into the index.
func (s *Store) replayPage(page int, seq uint32, buf []byte) {
	ps := len(buf)
	off := pageHeaderSize
	for off+recHeaderSize+crcSize <= ps {
		if buf[off] != recMagic {
			break // free space or torn write
		}
		flags := buf[off+1]
		keyLen := int(buf[off+2])
		valLen := int(buf[off+3]) | int(buf[off+4])<<8
		size := recHeaderSize + keyLen + valLen + crcSize
		if keyLen == 0 || off+size > ps {
			break // corrupt header; stop parsing this page
		}
		body := buf[off : off+recHeaderSize+keyLen+valLen]
		want := leU32(buf[off+recHeaderSize+keyLen+valLen:])
		if crc32.ChecksumIEEE(body) != want {
			// Torn record: everything after it is unreliable.
			break
		}
		key := string(buf[off+recHeaderSize : off+recHeaderSize+keyLen])
		s.supersede(key)
		loc := location{seq: seq, page: page, off: off, size: size, dead: flags&flagTombstone != 0}
		// Tombstones stay indexed (dead) so garbage collection keeps
		// copying them forward; dropping one while an older copy of
		// the key survived elsewhere would resurrect the old value
		// at the next mount.
		s.index[key] = loc
		s.pageLive[page] += size
		off += size
	}
	s.pageUsed[page] = off
}

// supersede removes the previous copy of key (if any) from its page's
// must-preserve accounting.
func (s *Store) supersede(key string) {
	if old, ok := s.index[key]; ok {
		s.pageLive[old.page] -= old.size
	}
}

// Get returns the value stored for key.
func (s *Store) Get(key string) ([]byte, error) {
	loc, ok := s.index[key]
	if !ok || loc.dead {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	rec := make([]byte, loc.size)
	base := s.dev.Flash().PageBase(loc.page)
	if err := s.dev.Read(base+loc.off, rec); err != nil {
		return nil, err
	}
	keyLen := int(rec[2])
	valLen := int(rec[3]) | int(rec[4])<<8
	val := make([]byte, valLen)
	copy(val, rec[recHeaderSize+keyLen:recHeaderSize+keyLen+valLen])
	return val, nil
}

// Put stores key → val, appending a new record.
func (s *Store) Put(key string, val []byte) error {
	return s.append(key, val, 0)
}

// Delete removes key by appending a tombstone. Deleting an absent or
// already-deleted key is a no-op.
func (s *Store) Delete(key string) error {
	if loc, ok := s.index[key]; !ok || loc.dead {
		return nil
	}
	return s.append(key, nil, flagTombstone)
}

// Keys returns the live keys in sorted order.
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.index))
	for k, loc := range s.index {
		if !loc.dead {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.Keys()) }

// Compactions returns how many GC passes have run.
func (s *Store) Compactions() uint64 { return s.compactions }

// append encodes and writes one record, garbage collecting as needed.
func (s *Store) append(key string, val []byte, flags byte) error {
	if len(key) == 0 || len(key) > 255 {
		return fmt.Errorf("%w: %d bytes", ErrBadKey, len(key))
	}
	ps := s.dev.Flash().Spec().PageSize
	size := recHeaderSize + len(key) + len(val) + crcSize
	if pageHeaderSize+size > ps {
		return fmt.Errorf("%w: %d bytes in a %d-byte page", ErrTooLarge, size, ps)
	}
	rec := make([]byte, size)
	rec[0] = recMagic
	rec[1] = flags
	rec[2] = byte(len(key))
	rec[3] = byte(len(val))
	rec[4] = byte(len(val) >> 8)
	copy(rec[recHeaderSize:], key)
	copy(rec[recHeaderSize+len(key):], val)
	putLEU32(rec[recHeaderSize+len(key)+len(val):], crc32.ChecksumIEEE(rec[:recHeaderSize+len(key)+len(val)]))

	for attempt := 0; attempt < 2; attempt++ {
		page, off, err := s.reserve(size)
		if err == nil {
			return s.commit(key, page, off, rec, flags)
		}
		if !errors.Is(err, ErrFull) || attempt == 1 || s.inGC {
			return err
		}
		if err := s.gc(); err != nil {
			return err
		}
	}
	return ErrFull
}

// reserve finds space for a record, opening a fresh page when needed.
// One free page is always held back as the garbage collector's copy
// target; only GC itself may consume it.
func (s *Store) reserve(size int) (page, off int, err error) {
	ps := s.dev.Flash().Spec().PageSize
	if s.head >= 0 && s.pageSeq[s.head] != freeSeq && s.pageUsed[s.head]+size <= ps {
		return s.head, s.pageUsed[s.head], nil
	}
	var free []int
	for p := range s.pageSeq {
		if s.pageSeq[p] == freeSeq {
			free = append(free, p)
		}
	}
	minFree := 2
	if s.inGC {
		minFree = 1
	}
	if len(free) < minFree {
		return 0, 0, ErrFull
	}
	if err := s.openPage(free[0]); err != nil {
		return 0, 0, err
	}
	return free[0], s.pageUsed[free[0]], nil
}

// openPage stamps a free page with the next sequence number.
func (s *Store) openPage(p int) error {
	var hdr [pageHeaderSize]byte
	putLEU32(hdr[:], s.nextSeq)
	if err := s.dev.Write(s.dev.Flash().PageBase(p), hdr[:]); err != nil {
		return err
	}
	s.pageSeq[p] = s.nextSeq
	s.pageUsed[p] = pageHeaderSize
	s.pageLive[p] = 0
	s.nextSeq++
	s.head = p
	return nil
}

// commit writes the record bytes and updates the index.
func (s *Store) commit(key string, page, off int, rec []byte, flags byte) error {
	base := s.dev.Flash().PageBase(page)
	if err := s.dev.Write(base+off, rec); err != nil {
		return err
	}
	s.pageUsed[page] = off + len(rec)
	s.supersede(key)
	s.index[key] = location{
		seq: s.pageSeq[page], page: page, off: off, size: len(rec),
		dead: flags&flagTombstone != 0,
	}
	s.pageLive[page] += len(rec)
	return nil
}

// gc erases the page with the least live data after copying its live
// records to the log head. Crash-safe: copies carry later sequence
// numbers, so duplicates resolve in their favour at mount.
func (s *Store) gc() error {
	s.inGC = true
	defer func() { s.inGC = false }()
	victim, best := -1, 1<<30
	for p := range s.pageSeq {
		if s.pageSeq[p] == freeSeq || p == s.head {
			continue
		}
		if s.pageLive[p] < best {
			victim, best = p, s.pageLive[p]
		}
	}
	if victim < 0 {
		return ErrFull
	}
	// Copy the victim's must-preserve records (live values AND
	// tombstones) to the log head; copies carry later sequence numbers,
	// so a crash between copy and erase resolves in their favour.
	keys := make([]string, 0)
	for k, loc := range s.index {
		if loc.page == victim {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		loc := s.index[key]
		if loc.dead {
			if err := s.append(key, nil, flagTombstone); err != nil {
				return err
			}
			continue
		}
		val, err := s.Get(key)
		if err != nil {
			return err
		}
		if err := s.append(key, val, 0); err != nil {
			return err
		}
	}
	if err := s.dev.Flash().ErasePage(victim); err != nil {
		return err
	}
	s.pageSeq[victim] = freeSeq
	s.pageUsed[victim] = 0
	s.pageLive[victim] = 0
	if s.head == victim {
		s.head = -1
	}
	s.compactions++
	return nil
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLEU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
