// Package kvs is a miniature log-structured key-value store over the flash
// device — the "flash file system" family of §VII ([24,26,43,94]) reduced
// to its essence so its costs can be measured against FlipBit's approach.
//
// Layout: every page begins with an 8-byte header — a 4-byte sequence
// number and the CRC32 of those four bytes (all-ones while the page is
// free); records append within pages:
//
//	magic(0xA5) | flags | keyLen | valLen(2, LE) | key | value | crc32(4, LE)
//
// The CRC covers magic..value, so a record torn by power loss is detected
// and skipped at mount, and a record with a single drifted cell (read
// disturb, stuck bit) is repaired by brute-force single-bit correction.
// Updates append a new record; the highest-sequence copy of a key wins, and
// a flags bit marks tombstones. Garbage collection copies a victim page's
// live records to the log head and erases the victim — crash-safe, because
// the copies carry later sequence numbers. Pages whose header cannot be
// repaired are quarantined and reclaimed by an erase when space runs short.
//
// The store runs on any Backend: a FlipBit core device directly, or an FTL
// mounted on one so the log rides on wear-leveled, crash-consistent
// translation.
package kvs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// Record format constants.
const (
	recMagic      = 0xA5
	flagTombstone = 0x01

	pageHeaderSize = 8 // seq(4) + crc32(seq)(4)
	recHeaderSize  = 5 // magic + flags + keyLen + valLen(2)
	crcSize        = 4

	freeSeq = ^uint32(0)

	// verifyRetries bounds re-append attempts after a read-back mismatch.
	verifyRetries = 4

	// senseRetries bounds the extra reads a CRC failure earns before the
	// store falls back to brute-force single-bit repair. A marginal
	// retention cell (flash/retention.go) resolves randomly per read, so a
	// re-sense usually comes back clean and — unlike a repair — tells the
	// store the on-flash copy is still intact.
	senseRetries = 2
)

// Errors.
var (
	ErrNotFound = errors.New("kvs: key not found")
	ErrTooLarge = errors.New("kvs: record does not fit in a page")
	ErrFull     = errors.New("kvs: store full even after compaction")
	ErrBadKey   = errors.New("kvs: keys must be 1..255 bytes")
	ErrCorrupt  = errors.New("kvs: record corrupt beyond single-bit repair")

	// ErrDeviceReadOnly reports that writes failed because the flash
	// underneath is exhausted — pages are out of service faster than they
	// can be reclaimed — not because the store is logically full. Committed
	// data stays readable; this is the graceful end of the device's life.
	ErrDeviceReadOnly = errors.New("kvs: device exhausted, store is read-only")
)

// Backend is the storage surface the store runs on. core.Device satisfies
// it through the coreBackend adapter (Open); *ftl.FTL satisfies it
// directly (OpenOn), giving the log wear leveling underneath.
type Backend interface {
	Read(addr int, dst []byte) error
	Write(addr int, data []byte) error
	ErasePage(p int) error
	PageSize() int
	NumPages() int
}

// PageSenser is an optional Backend extension: a slow margin-aware
// controller sense of one page (shifted read reference), which resolves
// marginal retention cells to their stored values instead of the per-read
// flicker of a fast host read. When the backend implements it, the
// hardened read path falls back to a margin sense after fast re-reads
// fail, so the single-bit repair always judges persistent damage on its
// own — never with transient read noise stacked on top.
type PageSenser interface {
	SensePage(page int, dst []byte) error
}

// coreBackend adapts a FlipBit device to the Backend interface.
type coreBackend struct{ dev *core.Device }

func (c coreBackend) Read(addr int, dst []byte) error   { return c.dev.Read(addr, dst) }
func (c coreBackend) Write(addr int, data []byte) error { return c.dev.Write(addr, data) }
func (c coreBackend) ErasePage(p int) error             { return c.dev.ErasePage(p) }
func (c coreBackend) PageSize() int                     { return c.dev.Flash().Spec().PageSize }
func (c coreBackend) NumPages() int                     { return c.dev.Flash().Spec().NumPages }
func (c coreBackend) PageWear(p int) uint32             { return c.dev.Flash().Wear(p) }
func (c coreBackend) SensePage(p int, dst []byte) error { return c.dev.SensePage(p, dst) }
func (c coreBackend) ProgramByte(addr int, v byte) error {
	return c.dev.Flash().ProgramByte(addr, v)
}
func (c coreBackend) Banks() int         { return c.dev.Flash().Banks() }
func (c coreBackend) MaxSensePages() int { return c.dev.Flash().Spec().MaxSensePages }
func (c coreBackend) SenseMulti(op flash.SenseOp, pages []int, invert []bool, dst []byte) error {
	return c.dev.Flash().SenseMulti(op, pages, invert, dst)
}

// WearBackend is an optional Backend extension exposing per-page erase
// counts. When the backend implements it, proactive compaction biases
// victim selection toward low-wear pages so GC itself levels wear; plain
// backends get garbage-ratio-only selection.
type WearBackend interface {
	PageWear(p int) uint32
}

// Stats counts the store's resilience events.
type Stats struct {
	Compactions      uint64 // GC passes
	TornSkipped      uint64 // records dropped at mount for unrepairable CRCs
	CorrectedBits    uint64 // single-bit repairs (mount replay and Get)
	SenseRetries     uint64 // re-reads issued after a CRC failure (retention flicker)
	SenseRecovered   uint64 // CRC failures that a re-sense resolved without repair
	MarginSenses     uint64 // slow margin-aware senses after fast re-reads failed
	VerifyFailures   uint64 // read-back mismatches after a commit (WithVerify)
	QuarantinedPages uint64 // pages with unrepairable headers awaiting reclaim
	RetiredPages     uint64 // pages abandoned mid-use after a verify failure
	ReclaimRejected  uint64 // reclaim erases whose verify found residue (page stays quarantined)

	Scans              uint64 // predicate scans served by the in-flash index
	ScanFallbacks      uint64 // predicate scans served by the host path
	ScanCandidates     uint64 // candidate records fetched by indexed scans
	ScanFalsePositives uint64 // candidates rejected by the exact re-check (stale bits)
	ScanIndexDisabled  uint64 // times the index degraded to host scans

	Checkpoints        uint64 // index checkpoints committed to a slot
	CheckpointFailures uint64 // checkpoint attempts that failed (oversize, erase/program error, torn)
	CheckpointMounts   uint64 // mounts restored from a checkpoint (the O(tail) path)
	ScanMounts         uint64 // mounts that scanned every page (no, stale, or rejected checkpoint)
	TailPagesReplayed  uint64 // pages replayed past the checkpoint across all mounts
}

// location addresses the newest record for a key.
type location struct {
	seq  uint32 // sequence of the page holding it
	page int
	off  int // offset of the record within the page (past the page header)
	size int // full record size in bytes
	dead bool
}

// Store is a mounted key-value store.
type Store struct {
	b  Backend
	ps int // page size
	np int // data page count (excludes the checkpoint region, when configured)

	index    map[string]location
	pageSeq  []uint32 // sequence per page (freeSeq = free)
	pageUsed []int    // bytes consumed per page (including header)
	pageLive []int    // live record bytes per page
	pageBad  []bool   // quarantined: header unrepairable, erase before reuse
	head     int      // page currently being appended to (-1 = none)
	nextSeq  uint32
	inGC     bool
	verify   bool // read back every committed record

	wb      WearBackend // b, when it exposes per-page wear (else nil)
	comp    *CompactionConfig
	ckpt    *checkpointState
	scanIdx *scanIndexState
	// compactDue gates the O(np) proactive-compaction check: the free-page
	// count and garbage ratio only move meaningfully when a page opens, so
	// the check runs once per opened page, not once per append.
	compactDue bool

	stats Stats
}

// Option configures the store at mount.
type Option func(*Store)

// WithVerify makes every committed record read back and compare: a
// mismatch (a stuck cell under the landing zone) retires the rest of the
// page and re-appends the record elsewhere. Costs one record read per
// write; without it a silent stuck bit is only caught — and repaired if
// single-bit — at the next mount or Get.
func WithVerify() Option {
	return func(s *Store) { s.verify = true }
}

// Open mounts the store on a FlipBit device directly.
func Open(dev *core.Device, opts ...Option) (*Store, error) {
	return OpenOn(coreBackend{dev}, opts...)
}

// OpenOn mounts the store on any backend. Without a checkpoint (or with a
// stale, torn or rejected one) every page is scanned and the index rebuilt;
// torn records (bad CRC) and torn pages are skipped — single-bit damage is
// repaired in passing — so a store survives power loss during writes. With
// WithCheckpoint, mount restores the index from the newest valid checkpoint
// and replays only the log tail written since it.
func OpenOn(b Backend, opts ...Option) (*Store, error) {
	s := &Store{
		b:     b,
		ps:    b.PageSize(),
		np:    b.NumPages(),
		index: make(map[string]location),
		head:  -1,
	}
	for _, o := range opts {
		o(s)
	}
	if s.comp != nil {
		s.comp.normalize()
	}
	if err := s.layoutCheckpoint(); err != nil {
		return nil, err
	}
	if err := s.layoutScanIndex(); err != nil {
		return nil, err
	}
	s.pageSeq = make([]uint32, s.np)
	s.pageUsed = make([]int, s.np)
	s.pageLive = make([]int, s.np)
	s.pageBad = make([]bool, s.np)
	s.wb, _ = b.(WearBackend)
	s.compactDue = true

	// With checkpointing configured, read both slots up front: the newest
	// valid image drives the O(tail) mount, and the nextSeq floor across
	// every valid slot is honored by BOTH mount paths, so sequence numbers
	// stay monotonic across mounts and a stale checkpoint can never see a
	// recycled sequence number collide with its page table.
	var img *ckptImage
	var seqFloor uint32
	if s.ckpt != nil {
		var err error
		img, seqFloor, err = s.loadCheckpoint()
		if err != nil {
			return nil, err
		}
	}
	if img != nil && !s.ckpt.cfg.ScanOnly {
		ok, err := s.applyCheckpoint(img)
		if err != nil {
			return nil, err
		}
		if ok {
			if seqFloor > s.nextSeq {
				s.nextSeq = seqFloor
			}
			s.stats.CheckpointMounts++
			if err := s.rebuildScanIndex(); err != nil {
				return nil, err
			}
			return s, nil
		}
		s.resetMountState()
	}
	if err := s.scanMount(); err != nil {
		return nil, err
	}
	if seqFloor > s.nextSeq {
		s.nextSeq = seqFloor
	}
	s.stats.ScanMounts++
	if err := s.rebuildScanIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// pageInfo pairs a page with its header sequence for replay ordering.
type pageInfo struct {
	page int
	seq  uint32
}

// scanMount rebuilds the store state by reading and replaying every data
// page. It assumes zeroed page accounting (a fresh Store or resetMountState).
func (s *Store) scanMount() error {
	var used []pageInfo
	buf := make([]byte, s.ps)
	for p := 0; p < s.np; p++ {
		if err := s.b.Read(s.pageBase(p), buf); err != nil {
			return err
		}
		seq, state := parsePageHeader(buf, &s.stats)
		// A quarantine verdict is worth a re-sense: retention flicker on
		// top of a stuck cell can push a header past single-bit repair on
		// one read and back within reach on the next.
		for try := 0; try < senseRetries && state == pageQuarantined; try++ {
			s.stats.SenseRetries++
			if err := s.b.Read(s.pageBase(p), buf); err != nil {
				return err
			}
			seq, state = parsePageHeader(buf, &s.stats)
			if state != pageQuarantined {
				s.stats.SenseRecovered++
			}
		}
		if state == pageQuarantined {
			if ok, err := s.marginSense(p, buf); err != nil {
				return err
			} else if ok {
				if seq2, st2 := parsePageHeader(buf, &s.stats); st2 != pageQuarantined {
					s.stats.SenseRecovered++
					seq, state = seq2, st2
				}
			}
		}
		s.pageSeq[p] = seq
		switch state {
		case pageFree:
			continue
		case pageQuarantined:
			s.pageBad[p] = true
			s.pageSeq[p] = freeSeq // not addressable; reclaimed by erase
			s.pageUsed[p] = s.ps
			s.stats.QuarantinedPages++
			continue
		}
		used = append(used, pageInfo{p, seq})
		if seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	// Replay pages in sequence order so newer records win.
	sort.Slice(used, func(i, j int) bool { return used[i].seq < used[j].seq })
	for _, pi := range used {
		if err := s.b.Read(s.pageBase(pi.page), buf); err != nil {
			return err
		}
		s.replayPage(pi.page, pi.seq, buf)
	}
	if len(used) > 0 {
		last := used[len(used)-1]
		// Resume appending into the newest page if it has room.
		if s.pageUsed[last.page] < s.ps {
			s.head = last.page
		}
	}
	return nil
}

// resetMountState discards everything a rejected checkpoint mount may have
// half-built, so scanMount starts from a clean slate.
func (s *Store) resetMountState() {
	s.index = make(map[string]location)
	for p := 0; p < s.np; p++ {
		s.pageSeq[p] = 0
		s.pageUsed[p] = 0
		s.pageLive[p] = 0
		s.pageBad[p] = false
	}
	s.head = -1
	s.nextSeq = 0
}

// Page header states.
const (
	pageFree = iota
	pageInUse
	pageQuarantined
)

// parsePageHeader classifies a page by its 8-byte header, repairing a
// single drifted bit in passing.
func parsePageHeader(buf []byte, st *Stats) (uint32, int) {
	hdr := buf[:pageHeaderSize]
	if allFF(hdr) {
		return freeSeq, pageFree
	}
	if crc32.ChecksumIEEE(hdr[:4]) != leU32(hdr[4:]) {
		if n, ok := correctSingleBit(hdr, 4); ok {
			st.CorrectedBits += uint64(n)
		} else {
			return freeSeq, pageQuarantined
		}
	}
	seq := leU32(hdr)
	if seq == freeSeq {
		// A "free" sequence with a valid CRC cannot be written by the
		// store; treat it as damage.
		return freeSeq, pageQuarantined
	}
	return seq, pageInUse
}

// pageBase returns the backend address of page p.
func (s *Store) pageBase(p int) int { return p * s.ps }

// replayPage parses the records of one page into the index.
func (s *Store) replayPage(page int, seq uint32, buf []byte) {
	s.replayPageFrom(page, seq, buf, pageHeaderSize)
}

// replayPageFrom parses the records of one page into the index starting at
// byte offset start — pageHeaderSize for a full replay, or the used-bytes
// watermark a checkpoint recorded for the page, so only the tail appended
// since the checkpoint is parsed.
func (s *Store) replayPageFrom(page int, seq uint32, buf []byte, start int) {
	ps := len(buf)
	off := start
	for off+recHeaderSize+crcSize <= ps {
		size, ok := s.checkRecord(page, buf, off)
		if !ok {
			if !allFF(buf[off:min(off+recHeaderSize+crcSize, ps)]) {
				// Torn write or unrepairable damage: the tail is
				// unusable. Appending over its cleared bits would force
				// a read-modify-write erase of the whole page — a crash
				// during that erase destroys every committed record on
				// it — so the tail is retired instead.
				s.stats.TornSkipped++
				off = ps
				s.stats.RetiredPages++
			}
			break // free space from here on
		}
		flags := buf[off+1]
		keyLen := int(buf[off+2])
		key := string(buf[off+recHeaderSize : off+recHeaderSize+keyLen])
		s.supersede(key)
		loc := location{seq: seq, page: page, off: off, size: size, dead: flags&flagTombstone != 0}
		// Tombstones stay indexed (dead) so garbage collection keeps
		// copying them forward; dropping one while an older copy of
		// the key survived elsewhere would resurrect the old value
		// at the next mount.
		s.index[key] = loc
		s.pageLive[page] += size
		off += size
	}
	s.pageUsed[page] = off
}

// marginSense performs a slow margin-aware controller sense of one store
// page into dst (one full page) when the backend supports it. ok reports
// whether a sense was issued; a read failure (e.g. power loss mid-sense)
// is returned so callers on error-propagating paths can surface it.
func (s *Store) marginSense(page int, dst []byte) (bool, error) {
	b, can := s.b.(PageSenser)
	if !can {
		return false, nil
	}
	s.stats.MarginSenses++
	if err := b.SensePage(page, dst); err != nil {
		return false, err
	}
	return true, nil
}

// checkRecord validates (and if needed re-senses or single-bit-repairs, in
// buf) the record of page at off, returning its size. Returns ok=false when
// the bytes are free space or damaged beyond repair.
func (s *Store) checkRecord(page int, buf []byte, off int) (int, bool) {
	ps := len(buf)
	size, ok := recordSize(buf, off, ps)
	if ok && recordCRCValid(buf, off, size) {
		return size, true
	}
	if allFF(buf[off:min(off+recHeaderSize+crcSize, ps)]) {
		return 0, false // free space, not damage
	}
	// Re-sense before repairing: a marginal retention cell flickers per
	// read, so a fresh read of the page tail usually comes back clean —
	// and when flicker stacks on top of a genuinely stuck cell, the
	// re-read narrows the damage back within single-bit reach.
	for try := 0; try < senseRetries; try++ {
		s.stats.SenseRetries++
		if err := s.b.Read(s.pageBase(page)+off, buf[off:]); err != nil {
			break
		}
		if size, ok := recordSize(buf, off, ps); ok && recordCRCValid(buf, off, size) {
			s.stats.SenseRecovered++
			return size, true
		}
	}
	// Fast re-reads flicker too; a margin sense strips the read noise so
	// the repair below judges only persistent damage.
	if ok, err := s.marginSense(page, buf); err == nil && ok {
		if size, ok := recordSize(buf, off, ps); ok && recordCRCValid(buf, off, size) {
			s.stats.SenseRecovered++
			return size, true
		}
	}
	// The damage may be a single drifted cell anywhere in the record —
	// including inside the length fields, which is why the repair must
	// re-derive the size after each candidate flip.
	if size, ok := s.repairRecord(buf, off); ok {
		return size, true
	}
	return 0, false
}

// recordSize reads the record framing at off; ok=false if the header is
// not a plausible record.
func recordSize(buf []byte, off, ps int) (int, bool) {
	if buf[off] != recMagic {
		return 0, false
	}
	keyLen := int(buf[off+2])
	valLen := int(buf[off+3]) | int(buf[off+4])<<8
	size := recHeaderSize + keyLen + valLen + crcSize
	if keyLen == 0 || off+size > ps {
		return 0, false
	}
	return size, true
}

// recordCRCValid checks the trailer CRC of the record at [off, off+size).
func recordCRCValid(buf []byte, off, size int) bool {
	body := buf[off : off+size-crcSize]
	return crc32.ChecksumIEEE(body) == leU32(buf[off+size-crcSize:])
}

// repairRecord brute-forces a single-bit repair of the record starting at
// off: each candidate flip must yield a consistent frame whose CRC passes.
func (s *Store) repairRecord(buf []byte, off int) (int, bool) {
	ps := len(buf)
	// A flipped bit can sit anywhere in the record, whose true extent is
	// unknown when the length fields themselves are suspect. Bound the
	// search to the rest of the page.
	for i := off; i < ps; i++ {
		for bit := 0; bit < 8; bit++ {
			buf[i] ^= 1 << uint(bit)
			if size, ok := recordSize(buf, off, ps); ok && i < off+size && recordCRCValid(buf, off, size) {
				s.stats.CorrectedBits++
				return size, true
			}
			buf[i] ^= 1 << uint(bit)
		}
	}
	return 0, false
}

// supersede removes the previous copy of key (if any) from its page's
// must-preserve accounting.
func (s *Store) supersede(key string) {
	if old, ok := s.index[key]; ok {
		s.pageLive[old.page] -= old.size
	}
}

// Get returns the value stored for key, verifying the record CRC. A CRC
// failure first earns a bounded re-sense — a marginal retention cell reads
// differently on the next try, and a clean re-read proves the on-flash copy
// is intact — before falling back to brute-force single-bit repair of the
// returned copy.
func (s *Store) Get(key string) ([]byte, error) {
	loc, ok := s.index[key]
	if !ok || loc.dead {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	rec := make([]byte, loc.size)
	if err := s.b.Read(s.pageBase(loc.page)+loc.off, rec); err != nil {
		return nil, err
	}
	repaired := false
	if !recordCRCValid(rec, 0, len(rec)) {
		sensed := false
		for try := 0; try < senseRetries; try++ {
			s.stats.SenseRetries++
			if err := s.b.Read(s.pageBase(loc.page)+loc.off, rec); err != nil {
				return nil, err
			}
			if recordCRCValid(rec, 0, len(rec)) {
				s.stats.SenseRecovered++
				sensed = true
				break
			}
		}
		if !sensed {
			pg := make([]byte, s.ps)
			if ok, err := s.marginSense(loc.page, pg); err != nil {
				return nil, err
			} else if ok {
				copy(rec, pg[loc.off:loc.off+loc.size])
				if recordCRCValid(rec, 0, len(rec)) {
					s.stats.SenseRecovered++
					sensed = true
				}
			}
		}
		if !sensed {
			if _, ok := correctSingleBit(rec, len(rec)-crcSize); ok {
				s.stats.CorrectedBits++
				repaired = true
			} else {
				return nil, fmt.Errorf("%w: %q", ErrCorrupt, key)
			}
		}
	}
	keyLen := int(rec[2])
	valLen := int(rec[3]) | int(rec[4])<<8
	if recHeaderSize+keyLen+valLen+crcSize != len(rec) {
		return nil, fmt.Errorf("%w: %q", ErrCorrupt, key)
	}
	val := make([]byte, valLen)
	copy(val, rec[recHeaderSize+keyLen:recHeaderSize+keyLen+valLen])
	if repaired && !s.inGC {
		// Read repair: the on-flash copy still carries the drifted cell,
		// and a second drift in the same record would be beyond repair.
		// Re-appending moves the data to a clean copy; best-effort.
		_ = s.append(key, val, 0)
	}
	return val, nil
}

// Put stores key → val, appending a new record.
func (s *Store) Put(key string, val []byte) error {
	if err := s.append(key, val, 0); err != nil {
		return err
	}
	s.noteScanPut(key, val)
	return nil
}

// Delete removes key by appending a tombstone. Deleting an absent or
// already-deleted key is a no-op.
func (s *Store) Delete(key string) error {
	if loc, ok := s.index[key]; !ok || loc.dead {
		return nil
	}
	return s.append(key, nil, flagTombstone)
}

// Keys returns the live keys in sorted order.
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.index))
	for k, loc := range s.index {
		if !loc.dead {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.Keys()) }

// Compactions returns how many GC passes have run.
func (s *Store) Compactions() uint64 { return s.stats.Compactions }

// DataPages returns the number of pages available to the log — the whole
// backend, minus the checkpoint region when one is configured.
func (s *Store) DataPages() int { return s.np }

// Usage returns the store's live record bytes and the bytes consumed on
// in-use pages (page headers included; quarantined pages count as fully
// consumed — they are capacity lost until reclaimed).
func (s *Store) Usage() (liveBytes, usedBytes int) {
	for p := 0; p < s.np; p++ {
		if s.pageSeq[p] == freeSeq {
			if s.pageBad[p] {
				usedBytes += s.ps
			}
			continue
		}
		usedBytes += s.pageUsed[p]
		liveBytes += s.pageLive[p]
	}
	return liveBytes, usedBytes
}

// SpaceAmplification is the ratio of physical bytes consumed to live
// record bytes — 1.0 is a perfectly packed log. An empty store reports 1.
func (s *Store) SpaceAmplification() float64 {
	live, used := s.Usage()
	if live == 0 {
		return 1
	}
	return float64(used) / float64(live)
}

// Stats returns the store's resilience counters.
func (s *Store) Stats() Stats { return s.stats }

// append encodes and writes one record, garbage collecting as needed.
func (s *Store) append(key string, val []byte, flags byte) error {
	if len(key) == 0 || len(key) > 255 {
		return fmt.Errorf("%w: %d bytes", ErrBadKey, len(key))
	}
	size := recHeaderSize + len(key) + len(val) + crcSize
	if pageHeaderSize+size > s.ps {
		return fmt.Errorf("%w: %d bytes in a %d-byte page", ErrTooLarge, size, s.ps)
	}
	rec := make([]byte, size)
	rec[0] = recMagic
	rec[1] = flags
	rec[2] = byte(len(key))
	rec[3] = byte(len(val))
	rec[4] = byte(len(val) >> 8)
	copy(rec[recHeaderSize:], key)
	copy(rec[recHeaderSize+len(key):], val)
	putLEU32(rec[recHeaderSize+len(key)+len(val):], crc32.ChecksumIEEE(rec[:recHeaderSize+len(key)+len(val)]))

	gcBudget := 1
	for attempt := 0; attempt < 2+verifyRetries; attempt++ {
		page, off, err := s.reserve(size)
		if errors.Is(err, ErrFull) {
			if gcBudget == 0 || s.inGC {
				return s.fullErr()
			}
			gcBudget--
			if err := s.gc(); err != nil {
				if errors.Is(err, ErrFull) {
					return s.fullErr()
				}
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		err = s.commit(key, page, off, rec, flags)
		if err == nil {
			if s.inGC {
				return nil
			}
			// Post-commit maintenance: the record is durable, so a crash in
			// here settles the in-flight operation to its new value.
			if err := s.maybeCompact(); err != nil {
				return err
			}
			return s.maybeCheckpoint()
		}
		if !errors.Is(err, errVerifyMismatch) {
			return err
		}
		// The landing zone has a stuck cell: the page tail is retired
		// (commit did that); try again on fresh space.
	}
	return s.fullErr()
}

// fullErr classifies a terminal append failure: when unreclaimable pages
// have eaten the free pool, the store is read-only because the device is
// exhausted; otherwise it is logically full.
func (s *Store) fullErr() error {
	bad := 0
	for _, b := range s.pageBad {
		if b {
			bad++
		}
	}
	if bad > 0 && len(s.freePages()) == 0 {
		return fmt.Errorf("%w: %d of %d pages out of service", ErrDeviceReadOnly, bad, s.np)
	}
	return ErrFull
}

// errVerifyMismatch is the internal signal that a committed record did not
// read back correctly.
var errVerifyMismatch = errors.New("kvs: record read-back mismatch")

// reserve finds space for a record, opening a fresh page when needed.
// One free page is always held back as the garbage collector's copy
// target; only GC itself may consume it. When free pages run short,
// quarantined pages are reclaimed by erasing them.
func (s *Store) reserve(size int) (page, off int, err error) {
	if s.head >= 0 && s.pageSeq[s.head] != freeSeq && s.pageUsed[s.head]+size <= s.ps {
		return s.head, s.pageUsed[s.head], nil
	}
	minFree := 2
	if s.inGC {
		minFree = 1
	}
	free := s.freePages()
	if len(free) < minFree {
		s.reclaimQuarantined()
		free = s.freePages()
	}
	if len(free) < minFree {
		return 0, 0, ErrFull
	}
	if err := s.openPage(free[0]); err != nil {
		return 0, 0, err
	}
	return s.head, s.pageUsed[s.head], nil
}

// freePages lists usable free pages.
func (s *Store) freePages() []int {
	var free []int
	for p := range s.pageSeq {
		if s.pageSeq[p] == freeSeq && !s.pageBad[p] {
			free = append(free, p)
		}
	}
	return free
}

// reclaimQuarantined erases quarantined pages back into the free pool. A
// page whose erase fails (worn out, or interrupted) stays quarantined — and
// so does one whose erase *claims* success while cells stay stuck at 0: a
// worn page's marginal cells can survive the erase pulse silently, and
// returning such a page to the pool would let a fresh header land over
// residue of the quarantined content, serving stale bytes to replay. Every
// reclaim therefore ends with an erase-verify pass; only an all-0xFF page
// rejoins the pool.
func (s *Store) reclaimQuarantined() {
	var buf []byte
	for p := range s.pageBad {
		if !s.pageBad[p] {
			continue
		}
		if err := s.b.ErasePage(p); err != nil {
			continue
		}
		if buf == nil {
			buf = make([]byte, s.ps)
		}
		if err := s.b.Read(s.pageBase(p), buf); err != nil || !allFF(buf) {
			s.stats.ReclaimRejected++
			continue
		}
		s.pageBad[p] = false
		s.pageSeq[p] = freeSeq
		s.pageUsed[p] = 0
		s.pageLive[p] = 0
		s.stats.QuarantinedPages--
	}
}

// openPage stamps a free page with the next sequence number. Under
// WithVerify a header that does not read back intact quarantines the page
// and tries the next free one.
func (s *Store) openPage(p int) error {
	free := s.freePages()
	for _, cand := range free {
		if cand < p {
			continue
		}
		var hdr [pageHeaderSize]byte
		putLEU32(hdr[:], s.nextSeq)
		putLEU32(hdr[4:], crc32.ChecksumIEEE(hdr[:4]))
		// The header zone must be pristine for the same reason commit
		// prechecks its landing zone: a cleared cell would force a
		// read-modify-write erase. A page that is not cleanly writable
		// is quarantined and the next candidate tried.
		var zone [pageHeaderSize]byte
		if err := s.b.Read(s.pageBase(cand), zone[:]); err != nil {
			return err
		}
		if !allFF(zone[:]) {
			s.quarantineFree(cand)
			continue
		}
		if err := s.b.Write(s.pageBase(cand), hdr[:]); err != nil {
			if errors.Is(err, flash.ErrNeedsErase) || degradedWriteErr(err) {
				s.quarantineFree(cand)
				continue
			}
			return err
		}
		if s.verify {
			var got [pageHeaderSize]byte
			if err := s.b.Read(s.pageBase(cand), got[:]); err != nil {
				return err
			}
			if got != hdr {
				s.quarantineFree(cand)
				continue
			}
		}
		s.pageSeq[cand] = s.nextSeq
		s.pageUsed[cand] = pageHeaderSize
		s.pageLive[cand] = 0
		s.nextSeq++
		s.head = cand
		s.compactDue = true
		return nil
	}
	return ErrFull
}

// commit writes the record bytes and updates the index. Under WithVerify
// the landing zone is checked to be erased first — a stuck cell there would
// force a read-modify-write erase of the whole page, putting the page's
// committed records at risk — and the record is read back after the write;
// either failure retires the rest of the page and reports errVerifyMismatch
// so append retries on fresh space.
func (s *Store) commit(key string, page, off int, rec []byte, flags byte) error {
	base := s.pageBase(page)
	// Landing-zone precheck, always on: a cleared cell under the landing
	// zone (read disturb, stuck bit, torn remnant) would make the write
	// fall back to a read-modify-write erase of the whole page, and a
	// power loss during that erase destroys every committed record on it.
	// The store never erases in place through the write path.
	zone := make([]byte, len(rec))
	if err := s.b.Read(base+off, zone); err != nil {
		return err
	}
	if !allFF(zone) {
		s.stats.VerifyFailures++
		s.retireTail(page)
		return errVerifyMismatch
	}
	if err := s.b.Write(base+off, rec); err != nil {
		if errors.Is(err, flash.ErrNeedsErase) || degradedWriteErr(err) {
			// A silently stuck cell under the landing zone, or the health
			// gate refusing a degraded page: abandon the page tail rather
			// than erase over live records.
			s.stats.VerifyFailures++
			s.retireTail(page)
			return errVerifyMismatch
		}
		return err
	}
	if s.verify {
		got := make([]byte, len(rec))
		if err := s.b.Read(base+off, got); err != nil {
			return err
		}
		for i := range rec {
			if got[i] != rec[i] {
				s.stats.VerifyFailures++
				s.retireTail(page)
				return errVerifyMismatch
			}
		}
	}
	s.pageUsed[page] = off + len(rec)
	s.supersede(key)
	s.index[key] = location{
		seq: s.pageSeq[page], page: page, off: off, size: len(rec),
		dead: flags&flagTombstone != 0,
	}
	s.pageLive[page] += len(rec)
	return nil
}

// degradedWriteErr reports a write refused for page-health reasons: the
// core health gate protecting exact data, or a page fenced off by
// retirement. Both mean "this page is done", so the store routes around it
// the same way it routes around a stuck cell.
func degradedWriteErr(err error) bool {
	return errors.Is(err, core.ErrExactDegraded) || errors.Is(err, flash.ErrPageRetired)
}

// quarantineFree takes a free page out of circulation after it failed to
// open cleanly. The sequence number is burned: a partially landed header
// might already carry it, and replay must never see the same seq twice.
func (s *Store) quarantineFree(p int) {
	s.stats.VerifyFailures++
	s.stats.QuarantinedPages++
	s.pageBad[p] = true
	s.pageUsed[p] = s.ps
	s.nextSeq++
}

// retireTail abandons the unused remainder of a page after damage was
// found in it. The damaged bytes would poison everything appended after
// them (mount replay stops at a bad CRC), so the tail is unusable; the
// page's committed records stay valid and are recycled by GC later.
func (s *Store) retireTail(page int) {
	s.stats.RetiredPages++
	s.pageUsed[page] = s.ps
	if s.head == page {
		s.head = -1
	}
}

// gc is the forced compaction path: append found no space, so the page
// with the least live data is compacted regardless of its garbage ratio —
// minimum live bytes is the guaranteed-progress choice.
func (s *Store) gc() error {
	victim, best := -1, 1<<30
	for p := range s.pageSeq {
		if s.pageSeq[p] == freeSeq || p == s.head {
			continue
		}
		if s.pageLive[p] < best {
			victim, best = p, s.pageLive[p]
		}
	}
	if victim < 0 {
		return ErrFull
	}
	return s.compactPage(victim)
}

// compactPage erases one victim page after copying its live records to the
// log head. Crash-safe: copies carry later sequence numbers, so duplicates
// resolve in their favour at mount.
func (s *Store) compactPage(victim int) error {
	s.inGC = true
	defer func() { s.inGC = false }()
	// Copy the victim's must-preserve records (live values AND
	// tombstones) to the log head; copies carry later sequence numbers,
	// so a crash between copy and erase resolves in their favour.
	keys := make([]string, 0)
	for k, loc := range s.index {
		if loc.page == victim {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		loc := s.index[key]
		if loc.dead {
			if err := s.append(key, nil, flagTombstone); err != nil {
				return err
			}
			continue
		}
		val, err := s.Get(key)
		if err != nil {
			return err
		}
		if err := s.append(key, val, 0); err != nil {
			return err
		}
	}
	if err := s.b.ErasePage(victim); err != nil {
		if errors.Is(err, flash.ErrPowerLoss) {
			return err
		}
		// The victim cannot be erased (worn out, fenced): its live records
		// are already copied forward, so quarantine it as lost capacity
		// instead of failing the append that triggered this GC.
		s.pageBad[victim] = true
		s.pageSeq[victim] = freeSeq
		s.pageUsed[victim] = s.ps
		s.pageLive[victim] = 0
		s.stats.QuarantinedPages++
		if s.head == victim {
			s.head = -1
		}
		s.stats.Compactions++
		return nil
	}
	s.pageSeq[victim] = freeSeq
	s.pageUsed[victim] = 0
	s.pageLive[victim] = 0
	if s.head == victim {
		s.head = -1
	}
	s.stats.Compactions++
	return nil
}

// correctSingleBit brute-forces a single-bit repair of a CRC-protected
// buffer whose CRC32 trailer starts at crcOff: flip each bit (including
// the stored CRC's own) and keep the flip that makes the checksum pass.
func correctSingleBit(buf []byte, crcOff int) (int, bool) {
	for i := range buf {
		for bit := 0; bit < 8; bit++ {
			buf[i] ^= 1 << uint(bit)
			if crc32.ChecksumIEEE(buf[:crcOff]) == leU32(buf[crcOff:]) {
				return 1, true
			}
			buf[i] ^= 1 << uint(bit)
		}
	}
	return 0, false
}

// allFF reports whether every byte is erased.
func allFF(b []byte) bool {
	for _, v := range b {
		if v != 0xFF {
			return false
		}
	}
	return true
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLEU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
