package kvs

import (
	"errors"
	"fmt"
	"sort"

	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/isc"
)

// InFlashBackend is an optional Backend extension: the in-storage compute
// surface (multi-page bitwise senses and raw byte programs) the scan index
// rides on. coreBackend implements it; backends without it (an FTL, whose
// remapping would scramble the bitmap layout) silently fall back to host
// scans.
type InFlashBackend interface {
	SenseMulti(op flash.SenseOp, pages []int, invert []bool, dst []byte) error
	ProgramByte(addr int, v byte) error
	Banks() int
	MaxSensePages() int
}

// IndexField declares one indexed attribute of the records: how many
// buckets it quantises into and how to derive a record's bucket. Extract
// may return a negative value for records the field does not apply to;
// such records match no positive predicate on the field, and — because
// negated predicates are planned as "any other bucket" to stay sound
// against stale bits — they are invisible to negated predicates on it too.
// Fields queried under Not should therefore bucket every record.
type IndexField struct {
	Name    string
	Buckets int
	Extract func(key string, val []byte) int
}

// IndexSpec configures the in-flash scan index: the slot capacity and the
// indexed fields. Keys beyond MaxKeys disable the index (scans fall back
// to the host path) rather than failing writes.
type IndexSpec struct {
	MaxKeys int
	Fields  []IndexField
}

// WithScanIndex arms predicate-pushdown scans: per-(field,bucket) bitmaps
// are kept in a carved flash region and Scan evaluates predicates inside
// the array with multi-page senses, reading only matching records.
func WithScanIndex(spec IndexSpec) Option {
	return func(s *Store) { s.scanIdx = &scanIndexState{spec: spec} }
}

// KV is one scan result.
type KV struct {
	Key string
	Val []byte
}

// scanIndexState is the store's runtime scan-index bookkeeping. Slots are
// assigned to keys on first Put and stay stable for the key's lifetime;
// updates and deletes leave stale member bits behind (the bitmaps only
// ever program 1→0), which surface as false-positive candidates that the
// exact re-check on the fetched record filters out.
type scanIndexState struct {
	spec     IndexSpec
	ix       *isc.Index
	slotOf   map[string]int
	slotKey  []string
	disabled bool // capacity overflow or maintenance failure: host scans only
}

// layoutScanIndex carves the bitmap region (below the checkpoint slots,
// when both are configured) and builds the index. Runs at mount, after
// layoutCheckpoint.
func (s *Store) layoutScanIndex() error {
	si := s.scanIdx
	if si == nil {
		return nil
	}
	ifb, ok := s.b.(InFlashBackend)
	if !ok {
		si.disabled = true // backend cannot sense; Scan uses the host path
		return nil
	}
	if si.spec.MaxKeys <= 0 {
		return fmt.Errorf("kvs: scan index needs MaxKeys > 0, got %d", si.spec.MaxKeys)
	}
	cfg := isc.IndexConfig{
		PageSize:      s.ps,
		Banks:         ifb.Banks(),
		MaxSensePages: ifb.MaxSensePages(),
		Slots:         si.spec.MaxKeys,
	}
	for _, f := range si.spec.Fields {
		cfg.Fields = append(cfg.Fields, isc.Field{Name: f.Name, Buckets: f.Buckets})
	}
	reserve := cfg.Pages()
	if s.np-reserve < 3 {
		return fmt.Errorf("kvs: scan index region (%d of %d pages) leaves too little data space", reserve, s.np)
	}
	s.np -= reserve
	cfg.FirstPage = s.np
	ix, err := isc.NewIndex(iscDevice{Backend: s.b, ifb: ifb}, cfg)
	if err != nil {
		return err
	}
	si.ix = ix
	si.slotOf = make(map[string]int)
	return nil
}

// iscDevice adapts the store's backend pair to the isc device surface.
type iscDevice struct {
	Backend
	ifb InFlashBackend
}

func (d iscDevice) SenseMulti(op flash.SenseOp, pages []int, invert []bool, dst []byte) error {
	return d.ifb.SenseMulti(op, pages, invert, dst)
}

func (d iscDevice) ProgramByte(addr int, v byte) error { return d.ifb.ProgramByte(addr, v) }

// rebuildScanIndex re-derives the bitmaps from the mounted records: the
// index is an acceleration structure, so instead of journaling it, mount
// resets the region and re-adds every live key (compacting slots freed by
// deletes in passing).
func (s *Store) rebuildScanIndex() error {
	si := s.scanIdx
	if si == nil || si.ix == nil || si.disabled {
		return nil
	}
	if err := si.ix.Reset(); err != nil {
		return err
	}
	si.slotOf = make(map[string]int)
	si.slotKey = si.slotKey[:0]
	for _, key := range s.Keys() {
		val, err := s.Get(key)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				continue // unreadable record: it cannot match a scan either
			}
			return err
		}
		s.noteScanPut(key, val)
	}
	return nil
}

// noteScanPut indexes a committed record. Failures degrade, never corrupt:
// running out of slots or a program error disables the index, and scans
// fall back to the exact host path — a disabled index can only cost reads,
// not results.
func (s *Store) noteScanPut(key string, val []byte) {
	si := s.scanIdx
	if si == nil || si.ix == nil || si.disabled {
		return
	}
	slot, ok := si.slotOf[key]
	if !ok {
		if len(si.slotKey) >= si.ix.Slots() {
			si.disabled = true
			s.stats.ScanIndexDisabled++
			return
		}
		slot = len(si.slotKey)
		si.slotOf[key] = slot
		si.slotKey = append(si.slotKey, key)
	}
	for _, f := range si.spec.Fields {
		b := f.Extract(key, val)
		if b < 0 || b >= f.Buckets {
			continue
		}
		if err := si.ix.Add(slot, f.Name, b); err != nil {
			si.disabled = true
			s.stats.ScanIndexDisabled++
			return
		}
	}
}

// bucketsOf returns the Eval callback for one record.
func (si *scanIndexState) bucketsOf(key string, val []byte) func(string) int {
	return func(field string) int {
		for _, f := range si.spec.Fields {
			if f.Name == field {
				return f.Extract(key, val)
			}
		}
		return -1
	}
}

// Scan returns the records matching the predicate, sorted by key. With a
// live scan index the predicate is evaluated inside the flash array —
// bitmap senses, never bitmap reads — and only candidate records are
// fetched; each candidate is re-checked exactly on its bytes, so stale
// index bits (from updates and deletes) can add reads but never wrong
// results. Without an index (none configured, backend can't sense, or the
// index degraded) the host path scans every record.
func (s *Store) Scan(p isc.Pred) ([]KV, error) {
	si := s.scanIdx
	if si == nil || si.ix == nil || si.disabled {
		s.stats.ScanFallbacks++
		return s.ScanHost(p)
	}
	s.stats.Scans++
	// Plan the positive rewrite: index bits are a superset of the truth
	// (updates and deletes leave stale members), which only stays a
	// superset — recoverable by the re-check below — if no plan node
	// complements a bitmap. Not(Eq) becomes an In over the other buckets.
	plan := isc.Positive(p, func(field string) int {
		for _, f := range si.spec.Fields {
			if f.Name == field {
				return f.Buckets
			}
		}
		return 0
	})
	bm := make([]byte, si.ix.BitmapBytes())
	if err := si.ix.Query(plan, bm); err != nil {
		return nil, err
	}
	var out []KV
	for slot, key := range si.slotKey {
		if bm[slot/8]&(1<<(slot%8)) == 0 {
			continue
		}
		loc, ok := s.index[key]
		if !ok || loc.dead {
			continue // deleted since its bits were programmed
		}
		s.stats.ScanCandidates++
		val, err := s.Get(key)
		if err != nil {
			return nil, err
		}
		if !isc.Eval(p, si.bucketsOf(key, val)) {
			s.stats.ScanFalsePositives++
			continue // stale bit from an updated record
		}
		out = append(out, KV{Key: key, Val: val})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// ScanHost evaluates the predicate by reading every live record — the
// read-everything-to-host baseline Scan is measured against, and its
// exact-semantics oracle.
func (s *Store) ScanHost(p isc.Pred) ([]KV, error) {
	var out []KV
	for _, key := range s.Keys() {
		val, err := s.Get(key)
		if err != nil {
			return nil, err
		}
		of := func(field string) int {
			if s.scanIdx != nil {
				return s.scanIdx.bucketsOf(key, val)(field)
			}
			return -1
		}
		if isc.Eval(p, of) {
			out = append(out, KV{Key: key, Val: val})
		}
	}
	return out, nil
}

// ScanIndexed reports whether scans are currently served by the in-flash
// index.
func (s *Store) ScanIndexed() bool {
	return s.scanIdx != nil && s.scanIdx.ix != nil && !s.scanIdx.disabled
}
