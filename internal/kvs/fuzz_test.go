package kvs

import (
	"fmt"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// memBackend is a minimal flash-semantics backend for fuzzing: reads copy,
// writes can only clear bits, erase sets a page to 0xFF. No faults, no
// latency — mounts on it are pure functions of the byte image.
type memBackend struct {
	ps   int
	data []byte
}

func newMemBackend(ps, np int) *memBackend {
	data := make([]byte, ps*np)
	for i := range data {
		data[i] = 0xFF
	}
	return &memBackend{ps: ps, data: data}
}

func (m *memBackend) clone() *memBackend {
	c := &memBackend{ps: m.ps, data: make([]byte, len(m.data))}
	copy(c.data, m.data)
	return c
}

func (m *memBackend) Read(addr int, dst []byte) error {
	if addr < 0 || addr+len(dst) > len(m.data) {
		return fmt.Errorf("memBackend: read [%d,%d) out of range", addr, addr+len(dst))
	}
	copy(dst, m.data[addr:])
	return nil
}

func (m *memBackend) Write(addr int, data []byte) error {
	if addr < 0 || addr+len(data) > len(m.data) {
		return fmt.Errorf("memBackend: write [%d,%d) out of range", addr, addr+len(data))
	}
	for i, v := range data {
		m.data[addr+i] &= v
	}
	return nil
}

func (m *memBackend) ErasePage(p int) error {
	if p < 0 || (p+1)*m.ps > len(m.data) {
		return fmt.Errorf("memBackend: erase page %d out of range", p)
	}
	for i := p * m.ps; i < (p+1)*m.ps; i++ {
		m.data[i] = 0xFF
	}
	return nil
}

func (m *memBackend) PageSize() int { return m.ps }
func (m *memBackend) NumPages() int { return len(m.data) / m.ps }

// Fuzz geometry: 24 pages of 128 bytes, two 3-page checkpoint slots, 18
// data pages. The largest possible blob (8 single-byte-suffix keys) is 364
// bytes and fits the 384-byte slot.
const (
	fuzzPS    = 128
	fuzzNP    = 24
	fuzzSlots = 3
)

var fuzzKeys = [8]string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}

// fuzzWorkload drives n seeded operations against s. Capacity errors are
// tolerated; anything the workload cannot cause is not.
func fuzzWorkload(s *Store, rng *xrand.RNG, n int) {
	for i := 0; i < n; i++ {
		k := fuzzKeys[rng.Intn(len(fuzzKeys))]
		switch r := rng.Intn(10); {
		case r < 6:
			v := make([]byte, 1+rng.Intn(16))
			for j := range v {
				v[j] = rng.Byte()
			}
			_ = s.Put(k, v)
		case r < 8:
			_ = s.Delete(k)
		default:
			_, _ = s.Get(k)
		}
	}
}

// buildFuzzImage produces a realistic flash image: a seeded workload with
// two checkpoint generations and a post-checkpoint tail, so damage can land
// on a current checkpoint, a stale one, or neither.
func buildFuzzImage(seed, o1, o2 byte) *memBackend {
	m := newMemBackend(fuzzPS, fuzzNP)
	s, err := OpenOn(m,
		WithCheckpoint(CheckpointConfig{SlotPages: fuzzSlots}),
		WithCompaction(CompactionConfig{}))
	if err != nil {
		panic(err)
	}
	rng := xrand.New(uint64(seed)*2654435761 + 1)
	fuzzWorkload(s, rng, int(o1)%120)
	_ = s.Checkpoint()
	fuzzWorkload(s, rng, int(o2)%120)
	_ = s.Checkpoint()
	fuzzWorkload(s, rng, int(o1+o2)%60)
	return m
}

// mountImage mounts a fresh store over a copy of the image. The backend
// never fails, so neither may the mount.
func mountImage(t testing.TB, m *memBackend, scanOnly bool) *Store {
	t.Helper()
	s, err := OpenOn(m.clone(), WithCheckpoint(CheckpointConfig{SlotPages: fuzzSlots, ScanOnly: scanOnly}))
	if err != nil {
		t.Fatalf("mount (scanOnly=%v): %v", scanOnly, err)
	}
	return s
}

// compareMountStates asserts that two mounts of the same image agree on
// every piece of logical state — the differential oracle for the
// checkpointed mount path against the full scan.
func compareMountStates(t testing.TB, a, b *Store) {
	t.Helper()
	if a.np != b.np {
		t.Fatalf("data page counts differ: %d vs %d", a.np, b.np)
	}
	if len(a.index) != len(b.index) {
		t.Errorf("index sizes differ: %d vs %d", len(a.index), len(b.index))
	}
	for k, la := range a.index {
		lb, ok := b.index[k]
		if !ok {
			t.Errorf("key %q only in first mount (%+v)", k, la)
			continue
		}
		if la != lb {
			t.Errorf("key %q locations differ: %+v vs %+v", k, la, lb)
		}
	}
	for k := range b.index {
		if _, ok := a.index[k]; !ok {
			t.Errorf("key %q only in second mount (%+v)", k, b.index[k])
		}
	}
	for p := 0; p < a.np; p++ {
		if a.pageSeq[p] != b.pageSeq[p] || a.pageUsed[p] != b.pageUsed[p] ||
			a.pageLive[p] != b.pageLive[p] || a.pageBad[p] != b.pageBad[p] {
			t.Errorf("page %d state differs: seq %d/%d used %d/%d live %d/%d bad %v/%v",
				p, a.pageSeq[p], b.pageSeq[p], a.pageUsed[p], b.pageUsed[p],
				a.pageLive[p], b.pageLive[p], a.pageBad[p], b.pageBad[p])
		}
	}
	if a.head != b.head {
		t.Errorf("heads differ: %d vs %d", a.head, b.head)
	}
	if a.nextSeq != b.nextSeq {
		t.Errorf("nextSeq differs: %d vs %d", a.nextSeq, b.nextSeq)
	}
}

// checkMountInvariants asserts the structural invariants any mount — over
// any image, however damaged — must establish.
func checkMountInvariants(t testing.TB, s *Store) {
	t.Helper()
	live := make([]int, s.np)
	for k, loc := range s.index {
		if loc.page < 0 || loc.page >= s.np {
			t.Fatalf("key %q points at page %d of %d", k, loc.page, s.np)
		}
		if s.pageSeq[loc.page] == freeSeq {
			t.Errorf("key %q points at free/bad page %d", k, loc.page)
		}
		if loc.off < pageHeaderSize || loc.size < recHeaderSize+1+crcSize ||
			loc.off+loc.size > s.pageUsed[loc.page] {
			t.Errorf("key %q record [%d,%d) outside page %d's used %d bytes",
				k, loc.off, loc.off+loc.size, loc.page, s.pageUsed[loc.page])
		}
		live[loc.page] += loc.size
	}
	for p := 0; p < s.np; p++ {
		if s.pageUsed[p] < 0 || s.pageUsed[p] > s.ps {
			t.Errorf("page %d used %d outside [0,%d]", p, s.pageUsed[p], s.ps)
		}
		if s.pageLive[p] != live[p] {
			t.Errorf("page %d live %d, index accounts for %d", p, s.pageLive[p], live[p])
		}
		if s.pageBad[p] && (s.pageSeq[p] != freeSeq || s.pageUsed[p] != s.ps || s.pageLive[p] != 0) {
			t.Errorf("quarantined page %d has inconsistent accounting: seq %d used %d live %d",
				p, s.pageSeq[p], s.pageUsed[p], s.pageLive[p])
		}
		if s.pageSeq[p] != freeSeq && s.pageSeq[p] >= s.nextSeq {
			t.Errorf("page %d seq %d not below nextSeq %d", p, s.pageSeq[p], s.nextSeq)
		}
	}
	if s.head != -1 {
		if s.head < 0 || s.head >= s.np || s.pageSeq[s.head] == freeSeq || s.pageUsed[s.head] >= s.ps {
			t.Errorf("head %d is not an appendable page", s.head)
		}
	}
}

// FuzzMountReplay fuzzes damaged flash images into OpenOn. Two oracles:
//
//  1. Damage confined to the checkpoint region: the data log is genuine, so
//     whatever the mount makes of the damaged checkpoint — using it, using
//     the stale slot, or rejecting both — its final state must be *exactly*
//     the scan-only mount's.
//  2. Damage anywhere: mount must not panic and must establish the
//     structural invariants; when the checkpointed mount fell back to a
//     scan, it must again match the scan-only mount exactly.
func FuzzMountReplay(f *testing.F) {
	f.Add(byte(1), byte(40), byte(30), []byte{})
	f.Add(byte(2), byte(90), byte(80), []byte{0x00, 0x00, 0x00})
	f.Add(byte(3), byte(117), byte(64), []byte{0x05, 0x01, 0xFF, 0x30, 0x02, 0x00})
	f.Add(byte(7), byte(20), byte(0), []byte{0xFF, 0x00, 0xA5, 0x10, 0x00, 0x46})
	f.Fuzz(func(t *testing.T, seed, o1, o2 byte, damage []byte) {
		base := buildFuzzImage(seed, o1, o2)
		dataEnd := (fuzzNP - 2*fuzzSlots) * fuzzPS
		ckptLen := len(base.data) - dataEnd

		// Oracle 1: checkpoint-region damage, strict differential.
		img := base.clone()
		for i := 0; i+3 <= len(damage); i += 3 {
			off := (int(damage[i+1])<<8 | int(damage[i])) % ckptLen
			img.data[dataEnd+off] = damage[i+2]
		}
		a := mountImage(t, img, false)
		b := mountImage(t, img, true)
		checkMountInvariants(t, a)
		checkMountInvariants(t, b)
		compareMountStates(t, a, b)

		// Oracle 2: damage anywhere in the image.
		img = base.clone()
		for i := 0; i+3 <= len(damage); i += 3 {
			off := (int(damage[i+1])<<8 | int(damage[i])) % len(img.data)
			img.data[off] = damage[i+2]
		}
		c := mountImage(t, img, false)
		d := mountImage(t, img, true)
		checkMountInvariants(t, c)
		checkMountInvariants(t, d)
		if c.stats.ScanMounts == 1 {
			compareMountStates(t, c, d)
		}
	})
}
