package kvs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// newCkptStore mounts a store with checkpointing (and any extra options) on
// a fresh 128-byte-page device.
func newCkptStore(t *testing.T, pages, slotPages int, opts ...Option) (*Store, *core.Device) {
	t.Helper()
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = pages
	dev := core.MustNewDevice(spec)
	opts = append([]Option{WithCheckpoint(CheckpointConfig{SlotPages: slotPages})}, opts...)
	s, err := Open(dev, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func remount(t *testing.T, dev *core.Device, slotPages int, scanOnly bool) *Store {
	t.Helper()
	s, err := Open(dev, WithCheckpoint(CheckpointConfig{SlotPages: slotPages, ScanOnly: scanOnly}))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckpointMountRestoresIndex(t *testing.T) {
	s, dev := newCkptStore(t, 16, 3)
	if s.DataPages() != 10 {
		t.Fatalf("DataPages = %d, want 10", s.DataPages())
	}
	want := map[string][]byte{}
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("key%02d", i)
		v := bytes.Repeat([]byte{byte(i)}, 10+i)
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if err := s.Delete("key03"); err != nil {
		t.Fatal(err)
	}
	delete(want, "key03")
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d, want 1", s.Stats().Checkpoints)
	}

	s2 := remount(t, dev, 3, false)
	if st := s2.Stats(); st.CheckpointMounts != 1 || st.ScanMounts != 0 {
		t.Fatalf("mount stats = %+v, want a checkpoint mount", st)
	}
	if s2.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, err := s2.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("Get(%q) = %v, want %v", k, got, v)
		}
	}
	if _, err := s2.Get("key03"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key resurrected: %v", err)
	}
}

// TestCheckpointTailReplay checks the O(tail) property: writes after the
// checkpoint are recovered by replaying only the pages written since it.
func TestCheckpointTailReplay(t *testing.T) {
	s, dev := newCkptStore(t, 16, 3)
	for i := 0; i < 6; i++ {
		if err := s.Put(fmt.Sprintf("key%02d", i), bytes.Repeat([]byte{1}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail: an overwrite, a fresh key, a delete.
	if err := s.Put("key00", []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("tail", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("key05"); err != nil {
		t.Fatal(err)
	}

	s2 := remount(t, dev, 3, false)
	if st := s2.Stats(); st.CheckpointMounts != 1 {
		t.Fatalf("mount stats = %+v, want checkpoint mount", st)
	}
	if st := s2.Stats(); st.TailPagesReplayed == 0 {
		t.Fatal("no tail pages replayed despite post-checkpoint writes")
	}
	for k, v := range map[string]string{"key00": "newer", "tail": "fresh"} {
		got, err := s2.Get(k)
		if err != nil || string(got) != v {
			t.Fatalf("Get(%q) = %q, %v; want %q", k, got, err, v)
		}
	}
	if _, err := s2.Get("key05"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-checkpoint delete lost: %v", err)
	}
	// The scan-only differential baseline agrees in full.
	compareMountStates(t, s2, remount(t, dev, 3, true))
}

// TestCheckpointStaleSlotFallback tears the newest checkpoint; mount must
// fall back to the older slot and still converge with a scan-only mount.
func TestCheckpointStaleSlotFallback(t *testing.T) {
	s, dev := newCkptStore(t, 16, 3)
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("key%02d", i), bytes.Repeat([]byte{2}, 15)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key01", []byte("second-era")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key02", []byte("tail-era")); err != nil {
		t.Fatal(err)
	}
	newest := s.ckpt.slotBase[s.ckpt.lastSlot]
	// Tear the newest blob: a cleared bit in the magic fails its CRC.
	clearBit(t, dev, s.pageBase(newest), 0)

	s2 := remount(t, dev, 3, false)
	if st := s2.Stats(); st.CheckpointMounts != 1 {
		t.Fatalf("mount stats = %+v, want checkpoint mount from the stale slot", st)
	}
	for k, v := range map[string]string{"key01": "second-era", "key02": "tail-era"} {
		got, err := s2.Get(k)
		if err != nil || string(got) != v {
			t.Fatalf("Get(%q) = %q, %v; want %q", k, got, err, v)
		}
	}
	compareMountStates(t, s2, remount(t, dev, 3, true))
}

// TestCheckpointBothSlotsTornFallsBackToScan tears both slots; mount must
// scan and lose nothing.
func TestCheckpointBothSlotsTornFallsBackToScan(t *testing.T) {
	s, dev := newCkptStore(t, 16, 3)
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("key%02d", i), bytes.Repeat([]byte{3}, 15)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 2; slot++ {
		clearBit(t, dev, s.pageBase(s.ckpt.slotBase[slot]), 0)
	}
	s2 := remount(t, dev, 3, false)
	if st := s2.Stats(); st.ScanMounts != 1 || st.CheckpointMounts != 0 {
		t.Fatalf("mount stats = %+v, want scan fallback", st)
	}
	if s2.Len() != 5 {
		t.Fatalf("Len = %d after fallback scan, want 5", s2.Len())
	}
}

// TestCheckpointSlotRotation: consecutive checkpoints ping-pong between the
// two slots, so a failure mid-write can never destroy the only good copy.
func TestCheckpointSlotRotation(t *testing.T) {
	s, _ := newCkptStore(t, 16, 3)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	slots := []int{}
	for i := 0; i < 3; i++ {
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s.ckpt.lastSlot)
	}
	if slots[0] == slots[1] || slots[1] == slots[2] {
		t.Fatalf("checkpoints did not alternate slots: %v", slots)
	}
	if s.ckpt.cpSeq != 3 {
		t.Fatalf("cpSeq = %d, want 3", s.ckpt.cpSeq)
	}
}

// TestCheckpointOversizeBlob: a slot too small for the store's state must
// fail the checkpoint cleanly and leave the previous one in force.
func TestCheckpointOversizeBlob(t *testing.T) {
	// 14 data pages need a 216-byte table before any keys — over one
	// 128-byte slot page.
	s, dev := newCkptStore(t, 16, 1)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("oversize checkpoint did not fail")
	}
	if s.Stats().CheckpointFailures != 1 {
		t.Fatalf("CheckpointFailures = %d, want 1", s.Stats().CheckpointFailures)
	}
	s2 := remount(t, dev, 1, false)
	if st := s2.Stats(); st.ScanMounts != 1 {
		t.Fatalf("mount stats = %+v, want scan (no checkpoint ever committed)", st)
	}
	if got, err := s2.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("Get(k) = %q, %v", got, err)
	}
}

// TestCheckpointInterval: WithCheckpoint{Interval: N} checkpoints
// automatically every N committed appends.
func TestCheckpointInterval(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 16
	dev := core.MustNewDevice(spec)
	s, err := Open(dev, WithCheckpoint(CheckpointConfig{SlotPages: 3, Interval: 4}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := s.Put(fmt.Sprintf("key%02d", i%5), []byte("val")); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Checkpoints; got != 2 {
		t.Fatalf("Checkpoints after 9 appends at interval 4 = %d, want 2", got)
	}
	s2 := remount(t, dev, 3, false)
	if st := s2.Stats(); st.CheckpointMounts != 1 {
		t.Fatalf("mount stats = %+v, want checkpoint mount", st)
	}
}

// TestCheckpointSeqFloorSurvivesScanMount: sequence numbers must stay
// monotonic across mounts even when the mount path is a scan — otherwise a
// recycled sequence number could collide with a stale checkpoint's page
// table on a later mount.
func TestCheckpointSeqFloorSurvivesScanMount(t *testing.T) {
	s, dev := newCkptStore(t, 16, 3)
	for i := 0; i < 20; i++ {
		if err := s.Put("k", bytes.Repeat([]byte{4}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	floor := s.nextSeq

	// A scan-only mount (checkpoint ignored for state, not for the floor)
	// must not restart sequences below the checkpoint's horizon.
	s2 := remount(t, dev, 3, true)
	if s2.nextSeq < floor {
		t.Fatalf("scan mount nextSeq = %d, below checkpoint floor %d", s2.nextSeq, floor)
	}
	// And the checkpointed mount agrees exactly.
	s3 := remount(t, dev, 3, false)
	if s3.nextSeq != s2.nextSeq {
		t.Fatalf("mount paths disagree on nextSeq: ckpt %d vs scan %d", s3.nextSeq, s2.nextSeq)
	}
}

// TestCheckpointAfterGC: pages erased and reused by compaction after the
// checkpoint are classified by the divergence rules, not rejected.
func TestCheckpointAfterGC(t *testing.T) {
	s, dev := newCkptStore(t, 16, 3, WithCompaction(CompactionConfig{}))
	want := map[string][]byte{}
	put := func(k string, v []byte) {
		t.Helper()
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := 0; i < 6; i++ {
		put(fmt.Sprintf("key%02d", i), bytes.Repeat([]byte{byte(i)}, 20))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Churn hard enough to force GC over the checkpointed pages.
	for i := 0; i < 60; i++ {
		put(fmt.Sprintf("key%02d", i%3), bytes.Repeat([]byte{byte(i)}, 30))
	}
	if s.Compactions() == 0 {
		t.Fatal("churn did not trigger compaction")
	}

	s2 := remount(t, dev, 3, false)
	if st := s2.Stats(); st.CheckpointMounts != 1 {
		t.Fatalf("mount stats = %+v, want checkpoint mount over GC'd log", st)
	}
	for k, v := range want {
		got, err := s2.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("Get(%q) = %v, %v; want %v", k, got, err, v)
		}
	}
	compareMountStates(t, s2, remount(t, dev, 3, true))
}

// TestCheckpointUnconfigured: Checkpoint without WithCheckpoint errors.
func TestCheckpointUnconfigured(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 8
	dev := core.MustNewDevice(spec)
	s, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Checkpoint() = %v, want ErrNoCheckpoint", err)
	}
}

// TestCheckpointLayoutRejectsTinyGeometry: the reserved region must leave
// usable data space.
func TestCheckpointLayoutRejectsTinyGeometry(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 6
	spec.Banks = 2 // six pages must split evenly across banks
	dev := core.MustNewDevice(spec)
	if _, err := Open(dev, WithCheckpoint(CheckpointConfig{SlotPages: 2})); err == nil {
		t.Fatal("mount accepted a checkpoint region leaving <3 data pages")
	}
}
