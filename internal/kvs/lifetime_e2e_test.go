package kvs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/ftl"
)

// TestLifetimeGracefulDegradation drives a tiny managed stack — kvs on a
// journaled FTL with a spare pool, health gate on — until the flash is
// completely worn out, and asserts the endurance-management contract:
//
//  1. healthy phase: writes succeed;
//  2. degraded phase: worn pages are retired onto spares behind the
//     store's back, writes keep succeeding until the pool is exhausted;
//  3. end of life: the store reports ErrDeviceReadOnly rather than
//     failing with something that looks like a bug;
//  4. at every point, acknowledged exact data reads back exactly — wearing
//     out loses capacity, never committed bytes;
//  5. after the store is read-only, the device still accepts approximate
//     writes on degraded pages while refusing exact ones — the
//     approx-aware degradation story end to end.
func TestLifetimeGracefulDegradation(t *testing.T) {
	s := flash.DefaultSpec()
	s.PageSize = 64
	s.NumPages = 24
	s.Banks = 1
	s.EnduranceCycles = 10
	dev := core.MustNewDevice(s, core.WithHealthGate())
	f, err := ftl.Open(dev, ftl.WithSpares(4), ftl.WithSwapDelta(1000))
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenOn(f, WithVerify())
	if err != nil {
		t.Fatal(err)
	}

	keys := []string{"ka", "kb", "kc", "kd", "ke", "kf"}
	shadow := map[string][]byte{} // acknowledged writes, the ground truth
	verifyShadow := func(when string) {
		t.Helper()
		for k, want := range shadow {
			got, err := st.Get(k)
			if err != nil {
				t.Fatalf("%s: Get(%q): %v", when, k, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: acked data corrupted: %q reads %x, want %x", when, k, got, want)
			}
		}
	}

	firstRetire, readOnlyAt := -1, -1
	for i := 0; i < 30000 && readOnlyAt < 0; i++ {
		k := keys[i%len(keys)]
		val := make([]byte, 16)
		for j := range val {
			val[j] = byte(i + j*7)
		}
		err := st.Put(k, val)
		switch {
		case err == nil:
			shadow[k] = val
		case errors.Is(err, ErrDeviceReadOnly):
			readOnlyAt = i
		case errors.Is(err, ErrFull):
			// Transient while the last pages die; never acked, so ignored.
		default:
			t.Fatalf("write %d: unexpected error %v", i, err)
		}
		if firstRetire < 0 && f.Stats().Retirements > 0 {
			firstRetire = i
		}
		if i%25 == 0 {
			verifyShadow(fmt.Sprintf("write %d", i))
		}
	}

	if readOnlyAt < 0 {
		t.Fatal("store never reached ErrDeviceReadOnly; device refuses to die")
	}
	if firstRetire < 0 || firstRetire >= readOnlyAt {
		t.Fatalf("degradation out of order: first retirement at %d, read-only at %d",
			firstRetire, readOnlyAt)
	}
	if free := f.SparesRemaining(); free != 0 {
		t.Errorf("read-only with %d spares still free", free)
	}
	if h := f.Health(); h.RetiredData == 0 || h.SparesFree != 0 {
		t.Errorf("health at end of life: %+v", h)
	}

	// The read path must survive end of life: every acknowledged value is
	// still exactly there.
	verifyShadow("after read-only")

	// Approx-aware degradation: a worn (but not fenced) page refuses exact
	// data yet still takes approximate writes.
	fl := dev.Flash()
	demo := -1
	for p := 0; p < s.NumPages; p++ {
		if fl.WornOut(p) && !fl.Retired(p) {
			demo = p
			break
		}
	}
	if demo < 0 {
		t.Fatal("no worn unfenced page at end of life")
	}
	zeros := make([]byte, 8)
	if err := dev.Write(fl.PageBase(demo), zeros); !errors.Is(err, core.ErrExactDegraded) {
		t.Fatalf("exact write on degraded page: got %v, want ErrExactDegraded", err)
	}
	if err := dev.SetApproxRegion(0, s.PageSize*s.NumPages); err != nil {
		t.Fatal(err)
	}
	dev.SetThreshold(70000) // saturates to unlimited error budget
	if err := dev.Write(fl.PageBase(demo), zeros); err != nil {
		t.Fatalf("approximate write on degraded page: %v", err)
	}
}
