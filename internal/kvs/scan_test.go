package kvs

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/isc"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// scanSpec returns the IndexSpec the scan tests use: records carry their
// status bucket in val[0] and region in val[1].
func scanSpec(maxKeys int) IndexSpec {
	return IndexSpec{
		MaxKeys: maxKeys,
		Fields: []IndexField{
			{Name: "status", Buckets: 4, Extract: func(_ string, v []byte) int {
				if len(v) < 1 {
					return -1
				}
				return int(v[0]) % 4
			}},
			{Name: "region", Buckets: 3, Extract: func(_ string, v []byte) int {
				if len(v) < 2 {
					return -1
				}
				return int(v[1]) % 3
			}},
		},
	}
}

func newScanStore(t *testing.T) (*Store, *core.Device) {
	t.Helper()
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 32
	spec.Banks = 2 // keeps the bitmap stride (and the carve) small
	dev := core.MustNewDevice(spec)
	s, err := Open(dev, WithScanIndex(scanSpec(64)))
	if err != nil {
		t.Fatal(err)
	}
	if !s.ScanIndexed() {
		t.Fatal("scan index did not come up on a core device")
	}
	return s, dev
}

// randScanPred draws a predicate over the status/region schema.
func randScanPred(rng *xrand.RNG) isc.Pred {
	leaf := func() isc.Pred {
		if rng.Intn(2) == 0 {
			return isc.Eq("status", rng.Intn(4))
		}
		return isc.Eq("region", rng.Intn(3))
	}
	switch rng.Intn(5) {
	case 0:
		return leaf()
	case 1:
		return isc.Not(leaf())
	case 2:
		return isc.And(leaf(), leaf())
	case 3:
		return isc.Or(leaf(), leaf(), leaf())
	default:
		return isc.And(isc.Or(leaf(), leaf()), isc.Not(leaf()))
	}
}

func sameKVs(t *testing.T, tag string, got, want []KV) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, host oracle has %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || !bytes.Equal(got[i].Val, want[i].Val) {
			t.Fatalf("%s: result %d = %q/%v, want %q/%v",
				tag, i, got[i].Key, got[i].Val, want[i].Key, want[i].Val)
		}
	}
}

// TestScanMatchesHostScan: under a churning workload — updates moving keys
// between buckets, deletes, GC passes, remounts — every indexed scan must
// return exactly what the read-everything host scan returns, while never
// reading the bitmap pages.
func TestScanMatchesHostScan(t *testing.T) {
	s, dev := newScanStore(t)
	rng := xrand.New(0x5CA9)
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = fmt.Sprintf("dev%02d", i)
	}
	val := func() []byte {
		v := make([]byte, 2+rng.Intn(20))
		for i := range v {
			v[i] = rng.Byte()
		}
		return v
	}
	// Stats reset on remount; fold them so the end-of-test assertions see
	// the whole run.
	var scans, fallbacks, falsePos, compactions uint64
	fold := func() {
		st := s.Stats()
		scans += st.Scans
		fallbacks += st.ScanFallbacks
		falsePos += st.ScanFalsePositives
		compactions += st.Compactions
	}
	for step := 0; step < 600; step++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(10) {
		case 0:
			if err := s.Delete(k); err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
		case 9:
			fold()
			var err error
			s, err = Open(dev, WithScanIndex(scanSpec(64)))
			if err != nil {
				t.Fatalf("step %d: remount: %v", step, err)
			}
			if !s.ScanIndexed() {
				t.Fatalf("step %d: index gone after remount", step)
			}
		default:
			if err := s.Put(k, val()); err != nil {
				t.Fatalf("step %d: put: %v", step, err)
			}
		}
		if step%10 != 0 {
			continue
		}
		p := randScanPred(rng)
		got, err := s.Scan(p)
		if err != nil {
			t.Fatalf("step %d: scan %s: %v", step, p, err)
		}
		want, err := s.ScanHost(p)
		if err != nil {
			t.Fatalf("step %d: host scan %s: %v", step, p, err)
		}
		sameKVs(t, fmt.Sprintf("step %d %s", step, p), got, want)
	}
	fold()
	if compactions == 0 {
		t.Error("workload never triggered GC; the stale-bit path went unexercised")
	}
	if scans == 0 || fallbacks != 0 {
		t.Errorf("scans %d indexed, %d fallbacks; want all indexed", scans, fallbacks)
	}
	if falsePos == 0 {
		t.Error("no stale-bit false positives despite updates and deletes")
	}
}

// TestScanFallbackWithoutExtension: on a backend that cannot sense, scans
// must silently take the host path with identical results.
func TestScanFallbackWithoutExtension(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 32
	spec.Banks = 2
	dev := core.MustNewDevice(spec)
	// plainBackend's method set is exactly Backend: the extension methods
	// of the wrapped coreBackend are hidden from type assertions.
	type plainBackend struct{ Backend }
	s, err := OpenOn(plainBackend{coreBackend{dev}}, WithScanIndex(scanSpec(64)))
	if err != nil {
		t.Fatal(err)
	}
	if s.ScanIndexed() {
		t.Fatal("index claims to be live on a backend without the extension")
	}
	for i := 0; i < 12; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte{byte(i), byte(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	p := isc.Eq("status", 1)
	got, err := s.Scan(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.ScanHost(p)
	if err != nil {
		t.Fatal(err)
	}
	sameKVs(t, "fallback", got, want)
	if got[0].Val[0]%4 != 1 {
		t.Fatalf("fallback scan returned a non-matching record: %v", got[0].Val)
	}
	if s.Stats().ScanFallbacks == 0 {
		t.Error("fallback scans not counted")
	}
}

// TestScanIndexOverflowDegrades: more keys than slots must disable the
// index — results stay exact via the host path, writes never fail.
func TestScanIndexOverflowDegrades(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 32
	spec.Banks = 2
	dev := core.MustNewDevice(spec)
	s, err := Open(dev, WithScanIndex(scanSpec(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte{byte(i), 0, 0}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if s.ScanIndexed() {
		t.Fatal("index still live past its slot capacity")
	}
	if s.Stats().ScanIndexDisabled == 0 {
		t.Error("degradation not counted")
	}
	got, err := s.Scan(isc.Eq("status", 2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.ScanHost(isc.Eq("status", 2))
	if err != nil {
		t.Fatal(err)
	}
	sameKVs(t, "overflow", got, want)
}

// TestScanIndexMaintenanceEraseFree: steady-state index maintenance (Puts,
// updates, deletes) must never erase index pages — only mounts reset the
// region.
func TestScanIndexMaintenanceEraseFree(t *testing.T) {
	s, dev := newScanStore(t)
	for i := 0; i < 40; i++ {
		// Updates that move the key between buckets leave stale bits
		// instead of rewriting bitmaps.
		if err := s.Put("hot", []byte{byte(i), byte(i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Data-log GC may erase data pages; assert the index region (which
	// starts where the data pages end) specifically: one erase per page,
	// from the mount-time reset only.
	for p := s.np; p < dev.Flash().Spec().NumPages; p++ {
		if w := dev.Flash().Wear(p); w != 1 {
			t.Errorf("index page %d wear %d, want 1", p, w)
		}
	}
}

// BenchmarkScanIndexed measures one pushdown scan over a populated store.
func BenchmarkScanIndexed(b *testing.B) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 64
	spec.Banks = 2
	dev := core.MustNewDevice(spec)
	s, err := Open(dev, WithScanIndex(scanSpec(64)))
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(9)
	for i := 0; i < 40; i++ {
		if err := s.Put(fmt.Sprintf("dev%02d", i), []byte{rng.Byte(), rng.Byte(), 0, 0}); err != nil {
			b.Fatal(err)
		}
	}
	p := isc.And(isc.Eq("status", 1), isc.Not(isc.Eq("region", 2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Scan(p); err != nil {
			b.Fatal(err)
		}
	}
}
