package kvs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// TestModelBasedOperations drives the store with a random sequence of
// Put/Delete/Get/remount operations mirrored against an in-memory map.
// After every step the store must agree with the model; ErrFull is the only
// tolerated divergence (the model has no capacity), at which point the
// failed mutation is rolled back in the model too.
func TestModelBasedOperations(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 10
	spec.Banks = 2 // ten pages must split evenly across banks
	dev := core.MustNewDevice(spec)
	store, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string][]byte{}
	rng := xrand.New(20260706)
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}

	for step := 0; step < 1500; step++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // Put
			v := make([]byte, rng.Intn(30))
			for i := range v {
				v[i] = rng.Byte()
			}
			err := store.Put(k, v)
			if errors.Is(err, ErrFull) {
				continue // model unchanged
			}
			if err != nil {
				t.Fatalf("step %d: put: %v", step, err)
			}
			model[k] = v
		case 5: // Delete
			err := store.Delete(k)
			if errors.Is(err, ErrFull) {
				continue
			}
			if err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			delete(model, k)
		case 6, 7, 8: // Get
			got, err := store.Get(k)
			want, ok := model[k]
			if !ok {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("step %d: Get(%q) = %v, want ErrNotFound", step, k, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: Get(%q): %v", step, k, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: Get(%q) = %v, want %v", step, k, got, want)
			}
		case 9: // Remount (reboot)
			store, err = Open(dev)
			if err != nil {
				t.Fatalf("step %d: remount: %v", step, err)
			}
		}
		if store.Len() != len(model) {
			t.Fatalf("step %d: Len %d != model %d (keys %v vs %v)",
				step, store.Len(), len(model), store.Keys(), model)
		}
	}
	t.Logf("final: %d keys, %d compactions, %d erases",
		store.Len(), store.Compactions(), dev.Flash().Stats().Erases)
}

// TestModelCompactionCheckpoint is the production-shaped model test: the
// same map-oracle workload, but with proactive compaction and interval
// checkpointing armed, run long enough to cross many GC passes and
// checkpoint generations. Every remount must restore exactly the model's
// contents, agree byte-for-byte with a scan-only differential mount, and
// keep live-vs-physical space amplification bounded.
func TestModelCompactionCheckpoint(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 40 // two 6-page checkpoint slots + 28 data pages
	dev := core.MustNewDevice(spec)
	mount := func(scanOnly bool) (*Store, error) {
		return Open(dev,
			WithCompaction(CompactionConfig{}),
			WithCheckpoint(CheckpointConfig{SlotPages: 6, Interval: 25, ScanOnly: scanOnly}))
	}
	store, err := mount(false)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string][]byte{}
	rng := xrand.New(20260808)
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}

	var compactions, checkpoints, ckptMounts, scanMounts uint64
	fold := func(st Stats) {
		compactions += st.Compactions
		checkpoints += st.Checkpoints
	}
	remounts := 0
	for step := 0; step < 3000; step++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // Put
			v := make([]byte, rng.Intn(25))
			for i := range v {
				v[i] = rng.Byte()
			}
			// With 16 small keys on 28 data pages and GC armed, capacity
			// errors would be a bug, not a workload hazard.
			if err := store.Put(k, v); err != nil {
				t.Fatalf("step %d: put: %v", step, err)
			}
			model[k] = v
		case 5: // Delete
			if err := store.Delete(k); err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			delete(model, k)
		case 6, 7, 8: // Get
			got, err := store.Get(k)
			want, ok := model[k]
			if !ok {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("step %d: Get(%q) = %v, want ErrNotFound", step, k, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: Get(%q): %v", step, k, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: Get(%q) = %v, want %v", step, k, got, want)
			}
		case 9: // Remount (reboot)
			fold(store.Stats())
			store, err = mount(false)
			if err != nil {
				t.Fatalf("step %d: remount: %v", step, err)
			}
			remounts++
			if store.Stats().CheckpointMounts == 1 {
				ckptMounts++
			} else {
				scanMounts++
			}

			// Differential: a scan-only mount of the same image must agree
			// on every piece of logical state.
			scan, err := mount(true)
			if err != nil {
				t.Fatalf("step %d: differential scan mount: %v", step, err)
			}
			compareMountStates(t, store, scan)

			// Full contents check against the oracle.
			if store.Len() != len(model) {
				t.Fatalf("step %d: after remount Len %d != model %d", step, store.Len(), len(model))
			}
			for mk, mv := range model {
				got, err := store.Get(mk)
				if err != nil || !bytes.Equal(got, mv) {
					t.Fatalf("step %d: after remount Get(%q) = %v, %v; want %v", step, mk, got, err, mv)
				}
			}

			// Bounded space amplification: live bytes are tiny here, so the
			// dominant term is the partially-filled pages GC has not packed
			// yet; the garbage-ratio ceiling keeps it a small constant.
			live, used := store.Usage()
			if live > 0 && used > 0 {
				if amp := store.SpaceAmplification(); amp > 5.0 {
					t.Fatalf("step %d: space amplification %.2f (live %d, used %d)", step, amp, live, used)
				}
			}
		}
		if store.Len() != len(model) {
			t.Fatalf("step %d: Len %d != model %d", step, store.Len(), len(model))
		}
	}
	fold(store.Stats())
	if compactions == 0 {
		t.Error("workload never triggered compaction")
	}
	if checkpoints == 0 {
		t.Error("workload never committed a checkpoint")
	}
	if ckptMounts == 0 {
		t.Error("no remount ever restored from a checkpoint")
	}
	t.Logf("final: %d keys, %d remounts (%d checkpointed, %d scans), %d compactions, %d checkpoints, amp %.2f",
		store.Len(), remounts, ckptMounts, scanMounts, compactions, checkpoints, store.SpaceAmplification())
}
