package kvs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// TestModelBasedOperations drives the store with a random sequence of
// Put/Delete/Get/remount operations mirrored against an in-memory map.
// After every step the store must agree with the model; ErrFull is the only
// tolerated divergence (the model has no capacity), at which point the
// failed mutation is rolled back in the model too.
func TestModelBasedOperations(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 10
	dev := core.MustNewDevice(spec)
	store, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	model := map[string][]byte{}
	rng := xrand.New(20260706)
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}

	for step := 0; step < 1500; step++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // Put
			v := make([]byte, rng.Intn(30))
			for i := range v {
				v[i] = rng.Byte()
			}
			err := store.Put(k, v)
			if errors.Is(err, ErrFull) {
				continue // model unchanged
			}
			if err != nil {
				t.Fatalf("step %d: put: %v", step, err)
			}
			model[k] = v
		case 5: // Delete
			err := store.Delete(k)
			if errors.Is(err, ErrFull) {
				continue
			}
			if err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			delete(model, k)
		case 6, 7, 8: // Get
			got, err := store.Get(k)
			want, ok := model[k]
			if !ok {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("step %d: Get(%q) = %v, want ErrNotFound", step, k, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: Get(%q): %v", step, k, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: Get(%q) = %v, want %v", step, k, got, want)
			}
		case 9: // Remount (reboot)
			store, err = Open(dev)
			if err != nil {
				t.Fatalf("step %d: remount: %v", step, err)
			}
		}
		if store.Len() != len(model) {
			t.Fatalf("step %d: Len %d != model %d (keys %v vs %v)",
				step, store.Len(), len(model), store.Keys(), model)
		}
	}
	t.Logf("final: %d keys, %d compactions, %d erases",
		store.Len(), store.Compactions(), dev.Flash().Stats().Erases)
}
