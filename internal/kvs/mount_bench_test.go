package kvs

import (
	"fmt"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// benchMountDevice builds a populated, checkpointed store image once per
// benchmark: 100 keys written three times each (so GC has run and the log
// carries garbage), then a final checkpoint.
func benchMountDevice(b *testing.B) *core.Device {
	b.Helper()
	spec := flash.DefaultSpec()
	spec.PageSize = 1024
	spec.NumPages = 256
	dev := core.MustNewDevice(spec)
	s, err := Open(dev,
		WithCheckpoint(CheckpointConfig{SlotPages: 8}),
		WithCompaction(CompactionConfig{}))
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 64)
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			val[0] = byte(round)
			if err := s.Put(fmt.Sprintf("key%04d", i), val); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	return dev
}

func benchMount(b *testing.B, scanOnly bool) {
	dev := benchMountDevice(b)
	s, err := Open(dev, WithCheckpoint(CheckpointConfig{SlotPages: 8, ScanOnly: scanOnly}))
	if err != nil {
		b.Fatal(err)
	}
	if !scanOnly && s.Stats().CheckpointMounts != 1 {
		b.Fatalf("mount stats = %+v, want checkpoint mount", s.Stats())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(dev, WithCheckpoint(CheckpointConfig{SlotPages: 8, ScanOnly: scanOnly})); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMountFullScan(b *testing.B)     { benchMount(b, true) }
func BenchmarkMountCheckpointed(b *testing.B) { benchMount(b, false) }
