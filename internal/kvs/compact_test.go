package kvs

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// TestProactiveCompactionFires: a hot overwrite workload must trigger GC
// ahead of need — no append ever sees ErrFull — and keep space
// amplification bounded by the garbage-ratio ceiling.
func TestProactiveCompactionFires(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 16
	dev := core.MustNewDevice(spec)
	s, err := Open(dev, WithCompaction(CompactionConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key%d", i%4)
		v := bytes.Repeat([]byte{byte(i)}, 40)
		if err := s.Put(k, v); err != nil {
			t.Fatalf("put %d: %v (proactive GC should prevent ErrFull)", i, err)
		}
		want[k] = v
	}
	if s.Compactions() == 0 {
		t.Fatal("sustained overwrites never triggered compaction")
	}
	if amp := s.SpaceAmplification(); amp > 3.0 {
		t.Fatalf("space amplification %.2f after churn, want <= 3.0", amp)
	}
	for k, v := range want {
		got, err := s.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("Get(%q) = %v, %v; want %v", k, got, err, v)
		}
	}
}

// TestCompactionVictimGarbageFloor: a page below MinVictimGarbage never
// qualifies as a proactive victim.
func TestCompactionVictimGarbageFloor(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 8
	dev := core.MustNewDevice(spec)
	s, err := Open(dev, WithCompaction(CompactionConfig{MinVictimGarbage: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic accounting: page 1 is 40% garbage — under the 50% floor.
	s.pageSeq[1] = 1
	s.pageUsed[1] = pageHeaderSize + 100
	s.pageLive[1] = 60
	s.head = -1
	if v := s.pickVictim(); v != -1 {
		t.Fatalf("pickVictim = %d, want none (garbage below floor)", v)
	}
	// At 60% garbage it qualifies.
	s.pageLive[1] = 40
	if v := s.pickVictim(); v != 1 {
		t.Fatalf("pickVictim = %d, want 1", v)
	}
}

// TestCompactionWearBias: between equal-garbage victims, the low-wear page
// wins, so collection pressure doubles as wear leveling.
func TestCompactionWearBias(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 8
	dev := core.MustNewDevice(spec)
	s, err := Open(dev, WithCompaction(CompactionConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	// Page 2 has been erased five times; page 5 never.
	for i := 0; i < 5; i++ {
		if err := dev.Flash().ErasePage(2); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []int{2, 5} {
		s.pageSeq[p] = uint32(p)
		s.pageUsed[p] = pageHeaderSize + 100
		s.pageLive[p] = 20
	}
	s.head = -1
	if v := s.pickVictim(); v != 5 {
		t.Fatalf("pickVictim = %d, want 5 (the low-wear page)", v)
	}
}

// TestReclaimEraseVerifyRejectsResidue is the regression test for the
// quarantine-reclaim path: an erase that *claims* success while cells stay
// stuck at 0 must not return the page to the free pool, where a fresh
// header over residue could serve stale bytes to replay.
func TestReclaimEraseVerifyRejectsResidue(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 8
	dev := core.MustNewDevice(spec)
	s, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	// Fill page 0 and move the head off it, then wreck its header beyond
	// single-bit repair so the next mount quarantines it.
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("key%d", i), bytes.Repeat([]byte{9}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	clearBit(t, dev, s.pageBase(0), 0)
	clearBit(t, dev, s.pageBase(0)+1, 0)
	clearBit(t, dev, s.pageBase(0)+2, 0)

	s2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().QuarantinedPages; got != 1 {
		t.Fatalf("QuarantinedPages = %d, want 1", got)
	}

	// The reclaim erase completes "successfully" but leaves stuck-at-0
	// cells behind.
	dev.Flash().ArmFault(flash.Fault{Kind: flash.FaultStuckBits, After: 0, Bits: 4})
	s2.reclaimQuarantined()

	if got := s2.Stats().ReclaimRejected; got != 1 {
		t.Fatalf("ReclaimRejected = %d, want 1", got)
	}
	if !s2.pageBad[0] {
		t.Fatal("page with erase residue returned to the pool")
	}
	if got := s2.Stats().QuarantinedPages; got != 1 {
		t.Fatalf("QuarantinedPages = %d after rejected reclaim, want 1", got)
	}
	for _, p := range s2.freePages() {
		if p == 0 {
			t.Fatal("rejected page listed as free")
		}
	}

	// A second reclaim with a clean erase succeeds.
	s2.reclaimQuarantined()
	if s2.pageBad[0] {
		t.Fatal("clean erase-verify did not reclaim the page")
	}
	if got := s2.Stats().QuarantinedPages; got != 0 {
		t.Fatalf("QuarantinedPages = %d after clean reclaim, want 0", got)
	}

	// The store stays fully usable and consistent across a remount.
	want := map[string][]byte{}
	for i := 0; i < 12; i++ {
		k := fmt.Sprintf("key%d", i%4)
		v := bytes.Repeat([]byte{byte(0x10 + i)}, 25)
		if err := s2.Put(k, v); err != nil {
			t.Fatalf("put after reclaim: %v", err)
		}
		want[k] = v
	}
	s3, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		got, err := s3.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("Get(%q) after reclaim+remount = %v, %v; want %v", k, got, err, v)
		}
	}
}
