package kvs

import "errors"

// Proactive compaction. Without it the store only garbage-collects when an
// append finds no space (the forced path in gc()), so a long-lived store
// runs permanently at the edge of full and every burst of writes stalls on
// back-to-back GC. WithCompaction runs the collector *ahead* of need: after
// a page fills, the store checks whether free pages are short or the
// store-wide garbage ratio has drifted too high, and if so compacts the
// most profitable victim — chosen by garbage ratio, biased toward low-wear
// pages when the backend exposes erase counts (WearBackend), so collection
// pressure doubles as wear leveling.

// CompactionConfig tunes the proactive garbage collector. The zero value
// of every field selects a sensible default.
type CompactionConfig struct {
	// TriggerFreePages starts compaction when the number of usable free
	// pages drops below it (default 3; the store itself reserves one free
	// page as the collector's copy target).
	TriggerFreePages int
	// MaxGarbageRatio starts compaction when the store-wide dead fraction
	// of record bytes, (used-live)/used, exceeds it (default 0.5). This is
	// the knob that bounds space amplification: steady-state physical
	// consumption stays under live/(1-MaxGarbageRatio).
	MaxGarbageRatio float64
	// MinVictimGarbage is the dead fraction a page must reach to qualify
	// as a proactive victim (default 0.25) — compacting a nearly-all-live
	// page rewrites data for almost no reclaimed space.
	MinVictimGarbage float64
	// MaxPassesPerOp bounds how many pages one append may compact
	// (default 2), keeping worst-case op latency bounded.
	MaxPassesPerOp int
	// WearWeight scales the low-wear bias in victim scoring (default 0.1;
	// negative disables the bias). Only effective when the backend
	// implements WearBackend.
	WearWeight float64
}

// normalize fills zero-valued fields with defaults.
func (c *CompactionConfig) normalize() {
	if c.TriggerFreePages <= 0 {
		c.TriggerFreePages = 3
	}
	if c.MaxGarbageRatio <= 0 {
		c.MaxGarbageRatio = 0.5
	}
	if c.MinVictimGarbage <= 0 {
		c.MinVictimGarbage = 0.25
	}
	if c.MaxPassesPerOp <= 0 {
		c.MaxPassesPerOp = 2
	}
	if c.WearWeight == 0 {
		c.WearWeight = 0.1
	}
	if c.WearWeight < 0 {
		c.WearWeight = 0
	}
}

// WithCompaction arms proactive garbage collection with the given tuning.
func WithCompaction(cfg CompactionConfig) Option {
	return func(s *Store) {
		c := cfg
		s.comp = &c
	}
}

// maybeCompact is the post-append hook: while the store needs compaction
// and a qualified victim exists, compact — up to MaxPassesPerOp pages.
// Capacity errors are swallowed (the triggering append already committed;
// the next append's forced path will surface them); everything else, power
// loss above all, propagates.
func (s *Store) maybeCompact() error {
	if s.comp == nil || s.inGC || !s.compactDue {
		return nil
	}
	s.compactDue = false
	for pass := 0; pass < s.comp.MaxPassesPerOp; pass++ {
		if !s.compactionNeeded() {
			return nil
		}
		victim := s.pickVictim()
		if victim < 0 {
			return nil
		}
		if err := s.compactPage(victim); err != nil {
			if errors.Is(err, ErrFull) || errors.Is(err, ErrDeviceReadOnly) {
				return nil
			}
			return err
		}
	}
	return nil
}

// compactionNeeded reports whether the free pool is short or the garbage
// ratio has drifted past the configured ceiling.
func (s *Store) compactionNeeded() bool {
	free := 0
	for p := 0; p < s.np; p++ {
		if s.pageSeq[p] == freeSeq && !s.pageBad[p] {
			free++
		}
	}
	if free < s.comp.TriggerFreePages {
		return true
	}
	var used, live int
	for p := 0; p < s.np; p++ {
		if s.pageSeq[p] == freeSeq {
			continue
		}
		if u := s.pageUsed[p] - pageHeaderSize; u > 0 {
			used += u
		}
		live += s.pageLive[p]
	}
	return used > 0 && float64(used-live)/float64(used) > s.comp.MaxGarbageRatio
}

// pickVictim scores every garbage-qualified page and returns the best
// proactive victim, or -1 when none qualifies. The score is the fraction
// of the page an erase would reclaim net of the live bytes that must be
// copied out, plus a bias toward pages the device has erased least — so
// sustained collection spreads erases instead of hammering one page.
func (s *Store) pickVictim() int {
	var maxWear uint32 = 1
	if s.wb != nil && s.comp.WearWeight > 0 {
		for p := 0; p < s.np; p++ {
			if w := s.wb.PageWear(p); w > maxWear {
				maxWear = w
			}
		}
	}
	victim, best := -1, 0.0
	for p := 0; p < s.np; p++ {
		if s.pageSeq[p] == freeSeq || p == s.head {
			continue
		}
		recBytes := s.pageUsed[p] - pageHeaderSize
		if recBytes <= 0 {
			continue
		}
		garbage := float64(recBytes-s.pageLive[p]) / float64(recBytes)
		if garbage < s.comp.MinVictimGarbage {
			continue
		}
		score := float64(s.ps-s.pageLive[p]) / float64(s.ps)
		if s.wb != nil && s.comp.WearWeight > 0 {
			score += s.comp.WearWeight * (1 - float64(s.wb.PageWear(p))/float64(maxWear))
		}
		if score > best {
			victim, best = p, score
		}
	}
	return victim
}
