package kvs

import (
	"bytes"
	"errors"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/ftl"
)

func resilienceDevice(pages int) *core.Device {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = pages
	spec.Banks = 1
	return core.MustNewDevice(spec)
}

// clearBit drifts one stored cell to 0, as read disturb would: the lowest
// set bit at or after addr.
func clearBit(t *testing.T, dev *core.Device, addr int, _ byte) {
	t.Helper()
	for ; ; addr++ {
		cur := dev.Flash().Peek(addr)
		if cur == 0 {
			continue
		}
		low := cur & (^cur + 1)
		if err := dev.Flash().ProgramByte(addr, cur&^low); err != nil {
			t.Fatal(err)
		}
		return
	}
}

// TestSingleBitCorrectionOnGet: a drifted cell inside a stored value is
// repaired transparently by Get and counted in the stats.
func TestSingleBitCorrectionOnGet(t *testing.T) {
	dev := resilienceDevice(6)
	s, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	val := []byte("precise sensor reading")
	if err := s.Put("k", val); err != nil {
		t.Fatal(err)
	}
	// Clear one bit inside the record's value bytes, as read disturb would.
	loc := s.index["k"]
	addr := s.pageBase(loc.page) + loc.off + recHeaderSize + 1 + 3 // inside value
	clearBit(t, dev, addr, 0x04)
	got, err := s.Get("k")
	if err != nil {
		t.Fatalf("Get after single-bit disturb: %v", err)
	}
	if !bytes.Equal(got, val) {
		t.Errorf("corrected value mismatch: %q vs %q", got, val)
	}
	if s.Stats().CorrectedBits == 0 {
		t.Error("correction not counted")
	}
}

// TestSingleBitCorrectionAtMount: the same damage is repaired during the
// mount-time replay, so the index still sees the record.
func TestSingleBitCorrectionAtMount(t *testing.T) {
	dev := resilienceDevice(6)
	s, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("alpha", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("beta", []byte("second")); err != nil {
		t.Fatal(err)
	}
	// Damage one bit of alpha's record; beta sits after it in the page,
	// so an unrepaired CRC failure would hide beta too.
	loc := s.index["alpha"]
	clearBit(t, dev, s.pageBase(loc.page)+loc.off+recHeaderSize+2, 0x01)

	s2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"alpha": "first", "beta": "second"} {
		got, err := s2.Get(k)
		if err != nil {
			t.Fatalf("Get %q after remount: %v", k, err)
		}
		if string(got) != want {
			t.Errorf("%q: got %q want %q", k, got, want)
		}
	}
}

// TestQuarantineBadHeader: a page whose header is damaged beyond repair is
// quarantined at mount, then reclaimed by erase when space runs short.
func TestQuarantineBadHeader(t *testing.T) {
	dev := resilienceDevice(4)
	s, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	page := s.index["k"].page
	// Destroy the header's CRC field: clearing two whole bytes is far
	// beyond single-bit repair.
	fl := dev.Flash()
	base := s.pageBase(page)
	for i := 4; i < 6; i++ {
		if err := fl.ProgramByte(base+i, 0x00); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Stats().QuarantinedPages != 1 {
		t.Fatalf("quarantined = %d, want 1 (stats %+v)", s2.Stats().QuarantinedPages, s2.Stats())
	}
	// The key lived on the destroyed page — it is gone (this is what the
	// campaign's journaled modes prevent); the store must still work and
	// eventually reclaim the quarantined page.
	for i := 0; i < 40; i++ {
		if err := s2.Put("fill", bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if s2.Stats().QuarantinedPages != 0 {
		t.Errorf("quarantined page never reclaimed: %+v", s2.Stats())
	}
}

// TestVerifyRetriesStuckBits: with WithVerify, a stuck cell under a landing
// zone is caught at commit time and the record is re-appended elsewhere —
// the Put succeeds and reads back exactly.
func TestVerifyRetriesStuckBits(t *testing.T) {
	dev := resilienceDevice(12)
	s, err := Open(dev, WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("seed", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Erases keep leaving stuck cells: GC/open-page landing zones get
	// silently corrupted, and the verify machinery must route around it.
	dev.Flash().SetFaultSchedule(flash.NewRandomSchedule(3, flash.FaultMix{
		StuckBits: 1, MinGap: 2, MaxGap: 6, MaxBits: 2,
	}))
	val := bytes.Repeat([]byte{0xAB}, 30)
	for i := 0; i < 60; i++ {
		key := string(rune('a' + i%8))
		if err := s.Put(key, val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		got, err := s.Get(key)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("put %d read back wrong", i)
		}
	}
	dev.Flash().ClearFaults()
	t.Logf("stats after stuck-bit storm: %+v", s.Stats())
}

// TestStoreOnJournaledFTL: the store runs on an FTL backend; data survives
// remounting both layers, and kvs GC drives FTL wear leveling underneath.
func TestStoreOnJournaledFTL(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.PageSize = 128
	spec.NumPages = 12
	spec.Banks = 1
	dev := core.MustNewDevice(spec)

	f, err := ftl.Open(dev, ftl.WithSwapDelta(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenOn(f)
	if err != nil {
		t.Fatal(err)
	}
	if s.np != f.NumPages() {
		t.Fatalf("store sees %d pages, ftl has %d", s.np, f.NumPages())
	}
	val := bytes.Repeat([]byte{7}, 24)
	for i := 0; i < 120; i++ {
		val[0] = byte(i)
		if err := s.Put("hot", val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	want, err := s.Get("hot")
	if err != nil {
		t.Fatal(err)
	}

	// Remount both layers: the FTL map and the store index must both
	// recover from flash alone.
	f2, err := ftl.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenOn(f2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("hot")
	if err != nil {
		t.Fatalf("Get after double remount: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("value changed across remount: %v vs %v", got, want)
	}
	if f.Stats().Swaps == 0 {
		t.Log("note: no swaps triggered; wear was already level")
	}
}

// TestGetCorruptBeyondRepair: multi-bit damage surfaces as ErrCorrupt, not
// as silently wrong data.
func TestGetCorruptBeyondRepair(t *testing.T) {
	dev := resilienceDevice(6)
	s, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", bytes.Repeat([]byte{0xFF}, 16)); err != nil {
		t.Fatal(err)
	}
	loc := s.index["k"]
	base := s.pageBase(loc.page) + loc.off
	fl := dev.Flash()
	// Clear whole bytes across the value: far beyond single-bit repair.
	for i := 0; i < 4; i++ {
		if err := fl.ProgramByte(base+recHeaderSize+1+i, 0x00); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}
