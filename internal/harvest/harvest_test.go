package harvest

import (
	"testing"
	"time"

	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

func TestCapacitorBasics(t *testing.T) {
	// 100 µF between 3.3 V and 1.8 V: ½·1e-4·(10.89−3.24) ≈ 382 µJ.
	c, err := NewCapacitor(100e-6, 3.3, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	cap := c.Capacity()
	if cap < 380*energy.Microjoule || cap > 385*energy.Microjoule {
		t.Errorf("capacity = %v, want ≈382 µJ", cap)
	}
	if c.Stored() != 0 {
		t.Error("new capacitor should be empty")
	}
	d := c.Charge(1*energy.Milliwatt, cap)
	if c.Stored() != cap {
		t.Error("charge did not fill")
	}
	// 382 µJ at 1 mW ≈ 382 ms.
	if d < 370*time.Millisecond || d > 390*time.Millisecond {
		t.Errorf("charge time = %v", d)
	}
	if !c.Draw(cap / 2) {
		t.Error("draw within stored energy failed")
	}
	if c.Draw(cap) {
		t.Error("overdraw succeeded")
	}
}

func TestCapacitorValidation(t *testing.T) {
	if _, err := NewCapacitor(0, 3, 1); err == nil {
		t.Error("zero capacitance accepted")
	}
	if _, err := NewCapacitor(1e-4, 1, 2); err == nil {
		t.Error("Vmax < Vmin accepted")
	}
}

func TestChargeSaturates(t *testing.T) {
	c, _ := NewCapacitor(100e-6, 3.3, 1.8)
	c.Charge(1*energy.Milliwatt, c.Capacity()*10)
	if c.Stored() != c.Capacity() {
		t.Error("charge did not saturate at capacity")
	}
}

func harvestConfig(t *testing.T) (Config, flash.Spec) {
	t.Helper()
	// A small storage cap, as EH deployments use: the checkpoint is a
	// large share of each on-period's budget, which is where cheaper
	// approximate checkpoints matter.
	c, err := NewCapacitor(0.001, 3.3, 1.8) // ≈3.8 mJ usable
	if err != nil {
		t.Fatal(err)
	}
	spec := flash.DefaultSpec()
	spec.NumPages = 32
	return Config{
		Cap:          c,
		HarvestPower: 5 * energy.Milliwatt,
		CPU:          energy.CortexM0Plus(),
		WorkCycles:   50_000,
		StateBytes:   1024,
		Seed:         99,
	}, spec
}

func TestRunExactCheckpoints(t *testing.T) {
	cfg, spec := harvestConfig(t)
	dev := core.MustNewDevice(spec)
	rep, err := Run(dev, cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OnPeriods != 20 {
		t.Errorf("periods = %d", rep.OnPeriods)
	}
	if rep.WorkDone == 0 {
		t.Error("no work persisted")
	}
	if rep.Checkpoints == 0 {
		t.Error("no checkpoints")
	}
	if rep.CheckpointMAE != 0 {
		t.Errorf("exact checkpoints introduced error %v", rep.CheckpointMAE)
	}
	if rep.HarvestTime <= 0 {
		t.Error("no harvest time accounted")
	}
}

// TestFlipBitIncreasesForwardProgress: with approximate checkpoints, the
// same harvested energy must persist at least as much work — the §VI claim.
func TestFlipBitIncreasesForwardProgress(t *testing.T) {
	run := func(flipbit bool) Report {
		cfg, spec := harvestConfig(t)
		dev := core.MustNewDevice(spec)
		if flipbit {
			if err := dev.SetApproxRegion(0, spec.PageSize*spec.NumPages); err != nil {
				t.Fatal(err)
			}
			if err := dev.SetWidth(bits.W8); err != nil {
				t.Fatal(err)
			}
			dev.SetThreshold(3)
		}
		rep, err := Run(dev, cfg, 30)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	exact := run(false)
	fb := run(true)
	if fb.WorkPerMillijoule() <= exact.WorkPerMillijoule() {
		t.Errorf("FlipBit %.1f work/mJ <= exact %.1f", fb.WorkPerMillijoule(), exact.WorkPerMillijoule())
	}
	if fb.FlashEnergy >= exact.FlashEnergy {
		t.Errorf("FlipBit flash energy %v >= exact %v", fb.FlashEnergy, exact.FlashEnergy)
	}
	if fb.CheckpointMAE <= 0 || fb.CheckpointMAE > 3.5 {
		t.Errorf("FlipBit checkpoint MAE = %v, want in (0, 3.5]", fb.CheckpointMAE)
	}
}

func TestRunNilCapacitor(t *testing.T) {
	dev := core.MustNewDevice(flash.DefaultSpec())
	if _, err := Run(dev, Config{}, 1); err == nil {
		t.Error("nil capacitor accepted")
	}
}
