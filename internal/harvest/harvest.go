// Package harvest models the energy-harvesting scenario of §VI: a device
// runs on ambient energy buffered in a capacitor, computing in bursts and
// checkpointing state to non-volatile flash before each power loss. The
// paper argues FlipBit's cheaper approximate checkpoints help EH systems;
// this package makes that quantitative (see the exp-harvest experiment).
package harvest

import (
	"fmt"
	"time"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Capacitor is the energy buffer of an EH device. Usable energy is the
// band between the regulator's minimum operating voltage and the cap's
// maximum: E = ½·C·(Vmax² − Vmin²).
type Capacitor struct {
	CapF float64 // capacitance in farads
	VMax float64
	VMin float64

	stored energy.Energy // energy above the VMin floor
}

// NewCapacitor builds an empty capacitor.
func NewCapacitor(capF, vMax, vMin float64) (*Capacitor, error) {
	if capF <= 0 || vMax <= vMin || vMin < 0 {
		return nil, fmt.Errorf("harvest: bad capacitor (C=%g, Vmax=%g, Vmin=%g)", capF, vMax, vMin)
	}
	return &Capacitor{CapF: capF, VMax: vMax, VMin: vMin}, nil
}

// Capacity returns the usable energy when fully charged.
func (c *Capacitor) Capacity() energy.Energy {
	return energy.Energy(0.5 * c.CapF * (c.VMax*c.VMax - c.VMin*c.VMin))
}

// Stored returns the currently usable energy.
func (c *Capacitor) Stored() energy.Energy { return c.stored }

// Charge adds harvested energy, saturating at capacity, and returns the
// time needed to reach the new level at power p.
func (c *Capacitor) Charge(p energy.Power, e energy.Energy) time.Duration {
	if e < 0 {
		e = 0
	}
	room := c.Capacity() - c.stored
	if e > room {
		e = room
	}
	c.stored += e
	if p <= 0 {
		return 0
	}
	return time.Duration(float64(e) / float64(p) * float64(time.Second))
}

// Draw removes energy; it reports false (taking nothing) when the request
// exceeds what is stored — the brown-out that kills an on-period.
func (c *Capacitor) Draw(e energy.Energy) bool {
	if e > c.stored {
		return false
	}
	c.stored -= e
	return true
}

// Config describes one intermittent-computing deployment.
type Config struct {
	Cap          *Capacitor
	HarvestPower energy.Power // ambient input while off/on
	CPU          energy.CPUModel
	WorkCycles   uint64 // CPU cycles per unit of useful work
	StateBytes   int    // checkpoint size
	Seed         uint64
}

// Report summarizes an intermittent run.
type Report struct {
	OnPeriods     int
	WorkDone      uint64 // units whose results were successfully persisted
	WorkLost      uint64 // units computed but lost to failed checkpoints
	Checkpoints   uint64
	FailedPeriods int           // periods that browned out mid-checkpoint
	HarvestTime   time.Duration // total time spent recharging
	Harvested     energy.Energy // total ambient energy actually collected
	FlashEnergy   energy.Energy
	CheckpointMAE float64
}

// WorkPerMillijoule returns persisted work units per harvested millijoule —
// the forward-progress-per-ambient-energy figure of merit for EH devices.
func (r Report) WorkPerMillijoule() float64 {
	if r.Harvested <= 0 {
		return 0
	}
	return float64(r.WorkDone) / (float64(r.Harvested) / 1e-3)
}

// Run simulates onPeriods wake-ups of a device whose state drifts as it
// works and must be checkpointed through dev before each power loss.
//
// Per period: recharge fully, work while the capacitor holds more than the
// worst-case checkpoint reserve, checkpoint, power off. Energy the
// checkpoint does not spend stays in the capacitor, shortening the next
// recharge — which is how cheaper approximate checkpoints convert into
// more work per harvested joule. A checkpoint that exceeds the remaining
// charge browns out and loses the period's work.
func Run(dev *core.Device, cfg Config, onPeriods int) (Report, error) {
	if cfg.Cap == nil {
		return Report{}, fmt.Errorf("harvest: nil capacitor")
	}
	rng := xrand.New(cfg.Seed)
	state := make([]byte, cfg.StateBytes)
	persisted := make([]byte, cfg.StateBytes)
	for i := range state {
		state[i] = rng.Byte()
	}
	copy(persisted, state)

	var rep Report
	workEnergy := cfg.CPU.EnergyFor(cfg.WorkCycles)
	// Checkpoint-cost reserve: intermittent systems must budget the
	// worst case or brown out mid-checkpoint, so the reserve tracks the
	// most expensive checkpoint seen (initially a full erase+program of
	// every touched page) with a 25% margin.
	spec := dev.Flash().Spec()
	pages := (cfg.StateBytes + spec.PageSize - 1) / spec.PageSize
	worstCase := energy.Energy(pages) * (spec.EraseEnergy +
		spec.ProgramEnergy*energy.Energy(spec.PageSize))
	maxSeen := energy.Energy(0)
	reserve := func() energy.Energy {
		if maxSeen == 0 {
			return worstCase + worstCase/4
		}
		// Any checkpoint may still hit the physical worst case; keep
		// a floor of half of it so cheap FlipBit runs do not starve
		// the reserve entirely.
		r := maxSeen + maxSeen/4
		if r < worstCase/2 {
			r = worstCase / 2
		}
		return r
	}

	var errSum float64
	var errN int

	for period := 0; period < onPeriods; period++ {
		rep.OnPeriods++
		before := cfg.Cap.Stored()
		rep.HarvestTime += cfg.Cap.Charge(cfg.HarvestPower, cfg.Cap.Capacity())
		rep.Harvested += cfg.Cap.Stored() - before
		var pendingWork uint64
		// Work until the margin for a checkpoint (plus one more work
		// unit) is gone.
		for cfg.Cap.Stored() >= reserve()+workEnergy {
			if !cfg.Cap.Draw(workEnergy) {
				break
			}
			pendingWork++
		}
		// The period's work nudges the accumulator state slightly —
		// EMA-style aggregation moves slowly however many samples
		// fed it.
		for i := range state {
			state[i] = byte(int(state[i]) + rng.Intn(5) - 2)
		}
		// Checkpoint.
		statsBefore := dev.Flash().Stats()
		if err := dev.Write(0, state); err != nil {
			return rep, err
		}
		cost := dev.Flash().Stats().Sub(statsBefore).Energy
		if cost > maxSeen {
			maxSeen = cost
		}
		if !cfg.Cap.Draw(cost) {
			// Brown-out mid-checkpoint: the period's work is lost
			// and the device resumes from the last good state.
			rep.FailedPeriods++
			rep.WorkLost += pendingWork
			copy(state, persisted)
			continue
		}
		rep.Checkpoints++
		rep.WorkDone += pendingWork
		// Record what actually landed (approximate under FlipBit).
		if err := dev.Read(0, persisted); err != nil {
			return rep, err
		}
		for i := range state {
			d := int(state[i]) - int(persisted[i])
			if d < 0 {
				d = -d
			}
			errSum += float64(d)
			errN++
		}
		copy(state, persisted)
	}
	rep.FlashEnergy = dev.Flash().Stats().Energy
	if errN > 0 {
		rep.CheckpointMAE = errSum / float64(errN)
	}
	return rep, nil
}
