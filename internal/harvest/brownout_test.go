package harvest

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// TestBrownOutLosesWork: a capacitor barely larger than the checkpoint
// reserve forces brown-outs; lost periods must be accounted and the device
// must keep making *some* progress from the last good state.
func TestBrownOutLosesWork(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.NumPages = 16
	dev := core.MustNewDevice(spec)

	// Usable energy just above the worst-case checkpoint estimate for
	// 1 KiB (4 pages ≈ 1.34 mJ × 1.25 ≈ 1.67 mJ): some periods will
	// start the checkpoint with almost nothing left.
	cap, err := NewCapacitor(0.00047, 3.3, 1.8) // ≈1.8 mJ usable
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(dev, Config{
		Cap:          cap,
		HarvestPower: 1 * energy.Milliwatt,
		CPU:          energy.CortexM0Plus(),
		WorkCycles:   50_000,
		StateBytes:   1024,
		Seed:         7,
	}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checkpoints == 0 {
		t.Fatal("no checkpoint ever succeeded; capacitor sizing broken")
	}
	if rep.Checkpoints+uint64(rep.FailedPeriods) != uint64(rep.OnPeriods) {
		t.Errorf("periods %d != checkpoints %d + failures %d",
			rep.OnPeriods, rep.Checkpoints, rep.FailedPeriods)
	}
	if rep.WorkLost > 0 && rep.FailedPeriods == 0 {
		t.Error("work lost without failed periods")
	}
}

// TestWorkPerMillijouleZeroWhenNothingHarvested: guard against division by
// zero in the figure of merit.
func TestWorkPerMillijouleZeroWhenNothingHarvested(t *testing.T) {
	var r Report
	if r.WorkPerMillijoule() != 0 {
		t.Error("empty report should rate 0")
	}
}
