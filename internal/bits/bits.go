// Package bits provides small bit-manipulation helpers shared by the
// approximation algorithms and the flash model.
//
// Throughout the repository values are carried in uint32 containers even when
// the logical width is 8 or 16 bits; Width describes the logical width and
// its Mask limits which bits are meaningful.
package bits

import (
	"encoding/binary"
	"fmt"
	mathbits "math/bits"
)

// Width is the logical width of a value stored in flash.
type Width int

// Supported value widths. The FlipBit hardware is configured for one of
// these through a memory-mapped register (paper §III-C).
const (
	W8  Width = 8
	W16 Width = 16
	W32 Width = 32
)

// Valid reports whether w is one of the supported widths.
func (w Width) Valid() bool {
	return w == W8 || w == W16 || w == W32
}

// Bytes returns the number of bytes a value of this width occupies.
func (w Width) Bytes() int { return int(w) / 8 }

// Mask returns a mask with the w low bits set.
func (w Width) Mask() uint32 {
	if w == W32 {
		return 0xFFFFFFFF
	}
	return (uint32(1) << uint(w)) - 1
}

// Max returns the maximum value representable in w bits.
func (w Width) Max() uint32 { return w.Mask() }

func (w Width) String() string {
	if w.Valid() {
		return fmt.Sprintf("u%d", int(w))
	}
	return fmt.Sprintf("Width(%d)", int(w))
}

// Bit returns bit i (0 = LSB) of v as 0 or 1.
func Bit(v uint32, i int) uint32 { return (v >> uint(i)) & 1 }

// SetBit returns v with bit i set to b (b must be 0 or 1).
func SetBit(v uint32, i int, b uint32) uint32 {
	if b == 0 {
		return v &^ (1 << uint(i))
	}
	return v | (1 << uint(i))
}

// IsSubset reports whether every set bit of v is also set in of.
// In flash terms: v can be reached from of using only 1→0 programs.
func IsSubset(v, of uint32) bool { return v&^of == 0 }

// OnesCount returns the number of set bits in v.
func OnesCount(v uint32) int { return mathbits.OnesCount32(v) }

// AbsDiff returns |a-b| treating a and b as unsigned magnitudes.
func AbsDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// Field extracts n bits of v starting at bit hi downward:
// Field(v, hi, n) == v[hi : hi-n+1]. Bits below index 0 read as zero,
// matching the zero padding of the low approximation slices (paper Fig 7).
func Field(v uint32, hi, n int) uint32 {
	out := uint32(0)
	for k := 0; k < n; k++ {
		i := hi - k
		out <<= 1
		if i >= 0 {
			out |= Bit(v, i)
		}
	}
	return out
}

// LoadLE assembles a little-endian value of the given width from b.
func LoadLE(b []byte, w Width) uint32 {
	switch w {
	case W8:
		return uint32(b[0])
	case W16:
		return uint32(binary.LittleEndian.Uint16(b))
	case W32:
		return binary.LittleEndian.Uint32(b)
	}
	var v uint32
	for i := w.Bytes() - 1; i >= 0; i-- {
		v = v<<8 | uint32(b[i])
	}
	return v
}

// StoreLE writes v into b little-endian at the given width.
func StoreLE(b []byte, v uint32, w Width) {
	switch w {
	case W8:
		b[0] = byte(v)
	case W16:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case W32:
		binary.LittleEndian.PutUint32(b, v)
	default:
		for i := 0; i < w.Bytes(); i++ {
			b[i] = byte(v >> uint(8*i))
		}
	}
}

// SubsetBytes reports whether every set bit of v is also set in the
// corresponding byte of of — the slice form of IsSubset, i.e. whether v is
// reachable from of with 1→0 programs alone. The slices must have equal
// length; the scan runs eight bytes per step.
func SubsetBytes(v, of []byte) bool {
	i := 0
	for ; i+8 <= len(v); i += 8 {
		if binary.LittleEndian.Uint64(v[i:])&^binary.LittleEndian.Uint64(of[i:]) != 0 {
			return false
		}
	}
	for ; i < len(v); i++ {
		if v[i]&^of[i] != 0 {
			return false
		}
	}
	return true
}
