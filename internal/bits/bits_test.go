package bits

import (
	"testing"
	"testing/quick"
)

func TestWidthValid(t *testing.T) {
	for _, w := range []Width{W8, W16, W32} {
		if !w.Valid() {
			t.Errorf("%v should be valid", w)
		}
	}
	for _, w := range []Width{0, 1, 7, 9, 24, 64} {
		if w.Valid() {
			t.Errorf("Width(%d) should be invalid", int(w))
		}
	}
}

func TestWidthMask(t *testing.T) {
	cases := []struct {
		w    Width
		mask uint32
	}{
		{W8, 0xFF},
		{W16, 0xFFFF},
		{W32, 0xFFFFFFFF},
	}
	for _, c := range cases {
		if got := c.w.Mask(); got != c.mask {
			t.Errorf("%v.Mask() = %#x, want %#x", c.w, got, c.mask)
		}
		if got := c.w.Max(); got != c.mask {
			t.Errorf("%v.Max() = %#x, want %#x", c.w, got, c.mask)
		}
	}
}

func TestWidthBytes(t *testing.T) {
	if W8.Bytes() != 1 || W16.Bytes() != 2 || W32.Bytes() != 4 {
		t.Errorf("Bytes: got %d %d %d", W8.Bytes(), W16.Bytes(), W32.Bytes())
	}
}

func TestWidthString(t *testing.T) {
	if W16.String() != "u16" {
		t.Errorf("W16.String() = %q", W16.String())
	}
	if Width(5).String() != "Width(5)" {
		t.Errorf("Width(5).String() = %q", Width(5).String())
	}
}

func TestBitAndSetBit(t *testing.T) {
	v := uint32(0b1010)
	if Bit(v, 0) != 0 || Bit(v, 1) != 1 || Bit(v, 3) != 1 {
		t.Errorf("Bit extraction wrong for %#b", v)
	}
	if got := SetBit(v, 0, 1); got != 0b1011 {
		t.Errorf("SetBit(1010,0,1) = %#b", got)
	}
	if got := SetBit(v, 3, 0); got != 0b0010 {
		t.Errorf("SetBit(1010,3,0) = %#b", got)
	}
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		v, of uint32
		want  bool
	}{
		{0b0000, 0b0000, true},
		{0b0101, 0b0101, true},
		{0b0001, 0b0101, true},
		{0b0010, 0b0101, false},
		{0b1111, 0b0101, false},
	}
	for _, c := range cases {
		if got := IsSubset(c.v, c.of); got != c.want {
			t.Errorf("IsSubset(%#b,%#b) = %v, want %v", c.v, c.of, got, c.want)
		}
	}
}

func TestIsSubsetProperty(t *testing.T) {
	// Any v&of is a subset of of.
	f := func(v, of uint32) bool { return IsSubset(v&of, of) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAbsDiff(t *testing.T) {
	if AbsDiff(3, 10) != 7 || AbsDiff(10, 3) != 7 || AbsDiff(5, 5) != 0 {
		t.Error("AbsDiff basic cases failed")
	}
}

func TestField(t *testing.T) {
	v := uint32(0b1101_0110)
	cases := []struct {
		hi, n int
		want  uint32
	}{
		{7, 1, 0b1},
		{7, 4, 0b1101},
		{3, 4, 0b0110},
		{1, 4, 0b1000}, // zero padded below bit 0
		{0, 2, 0b00},
	}
	for _, c := range cases {
		if got := Field(v, c.hi, c.n); got != c.want {
			t.Errorf("Field(%#b,%d,%d) = %#b, want %#b", v, c.hi, c.n, got, c.want)
		}
	}
}

func TestLoadStoreLERoundTrip(t *testing.T) {
	for _, w := range []Width{W8, W16, W32} {
		f := func(v uint32) bool {
			v &= w.Mask()
			buf := make([]byte, w.Bytes())
			StoreLE(buf, v, w)
			return LoadLE(buf, w) == v
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", w, err)
		}
	}
}

func TestStoreLEByteOrder(t *testing.T) {
	buf := make([]byte, 4)
	StoreLE(buf, 0x04030201, W32)
	want := []byte{0x01, 0x02, 0x03, 0x04}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("StoreLE little-endian order: got %v, want %v", buf, want)
		}
	}
}

func TestOnesCount(t *testing.T) {
	if OnesCount(0) != 0 || OnesCount(0b1011) != 3 || OnesCount(0xFFFFFFFF) != 32 {
		t.Error("OnesCount basic cases failed")
	}
}
