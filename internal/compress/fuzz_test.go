package compress

import (
	"bytes"
	"testing"
)

// FuzzLZSSRoundTrip: Compress/Decompress must round-trip any input.
func FuzzLZSSRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello hello hello"))
	f.Add(bytes.Repeat([]byte{0}, 300))
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00})
	f.Fuzz(func(t *testing.T, src []byte) {
		got, err := Decompress(Compress(src))
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(got))
		}
	})
}

// FuzzLZSSDecompressRobust: arbitrary bytes must never panic the decoder;
// errors are the acceptable outcome.
func FuzzLZSSDecompressRobust(f *testing.F) {
	f.Add([]byte{0x00, 0xFF, 0x00})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, src []byte) {
		_, _ = Decompress(src) // must not panic
	})
}

// FuzzHuffmanRoundTrip: the entropy coder must round-trip any input.
func FuzzHuffmanRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7})
	f.Add([]byte("aaaaabbbbcccdde"))
	f.Fuzz(func(t *testing.T, src []byte) {
		got, err := HuffmanDecompress(HuffmanCompress(src))
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzHuffmanDecompressRobust: hostile blocks must never panic.
func FuzzHuffmanDecompressRobust(f *testing.F) {
	f.Add(make([]byte, 261))
	f.Fuzz(func(t *testing.T, src []byte) {
		_, _ = HuffmanDecompress(src) // must not panic
	})
}
