package compress

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// TestRoundTripProperty: Decompress(Compress(x)) == x for arbitrary input.
func TestRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		got, err := Decompress(Compress(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	got, err := Decompress(Compress(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("empty round trip: %v, %v", got, err)
	}
}

func TestCompressesRepetition(t *testing.T) {
	src := bytes.Repeat([]byte{0xAB}, 1000)
	c := Compress(src)
	if Ratio(len(src), len(c)) > 0.15 {
		t.Errorf("1000 identical bytes compressed to %d (ratio %.2f)", len(c), Ratio(len(src), len(c)))
	}
	got, err := Decompress(c)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatal("round trip failed on repetition")
	}
}

func TestCompressesPattern(t *testing.T) {
	pattern := []byte("sensor-frame-0001;")
	src := bytes.Repeat(pattern, 50)
	c := Compress(src)
	if Ratio(len(src), len(c)) > 0.3 {
		t.Errorf("repeating pattern ratio %.2f, expected < 0.3", Ratio(len(src), len(c)))
	}
}

// TestExpansionBound: incompressible data grows by at most 1/8 + 1 byte.
func TestExpansionBound(t *testing.T) {
	rng := xrand.New(3)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = rng.Byte()
	}
	c := Compress(src)
	maxLen := len(src) + len(src)/8 + 2
	if len(c) > maxLen {
		t.Errorf("random data expanded to %d, bound %d", len(c), maxLen)
	}
	got, err := Decompress(c)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatal("round trip failed on random data")
	}
}

// TestOverlappedMatch: RLE-style overlapping references must decode
// correctly (the classic LZ pitfall).
func TestOverlappedMatch(t *testing.T) {
	src := append([]byte{1, 2}, bytes.Repeat([]byte{7}, 100)...)
	got, err := Decompress(Compress(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatal("overlapped match round trip failed")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	// Control byte says "reference" but only one byte follows.
	if _, err := Decompress([]byte{0x00, 0x05}); err == nil {
		t.Error("truncated reference accepted")
	}
	// Reference pointing before the start of output.
	if _, err := Decompress([]byte{0x00, 0xFF, 0x00}); err == nil {
		t.Error("out-of-range distance accepted")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		return bytes.Equal(DeltaDecode(DeltaEncode(src)), src)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDeltaMakesDriftCompressible: the delta prefilter must dramatically
// improve compression of slowly drifting data.
func TestDeltaMakesDriftCompressible(t *testing.T) {
	rng := xrand.New(5)
	src := make([]byte, 2048)
	v := byte(100)
	for i := range src {
		v += byte(rng.Intn(3)) - 1
		src[i] = v
	}
	plain := len(Compress(src))
	delta := len(Compress(DeltaEncode(src)))
	if delta >= plain {
		t.Errorf("delta+LZSS (%d) not smaller than LZSS alone (%d)", delta, plain)
	}
	// And the pipeline must round trip.
	d, err := Decompress(Compress(DeltaEncode(src)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(DeltaDecode(d), src) {
		t.Fatal("delta+LZSS pipeline corrupted data")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(100, 50) != 0.5 || Ratio(0, 10) != 1 {
		t.Error("Ratio arithmetic wrong")
	}
}
