package compress

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

func TestHuffmanRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		got, err := HuffmanDecompress(HuffmanCompress(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHuffmanEmpty(t *testing.T) {
	got, err := HuffmanDecompress(HuffmanCompress(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("empty round trip: %v, %v", got, err)
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	src := bytes.Repeat([]byte{42}, 500)
	c := HuffmanCompress(src)
	got, err := HuffmanDecompress(c)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatal("single-symbol round trip failed")
	}
	// 500 × 1 bit ≈ 63 bytes of payload after the 260-byte header.
	if len(c) > 260+70 {
		t.Errorf("single-symbol stream uses %d bytes", len(c))
	}
}

// TestHuffmanCompressesLowEntropy: a 5-symbol delta stream must compress
// close to its entropy (~2.3 bits/symbol), which LZSS cannot do.
func TestHuffmanCompressesLowEntropy(t *testing.T) {
	rng := xrand.New(11)
	src := make([]byte, 8192)
	for i := range src {
		src[i] = byte(int8(rng.Intn(5) - 2)) // -2..2 as bytes
	}
	c := HuffmanCompress(src)
	payload := len(c) - 260
	bitsPerSym := 8 * float64(payload) / float64(len(src))
	if bitsPerSym > 2.7 {
		t.Errorf("5-symbol stream coded at %.2f bits/symbol, want < 2.7", bitsPerSym)
	}
	lz := Compress(src)
	if len(c) >= len(lz) {
		t.Logf("note: LZSS %d vs Huffman %d on this input", len(lz), len(c))
	}
	got, err := HuffmanDecompress(c)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatal("round trip failed")
	}
}

func TestHuffmanRandomData(t *testing.T) {
	rng := xrand.New(13)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = rng.Byte()
	}
	c := HuffmanCompress(src)
	got, err := HuffmanDecompress(c)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatal("random round trip failed")
	}
	// Uniform bytes cannot compress; overhead is the 260-byte header.
	if len(c) > len(src)+300 {
		t.Errorf("random data blew up to %d bytes", len(c))
	}
}

func TestHuffmanCorrupt(t *testing.T) {
	if _, err := HuffmanDecompress([]byte{1, 2, 3}); err == nil {
		t.Error("truncated header accepted")
	}
	// Valid header claiming more symbols than the bitstream holds.
	src := HuffmanCompress([]byte{1, 2, 3, 4})
	src = src[:len(src)-1]
	if _, err := HuffmanDecompress(src); err == nil {
		t.Error("truncated bitstream accepted")
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	rng := xrand.New(17)
	freq := make([]uint64, 256)
	for i := range freq {
		freq[i] = uint64(rng.Intn(1000))
	}
	lengths := huffmanCodeLengths(freq)
	codes := canonicalCodes(lengths)
	// No code may be a prefix of another (compare in LSB-first space).
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			ca, cb := codes[a], codes[b]
			if a == b || ca.len == 0 || cb.len == 0 || ca.len > cb.len {
				continue
			}
			mask := uint16(1)<<ca.len - 1
			if ca.code == cb.code&mask {
				t.Fatalf("code of %d (len %d) is a prefix of %d (len %d)", a, ca.len, b, cb.len)
			}
		}
	}
}
