package compress

import "fmt"

// StaticCoder is a Huffman coder with a table trained once and shared
// between encoder and decoder out of band — the configuration embedded
// loggers actually deploy, since a per-record table would dwarf small
// records. Laplace smoothing keeps every symbol encodable even if it never
// appeared in the training data.
type StaticCoder struct {
	codes  [256]huffCode
	decode map[uint32]byte // key: len<<16 | code
}

// NewStaticCoder trains a coder on representative data.
func NewStaticCoder(training []byte) *StaticCoder {
	var freq [256]uint64
	for i := range freq {
		freq[i] = 1 // smoothing
	}
	for _, b := range training {
		freq[b]++
	}
	lengths := huffmanCodeLengths(freq[:])
	c := &StaticCoder{codes: canonicalCodes(lengths), decode: make(map[uint32]byte)}
	for sym, hc := range c.codes {
		if hc.len > 0 {
			c.decode[uint32(hc.len)<<16|uint32(hc.code)] = byte(sym)
		}
	}
	return c
}

// Encode returns the raw bitstream for src (no header; the caller tracks
// the original length).
func (c *StaticCoder) Encode(src []byte) []byte {
	out := make([]byte, 0, len(src)/2+1)
	var acc uint32
	var nbits uint
	for _, b := range src {
		hc := c.codes[b]
		acc |= uint32(hc.code) << nbits
		nbits += uint(hc.len)
		for nbits >= 8 {
			out = append(out, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc))
	}
	return out
}

// Decode recovers n symbols from the bitstream.
func (c *StaticCoder) Decode(src []byte, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	var cur uint16
	var curLen uint8
	bitIdx := 0
	for len(out) < n {
		if bitIdx >= 8*len(src) {
			return nil, fmt.Errorf("%w: static bitstream exhausted at %d/%d", ErrCorrupt, len(out), n)
		}
		bit := src[bitIdx/8] >> uint(bitIdx%8) & 1
		bitIdx++
		cur |= uint16(bit) << curLen
		curLen++
		if curLen > huffMaxCodeLen {
			return nil, fmt.Errorf("%w: no static code matches", ErrCorrupt)
		}
		if sym, ok := c.decode[uint32(curLen)<<16|uint32(cur)]; ok {
			out = append(out, sym)
			cur, curLen = 0, 0
		}
	}
	return out, nil
}
