package compress

import (
	"container/heap"
	"fmt"
	"sort"
)

// Order-0 canonical Huffman coding. LZSS exploits repetition; sensor deltas
// are usually low-entropy but non-repeating, which is exactly what an
// entropy coder captures. HuffmanCompress produces a self-contained block:
// a 256-entry code-length table (one byte per symbol), a 4-byte original
// length, then the bitstream.

const huffMaxCodeLen = 15

// HuffmanCompress encodes src as a canonical-Huffman block.
func HuffmanCompress(src []byte) []byte {
	var freq [256]uint64
	for _, b := range src {
		freq[b]++
	}
	lengths := huffmanCodeLengths(freq[:])
	codes := canonicalCodes(lengths)

	out := make([]byte, 0, len(src)/2+260)
	out = append(out, lengths...)
	out = append(out,
		byte(len(src)), byte(len(src)>>8), byte(len(src)>>16), byte(len(src)>>24))

	var acc uint32
	var nbits uint
	for _, b := range src {
		c := codes[b]
		acc |= uint32(c.code) << nbits
		nbits += uint(c.len)
		for nbits >= 8 {
			out = append(out, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc))
	}
	return out
}

// HuffmanDecompress decodes a block produced by HuffmanCompress.
func HuffmanDecompress(src []byte) ([]byte, error) {
	if len(src) < 260 {
		return nil, fmt.Errorf("%w: huffman header truncated", ErrCorrupt)
	}
	lengths := src[:256]
	n := int(src[256]) | int(src[257])<<8 | int(src[258])<<16 | int(src[259])<<24
	codes := canonicalCodes(lengths)

	// Build a decode map from (len,code) to symbol.
	type key struct {
		l uint8
		c uint16
	}
	decode := make(map[key]byte)
	for sym, c := range codes {
		if c.len > 0 {
			decode[key{c.len, c.code}] = byte(sym)
		}
	}
	// Single-symbol streams have a 1-bit code; handle zero-length
	// streams immediately.
	if n == 0 {
		return []byte{}, nil
	}

	out := make([]byte, 0, n)
	bits := src[260:]
	var cur uint16
	var curLen uint8
	bitIdx := 0
	for len(out) < n {
		if bitIdx >= 8*len(bits) {
			return nil, fmt.Errorf("%w: huffman bitstream exhausted at %d/%d", ErrCorrupt, len(out), n)
		}
		bit := bits[bitIdx/8] >> uint(bitIdx%8) & 1
		bitIdx++
		cur |= uint16(bit) << curLen
		curLen++
		if curLen > huffMaxCodeLen {
			return nil, fmt.Errorf("%w: no code matches", ErrCorrupt)
		}
		if sym, ok := decode[key{curLen, cur}]; ok {
			out = append(out, sym)
			cur, curLen = 0, 0
		}
	}
	return out, nil
}

// huffmanCodeLengths computes per-symbol code lengths via the standard
// heap construction, then clamps to huffMaxCodeLen by flattening (rare for
// 256 symbols; handled by recomputing with damped frequencies).
func huffmanCodeLengths(freq []uint64) []byte {
	type node struct {
		w           uint64
		sym         int // >= 0 for leaves
		left, right int // indices into pool for internal nodes
	}
	var pool []node
	h := &nodeHeap{}
	for s, f := range freq {
		if f > 0 {
			pool = append(pool, node{w: f, sym: s, left: -1, right: -1})
			heap.Push(h, heapItem{w: f, idx: len(pool) - 1})
		}
	}
	lengths := make([]byte, 256)
	switch h.Len() {
	case 0:
		return lengths
	case 1:
		// A single distinct symbol still needs one bit.
		lengths[pool[0].sym] = 1
		return lengths
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(heapItem)
		b := heap.Pop(h).(heapItem)
		pool = append(pool, node{w: a.w + b.w, sym: -1, left: a.idx, right: b.idx})
		heap.Push(h, heapItem{w: a.w + b.w, idx: len(pool) - 1})
	}
	root := heap.Pop(h).(heapItem).idx
	// Depth-first assignment of lengths.
	var walk func(idx int, depth byte)
	walk = func(idx int, depth byte) {
		nd := pool[idx]
		if nd.sym >= 0 {
			if depth == 0 {
				depth = 1
			}
			lengths[nd.sym] = depth
			return
		}
		walk(nd.left, depth+1)
		walk(nd.right, depth+1)
	}
	walk(root, 0)

	// Clamp pathological depths by damping frequencies and retrying.
	for _, l := range lengths {
		if l > huffMaxCodeLen {
			damped := make([]uint64, 256)
			for s, f := range freq {
				if f > 0 {
					damped[s] = f/2 + 1
				}
			}
			return huffmanCodeLengths(damped)
		}
	}
	return lengths
}

type huffCode struct {
	code uint16
	len  uint8
}

// canonicalCodes assigns canonical codes (shortest first, then by symbol).
// Codes are emitted LSB-first in the bitstream, so the stored code is the
// bit-reversed canonical value.
func canonicalCodes(lengths []byte) [256]huffCode {
	type sl struct {
		sym int
		l   byte
	}
	var order []sl
	for s, l := range lengths {
		if l > 0 {
			order = append(order, sl{s, l})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].l != order[j].l {
			return order[i].l < order[j].l
		}
		return order[i].sym < order[j].sym
	})
	var codes [256]huffCode
	code := uint16(0)
	prevLen := byte(0)
	for _, e := range order {
		code <<= uint(e.l - prevLen)
		prevLen = e.l
		codes[e.sym] = huffCode{code: reverseBits(code, e.l), len: e.l}
		code++
	}
	return codes
}

func reverseBits(v uint16, n byte) uint16 {
	var out uint16
	for i := byte(0); i < n; i++ {
		out = out<<1 | v&1
		v >>= 1
	}
	return out
}

type heapItem struct {
	w   uint64
	idx int
}

type nodeHeap []heapItem

func (h nodeHeap) Len() int      { return len(h) }
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].w != h[j].w {
		return h[i].w < h[j].w
	}
	return h[i].idx < h[j].idx // deterministic ties
}
func (h *nodeHeap) Push(x any) { *h = append(*h, x.(heapItem)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
