// Package compress implements the MCU-grade compression the paper's
// related work applies to flash traffic (§VII: "compression has been
// explored to reduce the total memory traffic, and therefore number of
// erases needed"). It provides an LZSS codec with a small window (the
// heatshrink-style configuration embedded systems actually deploy) and a
// delta prefilter that makes slowly drifting sensor records compressible.
//
// The exp-related experiment uses it as another exact baseline against
// FlipBit: compression shrinks the bytes written, FlipBit removes erases —
// different levers, composable in principle.
package compress

import (
	"errors"
	"fmt"
)

// LZSS parameters: a 256-byte sliding window and 3..18-byte matches, so
// every back-reference fits two bytes (8-bit distance, 4-bit length).
const (
	windowSize = 256
	minMatch   = 3
	maxMatch   = minMatch + 15
)

// ErrCorrupt is returned when decompressing malformed data.
var ErrCorrupt = errors.New("compress: corrupt LZSS stream")

// Compress encodes src. The format is a sequence of groups: one control
// byte whose bits (LSB first) mark the following 8 items as literal (1) or
// back-reference (0); a literal is one byte, a reference is two bytes
// (distance-1, then length-minMatch in the low nibble).
//
// Worst case output is ceil(n/8) control bytes + n literals.
func Compress(src []byte) []byte {
	out := make([]byte, 0, len(src)+len(src)/8+1)
	var (
		ctrlPos int
		ctrlBit uint
	)
	newGroup := func() {
		ctrlPos = len(out)
		out = append(out, 0)
		ctrlBit = 0
	}
	newGroup()
	emit := func(isLiteral bool, bytes ...byte) {
		if ctrlBit == 8 {
			newGroup()
		}
		if isLiteral {
			out[ctrlPos] |= 1 << ctrlBit
		}
		ctrlBit++
		out = append(out, bytes...)
	}

	for i := 0; i < len(src); {
		dist, length := findMatch(src, i)
		if length >= minMatch {
			emit(false, byte(dist-1), byte(length-minMatch))
			i += length
		} else {
			emit(true, src[i])
			i++
		}
	}
	return out
}

// findMatch searches the window behind position i for the longest match.
func findMatch(src []byte, i int) (dist, length int) {
	start := i - windowSize
	if start < 0 {
		start = 0
	}
	limit := len(src) - i
	if limit > maxMatch {
		limit = maxMatch
	}
	for j := start; j < i; j++ {
		l := 0
		// Matches may overlap the current position (classic LZ);
		// comparing against src directly is valid because the decoder
		// reproduces src byte by byte.
		for l < limit && src[j+l] == src[i+l] {
			l++
		}
		if l > length {
			dist, length = i-j, l
		}
	}
	return dist, length
}

// Decompress decodes an LZSS stream produced by Compress.
func Decompress(src []byte) ([]byte, error) {
	var out []byte
	i := 0
	for i < len(src) {
		ctrl := src[i]
		i++
		for bit := uint(0); bit < 8 && i < len(src); bit++ {
			if ctrl&(1<<bit) != 0 {
				out = append(out, src[i])
				i++
				continue
			}
			if i+1 >= len(src) {
				return nil, fmt.Errorf("%w: truncated reference at %d", ErrCorrupt, i)
			}
			dist := int(src[i]) + 1
			length := int(src[i+1]) + minMatch
			i += 2
			if dist > len(out) {
				return nil, fmt.Errorf("%w: reference past start (dist %d, have %d)", ErrCorrupt, dist, len(out))
			}
			from := len(out) - dist
			for k := 0; k < length; k++ {
				out = append(out, out[from+k])
			}
		}
	}
	return out, nil
}

// DeltaEncode replaces each byte with its difference from the previous one
// (mod 256). Slowly drifting sensor data becomes runs of near-zero bytes,
// which LZSS then folds up.
func DeltaEncode(src []byte) []byte {
	out := make([]byte, len(src))
	var prev byte
	for i, b := range src {
		out[i] = b - prev
		prev = b
	}
	return out
}

// DeltaDecode inverts DeltaEncode.
func DeltaDecode(src []byte) []byte {
	out := make([]byte, len(src))
	var acc byte
	for i, d := range src {
		acc += d
		out[i] = acc
	}
	return out
}

// Ratio returns compressedLen/originalLen (1.0 = incompressible; > 1
// means expansion).
func Ratio(original, compressed int) float64 {
	if original == 0 {
		return 1
	}
	return float64(compressed) / float64(original)
}
