package flash

import (
	"errors"
	"testing"
)

func TestPowerLossDuringProgram(t *testing.T) {
	d := MustNewDevice(smallSpec())
	d.InjectPowerLoss(0)
	err := d.ProgramByte(0, 0x0F)
	if !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("want ErrPowerLoss, got %v", err)
	}
	// The byte ends somewhere between its old value (0xFF) and the
	// target (0x0F): target bits stay set (never spuriously cleared
	// beyond the program), and no 0-bit was set.
	got := d.Peek(0)
	if got&0x0F != 0x0F {
		t.Errorf("bits below the target cleared: %08b", got)
	}
	// Device is usable again; completing the program must work.
	if err := d.ProgramByte(0, 0x0F); err != nil {
		t.Fatalf("retry after power loss: %v", err)
	}
	if d.Peek(0) != 0x0F {
		t.Errorf("retried program did not converge: %08b", d.Peek(0))
	}
}

func TestPowerLossDuringErase(t *testing.T) {
	d := MustNewDevice(smallSpec())
	base := d.PageBase(1)
	for i := 0; i < d.Spec().PageSize; i++ {
		if err := d.ProgramByte(base+i, 0x00); err != nil {
			t.Fatal(err)
		}
	}
	d.InjectPowerLoss(0)
	err := d.ErasePage(1)
	if !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("want ErrPowerLoss, got %v", err)
	}
	// The page is torn: a mixture of erased and stale bytes.
	var erased, stale int
	for i := 0; i < d.Spec().PageSize; i++ {
		switch d.Peek(base + i) {
		case 0xFF:
			erased++
		case 0x00:
			stale++
		}
	}
	if erased == 0 || stale == 0 {
		t.Errorf("torn erase not mixed: %d erased, %d stale", erased, stale)
	}
	if d.Wear(1) != 1 {
		t.Errorf("interrupted erase must still wear the page (wear %d)", d.Wear(1))
	}
	// Recovery: a clean erase restores the page.
	if err := d.ErasePage(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Spec().PageSize; i++ {
		if d.Peek(base+i) != 0xFF {
			t.Fatalf("byte %d not erased after recovery", i)
		}
	}
}

func TestPowerLossSkipCount(t *testing.T) {
	d := MustNewDevice(smallSpec())
	d.InjectPowerLoss(2) // survive two operations, interrupt the third
	if err := d.ProgramByte(0, 0xF0); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramByte(1, 0xF0); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramByte(2, 0xF0); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("third op should be interrupted, got %v", err)
	}
	// One-shot: the fourth op succeeds.
	if err := d.ProgramByte(3, 0xF0); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLossOneShot(t *testing.T) {
	d := MustNewDevice(smallSpec())
	d.InjectPowerLoss(0)
	_ = d.ProgramByte(0, 0x00)
	for i := 1; i < 10; i++ {
		if err := d.ProgramByte(i, 0x00); err != nil {
			t.Fatalf("op %d after one-shot fault: %v", i, err)
		}
	}
}

func TestPowerLossSkippedProgramsDoNotTrip(t *testing.T) {
	d := MustNewDevice(smallSpec())
	d.InjectPowerLoss(0)
	// Programming the current value is elided, so it must not consume
	// the fault.
	if err := d.ProgramByte(0, 0xFF); err != nil {
		t.Fatalf("skipped program tripped the fault: %v", err)
	}
	if err := d.ProgramByte(0, 0x00); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("real program should trip the fault, got %v", err)
	}
}
