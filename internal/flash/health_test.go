package flash

import (
	"errors"
	"testing"
)

func healthSpec() Spec {
	s := DefaultSpec()
	s.PageSize = 32
	s.NumPages = 8
	s.Banks = 2
	return s
}

// TestDriftMaskGroundTruth: the drift mask must reconstruct the intended
// image (data | mask) through fault flips, and programs must absorb mask
// bits they intentionally clear.
func TestDriftMaskGroundTruth(t *testing.T) {
	d := MustNewDevice(healthSpec())
	const p = 0
	ps := d.Spec().PageSize

	if n := d.StuckBits(p); n != 0 {
		t.Fatalf("fresh page reports %d stuck bits", n)
	}

	// A silent stuck-bits erase: page should read FF except the stuck
	// cells, and mask must cover exactly the difference.
	d.ArmBankFault(d.BankOf(p), Fault{Kind: FaultStuckBits, Bits: 16})
	if err := d.ErasePage(p); err != nil {
		t.Fatal(err)
	}
	mask := make([]byte, ps)
	n, err := d.StuckMaskInto(p, mask)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("stuck-bits fault recorded no drift")
	}
	page := make([]byte, ps)
	d.PeekPage(p, page)
	for i := range page {
		if page[i]|mask[i] != 0xFF {
			t.Fatalf("byte %d: data %08b | mask %08b != FF", i, page[i], mask[i])
		}
	}

	// Find a stuck byte and intentionally program its stuck bits to 0:
	// the mask must absorb them (restoring a 1 there would now corrupt).
	stuckAt := -1
	for i := range mask {
		if mask[i] != 0 {
			stuckAt = i
			break
		}
	}
	base := d.PageBase(p)
	if err := d.ProgramByte(base+stuckAt, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.StuckMaskInto(p, mask); err != nil {
		t.Fatal(err)
	}
	if mask[stuckAt] != 0 {
		t.Errorf("program did not absorb drift: mask[%d] = %08b", stuckAt, mask[stuckAt])
	}

	// An erase forgets all drift.
	if err := d.ErasePage(p); err != nil {
		t.Fatal(err)
	}
	if n := d.StuckBits(p); n != 0 {
		t.Errorf("drift survived erase: %d bits", n)
	}
}

// TestDriftFromWornOutErase: past-endurance erases stick cells and the
// mask tracks them, so data | mask is still all-1s (the intended image).
func TestDriftFromWornOutErase(t *testing.T) {
	s := healthSpec()
	s.EnduranceCycles = 2
	d := MustNewDevice(s)
	const p = 1
	for i := 0; i < 3; i++ {
		err := d.ErasePage(p)
		if i < 2 && err != nil {
			t.Fatal(err)
		}
		if i == 2 && !errors.Is(err, ErrWornOut) {
			t.Fatalf("erase %d: got %v, want ErrWornOut", i, err)
		}
	}
	if !d.WornOut(p) || !d.Degraded(p) {
		t.Error("page past endurance not marked worn/degraded")
	}
	ps := d.Spec().PageSize
	mask := make([]byte, ps)
	if _, err := d.StuckMaskInto(p, mask); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, ps)
	d.PeekPage(p, page)
	for i := range page {
		if page[i]|mask[i] != 0xFF {
			t.Fatalf("byte %d: data %08b | mask %08b != FF", i, page[i], mask[i])
		}
	}
}

func TestRetire(t *testing.T) {
	d := MustNewDevice(healthSpec())
	const p = 3
	if err := d.ProgramByte(d.PageBase(p), 0xA5); err != nil {
		t.Fatal(err)
	}
	if err := d.Retire(p); err != nil {
		t.Fatal(err)
	}
	if !d.Retired(p) || !d.Degraded(p) {
		t.Error("retired page not reported retired/degraded")
	}
	if err := d.ProgramByte(d.PageBase(p), 0x00); !errors.Is(err, ErrPageRetired) {
		t.Errorf("program on retired page: got %v, want ErrPageRetired", err)
	}
	buf := make([]byte, d.Spec().PageSize)
	if err := d.ProgramPage(p, buf); !errors.Is(err, ErrPageRetired) {
		t.Errorf("program-page on retired page: got %v, want ErrPageRetired", err)
	}
	if err := d.ErasePage(p); !errors.Is(err, ErrPageRetired) {
		t.Errorf("erase on retired page: got %v, want ErrPageRetired", err)
	}
	// Reads keep working: the remap copy may still be in flight.
	if v, err := d.ReadByteAt(d.PageBase(p)); err != nil || v != 0xA5 {
		t.Errorf("read on retired page: %v, %#x", err, v)
	}
	// Idempotent, and exactly one retirement counted.
	if err := d.Retire(p); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Retirements; got != 1 {
		t.Errorf("Retirements = %d, want 1", got)
	}
}

func TestNoteScrubCountsOnBus(t *testing.T) {
	d := MustNewDevice(healthSpec())
	var events int
	d.Attach(ObserverFunc(func(ev OpEvent) {
		if ev.Kind == OpScrub {
			events++
		}
	}))
	d.NoteScrub(2)
	d.NoteScrub(5)
	if got := d.Stats().Scrubs; got != 2 {
		t.Errorf("Scrubs = %d, want 2", got)
	}
	if events != 2 {
		t.Errorf("observer saw %d scrub events, want 2", events)
	}
	if OpScrub.String() != "scrub" || OpRetire.String() != "retire" {
		t.Errorf("op kind strings: %q %q", OpScrub, OpRetire)
	}
}

func TestWearSnapshot(t *testing.T) {
	d := MustNewDevice(healthSpec())
	for p := 0; p < d.Spec().NumPages; p++ {
		for i := 0; i <= p; i++ {
			if err := d.ErasePage(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := d.WearSnapshot()
	if len(snap) != d.Spec().NumPages {
		t.Fatalf("snapshot length %d", len(snap))
	}
	for p, w := range snap {
		if w != uint32(p+1) || w != d.Wear(p) {
			t.Errorf("page %d: snapshot %d, Wear %d, want %d", p, w, d.Wear(p), p+1)
		}
	}
	if d.MaxWear() != uint32(d.Spec().NumPages) {
		t.Errorf("MaxWear = %d", d.MaxWear())
	}
}

func TestHealthReport(t *testing.T) {
	s := healthSpec()
	s.EnduranceCycles = 4
	d := MustNewDevice(s)
	// Page 0: worn out (5 erases). Page 1: half worn. Page 2: retired.
	for i := 0; i < 5; i++ {
		d.ErasePage(0)
	}
	for i := 0; i < 2; i++ {
		if err := d.ErasePage(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Retire(2); err != nil {
		t.Fatal(err)
	}

	rep := d.Health()
	if rep.Endurance != 4 || len(rep.Banks) != 2 {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.MaxWear != 5 || rep.Dead != 1 || rep.Retired != 1 {
		t.Errorf("totals: max %d dead %d retired %d", rep.MaxWear, rep.Dead, rep.Retired)
	}
	if rep.Stuck == 0 {
		t.Error("worn-out page recorded no stuck cells")
	}
	pages := 0
	for _, bh := range rep.Banks {
		hist := 0
		for _, c := range bh.Histogram {
			hist += c
		}
		if hist != bh.Pages {
			t.Errorf("bank %d: histogram sums to %d of %d pages", bh.Bank, hist, bh.Pages)
		}
		pages += bh.Pages
	}
	if pages != d.Spec().NumPages {
		t.Errorf("banks cover %d pages", pages)
	}
}
