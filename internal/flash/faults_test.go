package flash

import (
	"errors"
	"testing"
)

// drainSchedule pulls n faults from a schedule.
func drainSchedule(s FaultSchedule, n int) []Fault {
	out := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		f, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, f)
	}
	return out
}

func TestRandomScheduleDeterministic(t *testing.T) {
	mix := FaultMix{PowerLoss: 3, StuckBits: 2, ReadDisturb: 1, MinGap: 0, MaxGap: 40, MaxBits: 4}
	a := drainSchedule(NewRandomSchedule(99, mix), 256)
	b := drainSchedule(NewRandomSchedule(99, mix), 256)
	if len(a) != 256 || len(b) != 256 {
		t.Fatalf("schedule ended early: %d / %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must diverge somewhere in the stream.
	c := drainSchedule(NewRandomSchedule(100, mix), 256)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault streams")
	}
}

func TestRandomScheduleMixCoverage(t *testing.T) {
	mix := FaultMix{PowerLoss: 1, StuckBits: 1, ReadDisturb: 1, MinGap: 5, MaxGap: 9, MaxBits: 3}
	counts := map[FaultKind]int{}
	for _, f := range drainSchedule(NewRandomSchedule(7, mix), 600) {
		counts[f.Kind]++
		if f.After < 5 || f.After > 9 {
			t.Fatalf("gap %d outside [5,9]", f.After)
		}
		if f.Bits < 1 || f.Bits > 3 {
			t.Fatalf("bits %d outside [1,3]", f.Bits)
		}
	}
	for _, k := range []FaultKind{FaultPowerLoss, FaultStuckBits, FaultReadDisturb} {
		if counts[k] == 0 {
			t.Errorf("kind %v never drawn", k)
		}
	}
}

func TestStuckBitsFault(t *testing.T) {
	d := MustNewDevice(smallSpec())
	d.ArmFault(Fault{Kind: FaultStuckBits, Bits: 6})
	// The erase reports success — the failure is silent.
	if err := d.ErasePage(0); err != nil {
		t.Fatalf("stuck-bits erase must not error: %v", err)
	}
	stuck := 0
	for i := 0; i < d.Spec().PageSize; i++ {
		if v := d.Peek(d.PageBase(0) + i); v != 0xFF {
			for bit := 0; bit < 8; bit++ {
				if v&(1<<uint(bit)) == 0 {
					stuck++
				}
			}
		}
	}
	if stuck == 0 || stuck > 6 {
		t.Errorf("want 1..6 stuck cells after fault, got %d", stuck)
	}
	if d.FaultsFired() != 1 {
		t.Errorf("FaultsFired = %d, want 1", d.FaultsFired())
	}
	// A clean erase clears the stuck cells (first wear-out events are
	// recoverable in NOR; permanence comes from the endurance model).
	if err := d.ErasePage(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Spec().PageSize; i++ {
		if d.Peek(d.PageBase(0)+i) != 0xFF {
			t.Fatalf("cell %d still stuck after clean erase", i)
		}
	}
}

func TestReadDisturbFault(t *testing.T) {
	d := MustNewDevice(smallSpec())
	ps := d.Spec().PageSize
	buf := make([]byte, ps)
	d.ArmFault(Fault{Kind: FaultReadDisturb, Bits: 3})
	// The read itself is served correctly…
	if err := d.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != 0xFF {
			t.Fatalf("read %d returned disturbed data %02x", i, v)
		}
	}
	// …but afterwards the page has drifted cells.
	flipped := 0
	for i := 0; i < ps; i++ {
		if d.Peek(d.PageBase(0)+i) != 0xFF {
			flipped++
		}
	}
	if flipped == 0 {
		t.Error("read-disturb fault left no trace")
	}
	// Programs and erases must not advance a read-disturb countdown.
	d.ClearFaults()
	d.ArmFault(Fault{Kind: FaultReadDisturb, After: 0})
	if err := d.ProgramByte(d.PageBase(1), 0x00); err != nil {
		t.Fatal(err)
	}
	if d.FaultsFired() != 1 {
		t.Fatalf("program advanced a read-disturb fault (fired %d)", d.FaultsFired())
	}
}

func TestBankFaultScoped(t *testing.T) {
	spec := smallSpec()
	spec.Banks = 4
	spec.NumPages = 16
	d := MustNewDevice(spec)
	// Bank 1's countdown: one free program, then the victim.
	d.ArmBankFault(1, Fault{Kind: FaultPowerLoss, After: 1})
	// Traffic on other banks must not advance it.
	for p := 0; p < spec.NumPages; p++ {
		if d.BankOf(p) == 1 {
			continue
		}
		if err := d.ProgramByte(d.PageBase(p), 0x00); err != nil {
			t.Fatalf("bank %d program hit bank 1's fault: %v", d.BankOf(p), err)
		}
	}
	base := d.PageBase(1) // page 1 lives in bank 1
	if err := d.ProgramByte(base, 0x0F); err != nil {
		t.Fatalf("first bank-1 program should survive: %v", err)
	}
	if err := d.ProgramByte(base+1, 0x0F); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("second bank-1 program should trip, got %v", err)
	}
}

func TestFaultScheduleReArms(t *testing.T) {
	d := MustNewDevice(smallSpec())
	// Power loss every other state-changing op, forever.
	d.SetFaultSchedule(NewRandomSchedule(1, FaultMix{PowerLoss: 1, MinGap: 1, MaxGap: 1}))
	losses := 0
	for i := 0; i < 40; i++ {
		err := d.ProgramByte(i%d.Spec().PageSize, 0x00)
		if errors.Is(err, ErrPowerLoss) {
			losses++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	// Gap 1 → every second eligible op is a victim; skipped programs
	// (already-0 bytes after a successful clear) do not count.
	if losses < 5 {
		t.Errorf("schedule stopped re-arming: only %d losses in 40 ops", losses)
	}
	if got := d.FaultsFired(); got != uint64(losses) {
		t.Errorf("FaultsFired = %d, want %d", got, losses)
	}
	d.ClearFaults()
	if err := d.ErasePage(0); err != nil {
		t.Fatalf("ClearFaults left a schedule behind: %v", err)
	}
}

func TestClearFaultsDisarmsAllScopes(t *testing.T) {
	spec := smallSpec()
	spec.Banks = 2
	spec.NumPages = 8
	d := MustNewDevice(spec)
	d.ArmFault(Fault{Kind: FaultPowerLoss})
	d.ArmBankFault(0, Fault{Kind: FaultPowerLoss})
	d.ArmBankFault(1, Fault{Kind: FaultStuckBits})
	d.ClearFaults()
	for p := 0; p < spec.NumPages; p++ {
		if err := d.ErasePage(p); err != nil {
			t.Fatalf("fault survived ClearFaults: %v", err)
		}
	}
	if d.FaultsFired() != 0 {
		t.Errorf("FaultsFired = %d after clear-before-fire", d.FaultsFired())
	}
}

// TestFaultedDeviceDeterministic: the full device under a fault schedule is a
// pure function of (spec, device seed, schedule seed) — the replay guarantee
// the campaign engine builds on.
func TestFaultedDeviceDeterministic(t *testing.T) {
	run := func() ([]byte, Stats) {
		spec := smallSpec()
		d := MustNewDevice(spec)
		d.SetFaultSchedule(NewRandomSchedule(5, FaultMix{
			PowerLoss: 2, StuckBits: 1, ReadDisturb: 1, MinGap: 0, MaxGap: 6, MaxBits: 3,
		}))
		buf := make([]byte, spec.PageSize)
		for r := 0; r < 300; r++ {
			p := r % spec.NumPages
			switch r % 3 {
			case 0:
				_ = d.ErasePage(p)
			case 1:
				_ = d.ProgramByte(d.PageBase(p)+(r%spec.PageSize), byte(r))
			case 2:
				_ = d.ReadPage(p, buf)
			}
		}
		img := make([]byte, spec.Size())
		for a := range img {
			img[a] = d.Peek(a)
		}
		return img, d.Stats()
	}
	img1, st1 := run()
	img2, st2 := run()
	if st1 != st2 {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", st1, st2)
	}
	for a := range img1 {
		if img1[a] != img2[a] {
			t.Fatalf("array differs at %#x: %02x vs %02x", a, img1[a], img2[a])
		}
	}
}
