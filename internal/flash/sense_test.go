package flash

import (
	"errors"
	"testing"
	"time"

	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// senseSpec is a small geometry for sense tests: 8 banks of 4 pages.
func senseSpec() Spec {
	s := DefaultSpec()
	s.PageSize = 64
	s.NumPages = 32
	s.Banks = 8
	return s
}

// fillRandom programs every page of d with seeded random contents.
func fillRandom(t *testing.T, d *Device, rng *xrand.RNG) {
	t.Helper()
	sp := d.Spec()
	buf := make([]byte, sp.PageSize)
	for p := 0; p < sp.NumPages; p++ {
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		if err := d.EraseProgramPage(p, buf); err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
	}
}

// hostOracle computes the op-combination of the given pages from Peek'd
// contents — the host-side ground truth an in-flash sense must match.
func hostOracle(d *Device, op SenseOp, pages []int, invert []bool, dst []byte) {
	sp := d.Spec()
	fill := byte(0xFF)
	if op == SenseOR {
		fill = 0
	}
	for i := range dst {
		dst[i] = fill
	}
	page := make([]byte, sp.PageSize)
	for j, p := range pages {
		d.PeekPage(p, page)
		for i, v := range page {
			if invert != nil && invert[j] {
				v = ^v
			}
			if op == SenseAND {
				dst[i] &= v
			} else {
				dst[i] |= v
			}
		}
	}
}

// randomPlan draws a same-bank page set, op and invert mask from rng.
func randomPlan(d *Device, rng *xrand.RNG) (SenseOp, []int, []bool) {
	sp := d.Spec()
	banks := d.Banks()
	perBank := sp.NumPages / banks
	b := rng.Intn(banks)
	n := 1 + rng.Intn(perBank)
	pages := make([]int, 0, n)
	for _, off := range rng.Perm(perBank)[:n] {
		pages = append(pages, b+off*banks)
	}
	op := SenseAND
	if rng.Intn(2) == 1 {
		op = SenseOR
	}
	var invert []bool
	if rng.Intn(2) == 1 {
		invert = make([]bool, n)
		for i := range invert {
			invert[i] = rng.Intn(2) == 1
		}
	}
	return op, pages, invert
}

// TestSenseMultiMatchesHostOracle: every AND/OR/NOT combination an in-flash
// sense can express equals the host-side bitwise combination of the stored
// pages, on random page contents and random plans.
func TestSenseMultiMatchesHostOracle(t *testing.T) {
	d := MustNewDevice(senseSpec())
	rng := xrand.New(0x5E45E)
	fillRandom(t, d, rng)
	got := make([]byte, d.Spec().PageSize)
	want := make([]byte, d.Spec().PageSize)
	for trial := 0; trial < 500; trial++ {
		op, pages, invert := randomPlan(d, rng)
		hostOracle(d, op, pages, invert, want)
		if err := d.SenseMulti(op, pages, invert, got); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (%v over %v, invert %v): byte %d got %08b want %08b",
					trial, op, pages, invert, i, got[i], want[i])
			}
		}
	}
}

// TestSenseMultiMatchesOracleUnderFaults: with read-disturb and retention
// faults armed, every sense still equals the host oracle taken from the
// pre-sense array state — the damage lands post-serve, and the sense is
// margin-aware so marginal cells resolve to their stored values.
func TestSenseMultiMatchesOracleUnderFaults(t *testing.T) {
	d := MustNewDevice(senseSpec())
	rng := xrand.New(0xFA07)
	fillRandom(t, d, rng)
	d.SetFaultSchedule(NewRandomSchedule(7, FaultMix{
		ReadDisturb: 1, Retention: 1, MinGap: 0, MaxGap: 3, MaxBits: 2,
	}))
	defer d.ClearFaults()
	got := make([]byte, d.Spec().PageSize)
	want := make([]byte, d.Spec().PageSize)
	for trial := 0; trial < 400; trial++ {
		op, pages, invert := randomPlan(d, rng)
		hostOracle(d, op, pages, invert, want)
		if err := d.SenseMulti(op, pages, invert, got); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (%v over %v, invert %v): byte %d got %08b want %08b",
					trial, op, pages, invert, i, got[i], want[i])
			}
		}
	}
	if d.FaultsFired() == 0 {
		t.Fatal("no faults fired; the test exercised nothing")
	}
}

// TestSenseMultiChargesOncePerSense: a K-page sense emits one OpSense event
// charged once — not K page reads — and the counters see one sense of K
// pages.
func TestSenseMultiChargesOncePerSense(t *testing.T) {
	d := MustNewDevice(senseSpec())
	sp := d.Spec()
	var events []OpEvent
	d.Attach(ObserverFunc(func(ev OpEvent) { events = append(events, ev) }))
	pages := []int{0, 8, 16} // bank 0 of the 8-bank split
	dst := make([]byte, sp.PageSize)
	if err := d.SenseMulti(SenseAND, pages, nil, dst); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Kind != OpSense || ev.Pages != 3 || ev.Bytes != sp.PageSize || ev.Bank != 0 {
		t.Fatalf("event %+v", ev)
	}
	wantEnergy := sp.SenseEnergy * energy.Energy(sp.PageSize)
	wantBusy := sp.SenseLatency * time.Duration(sp.PageSize)
	if ev.Energy != wantEnergy || ev.Busy != wantBusy {
		t.Fatalf("charged %v/%v, want %v/%v", ev.Energy, ev.Busy, wantEnergy, wantBusy)
	}
	st := d.Stats()
	if st.Senses != 1 || st.PagesSensed != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.Energy != wantEnergy || st.Busy != wantBusy {
		t.Fatalf("ledger %v/%v, want %v/%v", st.Energy, st.Busy, wantEnergy, wantBusy)
	}
}

// TestSenseMultiMarginAware: a marginal retention cell must resolve to its
// stored value in a sense — host reads of the same page flicker.
func TestSenseMultiMarginAware(t *testing.T) {
	d := MustNewDevice(senseSpec())
	sp := d.Spec()
	buf := make([]byte, sp.PageSize)
	if err := d.EraseProgramPage(0, buf); err != nil { // all zeros: everything programmed
		t.Fatal(err)
	}
	d.ArmFault(Fault{Kind: FaultRetention})
	if _, err := d.ReadByteAt(0); err != nil { // trips retention: one cell goes marginal
		t.Fatal(err)
	}
	if d.RiseBits(0) != 1 {
		t.Fatalf("rise bits %d, want 1", d.RiseBits(0))
	}
	dst := make([]byte, sp.PageSize)
	for trial := 0; trial < 32; trial++ {
		if err := d.SenseMulti(SenseAND, []int{0}, nil, dst); err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			if v != 0 {
				t.Fatalf("trial %d: sense flickered: byte %d = %08b", trial, i, v)
			}
		}
	}
}

// TestSenseMultiErrors covers the argument contract.
func TestSenseMultiErrors(t *testing.T) {
	d := MustNewDevice(senseSpec())
	sp := d.Spec()
	dst := make([]byte, sp.PageSize)
	if err := d.SenseMulti(SenseAND, nil, nil, dst); !errors.Is(err, ErrSensePages) {
		t.Errorf("empty pages: %v", err)
	}
	big := make([]int, sp.MaxSensePages+1)
	if err := d.SenseMulti(SenseAND, big, nil, dst); !errors.Is(err, ErrSensePages) {
		t.Errorf("too many pages: %v", err)
	}
	if err := d.SenseMulti(SenseAND, []int{0, 1}, nil, dst); !errors.Is(err, ErrSenseBanks) {
		t.Errorf("cross-bank: %v", err)
	}
	if err := d.SenseMulti(SenseAND, []int{0, 8}, []bool{true}, dst); !errors.Is(err, ErrSenseInvert) {
		t.Errorf("invert mismatch: %v", err)
	}
	if err := d.SenseMulti(SenseAND, []int{0}, nil, dst[:8]); !errors.Is(err, ErrPageSize) {
		t.Errorf("short dst: %v", err)
	}
	if err := d.SenseMulti(SenseAND, []int{sp.NumPages}, nil, dst); !errors.Is(err, ErrBounds) {
		t.Errorf("out of range page: %v", err)
	}
}

// TestSenseMultiZeroAlloc: the steady-state sense path must not allocate.
func TestSenseMultiZeroAlloc(t *testing.T) {
	d := MustNewDevice(senseSpec())
	pages := []int{0, 8, 16, 24}
	dst := make([]byte, d.Spec().PageSize)
	invert := []bool{false, true, false, true}
	allocs := testing.AllocsPerRun(200, func() {
		if err := d.SenseMulti(SenseOR, pages, invert, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SenseMulti allocates %.1f times per op, want 0", allocs)
	}
}

// TestSpecValidate: malformed specs fail in NewDevice with a description of
// the problem instead of an unhelpful panic deep in the bank split.
func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	mut := []struct {
		name string
		f    func(*Spec)
	}{
		{"zero page size", func(s *Spec) { s.PageSize = 0 }},
		{"negative page size", func(s *Spec) { s.PageSize = -1 }},
		{"zero pages", func(s *Spec) { s.NumPages = 0 }},
		{"negative banks", func(s *Spec) { s.Banks = -1 }},
		{"pages not divisible by banks", func(s *Spec) { s.NumPages = 10; s.Banks = 4 }},
		{"pages not divisible by default banks", func(s *Spec) { s.NumPages = 6; s.Banks = 0 }},
		{"zero read latency", func(s *Spec) { s.ReadLatency = 0 }},
		{"zero program latency", func(s *Spec) { s.ProgramLatency = 0 }},
		{"zero erase latency", func(s *Spec) { s.EraseLatency = 0 }},
		{"zero read energy", func(s *Spec) { s.ReadEnergy = 0 }},
		{"zero program energy", func(s *Spec) { s.ProgramEnergy = 0 }},
		{"zero erase energy", func(s *Spec) { s.EraseEnergy = 0 }},
		{"negative sense latency", func(s *Spec) { s.SenseLatency = -1 }},
		{"negative sense energy", func(s *Spec) { s.SenseEnergy = -1 }},
		{"negative max sense pages", func(s *Spec) { s.MaxSensePages = -1 }},
		{"zero endurance", func(s *Spec) { s.EnduranceCycles = 0 }},
	}
	for _, tc := range mut {
		s := DefaultSpec()
		tc.f(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated but should have been rejected", tc.name)
		}
		if _, err := NewDevice(s); err == nil {
			t.Errorf("%s: NewDevice accepted the spec", tc.name)
		}
	}
	// Clamping interacts with divisibility: one page with many banks clamps
	// to one bank, which divides evenly.
	s := DefaultSpec()
	s.NumPages = 1
	s.Banks = 4
	if err := s.Validate(); err != nil {
		t.Errorf("single-page spec rejected: %v", err)
	}
	// Sense fields are normalised at device construction.
	d := MustNewDevice(DefaultSpec())
	sp := d.Spec()
	if sp.SenseLatency != 2*sp.ReadLatency || sp.SenseEnergy != 2*sp.ReadEnergy {
		t.Errorf("sense defaults not anchored on read cost: %v/%v", sp.SenseLatency, sp.SenseEnergy)
	}
	if sp.MaxSensePages != DefaultMaxSensePages {
		t.Errorf("MaxSensePages = %d, want %d", sp.MaxSensePages, DefaultMaxSensePages)
	}
}

// TestReadChargesPerTouchedPage: a Read spanning pages emits one OpRead per
// touched page, each charged per byte actually served from that page, so
// host-read cost comparisons are not skewed by call granularity.
func TestReadChargesPerTouchedPage(t *testing.T) {
	d := MustNewDevice(senseSpec())
	sp := d.Spec()
	var events []OpEvent
	d.Attach(ObserverFunc(func(ev OpEvent) { events = append(events, ev) }))
	// Span from mid-page 1 to mid-page 3: 2 partial pages + 1 full page.
	start := sp.PageSize + sp.PageSize/2
	n := 2 * sp.PageSize
	dst := make([]byte, n)
	if err := d.Read(start, dst); err != nil {
		t.Fatal(err)
	}
	wantSpans := []struct{ addr, bytes int }{
		{start, sp.PageSize / 2},
		{2 * sp.PageSize, sp.PageSize},
		{3 * sp.PageSize, sp.PageSize / 2},
	}
	if len(events) != len(wantSpans) {
		t.Fatalf("got %d OpRead events, want %d (one per touched page)", len(events), len(wantSpans))
	}
	var gotEnergy energy.Energy
	var gotBusy time.Duration
	for i, ev := range events {
		w := wantSpans[i]
		if ev.Kind != OpRead || ev.Addr != w.addr || ev.Bytes != w.bytes {
			t.Fatalf("event %d: %+v, want read addr %#x bytes %d", i, ev, w.addr, w.bytes)
		}
		if ev.Bank != d.BankOf(d.PageOf(w.addr)) {
			t.Fatalf("event %d delivered on bank %d, want %d", i, ev.Bank, d.BankOf(d.PageOf(w.addr)))
		}
		if ev.Energy != sp.ReadEnergy*energy.Energy(w.bytes) || ev.Busy != sp.ReadLatency*time.Duration(w.bytes) {
			t.Fatalf("event %d charged %v/%v, want per-byte read cost", i, ev.Energy, ev.Busy)
		}
		gotEnergy += ev.Energy
		gotBusy += ev.Busy
	}
	st := d.Stats()
	if st.Reads != uint64(n) {
		t.Fatalf("read bytes %d, want %d", st.Reads, n)
	}
	if st.Energy != gotEnergy || st.Busy != gotBusy {
		t.Fatalf("ledger %v/%v does not match the event stream %v/%v", st.Energy, st.Busy, gotEnergy, gotBusy)
	}
	if want := sp.ReadEnergy * energy.Energy(n); st.Energy != want {
		t.Fatalf("total read energy %v, want %v", st.Energy, want)
	}
}

// BenchmarkSenseMulti measures the steady-state multi-page sense.
func BenchmarkSenseMulti(b *testing.B) {
	d := MustNewDevice(senseSpec())
	pages := []int{0, 8, 16, 24}
	dst := make([]byte, d.Spec().PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.SenseMulti(SenseAND, pages, nil, dst); err != nil {
			b.Fatal(err)
		}
	}
}
