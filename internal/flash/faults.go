package flash

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Fault scheduling. The one-shot power-loss hook of early versions grew into
// a general mechanism: a device (or a single bank) can be armed with a
// queue of faults — power loss tearing a program or erase partway, marginal
// cells left stuck at 0 by an erase, read-disturb bit flips — and a
// deterministic schedule can keep re-arming faults forever. Everything is
// driven by xrand seeds, so a failing fault campaign replays byte-identically
// from its seed alone.
//
// Scopes: each bank owns a fault scope whose countdown only observes that
// bank's operations, which keeps fault firing deterministic under concurrent
// traffic (the serial ≡ concurrent property test covers it). The device-wide
// shared scope — what InjectPowerLoss arms — counts operations across all
// banks; under concurrency *which* racing operation trips it is
// scheduling-dependent, like a real brown-out.

// FaultKind selects the failure mode of an injected fault.
type FaultKind uint8

// Supported fault kinds.
const (
	// FaultNone is the zero value; arming it is a no-op.
	FaultNone FaultKind = iota
	// FaultPowerLoss interrupts the victim program or erase partway; the
	// operation reports ErrPowerLoss and leaves torn state behind.
	FaultPowerLoss
	// FaultStuckBits lets the victim erase complete but leaves Bits cells
	// stuck at 0 — the marginal-cell failure of §II-B, silent until a
	// read-back verify catches it.
	FaultStuckBits
	// FaultReadDisturb serves the victim read correctly but then clears
	// Bits cells in the page read — charge drift from repeated reads.
	FaultReadDisturb
	// FaultTransientProgram fails the victim program with ErrTransient:
	// the pulse ran (full energy and latency drawn) but verify found bits
	// short of their target level. State stays reachable, so re-issuing
	// the program can complete it; with Retries > 1 the same incident
	// keeps failing re-issues until the budget drains.
	FaultTransientProgram
	// FaultTransientErase fails the victim erase with ErrTransient: the
	// pulse stressed the oxide (wear still increments) but left a mixture
	// of erased and stale bytes. A re-issued erase can succeed; Retries
	// budgets the incident like FaultTransientProgram.
	FaultTransientErase
	// FaultRetention serves the victim read correctly but then marks a
	// programmed cell in the page read as marginal: its charge has leaked
	// to the read-threshold boundary, so later host reads of that cell
	// flicker between 0 and 1 until it is re-programmed (retention.go).
	FaultRetention

	// faultKindCount sizes exhaustiveness checks; keep it last.
	faultKindCount
)

func (k FaultKind) String() string {
	switch k {
	case FaultPowerLoss:
		return "power-loss"
	case FaultStuckBits:
		return "stuck-bits"
	case FaultReadDisturb:
		return "read-disturb"
	case FaultTransientProgram:
		return "transient-program"
	case FaultTransientErase:
		return "transient-erase"
	case FaultRetention:
		return "retention"
	}
	return "none"
}

// transient reports whether k is one of the retryable verify-failure kinds.
func (k FaultKind) transient() bool {
	return k == FaultTransientProgram || k == FaultTransientErase
}

// appliesTo reports whether an op of kind op advances (and can trip) a fault
// of kind k. Power loss stalks state-changing operations, stuck bits ride on
// erases, read disturb and retention on reads — including multi-page senses,
// which stress wordlines exactly like reads do. Skipped programs never count
// — no pulse, no fault, matching the original one-shot semantics.
func (k FaultKind) appliesTo(op OpKind) bool {
	switch k {
	case FaultPowerLoss:
		return op == OpProgram || op == OpErase
	case FaultStuckBits:
		return op == OpErase
	case FaultReadDisturb:
		return op == OpRead || op == OpSense
	case FaultTransientProgram:
		return op == OpProgram
	case FaultTransientErase:
		return op == OpErase
	case FaultRetention:
		return op == OpRead || op == OpSense
	}
	return false
}

// Fault is one scheduled failure.
type Fault struct {
	Kind FaultKind
	// After is how many operations of the fault's kind-domain complete
	// normally before the next one becomes the victim.
	After int
	// Bits is how many cells a stuck-bits or read-disturb fault affects
	// (0 means 1).
	Bits int
	// Retries is the transient-fault budget: how many consecutive issues
	// of the faulted operation (the first plus Retries-1 re-issues) fail
	// before one succeeds (0 means 1 — fail once, succeed on re-issue).
	// Ignored by non-transient kinds.
	Retries int
}

// bits returns the effective affected-cell count.
func (f Fault) bits() int {
	if f.Bits <= 0 {
		return 1
	}
	return f.Bits
}

// retries returns the effective transient failure budget.
func (f Fault) retries() int {
	if f.Retries <= 0 {
		return 1
	}
	return f.Retries
}

// FaultSchedule supplies faults to re-arm a scope after each firing. Next
// returns the next fault and true, or false when the schedule is exhausted.
// Implementations must be deterministic to keep campaigns replayable.
type FaultSchedule interface {
	Next() (Fault, bool)
}

// FaultMix parameterises RandomSchedule: relative weights per fault kind and
// the uniform ranges the gap and bit counts are drawn from.
type FaultMix struct {
	PowerLoss        int // weight of FaultPowerLoss
	StuckBits        int // weight of FaultStuckBits
	ReadDisturb      int // weight of FaultReadDisturb
	TransientProgram int // weight of FaultTransientProgram
	TransientErase   int // weight of FaultTransientErase
	Retention        int // weight of FaultRetention

	MinGap, MaxGap int // Fault.After drawn uniformly from [MinGap, MaxGap]
	MaxBits        int // Bits drawn uniformly from [1, MaxBits] (0 → 1)
	// MaxRetries bounds the transient budget: Retries is drawn uniformly
	// from [1, MaxRetries] for transient kinds (0 → always 1).
	MaxRetries int
}

// weightSum returns the total weight, defaulting to power loss only.
func (m FaultMix) weightSum() int {
	s := m.PowerLoss + m.StuckBits + m.ReadDisturb +
		m.TransientProgram + m.TransientErase + m.Retention
	if s <= 0 {
		return 1
	}
	return s
}

// Validate rejects mixes that would corrupt the weighted draw: a negative
// weight silently skews every pick after it in the cascade (the draw is a
// prefix-sum walk), so it is refused outright rather than clamped. Range
// parameters must be non-negative for the same reason.
func (m FaultMix) Validate() error {
	for _, w := range []struct {
		name string
		v    int
	}{
		{"PowerLoss", m.PowerLoss},
		{"StuckBits", m.StuckBits},
		{"ReadDisturb", m.ReadDisturb},
		{"TransientProgram", m.TransientProgram},
		{"TransientErase", m.TransientErase},
		{"Retention", m.Retention},
	} {
		if w.v < 0 {
			return fmt.Errorf("flash: FaultMix.%s weight is negative (%d); weights must be >= 0", w.name, w.v)
		}
	}
	if m.MinGap < 0 || m.MaxGap < 0 {
		return fmt.Errorf("flash: FaultMix gap range [%d, %d] is negative", m.MinGap, m.MaxGap)
	}
	if m.MaxGap < m.MinGap {
		return fmt.Errorf("flash: FaultMix gap range [%d, %d] is inverted", m.MinGap, m.MaxGap)
	}
	if m.MaxBits < 0 {
		return fmt.Errorf("flash: FaultMix.MaxBits is negative (%d)", m.MaxBits)
	}
	if m.MaxRetries < 0 {
		return fmt.Errorf("flash: FaultMix.MaxRetries is negative (%d)", m.MaxRetries)
	}
	return nil
}

// RandomSchedule is an endless, seeded fault stream: kinds are drawn by
// weight and gaps/bit counts uniformly from the mix's ranges. The stream is
// a pure function of (seed, mix).
type RandomSchedule struct {
	rng *xrand.RNG
	mix FaultMix
}

// NewRandomSchedule returns the deterministic schedule for (seed, mix).
// The mix must pass Validate; an invalid mix (negative weights or ranges)
// is a programming error and panics, mirroring MustNewDevice. Callers
// holding user-supplied mixes should call mix.Validate first and surface
// the error.
func NewRandomSchedule(seed uint64, mix FaultMix) *RandomSchedule {
	if err := mix.Validate(); err != nil {
		panic(err)
	}
	if mix.MaxGap < mix.MinGap {
		mix.MaxGap = mix.MinGap
	}
	return &RandomSchedule{rng: xrand.New(seed), mix: mix}
}

// Next implements FaultSchedule; the stream never ends.
func (s *RandomSchedule) Next() (Fault, bool) {
	m := s.mix
	pick := s.rng.Intn(m.weightSum())
	kind := FaultPowerLoss
	switch {
	case m.PowerLoss+m.StuckBits+m.ReadDisturb+m.TransientProgram+m.TransientErase+m.Retention <= 0:
		kind = FaultPowerLoss
	case pick < m.PowerLoss:
		kind = FaultPowerLoss
	case pick < m.PowerLoss+m.StuckBits:
		kind = FaultStuckBits
	case pick < m.PowerLoss+m.StuckBits+m.ReadDisturb:
		kind = FaultReadDisturb
	case pick < m.PowerLoss+m.StuckBits+m.ReadDisturb+m.TransientProgram:
		kind = FaultTransientProgram
	case pick < m.PowerLoss+m.StuckBits+m.ReadDisturb+m.TransientProgram+m.TransientErase:
		kind = FaultTransientErase
	default:
		kind = FaultRetention
	}
	gap := m.MinGap
	if m.MaxGap > m.MinGap {
		gap += s.rng.Intn(m.MaxGap - m.MinGap + 1)
	}
	bits := 1
	if m.MaxBits > 1 {
		bits += s.rng.Intn(m.MaxBits)
	}
	f := Fault{Kind: kind, After: gap, Bits: bits}
	if kind.transient() {
		// The extra draw happens only for transient kinds, so schedules
		// over the legacy mixes reproduce their historical streams.
		f.Retries = 1
		if m.MaxRetries > 1 {
			f.Retries += s.rng.Intn(m.MaxRetries)
		}
	}
	return f, true
}

// faultScope is one arming domain: the device-wide shared scope or a single
// bank. Its mutex only guards the arm state; it nests inside bank locks and
// is never held while taking any other lock.
type faultScope struct {
	armed bool
	cur   Fault
	sched FaultSchedule
	fired uint64
	// Transient residue: after a transient fault fires with a budget of
	// Retries, the same incident keeps failing the next residLeft
	// matching operations on this scope — the re-issues of the victim op
	// — without counting as new firings or advancing the next fault's
	// countdown.
	residKind FaultKind
	residLeft int
}

// arm replaces the scope's pending fault. Arming FaultNone disarms.
func (fs *faultScope) arm(f Fault) {
	fs.cur = f
	fs.armed = f.Kind != FaultNone
}

// setSchedule installs a schedule and arms its first fault. Any transient
// residue from a previous incident is dropped: a new schedule (or a nil one
// — how ClearFaults resets scopes) starts from a clean slate.
func (fs *faultScope) setSchedule(s FaultSchedule) {
	fs.sched = s
	fs.armed = false
	fs.residKind = FaultNone
	fs.residLeft = 0
	if s != nil {
		if f, ok := s.Next(); ok {
			fs.arm(f)
		}
	}
}

// match advances the countdown for an op of the given kind and reports
// whether the pending fault fires on it. On firing, the next fault (if a
// schedule is installed) is armed. Transient residue is consumed first:
// while an incident's budget is draining, matching operations fail again
// without advancing the armed fault's countdown.
func (fs *faultScope) match(op OpKind) (Fault, bool) {
	if fs.residLeft > 0 && fs.residKind.appliesTo(op) {
		fs.residLeft--
		return Fault{Kind: fs.residKind}, true
	}
	if !fs.armed || !fs.cur.Kind.appliesTo(op) {
		return Fault{}, false
	}
	if fs.cur.After > 0 {
		fs.cur.After--
		return Fault{}, false
	}
	f := fs.cur
	fs.armed = false
	fs.fired++
	if f.Kind.transient() && f.retries() > 1 {
		fs.residKind = f.Kind
		fs.residLeft = f.retries() - 1
	}
	if fs.sched != nil {
		if nf, ok := fs.sched.Next(); ok {
			fs.arm(nf)
		}
	}
	return f, true
}

// ArmFault arms a one-shot fault in the device-wide shared scope. The
// countdown observes matching operations from every bank; under concurrent
// traffic the victim operation is scheduling-dependent.
func (d *Device) ArmFault(f Fault) {
	d.ftMu.Lock()
	defer d.ftMu.Unlock()
	d.faults.arm(f)
	d.faultsLive.Store(d.anyArmedLocked())
}

// ArmBankFault arms a one-shot fault scoped to bank b: only bank b's
// operations advance the countdown, so firing is deterministic even with
// other banks running concurrently.
func (d *Device) ArmBankFault(b int, f Fault) {
	d.ftMu.Lock()
	defer d.ftMu.Unlock()
	d.banks[b].faults.arm(f)
	d.faultsLive.Store(d.anyArmedLocked())
}

// SetFaultSchedule installs a device-wide fault schedule, arming its first
// fault immediately. Passing nil removes the schedule (a pending armed fault
// is cleared too).
func (d *Device) SetFaultSchedule(s FaultSchedule) {
	d.ftMu.Lock()
	defer d.ftMu.Unlock()
	d.faults.setSchedule(s)
	d.faultsLive.Store(d.anyArmedLocked())
}

// SetBankFaultSchedule installs a schedule scoped to bank b.
func (d *Device) SetBankFaultSchedule(b int, s FaultSchedule) {
	d.ftMu.Lock()
	defer d.ftMu.Unlock()
	d.banks[b].faults.setSchedule(s)
	d.faultsLive.Store(d.anyArmedLocked())
}

// ClearFaults disarms every pending fault and removes every schedule, shared
// and per-bank — the campaign engine calls it at reboot boundaries so a
// leftover fault never leaks into recovery measurement.
func (d *Device) ClearFaults() {
	d.ftMu.Lock()
	defer d.ftMu.Unlock()
	d.faults.setSchedule(nil)
	for b := range d.banks {
		d.banks[b].faults.setSchedule(nil)
	}
	d.faultsLive.Store(false)
}

// FaultsLive reports whether any fault is currently armed in any scope.
// Callers batching work (the async commit pipeline, the bulk page-program
// path) use it to fall back to per-operation granularity while faults are
// in flight, so armed countdowns observe exactly the operations a serial
// run would show them.
func (d *Device) FaultsLive() bool { return d.faultsLive.Load() }

// anyArmedLocked reports whether any scope holds an armed fault. Called
// with ftMu held.
func (d *Device) anyArmedLocked() bool {
	if d.faults.armed || d.faults.residLeft > 0 {
		return true
	}
	for b := range d.banks {
		if d.banks[b].faults.armed || d.banks[b].faults.residLeft > 0 {
			return true
		}
	}
	return false
}

// FaultsFired returns how many faults have fired across all scopes.
func (d *Device) FaultsFired() uint64 {
	d.ftMu.Lock()
	defer d.ftMu.Unlock()
	n := d.faults.fired
	for b := range d.banks {
		n += d.banks[b].faults.fired
	}
	return n
}

// faultHit is the operation-path entry point for fault matching: a lock-free
// liveness check first, the full scope walk only while something is armed.
// Fault-free traffic — the overwhelmingly common case — never touches the
// device-wide fault mutex, which would otherwise serialize every bank.
func (d *Device) faultHit(b int, op OpKind) (Fault, bool) {
	if !d.faultsLive.Load() {
		return Fault{}, false
	}
	return d.faultFor(b, op)
}

// faultFor consults bank b's scope first, then the shared scope, for an op
// of the given kind, and refreshes the liveness flag (a fired one-shot with
// no schedule behind it disarms the scope). Called with bank b's lock held.
func (d *Device) faultFor(b int, op OpKind) (Fault, bool) {
	d.ftMu.Lock()
	defer d.ftMu.Unlock()
	f, ok := d.banks[b].faults.match(op)
	if !ok {
		f, ok = d.faults.match(op)
	}
	d.faultsLive.Store(d.anyArmedLocked())
	return f, ok
}

// stickBits clears n cells at seeded-random positions in page p — the
// stuck-at-0 failure of both the endurance model and FaultStuckBits. Called
// with bank b's lock held; positions come from the bank's RNG so per-bank
// sequences stay deterministic. Cells that actually flip (were legitimately
// 1) are recorded in the page's drift mask so the scrubber has ground truth
// to restore from.
func (d *Device) stickBits(b, p, n int) {
	base := d.PageBase(p)
	rng := d.banks[b].rng
	for i := 0; i < n; i++ {
		off := rng.Intn(d.spec.PageSize)
		bit := rng.Intn(8)
		old := d.array[base+off]
		d.array[base+off] &^= 1 << uint(bit)
		d.recordDrift(p, off, old^d.array[base+off])
	}
}

// disturbPage applies a read-disturb fault: n cells of page p drift to 0
// after the read has been served. Called with bank b's lock held.
func (d *Device) disturbPage(b, p, n int) {
	d.stickBits(b, p, n)
}
