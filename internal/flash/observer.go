package flash

import (
	"reflect"
	"time"

	"github.com/flipbit-sim/flipbit/internal/energy"
)

// OpKind is the kind of a completed flash operation.
type OpKind uint8

// Operation kinds carried by OpEvent.
const (
	OpRead        OpKind = iota // array read (Bytes consecutive bytes)
	OpProgram                   // one byte programmed
	OpProgramSkip               // one byte program elided (value unchanged)
	OpErase                     // one page erased
	OpScrub                     // one page scrubbed by the management layer
	OpRetire                    // one page retired onto a spare
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpProgramSkip:
		return "program-skip"
	case OpErase:
		return "erase"
	case OpScrub:
		return "scrub"
	case OpRetire:
		return "retire"
	}
	return "unknown"
}

// OpEvent describes one completed flash operation. It is the single source
// of truth for all instrumentation: the device's own per-bank statistics,
// the operation trace, and the energy ledger are all derived from the same
// event stream instead of duplicating accounting at every operation site.
type OpEvent struct {
	Kind OpKind
	Bank int // bank the operation executed in

	// Addr is the byte address for reads and programs, and the page
	// number for erases.
	Addr int

	// Bytes is the number of bytes the operation covered: the read
	// length for OpRead, 1 for programs, and the page size for erases.
	Bytes int

	// Value is the programmed value (OpProgram only).
	Value byte

	// Energy and Busy are the cost charged for the operation.
	Energy energy.Energy
	Busy   time.Duration
}

// Observer receives every operation event a device emits. Events for one
// bank are delivered in order, under that bank's lock; events for different
// banks may be delivered concurrently, so an Observer attached to a device
// that is used from multiple goroutines must itself be safe for concurrent
// use (Trace and energy.Ledger both are).
type Observer interface {
	OnOp(OpEvent)
}

// ObserverFunc adapts a function to the Observer interface. The function
// must be safe for concurrent use if the device is driven concurrently.
type ObserverFunc func(OpEvent)

// OnOp implements Observer.
func (f ObserverFunc) OnOp(e OpEvent) { f(e) }

// Attach subscribes o to the device's operation events. Attach must not be
// called concurrently with device operations (configure observers before
// starting traffic, like the trace).
func (d *Device) Attach(o Observer) {
	if o != nil {
		d.obs = append(d.obs, o)
	}
}

// Detach removes a previously attached observer.
func (d *Device) Detach(o Observer) {
	for i, cur := range d.obs {
		if sameObserver(cur, o) {
			d.obs = append(d.obs[:i], d.obs[i+1:]...)
			return
		}
	}
}

// sameObserver reports whether two observers are the same subscription.
// Comparable observers (pointers, structs of pointers) compare directly;
// func-typed observers compare by code pointer, which is the best identity
// a func value has.
func sameObserver(a, b Observer) bool {
	ta, tb := reflect.TypeOf(a), reflect.TypeOf(b)
	if ta != tb {
		return false
	}
	if ta.Comparable() {
		return a == b
	}
	if ta.Kind() == reflect.Func {
		return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
	}
	return false
}

// apply folds one event into the stats shard. This is the only place
// operation counters are updated.
func (s *Stats) apply(ev OpEvent) {
	switch ev.Kind {
	case OpRead:
		s.Reads += uint64(ev.Bytes)
	case OpProgram:
		s.Programs++
	case OpProgramSkip:
		s.ProgramsSkipped++
	case OpErase:
		s.Erases++
	case OpScrub:
		s.Scrubs++
	case OpRetire:
		s.Retirements++
	}
	s.Energy += ev.Energy
	s.Busy += ev.Busy
}

// ledgerObserver forwards event costs to an energy.Ledger.
type ledgerObserver struct {
	l *energy.Ledger
}

func (o ledgerObserver) OnOp(ev OpEvent) {
	o.l.Record(ev.Kind.String(), ev.Energy, ev.Busy)
}

// NewLedgerObserver returns an Observer that records every operation's
// energy and busy time into l, keyed by operation kind. The ledger is safe
// for concurrent use, so the observer may be attached to a device driven
// from multiple goroutines.
func NewLedgerObserver(l *energy.Ledger) Observer { return ledgerObserver{l} }
