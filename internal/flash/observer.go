package flash

import (
	"reflect"
	"time"

	"github.com/flipbit-sim/flipbit/internal/energy"
)

// OpKind is the kind of a completed flash operation.
type OpKind uint8

// Operation kinds carried by OpEvent.
const (
	OpRead        OpKind = iota // array read (Bytes consecutive bytes)
	OpProgram                   // Bytes bytes programmed
	OpProgramSkip               // Bytes byte programs elided (value unchanged)
	OpErase                     // one page erased
	OpScrub                     // one page scrubbed by the management layer
	OpRetire                    // one page retired onto a spare
	OpProgramFail               // a program pulse that failed verify transiently (full cost, bits short of target)
	OpEraseFail                 // an erase pulse that failed verify transiently (full cost, wear still taken)
	OpWait                      // a retry backoff interval charged to the busy ledger
	OpSense                     // one multi-page bitwise sense (Pages wordlines, page-sized result)

	// opKindCount sizes per-kind accumulator arrays; keep it last.
	opKindCount
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpProgramSkip:
		return "program-skip"
	case OpErase:
		return "erase"
	case OpScrub:
		return "scrub"
	case OpRetire:
		return "retire"
	case OpProgramFail:
		return "program-fail"
	case OpEraseFail:
		return "erase-fail"
	case OpWait:
		return "wait"
	case OpSense:
		return "sense"
	}
	return "unknown"
}

// OpEvent describes one completed flash operation. It is the single source
// of truth for all instrumentation: the device's own per-bank statistics,
// the operation trace, and the energy ledger are all derived from the same
// event stream instead of duplicating accounting at every operation site.
type OpEvent struct {
	Kind OpKind
	Bank int // bank the operation executed in

	// Seq is the 1-based position of this event in its bank's event
	// stream. Within one bank the sequence is gapless and strictly
	// increasing — events for a bank are totally ordered — while events
	// from different banks carry independent sequences and may be
	// delivered concurrently.
	Seq uint64

	// Addr is the byte address for reads and programs, and the page
	// number for erases. For a batched page program it is the page's
	// base address.
	Addr int

	// Bytes is the number of bytes the operation covered: the read
	// length for OpRead, the programmed (or skipped) byte count for
	// programs, and the page size for erases and senses.
	Bytes int

	// Pages is the number of wordlines a multi-page sense activated
	// simultaneously (OpSense only). The sense's cost covers the whole
	// operation, however many pages participated.
	Pages int

	// Value is the programmed value (per-byte OpProgram only).
	Value byte

	// Data and Prev are set on batched page-program events only: Data is
	// the page's contents after the program and Prev the contents before,
	// so observers can recover the per-byte writes (a byte was programmed
	// iff Data[i] != Prev[i]). Both alias device-owned buffers and are
	// only valid for the duration of the OnOp call — copy to retain.
	Data []byte
	Prev []byte

	// Energy and Busy are the cost charged for the operation.
	Energy energy.Energy
	Busy   time.Duration
}

// Observer receives every operation event a device emits. Events for one
// bank are delivered in order, under that bank's lock; events for different
// banks may be delivered concurrently, so an Observer attached to a device
// that is used from multiple goroutines must itself be safe for concurrent
// use (Trace and energy.Ledger both are).
type Observer interface {
	OnOp(OpEvent)
}

// ShardObserver is an Observer that can supply one delivery target per
// bank. When attached to a device, shard b receives exactly the events of
// bank b (in bank order, under the bank's lock), so a sharded observer
// never serializes deliveries from concurrent banks on one lock. Trace
// implements it; plain observers are delivered to from every bank and must
// synchronise themselves.
type ShardObserver interface {
	Observer
	ObserverShards(banks int) []Observer
}

// ObserverFunc adapts a function to the Observer interface. The function
// must be safe for concurrent use if the device is driven concurrently.
type ObserverFunc func(OpEvent)

// OnOp implements Observer.
func (f ObserverFunc) OnOp(e OpEvent) { f(e) }

// attachment records one Attach call: the observer as the caller knows it,
// kept so Detach can find the per-bank delivery handles installed for it.
type attachment struct {
	src Observer
}

// Attach subscribes o to the device's operation events. The subscription is
// sharded: if o implements ShardObserver each bank delivers to o's shard
// for that bank, otherwise every bank delivers to o directly. Attach must
// not be called concurrently with device operations (configure observers
// before starting traffic, like the trace).
func (d *Device) Attach(o Observer) {
	if o == nil {
		return
	}
	shards := []Observer(nil)
	if so, ok := o.(ShardObserver); ok {
		shards = so.ObserverShards(len(d.banks))
	}
	for b := range d.banks {
		h := o
		if shards != nil {
			h = shards[b]
		}
		d.banks[b].obs = append(d.banks[b].obs, h)
	}
	d.atts = append(d.atts, attachment{src: o})
}

// Detach removes a previously attached observer. Attachments keep their
// relative order, so the i-th attachment owns the i-th delivery handle in
// every bank's subscriber list.
func (d *Device) Detach(o Observer) {
	for i, at := range d.atts {
		if sameObserver(at.src, o) {
			d.atts = append(d.atts[:i], d.atts[i+1:]...)
			for b := range d.banks {
				obs := d.banks[b].obs
				d.banks[b].obs = append(obs[:i], obs[i+1:]...)
			}
			return
		}
	}
}

// sameObserver reports whether two observers are the same subscription.
// Comparable observers (pointers, structs of pointers) compare directly;
// func-typed observers compare by code pointer, which is the best identity
// a func value has.
func sameObserver(a, b Observer) bool {
	ta, tb := reflect.TypeOf(a), reflect.TypeOf(b)
	if ta != tb {
		return false
	}
	if ta.Comparable() {
		return a == b
	}
	if ta.Kind() == reflect.Func {
		return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
	}
	return false
}

// statsShard is one bank's slice of the operation ledger. Counters live in
// the embedded Stats; energy is accumulated per operation kind instead of
// into one running float, because float addition is order-sensitive: the
// async pipeline may interleave a bank's loads and programs differently
// than a serial run, but each (bank, kind) sub-stream still sees its events
// in request order, so summing the kinds in a fixed order at snapshot time
// reproduces byte-identical totals for any interleaving.
type statsShard struct {
	Stats
	energyKind [opKindCount]energy.Energy
}

// apply folds one event into the shard. This is the only place operation
// counters are updated.
func (s *statsShard) apply(ev OpEvent) {
	switch ev.Kind {
	case OpRead:
		s.Reads += uint64(ev.Bytes)
	case OpProgram:
		s.Programs += uint64(ev.Bytes)
	case OpProgramSkip:
		s.ProgramsSkipped += uint64(ev.Bytes)
	case OpErase:
		s.Erases++
	case OpScrub:
		s.Scrubs++
	case OpRetire:
		s.Retirements++
	case OpProgramFail:
		s.ProgramFails += uint64(ev.Bytes)
	case OpEraseFail:
		s.EraseFails++
	case OpWait:
		s.Waits++
	case OpSense:
		s.Senses++
		s.PagesSensed += uint64(ev.Pages)
	}
	s.energyKind[ev.Kind] += ev.Energy
	s.Busy += ev.Busy
}

// snapshot returns the shard as externally visible Stats, summing the
// per-kind energy accumulators in kind order (the deterministic merge).
func (s *statsShard) snapshot() Stats {
	st := s.Stats
	var e energy.Energy
	for _, v := range s.energyKind {
		e += v
	}
	st.Energy = e
	return st
}

// ledgerObserver forwards event costs to an energy.Ledger.
type ledgerObserver struct {
	l *energy.Ledger
}

func (o ledgerObserver) OnOp(ev OpEvent) {
	o.l.Record(ev.Kind.String(), ev.Energy, ev.Busy)
}

// NewLedgerObserver returns an Observer that records every operation's
// energy and busy time into l, keyed by operation kind. The ledger is safe
// for concurrent use, so the observer may be attached to a device driven
// from multiple goroutines.
func NewLedgerObserver(l *energy.Ledger) Observer { return ledgerObserver{l} }
