package flash

import (
	"errors"
	"sync"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// concurrencySpec: enough pages that every bank owns several.
func concurrencySpec() Spec {
	s := DefaultSpec()
	s.PageSize = 32
	s.NumPages = 64
	s.Banks = 4
	return s
}

// workerOps drives a deterministic op sequence against the pages of one
// bank. The same sequence is used serially and concurrently. Every ~50
// rounds it arms a bank-scoped fault drawn from the same seed stream:
// because a bank scope's countdown only observes that bank's operations,
// fault firing — and the torn/stuck/disturbed state it leaves — must be
// identical whether the banks run serially or in parallel.
func workerOps(d *Device, bank, rounds int, seed uint64) {
	rng := xrand.New(seed)
	spec := d.Spec()
	var pages []int
	for p := 0; p < spec.NumPages; p++ {
		if d.BankOf(p) == bank {
			pages = append(pages, p)
		}
	}
	buf := make([]byte, spec.PageSize)
	for r := 0; r < rounds; r++ {
		if r%50 == 0 {
			kind := []FaultKind{FaultPowerLoss, FaultStuckBits, FaultReadDisturb}[rng.Intn(3)]
			d.ArmBankFault(bank, Fault{
				Kind:  kind,
				After: rng.Intn(10),
				Bits:  1 + rng.Intn(3),
			})
		}
		p := pages[rng.Intn(len(pages))]
		base := d.PageBase(p)
		switch rng.Intn(4) {
		case 0:
			_ = d.Read(base, buf)
		case 1:
			_ = d.ProgramByte(base+rng.Intn(spec.PageSize), 0)
		case 2:
			_ = d.ErasePage(p)
		case 3:
			for i := range buf {
				buf[i] = rng.Byte()
			}
			_ = d.EraseProgramPage(p, buf)
		}
	}
}

// TestConcurrentDisjointBanksMatchSerial: one goroutine per bank, each
// issuing a deterministic sequence against its own bank, must produce
// byte-identical merged stats (including float energy) and identical array
// contents to running the same sequences serially.
func TestConcurrentDisjointBanksMatchSerial(t *testing.T) {
	spec := concurrencySpec()
	const rounds = 400

	serial := MustNewDevice(spec)
	for b := 0; b < serial.Banks(); b++ {
		workerOps(serial, b, rounds, uint64(1000+b))
	}

	conc := MustNewDevice(spec)
	var wg sync.WaitGroup
	for b := 0; b < conc.Banks(); b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			workerOps(conc, b, rounds, uint64(1000+b))
		}(b)
	}
	wg.Wait()

	if s, c := serial.Stats(), conc.Stats(); s != c {
		t.Errorf("merged stats differ:\nserial     %+v\nconcurrent %+v", s, c)
	}
	for b := 0; b < serial.Banks(); b++ {
		if s, c := serial.BankStats(b), conc.BankStats(b); s != c {
			t.Errorf("bank %d shard differs:\nserial     %+v\nconcurrent %+v", b, s, c)
		}
	}
	for addr := 0; addr < spec.Size(); addr++ {
		if serial.Peek(addr) != conc.Peek(addr) {
			t.Fatalf("array differs at %#x: %02x vs %02x", addr, serial.Peek(addr), conc.Peek(addr))
		}
	}
	for p := 0; p < spec.NumPages; p++ {
		if serial.Wear(p) != conc.Wear(p) {
			t.Errorf("wear differs at page %d: %d vs %d", p, serial.Wear(p), conc.Wear(p))
		}
	}
	if s, c := serial.FaultsFired(), conc.FaultsFired(); s != c || s == 0 {
		t.Errorf("faults fired: serial %d, concurrent %d (want equal and > 0)", s, c)
	}
}

// TestRaceStressPowerLossDuringTraffic: repeatedly arming the shared-scope
// one-shot power-loss fault while goroutines hammer every bank. Which racing
// operation trips the fault is scheduling-dependent (that is the point of the
// shared scope), but the device must stay coherent: operation counts are
// conserved in the stats, and after the storm every page still erases,
// programs and reads back correctly.
func TestRaceStressPowerLossDuringTraffic(t *testing.T) {
	spec := concurrencySpec()
	d := MustNewDevice(spec)

	const workers = 8
	const perWorker = 400
	stop := make(chan struct{})
	var armer sync.WaitGroup
	armer.Add(1)
	go func() {
		defer armer.Done()
		rng := xrand.New(0xA11CE)
		for {
			select {
			case <-stop:
				return
			default:
			}
			d.InjectPowerLoss(rng.Intn(5))
		}
	}()

	var wg sync.WaitGroup
	losses := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(500 + w))
			buf := make([]byte, spec.PageSize)
			for r := 0; r < perWorker; r++ {
				p := rng.Intn(spec.NumPages)
				var err error
				switch rng.Intn(3) {
				case 0:
					err = d.Read(d.PageBase(p), buf)
				case 1:
					err = d.ErasePage(p)
				case 2:
					err = d.ProgramByte(d.PageBase(p)+rng.Intn(spec.PageSize), 0)
				}
				if errors.Is(err, ErrPowerLoss) {
					losses[w]++
				} else if err != nil {
					t.Errorf("worker %d: unexpected error %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	armer.Wait()
	d.ClearFaults()

	// Interrupted operations still emit exactly one event each, so the op
	// count is conserved even across faults.
	st := d.Stats()
	totalOps := st.Erases + st.Programs + st.ProgramsSkipped + st.Reads/uint64(spec.PageSize)
	if totalOps != workers*perWorker {
		t.Errorf("ops not conserved: %d, want %d (stats %+v)", totalOps, workers*perWorker, st)
	}
	var totalLosses int
	for _, n := range losses {
		totalLosses += n
	}
	if totalLosses == 0 {
		t.Error("storm never tripped a power loss — arming raced to nothing")
	}
	if fired := d.FaultsFired(); fired < uint64(totalLosses) {
		t.Errorf("FaultsFired %d < observed losses %d", fired, totalLosses)
	}

	// The device must be fully functional after the storm.
	buf := make([]byte, spec.PageSize)
	for p := 0; p < spec.NumPages; p++ {
		if err := d.ErasePage(p); err != nil {
			t.Fatalf("post-storm erase page %d: %v", p, err)
		}
		if err := d.ProgramByte(d.PageBase(p), 0x5A); err != nil {
			t.Fatalf("post-storm program page %d: %v", p, err)
		}
		if err := d.ReadPage(p, buf); err != nil {
			t.Fatalf("post-storm read page %d: %v", p, err)
		}
		if buf[0] != 0x5A {
			t.Fatalf("post-storm readback page %d: got %02x", p, buf[0])
		}
	}
}

// TestConcurrentOverlappingBanks: goroutines deliberately hammering the
// same banks must stay race-free and conserve operation counts.
func TestConcurrentOverlappingBanks(t *testing.T) {
	spec := concurrencySpec()
	d := MustNewDevice(spec)
	tr := NewTrace(1 << 16)
	d.SetTracer(tr)

	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(42 + w))
			buf := make([]byte, spec.PageSize)
			for r := 0; r < perWorker; r++ {
				p := rng.Intn(spec.NumPages) // any page, any bank
				switch rng.Intn(3) {
				case 0:
					_ = d.Read(d.PageBase(p), buf)
				case 1:
					_ = d.ErasePage(p)
				case 2:
					_ = d.ProgramByte(d.PageBase(p)+rng.Intn(spec.PageSize), 0)
				}
			}
		}(w)
	}
	wg.Wait()

	st := d.Stats()
	totalOps := st.Erases + st.Programs + st.ProgramsSkipped + st.Reads/uint64(spec.PageSize)
	if totalOps != workers*perWorker {
		t.Errorf("ops not conserved: %d, want %d (stats %+v)", totalOps, workers*perWorker, st)
	}
	if got := uint64(tr.Len()) + tr.Dropped(); got != st.Programs+st.Erases {
		t.Errorf("trace recorded %d state-changing ops, stats say %d", got, st.Programs+st.Erases)
	}
}

// TestConcurrentReadersAndWriters: reads spanning many banks race-free
// against writers; every byte read is either 0xFF or 0x00 (no torn bytes).
func TestConcurrentReadersAndWriters(t *testing.T) {
	spec := concurrencySpec()
	d := MustNewDevice(spec)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		buf := make([]byte, spec.Size())
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = d.Read(0, buf)
			for i, v := range buf {
				if v != 0xFF && v != 0x00 {
					t.Errorf("torn byte %02x at %#x", v, i)
					return
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := xrand.New(uint64(7 + w))
			for i := 0; i < 200; i++ {
				p := rng.Intn(spec.NumPages)
				if rng.Intn(2) == 0 {
					_ = d.ErasePage(p)
				} else {
					_ = d.ProgramByte(d.PageBase(p)+rng.Intn(spec.PageSize), 0x00)
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}
