package flash

import "errors"

// Power-loss fault injection. Flash operations are not atomic: a program
// interrupted by power loss leaves a byte with only some of its bits
// cleared, and an interrupted erase leaves a page with a mixture of erased
// and stale bytes. Embedded firmware must tolerate both (it is why
// checkpointing systems keep a previous-good copy). The general fault
// machinery lives in faults.go; this file keeps the power-loss tear
// mechanics and the original one-shot arming entry point.

// ErrPowerLoss is returned by the operation that was interrupted.
var ErrPowerLoss = errors.New("flash: power lost mid-operation")

// InjectPowerLoss arms a one-shot fault: after skip more successful
// state-changing operations (programs or erases), the next one is
// interrupted partway and returns ErrPowerLoss. The device remains usable
// afterwards, modelling a reboot. The arm state lives in the shared fault
// scope, so it stays coherent under concurrent traffic (which of the racing
// operations trips the fault is then scheduling-dependent, like a real
// brown-out); use ArmBankFault for deterministic firing under concurrency.
func (d *Device) InjectPowerLoss(skip int) {
	d.ArmFault(Fault{Kind: FaultPowerLoss, After: skip})
}

// tearProgram applies a partial program: each bit the full program would
// have cleared clears with probability ~1/2. Called with bank b's lock held.
func (d *Device) tearProgram(b, addr int, v byte) {
	cur := d.array[addr]
	toClear := cur &^ v
	partial := toClear & d.banks[b].rng.Byte()
	d.array[addr] = cur &^ partial
}

// tearErase applies a partial erase: each byte of the page independently
// either reaches the erased state or keeps its old value. Called with bank
// b's lock held.
func (d *Device) tearErase(b, p int) {
	base := d.PageBase(p)
	rng := d.banks[b].rng
	for i := 0; i < d.spec.PageSize; i++ {
		if rng.Intn(2) == 0 {
			d.array[base+i] = 0xFF
		}
	}
}
