package flash

import (
	"errors"
	"fmt"
	"math/bits"
)

// Page-health tracking. The wear counters and the worn-out flag of device.go
// tell a controller when a page *died*; this file adds what endurance
// management needs to act *before* that: which cells have silently drifted
// to 0 since the last erase (the ground truth behind read-back verify and
// scrubbing), which pages have been administratively retired onto a spare,
// and a consistent device-wide health snapshot for telemetry.
//
// The drift mask of page p records exactly the 1→0 flips that faults — the
// endurance stuck-at-0 model, FaultStuckBits, FaultReadDisturb — inflicted
// on cells that legitimately held 1. It is maintained so that
// data | mask reconstructs the last intended image:
//
//   - an erase clears the mask (every cell is back at 1);
//   - a fault flip of a legitimate 1 sets the mask bit;
//   - a program (or skip) of value v clears mask bits where v is 0: once
//     the caller *intends* a 0 there, restoring a 1 would corrupt.
//
// Programs can never conflict with the mask in the other direction: a stuck
// cell reads 0, so the reachability check already forces any subsequent
// program of that byte to keep the bit at 0.

// ErrPageRetired is returned by programs and erases that target a page the
// management layer has retired. Retired pages stay readable (the remap copy
// may still be in flight) but accept no further state changes.
var ErrPageRetired = errors.New("flash: page has been retired")

// recordDrift marks the given bits of the byte at (page p, offset off) as
// fault-flipped. Called with page p's bank lock held; flipped must contain
// only bits that actually transitioned 1→0.
func (d *Device) recordDrift(p, off int, flipped byte) {
	if flipped == 0 {
		return
	}
	if d.drift[p] == nil {
		d.drift[p] = make([]byte, d.spec.PageSize)
	}
	d.drift[p][off] |= flipped
}

// clearDrift forgets page p's drift mask (after an erase). Called with the
// bank lock held.
func (d *Device) clearDrift(p int) {
	if d.drift[p] != nil {
		d.drift[p] = nil
	}
}

// absorbDrift reconciles page p's mask with an intended program of value v
// at offset off: bits the caller now wants at 0 are no longer drift. Called
// with the bank lock held.
func (d *Device) absorbDrift(p, off int, v byte) {
	if m := d.drift[p]; m != nil {
		m[off] &= v
	}
}

// StuckBits returns how many cells of page p have drifted to 0 since the
// last erase (fault flips of legitimate 1s, per the drift-mask contract).
func (d *Device) StuckBits(p int) int {
	if d.checkPage(p) != nil {
		return 0
	}
	bk := &d.banks[d.BankOf(p)]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return popcount(d.drift[p])
}

// StuckMaskInto copies page p's drift mask into dst (one page long) and
// returns the number of stuck cells. A page with no recorded drift zeroes
// dst. The mask is ground truth from the fault model: data | mask is the
// last intended image of the page.
func (d *Device) StuckMaskInto(p int, dst []byte) (int, error) {
	if err := d.checkPage(p); err != nil {
		return 0, err
	}
	if len(dst) != d.spec.PageSize {
		return 0, fmt.Errorf("%w: got %d, page size %d", ErrPageSize, len(dst), d.spec.PageSize)
	}
	bk := &d.banks[d.BankOf(p)]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if d.drift[p] == nil {
		for i := range dst {
			dst[i] = 0
		}
		return 0, nil
	}
	copy(dst, d.drift[p])
	return popcount(d.drift[p]), nil
}

func popcount(mask []byte) int {
	n := 0
	for _, b := range mask {
		n += bits.OnesCount8(b)
	}
	return n
}

// Retire marks page p retired: reads continue to work, programs and erases
// fail with ErrPageRetired, and an OpRetire event is emitted on the op bus.
// Retiring an already-retired page is a no-op.
func (d *Device) Retire(p int) error {
	if err := d.checkPage(p); err != nil {
		return err
	}
	b := d.BankOf(p)
	bk := &d.banks[b]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if d.retired[p] {
		return nil
	}
	d.retired[p] = true
	d.emit(OpEvent{Kind: OpRetire, Bank: b, Addr: p, Bytes: d.spec.PageSize})
	return nil
}

// Retired reports whether page p has been retired.
func (d *Device) Retired(p int) bool {
	if p < 0 || p >= len(d.retired) {
		return false
	}
	bk := &d.banks[d.BankOf(p)]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return d.retired[p]
}

// Degraded reports whether page p should no longer hold exact data: it has
// worn out (erases leave cells stuck) or been retired.
func (d *Device) Degraded(p int) bool {
	if p < 0 || p >= len(d.dead) {
		return false
	}
	bk := &d.banks[d.BankOf(p)]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return d.dead[p] || d.retired[p]
}

// NoteScrub records that the management layer scrubbed page p, emitting an
// OpScrub event on the op bus (no latency or energy beyond the reads and
// programs the scrub itself charged).
func (d *Device) NoteScrub(p int) {
	if d.checkPage(p) != nil {
		return
	}
	b := d.BankOf(p)
	bk := &d.banks[b]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	d.emit(OpEvent{Kind: OpScrub, Bank: b, Addr: p, Bytes: d.spec.PageSize})
}

// WearSnapshot returns a consistent copy of every page's erase count. Each
// bank's pages are copied under one acquisition of that bank's lock, so the
// snapshot is internally consistent per bank — unlike a loop over Wear(p),
// which re-acquires the lock per page and can interleave with writers.
func (d *Device) WearSnapshot() []uint32 {
	out := make([]uint32, len(d.wear))
	nb := len(d.banks)
	for b := 0; b < nb; b++ {
		bk := &d.banks[b]
		bk.mu.Lock()
		for p := b; p < len(d.wear); p += nb {
			out[p] = d.wear[p]
		}
		bk.mu.Unlock()
	}
	return out
}

// HealthHistogramBuckets is the number of wear buckets in a BankHealth
// histogram: bucket i counts pages whose wear lies in
// [i, i+1) / HealthHistogramBuckets of the endurance rating, with the last
// bucket absorbing everything at or beyond the rating.
const HealthHistogramBuckets = 8

// BankHealth is one bank's slice of a HealthReport.
type BankHealth struct {
	Bank      int
	Pages     int
	MaxWear   uint32
	TotalWear uint64
	// Histogram buckets wear relative to the endurance rating (see
	// HealthHistogramBuckets).
	Histogram [HealthHistogramBuckets]int
	Dead      int // pages past endurance (erases leave cells stuck)
	Retired   int // pages administratively retired
	Stuck     int // cells currently drifted to 0 across the bank's pages
	Marginal  int // cells currently marginal from retention drift (retention.go)
}

// HealthReport is a device-wide endurance snapshot: per-bank wear
// histograms plus the totals a management layer alarms on. Each bank is
// summarised under one acquisition of its lock.
type HealthReport struct {
	Banks     []BankHealth
	Endurance uint32
	MaxWear   uint32
	Dead      int
	Retired   int
	Stuck     int // total drifted cells
	Marginal  int // total marginal retention cells
}

// Health summarises the device's endurance state.
func (d *Device) Health() HealthReport {
	rep := HealthReport{
		Banks:     make([]BankHealth, len(d.banks)),
		Endurance: d.spec.EnduranceCycles,
	}
	nb := len(d.banks)
	for b := 0; b < nb; b++ {
		bh := &rep.Banks[b]
		bh.Bank = b
		bk := &d.banks[b]
		bk.mu.Lock()
		for p := b; p < len(d.wear); p += nb {
			bh.Pages++
			w := d.wear[p]
			bh.TotalWear += uint64(w)
			if w > bh.MaxWear {
				bh.MaxWear = w
			}
			bucket := int(uint64(w) * HealthHistogramBuckets / uint64(d.spec.EnduranceCycles))
			if bucket >= HealthHistogramBuckets {
				bucket = HealthHistogramBuckets - 1
			}
			bh.Histogram[bucket]++
			if d.dead[p] {
				bh.Dead++
			}
			if d.retired[p] {
				bh.Retired++
			}
			bh.Stuck += popcount(d.drift[p])
			bh.Marginal += popcount(d.rise[p])
		}
		bk.mu.Unlock()
		if bh.MaxWear > rep.MaxWear {
			rep.MaxWear = bh.MaxWear
		}
		rep.Dead += bh.Dead
		rep.Retired += bh.Retired
		rep.Stuck += bh.Stuck
		rep.Marginal += bh.Marginal
	}
	return rep
}
