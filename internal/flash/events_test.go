package flash

import (
	"sync"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// bankEventLog is a ShardObserver that records each bank's event stream
// into its own slice. Shards are installed into their bank's subscriber
// list, so each slice is appended to under that bank's lock only — the
// recorder itself needs no locking, which also means the race detector
// verifies the sharding claim for free.
type bankEventLog struct {
	shards []*bankEventShard
}

type bankEventShard struct {
	bank   int
	events []OpEvent
}

func (l *bankEventLog) OnOp(ev OpEvent) {
	panic("bankEventLog must be attached through ObserverShards")
}

func (l *bankEventLog) ObserverShards(banks int) []Observer {
	l.shards = make([]*bankEventShard, banks)
	obs := make([]Observer, banks)
	for b := range obs {
		l.shards[b] = &bankEventShard{bank: b}
		obs[b] = l.shards[b]
	}
	return obs
}

func (s *bankEventShard) OnOp(ev OpEvent) {
	// Data/Prev alias device buffers and are only valid during OnOp:
	// drop them so the retained copy cannot be mutated under us.
	ev.Data, ev.Prev = nil, nil
	s.events = append(s.events, ev)
}

// eventWorkload drives a deterministic mix of page programs, byte programs
// and erases against the pages of one bank.
func eventWorkload(d *Device, bank, rounds int, seed uint64) {
	spec := d.Spec()
	rng := xrand.New(seed)
	var pages []int
	for p := 0; p < spec.NumPages; p++ {
		if d.BankOf(p) == bank {
			pages = append(pages, p)
		}
	}
	buf := make([]byte, spec.PageSize)
	for r := 0; r < rounds; r++ {
		p := pages[rng.Intn(len(pages))]
		switch rng.Intn(4) {
		case 0:
			_ = d.ErasePage(p)
		case 1:
			_ = d.ProgramByte(d.PageBase(p)+rng.Intn(spec.PageSize), rng.Byte())
		default:
			for i := range buf {
				buf[i] = rng.Byte()
			}
			_ = d.ProgramPage(p, buf)
		}
	}
}

// TestPerBankEventStreamsTotallyOrdered is the op-event bus ordering
// property: under concurrent cross-bank traffic, every bank's event stream
// carries a gapless, strictly increasing sequence number starting at 1,
// each event is tagged with its own bank, and the count matches what the
// merged stats report. Run under -race this also proves shard delivery
// never crosses banks without synchronization.
func TestPerBankEventStreamsTotallyOrdered(t *testing.T) {
	d, err := NewDevice(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	log := &bankEventLog{}
	d.Attach(log)
	defer d.Detach(log)

	var wg sync.WaitGroup
	for b := 0; b < d.Banks(); b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			eventWorkload(d, b, 200, 0xE0+uint64(b))
		}(b)
	}
	wg.Wait()

	for b, shard := range log.shards {
		if len(shard.events) == 0 {
			t.Errorf("bank %d: no events recorded", b)
			continue
		}
		for i, ev := range shard.events {
			if ev.Bank != b {
				t.Fatalf("bank %d shard received event for bank %d", b, ev.Bank)
			}
			if ev.Seq != uint64(i+1) {
				t.Fatalf("bank %d event %d: seq %d, want %d (gapless from 1)", b, i, ev.Seq, i+1)
			}
		}
	}
}

// TestBatchedEventsMatchPerByteTotals: the batched page-program events
// (one OpProgram + one OpProgramSkip per page) must account for exactly
// the same work as the legacy per-byte event stream — identical merged
// stats including energy and busy time, and an identical trace.
func TestBatchedEventsMatchPerByteTotals(t *testing.T) {
	run := func(perByte bool) (Stats, []TraceEntry) {
		d, err := NewDevice(DefaultSpec())
		if err != nil {
			t.Fatal(err)
		}
		d.SetPerByteEvents(perByte)
		tr := NewTrace(0)
		d.SetTracer(tr)
		for b := 0; b < d.Banks(); b++ {
			eventWorkload(d, b, 150, 0xB0+uint64(b))
		}
		return d.Stats(), tr.Entries()
	}
	batchedStats, batchedTrace := run(false)
	perByteStats, perByteTrace := run(true)
	// Counts and (integer) busy time must be exact. Energy is compared
	// within epsilon: a batched event carries n·E (one multiply) where the
	// per-byte stream sums E n times, and those differ in the last float
	// bits. Byte-identical energy is only guaranteed within one event mode
	// (see TestCrossBankTraceMergeDeterministic and the core equivalence
	// property), not across modes.
	be, pe := batchedStats.Energy, perByteStats.Energy
	batchedStats.Energy, perByteStats.Energy = 0, 0
	if batchedStats != perByteStats {
		t.Errorf("stats differ\nbatched  %+v\nper-byte %+v", batchedStats, perByteStats)
	}
	if diff := float64(be - pe); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy differs beyond epsilon: batched %v, per-byte %v", be, pe)
	}
	if len(batchedTrace) != len(perByteTrace) {
		t.Fatalf("trace length differs: batched %d, per-byte %d", len(batchedTrace), len(perByteTrace))
	}
	for i := range batchedTrace {
		if batchedTrace[i] != perByteTrace[i] {
			t.Fatalf("trace entry %d differs: batched %+v, per-byte %+v", i, batchedTrace[i], perByteTrace[i])
		}
	}
}

// TestCrossBankTraceMergeDeterministic: the sharded trace's merge order
// depends only on each bank's operation sequence, so serial and concurrent
// runs of the same per-bank workloads read back identical traces and
// identical merged stats.
func TestCrossBankTraceMergeDeterministic(t *testing.T) {
	const rounds = 200
	run := func(concurrent bool) (Stats, []TraceEntry) {
		d, err := NewDevice(DefaultSpec())
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTrace(0)
		d.SetTracer(tr)
		if concurrent {
			var wg sync.WaitGroup
			for b := 0; b < d.Banks(); b++ {
				wg.Add(1)
				go func(b int) {
					defer wg.Done()
					eventWorkload(d, b, rounds, 0xC0+uint64(b))
				}(b)
			}
			wg.Wait()
		} else {
			for b := 0; b < d.Banks(); b++ {
				eventWorkload(d, b, rounds, 0xC0+uint64(b))
			}
		}
		return d.Stats(), tr.Entries()
	}
	serialStats, serialTrace := run(false)
	for trial := 0; trial < 3; trial++ {
		concStats, concTrace := run(true)
		if serialStats != concStats {
			t.Errorf("trial %d: stats differ\nserial     %+v\nconcurrent %+v", trial, serialStats, concStats)
		}
		if len(serialTrace) != len(concTrace) {
			t.Fatalf("trial %d: trace length differs: serial %d, concurrent %d", trial, len(serialTrace), len(concTrace))
		}
		for i := range serialTrace {
			if serialTrace[i] != concTrace[i] {
				t.Fatalf("trial %d: trace entry %d differs: serial %+v, concurrent %+v",
					trial, i, serialTrace[i], concTrace[i])
			}
		}
	}
}
