package flash

import (
	"fmt"
	"time"
)

// Retention drift modelling. Programmed cells leak charge over time; a cell
// whose level has sagged to the read-threshold boundary is *marginal*: the
// array still holds its programmed 0, but a fast host read resolves it to 0
// or 1 essentially at random until a program pulse recharges it. This file
// tracks marginal cells in a per-page "rise mask" (the retention-drift dual
// of health.go's stuck-at-0 drift mask):
//
//   - AgeRetention (driven by accumulated device busy time between campaign
//     reboots) and FaultRetention (armed on reads) mark cells marginal;
//   - host-facing reads (Read, ReadByteAt) overlay flicker: each marginal
//     bit independently reads as 1 with probability 1/2, drawn from the
//     bank's seeded RNG so runs stay deterministic;
//   - controller reads (ReadPage) are margin-aware senses and never
//     flicker, so the read-modify-write commit path cannot bake noise back
//     into a page;
//   - a program pulse of a byte recharges it (clears its rise bits), an
//     erase clears the whole mask, and RefreshRetention recharges a page in
//     place at program cost without changing its contents.
//
// At most one cell per page is ever marginal at a time: real retention loss
// is a slow per-cell leak, and bounding the density keeps every record
// within reach of the single-bit repair the layers above already carry.

// recordRise marks the given bits of the byte at (page p, offset off) as
// marginal. Called with the page's bank lock held; the bits must currently
// be programmed (0) in the array.
func (d *Device) recordRise(p, off int, bits byte) {
	if bits == 0 {
		return
	}
	if d.rise[p] == nil {
		d.rise[p] = make([]byte, d.spec.PageSize)
	}
	d.rise[p][off] |= bits
}

// clearRise forgets page p's rise mask (after an erase). Called with the
// bank lock held.
func (d *Device) clearRise(p int) {
	if d.rise[p] != nil {
		d.rise[p] = nil
	}
}

// absorbRise clears the rise bits of one byte after a real program pulse
// recharged it. Called with the bank lock held.
func (d *Device) absorbRise(p, off int) {
	if m := d.rise[p]; m != nil {
		m[off] = 0
	}
}

// flickerInto overlays retention noise on a host read of page p: each
// marginal bit in the addressed range independently reads as 1 (its drifted
// value) with probability 1/2 from the bank's RNG. dst holds the bytes read
// starting at absolute address addr, which must lie within page p. Called
// with bank b's lock held.
func (d *Device) flickerInto(b, p, addr int, dst []byte) {
	m := d.rise[p]
	if m == nil {
		return
	}
	base := d.PageBase(p)
	rng := d.banks[b].rng
	for i := range dst {
		bits := m[addr-base+i]
		for bits != 0 {
			bit := bits & (-bits)
			bits &^= bit
			if rng.Intn(2) == 1 {
				dst[i] |= bit
			}
		}
	}
}

// markRetention makes one programmed cell of page p marginal, chosen by a
// bounded seeded probe for a 0 bit. Pages that already carry a marginal
// cell, or are retired, are left alone — the model caps retention density
// at one cell per page. Returns how many cells were marked (0 or 1).
// Called with bank b's lock held.
func (d *Device) markRetention(b, p int) int {
	if d.retired[p] {
		return 0
	}
	if m := d.rise[p]; m != nil && popcount(m) > 0 {
		return 0
	}
	base := d.PageBase(p)
	rng := d.banks[b].rng
	// A bounded probe keeps the draw count deterministic; a mostly-erased
	// page may simply dodge the leak this time. Cells in the drift mask are
	// excluded: a stuck-at-0 cell is dead, not marginal — it has no charge
	// left to sit at the read threshold — and letting it flicker would mask
	// the landing-zone prechecks that fence stuck cells off.
	for try := 0; try < 16; try++ {
		off := rng.Intn(d.spec.PageSize)
		bit := byte(1) << uint(rng.Intn(8))
		if d.array[base+off]&bit != 0 {
			continue
		}
		if m := d.drift[p]; m != nil && m[off]&bit != 0 {
			continue
		}
		d.recordRise(p, off, bit)
		return 1
	}
	return 0
}

// AgeRetention applies n cell-leak events to the device: candidate pages
// are drawn per bank round-robin from each bank's seeded RNG, and each
// event makes at most one programmed cell marginal (subject to the one-
// cell-per-page cap). It models time passing while the device is powered
// off, so the campaign engine calls it between reboot and remount, keyed
// to the busy time accumulated since the last aging step. Returns how many
// cells actually went marginal.
func (d *Device) AgeRetention(n int) int {
	marked := 0
	nb := len(d.banks)
	for i := 0; i < n; i++ {
		b := i % nb
		bk := &d.banks[b]
		bk.mu.Lock()
		perBank := (d.spec.NumPages - b + nb - 1) / nb
		if perBank > 0 {
			p := b + nb*bk.rng.Intn(perBank)
			marked += d.markRetention(b, p)
		}
		bk.mu.Unlock()
	}
	return marked
}

// RiseBits returns how many cells of page p are currently marginal.
func (d *Device) RiseBits(p int) int {
	if d.checkPage(p) != nil {
		return 0
	}
	bk := &d.banks[d.BankOf(p)]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return popcount(d.rise[p])
}

// RiseMaskInto copies page p's rise mask into dst (one page long) and
// returns the number of marginal cells. A page with no marginal cells
// zeroes dst.
func (d *Device) RiseMaskInto(p int, dst []byte) (int, error) {
	if err := d.checkPage(p); err != nil {
		return 0, err
	}
	if len(dst) != d.spec.PageSize {
		return 0, fmt.Errorf("%w: got %d, page size %d", ErrPageSize, len(dst), d.spec.PageSize)
	}
	bk := &d.banks[d.BankOf(p)]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if d.rise[p] == nil {
		for i := range dst {
			dst[i] = 0
		}
		return 0, nil
	}
	copy(dst, d.rise[p])
	return popcount(d.rise[p]), nil
}

// RefreshRetention recharges page p's marginal cells in place: each byte
// holding a marginal cell gets a program pulse back to its stored value
// (full program cost, no state change — the array already holds the
// intended image). Returns the number of bytes recharged. Refreshing a
// retired page is refused; refreshing a clean page is free.
func (d *Device) RefreshRetention(p int) (int, error) {
	if err := d.checkPage(p); err != nil {
		return 0, err
	}
	b := d.BankOf(p)
	bk := &d.banks[b]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if d.retired[p] {
		return 0, ErrPageRetired
	}
	m := d.rise[p]
	if m == nil {
		return 0, nil
	}
	base := d.PageBase(p)
	n := 0
	for i := range m {
		if m[i] == 0 {
			continue
		}
		m[i] = 0
		n++
		d.emit(OpEvent{
			Kind: OpProgram, Bank: b, Addr: base + i, Bytes: 1, Value: d.array[base+i],
			Energy: d.spec.ProgramEnergy, Busy: d.spec.ProgramLatency,
		})
	}
	return n, nil
}

// ChargeWait charges a retry backoff interval to bank b's ledger: busy time
// passes (the controller is waiting out the part's recovery window) but no
// array operation happens and no energy beyond quiescent draw is modelled.
func (d *Device) ChargeWait(b int, dur time.Duration) {
	if b < 0 || b >= len(d.banks) || dur <= 0 {
		return
	}
	bk := &d.banks[b]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	d.emit(OpEvent{Kind: OpWait, Bank: b, Busy: dur})
}
