package flash

import (
	"errors"
	"fmt"
	"time"

	"github.com/flipbit-sim/flipbit/internal/energy"
)

// In-storage bulk bitwise compute. Flash-Cosmos and MCFlash show that a
// flash array can evaluate bulk bitwise AND/OR across stored rows by
// activating several wordlines simultaneously: with all selected cells on
// one bitline, the line conducts only if every cell conducts (AND), or if
// any cell conducts (OR, with an inverted reference). The simulator models
// that as SenseMulti: one array operation that reads a page-sized bitwise
// combination of up to Spec.MaxSensePages pages of a single bank, charged
// once per simultaneous sense — not once per participating page — which is
// the entire energy argument for computing filters in flash instead of
// hauling every page to the host.

// SenseOp selects the bitwise combination a multi-page sense computes.
type SenseOp uint8

// Supported sense combinations. NOT is expressed per input: a page sensed
// with its invert flag set contributes its bitwise complement (the sense
// amp's inverted reference), so AND/OR over optionally-inverted inputs
// covers the full monotone-with-negated-literals plan space.
const (
	SenseAND SenseOp = iota
	SenseOR
)

func (o SenseOp) String() string {
	if o == SenseOR {
		return "or"
	}
	return "and"
}

// DefaultMaxSensePages bounds simultaneous wordline activation when the
// spec leaves MaxSensePages zero. Flash-Cosmos demonstrates tens of rows;
// sixteen keeps the sense margin model honest.
const DefaultMaxSensePages = 16

// Sense errors.
var (
	// ErrSensePages is returned when the sensed page list is empty or
	// exceeds Spec.MaxSensePages.
	ErrSensePages = errors.New("flash: sense page count out of range")
	// ErrSenseBanks is returned when the sensed pages do not share a bank:
	// simultaneous wordline activation only works within one array plane.
	ErrSenseBanks = errors.New("flash: multi-page sense requires all pages in one bank")
	// ErrSenseInvert is returned when the invert mask length does not match
	// the page list.
	ErrSenseInvert = errors.New("flash: invert mask length must match the page list")
)

// SenseMulti computes the bitwise op-combination of the given pages into
// dst (exactly one page long). All pages must live in one bank; invert may
// be nil (no inputs inverted) or one flag per page, complementing that
// page's contribution. The operation charges Spec.SenseLatency/SenseEnergy
// per byte of the page once, regardless of how many pages participate, and
// emits a single OpSense event through the bank's event stream.
//
// Like ReadPage, SenseMulti is a controller-issued margin-aware sense:
// marginal retention cells resolve to their stored values rather than
// flickering, so an in-flash plan stays bit-identical to a host-side
// combination of the stored pages. Armed read-disturb and retention faults
// observe senses like reads and damage one of the sensed pages after the
// result is served.
func (d *Device) SenseMulti(op SenseOp, pages []int, invert []bool, dst []byte) error {
	if len(pages) == 0 || len(pages) > d.spec.MaxSensePages {
		return fmt.Errorf("%w: %d pages (1..%d)", ErrSensePages, len(pages), d.spec.MaxSensePages)
	}
	if invert != nil && len(invert) != len(pages) {
		return fmt.Errorf("%w: %d flags for %d pages", ErrSenseInvert, len(invert), len(pages))
	}
	if len(dst) != d.spec.PageSize {
		return fmt.Errorf("%w: got %d, page size %d", ErrPageSize, len(dst), d.spec.PageSize)
	}
	for _, p := range pages {
		if err := d.checkPage(p); err != nil {
			return err
		}
	}
	b := d.BankOf(pages[0])
	for _, p := range pages {
		if d.BankOf(p) != b {
			return fmt.Errorf("%w: page %d in bank %d, page %d in bank %d",
				ErrSenseBanks, pages[0], b, p, d.BankOf(p))
		}
	}
	bk := &d.banks[b]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	fill := byte(0xFF) // AND identity
	if op == SenseOR {
		fill = 0x00
	}
	for i := range dst {
		dst[i] = fill
	}
	for j, p := range pages {
		base := d.PageBase(p)
		src := d.array[base : base+d.spec.PageSize]
		inv := invert != nil && invert[j]
		switch {
		case op == SenseAND && !inv:
			for i, v := range src {
				dst[i] &= v
			}
		case op == SenseAND && inv:
			for i, v := range src {
				dst[i] &= ^v
			}
		case op == SenseOR && !inv:
			for i, v := range src {
				dst[i] |= v
			}
		default:
			for i, v := range src {
				dst[i] |= ^v
			}
		}
	}
	d.emit(OpEvent{
		Kind: OpSense, Bank: b, Addr: d.PageBase(pages[0]),
		Bytes: d.spec.PageSize, Pages: len(pages),
		Energy: d.spec.SenseEnergy * energy.Energy(d.spec.PageSize),
		Busy:   d.spec.SenseLatency * time.Duration(d.spec.PageSize),
	})
	if f, fired := d.faultHit(b, OpSense); fired {
		// The fault lands on one of the activated wordlines, drawn from the
		// bank's RNG, after the result was served — exactly the post-serve
		// semantics reads have.
		victim := pages[bk.rng.Intn(len(pages))]
		switch f.Kind {
		case FaultReadDisturb:
			d.disturbPage(b, victim, f.bits())
		case FaultRetention:
			d.markRetention(b, victim)
		}
	}
	return nil
}
