package flash

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

func smallSpec() Spec {
	s := DefaultSpec()
	s.PageSize = 16
	s.NumPages = 8
	s.EnduranceCycles = 50
	return s
}

func TestDefaultSpecValid(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidateRejectsBadGeometry(t *testing.T) {
	mut := []func(*Spec){
		func(s *Spec) { s.PageSize = 0 },
		func(s *Spec) { s.NumPages = -1 },
		func(s *Spec) { s.ReadLatency = 0 },
		func(s *Spec) { s.EraseEnergy = 0 },
		func(s *Spec) { s.EnduranceCycles = 0 },
	}
	for i, m := range mut {
		s := DefaultSpec()
		m(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate spec", i)
		}
	}
}

// TestPaperTableIRatios: Table I — erase is 340× slower and 360× more
// energetic than a program.
func TestPaperTableIRatios(t *testing.T) {
	s := DefaultSpec()
	latRatio := float64(s.EraseLatency) / float64(s.ProgramLatency)
	if math.Abs(latRatio-340) > 1 {
		t.Errorf("erase/program latency ratio = %.1f, want 340", latRatio)
	}
	engRatio := float64(s.EraseEnergy) / float64(s.ProgramEnergy)
	if math.Abs(engRatio-360) > 1 {
		t.Errorf("erase/program energy ratio = %.1f, want 360", engRatio)
	}
	// §I: writes consume 5 orders of magnitude more energy than reads.
	if r := float64(s.ProgramEnergy) / float64(s.ReadEnergy); math.Abs(r-1e5) > 1 {
		t.Errorf("program/read energy ratio = %g, want 1e5", r)
	}
}

// TestPaperFig1ErasePower: §II computes flash drawing 8.4× the M0+'s power
// during an erase; our spec must reproduce that.
func TestPaperFig1ErasePower(t *testing.T) {
	s := DefaultSpec()
	cpu := energy.CortexM0Plus()
	ratio := float64(s.ErasePower()) / float64(cpu.Power)
	if ratio < 8.2 || ratio > 8.6 {
		t.Errorf("erase power / CPU power = %.2f, paper says 8.4×", ratio)
	}
}

func TestNewDeviceStartsErased(t *testing.T) {
	d := MustNewDevice(smallSpec())
	for addr := 0; addr < d.Spec().Size(); addr++ {
		if d.Peek(addr) != 0xFF {
			t.Fatalf("addr %#x not erased at birth", addr)
		}
	}
}

func TestProgramOnlyClearsBits(t *testing.T) {
	d := MustNewDevice(smallSpec())
	if err := d.ProgramByte(0, 0b1010_1010); err != nil {
		t.Fatal(err)
	}
	if d.Peek(0) != 0b1010_1010 {
		t.Fatalf("stored %08b", d.Peek(0))
	}
	// Clearing more bits is fine.
	if err := d.ProgramByte(0, 0b1000_1000); err != nil {
		t.Fatal(err)
	}
	// Setting a cleared bit must fail.
	err := d.ProgramByte(0, 0b1100_1000)
	if !errors.Is(err, ErrNeedsErase) {
		t.Fatalf("expected ErrNeedsErase, got %v", err)
	}
	if d.Peek(0) != 0b1000_1000 {
		t.Fatalf("failed program must not modify the array: %08b", d.Peek(0))
	}
}

// TestProgramSubsetProperty: after any sequence of programs the stored value
// is the AND of all programmed values.
func TestProgramSubsetProperty(t *testing.T) {
	f := func(vals []byte) bool {
		d := MustNewDevice(smallSpec())
		acc := byte(0xFF)
		for _, v := range vals {
			acc &= v
			if err := d.ProgramByte(3, acc); err != nil {
				return false
			}
		}
		return d.Peek(3) == acc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEraseRestoresAllOnes(t *testing.T) {
	d := MustNewDevice(smallSpec())
	base := d.PageBase(2)
	for i := 0; i < d.Spec().PageSize; i++ {
		if err := d.ProgramByte(base+i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ErasePage(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Spec().PageSize; i++ {
		if d.Peek(base+i) != 0xFF {
			t.Fatalf("byte %d not erased", i)
		}
	}
	if d.Wear(2) != 1 {
		t.Errorf("wear = %d, want 1", d.Wear(2))
	}
}

func TestStatsAccounting(t *testing.T) {
	d := MustNewDevice(smallSpec())
	s := d.Spec()
	_, _ = d.ReadByteAt(0)
	_ = d.ProgramByte(0, 0x0F)
	_ = d.ProgramByte(0, 0x0F) // same value: skipped
	_ = d.ErasePage(0)
	st := d.Stats()
	if st.Reads != 1 || st.Programs != 1 || st.ProgramsSkipped != 1 || st.Erases != 1 {
		t.Fatalf("stats = %+v", st)
	}
	wantE := s.ReadEnergy + s.ProgramEnergy + s.EraseEnergy
	if math.Abs(float64(st.Energy-wantE)) > 1e-15 {
		t.Errorf("energy = %v, want %v", st.Energy, wantE)
	}
	wantT := s.ReadLatency + s.ProgramLatency + s.EraseLatency
	if st.Busy != wantT {
		t.Errorf("busy = %v, want %v", st.Busy, wantT)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear")
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{Reads: 5, Programs: 3, Erases: 1, Energy: 2, Busy: 10}
	b := Stats{Reads: 2, Programs: 1, Erases: 1, Energy: 1, Busy: 4}
	sum := a.Add(b)
	if sum.Reads != 7 || sum.Programs != 4 || sum.Erases != 2 {
		t.Errorf("Add = %+v", sum)
	}
	diff := sum.Sub(b)
	if diff != a {
		t.Errorf("Sub = %+v, want %+v", diff, a)
	}
}

func TestBounds(t *testing.T) {
	d := MustNewDevice(smallSpec())
	if _, err := d.ReadByteAt(-1); !errors.Is(err, ErrBounds) {
		t.Error("negative address should fail")
	}
	if _, err := d.ReadByteAt(d.Spec().Size()); !errors.Is(err, ErrBounds) {
		t.Error("past-the-end address should fail")
	}
	if err := d.ErasePage(d.Spec().NumPages); !errors.Is(err, ErrBounds) {
		t.Error("past-the-end page should fail")
	}
	if err := d.Read(d.Spec().Size()-1, make([]byte, 2)); !errors.Is(err, ErrBounds) {
		t.Error("overlapping read should fail")
	}
}

func TestReadPageRoundTrip(t *testing.T) {
	d := MustNewDevice(smallSpec())
	rng := xrand.New(5)
	// Program a known pattern, read the page back, verify.
	base := d.PageBase(1)
	want := make([]byte, d.Spec().PageSize)
	for i := range want {
		want[i] = rng.Byte()
		if err := d.ProgramByte(base+i, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, d.Spec().PageSize)
	before := d.Stats()
	if err := d.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("buffer[%d] = %02x, want %02x", i, buf[i], want[i])
		}
	}
	if got := d.Stats().Reads - before.Reads; got != uint64(d.Spec().PageSize) {
		t.Errorf("ReadPage charged %d reads, want %d", got, d.Spec().PageSize)
	}
	if err := d.ReadPage(1, buf[:1]); !errors.Is(err, ErrPageSize) {
		t.Errorf("short buffer accepted: %v", err)
	}
}

func TestProgramPageRejects0to1(t *testing.T) {
	d := MustNewDevice(smallSpec())
	base := d.PageBase(0)
	if err := d.ProgramByte(base, 0x00); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, d.Spec().PageSize)
	buf[0] = 0x01 // would need a 0→1 flip
	before := d.Stats()
	err := d.ProgramPage(0, buf)
	if !errors.Is(err, ErrNeedsErase) {
		t.Fatalf("want ErrNeedsErase, got %v", err)
	}
	if d.Stats().Programs != before.Programs {
		t.Error("failed page program must charge nothing")
	}
}

func TestProgramPageSkipsUnchanged(t *testing.T) {
	d := MustNewDevice(smallSpec())
	buf := make([]byte, d.Spec().PageSize)
	for i := range buf {
		buf[i] = 0xFF // page is already all-ones
	}
	if err := d.ProgramPage(0, buf); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Programs != 0 {
		t.Errorf("programs = %d, want 0 (all bytes unchanged)", st.Programs)
	}
	if st.ProgramsSkipped != uint64(d.Spec().PageSize) {
		t.Errorf("skipped = %d, want %d", st.ProgramsSkipped, d.Spec().PageSize)
	}
}

func TestEraseProgramPage(t *testing.T) {
	d := MustNewDevice(smallSpec())
	base := d.PageBase(3)
	for i := 0; i < d.Spec().PageSize; i++ {
		if err := d.ProgramByte(base+i, 0x00); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, d.Spec().PageSize)
	for i := range buf {
		buf[i] = byte(i) | 0x80 // needs 0→1 flips, hence the erase
	}
	if err := d.EraseProgramPage(3, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if d.Peek(base+i) != buf[i] {
			t.Fatalf("byte %d = %02x, want %02x", i, d.Peek(base+i), buf[i])
		}
	}
	if d.Wear(3) != 1 {
		t.Errorf("wear = %d", d.Wear(3))
	}
}

func TestBankPartition(t *testing.T) {
	s := smallSpec() // 8 pages, DefaultSpec banks = 4
	d := MustNewDevice(s)
	if d.Banks() != 4 {
		t.Fatalf("banks = %d, want 4", d.Banks())
	}
	// Round-robin interleave: consecutive pages land in distinct banks.
	for p := 0; p < s.NumPages; p++ {
		if d.BankOf(p) != p%4 {
			t.Errorf("BankOf(%d) = %d, want %d", p, d.BankOf(p), p%4)
		}
	}
	// Banks == 0 selects the default; Banks > NumPages clamps.
	s.Banks = 0
	if got := MustNewDevice(s).Banks(); got != DefaultBanks {
		t.Errorf("Banks=0 → %d, want %d", got, DefaultBanks)
	}
	s.Banks = 100
	if got := MustNewDevice(s).Banks(); got != s.NumPages {
		t.Errorf("Banks=100 → %d, want %d (clamped)", got, s.NumPages)
	}
	s.Banks = -1
	if _, err := NewDevice(s); err == nil {
		t.Error("negative bank count accepted")
	}
}

func TestBankStatsShardAndMerge(t *testing.T) {
	d := MustNewDevice(smallSpec())        // 8 pages over 4 banks
	_ = d.ErasePage(0)                     // bank 0
	_ = d.ErasePage(4)                     // bank 0
	_ = d.ErasePage(1)                     // bank 1
	_ = d.ProgramByte(d.PageBase(2), 0x00) // bank 2
	if got := d.BankStats(0).Erases; got != 2 {
		t.Errorf("bank 0 erases = %d, want 2", got)
	}
	if got := d.BankStats(1).Erases; got != 1 {
		t.Errorf("bank 1 erases = %d, want 1", got)
	}
	if got := d.BankStats(2).Programs; got != 1 {
		t.Errorf("bank 2 programs = %d, want 1", got)
	}
	st := d.Stats()
	if st.Erases != 3 || st.Programs != 1 {
		t.Errorf("merged stats = %+v", st)
	}
}

func TestObserverSeesEveryOp(t *testing.T) {
	d := MustNewDevice(smallSpec())
	var events []OpEvent
	obs := ObserverFunc(func(ev OpEvent) { events = append(events, ev) })
	d.Attach(obs)
	_, _ = d.ReadByteAt(0)
	_ = d.ProgramByte(0, 0x0F)
	_ = d.ProgramByte(0, 0x0F) // skipped
	_ = d.ErasePage(0)
	want := []OpKind{OpRead, OpProgram, OpProgramSkip, OpErase}
	if len(events) != len(want) {
		t.Fatalf("saw %d events, want %d", len(events), len(want))
	}
	for i, k := range want {
		if events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, events[i].Kind, k)
		}
	}
	if events[3].Addr != 0 || events[3].Bank != 0 {
		t.Errorf("erase event = %+v", events[3])
	}
	d.Detach(obs)
	_ = d.ProgramByte(1, 0x00)
	if len(events) != len(want) {
		t.Error("detached observer still received events")
	}
}

// TestObserverStatsAgree: the observer event stream carries exactly the
// costs the stats shards accumulate — one accounting path, two views.
func TestObserverStatsAgree(t *testing.T) {
	d := MustNewDevice(smallSpec())
	// Accumulate per (bank, kind) and merge kinds in kind order, banks in
	// bank order — mirroring the stats shards' per-kind accumulators —
	// so float totals are byte-identical, not just close.
	perBankKind := make([][opKindCount]energy.Energy, d.Banks())
	var reads, programs uint64
	d.Attach(ObserverFunc(func(ev OpEvent) {
		perBankKind[ev.Bank][ev.Kind] += ev.Energy
		switch ev.Kind {
		case OpRead:
			reads += uint64(ev.Bytes)
		case OpProgram:
			programs += uint64(ev.Bytes)
		}
	}))
	rng := xrand.New(77)
	for i := 0; i < 200; i++ {
		addr := rng.Intn(d.Spec().Size())
		switch rng.Intn(3) {
		case 0:
			_, _ = d.ReadByteAt(addr)
		case 1:
			_ = d.ProgramByte(addr, d.Peek(addr)&rng.Byte())
		case 2:
			_ = d.ErasePage(rng.Intn(d.Spec().NumPages))
		}
	}
	st := d.Stats()
	if st.Reads != reads || st.Programs != programs {
		t.Errorf("observer counted reads=%d programs=%d, stats %+v", reads, programs, st)
	}
	var total energy.Energy
	for _, kinds := range perBankKind {
		var bankTotal energy.Energy
		for _, e := range kinds {
			bankTotal += e
		}
		total += bankTotal
	}
	if st.Energy != total {
		t.Errorf("observer energy %v != stats energy %v", total, st.Energy)
	}
}

func TestLedgerObserver(t *testing.T) {
	d := MustNewDevice(smallSpec())
	var led energy.Ledger
	d.Attach(NewLedgerObserver(&led))
	_ = d.ProgramByte(0, 0x00)
	_ = d.ErasePage(1)
	_, _ = d.ReadByteAt(2)
	st := d.Stats()
	if led.Total() != st.Energy {
		t.Errorf("ledger total %v != stats energy %v", led.Total(), st.Energy)
	}
	if led.Busy() != st.Busy {
		t.Errorf("ledger busy %v != stats busy %v", led.Busy(), st.Busy)
	}
	byOp := led.ByOp()
	if byOp["erase"] != d.Spec().EraseEnergy {
		t.Errorf("erase energy = %v, want %v", byOp["erase"], d.Spec().EraseEnergy)
	}
	if byOp["program"] != d.Spec().ProgramEnergy {
		t.Errorf("program energy = %v", byOp["program"])
	}
}

func TestWearOutFaultModel(t *testing.T) {
	s := smallSpec() // endurance 50
	d := MustNewDevice(s)
	var sawWornOut bool
	for i := uint32(0); i < s.EnduranceCycles+5; i++ {
		err := d.ErasePage(0)
		if err != nil {
			if !errors.Is(err, ErrWornOut) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawWornOut = true
		}
	}
	if !sawWornOut {
		t.Fatal("never saw ErrWornOut past endurance")
	}
	if !d.WornOut(0) {
		t.Error("page 0 should be flagged worn out")
	}
	// A worn-out page has stuck-at-0 cells after erase.
	stuck := 0
	base := d.PageBase(0)
	for i := 0; i < s.PageSize; i++ {
		if d.Peek(base+i) != 0xFF {
			stuck++
		}
	}
	if stuck == 0 {
		t.Error("worn-out page erased perfectly; fault model inactive")
	}
}

func TestMaxWear(t *testing.T) {
	d := MustNewDevice(smallSpec())
	_ = d.ErasePage(1)
	_ = d.ErasePage(1)
	_ = d.ErasePage(4)
	if d.MaxWear() != 2 {
		t.Errorf("MaxWear = %d, want 2", d.MaxWear())
	}
}

func TestPageOfPageBase(t *testing.T) {
	d := MustNewDevice(smallSpec())
	ps := d.Spec().PageSize
	if d.PageOf(0) != 0 || d.PageOf(ps-1) != 0 || d.PageOf(ps) != 1 {
		t.Error("PageOf boundaries wrong")
	}
	if d.PageBase(3) != 3*ps {
		t.Error("PageBase wrong")
	}
}
