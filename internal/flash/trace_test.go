package flash

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// TestTraceReplayReproducesState: replaying a recorded trace on a fresh
// device must reproduce the original array bit for bit.
func TestTraceReplayReproducesState(t *testing.T) {
	spec := smallSpec()
	d := MustNewDevice(spec)
	var tr Trace
	d.SetTracer(&tr)

	rng := xrand.New(21)
	// A random mix of programs and erases.
	for i := 0; i < 500; i++ {
		if rng.Intn(10) == 0 {
			_ = d.ErasePage(rng.Intn(spec.NumPages))
			continue
		}
		addr := rng.Intn(spec.Size())
		cur := d.Peek(addr)
		_ = d.ProgramByte(addr, cur&rng.Byte()) // always a legal subset
	}

	replayed, err := tr.Replay(spec)
	if err != nil {
		t.Fatal(err)
	}
	for addr := 0; addr < spec.Size(); addr++ {
		if replayed.Peek(addr) != d.Peek(addr) {
			t.Fatalf("replayed state differs at %#x: %#x vs %#x",
				addr, replayed.Peek(addr), d.Peek(addr))
		}
	}
}

func TestTraceEraseHeat(t *testing.T) {
	spec := smallSpec()
	d := MustNewDevice(spec)
	var tr Trace
	d.SetTracer(&tr)
	_ = d.ErasePage(1)
	_ = d.ErasePage(1)
	_ = d.ErasePage(3)
	heat := tr.EraseHeat(spec.NumPages)
	if heat[1] != 2 || heat[3] != 1 || heat[0] != 0 {
		t.Errorf("heat = %v", heat)
	}
}

func TestTraceProgramBytes(t *testing.T) {
	d := MustNewDevice(smallSpec())
	var tr Trace
	d.SetTracer(&tr)
	_ = d.ProgramByte(0, 0x0F)
	_ = d.ProgramByte(0, 0x0F) // skipped: unchanged
	_ = d.ProgramByte(1, 0x00)
	if got := tr.ProgramBytes(); got != 2 {
		t.Errorf("ProgramBytes = %d, want 2 (skips are not traced)", got)
	}
}

func TestTraceDetach(t *testing.T) {
	d := MustNewDevice(smallSpec())
	var tr Trace
	d.SetTracer(&tr)
	_ = d.ProgramByte(0, 0)
	d.SetTracer(nil)
	_ = d.ProgramByte(1, 0)
	if tr.Len() != 1 {
		t.Errorf("entries after detach = %d, want 1", tr.Len())
	}
}

// TestTraceRingBufferCaps: a trace with a small limit retains the most
// recent entries and counts the evicted ones.
func TestTraceRingBufferCaps(t *testing.T) {
	d := MustNewDevice(smallSpec())
	tr := NewTrace(4)
	d.SetTracer(tr)
	for i := 0; i < 10; i++ {
		_ = d.ProgramByte(i, byte(i)) // distinct values, all reachable
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
	got := tr.Entries()
	for i, e := range got {
		wantAddr := 6 + i // oldest retained entry is op #6
		if e.Addr != wantAddr || e.Value != byte(wantAddr) {
			t.Errorf("entry %d = %+v, want addr %d", i, e, wantAddr)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("Reset incomplete")
	}
	if tr.Limit() != 4 {
		t.Errorf("limit after reset = %d, want 4", tr.Limit())
	}
}

func TestTraceZeroValueUsesDefaultLimit(t *testing.T) {
	var tr Trace
	if tr.Limit() != DefaultTraceLimit {
		t.Errorf("zero-value limit = %d, want %d", tr.Limit(), DefaultTraceLimit)
	}
	tr.Append(TraceEntry{Op: TraceProgram, Addr: 1})
	if tr.Len() != 1 || tr.Dropped() != 0 {
		t.Error("zero-value trace did not record")
	}
}

// TestTraceAsObserver: a Trace attached through the generic observer bus
// records the same operations as SetTracer.
func TestTraceAsObserver(t *testing.T) {
	d := MustNewDevice(smallSpec())
	tr := NewTrace(0)
	d.Attach(tr)
	_ = d.ProgramByte(0, 0x3C)
	_ = d.ProgramByte(0, 0x3C) // skipped: not traced
	_ = d.ErasePage(2)
	_, _ = d.ReadByteAt(0) // reads are not traced
	got := tr.Entries()
	if len(got) != 2 {
		t.Fatalf("entries = %d, want 2", len(got))
	}
	if got[0].Op != TraceProgram || got[0].Value != 0x3C {
		t.Errorf("entry 0 = %+v", got[0])
	}
	if got[1].Op != TraceErase || got[1].Addr != 2 {
		t.Errorf("entry 1 = %+v", got[1])
	}
}

func TestTraceOpString(t *testing.T) {
	if TraceProgram.String() != "program" || TraceErase.String() != "erase" {
		t.Error("TraceOp strings wrong")
	}
}
