package flash

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// TestTraceReplayReproducesState: replaying a recorded trace on a fresh
// device must reproduce the original array bit for bit.
func TestTraceReplayReproducesState(t *testing.T) {
	spec := smallSpec()
	d := MustNewDevice(spec)
	var tr Trace
	d.SetTracer(&tr)

	rng := xrand.New(21)
	// A random mix of programs and erases.
	for i := 0; i < 500; i++ {
		if rng.Intn(10) == 0 {
			_ = d.ErasePage(rng.Intn(spec.NumPages))
			continue
		}
		addr := rng.Intn(spec.Size())
		cur := d.Peek(addr)
		_ = d.ProgramByte(addr, cur&rng.Byte()) // always a legal subset
	}

	replayed, err := tr.Replay(spec)
	if err != nil {
		t.Fatal(err)
	}
	for addr := 0; addr < spec.Size(); addr++ {
		if replayed.Peek(addr) != d.Peek(addr) {
			t.Fatalf("replayed state differs at %#x: %#x vs %#x",
				addr, replayed.Peek(addr), d.Peek(addr))
		}
	}
}

func TestTraceEraseHeat(t *testing.T) {
	spec := smallSpec()
	d := MustNewDevice(spec)
	var tr Trace
	d.SetTracer(&tr)
	_ = d.ErasePage(1)
	_ = d.ErasePage(1)
	_ = d.ErasePage(3)
	heat := tr.EraseHeat(spec.NumPages)
	if heat[1] != 2 || heat[3] != 1 || heat[0] != 0 {
		t.Errorf("heat = %v", heat)
	}
}

func TestTraceProgramBytes(t *testing.T) {
	d := MustNewDevice(smallSpec())
	var tr Trace
	d.SetTracer(&tr)
	_ = d.ProgramByte(0, 0x0F)
	_ = d.ProgramByte(0, 0x0F) // skipped: unchanged
	_ = d.ProgramByte(1, 0x00)
	if got := tr.ProgramBytes(); got != 2 {
		t.Errorf("ProgramBytes = %d, want 2 (skips are not traced)", got)
	}
}

func TestTraceDetach(t *testing.T) {
	d := MustNewDevice(smallSpec())
	var tr Trace
	d.SetTracer(&tr)
	_ = d.ProgramByte(0, 0)
	d.SetTracer(nil)
	_ = d.ProgramByte(1, 0)
	if len(tr.Entries) != 1 {
		t.Errorf("entries after detach = %d, want 1", len(tr.Entries))
	}
}

func TestTraceOpString(t *testing.T) {
	if TraceProgram.String() != "program" || TraceErase.String() != "erase" {
		t.Error("TraceOp strings wrong")
	}
}
