// Package flash models an embedded NOR flash memory at the level FlipBit
// cares about: bit-level program/erase semantics, page organisation, SRAM
// write buffers, per-operation latency and energy, and wear (paper §II).
//
// The physical rules the model enforces are exactly the ones the paper's
// mechanism exploits:
//
//   - an erase works on a whole page and sets every bit to 1;
//   - a program works on a single byte and can only clear bits (1 → 0);
//   - erase is ~340× slower and ~360× more energetic than a program;
//   - every program/erase cycle wears the page's tunnel oxide.
package flash

import (
	"fmt"
	"time"

	"github.com/flipbit-sim/flipbit/internal/energy"
)

// CellMode selects how many bits one flash cell stores and therefore what
// a program pulse can do to it. A cell storing b bits holds one of 2^b
// logical levels; erasing sets it to the top level and every program pulse
// moves it monotonically *down* (§VI: 11 → 10 → 01 → 00 for MLC). SLC is
// the degenerate b = 1 case, where "level decrease" is exactly "clear a
// bit". Denser modes trade endurance and program cost for capacity — see
// DensitySpec.
type CellMode int

// Supported cell modes. The ordinal encodes the density: Bits() == m + 1.
const (
	SLC CellMode = iota // 1 bit/cell, 2 levels
	MLC                 // 2 bits/cell, 4 levels
	TLC                 // 3 bits/cell, 8 levels
)

func (m CellMode) String() string {
	switch m {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	}
	// Stable token for out-of-range values so error messages and logs can
	// name the offending mode instead of mislabelling it as a real one.
	return fmt.Sprintf("CellMode(%d)", int(m))
}

// Valid reports whether m is a supported cell mode. Spec.Validate rejects
// invalid modes up front; nothing else in the package defends against them.
func (m CellMode) Valid() bool { return m >= SLC && m <= TLC }

// Bits returns the number of bits one cell stores under this mode.
func (m CellMode) Bits() int { return int(m) + 1 }

// Levels returns the number of logical levels one cell can hold (2^Bits).
func (m CellMode) Levels() int { return 1 << uint(m.Bits()) }

// Reachable reports whether a byte holding `from` can be programmed to
// `to` without an erase under this cell mode: every cell-level field of
// the byte may only decrease. Fields are Bits() wide starting at bit 0,
// with the top field truncated at the byte boundary (TLC splits a byte
// 3-3-2); cells never span bytes, which is what keeps the byte-granular
// program operation well defined per cell mode. For SLC the per-field
// test degenerates to the bitwise subset test, taken word-wise here.
func (m CellMode) Reachable(from, to byte) bool {
	if m == SLC {
		return to&^from == 0
	}
	b := uint(m.Bits())
	mask := byte(1)<<b - 1
	for shift := uint(0); shift < 8; shift += b {
		if to>>shift&mask > from>>shift&mask {
			return false
		}
	}
	return true
}

// DensitySpec re-parameterises base for the given cell density, modelling
// what running the same silicon at more bits per cell costs:
//
//   - programming a b-bit cell needs b-fold finer pulse/verify staircases,
//     so per-byte program latency and energy scale by Bits();
//   - reads discriminate 2^b levels with b reference comparisons instead
//     of one, so read and sense latency/energy scale by Bits() too;
//   - the tighter level windows die sooner: endurance drops one decade per
//     extra bit (the classic 100k/10k/1k SLC/MLC/TLC ladder), floored at
//     one cycle;
//   - erase is a whole-page charge-pump operation and does not change.
//
// Capacity is the flip side — the same physical cells hold Bits()× the
// data — but this model keeps Spec geometry in *logical* bytes, so density
// sweeps account capacity as Bits()× per physical cell (see the lifetime
// experiment) rather than by inflating PageSize here.
func DensitySpec(base Spec, mode CellMode) Spec {
	s := base
	s.Cell = mode
	b := mode.Bits()
	s.ProgramLatency *= time.Duration(b)
	s.ProgramEnergy *= energy.Energy(b)
	s.ReadLatency *= time.Duration(b)
	s.ReadEnergy *= energy.Energy(b)
	s.SenseLatency *= time.Duration(b)
	s.SenseEnergy *= energy.Energy(b)
	for i := 1; i < b; i++ {
		s.EnduranceCycles /= 10
	}
	if s.EnduranceCycles == 0 {
		s.EnduranceCycles = 1
	}
	return s
}

// DefaultBanks is the bank count used when a Spec leaves Banks zero.
// Commercial parts commonly expose two to four independently operable
// banks/planes; four is the sweet spot for the parallel commit path.
const DefaultBanks = 4

// Spec describes a flash part: geometry, datasheet timing/energy and
// endurance. The zero value is not usable; start from DefaultSpec.
type Spec struct {
	Name string

	// Cell selects the density — SLC (default), MLC or TLC — and with it
	// the per-cell program semantics. Use DensitySpec to also derate
	// timing, energy and endurance for the chosen density.
	Cell CellMode

	// Geometry.
	PageSize int // bytes per page (erase granularity)
	NumPages int

	// Banks is the number of independently lockable banks; pages are
	// interleaved across banks round-robin (page p → bank p % Banks).
	// Zero selects DefaultBanks; the device clamps Banks to NumPages.
	Banks int

	// Latency per operation (Table I of the paper).
	ReadLatency    time.Duration // one byte
	ProgramLatency time.Duration // one byte
	EraseLatency   time.Duration // one page

	// Energy per operation.
	ReadEnergy    energy.Energy // one byte
	ProgramEnergy energy.Energy // one byte
	EraseEnergy   energy.Energy // one page

	// In-storage compute: a multi-wordline bitwise sense (SenseMulti) reads
	// the AND/OR of several pages in one array operation, so its cost is
	// charged once per simultaneous sense — not once per participating page.
	// The defaults model Flash-Cosmos-style sensing: about twice a plain
	// read per byte (stronger precharge, tighter sense margin), bounded to
	// MaxSensePages wordlines activated together. Zero values select the
	// defaults in NewDevice; negative values are rejected by Validate.
	SenseLatency  time.Duration // one simultaneous sense, per byte of the page
	SenseEnergy   energy.Energy // one simultaneous sense, per byte of the page
	MaxSensePages int           // max pages sensed simultaneously (0 → DefaultMaxSensePages)

	// Endurance: program/erase cycles a page survives before wearing out
	// (typically 10,000–1,000,000; §II-B).
	EnduranceCycles uint32
}

// DefaultSpec returns the commercially-available embedded NOR part the paper
// evaluates against [75]: 256-byte pages with page-granularity erase.
//
// Latencies are Table I verbatim: read 30.3 ns, program 30 µs, erase
// 10.2 ms (ratios 340× program:erase). Energies are anchored on the two
// figures the paper states: a page erase costs 196 µJ (§II) and a program is
// 360× cheaper than an erase, i.e. ≈544 nJ/byte (consistent with §V-D, which
// puts programming a single byte at ≈574 nJ). Reads are five orders of
// magnitude cheaper than writes (§I), giving ≈5.4 pJ/byte.
func DefaultSpec() Spec {
	const eraseEnergy = 196 * energy.Microjoule
	return Spec{
		Name:            "embedded-nor-256B",
		PageSize:        256,
		NumPages:        4096, // 1 MiB array, matching the approx region of Listing 2
		Banks:           DefaultBanks,
		ReadLatency:     30*time.Nanosecond + 300*time.Nanosecond/1000,
		ProgramLatency:  30 * time.Microsecond,
		EraseLatency:    10200 * time.Microsecond,
		ReadEnergy:      eraseEnergy / 360 / 1e5,
		ProgramEnergy:   eraseEnergy / 360,
		EraseEnergy:     eraseEnergy,
		SenseLatency:    2 * (30*time.Nanosecond + 300*time.Nanosecond/1000),
		SenseEnergy:     2 * eraseEnergy / 360 / 1e5,
		MaxSensePages:   DefaultMaxSensePages,
		EnduranceCycles: 100_000,
	}
}

// Validate reports whether the spec is internally consistent. It is called
// by NewDevice, so a malformed spec fails up front with a description of the
// problem instead of deep inside the bank split.
func (s Spec) Validate() error {
	switch {
	case !s.Cell.Valid():
		return fmt.Errorf("flash: unknown cell mode %v", s.Cell)
	case s.PageSize <= 0:
		return fmt.Errorf("flash: page size must be positive, got %d", s.PageSize)
	case s.NumPages <= 0:
		return fmt.Errorf("flash: page count must be positive, got %d", s.NumPages)
	case s.Banks < 0:
		return fmt.Errorf("flash: bank count must not be negative, got %d", s.Banks)
	case s.ReadLatency <= 0 || s.ProgramLatency <= 0 || s.EraseLatency <= 0:
		return fmt.Errorf("flash: operation latencies must be positive")
	case s.ReadEnergy <= 0 || s.ProgramEnergy <= 0 || s.EraseEnergy <= 0:
		return fmt.Errorf("flash: operation energies must be positive")
	case s.SenseLatency < 0 || s.SenseEnergy < 0:
		return fmt.Errorf("flash: sense latency and energy must not be negative")
	case s.MaxSensePages < 0:
		return fmt.Errorf("flash: MaxSensePages must not be negative, got %d", s.MaxSensePages)
	case s.EnduranceCycles == 0:
		return fmt.Errorf("flash: endurance must be positive")
	}
	// Pages interleave across banks round-robin; an uneven split would give
	// some banks one page more than others, skewing every per-bank layout
	// computation (bitmap strides, campaign page draws) silently.
	if nb := s.effectiveBanks(); s.NumPages%nb != 0 {
		return fmt.Errorf("flash: page count %d is not divisible by bank count %d", s.NumPages, nb)
	}
	return nil
}

// effectiveBanks returns the bank count the device will actually operate:
// zero selects DefaultBanks and the result is clamped to the page count,
// mirroring the normalisation NewDevice applies.
func (s Spec) effectiveBanks() int {
	b := s.Banks
	if b == 0 {
		b = DefaultBanks
	}
	if b > s.NumPages {
		b = s.NumPages
	}
	return b
}

// Size returns the total capacity in bytes.
func (s Spec) Size() int { return s.PageSize * s.NumPages }

// ReadPower, ProgramPower and ErasePower return the average power drawn
// while the respective operation is in flight. These are the bars of Fig. 1.
func (s Spec) ReadPower() energy.Power {
	return energy.PowerOver(s.ReadEnergy, s.ReadLatency)
}

// ProgramPower returns the average power of a byte program.
func (s Spec) ProgramPower() energy.Power {
	return energy.PowerOver(s.ProgramEnergy, s.ProgramLatency)
}

// ErasePower returns the average power of a page erase.
func (s Spec) ErasePower() energy.Power {
	return energy.PowerOver(s.EraseEnergy, s.EraseLatency)
}
