package flash

import (
	"errors"
	"fmt"
	"sync"
)

// TraceOp is the kind of a traced flash operation.
type TraceOp uint8

// Traced operation kinds: the state-changing operations (programs and
// erases). Reads are not traced — they do not affect replayability and
// would dominate the log under XIP execution.
const (
	TraceProgram TraceOp = iota
	TraceErase
)

func (o TraceOp) String() string {
	if o == TraceErase {
		return "erase"
	}
	return "program"
}

// TraceEntry is one recorded operation.
type TraceEntry struct {
	Op    TraceOp
	Addr  int  // byte address for programs, page number for erases
	Value byte // programmed value (programs only)
}

// DefaultTraceLimit caps a Trace that was not given an explicit limit.
// 1 Mi entries ≈ 16 MiB — deep enough for every experiment in the suite,
// bounded enough that a tracing video/ML run cannot exhaust memory.
const DefaultTraceLimit = 1 << 20

// Trace records the state-changing operations of a device so a run can be
// replayed, diffed or analyzed offline. Attach with Device.SetTracer (it is
// an Observer, so Device.Attach works too).
//
// The trace is a capped ring buffer: once Limit entries are held, each new
// entry evicts the oldest and increments the dropped counter, so tracing a
// long workload consumes bounded memory. The zero value is ready to use
// with DefaultTraceLimit; use NewTrace for an explicit cap. Trace is safe
// for concurrent use.
type Trace struct {
	mu      sync.Mutex
	limit   int
	ring    []TraceEntry
	start   int // index of the oldest entry
	count   int
	dropped uint64
}

// NewTrace returns a trace holding at most limit entries; limit <= 0
// selects DefaultTraceLimit.
func NewTrace(limit int) *Trace {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Trace{limit: limit}
}

// Limit returns the maximum number of entries the trace retains.
func (t *Trace) Limit() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.effectiveLimit()
}

func (t *Trace) effectiveLimit() int {
	if t.limit <= 0 {
		return DefaultTraceLimit
	}
	return t.limit
}

// Append records one entry, evicting the oldest if the trace is full.
func (t *Trace) Append(e TraceEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	limit := t.effectiveLimit()
	if t.count < limit {
		if t.count == len(t.ring) {
			// Grow geometrically up to the cap rather than
			// allocating the full ring up front.
			t.ring = append(t.ring, e)
			t.count++
			return
		}
		t.ring[(t.start+t.count)%len(t.ring)] = e
		t.count++
		return
	}
	// Full: overwrite the oldest.
	t.ring[t.start] = e
	t.start = (t.start + 1) % len(t.ring)
	t.dropped++
}

// OnOp implements Observer: programs and erases are recorded, reads and
// skipped programs are not.
func (t *Trace) OnOp(ev OpEvent) {
	switch ev.Kind {
	case OpProgram:
		t.Append(TraceEntry{Op: TraceProgram, Addr: ev.Addr, Value: ev.Value})
	case OpErase:
		t.Append(TraceEntry{Op: TraceErase, Addr: ev.Addr})
	}
}

// Len returns the number of retained entries.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Dropped returns how many entries were evicted because the trace was full.
func (t *Trace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Entries returns the retained entries, oldest first.
func (t *Trace) Entries() []TraceEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEntry, t.count)
	for i := 0; i < t.count; i++ {
		out[i] = t.ring[(t.start+i)%len(t.ring)]
	}
	return out
}

// Reset discards all entries and the dropped counter, keeping the limit.
func (t *Trace) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.start, t.count, t.dropped = 0, 0, 0
}

// ErrReplayMismatch is returned when a replayed trace cannot be applied.
var ErrReplayMismatch = errors.New("flash: trace replay failed")

// Replay applies the trace to a fresh device of the given spec and returns
// it. Replaying onto a device with different geometry fails. A trace that
// dropped entries replays only the retained suffix, which generally cannot
// reproduce the original state — check Dropped first.
func (t *Trace) Replay(spec Spec) (*Device, error) {
	d, err := NewDevice(spec)
	if err != nil {
		return nil, err
	}
	for i, e := range t.Entries() {
		switch e.Op {
		case TraceProgram:
			err = d.ProgramByte(e.Addr, e.Value)
		case TraceErase:
			err = d.ErasePage(e.Addr)
		default:
			err = fmt.Errorf("unknown op %d", e.Op)
		}
		if err != nil && !errors.Is(err, ErrWornOut) {
			return nil, fmt.Errorf("%w: entry %d (%v %#x): %v", ErrReplayMismatch, i, e.Op, e.Addr, err)
		}
	}
	return d, nil
}

// EraseHeat returns the per-page erase counts recorded in the trace — the
// wear heat map a lifetime analysis starts from.
func (t *Trace) EraseHeat(numPages int) []int {
	heat := make([]int, numPages)
	for _, e := range t.Entries() {
		if e.Op == TraceErase && e.Addr >= 0 && e.Addr < numPages {
			heat[e.Addr]++
		}
	}
	return heat
}

// ProgramBytes returns the number of programmed bytes in the trace.
func (t *Trace) ProgramBytes() int {
	n := 0
	for _, e := range t.Entries() {
		if e.Op == TraceProgram {
			n++
		}
	}
	return n
}

// SetTracer attaches (or detaches, with nil) an operation trace to the
// device. Tracing records programs and erases only. SetTracer must not be
// called concurrently with device operations.
func (d *Device) SetTracer(t *Trace) { d.trace = t }
