package flash

import (
	"errors"
	"fmt"
)

// TraceOp is the kind of a traced flash operation.
type TraceOp uint8

// Traced operation kinds: the state-changing operations (programs and
// erases). Reads are not traced — they do not affect replayability and
// would dominate the log under XIP execution.
const (
	TraceProgram TraceOp = iota
	TraceErase
)

func (o TraceOp) String() string {
	if o == TraceErase {
		return "erase"
	}
	return "program"
}

// TraceEntry is one recorded operation.
type TraceEntry struct {
	Op    TraceOp
	Addr  int  // byte address for programs, page number for erases
	Value byte // programmed value (programs only)
}

// Trace records the state-changing operations of a device so a run can be
// replayed, diffed or analyzed offline. Attach with Device.SetTracer.
type Trace struct {
	Entries []TraceEntry
}

// ErrReplayMismatch is returned when a replayed trace cannot be applied.
var ErrReplayMismatch = errors.New("flash: trace replay failed")

// Replay applies the trace to a fresh device of the given spec and returns
// it. Replaying onto a device with different geometry fails.
func (t *Trace) Replay(spec Spec) (*Device, error) {
	d, err := NewDevice(spec)
	if err != nil {
		return nil, err
	}
	for i, e := range t.Entries {
		switch e.Op {
		case TraceProgram:
			err = d.ProgramByte(e.Addr, e.Value)
		case TraceErase:
			err = d.ErasePage(e.Addr)
		default:
			err = fmt.Errorf("unknown op %d", e.Op)
		}
		if err != nil && !errors.Is(err, ErrWornOut) {
			return nil, fmt.Errorf("%w: entry %d (%v %#x): %v", ErrReplayMismatch, i, e.Op, e.Addr, err)
		}
	}
	return d, nil
}

// EraseHeat returns the per-page erase counts recorded in the trace — the
// wear heat map a lifetime analysis starts from.
func (t *Trace) EraseHeat(numPages int) []int {
	heat := make([]int, numPages)
	for _, e := range t.Entries {
		if e.Op == TraceErase && e.Addr >= 0 && e.Addr < numPages {
			heat[e.Addr]++
		}
	}
	return heat
}

// ProgramBytes returns the number of programmed bytes in the trace.
func (t *Trace) ProgramBytes() int {
	n := 0
	for _, e := range t.Entries {
		if e.Op == TraceProgram {
			n++
		}
	}
	return n
}

// SetTracer attaches (or detaches, with nil) an operation trace to the
// device. Tracing records programs and erases only.
func (d *Device) SetTracer(t *Trace) { d.trace = t }
