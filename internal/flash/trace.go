package flash

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// TraceOp is the kind of a traced flash operation.
type TraceOp uint8

// Traced operation kinds: the state-changing operations (programs and
// erases). Reads are not traced — they do not affect replayability and
// would dominate the log under XIP execution.
const (
	TraceProgram TraceOp = iota
	TraceErase
)

func (o TraceOp) String() string {
	if o == TraceErase {
		return "erase"
	}
	return "program"
}

// TraceEntry is one recorded operation.
type TraceEntry struct {
	Op    TraceOp
	Addr  int  // byte address for programs, page number for erases
	Value byte // programmed value (programs only)
}

// DefaultTraceLimit caps a Trace that was not given an explicit limit.
// 1 Mi entries ≈ 16 MiB — deep enough for every experiment in the suite,
// bounded enough that a tracing video/ML run cannot exhaust memory.
const DefaultTraceLimit = 1 << 20

// Trace records the state-changing operations of a device so a run can be
// replayed, diffed or analyzed offline. Attach with Device.SetTracer (it is
// an Observer, so Device.Attach works too).
//
// The trace is sharded to match the device's op-event bus: when attached,
// each flash bank appends into its own ring under its own lock, so tracing
// never serializes concurrent banks on one mutex. Read accessors merge the
// shards deterministically: entries are ordered by (per-bank sequence,
// bank), which depends only on each bank's operation sequence — never on
// goroutine scheduling — so a concurrent run and a serial run of the same
// per-bank workloads read back the same trace.
//
// Retention is capped: Entries returns at most Limit entries, each shard
// evicts its oldest entry once it holds Limit, and Dropped counts every
// recorded entry that Entries no longer returns. The zero value is ready to
// use with DefaultTraceLimit; use NewTrace for an explicit cap. Trace is
// safe for concurrent use.
type Trace struct {
	mu     sync.Mutex // guards limit and the shard list, not shard contents
	limit  int
	shards []*traceShard
}

// seqEntry is a TraceEntry plus its position in the owning shard's stream.
type seqEntry struct {
	TraceEntry
	seq uint64
}

// traceShard is one bank's ring. Its lock nests inside the owning bank's
// lock on the append path and is never held while taking another lock.
type traceShard struct {
	mu       sync.Mutex
	limit    int
	ring     []seqEntry
	start    int // index of the oldest entry
	count    int
	appended uint64 // entries ever appended; doubles as the seq source
}

// NewTrace returns a trace holding at most limit entries; limit <= 0
// selects DefaultTraceLimit.
func NewTrace(limit int) *Trace {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Trace{limit: limit}
}

// Limit returns the maximum number of entries the trace retains.
func (t *Trace) Limit() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.effectiveLimit()
}

func (t *Trace) effectiveLimit() int {
	if t.limit <= 0 {
		return DefaultTraceLimit
	}
	return t.limit
}

// shard returns shard i, growing the shard list as needed.
func (t *Trace) shard(i int) *traceShard {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.shards) <= i {
		t.shards = append(t.shards, &traceShard{limit: t.effectiveLimit()})
	}
	return t.shards[i]
}

// snapshot returns the current shard list.
func (t *Trace) snapshot() []*traceShard {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shards
}

// ObserverShards implements ShardObserver: bank b of an attaching device
// records into shard b. Entries recorded before attaching (or by a device
// with fewer banks) stay in their shards.
func (t *Trace) ObserverShards(banks int) []Observer {
	obs := make([]Observer, banks)
	for b := 0; b < banks; b++ {
		obs[b] = traceShardObs{t: t, s: t.shard(b)}
	}
	return obs
}

// traceShardObs delivers one bank's events to its trace shard without
// touching the trace-level mutex.
type traceShardObs struct {
	t *Trace
	s *traceShard
}

// OnOp implements Observer for one shard: programs and erases are
// recorded, reads and skipped programs are not. A batched page-program
// event (Data/Prev set) expands to one entry per programmed byte under a
// single lock acquisition.
func (o traceShardObs) OnOp(ev OpEvent) { o.s.onOp(ev) }

func (s *traceShard) onOp(ev OpEvent) {
	switch ev.Kind {
	case OpProgram:
		s.mu.Lock()
		if ev.Data != nil {
			for i, v := range ev.Data {
				if ev.Prev[i] != v {
					s.appendLocked(TraceEntry{Op: TraceProgram, Addr: ev.Addr + i, Value: v})
				}
			}
		} else {
			s.appendLocked(TraceEntry{Op: TraceProgram, Addr: ev.Addr, Value: ev.Value})
		}
		s.mu.Unlock()
	case OpErase:
		s.mu.Lock()
		s.appendLocked(TraceEntry{Op: TraceErase, Addr: ev.Addr})
		s.mu.Unlock()
	}
}

// OnOp implements Observer on the trace itself, for traces used without
// Device.Attach (which installs the per-bank shards instead): events route
// to the shard of their bank.
func (t *Trace) OnOp(ev OpEvent) {
	if ev.Kind != OpProgram && ev.Kind != OpErase {
		return
	}
	b := ev.Bank
	if b < 0 {
		b = 0
	}
	t.shard(b).onOp(ev)
}

// Append records one entry (into shard 0), evicting the oldest if the
// shard is full.
func (t *Trace) Append(e TraceEntry) {
	s := t.shard(0)
	s.mu.Lock()
	s.appendLocked(e)
	s.mu.Unlock()
}

// appendLocked records one entry with the shard's lock held.
func (s *traceShard) appendLocked(e TraceEntry) {
	s.appended++
	se := seqEntry{TraceEntry: e, seq: s.appended}
	if s.count < s.limit {
		if s.count == len(s.ring) {
			// Grow geometrically up to the cap rather than
			// allocating the full ring up front.
			s.ring = append(s.ring, se)
			s.count++
			return
		}
		s.ring[(s.start+s.count)%len(s.ring)] = se
		s.count++
		return
	}
	// Full: overwrite the oldest.
	s.ring[s.start] = se
	s.start = (s.start + 1) % len(s.ring)
}

// Len returns the number of entries Entries would return: the retained
// entries across all shards, capped at the trace limit.
func (t *Trace) Len() int {
	n := 0
	for _, s := range t.snapshot() {
		s.mu.Lock()
		n += s.count
		s.mu.Unlock()
	}
	if limit := t.Limit(); n > limit {
		n = limit
	}
	return n
}

// Dropped returns how many recorded entries Entries no longer returns,
// whether evicted from a full shard or trimmed by the trace-wide cap.
func (t *Trace) Dropped() uint64 {
	var appended uint64
	for _, s := range t.snapshot() {
		s.mu.Lock()
		appended += s.appended
		s.mu.Unlock()
	}
	return appended - uint64(t.Len())
}

// Entries returns the retained entries in the deterministic merge order:
// ascending (per-bank sequence, bank). Within a bank that is recording
// order; across banks the interleave depends only on the per-bank
// operation sequences, so serial and concurrent runs of the same per-bank
// workloads return identical slices. At most Limit entries are returned
// (the oldest beyond the cap are trimmed).
func (t *Trace) Entries() []TraceEntry {
	type bankEntry struct {
		seqEntry
		bank int
	}
	var all []bankEntry
	for b, s := range t.snapshot() {
		s.mu.Lock()
		for i := 0; i < s.count; i++ {
			all = append(all, bankEntry{s.ring[(s.start+i)%len(s.ring)], b})
		}
		s.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].seq != all[j].seq {
			return all[i].seq < all[j].seq
		}
		return all[i].bank < all[j].bank
	})
	if limit := t.Limit(); len(all) > limit {
		all = all[len(all)-limit:]
	}
	out := make([]TraceEntry, len(all))
	for i := range all {
		out[i] = all[i].TraceEntry
	}
	return out
}

// Reset discards all entries and the dropped counter, keeping the limit.
func (t *Trace) Reset() {
	for _, s := range t.snapshot() {
		s.mu.Lock()
		s.start, s.count, s.appended = 0, 0, 0
		s.mu.Unlock()
	}
}

// ErrReplayMismatch is returned when a replayed trace cannot be applied.
var ErrReplayMismatch = errors.New("flash: trace replay failed")

// Replay applies the trace to a fresh device of the given spec and returns
// it. Replaying onto a device with different geometry fails. A trace that
// dropped entries replays only the retained suffix, which generally cannot
// reproduce the original state — check Dropped first.
func (t *Trace) Replay(spec Spec) (*Device, error) {
	d, err := NewDevice(spec)
	if err != nil {
		return nil, err
	}
	for i, e := range t.Entries() {
		switch e.Op {
		case TraceProgram:
			err = d.ProgramByte(e.Addr, e.Value)
		case TraceErase:
			err = d.ErasePage(e.Addr)
		default:
			err = fmt.Errorf("unknown op %d", e.Op)
		}
		if err != nil && !errors.Is(err, ErrWornOut) {
			return nil, fmt.Errorf("%w: entry %d (%v %#x): %v", ErrReplayMismatch, i, e.Op, e.Addr, err)
		}
	}
	return d, nil
}

// EraseHeat returns the per-page erase counts recorded in the trace — the
// wear heat map a lifetime analysis starts from.
func (t *Trace) EraseHeat(numPages int) []int {
	heat := make([]int, numPages)
	for _, e := range t.Entries() {
		if e.Op == TraceErase && e.Addr >= 0 && e.Addr < numPages {
			heat[e.Addr]++
		}
	}
	return heat
}

// ProgramBytes returns the number of programmed bytes in the trace.
func (t *Trace) ProgramBytes() int {
	n := 0
	for _, e := range t.Entries() {
		if e.Op == TraceProgram {
			n++
		}
	}
	return n
}

// SetTracer attaches (or detaches, with nil) an operation trace to the
// device. Tracing records programs and erases only, sharded per bank.
// SetTracer must not be called concurrently with device operations.
func (d *Device) SetTracer(t *Trace) {
	if d.tracer != nil {
		d.Detach(d.tracer)
	}
	d.tracer = t
	if t != nil {
		d.Attach(t)
	}
}
