package flash

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Errors returned by the device.
var (
	// ErrNeedsErase is returned by program operations that would require
	// a 0 → 1 transition, which only an erase can provide.
	ErrNeedsErase = errors.New("flash: program requires 0→1 transition; page must be erased first")
	// ErrWornOut is returned once a page has exceeded its endurance and
	// can no longer be erased reliably.
	ErrWornOut = errors.New("flash: page exceeded program/erase endurance")
	// ErrBounds is returned for out-of-range addresses or page numbers.
	ErrBounds = errors.New("flash: address out of range")
	// ErrPageSize is returned when a page operation is given a buffer
	// whose length is not exactly one page.
	ErrPageSize = errors.New("flash: buffer length must equal the page size")
	// ErrTransient is returned by a program or erase whose verify failed
	// transiently: the pulse's full cost was drawn and the array holds a
	// partial result, but state stays recoverable — re-issuing the same
	// operation can succeed. Controllers retry these before escalating
	// to retirement.
	ErrTransient = errors.New("flash: transient verify failure; retry may succeed")
)

// Stats counts flash operations and accumulates their energy and busy time.
type Stats struct {
	Reads           uint64 // bytes read
	Programs        uint64 // bytes programmed
	ProgramsSkipped uint64 // byte programs elided because the target value was already stored
	Erases          uint64 // pages erased
	Scrubs          uint64 // pages scrubbed by the management layer
	Retirements     uint64 // pages retired onto spares
	ProgramFails    uint64 // byte programs that failed verify transiently
	EraseFails      uint64 // page erases that failed verify transiently
	Waits           uint64 // retry backoff intervals charged to the busy ledger
	Senses          uint64 // multi-page bitwise senses (charged once per sense)
	PagesSensed     uint64 // wordlines covered by those senses

	Energy energy.Energy
	Busy   time.Duration
}

// Add returns the element-wise sum of two stats.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:           s.Reads + o.Reads,
		Programs:        s.Programs + o.Programs,
		ProgramsSkipped: s.ProgramsSkipped + o.ProgramsSkipped,
		Erases:          s.Erases + o.Erases,
		Scrubs:          s.Scrubs + o.Scrubs,
		Retirements:     s.Retirements + o.Retirements,
		ProgramFails:    s.ProgramFails + o.ProgramFails,
		EraseFails:      s.EraseFails + o.EraseFails,
		Waits:           s.Waits + o.Waits,
		Senses:          s.Senses + o.Senses,
		PagesSensed:     s.PagesSensed + o.PagesSensed,
		Energy:          s.Energy + o.Energy,
		Busy:            s.Busy + o.Busy,
	}
}

// Sub returns the element-wise difference s - o.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:           s.Reads - o.Reads,
		Programs:        s.Programs - o.Programs,
		ProgramsSkipped: s.ProgramsSkipped - o.ProgramsSkipped,
		Erases:          s.Erases - o.Erases,
		Scrubs:          s.Scrubs - o.Scrubs,
		Retirements:     s.Retirements - o.Retirements,
		ProgramFails:    s.ProgramFails - o.ProgramFails,
		EraseFails:      s.EraseFails - o.EraseFails,
		Waits:           s.Waits - o.Waits,
		Senses:          s.Senses - o.Senses,
		PagesSensed:     s.PagesSensed - o.PagesSensed,
		Energy:          s.Energy - o.Energy,
		Busy:            s.Busy - o.Busy,
	}
}

// bank is one independently lockable shard of the device: real NOR/NAND
// parts expose internal bank/plane parallelism, and the simulator mirrors
// that structure so operations on different banks proceed concurrently.
// Pages are interleaved across banks round-robin (page p lives in bank
// p % Banks), and everything a page operation touches — the page's array
// bytes, wear counter, stats shard and fault RNG — is owned by exactly one
// bank and guarded by its lock.
type bank struct {
	mu    sync.Mutex
	stats statsShard
	// seq numbers the bank's event stream: every emitted event gets the
	// next value, so per-bank streams are gapless and totally ordered.
	seq uint64
	// obs is this bank's slice of the sharded op-event bus: the delivery
	// handles installed by Attach (observer.go). Events of this bank fan
	// out to exactly this list, under the bank's lock, so instrumentation
	// never serializes concurrent banks on a shared subscription path.
	obs []Observer
	// prevScratch holds the pre-program page image while a batched
	// page-program event is delivered (OpEvent.Prev aliases it).
	prevScratch []byte
	// rng drives the stuck-bit failure model for worn-out pages in this
	// bank. Per-bank so concurrent banks never share RNG state.
	rng *xrand.RNG
	// faults is the bank-scoped fault arm state (faults.go): its countdown
	// only observes this bank's operations, so injected faults fire
	// deterministically even under concurrent cross-bank traffic.
	faults faultScope
}

// Device is a simulated NOR flash chip: the memory array, wear counters,
// the bank shards and the operation event bus.
//
// Device is safe for concurrent use. Pages are partitioned across
// Spec.Banks banks (interleaved round-robin); operations on pages in
// different banks run in parallel, operations within one bank serialize on
// the bank's lock. Attach/Detach, SetTracer and SetProgramAll configure the
// device and must not race in-flight operations.
type Device struct {
	spec    Spec
	array   []byte
	wear    []uint32 // per-page erase count (guarded by the page's bank lock)
	dead    []bool   // per-page worn-out flag (guarded by the page's bank lock)
	retired []bool   // per-page retirement flag (guarded by the page's bank lock)
	drift   [][]byte // per-page fault-flip masks, nil until first flip (health.go)
	rise    [][]byte // per-page marginal-cell masks, nil until first leak (retention.go)
	banks   []bank

	// programAll, when set, charges a program pulse even for bytes whose
	// stored value already equals the target. Real buffered parts skip
	// those pulses; the flag exists for the skip-unchanged ablation.
	programAll bool

	// perByteEvents forces page programs back onto the per-byte event
	// path (one OpEvent per byte) instead of the batched page-program
	// events. Fault-armed devices take the per-byte path automatically —
	// fault countdowns observe individual pulses — so the flag exists for
	// observers that depend on byte granularity and as the measured
	// baseline of the host-scaling experiment.
	perByteEvents bool

	// atts records Attach calls so Detach can unhook the per-bank
	// delivery handles (observer.go).
	atts []attachment

	// tracer is the trace installed by SetTracer, kept so a later
	// SetTracer can detach it.
	tracer *Trace

	// Fault injection (faults.go): ftMu guards the shared scope and the
	// per-bank scopes against concurrent arming and firing. faultsLive
	// mirrors "any scope armed" so fault-free operations skip ftMu
	// entirely — taking a device-wide mutex per byte was the scaling
	// bottleneck of the per-byte event path.
	ftMu       sync.Mutex
	faults     faultScope
	faultsLive atomic.Bool
}

// SetProgramAll toggles charging program pulses for unchanged bytes.
func (d *Device) SetProgramAll(v bool) { d.programAll = v }

// SetPerByteEvents toggles per-byte event granularity for page programs.
// When off (the default), a fault-free page program emits one batched
// OpProgram event (with Data/Prev carrying the page images) and one batched
// OpProgramSkip event instead of one event per byte; totals are identical,
// only granularity changes. Must not be toggled concurrently with
// operations.
func (d *Device) SetPerByteEvents(v bool) { d.perByteEvents = v }

// NewDevice builds a device from spec with every page erased (all ones),
// which is how flash leaves the factory. A spec with Banks == 0 gets
// DefaultBanks banks; the bank count is clamped to the page count.
func NewDevice(spec Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Banks == 0 {
		spec.Banks = DefaultBanks
	}
	if spec.Banks > spec.NumPages {
		spec.Banks = spec.NumPages
	}
	if spec.SenseLatency == 0 {
		spec.SenseLatency = 2 * spec.ReadLatency
	}
	if spec.SenseEnergy == 0 {
		spec.SenseEnergy = 2 * spec.ReadEnergy
	}
	if spec.MaxSensePages == 0 {
		spec.MaxSensePages = DefaultMaxSensePages
	}
	d := &Device{
		spec:    spec,
		array:   make([]byte, spec.Size()),
		wear:    make([]uint32, spec.NumPages),
		dead:    make([]bool, spec.NumPages),
		retired: make([]bool, spec.NumPages),
		drift:   make([][]byte, spec.NumPages),
		rise:    make([][]byte, spec.NumPages),
		banks:   make([]bank, spec.Banks),
	}
	for i := range d.array {
		d.array[i] = 0xFF
	}
	for b := range d.banks {
		d.banks[b].rng = xrand.New(0xF1A5 + uint64(b))
	}
	return d, nil
}

// MustNewDevice is NewDevice for specs known to be valid.
func MustNewDevice(spec Spec) *Device {
	d, err := NewDevice(spec)
	if err != nil {
		panic(err)
	}
	return d
}

// Spec returns the device's specification (with the bank count normalised).
func (d *Device) Spec() Spec { return d.spec }

// Banks returns the number of banks the device operates.
func (d *Device) Banks() int { return len(d.banks) }

// BankOf returns the bank that owns page p. Pages are interleaved
// round-robin so consecutive pages land in different banks.
func (d *Device) BankOf(p int) int { return p % len(d.banks) }

// bankOfAddr returns the bank owning the page containing addr.
func (d *Device) bankOfAddr(addr int) int { return d.BankOf(d.PageOf(addr)) }

// Stats returns a snapshot of the operation ledger: the per-bank shards
// merged in bank order. The merge is deterministic, so a concurrent run
// that issues the same per-bank operation sequences as a serial run
// reports byte-identical totals.
func (d *Device) Stats() Stats {
	var s Stats
	for b := range d.banks {
		bk := &d.banks[b]
		bk.mu.Lock()
		s = s.Add(bk.stats.snapshot())
		bk.mu.Unlock()
	}
	return s
}

// BankStats returns the stats shard of bank b.
func (d *Device) BankStats(b int) Stats {
	bk := &d.banks[b]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return bk.stats.snapshot()
}

// ResetStats clears the operation ledger of every bank. Wear counters and
// worn-out flags are preserved: they are physical state, not accounting.
// Attached observers are unaffected (a Trace keeps its entries).
func (d *Device) ResetStats() {
	for b := range d.banks {
		bk := &d.banks[b]
		bk.mu.Lock()
		bk.stats = statsShard{}
		bk.mu.Unlock()
	}
}

// PageOf returns the page number containing addr.
func (d *Device) PageOf(addr int) int { return addr / d.spec.PageSize }

// PageBase returns the first address of page p.
func (d *Device) PageBase(p int) int { return p * d.spec.PageSize }

func (d *Device) checkAddr(addr, n int) error {
	if addr < 0 || n < 0 || addr+n > len(d.array) {
		return fmt.Errorf("%w: addr %#x len %d (size %#x)", ErrBounds, addr, n, len(d.array))
	}
	return nil
}

func (d *Device) checkPage(p int) error {
	if p < 0 || p >= d.spec.NumPages {
		return fmt.Errorf("%w: page %d of %d", ErrBounds, p, d.spec.NumPages)
	}
	return nil
}

// emit delivers one operation event: it is stamped with the bank's next
// sequence number, folded into the bank's stats shard, and fanned out to
// the bank's subscriber shard. Must be called with the bank's lock held,
// which totally orders events within a bank; events for different banks are
// delivered concurrently to independent shards, so nothing on this path is
// shared between banks.
func (d *Device) emit(ev OpEvent) {
	bk := &d.banks[ev.Bank]
	bk.seq++
	ev.Seq = bk.seq
	bk.stats.apply(ev)
	for _, o := range bk.obs {
		o.OnOp(ev)
	}
}

// ReadByteAt reads the byte at addr, charging read latency and energy.
func (d *Device) ReadByteAt(addr int) (byte, error) {
	if err := d.checkAddr(addr, 1); err != nil {
		return 0, err
	}
	b := d.bankOfAddr(addr)
	bk := &d.banks[b]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	d.emit(OpEvent{
		Kind: OpRead, Bank: b, Addr: addr, Bytes: 1,
		Energy: d.spec.ReadEnergy, Busy: d.spec.ReadLatency,
	})
	page := d.PageOf(addr)
	v := d.array[addr]
	if m := d.rise[page]; m != nil {
		buf := [1]byte{v}
		d.flickerInto(b, page, addr, buf[:])
		v = buf[0]
	}
	if f, fired := d.faultHit(b, OpRead); fired {
		switch f.Kind {
		case FaultReadDisturb:
			d.disturbPage(b, page, f.bits())
		case FaultRetention:
			d.markRetention(b, page)
		}
	}
	return v, nil
}

// Read fills dst from consecutive addresses starting at addr. A read that
// spans pages locks each page's bank in turn, so concurrent writers to
// other pages are never blocked for the whole transfer.
func (d *Device) Read(addr int, dst []byte) error {
	if err := d.checkAddr(addr, len(dst)); err != nil {
		return err
	}
	for off := 0; off < len(dst); {
		page := d.PageOf(addr + off)
		n := d.PageBase(page) + d.spec.PageSize - (addr + off)
		if n > len(dst)-off {
			n = len(dst) - off
		}
		b := d.BankOf(page)
		bk := &d.banks[b]
		bk.mu.Lock()
		copy(dst[off:off+n], d.array[addr+off:addr+off+n])
		d.flickerInto(b, page, addr+off, dst[off:off+n])
		d.emit(OpEvent{
			Kind: OpRead, Bank: b, Addr: addr + off, Bytes: n,
			Energy: d.spec.ReadEnergy * energy.Energy(n),
			Busy:   d.spec.ReadLatency * time.Duration(n),
		})
		if f, fired := d.faultHit(b, OpRead); fired {
			switch f.Kind {
			case FaultReadDisturb:
				d.disturbPage(b, page, f.bits())
			case FaultRetention:
				d.markRetention(b, page)
			}
		}
		bk.mu.Unlock()
		off += n
	}
	return nil
}

// ReadPage fills dst (exactly one page long) from page p, charging a page's
// worth of reads. This is step 1 of the read-modify-write operation (§II-A),
// performed into a caller-owned buffer. Unlike the host-facing Read paths,
// ReadPage is a controller-issued margin-aware sense: marginal retention
// cells (retention.go) are resolved to their stored value rather than
// flickering, so the commit path never bakes read noise back into a page.
func (d *Device) ReadPage(p int, dst []byte) error {
	if err := d.checkPage(p); err != nil {
		return err
	}
	if len(dst) != d.spec.PageSize {
		return fmt.Errorf("%w: got %d, page size %d", ErrPageSize, len(dst), d.spec.PageSize)
	}
	b := d.BankOf(p)
	bk := &d.banks[b]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	base := d.PageBase(p)
	copy(dst, d.array[base:base+d.spec.PageSize])
	d.emit(OpEvent{
		Kind: OpRead, Bank: b, Addr: base, Bytes: d.spec.PageSize,
		Energy: d.spec.ReadEnergy * energy.Energy(d.spec.PageSize),
		Busy:   d.spec.ReadLatency * time.Duration(d.spec.PageSize),
	})
	if f, fired := d.faultHit(b, OpRead); fired {
		switch f.Kind {
		case FaultReadDisturb:
			d.disturbPage(b, p, f.bits())
		case FaultRetention:
			d.markRetention(b, p)
		}
	}
	return nil
}

// ProgramByte programs one byte. Programming can only clear bits: if v
// requires any 0 → 1 transition relative to the stored byte, the operation
// fails with ErrNeedsErase and nothing is charged (the controller checks
// before issuing). Programming a byte to its current value is skipped and
// charged nothing, matching buffered page programming where unchanged bytes
// need no pulse.
func (d *Device) ProgramByte(addr int, v byte) error {
	if err := d.checkAddr(addr, 1); err != nil {
		return err
	}
	b := d.bankOfAddr(addr)
	bk := &d.banks[b]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return d.programByteLocked(b, addr, v)
}

// programByteLocked is ProgramByte with bank b's lock held.
func (d *Device) programByteLocked(b, addr int, v byte) error {
	page := d.PageOf(addr)
	if d.retired[page] {
		return fmt.Errorf("page %d: %w", page, ErrPageRetired)
	}
	cur := d.array[addr]
	if !d.spec.Cell.Reachable(cur, v) {
		return fmt.Errorf("%w: addr %#x stored %08b want %08b (%v)", ErrNeedsErase, addr, cur, v, d.spec.Cell)
	}
	if v == cur && !d.programAll {
		d.absorbDrift(page, addr-d.PageBase(page), v)
		d.emit(OpEvent{Kind: OpProgramSkip, Bank: b, Addr: addr, Bytes: 1, Value: v})
		return nil
	}
	if f, fired := d.faultHit(b, OpProgram); fired {
		switch f.Kind {
		case FaultPowerLoss:
			// The pulse was cut short: some target bits cleared, the
			// rest did not. Energy/latency for the partial pulse is
			// still drawn from the supply.
			d.tearProgram(b, addr, v)
			d.emit(OpEvent{
				Kind: OpProgram, Bank: b, Addr: addr, Bytes: 1, Value: d.array[addr],
				Energy: d.spec.ProgramEnergy, Busy: d.spec.ProgramLatency,
			})
			return fmt.Errorf("program %#x: %w", addr, ErrPowerLoss)
		case FaultTransientProgram:
			// Verify failure: the pulse ran at full cost but left some
			// target bits short of their level. Every bit that did move
			// moved toward v, so the byte stays reachable and a re-issue
			// can finish the job.
			d.tearProgram(b, addr, v)
			d.emit(OpEvent{
				Kind: OpProgramFail, Bank: b, Addr: addr, Bytes: 1, Value: d.array[addr],
				Energy: d.spec.ProgramEnergy, Busy: d.spec.ProgramLatency,
			})
			return fmt.Errorf("program %#x: %w", addr, ErrTransient)
		}
	}
	d.array[addr] = v
	d.absorbDrift(page, addr-d.PageBase(page), v)
	d.absorbRise(page, addr-d.PageBase(page))
	d.emit(OpEvent{
		Kind: OpProgram, Bank: b, Addr: addr, Bytes: 1, Value: v,
		Energy: d.spec.ProgramEnergy, Busy: d.spec.ProgramLatency,
	})
	return nil
}

// ErasePage erases page p: every bit is set to 1 and the page's wear count
// increments. Once wear exceeds the endurance rating the page is worn out:
// the erase still happens but some cells stick at 0 (trapped charge, §II-B)
// and ErrWornOut is returned so callers can observe the failure.
func (d *Device) ErasePage(p int) error {
	if err := d.checkPage(p); err != nil {
		return err
	}
	b := d.BankOf(p)
	bk := &d.banks[b]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return d.erasePageLocked(b, p)
}

// erasePageLocked is ErasePage with bank b's lock held.
func (d *Device) erasePageLocked(b, p int) error {
	if d.retired[p] {
		return fmt.Errorf("page %d: %w", p, ErrPageRetired)
	}
	base := d.PageBase(p)
	d.clearDrift(p)
	d.clearRise(p)
	f, fired := d.faultHit(b, OpErase)
	if fired && f.Kind == FaultPowerLoss {
		d.tearErase(b, p)
		d.wear[p]++ // the tunnel-oxide stress happened regardless
		d.emit(OpEvent{
			Kind: OpErase, Bank: b, Addr: p, Bytes: d.spec.PageSize,
			Energy: d.spec.EraseEnergy, Busy: d.spec.EraseLatency,
		})
		return fmt.Errorf("erase page %d: %w", p, ErrPowerLoss)
	}
	if fired && f.Kind == FaultTransientErase {
		// Verify failure: the pulse stressed the oxide at full cost but
		// left a mixture of erased and stale bytes — re-issuing the erase
		// can reach the fully erased state.
		d.tearErase(b, p)
		d.wear[p]++
		d.emit(OpEvent{
			Kind: OpEraseFail, Bank: b, Addr: p, Bytes: d.spec.PageSize,
			Energy: d.spec.EraseEnergy, Busy: d.spec.EraseLatency,
		})
		return fmt.Errorf("erase page %d: %w", p, ErrTransient)
	}
	for i := 0; i < d.spec.PageSize; i++ {
		d.array[base+i] = 0xFF
	}
	d.wear[p]++
	d.emit(OpEvent{
		Kind: OpErase, Bank: b, Addr: p, Bytes: d.spec.PageSize,
		Energy: d.spec.EraseEnergy, Busy: d.spec.EraseLatency,
	})
	if fired && f.Kind == FaultStuckBits {
		// Marginal cells: the erase completes and reports success, but
		// some cells fail to reach the erased state — silent until a
		// read-back verify notices, exactly like real early wear-out.
		d.stickBits(b, p, f.bits())
	}
	if d.wear[p] > d.spec.EnduranceCycles {
		d.dead[p] = true
		// Stuck-at-zero failure model: roughly one cell per byte per
		// thousand cycles past the limit fails to erase.
		over := d.wear[p] - d.spec.EnduranceCycles
		d.stickBits(b, p, 1+int(over/1000))
		return fmt.Errorf("page %d: %w (wear %d > %d)", p, ErrWornOut, d.wear[p], d.spec.EnduranceCycles)
	}
	return nil
}

// Wear returns the erase count of page p.
func (d *Device) Wear(p int) uint32 {
	if p < 0 || p >= len(d.wear) {
		return 0
	}
	bk := &d.banks[d.BankOf(p)]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return d.wear[p]
}

// MaxWear returns the highest erase count across all pages; flash lifetime
// ends when the hottest page wears out.
func (d *Device) MaxWear() uint32 {
	var m uint32
	for _, w := range d.WearSnapshot() {
		if w > m {
			m = w
		}
	}
	return m
}

// WornOut reports whether page p has exceeded its endurance.
func (d *Device) WornOut(p int) bool {
	if p < 0 || p >= len(d.dead) {
		return false
	}
	bk := &d.banks[d.BankOf(p)]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return d.dead[p]
}

// AtRating reports whether page p has consumed its full endurance rating:
// the page still reads and programs normally, but its next erase will leave
// cells stuck at 0. Management layers use this to fence a page *before* the
// erase that would corrupt it, where WornOut only reports the damage after.
func (d *Device) AtRating(p int) bool {
	if p < 0 || p >= len(d.wear) {
		return false
	}
	bk := &d.banks[d.BankOf(p)]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return d.wear[p] >= d.spec.EnduranceCycles
}

// ProgramPage programs page p from buf (exactly one page long) without
// erasing. Every byte must be reachable through 1 → 0 transitions only;
// otherwise the operation fails with ErrNeedsErase before touching the
// array. Bytes that already hold the buffered value are skipped. The whole
// page commits under one bank lock acquisition, so a concurrent operation
// on the same bank never observes a half-programmed page.
func (d *Device) ProgramPage(p int, buf []byte) error {
	if err := d.checkPage(p); err != nil {
		return err
	}
	if len(buf) != d.spec.PageSize {
		return fmt.Errorf("%w: got %d, page size %d", ErrPageSize, len(buf), d.spec.PageSize)
	}
	b := d.BankOf(p)
	bk := &d.banks[b]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return d.programPageLocked(b, p, buf)
}

// programPageLocked is ProgramPage with bank b's lock held.
func (d *Device) programPageLocked(b, p int, buf []byte) error {
	if d.retired[p] {
		return fmt.Errorf("page %d: %w", p, ErrPageRetired)
	}
	base := d.PageBase(p)
	for i, v := range buf {
		if !d.spec.Cell.Reachable(d.array[base+i], v) {
			return fmt.Errorf("%w: page %d byte %d stored %08b want %08b (%v)",
				ErrNeedsErase, p, i, d.array[base+i], v, d.spec.Cell)
		}
	}
	if d.programAll || d.perByteEvents || d.faultsLive.Load() {
		// Per-byte path: armed fault countdowns observe individual
		// program pulses, and the ablation/compat modes want per-byte
		// granularity. Costs and counters match the bulk path exactly.
		for i, v := range buf {
			if err := d.programByteLocked(b, base+i, v); err != nil {
				return err
			}
		}
		return nil
	}
	return d.programPageBulkLocked(b, p, buf)
}

// programPageBulkLocked commits a whole reachable page in one pass and
// emits at most two batched events (one OpProgram for the changed bytes,
// one OpProgramSkip for the unchanged ones) instead of one event per byte.
// Energy, busy time and the byte counters are identical to the per-byte
// path; only event granularity differs. Called with bank b's lock held,
// after the reachability pre-pass, with no faults armed.
func (d *Device) programPageBulkLocked(b, p int, buf []byte) error {
	base := d.PageBase(p)
	bk := &d.banks[b]
	page := d.array[base : base+d.spec.PageSize]
	var prev []byte
	if len(bk.obs) > 0 {
		if bk.prevScratch == nil {
			bk.prevScratch = make([]byte, d.spec.PageSize)
		}
		prev = bk.prevScratch
		copy(prev, page)
	}
	programmed := 0
	m := d.drift[p]
	rm := d.rise[p]
	for i, v := range buf {
		if page[i] != v {
			page[i] = v
			programmed++
			if rm != nil {
				rm[i] = 0 // a real pulse recharges the byte's marginal cells
			}
		}
		if m != nil {
			m[i] &= v
		}
	}
	if programmed > 0 {
		d.emit(OpEvent{
			Kind: OpProgram, Bank: b, Addr: base, Bytes: programmed,
			Data: page, Prev: prev,
			Energy: d.spec.ProgramEnergy * energy.Energy(programmed),
			Busy:   d.spec.ProgramLatency * time.Duration(programmed),
		})
	}
	if skipped := len(buf) - programmed; skipped > 0 {
		d.emit(OpEvent{Kind: OpProgramSkip, Bank: b, Addr: base, Bytes: skipped})
	}
	return nil
}

// EraseProgramPage erases page p and programs it from buf — the
// "read-modify-write" commit path (§II-A steps 2 and 4), atomic with
// respect to other operations on the same bank. A worn-out erase error is
// returned after the program completes so the data is still best-effort
// written.
func (d *Device) EraseProgramPage(p int, buf []byte) error {
	if err := d.checkPage(p); err != nil {
		return err
	}
	if len(buf) != d.spec.PageSize {
		return fmt.Errorf("%w: got %d, page size %d", ErrPageSize, len(buf), d.spec.PageSize)
	}
	b := d.BankOf(p)
	bk := &d.banks[b]
	bk.mu.Lock()
	defer bk.mu.Unlock()
	eraseErr := d.erasePageLocked(b, p)
	if eraseErr != nil && !errors.Is(eraseErr, ErrWornOut) {
		return eraseErr
	}
	if err := d.programPageLocked(b, p, buf); err != nil {
		// Only possible on a worn-out page with stuck bits, or under
		// a second injected power loss.
		return errors.Join(eraseErr, err)
	}
	return eraseErr
}

// Peek returns the stored byte without charging a read; for tests and
// instrumentation only. Not synchronised: do not race it with writers.
func (d *Device) Peek(addr int) byte { return d.array[addr] }

// PeekPage copies page p into dst without charging reads; for tests and
// instrumentation only. Not synchronised: do not race it with writers.
func (d *Device) PeekPage(p int, dst []byte) {
	copy(dst, d.array[d.PageBase(p):d.PageBase(p)+d.spec.PageSize])
}
