package flash

import (
	"errors"
	"fmt"
	"time"

	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Errors returned by the device.
var (
	// ErrNeedsErase is returned by program operations that would require
	// a 0 → 1 transition, which only an erase can provide.
	ErrNeedsErase = errors.New("flash: program requires 0→1 transition; page must be erased first")
	// ErrWornOut is returned once a page has exceeded its endurance and
	// can no longer be erased reliably.
	ErrWornOut = errors.New("flash: page exceeded program/erase endurance")
	// ErrBounds is returned for out-of-range addresses or page numbers.
	ErrBounds = errors.New("flash: address out of range")
)

// NumBuffers is the number of SRAM page write buffers. Commercial parts
// provide two so that page updates can be interleaved (§II-A); FlipBit
// repurposes the second buffer to hold the approximate page copy (§III-B).
const NumBuffers = 2

// Stats counts flash operations and accumulates their energy and busy time.
type Stats struct {
	Reads           uint64 // bytes read
	Programs        uint64 // bytes programmed
	ProgramsSkipped uint64 // byte programs elided because the target value was already stored
	Erases          uint64 // pages erased

	Energy energy.Energy
	Busy   time.Duration
}

// Add returns the element-wise sum of two stats.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:           s.Reads + o.Reads,
		Programs:        s.Programs + o.Programs,
		ProgramsSkipped: s.ProgramsSkipped + o.ProgramsSkipped,
		Erases:          s.Erases + o.Erases,
		Energy:          s.Energy + o.Energy,
		Busy:            s.Busy + o.Busy,
	}
}

// Sub returns the element-wise difference s - o.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:           s.Reads - o.Reads,
		Programs:        s.Programs - o.Programs,
		ProgramsSkipped: s.ProgramsSkipped - o.ProgramsSkipped,
		Erases:          s.Erases - o.Erases,
		Energy:          s.Energy - o.Energy,
		Busy:            s.Busy - o.Busy,
	}
}

// Device is a simulated NOR flash chip: the memory array, the page write
// buffers, wear counters and the operation ledger.
//
// Device is not safe for concurrent use; embedded flash has a single port.
type Device struct {
	spec  Spec
	array []byte
	wear  []uint32 // per-page erase count
	dead  []bool   // per-page worn-out flag
	bufs  [NumBuffers][]byte
	stats Stats

	// rng drives the stuck-bit failure model for worn-out pages.
	rng *xrand.RNG

	// programAll, when set, charges a program pulse even for bytes whose
	// stored value already equals the target. Real buffered parts skip
	// those pulses; the flag exists for the skip-unchanged ablation.
	programAll bool

	// trace, when attached, records programs and erases (trace.go).
	trace *Trace

	// One-shot power-loss fault injection (powerloss.go).
	plArmed bool
	plSkip  int
}

// SetProgramAll toggles charging program pulses for unchanged bytes.
func (d *Device) SetProgramAll(v bool) { d.programAll = v }

// NewDevice builds a device from spec with every page erased (all ones),
// which is how flash leaves the factory.
func NewDevice(spec Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		spec:  spec,
		array: make([]byte, spec.Size()),
		wear:  make([]uint32, spec.NumPages),
		dead:  make([]bool, spec.NumPages),
		rng:   xrand.New(0xF1A5),
	}
	for i := range d.array {
		d.array[i] = 0xFF
	}
	for b := range d.bufs {
		d.bufs[b] = make([]byte, spec.PageSize)
	}
	return d, nil
}

// MustNewDevice is NewDevice for specs known to be valid.
func MustNewDevice(spec Spec) *Device {
	d, err := NewDevice(spec)
	if err != nil {
		panic(err)
	}
	return d
}

// Spec returns the device's specification.
func (d *Device) Spec() Spec { return d.spec }

// Stats returns a snapshot of the operation ledger.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears the operation ledger (wear is preserved: it is physical).
func (d *Device) ResetStats() { d.stats = Stats{} }

// PageOf returns the page number containing addr.
func (d *Device) PageOf(addr int) int { return addr / d.spec.PageSize }

// PageBase returns the first address of page p.
func (d *Device) PageBase(p int) int { return p * d.spec.PageSize }

func (d *Device) checkAddr(addr, n int) error {
	if addr < 0 || n < 0 || addr+n > len(d.array) {
		return fmt.Errorf("%w: addr %#x len %d (size %#x)", ErrBounds, addr, n, len(d.array))
	}
	return nil
}

func (d *Device) checkPage(p int) error {
	if p < 0 || p >= d.spec.NumPages {
		return fmt.Errorf("%w: page %d of %d", ErrBounds, p, d.spec.NumPages)
	}
	return nil
}

// ReadByteAt reads the byte at addr, charging read latency and energy.
func (d *Device) ReadByteAt(addr int) (byte, error) {
	if err := d.checkAddr(addr, 1); err != nil {
		return 0, err
	}
	d.stats.Reads++
	d.stats.Energy += d.spec.ReadEnergy
	d.stats.Busy += d.spec.ReadLatency
	return d.array[addr], nil
}

// Read fills dst from consecutive addresses starting at addr.
func (d *Device) Read(addr int, dst []byte) error {
	if err := d.checkAddr(addr, len(dst)); err != nil {
		return err
	}
	copy(dst, d.array[addr:addr+len(dst)])
	d.stats.Reads += uint64(len(dst))
	d.stats.Energy += d.spec.ReadEnergy * energy.Energy(len(dst))
	d.stats.Busy += d.spec.ReadLatency * time.Duration(len(dst))
	return nil
}

// ProgramByte programs one byte. Programming can only clear bits: if v
// requires any 0 → 1 transition relative to the stored byte, the operation
// fails with ErrNeedsErase and nothing is charged (the controller checks
// before issuing). Programming a byte to its current value is skipped by the
// controller logic and charged nothing, matching buffered page programming
// where unchanged bytes need no pulse.
func (d *Device) ProgramByte(addr int, v byte) error {
	if err := d.checkAddr(addr, 1); err != nil {
		return err
	}
	cur := d.array[addr]
	if !d.spec.Cell.Reachable(cur, v) {
		return fmt.Errorf("%w: addr %#x stored %08b want %08b (%v)", ErrNeedsErase, addr, cur, v, d.spec.Cell)
	}
	if v == cur && !d.programAll {
		d.stats.ProgramsSkipped++
		return nil
	}
	if d.powerLossPending() {
		// The pulse was cut short: some target bits cleared, the
		// rest did not. Energy/latency for the partial pulse is
		// still drawn from the supply.
		d.tearProgram(addr, v)
		d.stats.Programs++
		d.stats.Energy += d.spec.ProgramEnergy
		d.stats.Busy += d.spec.ProgramLatency
		return fmt.Errorf("program %#x: %w", addr, ErrPowerLoss)
	}
	d.array[addr] = v
	d.stats.Programs++
	d.stats.Energy += d.spec.ProgramEnergy
	d.stats.Busy += d.spec.ProgramLatency
	if d.trace != nil {
		d.trace.Entries = append(d.trace.Entries, TraceEntry{Op: TraceProgram, Addr: addr, Value: v})
	}
	return nil
}

// ErasePage erases page p: every bit is set to 1 and the page's wear count
// increments. Once wear exceeds the endurance rating the page is worn out:
// the erase still happens but some cells stick at 0 (trapped charge, §II-B)
// and ErrWornOut is returned so callers can observe the failure.
func (d *Device) ErasePage(p int) error {
	if err := d.checkPage(p); err != nil {
		return err
	}
	base := d.PageBase(p)
	if d.powerLossPending() {
		d.tearErase(p)
		d.wear[p]++ // the tunnel-oxide stress happened regardless
		d.stats.Erases++
		d.stats.Energy += d.spec.EraseEnergy
		d.stats.Busy += d.spec.EraseLatency
		return fmt.Errorf("erase page %d: %w", p, ErrPowerLoss)
	}
	for i := 0; i < d.spec.PageSize; i++ {
		d.array[base+i] = 0xFF
	}
	d.wear[p]++
	d.stats.Erases++
	d.stats.Energy += d.spec.EraseEnergy
	d.stats.Busy += d.spec.EraseLatency
	if d.trace != nil {
		d.trace.Entries = append(d.trace.Entries, TraceEntry{Op: TraceErase, Addr: p})
	}
	if d.wear[p] > d.spec.EnduranceCycles {
		d.dead[p] = true
		// Stuck-at-zero failure model: roughly one cell per byte per
		// thousand cycles past the limit fails to erase.
		over := d.wear[p] - d.spec.EnduranceCycles
		stuck := 1 + int(over/1000)
		for i := 0; i < stuck; i++ {
			off := d.rng.Intn(d.spec.PageSize)
			bit := d.rng.Intn(8)
			d.array[base+off] &^= 1 << uint(bit)
		}
		return fmt.Errorf("page %d: %w (wear %d > %d)", p, ErrWornOut, d.wear[p], d.spec.EnduranceCycles)
	}
	return nil
}

// Wear returns the erase count of page p.
func (d *Device) Wear(p int) uint32 {
	if p < 0 || p >= len(d.wear) {
		return 0
	}
	return d.wear[p]
}

// MaxWear returns the highest erase count across all pages; flash lifetime
// ends when the hottest page wears out.
func (d *Device) MaxWear() uint32 {
	var m uint32
	for _, w := range d.wear {
		if w > m {
			m = w
		}
	}
	return m
}

// WornOut reports whether page p has exceeded its endurance.
func (d *Device) WornOut(p int) bool {
	return p >= 0 && p < len(d.dead) && d.dead[p]
}

// Buffer returns write buffer b for direct manipulation by the controller.
// Buffer contents are SRAM: accessing them costs nothing in this model (the
// controller charges CPU energy separately for buffer fills).
func (d *Device) Buffer(b int) []byte {
	return d.bufs[b]
}

// LoadBuffer reads page p into buffer b, charging a page's worth of reads.
// This is step 1 of the read-modify-write operation (§II-A).
func (d *Device) LoadBuffer(b, p int) error {
	if err := d.checkPage(p); err != nil {
		return err
	}
	return d.Read(d.PageBase(p), d.bufs[b])
}

// ProgramFromBuffer programs page p from buffer b without erasing. Every
// byte must be reachable through 1 → 0 transitions only; otherwise the
// operation fails with ErrNeedsErase before touching the array. Bytes that
// already hold the buffered value are skipped.
func (d *Device) ProgramFromBuffer(p, b int) error {
	if err := d.checkPage(p); err != nil {
		return err
	}
	base := d.PageBase(p)
	buf := d.bufs[b]
	for i, v := range buf {
		if !d.spec.Cell.Reachable(d.array[base+i], v) {
			return fmt.Errorf("%w: page %d byte %d stored %08b want %08b (%v)",
				ErrNeedsErase, p, i, d.array[base+i], v, d.spec.Cell)
		}
	}
	for i, v := range buf {
		if err := d.ProgramByte(base+i, v); err != nil {
			return err
		}
	}
	return nil
}

// EraseProgramFromBuffer erases page p and programs it from buffer b — the
// "read-modify-write" commit path (§II-A steps 2 and 4). A worn-out erase
// error is returned after the program completes so the data is still
// best-effort written.
func (d *Device) EraseProgramFromBuffer(p, b int) error {
	eraseErr := d.ErasePage(p)
	if eraseErr != nil && !errors.Is(eraseErr, ErrWornOut) {
		return eraseErr
	}
	if err := d.ProgramFromBuffer(p, b); err != nil {
		// Only possible on a worn-out page with stuck bits.
		return errors.Join(eraseErr, err)
	}
	return eraseErr
}

// Peek returns the stored byte without charging a read; for tests and
// instrumentation only.
func (d *Device) Peek(addr int) byte { return d.array[addr] }

// PeekPage copies page p into dst without charging reads; for tests and
// instrumentation only.
func (d *Device) PeekPage(p int, dst []byte) {
	copy(dst, d.array[d.PageBase(p):d.PageBase(p)+d.spec.PageSize])
}
