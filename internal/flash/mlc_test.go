package flash

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCellModeReachableSLC(t *testing.T) {
	f := func(from, to byte) bool {
		return SLC.Reachable(from, to) == (to&^from == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellModeReachableMLC(t *testing.T) {
	cases := []struct {
		from, to byte
		want     bool
	}{
		{0xFF, 0x00, true},  // all cells 11 → 00
		{0xFF, 0xFF, true},  // no movement
		{0b01, 0b10, false}, // cell 0: 01 → 10 is upward
		{0b10, 0b01, true},  // cell 0: 10 → 01 is downward
		{0b11_00, 0b01_00, true},
		{0b00_00, 0b00_01, false},
		{0x55, 0x55, true},
		{0x00, 0xFF, false},
	}
	for _, c := range cases {
		if got := MLC.Reachable(c.from, c.to); got != c.want {
			t.Errorf("MLC.Reachable(%08b, %08b) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

// TestMLCReachableImpliesSLCSuperset: every SLC-reachable transition is
// also MLC-reachable (clearing bits only lowers cell levels), but not vice
// versa.
func TestMLCReachableImpliesSLCSuperset(t *testing.T) {
	f := func(from, to byte) bool {
		if SLC.Reachable(from, to) && !MLC.Reachable(from, to) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Strictness witness: 10 → 01 per cell.
	if !MLC.Reachable(0b10, 0b01) || SLC.Reachable(0b10, 0b01) {
		t.Error("MLC should allow 10→01 that SLC forbids")
	}
}

func TestMLCDeviceProgramSemantics(t *testing.T) {
	spec := smallSpec()
	spec.Cell = MLC
	d := MustNewDevice(spec)
	// 0xFF → 0xA5 (cells 10,01,10,01... wait per-byte): every cell of
	// 0xA5 (10 10 01 01 reading pairs) is <= 11.
	if err := d.ProgramByte(0, 0xA5); err != nil {
		t.Fatal(err)
	}
	// Raising any cell must fail: 0xA5 cell0 = 01 → 10 would rise.
	err := d.ProgramByte(0, 0xA6)
	if !errors.Is(err, ErrNeedsErase) {
		t.Fatalf("upward MLC move accepted: %v", err)
	}
	// Lowering cells is fine: 0xA5 → 0xA4 (cell0 01→00).
	if err := d.ProgramByte(0, 0xA4); err != nil {
		t.Fatal(err)
	}
	if d.Peek(0) != 0xA4 {
		t.Errorf("stored %02x", d.Peek(0))
	}
}

func TestCellModeString(t *testing.T) {
	if SLC.String() != "SLC" || MLC.String() != "MLC" {
		t.Error("CellMode strings wrong")
	}
}
