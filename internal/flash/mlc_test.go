package flash

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/flipbit-sim/flipbit/internal/energy"
)

func TestCellModeReachableSLC(t *testing.T) {
	f := func(from, to byte) bool {
		return SLC.Reachable(from, to) == (to&^from == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellModeReachableMLC(t *testing.T) {
	cases := []struct {
		from, to byte
		want     bool
	}{
		{0xFF, 0x00, true},  // all cells 11 → 00
		{0xFF, 0xFF, true},  // no movement
		{0b01, 0b10, false}, // cell 0: 01 → 10 is upward
		{0b10, 0b01, true},  // cell 0: 10 → 01 is downward
		{0b11_00, 0b01_00, true},
		{0b00_00, 0b00_01, false},
		{0x55, 0x55, true},
		{0x00, 0xFF, false},
	}
	for _, c := range cases {
		if got := MLC.Reachable(c.from, c.to); got != c.want {
			t.Errorf("MLC.Reachable(%08b, %08b) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

// TestMLCReachableImpliesSLCSuperset: every SLC-reachable transition is
// also MLC-reachable (clearing bits only lowers cell levels), but not vice
// versa.
func TestMLCReachableImpliesSLCSuperset(t *testing.T) {
	f := func(from, to byte) bool {
		if SLC.Reachable(from, to) && !MLC.Reachable(from, to) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Strictness witness: 10 → 01 per cell.
	if !MLC.Reachable(0b10, 0b01) || SLC.Reachable(0b10, 0b01) {
		t.Error("MLC should allow 10→01 that SLC forbids")
	}
}

func TestMLCDeviceProgramSemantics(t *testing.T) {
	spec := smallSpec()
	spec.Cell = MLC
	d := MustNewDevice(spec)
	// 0xFF → 0xA5 (cells 10,01,10,01... wait per-byte): every cell of
	// 0xA5 (10 10 01 01 reading pairs) is <= 11.
	if err := d.ProgramByte(0, 0xA5); err != nil {
		t.Fatal(err)
	}
	// Raising any cell must fail: 0xA5 cell0 = 01 → 10 would rise.
	err := d.ProgramByte(0, 0xA6)
	if !errors.Is(err, ErrNeedsErase) {
		t.Fatalf("upward MLC move accepted: %v", err)
	}
	// Lowering cells is fine: 0xA5 → 0xA4 (cell0 01→00).
	if err := d.ProgramByte(0, 0xA4); err != nil {
		t.Fatal(err)
	}
	if d.Peek(0) != 0xA4 {
		t.Errorf("stored %02x", d.Peek(0))
	}
}

func TestCellModeString(t *testing.T) {
	if SLC.String() != "SLC" || MLC.String() != "MLC" || TLC.String() != "TLC" {
		t.Error("CellMode strings wrong")
	}
	// Out-of-range modes must render a stable token, not fall through to a
	// real mode's name.
	if got := CellMode(7).String(); got != "CellMode(7)" {
		t.Errorf("CellMode(7).String() = %q, want %q", got, "CellMode(7)")
	}
	if got := CellMode(-1).String(); got != "CellMode(-1)" {
		t.Errorf("CellMode(-1).String() = %q, want %q", got, "CellMode(-1)")
	}
}

func TestCellModeGeometry(t *testing.T) {
	cases := []struct {
		mode   CellMode
		bits   int
		levels int
	}{{SLC, 1, 2}, {MLC, 2, 4}, {TLC, 3, 8}}
	for _, c := range cases {
		if c.mode.Bits() != c.bits || c.mode.Levels() != c.levels {
			t.Errorf("%v: Bits=%d Levels=%d, want %d/%d",
				c.mode, c.mode.Bits(), c.mode.Levels(), c.bits, c.levels)
		}
		if !c.mode.Valid() {
			t.Errorf("%v reported invalid", c.mode)
		}
	}
	for _, m := range []CellMode{-1, 3, 7} {
		if m.Valid() {
			t.Errorf("CellMode(%d) reported valid", int(m))
		}
	}
}

func TestCellModeReachableTLC(t *testing.T) {
	cases := []struct {
		from, to byte
		want     bool
	}{
		{0xFF, 0x00, true},                  // every field down to zero
		{0xFF, 0xFF, true},                  // no movement
		{0b000_000_01, 0b000_000_10, false}, // field 0: 1 → 2 rises
		{0b000_000_10, 0b000_000_01, true},  // field 0: 2 → 1 falls
		{0b000_111_00, 0b000_011_00, true},  // field 1 (bits 3-5): 7 → 3
		{0b000_011_00, 0b000_100_00, false}, // field 1: 3 → 4 rises
		{0b10_000_000, 0b01_000_000, true},  // top field (bits 6-7): 2 → 1
		{0b01_000_000, 0b10_000_000, false}, // top field: 1 → 2 rises
		// The MLC-only move that motivates the per-mode kernels: cell
		// 10→01 inside an MLC byte raises TLC field 0 from 0 to 4.
		{0b0000_1000, 0b0000_0100, false},
	}
	for _, c := range cases {
		if got := TLC.Reachable(c.from, c.to); got != c.want {
			t.Errorf("TLC.Reachable(%08b, %08b) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

// TestReachableDensityHierarchy: clearing bits only lowers any field, so
// SLC-reachable implies reachable under every denser mode; the converse has
// explicit counterexamples per pair.
func TestReachableDensityHierarchy(t *testing.T) {
	f := func(from, to byte) bool {
		if !SLC.Reachable(from, to) {
			return true
		}
		return MLC.Reachable(from, to) && TLC.Reachable(from, to)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// MLC allows 10→01 per cell; TLC allows 010→001 per field; SLC neither.
	if SLC.Reachable(0b10, 0b01) || !MLC.Reachable(0b10, 0b01) {
		t.Error("MLC hierarchy witness wrong")
	}
	if SLC.Reachable(0b010, 0b001) || !TLC.Reachable(0b010, 0b001) {
		t.Error("TLC hierarchy witness wrong")
	}
}

func TestTLCDeviceProgramSemantics(t *testing.T) {
	spec := smallSpec()
	spec.Cell = TLC
	d := MustNewDevice(spec)
	// Erased 0xFF → 0b10_011_101: every field only falls (2<3, 3<7, 5<7...
	// fields are 5, 3, 2 from bit 0 up; all below the erased 7, 7, 3).
	if err := d.ProgramByte(0, 0b10_011_101); err != nil {
		t.Fatal(err)
	}
	// Raising field 1 (3 → 4) must need an erase.
	err := d.ProgramByte(0, 0b10_100_101)
	if !errors.Is(err, ErrNeedsErase) {
		t.Fatalf("upward TLC move accepted: %v", err)
	}
	// Lowering field 0 (5 → 4) is a plain program.
	if err := d.ProgramByte(0, 0b10_011_100); err != nil {
		t.Fatal(err)
	}
	if d.Peek(0) != 0b10_011_100 {
		t.Errorf("stored %08b", d.Peek(0))
	}
}

func TestValidateRejectsInvalidCellMode(t *testing.T) {
	spec := smallSpec()
	spec.Cell = CellMode(5)
	if err := spec.Validate(); err == nil {
		t.Fatal("Validate accepted CellMode(5)")
	} else if want := "CellMode(5)"; !containsStr(err.Error(), want) {
		t.Errorf("error %q does not name the offending mode %q", err, want)
	}
	spec.Cell = CellMode(-2)
	if err := spec.Validate(); err == nil {
		t.Fatal("Validate accepted CellMode(-2)")
	}
	if _, err := NewDevice(spec); err == nil {
		t.Fatal("NewDevice accepted an invalid cell mode")
	}
	for _, m := range []CellMode{SLC, MLC, TLC} {
		spec.Cell = m
		if err := spec.Validate(); err != nil {
			t.Errorf("Validate rejected %v: %v", m, err)
		}
	}
}

func TestDensitySpecDerating(t *testing.T) {
	base := DefaultSpec()
	for _, c := range []struct {
		mode      CellMode
		factor    int
		endurance uint32
	}{{SLC, 1, 100_000}, {MLC, 2, 10_000}, {TLC, 3, 1_000}} {
		s := DensitySpec(base, c.mode)
		if s.Cell != c.mode {
			t.Errorf("%v: cell mode not set", c.mode)
		}
		if s.ProgramLatency != base.ProgramLatency*time.Duration(c.factor) ||
			s.ProgramEnergy != base.ProgramEnergy*energy.Energy(c.factor) {
			t.Errorf("%v: program cost not scaled %dx", c.mode, c.factor)
		}
		if s.ReadLatency != base.ReadLatency*time.Duration(c.factor) {
			t.Errorf("%v: read latency not scaled %dx", c.mode, c.factor)
		}
		if s.EraseLatency != base.EraseLatency || s.EraseEnergy != base.EraseEnergy {
			t.Errorf("%v: erase cost must not change", c.mode)
		}
		if s.EnduranceCycles != c.endurance {
			t.Errorf("%v: endurance %d, want %d", c.mode, s.EnduranceCycles, c.endurance)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%v: derated spec invalid: %v", c.mode, err)
		}
	}
	// Endurance floors at one cycle instead of hitting the Validate error.
	tiny := base
	tiny.EnduranceCycles = 5
	if s := DensitySpec(tiny, TLC); s.EnduranceCycles != 1 {
		t.Errorf("TLC endurance floor: got %d, want 1", s.EnduranceCycles)
	}
}

func containsStr(s, sub string) bool {
	return strings.Contains(s, sub)
}
