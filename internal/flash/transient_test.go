package flash

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// TestFaultKindStringExhaustive: every declared kind has a real name —
// adding a kind without teaching String() fails here, not in a log line.
func TestFaultKindStringExhaustive(t *testing.T) {
	seen := map[string]FaultKind{}
	for k := FaultKind(1); k < faultKindCount; k++ {
		s := k.String()
		if s == "none" {
			t.Errorf("kind %d has no String case", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, s)
		}
		seen[s] = k
	}
	if FaultNone.String() != "none" {
		t.Errorf("FaultNone.String() = %q, want none", FaultNone.String())
	}
}

// TestFaultMixDrawFrequencies: over many draws each kind's share converges
// on its weight — a prefix-sum bug in the cascade would skew one bucket.
func TestFaultMixDrawFrequencies(t *testing.T) {
	mix := FaultMix{
		PowerLoss: 5, StuckBits: 1, ReadDisturb: 2,
		TransientProgram: 3, TransientErase: 2, Retention: 3,
		MinGap: 0, MaxGap: 10, MaxBits: 2, MaxRetries: 3,
	}
	const draws = 20000
	counts := map[FaultKind]int{}
	for _, f := range drainSchedule(NewRandomSchedule(11, mix), draws) {
		counts[f.Kind]++
		if f.Kind.transient() {
			if f.Retries < 1 || f.Retries > 3 {
				t.Fatalf("transient retries %d outside [1,3]", f.Retries)
			}
		} else if f.Retries != 0 {
			t.Fatalf("%v fault drew a retry budget", f.Kind)
		}
	}
	total := float64(mix.PowerLoss + mix.StuckBits + mix.ReadDisturb +
		mix.TransientProgram + mix.TransientErase + mix.Retention)
	want := map[FaultKind]int{
		FaultPowerLoss: mix.PowerLoss, FaultStuckBits: mix.StuckBits,
		FaultReadDisturb: mix.ReadDisturb, FaultTransientProgram: mix.TransientProgram,
		FaultTransientErase: mix.TransientErase, FaultRetention: mix.Retention,
	}
	for k, w := range want {
		got := float64(counts[k]) / draws
		exp := float64(w) / total
		if math.Abs(got-exp) > 0.02 {
			t.Errorf("%v drawn %.3f of the time, want %.3f ± 0.02", k, got, exp)
		}
	}
}

// TestFaultMixValidateRejectsNegatives: a negative weight or bound is a
// construction error, caught before any schedule exists.
func TestFaultMixValidateRejectsNegatives(t *testing.T) {
	good := FaultMix{PowerLoss: 1, MaxGap: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
	bad := []FaultMix{
		{PowerLoss: -1, StuckBits: 2, MaxGap: 10},
		{StuckBits: -3, MaxGap: 10},
		{ReadDisturb: -1, PowerLoss: 1, MaxGap: 10},
		{TransientProgram: -2, PowerLoss: 1, MaxGap: 10},
		{TransientErase: -1, PowerLoss: 1, MaxGap: 10},
		{Retention: -4, PowerLoss: 1, MaxGap: 10},
		{PowerLoss: 1, MinGap: -1, MaxGap: 10},
		{PowerLoss: 1, MinGap: 5, MaxGap: 4},
		{PowerLoss: 1, MaxGap: 10, MaxBits: -1},
		{PowerLoss: 1, MaxGap: 10, MaxRetries: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad mix %d validated: %+v", i, m)
		}
	}
}

// TestNewRandomSchedulePanicsOnInvalidMix: the constructor refuses to build
// a schedule from weights Validate rejects.
func TestNewRandomSchedulePanicsOnInvalidMix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRandomSchedule accepted a negative weight")
		}
	}()
	NewRandomSchedule(1, FaultMix{PowerLoss: -1, StuckBits: 1, MaxGap: 10})
}

// TestTransientProgramResidue: a transient incident with Retries = n fails
// n consecutive issues of the op — full cost drawn each time, state still
// reachable — then the next issue succeeds. Only the first failure counts
// as a fired fault.
func TestTransientProgramResidue(t *testing.T) {
	d := MustNewDevice(smallSpec())
	d.ArmFault(Fault{Kind: FaultTransientProgram, Retries: 3})
	addr := d.PageBase(0)
	for i := 0; i < 3; i++ {
		err := d.ProgramByte(addr, 0x00)
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("issue %d: err = %v, want ErrTransient", i, err)
		}
	}
	if err := d.ProgramByte(addr, 0x00); err != nil {
		t.Fatalf("issue after incident drained: %v", err)
	}
	if d.Peek(addr) != 0x00 {
		t.Errorf("byte = %02x after successful re-issue, want 00", d.Peek(addr))
	}
	if n := d.FaultsFired(); n != 1 {
		t.Errorf("FaultsFired = %d, want 1 (residue failures are the same incident)", n)
	}
	if st := d.Stats(); st.ProgramFails != 3 {
		t.Errorf("ProgramFails = %d, want 3", st.ProgramFails)
	}
}

// TestTransientEraseLeavesTornState: a failed erase wears the page and may
// leave a mixture, but a re-issued erase completes it.
func TestTransientEraseLeavesTornState(t *testing.T) {
	d := MustNewDevice(smallSpec())
	ps := d.Spec().PageSize
	if err := d.EraseProgramPage(0, bytes.Repeat([]byte{0x00}, ps)); err != nil {
		t.Fatal(err)
	}
	wear := d.Wear(0)
	d.ArmFault(Fault{Kind: FaultTransientErase})
	if err := d.ErasePage(0); !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if d.Wear(0) != wear+1 {
		t.Errorf("failed erase must still wear the page: %d -> %d", wear, d.Wear(0))
	}
	if err := d.ErasePage(0); err != nil {
		t.Fatalf("re-issued erase: %v", err)
	}
	for i := 0; i < ps; i++ {
		if d.Peek(d.PageBase(0)+i) != 0xFF {
			t.Fatalf("byte %d not erased after re-issue", i)
		}
	}
	if st := d.Stats(); st.EraseFails != 1 {
		t.Errorf("EraseFails = %d, want 1", st.EraseFails)
	}
}

// TestRetentionFlickerAndRefresh: a marginal cell flickers only on host
// reads — the controller's margin-aware ReadPage always serves the stored
// value — and a refresh recharges it at program cost.
func TestRetentionFlickerAndRefresh(t *testing.T) {
	d := MustNewDevice(smallSpec())
	ps := d.Spec().PageSize
	if err := d.EraseProgramPage(0, bytes.Repeat([]byte{0x00}, ps)); err != nil {
		t.Fatal(err)
	}
	d.ArmFault(Fault{Kind: FaultRetention})
	buf := make([]byte, ps)
	if err := d.ReadPage(0, buf); err != nil { // read fires the fault
		t.Fatal(err)
	}
	if n := d.RiseBits(0); n != 1 {
		t.Fatalf("RiseBits = %d after retention fault, want 1", n)
	}

	// ReadPage is a margin-aware sense: never any flicker.
	for i := 0; i < 50; i++ {
		if err := d.ReadPage(0, buf); err != nil {
			t.Fatal(err)
		}
		for j, v := range buf {
			if v != 0x00 {
				t.Fatalf("margin sense %d flickered at byte %d (%02x)", i, j, v)
			}
		}
	}

	// Host reads flicker the marginal bit to 1 about half the time.
	flickers := 0
	for i := 0; i < 200; i++ {
		if err := d.Read(d.PageBase(0), buf); err != nil {
			t.Fatal(err)
		}
		for _, v := range buf {
			if v != 0x00 {
				flickers++
			}
		}
	}
	if flickers == 0 || flickers == 200 {
		t.Errorf("marginal cell flickered %d/200 host reads, want strictly between", flickers)
	}

	// Refresh recharges in place: one byte reprogrammed, no more flicker.
	n, err := d.RefreshRetention(0)
	if err != nil || n != 1 {
		t.Fatalf("RefreshRetention = %d, %v; want 1 byte", n, err)
	}
	if d.RiseBits(0) != 0 {
		t.Error("rise mask survived a refresh")
	}
	for i := 0; i < 50; i++ {
		if err := d.Read(d.PageBase(0), buf); err != nil {
			t.Fatal(err)
		}
		for j, v := range buf {
			if v != 0x00 {
				t.Fatalf("refreshed cell still flickers at byte %d (%02x)", j, v)
			}
		}
	}
}

// TestRetentionClearedByProgramAndErase: a program pulse of the marginal
// byte recharges it, and an erase forgets the whole mask.
func TestRetentionClearedByProgramAndErase(t *testing.T) {
	d := MustNewDevice(smallSpec())
	ps := d.Spec().PageSize
	if err := d.EraseProgramPage(0, bytes.Repeat([]byte{0xF0}, ps)); err != nil {
		t.Fatal(err)
	}
	if n := d.AgeRetention(64); n == 0 {
		t.Fatal("aging never marked a cell")
	}
	var marked int
	mask := make([]byte, ps)
	if _, err := d.RiseMaskInto(0, mask); err != nil {
		t.Fatal(err)
	}
	for i, b := range mask {
		if b != 0 {
			marked = i
			break
		}
	}
	// Programming the marginal byte (even to the same value's subset)
	// recharges it.
	if err := d.ProgramByte(d.PageBase(0)+marked, 0x00); err != nil {
		t.Fatal(err)
	}
	if d.RiseBits(0) != 0 {
		t.Error("program pulse did not absorb the marginal cell")
	}
	if n := d.AgeRetention(64); n == 0 {
		t.Fatal("re-aging never marked a cell")
	}
	if err := d.ErasePage(0); err != nil {
		t.Fatal(err)
	}
	if d.RiseBits(0) != 0 {
		t.Error("erase did not clear the rise mask")
	}
}

// TestAgeRetentionCapsOnePerPage: retention density is bounded at one
// marginal cell per page, however much aging is applied.
func TestAgeRetentionCapsOnePerPage(t *testing.T) {
	d := MustNewDevice(smallSpec())
	ps := d.Spec().PageSize
	for p := 0; p < d.Spec().NumPages; p++ {
		if err := d.EraseProgramPage(p, bytes.Repeat([]byte{0x00}, ps)); err != nil {
			t.Fatal(err)
		}
	}
	d.AgeRetention(10 * d.Spec().NumPages)
	for p := 0; p < d.Spec().NumPages; p++ {
		if n := d.RiseBits(p); n > 1 {
			t.Errorf("page %d carries %d marginal cells, cap is 1", p, n)
		}
	}
}

// TestRetentionSkipsDriftedCells: a stuck-at-0 cell is dead, not marginal —
// aging must never make a drift-mask cell flicker (it would defeat the
// landing-zone prechecks above).
func TestRetentionSkipsDriftedCells(t *testing.T) {
	d := MustNewDevice(smallSpec())
	ps := d.Spec().PageSize
	d.ArmFault(Fault{Kind: FaultStuckBits, Bits: 8})
	if err := d.ErasePage(0); err != nil {
		t.Fatal(err)
	}
	drift := make([]byte, ps)
	if n, err := d.StuckMaskInto(0, drift); err != nil || n == 0 {
		t.Fatalf("no stuck cells to test against (n=%d, err=%v)", n, err)
	}
	d.AgeRetention(64 * d.Spec().NumPages)
	rise := make([]byte, ps)
	for p := 0; p < d.Spec().NumPages; p++ {
		if _, err := d.RiseMaskInto(p, rise); err != nil {
			t.Fatal(err)
		}
		if p == 0 {
			for i := range rise {
				if rise[i]&drift[i] != 0 {
					t.Fatalf("byte %d: stuck cell %02x marked marginal %02x", i, drift[i], rise[i])
				}
			}
		}
	}
}

// TestChargeWait: a retry backoff charges busy time to the bank's ledger
// without touching the array or drawing op energy.
func TestChargeWait(t *testing.T) {
	d := MustNewDevice(smallSpec())
	before := d.Stats()
	d.ChargeWait(0, 250)
	st := d.Stats()
	if st.Waits != before.Waits+1 {
		t.Errorf("Waits = %d, want %d", st.Waits, before.Waits+1)
	}
	if st.Busy != before.Busy+250 {
		t.Errorf("Busy grew %v, want 250ns", st.Busy-before.Busy)
	}
	if st.Energy != before.Energy {
		t.Errorf("wait drew op energy: %v -> %v", before.Energy, st.Energy)
	}
}
