package energy

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestEnergyString(t *testing.T) {
	cases := []struct {
		e    Energy
		want string
	}{
		{0, "0 J"},
		{196 * Microjoule, "196 µJ"},
		{544 * Nanojoule, "544 nJ"},
		{5.4 * Picojoule, "5.4 pJ"},
		{23.2 * Millijoule, "23.2 mJ"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("(%v J).String() = %q, want %q", float64(c.e), got, c.want)
		}
	}
}

func TestPowerString(t *testing.T) {
	if got := (2.275 * Milliwatt).String(); got != "2.27 mW" && got != "2.28 mW" {
		t.Errorf("power string = %q", got)
	}
	if !strings.HasSuffix((180 * Microwatt).String(), "µW") {
		t.Errorf("µW suffix missing: %q", (180 * Microwatt).String())
	}
}

func TestPowerOver(t *testing.T) {
	// 1 mW over 1 ms = 1 µJ.
	got := (1 * Milliwatt).Over(time.Millisecond)
	if math.Abs(float64(got-Microjoule)) > 1e-18 {
		t.Errorf("1mW over 1ms = %v, want 1 µJ", got)
	}
}

func TestPowerOverInverse(t *testing.T) {
	e := 42 * Microjoule
	d := 7 * time.Millisecond
	p := PowerOver(e, d)
	if back := p.Over(d); math.Abs(float64(back-e)) > 1e-15 {
		t.Errorf("round trip %v != %v", back, e)
	}
	if PowerOver(e, 0) != 0 {
		t.Error("PowerOver with zero duration should be 0")
	}
}

func TestCortexM0Plus(t *testing.T) {
	m := CortexM0Plus()
	if m.Power != 2.275*Milliwatt || m.Clock != 48e6 {
		t.Fatalf("unexpected M0+ model: %+v", m)
	}
	// Paper §II: during a 10.2 ms page erase the MCU consumes 23.2 µJ.
	e := m.Power.Over(10200 * time.Microsecond)
	if math.Abs(float64(e-23.205*Microjoule)) > float64(0.1*Microjoule) {
		t.Errorf("M0+ energy over erase = %v, paper says 23.2 µJ", e)
	}
}

func TestEnergyPerCycle(t *testing.T) {
	m := CortexM0Plus()
	perCycle := m.EnergyPerCycle()
	// 2.275 mW / 48 MHz ≈ 47.4 pJ per cycle.
	if math.Abs(float64(perCycle-47.4*Picojoule)) > float64(0.1*Picojoule) {
		t.Errorf("energy/cycle = %v, want ≈47.4 pJ", perCycle)
	}
	if m.EnergyFor(1000) != perCycle*1000 {
		t.Error("EnergyFor(1000) != 1000 × per-cycle")
	}
}

func TestCyclePeriod(t *testing.T) {
	m := CortexM0Plus()
	want := float64(time.Second) / 48e6
	if math.Abs(float64(m.CyclePeriod())-want) > 1 {
		t.Errorf("CyclePeriod = %v", m.CyclePeriod())
	}
}
