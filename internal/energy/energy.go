// Package energy provides the units and device power models used to account
// for the energy consumed by flash operations and the MCU (paper §II, §IV).
package energy

import (
	"fmt"
	"time"
)

// Energy is an amount of energy in joules.
type Energy float64

// Convenient magnitudes for expressing datasheet quantities.
const (
	Picojoule  Energy = 1e-12
	Nanojoule  Energy = 1e-9
	Microjoule Energy = 1e-6
	Millijoule Energy = 1e-3
	Joule      Energy = 1
)

// String renders the energy with an SI prefix chosen for readability.
func (e Energy) String() string {
	abs := e
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs == 0:
		return "0 J"
	case abs >= Millijoule:
		return fmt.Sprintf("%.3g mJ", float64(e/Millijoule))
	case abs >= Microjoule:
		return fmt.Sprintf("%.3g µJ", float64(e/Microjoule))
	case abs >= Nanojoule:
		return fmt.Sprintf("%.3g nJ", float64(e/Nanojoule))
	default:
		return fmt.Sprintf("%.3g pJ", float64(e/Picojoule))
	}
}

// Power is dissipation in watts.
type Power float64

// Convenient magnitudes for power.
const (
	Microwatt Power = 1e-6
	Milliwatt Power = 1e-3
	Watt      Power = 1
)

// String renders the power with an SI prefix chosen for readability.
func (p Power) String() string {
	abs := p
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs == 0:
		return "0 W"
	case abs >= Milliwatt:
		return fmt.Sprintf("%.3g mW", float64(p/Milliwatt))
	case abs >= Microwatt:
		return fmt.Sprintf("%.3g µW", float64(p/Microwatt))
	default:
		return fmt.Sprintf("%.3g nW", float64(p*1e9))
	}
}

// Over returns the energy dissipated by p over duration d.
func (p Power) Over(d time.Duration) Energy {
	return Energy(float64(p) * d.Seconds())
}

// PowerOver returns the average power of spending e over duration d.
func PowerOver(e Energy, d time.Duration) Power {
	if d <= 0 {
		return 0
	}
	return Power(float64(e) / d.Seconds())
}

// CPUModel describes an embedded MCU's dynamic power, used both for Fig. 1
// (flash-vs-CPU power comparison) and to charge CPU energy during workloads.
type CPUModel struct {
	Name  string
	Power Power // active power at Clock
	Clock float64
}

// CortexM0Plus is the ARM Cortex-M0+ reference point used throughout the
// paper: 2.275 mW running at 48 MHz in 180 nm technology (§II, [5]).
func CortexM0Plus() CPUModel {
	return CPUModel{Name: "ARM Cortex-M0+", Power: 2.275 * Milliwatt, Clock: 48e6}
}

// CyclePeriod returns the duration of one clock cycle.
func (m CPUModel) CyclePeriod() time.Duration {
	return time.Duration(float64(time.Second) / m.Clock)
}

// EnergyPerCycle returns the energy of one active clock cycle.
func (m CPUModel) EnergyPerCycle() Energy {
	return Energy(float64(m.Power) / m.Clock)
}

// EnergyFor returns the energy of n active cycles.
func (m CPUModel) EnergyFor(cycles uint64) Energy {
	return Energy(float64(cycles)) * m.EnergyPerCycle()
}
