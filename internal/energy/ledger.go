package energy

import (
	"sort"
	"sync"
	"time"
)

// Ledger accumulates energy and busy time per operation kind. It is the
// subscriber half of the flash device's instrumentation bus (attach with
// flash.NewLedgerObserver): instead of every call site hand-rolling energy
// accounting, operation events carry their cost and the ledger folds them
// in. Ledger is safe for concurrent use; the zero value is ready to use.
type Ledger struct {
	mu    sync.Mutex
	total Energy
	busy  time.Duration
	byOp  map[string]Energy
}

// Record adds one operation's cost under the given kind.
func (l *Ledger) Record(op string, e Energy, busy time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total += e
	l.busy += busy
	if l.byOp == nil {
		l.byOp = make(map[string]Energy)
	}
	l.byOp[op] += e
}

// Total returns the energy recorded so far.
func (l *Ledger) Total() Energy {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Busy returns the accumulated operation time.
func (l *Ledger) Busy() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.busy
}

// ByOp returns a copy of the per-kind energy breakdown.
func (l *Ledger) ByOp() map[string]Energy {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]Energy, len(l.byOp))
	for k, v := range l.byOp {
		out[k] = v
	}
	return out
}

// Kinds returns the recorded operation kinds in sorted order.
func (l *Ledger) Kinds() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.byOp))
	for k := range l.byOp {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reset clears the ledger.
func (l *Ledger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total, l.busy, l.byOp = 0, 0, nil
}
