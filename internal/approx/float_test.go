package approx

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

func TestNewFloat32Range(t *testing.T) {
	for _, m := range []int{0, -1, 24} {
		if _, err := NewFloat32(m, nil); err == nil {
			t.Errorf("m=%d should fail", m)
		}
	}
	e, err := NewFloat32(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.M() != 8 || e.Name() != "float32-m8/2-bit" {
		t.Errorf("unexpected encoder: %s", e.Name())
	}
}

// TestFloat32PreservesSignExponent: sign, exponent and high mantissa bits
// must never be approximated.
func TestFloat32PreservesSignExponent(t *testing.T) {
	e := MustFloat32(10, nil)
	f := func(p, x uint32) bool {
		got := e.Approximate(p, x, bits.W32)
		hiMask := ^(uint32(1)<<10 - 1)
		return got&hiMask == x&hiMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFloat32RelativeErrorBounded: for normal floats the relative error is
// below the encoder's analytic bound.
func TestFloat32RelativeErrorBounded(t *testing.T) {
	rng := xrand.New(5)
	for _, m := range []int{4, 8, 12, 16} {
		e := MustFloat32(m, nil)
		bound := e.MaxRelativeError()
		for i := 0; i < 20000; i++ {
			// Normal floats in a reasonable magnitude band.
			exact := float32(rng.NormFloat64() * 100)
			prev := float32(rng.NormFloat64() * 100)
			if exact == 0 {
				continue
			}
			eb := math.Float32bits(exact)
			pb := math.Float32bits(prev)
			got := e.Approximate(pb, eb, bits.W32)
			if rel := RelativeError(eb, got); rel > bound {
				t.Fatalf("m=%d: relative error %g exceeds bound %g (exact %v)", m, rel, bound, exact)
			}
		}
	}
}

// TestFloat32ExactWhenUnreachable: if the precise part needs 0→1 flips the
// encoder must return the exact value (forcing the erase fallback) rather
// than corrupt the exponent.
func TestFloat32ExactWhenUnreachable(t *testing.T) {
	e := MustFloat32(8, nil)
	prev := math.Float32bits(1.0)  // exponent 127
	exact := math.Float32bits(4.0) // exponent 129: needs a 0→1 flip
	if got := e.Approximate(prev, exact, bits.W32); got != exact {
		t.Errorf("unreachable exponent should return exact; got %#x want %#x", got, exact)
	}
}

// TestFloat32SubsetWhenReachable: when the precise part is writable, the
// full result must be writable too (low bits come from a subset encoder).
func TestFloat32SubsetWhenReachable(t *testing.T) {
	e := MustFloat32(12, nil)
	f := func(p, x uint32) bool {
		hiMask := ^(uint32(1)<<12 - 1)
		p |= x & hiMask // force the precise part reachable
		got := e.Approximate(p, x, bits.W32)
		return bits.IsSubset(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFloat32LargerMMoreError: growing the approximatable window must not
// shrink the mean relative error on correlated data.
func TestFloat32LargerMMoreError(t *testing.T) {
	rng := xrand.New(9)
	meanRel := func(m int) float64 {
		e := MustFloat32(m, nil)
		var sum float64
		const n = 5000
		for i := 0; i < n; i++ {
			base := rng.NormFloat64()*50 + 100
			exact := float32(base)
			prev := float32(base * (1 + 0.01*rng.NormFloat64()))
			eb, pb := math.Float32bits(exact), math.Float32bits(prev)
			sum += RelativeError(eb, e.Approximate(pb, eb, bits.W32))
		}
		return sum / n
	}
	m4, m12, m20 := meanRel(4), meanRel(12), meanRel(20)
	if !(m4 <= m12+1e-12 && m12 <= m20+1e-12) {
		t.Errorf("relative error not monotone in M: m4=%g m12=%g m20=%g", m4, m12, m20)
	}
	if m20 == 0 {
		t.Error("m=20 introduced no error on correlated floats; encoder inert?")
	}
}

func TestFloat32NonW32Widths(t *testing.T) {
	e := MustFloat32(8, nil)
	if got := e.Approximate(0xFF, 0xAB, bits.W8); got != 0xAB {
		t.Errorf("non-W32 width should pass through exact, got %#x", got)
	}
}

func TestRelativeError(t *testing.T) {
	a := math.Float32bits(2.0)
	b := math.Float32bits(1.5)
	if rel := RelativeError(a, b); math.Abs(rel-0.25) > 1e-9 {
		t.Errorf("RelativeError(2,1.5) = %v, want 0.25", rel)
	}
	if RelativeError(a, a) != 0 {
		t.Error("identical values should have zero error")
	}
	if !math.IsInf(RelativeError(math.Float32bits(0), b), 1) {
		t.Error("zero exact with different approx should be +Inf")
	}
}
