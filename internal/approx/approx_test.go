package approx

import (
	"testing"
	"testing/quick"

	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// TestPaperFig4OneBitExample replays the worked example of Fig. 4:
// previous = 0101, exact = 0011 yields approx = 0001 under Algorithm 1.
func TestPaperFig4OneBitExample(t *testing.T) {
	got := OneBit{}.Approximate(0b0101, 0b0011, bits.W8)
	if got != 0b0001 {
		t.Errorf("OneBit(0101, 0011) = %04b, want 0001", got)
	}
}

// TestPaperFig5TwoBitExample replays Fig. 5: the same inputs under the
// 2-bit algorithm yield approx = 0100 (error 1 instead of 2).
func TestPaperFig5TwoBitExample(t *testing.T) {
	got := MustNBit(2).Approximate(0b0101, 0b0011, bits.W8)
	if got != 0b0100 {
		t.Errorf("NBit(2)(0101, 0011) = %04b, want 0100", got)
	}
}

// TestPaperBaselineExample checks §III-A1's statement that the baseline
// algorithm yields 0100 (error 1) for the Fig. 4 inputs.
func TestPaperBaselineExample(t *testing.T) {
	for _, enc := range []Encoder{Optimal{}, OptimalBrute{}} {
		got := enc.Approximate(0b0101, 0b0011, bits.W8)
		if got != 0b0100 {
			t.Errorf("%s(0101, 0011) = %04b, want 0100", enc.Name(), got)
		}
	}
}

// TestDeriveTableMatchesPaperTableII asserts the minimax derivation
// reproduces Table II of the paper for n = 2, row by row.
func TestDeriveTableMatchesPaperTableII(t *testing.T) {
	want := []Row{
		{"x", "x", "0", "x", "0"},
		{"1", "x", "1", "x", "1"},
		{"0", "0", "1", "0", "0"},
		{"0", "0", "1", "1", "0"},
		{"0", "1", "1", "0", "1"},
		{"0", "1", "1", "1", "0"},
	}
	got := PaperTableII()
	if len(got) != len(want) {
		t.Fatalf("PaperTableII returned %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestNBit1EqualsOneBit: the n=1 table contains only the first two rows of
// Table II, so the 1-bit configuration of the n-bit hardware must match
// Algorithm 1 exactly (§III-B says the single circuit covers all n).
func TestNBit1EqualsOneBit(t *testing.T) {
	nb := MustNBit(1)
	for _, w := range []bits.Width{bits.W8, bits.W16, bits.W32} {
		f := func(p, e uint32) bool {
			return nb.Approximate(p, e, w) == (OneBit{}).Approximate(p, e, w)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("width %v: %v", w, err)
		}
	}
}

// TestSubsetInvariant: every encoder's output must be writable using only
// 1→0 transitions, i.e. a bitwise subset of previous. This is THE safety
// property of FlipBit — violating it would require a page erase.
func TestSubsetInvariant(t *testing.T) {
	encoders := []Encoder{OneBit{}, Optimal{}, OptimalBrute{}}
	for n := 1; n <= MaxN; n++ {
		encoders = append(encoders, MustNBit(n))
	}
	for _, enc := range encoders {
		enc := enc
		t.Run(enc.Name(), func(t *testing.T) {
			for _, w := range []bits.Width{bits.W8, bits.W16, bits.W32} {
				if enc.Name() == "optimal-brute" && w != bits.W8 {
					continue // exponential; 8-bit coverage is enough
				}
				f := func(p, e uint32) bool {
					a := enc.Approximate(p, e, w)
					return bits.IsSubset(a, p&w.Mask())
				}
				if err := quick.Check(f, nil); err != nil {
					t.Errorf("width %v: %v", w, err)
				}
			}
		})
	}
}

// TestOptimalMatchesBrute: the O(n) optimal encoder must agree with the
// exhaustive subset enumeration everywhere (8-bit exhaustive).
func TestOptimalMatchesBrute(t *testing.T) {
	for p := uint32(0); p < 256; p++ {
		for e := uint32(0); e < 256; e++ {
			fast := Optimal{}.Approximate(p, e, bits.W8)
			brute := OptimalBrute{}.Approximate(p, e, bits.W8)
			if fast != brute {
				t.Fatalf("Optimal(%08b,%08b) = %08b, brute = %08b", p, e, fast, brute)
			}
		}
	}
}

// TestOptimalMatchesBrute16 samples the 16-bit space.
func TestOptimalMatchesBrute16(t *testing.T) {
	rng := xrand.New(1)
	for i := 0; i < 300; i++ {
		p := rng.Uint32() & 0xFFFF
		e := rng.Uint32() & 0xFFFF
		fast := Optimal{}.Approximate(p, e, bits.W16)
		brute := OptimalBrute{}.Approximate(p, e, bits.W16)
		if fast != brute {
			t.Fatalf("Optimal(%016b,%016b) = %016b, brute = %016b", p, e, fast, brute)
		}
	}
}

// TestErrorOrdering: for every input, optimal error <= n-bit error <= 1-bit
// error is NOT guaranteed bit-for-bit between different n (the paper only
// claims it statistically), but optimal must lower-bound everything.
func TestErrorOrdering(t *testing.T) {
	encoders := []Encoder{OneBit{}}
	for n := 2; n <= MaxN; n++ {
		encoders = append(encoders, MustNBit(n))
	}
	for p := uint32(0); p < 256; p++ {
		for e := uint32(0); e < 256; e++ {
			optErr := bits.AbsDiff(e, Optimal{}.Approximate(p, e, bits.W8))
			for _, enc := range encoders {
				err := bits.AbsDiff(e, enc.Approximate(p, e, bits.W8))
				if err < optErr {
					t.Fatalf("%s beat optimal on p=%08b e=%08b (%d < %d)",
						enc.Name(), p, e, err, optErr)
				}
			}
		}
	}
}

// TestNBitMeanErrorImproves: averaged over uniform random data, the 2-bit
// algorithm must produce a strictly lower mean error than the 1-bit
// algorithm, and n=8 must be at least as good as n=2 — the trend of Fig 16.
func TestNBitMeanErrorImproves(t *testing.T) {
	rng := xrand.New(99)
	nb2, nb8 := MustNBit(2), MustNBit(8)
	var sum1, sum2, sum8, sumOpt float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		p := rng.Uint32() & 0xFF
		e := rng.Uint32() & 0xFF
		sum1 += float64(bits.AbsDiff(e, OneBit{}.Approximate(p, e, bits.W8)))
		sum2 += float64(bits.AbsDiff(e, nb2.Approximate(p, e, bits.W8)))
		sum8 += float64(bits.AbsDiff(e, nb8.Approximate(p, e, bits.W8)))
		sumOpt += float64(bits.AbsDiff(e, Optimal{}.Approximate(p, e, bits.W8)))
	}
	if !(sumOpt <= sum8 && sum8 <= sum2 && sum2 < sum1) {
		t.Errorf("mean abs errors not ordered: opt=%.2f n8=%.2f n2=%.2f n1=%.2f",
			sumOpt/trials, sum8/trials, sum2/trials, sum1/trials)
	}
}

// TestExactWhenRepresentable: when exact is already a subset of previous no
// error should be introduced by any encoder.
func TestExactWhenRepresentable(t *testing.T) {
	encoders := []Encoder{OneBit{}, Optimal{}}
	for n := 1; n <= MaxN; n++ {
		encoders = append(encoders, MustNBit(n))
	}
	f := func(p, e uint32) bool {
		e &= p // force representability
		for _, enc := range encoders {
			if enc.Approximate(p, e, bits.W32) != e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSetToZeroIsFree: §V-A observes that clearing a value to zero never
// needs an erase; all encoders must return exactly 0 for exact == 0.
func TestSetToZeroIsFree(t *testing.T) {
	encoders := []Encoder{OneBit{}, Optimal{}, MustNBit(2), MustNBit(8)}
	f := func(p uint32) bool {
		for _, enc := range encoders {
			if enc.Approximate(p, 0, bits.W32) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewNBitRange(t *testing.T) {
	for _, n := range []int{0, -1, MaxN + 1} {
		if _, err := NewNBit(n); err == nil {
			t.Errorf("NewNBit(%d) should fail", n)
		}
	}
	for n := 1; n <= MaxN; n++ {
		if _, err := NewNBit(n); err != nil {
			t.Errorf("NewNBit(%d): %v", n, err)
		}
	}
}

func TestEncoderNames(t *testing.T) {
	if (OneBit{}).Name() != "1-bit" {
		t.Error("OneBit name")
	}
	if MustNBit(3).Name() != "3-bit" {
		t.Error("NBit name")
	}
	if (Exact{}).Name() != "exact" {
		t.Error("Exact name")
	}
	if MustNCell(1).Name() != "1-cell" {
		t.Error("NCell name")
	}
}

func TestExactEncoderPassThrough(t *testing.T) {
	f := func(p, e uint32) bool {
		return Exact{}.Approximate(p, e, bits.W16) == e&0xFFFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWidthMasking: encoders must ignore bits above the configured width.
func TestWidthMasking(t *testing.T) {
	enc := MustNBit(2)
	f := func(p, e uint32) bool {
		a := enc.Approximate(p, e, bits.W8)
		b := enc.Approximate(p&0xFF, e&0xFF, bits.W8)
		return a == b && a <= 0xFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
