package approx

import (
	"fmt"
	"math"

	"github.com/flipbit-sim/flipbit/internal/bits"
)

// Floating-point extension (§VI "Floating-Point"): FlipBit approximates the
// low M bits of a float32's mantissa while keeping the sign and exponent
// bits precise. More error-tolerant applications use larger M.
//
// The float travels through the flash datapath as its IEEE-754 bit pattern
// (a uint32), so the Float32 encoder composes with the same controller and
// hardware as the integer encoders — only the error *semantics* change,
// which is why §VI notes the error-calculation hardware would switch to
// floating-point adders/subtractors.

// Float32 approximates the low M mantissa bits of IEEE-754 single-precision
// values using an inner bit-level encoder, leaving sign, exponent and the
// high mantissa bits exact. If the precise part cannot be written without
// 0 → 1 flips, the value is returned exactly (forcing the controller's
// erase fallback), because corrupting an exponent is never acceptable.
type Float32 struct {
	m     int     // approximatable low-mantissa bits, 1..23
	inner Encoder // bit-level encoder applied to the low-mantissa field
}

// NewFloat32 builds the encoder. m is the number of low mantissa bits that
// may be approximated (1..23); inner defaults to the 2-bit algorithm.
func NewFloat32(m int, inner Encoder) (*Float32, error) {
	if m < 1 || m > 23 {
		return nil, fmt.Errorf("approx: float32 mantissa window must be 1..23, got %d", m)
	}
	if inner == nil {
		inner = MustNBit(2)
	}
	return &Float32{m: m, inner: inner}, nil
}

// MustFloat32 is NewFloat32 for static configurations known to be valid.
func MustFloat32(m int, inner Encoder) *Float32 {
	e, err := NewFloat32(m, inner)
	if err != nil {
		panic(err)
	}
	return e
}

// M returns the number of approximatable mantissa bits.
func (e *Float32) M() int { return e.m }

// Approximate implements Encoder over IEEE-754 bit patterns. Width must be
// W32; other widths return exact (the controller will fall back).
func (e *Float32) Approximate(previous, exact uint32, w bits.Width) uint32 {
	if w != bits.W32 {
		return exact & w.Mask()
	}
	lowMask := uint32(1)<<uint(e.m) - 1
	hiMask := ^lowMask

	// The precise part (sign, exponent, high mantissa) must be writable
	// as-is; otherwise only an erase can store this value faithfully.
	if !bits.IsSubset(exact&hiMask, previous&hiMask) {
		return exact
	}
	low := e.inner.Approximate(previous&lowMask, exact&lowMask, bits.W32) & lowMask
	return exact&hiMask | low
}

// Name implements Encoder.
func (e *Float32) Name() string {
	return fmt.Sprintf("float32-m%d/%s", e.m, e.inner.Name())
}

// RelativeError returns |exact-approx| / |exact| for two float32 bit
// patterns, the quality metric that matters for floating-point data.
// A zero exact value with nonzero approx reports +Inf.
func RelativeError(exactBits, approxBits uint32) float64 {
	ev := float64(math.Float32frombits(exactBits))
	av := float64(math.Float32frombits(approxBits))
	if ev == av {
		return 0
	}
	if ev == 0 {
		return math.Inf(1)
	}
	return math.Abs(ev-av) / math.Abs(ev)
}

// MaxRelativeError bounds the relative error the encoder can introduce for
// normal floats: approximating the low m of 23 mantissa bits perturbs the
// significand by less than 2^(m-23).
func (e *Float32) MaxRelativeError() float64 {
	return math.Pow(2, float64(e.m-23))
}
