package approx

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/bits"
)

// MLC approximation (§VI "FlipBit for MLC").
//
// In multi-level-cell flash each cell stores two bits. A fully erased cell
// reads 11 and every program pulse decrements the logical mapping:
// 11 → 10 → 01 → 00. A cell can therefore move to any level less than or
// equal to its current one without an erase, and decisions must be made one
// *cell* (two bits) at a time rather than one bit at a time.

// CellBits is the number of bits per MLC cell.
const CellBits = 2

// cellLevels is the number of logical levels an MLC cell can hold.
const cellLevels = 1 << CellBits

// NCell implements the n-cell approximation algorithm for MLC flash. For
// n == 1 it reproduces the paper's worked example (§VI): each cell is
// clamped to its previous level when the exact level is unreachable, and the
// setOnes/setZeros saturation flags carry across cells exactly as in the
// binary algorithms. It also carries the compiled batch kernel
// (mlckernel.go), so it satisfies BatchEncoder.
type NCell struct {
	n    int
	kern *ncellKernel
}

// NewNCell returns the n-cell encoder, n >= 1 cells of lookahead window.
func NewNCell(n int) (*NCell, error) {
	if n < 1 || n > MaxN/CellBits {
		return nil, fmt.Errorf("approx: n-cell window must be in [1,%d], got %d", MaxN/CellBits, n)
	}
	return &NCell{n: n, kern: cachedCellKernel(n)}, nil
}

// MustNCell is NewNCell for static configurations known to be valid.
func MustNCell(n int) *NCell {
	e, err := NewNCell(n)
	if err != nil {
		panic(err)
	}
	return e
}

// N returns the lookahead window size in cells.
func (e *NCell) N() int { return e.n }

// Approximate implements Encoder. The result is reachable from previous
// using only program pulses: every cell of the result is <= the
// corresponding cell of previous.
func (e *NCell) Approximate(previous, exact uint32, w bits.Width) uint32 {
	previous &= w.Mask()
	exact &= w.Mask()
	cells := int(w) / CellBits
	var approx uint32
	setOnes, setZeros := false, false
	for c := cells - 1; c >= 0; c-- {
		p := cellAt(previous, c)
		x := cellAt(exact, c)
		var out uint32
		switch {
		case setZeros:
			out = 0
		case setOnes:
			out = p // saturate to the cell's maximum reachable level
		case x <= p:
			out = x
			if e.n > 1 && x < p && e.overshootCell(previous, exact, c) {
				out = x + 1
				setZeros = true
			}
		default: // x > p: unreachable without an erase
			out = p
			setOnes = true
		}
		approx = setCellAt(approx, c, out)
	}
	return approx
}

// Name implements Encoder.
func (e *NCell) Name() string { return fmt.Sprintf("%d-cell", e.n) }

// overshootCell decides, with a lookahead window of n-1 cells below cell c,
// whether writing exact's cell level + 1 (then saturating low) beats writing
// the exact level and continuing greedily. The minimax rule mirrors
// DeriveTable with radix 4: overshoot iff 4^m - eRest < eRest - gRest + 1,
// where eRest is the lookahead value of exact and gRest what the greedy
// clamp can still recover assuming nothing below the window is reachable.
func (e *NCell) overshootCell(previous, exact uint32, c int) bool {
	m := e.n - 1
	if m <= 0 {
		return false
	}
	// Walk lookahead cells c-1 .. c-m (cells below index 0 read as zero).
	var eRest, gRest uint32
	setOnes := false
	for k := 1; k <= m; k++ {
		cc := c - k
		var p, x uint32
		if cc >= 0 {
			p = cellAt(previous, cc)
			x = cellAt(exact, cc)
		}
		g := x
		if setOnes {
			g = p
		} else if x > p {
			setOnes = true
			g = p
		}
		eRest = eRest<<CellBits | x
		gRest = gRest<<CellBits | g
	}
	span := uint32(1) << uint(2*m) // 4^m
	return span-eRest < eRest-gRest+1
}

// cellAt extracts cell c (0 = least significant cell) of v.
func cellAt(v uint32, c int) uint32 {
	return (v >> uint(CellBits*c)) & (cellLevels - 1)
}

// setCellAt returns v with cell c set to level.
func setCellAt(v uint32, c int, level uint32) uint32 {
	shift := uint(CellBits * c)
	return v&^(uint32(cellLevels-1)<<shift) | level<<shift
}
