// Package approx implements the FlipBit value-approximation algorithms from
// §III-A of the paper.
//
// All algorithms answer the same question: given the value previously stored
// in a group of flash cells (previous) and the value the program wants to
// store (exact), what is a good value (approx) that can be written using only
// 1 → 0 transitions — that is, approx must be a bitwise subset of previous —
// so that no page erase is required?
//
// Four encoders are provided:
//
//   - OptimalBrute: the paper's baseline formulation, enumerating the 2^m
//     subsets of the m set bits of previous (O(2^m); testing only).
//   - Optimal: an O(n) exact solver producing the same minimum-error result.
//   - OneBit: Algorithm 1 — scan MSB→LSB deciding from the current bit only.
//   - NBit: Algorithm 2 — like OneBit but consulting a precomputed minimax
//     truth table over an n-bit lookahead window (Table II for n = 2).
//
// A multi-level-cell variant (§VI) lives in mlc.go and error metrics in
// metrics.go.
package approx

import (
	"fmt"
	"sync"

	"github.com/flipbit-sim/flipbit/internal/bits"
)

// MaxN is the largest supported lookahead window of the n-bit algorithm.
// The paper evaluates and synthesizes hardware for n up to 8 (§III-B).
const MaxN = 8

// Encoder produces an erase-free approximation of exact given the previous
// cell contents. Implementations must guarantee that the result is a bitwise
// subset of previous (only 1→0 transitions needed) and fits in width w.
type Encoder interface {
	// Approximate returns the approximated value to write.
	Approximate(previous, exact uint32, w bits.Width) uint32
	// Name identifies the encoder in reports and benchmarks.
	Name() string
}

// OneBit implements Algorithm 1: the one-bit approximation.
//
// Scanning from the most significant bit, an output bit is set when the
// previous bit allows it (previous[i] == 1) and either the exact bit wants it
// or an earlier, more significant exact bit could not be satisfied (setOnes),
// in which case the result is already strictly below exact and every
// remaining permitted bit should be set to close the gap.
type OneBit struct{}

// Approximate implements Encoder.
func (OneBit) Approximate(previous, exact uint32, w bits.Width) uint32 {
	previous &= w.Mask()
	exact &= w.Mask()
	var approx uint32
	setOnes := false
	for i := int(w) - 1; i >= 0; i-- {
		switch {
		case bits.Bit(previous, i) == 1:
			if bits.Bit(exact, i) == 1 || setOnes {
				approx = bits.SetBit(approx, i, 1)
			}
		case bits.Bit(exact, i) == 1:
			// The exact value needs a bit we cannot set without an
			// erase: everything below should round up (Alg. 1 line 9).
			setOnes = true
		}
	}
	return approx
}

// Name implements Encoder.
func (OneBit) Name() string { return "1-bit" }

// NBit implements Algorithm 2: the n-bit approximation with an n-bit
// lookahead window and a minimax-derived truth table. It also carries the
// compiled batch kernel (kernel.go), so it satisfies BatchEncoder.
type NBit struct {
	n     int
	table *Table
	kern  *kernel
}

// tableCache holds the derived truth tables, one per window size; deriving
// the n = 8 table touches 4^7 entries, so it is worth doing exactly once.
var tableCache [MaxN + 1]struct {
	once  sync.Once
	table *Table
}

// cachedTable returns the shared table for window size n (1 <= n <= MaxN).
func cachedTable(n int) *Table {
	c := &tableCache[n]
	c.once.Do(func() { c.table = DeriveTable(n) })
	return c.table
}

// NewNBit returns the n-bit encoder for 1 <= n <= MaxN. For n == 1 it
// behaves identically to OneBit (the first two truth-table rows).
func NewNBit(n int) (*NBit, error) {
	if n < 1 || n > MaxN {
		return nil, fmt.Errorf("approx: n-bit window must be in [1,%d], got %d", MaxN, n)
	}
	return &NBit{n: n, table: cachedTable(n), kern: cachedKernel(n)}, nil
}

// MustNBit is NewNBit for static configurations known to be valid.
func MustNBit(n int) *NBit {
	e, err := NewNBit(n)
	if err != nil {
		panic(err)
	}
	return e
}

// N returns the lookahead window size.
func (e *NBit) N() int { return e.n }

// Approximate implements Encoder.
//
// The loop mirrors the hardware chain of Fig. 7: per bit position a slice
// sees n bits of exact and previous (zero padded below bit 0) plus the
// propagated setOnes/setZeros flags.
func (e *NBit) Approximate(previous, exact uint32, w bits.Width) uint32 {
	previous &= w.Mask()
	exact &= w.Mask()
	var approx uint32
	setOnes, setZeros := false, false
	for i := int(w) - 1; i >= 0; i-- {
		b, newOnes, newZeros := e.table.Decide(
			bits.Field(exact, i, e.n),
			bits.Field(previous, i, e.n),
			setOnes, setZeros,
		)
		approx = bits.SetBit(approx, i, b)
		setOnes, setZeros = newOnes, newZeros
	}
	return approx
}

// Name implements Encoder.
func (e *NBit) Name() string { return fmt.Sprintf("%d-bit", e.n) }

// Exact is a pass-through encoder: it always returns the exact value.
// It models a system without FlipBit and is used as the precise baseline.
type Exact struct{}

// Approximate implements Encoder. Note the result may NOT be a subset of
// previous; writing it may require an erase. This is intentional: Exact
// represents the conventional write path.
func (Exact) Approximate(_, exact uint32, w bits.Width) uint32 { return exact & w.Mask() }

// Name implements Encoder.
func (Exact) Name() string { return "exact" }
