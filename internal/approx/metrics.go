package approx

import "github.com/flipbit-sim/flipbit/internal/bits"

// ErrorTracker accumulates the error between exact and approximated values
// across a flash page, mirroring the hardware of Fig. 9 (absolute difference
// plus accumulator). The paper gates approximate writes on the mean absolute
// error (MAE) because it is cheaper in hardware than mean squared error;
// both are tracked here so the MAE-vs-MSE design choice can be ablated.
type ErrorTracker struct {
	sumAbs uint64
	sumSq  uint64
	count  uint64
}

// Add records one (exact, approx) pair.
func (t *ErrorTracker) Add(exact, approx uint32) {
	d := uint64(bits.AbsDiff(exact, approx))
	t.sumAbs += d
	t.sumSq += d * d
	t.count++
}

// AddBatch folds the sums a batch kernel computed in-kernel (BatchStats)
// into the tracker, equivalent to count individual Add calls.
func (t *ErrorTracker) AddBatch(count, sumAbs, sumSq uint64) {
	t.sumAbs += sumAbs
	t.sumSq += sumSq
	t.count += count
}

// Reset clears the accumulator, as the hardware does between pages.
func (t *ErrorTracker) Reset() { *t = ErrorTracker{} }

// Count returns the number of values recorded.
func (t *ErrorTracker) Count() int { return int(t.count) }

// SumAbs returns the accumulated absolute error.
func (t *ErrorTracker) SumAbs() uint64 { return t.sumAbs }

// MAE returns the mean absolute error, or 0 for an empty tracker.
func (t *ErrorTracker) MAE() float64 {
	if t.count == 0 {
		return 0
	}
	return float64(t.sumAbs) / float64(t.count)
}

// MSE returns the mean squared error, or 0 for an empty tracker.
func (t *ErrorTracker) MSE() float64 {
	if t.count == 0 {
		return 0
	}
	return float64(t.sumSq) / float64(t.count)
}
