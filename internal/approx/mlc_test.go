package approx

import (
	"testing"
	"testing/quick"

	"github.com/flipbit-sim/flipbit/internal/bits"
)

// TestPaperMLCExample replays the §VI worked example: previous = 0101,
// exact = 0011 under the 1-cell algorithm gives approx = 0001.
func TestPaperMLCExample(t *testing.T) {
	got := MustNCell(1).Approximate(0b0101, 0b0011, bits.W8)
	if got != 0b0001 {
		t.Errorf("NCell(1)(0101, 0011) = %04b, want 0001", got)
	}
}

// TestMLCReachability: every output cell level must be <= the previous cell
// level, i.e. reachable through program pulses alone (11→10→01→00).
func TestMLCReachability(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		enc := MustNCell(n)
		f := func(p, e uint32) bool {
			a := enc.Approximate(p, e, bits.W32)
			for c := 0; c < 16; c++ {
				if cellAt(a, c) > cellAt(p, c) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

// TestMLCExactWhenReachable: if every exact cell is reachable, the write
// must be lossless.
func TestMLCExactWhenReachable(t *testing.T) {
	enc := MustNCell(1)
	f := func(p, e uint32) bool {
		// Clamp each cell of e to p's level so everything is reachable.
		var r uint32
		for c := 0; c < 16; c++ {
			x := cellAt(e, c)
			if pc := cellAt(p, c); x > pc {
				x = pc
			}
			r = setCellAt(r, c, x)
		}
		return enc.Approximate(p, r, bits.W32) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMLCOvershootHelps: with lookahead, overshooting a high cell can beat
// the greedy clamp. previous cells (10,00), exact (01,11): 1-cell gives
// 0100 (error 3); 2-cell overshoots to 1000 (error 1).
func TestMLCOvershootHelps(t *testing.T) {
	p, e := uint32(0b1000), uint32(0b0111)
	g1 := MustNCell(1).Approximate(p, e, bits.W8)
	g2 := MustNCell(2).Approximate(p, e, bits.W8)
	if bits.AbsDiff(e, g2) >= bits.AbsDiff(e, g1) {
		t.Errorf("2-cell (%04b, err %d) should beat 1-cell (%04b, err %d)",
			g2, bits.AbsDiff(e, g2), g1, bits.AbsDiff(e, g1))
	}
}

// TestMLCSetToZeroIsFree: level 00 is always reachable, so zeroing a value
// is always exact.
func TestMLCSetToZeroIsFree(t *testing.T) {
	f := func(p uint32) bool {
		return MustNCell(1).Approximate(p, 0, bits.W32) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMLCMeanError2CellNotWorse: statistically the lookahead variant should
// not increase mean error on uniform data.
func TestMLCMeanError2CellNotWorse(t *testing.T) {
	e1, e2 := MustNCell(1), MustNCell(2)
	var sum1, sum2 uint64
	for p := uint32(0); p < 256; p++ {
		for e := uint32(0); e < 256; e++ {
			sum1 += uint64(bits.AbsDiff(e, e1.Approximate(p, e, bits.W8)))
			sum2 += uint64(bits.AbsDiff(e, e2.Approximate(p, e, bits.W8)))
		}
	}
	if sum2 > sum1 {
		t.Errorf("2-cell mean error (%d) exceeds 1-cell (%d)", sum2, sum1)
	}
}

func TestNewNCellRange(t *testing.T) {
	if _, err := NewNCell(0); err == nil {
		t.Error("NewNCell(0) should fail")
	}
	if _, err := NewNCell(MaxN); err == nil {
		t.Error("NewNCell(MaxN) should fail (cells, not bits)")
	}
	if _, err := NewNCell(2); err != nil {
		t.Errorf("NewNCell(2): %v", err)
	}
}

func TestCellHelpers(t *testing.T) {
	v := uint32(0b11_01_00_10)
	if cellAt(v, 0) != 0b10 || cellAt(v, 1) != 0b00 || cellAt(v, 2) != 0b01 || cellAt(v, 3) != 0b11 {
		t.Error("cellAt extraction wrong")
	}
	if got := setCellAt(v, 1, 0b11); got != 0b11_01_11_10 {
		t.Errorf("setCellAt = %08b", got)
	}
}
