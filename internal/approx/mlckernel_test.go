package approx

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// cellLE reports whether every 2-bit cell of a is <= the corresponding
// cell of b — MLC reachability, written as the naive per-cell loop the
// SWAR helpers must agree with.
func cellLE(a, b uint32) bool {
	for c := 0; c < 16; c++ {
		if a>>uint(CellBits*c)&(cellLevels-1) > b>>uint(CellBits*c)&(cellLevels-1) {
			return false
		}
	}
	return true
}

// TestCellGTMatchesPerCell proves the SWAR comparators against the naive
// per-cell loop: exhaustively for byte operands, randomly for full words.
func TestCellGTMatchesPerCell(t *testing.T) {
	for a := uint32(0); a < 256; a++ {
		for b := uint32(0); b < 256; b++ {
			var want uint32
			for c := 0; c < 4; c++ {
				if a>>uint(CellBits*c)&(cellLevels-1) > b>>uint(CellBits*c)&(cellLevels-1) {
					want |= 1 << uint(CellBits*c+1)
				}
			}
			if got := cellGT(a, b); got != want {
				t.Fatalf("cellGT(%#x, %#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
	rng := xrand.New(0xCE11)
	for i := 0; i < 20000; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		if (cellGT(a, b) == 0) != cellLE(a, b) {
			t.Fatalf("cellGT(%#x, %#x) zero-test disagrees with per-cell loop", a, b)
		}
		a64 := uint64(a)<<32 | uint64(rng.Uint32())
		b64 := uint64(b)<<32 | uint64(rng.Uint32())
		want := cellGT(uint32(a64), uint32(b64)) == 0 && cellGT(uint32(a64>>32), uint32(b64>>32)) == 0
		if (cellGT64(a64, b64) == 0) != want {
			t.Fatalf("cellGT64(%#x, %#x) zero-test disagrees with 32-bit halves", a64, b64)
		}
	}
}

// TestCellTableN2NotDegenerate pins the n = 2 minimax table: unlike the
// bit chain (whose n = 2 table collapses to one mask expression,
// nbit2Value), the cell table fires on two distinct shapes — e' = 3 with
// any p' < 3, and e' = 2 with p' = 0 — so n >= 2 must probe the table.
func TestCellTableN2NotDegenerate(t *testing.T) {
	fire := deriveCellTable(2)
	for e := uint32(0); e < 4; e++ {
		for p := uint32(0); p < 4; p++ {
			want := (e == 3 && p < 3) || (e == 2 && p == 0)
			if fire[e<<CellBits|p] != want {
				t.Errorf("fire[e'=%d p'=%d] = %v, want %v", e, p, fire[e<<CellBits|p], want)
			}
		}
	}
}

// scalarEncodeSpanCell is the reference slice walker for the MLC kernel:
// value by value through the scalar NCell.Approximate, with reachability
// judged per cell — exactly what the controller's scalar encode loop
// concludes on an MLC device.
func scalarEncodeSpanCell(t *testing.T, enc *NCell, prev, exact, approx []byte, w bits.Width) BatchStats {
	t.Helper()
	var st BatchStats
	vb := w.Bytes()
	for i := 0; i+vb <= len(exact); i += vb {
		p := bits.LoadLE(prev[i:], w)
		e := bits.LoadLE(exact[i:], w)
		a := enc.Approximate(p, e, w)
		bits.StoreLE(approx[i:], a, w)
		st.add(e, a)
		if !cellLE(a, p) {
			st.Unreachable = true
		}
	}
	return st
}

func checkCellSpanEqual(t *testing.T, enc *NCell, prev, exact []byte, w bits.Width) {
	t.Helper()
	gotBuf := make([]byte, len(exact))
	wantBuf := make([]byte, len(exact))
	got := enc.EncodeSlice(prev, exact, gotBuf, w)
	want := scalarEncodeSpanCell(t, enc, prev, exact, wantBuf, w)
	for i := range wantBuf {
		if gotBuf[i] != wantBuf[i] {
			p := bits.LoadLE(prev[i/w.Bytes()*w.Bytes():], w)
			e := bits.LoadLE(exact[i/w.Bytes()*w.Bytes():], w)
			t.Fatalf("%s/%v: output byte %d: kernel %#x, scalar %#x (value prev=%#x exact=%#x)",
				enc.Name(), w, i, gotBuf[i], wantBuf[i], p, e)
		}
	}
	if got != want {
		t.Fatalf("%s/%v: stats diverge: kernel %+v, scalar %+v", enc.Name(), w, got, want)
	}
}

// TestNCellKernelExhaustiveW8 proves the byte LUT and the cell-break chain
// equal the scalar n-cell walk for EVERY 8-bit (previous, exact) pair at
// every supported window size.
func TestNCellKernelExhaustiveW8(t *testing.T) {
	prev := make([]byte, 256)
	exact := make([]byte, 256)
	for n := 1; n <= MaxN/CellBits; n++ {
		enc := MustNCell(n)
		for p := 0; p < 256; p++ {
			for e := range exact {
				prev[e] = byte(p)
				exact[e] = byte(e)
			}
			checkCellSpanEqual(t, enc, prev, exact, bits.W8)
		}
	}
}

// ncellBoundaryVectors are crafted 32-bit cases where the cell lookahead
// window straddles byte boundaries, plus the shapes the SLC kernel would
// misjudge (bit-setting but cell-decreasing moves like 10 → 01).
var ncellBoundaryVectors = [][2]uint32{
	{0x0000AA00, 0x00005500}, // every cell 10 → 01: SLC-unreachable, MLC identity
	{0x00005500, 0x0000AA00}, // every cell 01 → 10: undershoot at the top cell
	{0x0000FF00, 0x000100FF}, // undershoot exactly at a byte boundary
	{0x00FF00FF, 0x0100FF00},
	{0xFFFEFFFE, 0x00010001},
	{0xFF00FF00, 0x00FF00FF},
	{0x80808080, 0x7F7F7F7F},
	{0x01FE01FE, 0x01010101},
	{0xFEFFFFFF, 0x03000000}, // window hangs below the top cell
	{0x00FFFF00, 0x0000FFFF},
	{0x3FFFFFFF, 0xC0000000}, // MSC undershoot: result is previous
	{0xAAAAAAAA, 0x55555555},
	{0x55555555, 0xAAAAAAAA},
	{0xFFFFFF00, 0x000003FF}, // overshoot decision fed by the lower byte
	{0xA5A5A5A5, 0x5A5A5A5A},
	{0xFFFFFFFF, 0xFEFFFFFF}, // near-max exact: overshoot saturation
}

// TestNCellKernelBoundaryVectors pins the crafted cross-byte cases for
// every window size at 16 and 32 bits.
func TestNCellKernelBoundaryVectors(t *testing.T) {
	for n := 1; n <= MaxN/CellBits; n++ {
		enc := MustNCell(n)
		for _, v := range ncellBoundaryVectors {
			for _, w := range []bits.Width{bits.W16, bits.W32} {
				prev := make([]byte, 4)
				exact := make([]byte, 4)
				bits.StoreLE(prev, v[0]&w.Mask(), bits.W32)
				bits.StoreLE(exact, v[1]&w.Mask(), bits.W32)
				checkCellSpanEqual(t, enc, prev, exact, w)
			}
		}
	}
}

// TestNCellKernelRandomWide drives random multi-value spans through every
// window size at every width, including spans dominated by cell-reachable
// values so the cellGT64 bulk-skip path interleaves with the per-value
// path.
func TestNCellKernelRandomWide(t *testing.T) {
	rng := xrand.New(0x4CE1)
	const span = 64
	prev := make([]byte, span)
	exact := make([]byte, span)
	for round := 0; round < 400; round++ {
		for i := range prev {
			prev[i] = rng.Byte()
			switch round % 4 {
			case 0: // independent random data
				exact[i] = rng.Byte()
			case 1: // mostly cell-reachable: exercise the bulk-skip path
				exact[i] = prev[i] &^ byte(rng.Intn(4))
			case 2: // near-neighbour drift (the sensor workloads)
				exact[i] = byte(int(prev[i]) + rng.Intn(5) - 2)
			default: // freshly erased page
				prev[i] = 0xFF
				exact[i] = rng.Byte()
			}
		}
		for n := 1; n <= MaxN/CellBits; n++ {
			enc := MustNCell(n)
			for _, w := range []bits.Width{bits.W8, bits.W16, bits.W32} {
				checkCellSpanEqual(t, enc, prev, exact, w)
			}
		}
	}
}

// TestNCellKernelIdentityAndReachability spot-checks the structural
// invariants the controller relies on on MLC devices: every output cell
// level is <= previous's (never needs an erase) and cell-reachable exact
// values pass through unchanged.
func TestNCellKernelIdentityAndReachability(t *testing.T) {
	rng := xrand.New(11)
	for n := 1; n <= MaxN/CellBits; n++ {
		enc := MustNCell(n)
		for i := 0; i < 2000; i++ {
			p, e := rng.Uint32(), rng.Uint32()
			for _, w := range []bits.Width{bits.W8, bits.W16, bits.W32} {
				pm, em := p&w.Mask(), e&w.Mask()
				var pb, eb, ab [4]byte
				bits.StoreLE(pb[:], pm, bits.W32)
				bits.StoreLE(eb[:], em, bits.W32)
				st := enc.EncodeSlice(pb[:w.Bytes()], eb[:w.Bytes()], ab[:w.Bytes()], w)
				a := bits.LoadLE(ab[:], w)
				if !cellLE(a, pm) {
					t.Fatalf("n=%d %v: EncodeSlice(%#x, %#x) = %#x not cell-reachable from previous", n, w, pm, em, a)
				}
				if cellLE(em, pm) && a != em {
					t.Fatalf("n=%d %v: exact %#x cell-reachable from %#x but got %#x", n, w, em, pm, a)
				}
				if st.Unreachable {
					t.Fatalf("n=%d %v: cell kernel reported unreachable", n, w)
				}
			}
		}
	}
}
