package approx

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Encoder micro-benchmarks: the controller calls these once per value per
// committed page, so per-op cost matters for simulation throughput.

func benchPairs(n int) ([]uint32, []uint32) {
	rng := xrand.New(1)
	p := make([]uint32, n)
	e := make([]uint32, n)
	for i := range p {
		p[i], e[i] = rng.Uint32(), rng.Uint32()
	}
	return p, e
}

func benchEncoder(b *testing.B, enc Encoder, w bits.Width) {
	b.Helper()
	p, e := benchPairs(1024)
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += enc.Approximate(p[i%1024], e[i%1024], w)
	}
	_ = sink
}

func BenchmarkOneBit32(b *testing.B)  { benchEncoder(b, OneBit{}, bits.W32) }
func BenchmarkNBit2W8(b *testing.B)   { benchEncoder(b, MustNBit(2), bits.W8) }
func BenchmarkNBit2W32(b *testing.B)  { benchEncoder(b, MustNBit(2), bits.W32) }
func BenchmarkNBit8W32(b *testing.B)  { benchEncoder(b, MustNBit(8), bits.W32) }
func BenchmarkOptimal32(b *testing.B) { benchEncoder(b, Optimal{}, bits.W32) }
func BenchmarkNCell2W8(b *testing.B)  { benchEncoder(b, MustNCell(2), bits.W8) }

func BenchmarkDeriveTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DeriveTable(8)
	}
}

// Batch-kernel benchmarks (kernel.go): EncodeSlice against the scalar
// per-value reference loop over the same 4 KiB span. The scalar variants
// replicate what the controller's encode stage did before the kernels —
// LoadLE + interface Approximate + StoreLE per value.

func benchSpans(n int) (prev, exact, approx []byte) {
	rng := xrand.New(1)
	prev = make([]byte, n)
	exact = make([]byte, n)
	approx = make([]byte, n)
	for i := range prev {
		prev[i], exact[i] = rng.Byte(), rng.Byte()
	}
	return prev, exact, approx
}

func benchEncodeSlice(b *testing.B, enc BatchEncoder, w bits.Width) {
	b.Helper()
	prev, exact, approx := benchSpans(4096)
	enc.EncodeSlice(prev, exact, approx, w) // derive lazy LUTs up front
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeSlice(prev, exact, approx, w)
	}
}

func benchEncodeScalarSpan(b *testing.B, enc Encoder, w bits.Width) {
	b.Helper()
	prev, exact, approx := benchSpans(4096)
	vb := w.Bytes()
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j+vb <= len(exact); j += vb {
			p := bits.LoadLE(prev[j:], w)
			e := bits.LoadLE(exact[j:], w)
			bits.StoreLE(approx[j:], enc.Approximate(p, e, w), w)
		}
	}
}

func BenchmarkEncodeSliceOneBitW32(b *testing.B) { benchEncodeSlice(b, OneBit{}, bits.W32) }
func BenchmarkEncodeSliceNBit2W8(b *testing.B)   { benchEncodeSlice(b, MustNBit(2), bits.W8) }
func BenchmarkEncodeSliceNBit2W32(b *testing.B)  { benchEncodeSlice(b, MustNBit(2), bits.W32) }
func BenchmarkEncodeSliceNBit8W32(b *testing.B)  { benchEncodeSlice(b, MustNBit(8), bits.W32) }
func BenchmarkEncodeSliceExactW32(b *testing.B)  { benchEncodeSlice(b, Exact{}, bits.W32) }

func BenchmarkEncodeScalarOneBitW32(b *testing.B) { benchEncodeScalarSpan(b, OneBit{}, bits.W32) }
func BenchmarkEncodeScalarNBit2W8(b *testing.B)   { benchEncodeScalarSpan(b, MustNBit(2), bits.W8) }
func BenchmarkEncodeScalarNBit2W32(b *testing.B)  { benchEncodeScalarSpan(b, MustNBit(2), bits.W32) }
func BenchmarkEncodeScalarNBit8W32(b *testing.B)  { benchEncodeScalarSpan(b, MustNBit(8), bits.W32) }

func BenchmarkEncodeSliceNCell2W8(b *testing.B)  { benchEncodeSlice(b, MustNCell(2), bits.W8) }
func BenchmarkEncodeSliceNCell2W32(b *testing.B) { benchEncodeSlice(b, MustNCell(2), bits.W32) }
func BenchmarkEncodeSliceNCell4W32(b *testing.B) { benchEncodeSlice(b, MustNCell(4), bits.W32) }

func BenchmarkEncodeScalarNCell2W8(b *testing.B)  { benchEncodeScalarSpan(b, MustNCell(2), bits.W8) }
func BenchmarkEncodeScalarNCell2W32(b *testing.B) { benchEncodeScalarSpan(b, MustNCell(2), bits.W32) }
func BenchmarkEncodeScalarNCell4W32(b *testing.B) { benchEncodeScalarSpan(b, MustNCell(4), bits.W32) }
