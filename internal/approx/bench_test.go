package approx

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Encoder micro-benchmarks: the controller calls these once per value per
// committed page, so per-op cost matters for simulation throughput.

func benchPairs(n int) ([]uint32, []uint32) {
	rng := xrand.New(1)
	p := make([]uint32, n)
	e := make([]uint32, n)
	for i := range p {
		p[i], e[i] = rng.Uint32(), rng.Uint32()
	}
	return p, e
}

func benchEncoder(b *testing.B, enc Encoder, w bits.Width) {
	b.Helper()
	p, e := benchPairs(1024)
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += enc.Approximate(p[i%1024], e[i%1024], w)
	}
	_ = sink
}

func BenchmarkOneBit32(b *testing.B)  { benchEncoder(b, OneBit{}, bits.W32) }
func BenchmarkNBit2W8(b *testing.B)   { benchEncoder(b, MustNBit(2), bits.W8) }
func BenchmarkNBit2W32(b *testing.B)  { benchEncoder(b, MustNBit(2), bits.W32) }
func BenchmarkNBit8W32(b *testing.B)  { benchEncoder(b, MustNBit(8), bits.W32) }
func BenchmarkOptimal32(b *testing.B) { benchEncoder(b, Optimal{}, bits.W32) }
func BenchmarkNCell2W8(b *testing.B)  { benchEncoder(b, MustNCell(2), bits.W8) }

func BenchmarkDeriveTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DeriveTable(8)
	}
}
