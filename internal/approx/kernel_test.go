package approx

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// scalarEncodeSpan is the reference slice walker: exactly what the
// controller's pre-kernel encode loop did, value by value through the
// scalar Approximate method. The kernels must match it bit-for-bit and
// stat-for-stat.
func scalarEncodeSpan(t *testing.T, enc Encoder, prev, exact, approx []byte, w bits.Width) BatchStats {
	t.Helper()
	var st BatchStats
	vb := w.Bytes()
	for i := 0; i+vb <= len(exact); i += vb {
		p := bits.LoadLE(prev[i:], w)
		e := bits.LoadLE(exact[i:], w)
		a := enc.Approximate(p, e, w)
		bits.StoreLE(approx[i:], a, w)
		st.add(e, a)
		if !bits.IsSubset(a, p) {
			st.Unreachable = true
		}
	}
	// The scalar walker flags unreachable per (SLC) subset test; the batch
	// kernels report the same aggregate. For subset-producing encoders it
	// is always false; for Exact it mirrors the needs-erase signal.
	return st
}

func checkSpanEqual(t *testing.T, name string, enc BatchEncoder, prev, exact []byte, w bits.Width) {
	t.Helper()
	gotBuf := make([]byte, len(exact))
	wantBuf := make([]byte, len(exact))
	got := enc.EncodeSlice(prev, exact, gotBuf, w)
	want := scalarEncodeSpan(t, enc, prev, exact, wantBuf, w)
	for i := range wantBuf {
		if gotBuf[i] != wantBuf[i] {
			p := bits.LoadLE(prev[i/w.Bytes()*w.Bytes():], w)
			e := bits.LoadLE(exact[i/w.Bytes()*w.Bytes():], w)
			t.Fatalf("%s/%v: output byte %d: kernel %#x, scalar %#x (value prev=%#x exact=%#x)",
				name, w, i, gotBuf[i], wantBuf[i], p, e)
		}
	}
	if got != want {
		t.Fatalf("%s/%v: stats diverge: kernel %+v, scalar %+v", name, w, got, want)
	}
}

// TestKernelExhaustiveW8 proves the byte LUT and the break-position chain
// equal the scalar encoders for EVERY 8-bit (previous, exact) pair, every
// window size, plus OneBit and Exact.
func TestKernelExhaustiveW8(t *testing.T) {
	encoders := []BatchEncoder{OneBit{}, Exact{}}
	for n := 1; n <= MaxN; n++ {
		encoders = append(encoders, MustNBit(n))
	}
	prev := make([]byte, 256)
	exact := make([]byte, 256)
	for _, enc := range encoders {
		for p := 0; p < 256; p++ {
			for e := range exact {
				prev[e] = byte(p)
				exact[e] = byte(e)
			}
			checkSpanEqual(t, enc.Name(), enc, prev, exact, bits.W8)
		}
	}
}

// kernelBoundaryVectors are crafted 32-bit cases where the minimax
// lookahead window straddles byte boundaries — the cases a naive per-byte
// LUT gets wrong (DESIGN.md §9).
var kernelBoundaryVectors = [][2]uint32{
	{0x0000FF00, 0x000100FF}, // undershoot exactly at a byte boundary
	{0x00FF00FF, 0x0100FF00},
	{0xFFFEFFFE, 0x00010001}, // wanted bits blocked at bits 0 and 16
	{0xFF00FF00, 0x00FF00FF},
	{0x80808080, 0x7F7F7F7F},
	{0x01FE01FE, 0x01010101},
	{0xFEFFFFFF, 0x01000000}, // window hangs below bit 24
	{0x00FFFF00, 0x0000FFFF},
	{0x7FFFFFFF, 0x80000000}, // MSB undershoot: result is previous
	{0xAAAAAAAA, 0x55555555},
	{0x55555555, 0xAAAAAAAA},
	{0xFFFFFF00, 0x000001FF}, // overshoot decision fed by lower byte
}

// TestKernelBoundaryVectors pins the crafted cross-byte cases for every
// window size at 16 and 32 bits.
func TestKernelBoundaryVectors(t *testing.T) {
	for n := 1; n <= MaxN; n++ {
		enc := MustNBit(n)
		for _, v := range kernelBoundaryVectors {
			for _, w := range []bits.Width{bits.W16, bits.W32} {
				prev := make([]byte, 4)
				exact := make([]byte, 4)
				bits.StoreLE(prev, v[0]&w.Mask(), bits.W32)
				bits.StoreLE(exact, v[1]&w.Mask(), bits.W32)
				checkSpanEqual(t, enc.Name(), enc, prev, exact, w)
			}
		}
	}
}

// TestKernelRandomWide drives random multi-value spans through every batch
// encoder at every width, including spans dominated by reachable values so
// the 8-byte bulk-skip path interleaves with the per-value path.
func TestKernelRandomWide(t *testing.T) {
	rng := xrand.New(0xEC0DE)
	encoders := []BatchEncoder{OneBit{}, Exact{}}
	for n := 1; n <= MaxN; n++ {
		encoders = append(encoders, MustNBit(n))
	}
	const span = 64
	prev := make([]byte, span)
	exact := make([]byte, span)
	for round := 0; round < 400; round++ {
		for i := range prev {
			prev[i] = rng.Byte()
			switch round % 4 {
			case 0: // independent random data
				exact[i] = rng.Byte()
			case 1: // mostly reachable: exercise the bulk-skip fast path
				exact[i] = prev[i] &^ byte(rng.Intn(4))
			case 2: // near-neighbour drift (the sensor workloads)
				exact[i] = byte(int(prev[i]) + rng.Intn(5) - 2)
			default: // freshly erased page
				prev[i] = 0xFF
				exact[i] = rng.Byte()
			}
		}
		for _, enc := range encoders {
			for _, w := range []bits.Width{bits.W8, bits.W16, bits.W32} {
				checkSpanEqual(t, enc.Name(), enc, prev, exact, w)
			}
		}
	}
}

// TestKernelIdentityAndReachability spot-checks the two structural
// invariants the controller relies on: subset outputs (never need an
// erase) and identity on reachable exact values.
func TestKernelIdentityAndReachability(t *testing.T) {
	rng := xrand.New(7)
	for n := 1; n <= MaxN; n++ {
		enc := MustNBit(n)
		for i := 0; i < 2000; i++ {
			p, e := rng.Uint32(), rng.Uint32()
			for _, w := range []bits.Width{bits.W8, bits.W16, bits.W32} {
				pm, em := p&w.Mask(), e&w.Mask()
				var pb, eb, ab [4]byte
				bits.StoreLE(pb[:], pm, bits.W32)
				bits.StoreLE(eb[:], em, bits.W32)
				st := enc.EncodeSlice(pb[:w.Bytes()], eb[:w.Bytes()], ab[:w.Bytes()], w)
				a := bits.LoadLE(ab[:], w)
				if !bits.IsSubset(a, pm) {
					t.Fatalf("n=%d %v: EncodeSlice(%#x, %#x) = %#x not a subset of previous", n, w, pm, em, a)
				}
				if bits.IsSubset(em, pm) && a != em {
					t.Fatalf("n=%d %v: exact %#x reachable from %#x but got %#x", n, w, em, pm, a)
				}
				if st.Unreachable {
					t.Fatalf("n=%d %v: subset kernel reported unreachable", n, w)
				}
			}
		}
	}
}

// TestKernelStatsAgainstTracker checks the in-kernel sums against an
// ErrorTracker fed the same pairs, including MaxAbs (the per-value
// fallback signal) and the approximated-value count.
func TestKernelStatsAgainstTracker(t *testing.T) {
	rng := xrand.New(0x57A7)
	enc := MustNBit(2)
	prev := make([]byte, 128)
	exact := make([]byte, 128)
	approx := make([]byte, 128)
	for round := 0; round < 50; round++ {
		for i := range prev {
			prev[i], exact[i] = rng.Byte(), rng.Byte()
		}
		for _, w := range []bits.Width{bits.W8, bits.W16, bits.W32} {
			st := enc.EncodeSlice(prev, exact, approx, w)
			var tr ErrorTracker
			var approximated uint64
			var maxAbs uint32
			for i := 0; i+w.Bytes() <= len(exact); i += w.Bytes() {
				e := bits.LoadLE(exact[i:], w)
				a := bits.LoadLE(approx[i:], w)
				tr.Add(e, a)
				if a != e {
					approximated++
				}
				if d := bits.AbsDiff(e, a); d > maxAbs {
					maxAbs = d
				}
			}
			if st.SumAbs != tr.SumAbs() || st.Count != uint64(tr.Count()) ||
				st.Approximated != approximated || st.MaxAbs != maxAbs {
				t.Fatalf("%v: kernel stats %+v disagree with tracker (sumAbs %d count %d approx %d max %d)",
					w, st, tr.SumAbs(), tr.Count(), approximated, maxAbs)
			}
			var tr2 ErrorTracker
			tr2.AddBatch(st.Count, st.SumAbs, st.SumSq)
			if tr2.MAE() != tr.MAE() || tr2.MSE() != tr.MSE() {
				t.Fatalf("%v: AddBatch tracker diverges: MAE %v vs %v, MSE %v vs %v",
					w, tr2.MAE(), tr.MAE(), tr2.MSE(), tr.MSE())
			}
		}
	}
}

// TestEncodeSliceZeroAlloc pins the zero-allocation guarantee of the batch
// kernels: the commit hot path must not allocate per page.
func TestEncodeSliceZeroAlloc(t *testing.T) {
	rng := xrand.New(3)
	prev := make([]byte, 256)
	exact := make([]byte, 256)
	approx := make([]byte, 256)
	for i := range prev {
		prev[i], exact[i] = rng.Byte(), rng.Byte()
	}
	encoders := []BatchEncoder{
		OneBit{}, Exact{}, MustNBit(1), MustNBit(2), MustNBit(8),
		MustNCell(1), MustNCell(2), MustNCell(4),
	}
	for _, enc := range encoders {
		for _, w := range []bits.Width{bits.W8, bits.W16, bits.W32} {
			enc.EncodeSlice(prev, exact, approx, w) // derive any lazy LUT outside the measurement
			allocs := testing.AllocsPerRun(100, func() {
				enc.EncodeSlice(prev, exact, approx, w)
			})
			if allocs != 0 {
				t.Errorf("%s/%v: EncodeSlice allocates %.2f objects per call, want 0", enc.Name(), w, allocs)
			}
		}
	}
}

// TestEncodeSegmentsMatchesPerSliceCalls: the group-commit entry point is
// exactly per-segment EncodeSlice — same outputs, same per-segment stats,
// independent of batch assembly.
func TestEncodeSegmentsMatchesPerSliceCalls(t *testing.T) {
	rng := xrand.New(0x5E65)
	encoders := []BatchEncoder{Exact{}, OneBit{}, MustNBit(2), MustNBit(4), MustNCell(2)}
	for _, enc := range encoders {
		for _, w := range []bits.Width{bits.W8, bits.W16, bits.W32} {
			const nseg = 5
			segs := make([]Segment, nseg)
			want := make([][]byte, nseg)
			wantStats := make([]BatchStats, nseg)
			for i := range segs {
				n := (1 + rng.Intn(8)) * w.Bytes() * 4
				prev := make([]byte, n)
				exact := make([]byte, n)
				for j := 0; j < n; j++ {
					prev[j] = rng.Byte()
					exact[j] = prev[j] & rng.Byte() // mostly reachable
					if rng.Intn(4) == 0 {
						exact[j] = rng.Byte()
					}
				}
				segs[i] = Segment{Prev: prev, Exact: exact, Approx: make([]byte, n)}
				want[i] = make([]byte, n)
				wantStats[i] = enc.EncodeSlice(prev, exact, want[i], w)
			}
			got := make([]BatchStats, nseg)
			EncodeSegments(enc, segs, w, got)
			for i := range segs {
				if !bytesEqual(segs[i].Approx, want[i]) {
					t.Errorf("%s w%d segment %d: output differs", enc.Name(), int(w), i)
				}
				if got[i] != wantStats[i] {
					t.Errorf("%s w%d segment %d: stats %+v != %+v", enc.Name(), int(w), i, got[i], wantStats[i])
				}
			}
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
