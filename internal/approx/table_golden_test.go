package approx

import (
	"hash/crc32"
	"testing"
)

// Golden vectors pinning the derived minimax truth tables for every window
// size the hardware supports. The tables are device-visible state: an NBit
// encoder's output is a pure function of its table, so a regeneration bug
// in DeriveTable would silently change every approximate value written to
// flash. Any intentional change to the derivation must update these
// constants — and justify why stored data written by the old tables is
// still readable as intended.
//
// Fingerprint: the overshoot column packed LSB-first into bytes, CRC32
// (IEEE). Entries and ones pin the table geometry and decision count.
var goldenTables = []struct {
	n       int
	entries int
	ones    int
	crc     uint32
}{
	{1, 1, 0, 0xD202EF8D},
	{2, 4, 1, 0xD56F2B94},
	{3, 16, 4, 0x66DB5355},
	{4, 64, 16, 0xD531CCBA},
	{5, 256, 64, 0xE758CB89},
	{6, 1024, 256, 0x98A97A56},
	{7, 4096, 1024, 0x54718636},
	{8, 16384, 4096, 0x47A5F2BF},
}

func TestTableGoldenVectors(t *testing.T) {
	for _, g := range goldenTables {
		tab := DeriveTable(g.n)
		if len(tab.overshoot) != g.entries {
			t.Errorf("n=%d: %d entries, golden has %d", g.n, len(tab.overshoot), g.entries)
			continue
		}
		packed := make([]byte, (len(tab.overshoot)+7)/8)
		ones := 0
		for i, v := range tab.overshoot {
			if v {
				packed[i/8] |= 1 << uint(i%8)
				ones++
			}
		}
		if ones != g.ones {
			t.Errorf("n=%d: %d overshoot entries, golden has %d", g.n, ones, g.ones)
		}
		if crc := crc32.ChecksumIEEE(packed); crc != g.crc {
			t.Errorf("n=%d: table fingerprint %08X, golden is %08X — the derivation changed device-visible output", g.n, crc, g.crc)
		}
	}
}

// TestTableGoldenSpotVectors pins individual decisions in human-readable
// form so a fingerprint mismatch has a diagnosable counterpart. The n=2
// entries are the paper's Table II.
func TestTableGoldenSpotVectors(t *testing.T) {
	cases := []struct {
		n          int
		eLow, pLow uint32
		overshoot  bool
	}{
		// n=2 (Table II rows 3–6): overshoot only when the lookahead
		// exact bit is wanted but not settable.
		{2, 0, 0, false},
		{2, 0, 1, false},
		{2, 1, 0, true},
		{2, 1, 1, false},
		// n=3: overshoot exactly when more than half the remaining range
		// is unrecoverable below.
		{3, 0b11, 0b00, true},
		{3, 0b11, 0b01, true},
		{3, 0b11, 0b11, false},
		{3, 0b10, 0b00, true},
		{3, 0b10, 0b01, false}, // greedy recovers 0b01; tight worst case ties, ties stay tight
		{3, 0b10, 0b10, false},
		{3, 0b01, 0b00, false},
		{3, 0b00, 0b00, false},
		// n=8: the extreme corners.
		{8, 0x7F, 0x00, true},
		{8, 0x7F, 0x7F, false},
		{8, 0x00, 0x00, false},
		{8, 0x40, 0x00, true},
		{8, 0x40, 0x3F, false}, // greedy recovers 0x3F below; no need to overshoot
	}
	for _, c := range cases {
		tab := DeriveTable(c.n)
		m := c.n - 1
		got := tab.overshoot[c.eLow<<uint(m)|c.pLow]
		if got != c.overshoot {
			t.Errorf("n=%d eLow=%#b pLow=%#b: overshoot=%v, golden says %v", c.n, c.eLow, c.pLow, got, c.overshoot)
		}
	}
}
