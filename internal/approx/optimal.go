package approx

import "github.com/flipbit-sim/flipbit/internal/bits"

// OptimalBrute is the paper's baseline approximation algorithm (§III-A1):
// it enumerates every bitwise subset of previous — 2^m candidates for m set
// bits — and returns the one minimising |exact - approx|. It exists to
// validate Optimal and to demonstrate why the paper rejects this approach
// (exponential cost); do not use it on 32-bit values with many set bits.
type OptimalBrute struct{}

// Approximate implements Encoder. Ties between an under- and an
// over-approximation of equal error resolve to the smaller value; Optimal
// applies the same rule so the two encoders agree bit-for-bit.
func (OptimalBrute) Approximate(previous, exact uint32, w bits.Width) uint32 {
	previous &= w.Mask()
	exact &= w.Mask()
	best := uint32(0)
	bestErr := bits.AbsDiff(exact, 0)
	// Iterate subsets of previous in decreasing order, ending at 0.
	for sub := previous; sub != 0; sub = (sub - 1) & previous {
		err := bits.AbsDiff(exact, sub)
		if err < bestErr || (err == bestErr && sub < best) {
			best, bestErr = sub, err
		}
	}
	return best
}

// Name implements Encoder.
func (OptimalBrute) Name() string { return "optimal-brute" }

// Optimal computes the same minimum-error erase-free value as OptimalBrute
// in O(width) time. It considers the best under-approximation (which is
// exactly what Algorithm 1 produces) and the best over-approximation, and
// keeps whichever is closer to exact (ties go to the smaller value).
type Optimal struct{}

// Approximate implements Encoder.
func (Optimal) Approximate(previous, exact uint32, w bits.Width) uint32 {
	previous &= w.Mask()
	exact &= w.Mask()

	below := OneBit{}.Approximate(previous, exact, w)
	above, ok := minSupersetAbove(previous, exact, w)
	if !ok {
		return below
	}
	errBelow := exact - below
	errAbove := above - exact
	if errAbove < errBelow {
		return above
	}
	return below // ties resolve below: below <= exact <= above
}

// Name implements Encoder.
func (Optimal) Name() string { return "optimal" }

// minSupersetAbove returns the smallest value v >= exact with v a subset of
// previous, and whether one exists.
//
// If exact itself is a subset of previous it is the answer. Otherwise v must
// first differ from exact at some bit j where v has 1 and exact has 0; for v
// to be minimal all bits below j are 0, bits above j must equal exact's
// (which requires every set exact bit above j to be present in previous),
// and previous[j] must be 1. Scanning j from the LSB upward finds the
// smallest such v.
func minSupersetAbove(previous, exact uint32, w bits.Width) (uint32, bool) {
	if bits.IsSubset(exact, previous) {
		return exact, true
	}
	for j := 0; j < int(w); j++ {
		if bits.Bit(previous, j) == 0 || bits.Bit(exact, j) == 1 {
			continue
		}
		hiMask := ^(uint32(1)<<uint(j+1) - 1) & w.Mask()
		hi := exact & hiMask
		if !bits.IsSubset(hi, previous) {
			continue // a higher exact bit is unrepresentable
		}
		return hi | 1<<uint(j), true
	}
	return 0, false
}
