// Batch encode kernel for the MLC n-cell algorithm (§VI), compiled with the
// same find-first-break strategy as kernel.go but over per-cell-level
// geometry.
//
// The bit-chain kernel cannot be reused: its undershoot test (exact &^
// previous), its minimax table, and its tails all reason about *bits*,
// while MLC reachability is per two-bit *cell* — cell 10 → 01 is a legal
// program even though it sets a bit. Re-deriving the chain per cell (see
// DESIGN.md §14):
//
//   - Scanning MSC→LSC, output cells equal exact cells until the first
//     break: an undershoot (exact's cell level above previous's; the x > p
//     arm of NCell.Approximate) or a minimax overshoot (overshootCell
//     fires on a cell with x < p). After an undershoot every lower output
//     cell saturates to previous; after an overshoot the break cell holds
//     x+1 and every lower cell is 0.
//   - Per-cell comparisons vectorise: cellGT computes "cell of a > cell of
//     b" for every cell of a word in a handful of mask operations, leaving
//     one marker bit per cell. The highest undershoot cell bounds how far
//     overshoot candidates need probing, exactly as in the bit kernel.
//   - Probes hit a radix-4 minimax table indexed by the 2(n-1) lookahead
//     bits of exact and previous — (4^(n-1))² entries, at most 4 KiB for
//     the largest supported window (n = 4).
//   - n = 1 has no overshoot and compiles to pure mask arithmetic. Unlike
//     the bit chain, the n = 2 cell table does NOT degenerate to a single
//     mask expression (it fires on two distinct (e', p') shapes), so every
//     n ≥ 2 probes the derived table.
//   - For 8-bit values the chain folds into a lazily derived 65536-entry
//     LUT indexed by (prevByte, exactByte), and reachable 8-byte runs are
//     bulk-skipped with one word-wise cellGT64 test — which skips strictly
//     more than the SLC subset test, since cell-level decreases that set
//     bits (10 → 01) are reachable here.
//
// The kernel is bit-identical to the scalar NCell on every input;
// mlckernel_test.go proves it exhaustively for 8-bit values and by fuzzing
// (FuzzNCellKernelMatchesScalar) for 16/32-bit values.

package approx

import (
	"encoding/binary"
	mathbits "math/bits"
	"sync"

	"github.com/flipbit-sim/flipbit/internal/bits"
)

// Compile-time check: the MLC encoder batches too.
var _ BatchEncoder = (*NCell)(nil)

// SWAR masks marking the high and low bit of every two-bit cell.
const (
	cellHi32 = 0xAAAAAAAA
	cellLo32 = 0x55555555
	cellHi64 = 0xAAAAAAAAAAAAAAAA
	cellLo64 = 0x5555555555555555
)

// cellGT compares all 2-bit cells of a and b at once: the result has the
// cell's high marker bit (position 2c+1) set exactly where cell c of a is
// greater than cell c of b. A cell is greater when its high bit wins, or
// the high bits tie and its low bit wins.
func cellGT(a, b uint32) uint32 {
	return a&^b&cellHi32 | ^(a^b)&cellHi32&(a&^b&cellLo32<<1)
}

// cellGT64 is cellGT over a 64-bit word: one test covers an 8-byte run.
func cellGT64(a, b uint64) uint64 {
	return a&^b&cellHi64 | ^(a^b)&cellHi64&(a&^b&cellLo64<<1)
}

// ncellKernel is the compiled batch form of the n-cell algorithm.
type ncellKernel struct {
	n, m    int
	lowMask uint32 // 2m low bits: the lookahead cells of a window
	fire    []bool // radix-4 minimax table, indexed eLow<<(2m) | pLow

	// byteOnce/byteLUT is the 8-bit-value fast path, exactly like the bit
	// kernel's: approx byte indexed by prevByte<<8 | exactByte.
	byteOnce sync.Once
	byteLUT  []byte
}

// cellKernelCache holds the compiled cell kernels, one per window size.
var cellKernelCache [MaxN/CellBits + 1]struct {
	once sync.Once
	k    *ncellKernel
}

// cachedCellKernel returns the shared compiled kernel for an n-cell window.
func cachedCellKernel(n int) *ncellKernel {
	c := &cellKernelCache[n]
	c.once.Do(func() {
		m := n - 1
		c.k = &ncellKernel{
			n:       n,
			m:       m,
			lowMask: uint32(1)<<uint(CellBits*m) - 1,
			fire:    deriveCellTable(n),
		}
	})
	return c.k
}

// deriveCellTable builds the radix-4 minimax table for an n-cell window:
// DeriveTable's worst-case comparison with the lookahead reading whole cell
// levels instead of bits. Overshoot (write x+1, zero the rest) risks at
// most (4^m − eLow) low-units; staying tight risks (eLow − g + 1) where g
// is what the greedy clamp can still recover in-window. Ties favour tight.
func deriveCellTable(n int) []bool {
	m := n - 1
	span := uint32(1) << uint(CellBits*m) // 4^m
	fire := make([]bool, uint64(span)*uint64(span))
	for eLow := uint32(0); eLow < span; eLow++ {
		for pLow := uint32(0); pLow < span; pLow++ {
			g := cellGreedyBelow(pLow, eLow, m)
			fire[eLow<<uint(CellBits*m)|pLow] = span-eLow < eLow-g+1
		}
	}
	return fire
}

// cellGreedyBelow computes the level value the greedy clamp recovers from
// the m lookahead cells: each cell takes its exact level when reachable;
// the first unreachable cell clamps to previous and saturates the rest to
// previous (the setOnes carry of NCell.Approximate restricted to the
// window). Mirrors greedyBelow with radix-4 digits.
func cellGreedyBelow(pLow, eLow uint32, m int) uint32 {
	var g uint32
	setOnes := false
	for i := m - 1; i >= 0; i-- {
		p := pLow >> uint(CellBits*i) & (cellLevels - 1)
		x := eLow >> uint(CellBits*i) & (cellLevels - 1)
		out := x
		if setOnes || x > p {
			setOnes = true
			out = p
		}
		g = g<<CellBits | out
	}
	return g
}

// byteTable derives (once) and returns the 65536-entry per-byte LUT.
func (k *ncellKernel) byteTable() []byte {
	k.byteOnce.Do(func() {
		lut := make([]byte, 1<<16)
		for p := uint32(0); p < 256; p++ {
			for e := uint32(0); e < 256; e++ {
				lut[p<<8|e] = byte(k.value(p, e))
			}
		}
		k.byteLUT = lut
	})
	return k.byteLUT
}

// value encodes one value through the compiled cell-break chain. Inputs
// must already be masked to the logical width; lookahead cells below cell 0
// read as zero through the shifts, matching the scalar overshootCell.
func (k *ncellKernel) value(p, e uint32) uint32 {
	u := cellGT(e, p)
	if u == 0 {
		// Every cell reachable: the greedy walk takes x everywhere, and no
		// overshoot can fire (g == eRest in every window makes the tight
		// risk exactly 1 while the overshoot risk is at least 1).
		return e
	}
	// Highest undershoot cell: u marks cell c at bit 2c+1.
	hU := (mathbits.Len32(u) - 2) / CellBits
	// Overshoot candidates (cells where previous exceeds exact) strictly
	// above the undershoot; below it the undershoot already broke the
	// chain. A shift count of 32 (hU == 15) clears every candidate.
	cand := cellGT(p, e) &^ (uint32(1)<<uint(CellBits*hU+2) - 1)
	m := k.m
	for cand != 0 {
		i := (mathbits.Len32(cand) - 2) / CellBits
		var eLow, pLow uint32
		if i >= m {
			sh := uint(CellBits * (i - m))
			eLow = e >> sh & k.lowMask
			pLow = p >> sh & k.lowMask
		} else {
			sh := uint(CellBits * (m - i))
			eLow = e << sh & k.lowMask
			pLow = p << sh & k.lowMask
		}
		if k.fire[eLow<<uint(CellBits*m)|pLow] {
			// Minimax overshoot at cell i: exact above, level x+1 at i,
			// zeros below. x < p ≤ 3, so x+1 stays within the cell.
			x := e >> uint(CellBits*i) & (cellLevels - 1)
			return e&^(uint32(1)<<uint(CellBits*(i+1))-1) | (x+1)<<uint(CellBits*i)
		}
		cand &^= uint32(1) << uint(CellBits*i+1)
	}
	// Undershoot at hU: exact above, previous at and below (the saturated
	// setOnes tail writes previous's level into every remaining cell).
	low := uint32(1)<<uint(CellBits*(hU+1)) - 1
	return e&^low | p&low
}

// ncell1Value is the compiled n = 1 chain: no lookahead, no overshoot —
// clamp at the highest unreachable cell and saturate below.
func ncell1Value(p, e uint32) uint32 {
	u := cellGT(e, p)
	if u == 0 {
		return e
	}
	hU := (mathbits.Len32(u) - 2) / CellBits
	low := uint32(1)<<uint(CellBits*(hU+1)) - 1
	return e&^low | p&low
}

// encodeSpanCell is the MLC slice walker: like encodeSpan but with the
// cell-wise reachability test for the 8-byte bulk skip, which also skips
// runs whose cells only *decrease* while setting bits (10 → 01).
func encodeSpanCell(prev, exact, approx []byte, w bits.Width, fn func(p, e uint32) uint32) BatchStats {
	var st BatchStats
	vb := w.Bytes()
	end := len(exact) / vb * vb
	perChunk := uint64(8 / vb)
	i := 0
	for i < end {
		if i+8 <= end &&
			cellGT64(binary.LittleEndian.Uint64(exact[i:]), binary.LittleEndian.Uint64(prev[i:])) == 0 {
			copy(approx[i:i+8], exact[i:i+8])
			st.Count += perChunk
			i += 8
			continue
		}
		p := bits.LoadLE(prev[i:], w)
		e := bits.LoadLE(exact[i:], w)
		a := fn(p, e)
		bits.StoreLE(approx[i:], a, w)
		st.add(e, a)
		i += vb
	}
	return st
}

// encodeSpanCellW8 is the 8-bit-value walker: one byteLUT hit per value.
// It walks whole 8-byte chunks — one cellGT64 verdict decides between a
// bulk copy and eight LUT hits — so change-dense spans pay the word-wise
// test once per chunk, not once per byte.
func encodeSpanCellW8(prev, exact, approx []byte, lut []byte) BatchStats {
	var st BatchStats
	i := 0
	for ; i+8 <= len(exact); i += 8 {
		if cellGT64(binary.LittleEndian.Uint64(exact[i:]), binary.LittleEndian.Uint64(prev[i:])) == 0 {
			copy(approx[i:i+8], exact[i:i+8])
			st.Count += 8
			continue
		}
		for j := i; j < i+8; j++ {
			e := exact[j]
			a := lut[uint32(prev[j])<<8|uint32(e)]
			approx[j] = a
			st.add(uint32(e), uint32(a))
		}
	}
	for ; i < len(exact); i++ {
		e := exact[i]
		a := lut[uint32(prev[i])<<8|uint32(e)]
		approx[i] = a
		st.add(uint32(e), uint32(a))
	}
	return st
}

// EncodeSlice implements BatchEncoder: the batch form of the §VI n-cell
// algorithm. Outputs are reachable from prev under MLC semantics by
// construction (every cell level only decreases), so Unreachable is always
// false — matching the per-byte verdict the scalar controller path reaches.
func (e *NCell) EncodeSlice(prev, exact, approx []byte, w bits.Width) BatchStats {
	k := e.kern
	if w == bits.W8 {
		return encodeSpanCellW8(prev, exact, approx, k.byteTable())
	}
	if e.n == 1 {
		return encodeSpanCell(prev, exact, approx, w, ncell1Value)
	}
	return encodeSpanCell(prev, exact, approx, w, k.value)
}
