package approx

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/bits"
)

// Fuzz targets for the approximation encoders, checked against the
// brute-force optimal oracle. The invariants:
//
//  1. Reachability: every encoder's result is a bitwise subset of previous
//     — writable with 1→0 transitions only, never needing an erase.
//  2. Identity: when exact is itself reachable the result IS exact.
//  3. Oracle bound: no encoder beats Optimal, and Optimal agrees with the
//     exponential subset enumeration bit-for-bit.
//  4. Window bound: an encoder's result diverges from exact only below the
//     first blocked bit, so its error is < 2^(j+1) for the highest
//     differing bit j — the table-derived worst case.
//
// CI runs each target briefly (see .github/workflows/ci.yml); locally:
//
//	go test ./internal/approx -run=^$ -fuzz=FuzzNBitInvariants

// fuzzWidth derives a fuzzed width: W8 or W16. W32 is excluded because the
// brute oracle enumerates 2^popcount(previous) subsets.
func fuzzWidth(sel byte) bits.Width {
	if sel&1 == 0 {
		return bits.W8
	}
	return bits.W16
}

// checkInvariants asserts invariants 1, 2 and 4 for one encoder result.
func checkInvariants(t *testing.T, name string, previous, exact, a uint32, w bits.Width) {
	t.Helper()
	if !bits.IsSubset(a, previous) {
		t.Fatalf("%s(%#x, %#x, %v) = %#x: not reachable by 1→0 transitions", name, previous, exact, w, a)
	}
	if bits.IsSubset(exact, previous) && a != exact {
		t.Fatalf("%s(%#x, %#x, %v) = %#x: exact was reachable but not returned", name, previous, exact, w, a)
	}
	if a != exact {
		j := -1
		for i := int(w) - 1; i >= 0; i-- {
			if bits.Bit(a, i) != bits.Bit(exact, i) {
				j = i
				break
			}
		}
		if err := uint64(bits.AbsDiff(exact, a)); err >= 1<<uint(j+1) {
			t.Fatalf("%s(%#x, %#x, %v) = %#x: error %d exceeds the 2^%d window bound",
				name, previous, exact, w, a, err, j+1)
		}
	}
}

// FuzzOneBitInvariants checks Algorithm 1 against the under-approximation
// oracle: OneBit must return the LARGEST subset of previous that is ≤ exact
// (the greedy result is provably the best under-approximation).
func FuzzOneBitInvariants(f *testing.F) {
	f.Add(uint32(0b0110), uint32(0b1001), byte(0))
	f.Add(uint32(0xFFFF), uint32(0x1234), byte(1))
	f.Add(uint32(0), uint32(0xFF), byte(0))
	f.Fuzz(func(t *testing.T, previous, exact uint32, sel byte) {
		w := fuzzWidth(sel)
		previous &= w.Mask()
		exact &= w.Mask()
		a := OneBit{}.Approximate(previous, exact, w)
		checkInvariants(t, "OneBit", previous, exact, a, w)
		if a > exact {
			t.Fatalf("OneBit(%#x, %#x) = %#x overshoots exact", previous, exact, a)
		}
		// Brute oracle: best subset not exceeding exact.
		best := uint32(0)
		for sub := previous; sub != 0; sub = (sub - 1) & previous {
			if sub <= exact && sub > best {
				best = sub
			}
		}
		if a != best {
			t.Fatalf("OneBit(%#x, %#x) = %#x, best under-approximation is %#x", previous, exact, a, best)
		}
	})
}

// FuzzNBitInvariants checks Algorithm 2 for every window size: reachability,
// identity, the window error bound, error never better than Optimal, and
// NBit(1) ≡ OneBit.
func FuzzNBitInvariants(f *testing.F) {
	f.Add(uint32(0b10101100), uint32(0b01010011), byte(2), byte(0))
	f.Add(uint32(0xF0F0), uint32(0x0F0F), byte(8), byte(1))
	f.Add(uint32(0xFFFF), uint32(0x8000), byte(4), byte(1))
	f.Fuzz(func(t *testing.T, previous, exact uint32, n, sel byte) {
		w := fuzzWidth(sel)
		previous &= w.Mask()
		exact &= w.Mask()
		nn := int(n)%MaxN + 1
		e := MustNBit(nn)
		a := e.Approximate(previous, exact, w)
		checkInvariants(t, e.Name(), previous, exact, a, w)

		opt := Optimal{}.Approximate(previous, exact, w)
		if bits.AbsDiff(exact, a) < bits.AbsDiff(exact, opt) {
			t.Fatalf("NBit(%d)(%#x, %#x) error %d beats the optimal %d — oracle broken",
				nn, previous, exact, bits.AbsDiff(exact, a), bits.AbsDiff(exact, opt))
		}
		if nn == 1 {
			if ob := (OneBit{}).Approximate(previous, exact, w); a != ob {
				t.Fatalf("NBit(1)(%#x, %#x) = %#x, OneBit = %#x", previous, exact, a, ob)
			}
		}
	})
}

// FuzzBatchKernelMatchesScalar differentially fuzzes the batch kernels
// (kernel.go) against the scalar encoders they compile: a multi-value span
// is encoded once through EncodeSlice and once value-by-value through
// Approximate, and both the output bytes and the in-kernel statistics must
// match exactly. Values are fuzzed in adjacent pairs so the W16/W32 cases
// exercise minimax windows and carries that straddle byte boundaries —
// exactly what a naive per-byte LUT would get wrong.
func FuzzBatchKernelMatchesScalar(f *testing.F) {
	f.Add(uint32(0x0000FF00), uint32(0x000100FF), uint32(0xFF00FF00), uint32(0x00FF00FF), byte(2), byte(2))
	f.Add(uint32(0x7FFFFFFF), uint32(0x80000000), uint32(0xAAAAAAAA), uint32(0x55555555), byte(8), byte(2))
	f.Add(uint32(0xFFFFFFFF), uint32(0x12345678), uint32(0), uint32(0xFF), byte(4), byte(1))
	f.Add(uint32(0xFFFEFFFE), uint32(0x00010001), uint32(0x01FE01FE), uint32(0x01010101), byte(3), byte(0))
	f.Fuzz(func(t *testing.T, p0, e0, p1, e1 uint32, n, sel byte) {
		var w bits.Width
		switch sel % 3 {
		case 0:
			w = bits.W8
		case 1:
			w = bits.W16
		default:
			w = bits.W32
		}
		encoders := []BatchEncoder{OneBit{}, Exact{}, MustNBit(int(n)%MaxN + 1)}
		var prev, exact, kernelOut, scalarOut [8]byte
		bits.StoreLE(prev[0:], p0, bits.W32)
		bits.StoreLE(prev[4:], p1, bits.W32)
		bits.StoreLE(exact[0:], e0, bits.W32)
		bits.StoreLE(exact[4:], e1, bits.W32)
		vb := w.Bytes()
		for _, enc := range encoders {
			kst := enc.EncodeSlice(prev[:], exact[:], kernelOut[:], w)
			var sst BatchStats
			for i := 0; i+vb <= len(exact); i += vb {
				pv := bits.LoadLE(prev[i:], w)
				ev := bits.LoadLE(exact[i:], w)
				a := enc.Approximate(pv, ev, w)
				bits.StoreLE(scalarOut[i:], a, w)
				sst.add(ev, a)
				if !bits.IsSubset(a, pv) {
					sst.Unreachable = true
				}
			}
			if kernelOut != scalarOut {
				t.Fatalf("%s/%v: kernel % x != scalar % x (prev % x exact % x)",
					enc.Name(), w, kernelOut, scalarOut, prev, exact)
			}
			if kst != sst {
				t.Fatalf("%s/%v: kernel stats %+v != scalar stats %+v (prev % x exact % x)",
					enc.Name(), w, kst, sst, prev, exact)
			}
		}
	})
}

// FuzzNCellKernelMatchesScalar differentially fuzzes the MLC batch kernel
// (mlckernel.go) against the scalar NCell walk, mirroring
// FuzzBatchKernelMatchesScalar: the span is encoded once through
// EncodeSlice and once value-by-value through Approximate, and output
// bytes and statistics must match exactly. Adjacent value pairs make the
// W16/W32 cases exercise cell windows that straddle byte boundaries.
func FuzzNCellKernelMatchesScalar(f *testing.F) {
	f.Add(uint32(0x0000AA00), uint32(0x00005500), uint32(0xAAAAAAAA), uint32(0x55555555), byte(2), byte(2))
	f.Add(uint32(0x3FFFFFFF), uint32(0xC0000000), uint32(0x55555555), uint32(0xAAAAAAAA), byte(4), byte(2))
	f.Add(uint32(0xFFFFFFFF), uint32(0x12345678), uint32(0), uint32(0xFF), byte(3), byte(1))
	f.Add(uint32(0xFFFEFFFE), uint32(0x00010001), uint32(0x01FE01FE), uint32(0x01010101), byte(1), byte(0))
	f.Fuzz(func(t *testing.T, p0, e0, p1, e1 uint32, n, sel byte) {
		var w bits.Width
		switch sel % 3 {
		case 0:
			w = bits.W8
		case 1:
			w = bits.W16
		default:
			w = bits.W32
		}
		enc := MustNCell(int(n)%(MaxN/CellBits) + 1)
		var prev, exact, kernelOut, scalarOut [8]byte
		bits.StoreLE(prev[0:], p0, bits.W32)
		bits.StoreLE(prev[4:], p1, bits.W32)
		bits.StoreLE(exact[0:], e0, bits.W32)
		bits.StoreLE(exact[4:], e1, bits.W32)
		vb := w.Bytes()
		kst := enc.EncodeSlice(prev[:], exact[:], kernelOut[:], w)
		var sst BatchStats
		for i := 0; i+vb <= len(exact); i += vb {
			pv := bits.LoadLE(prev[i:], w)
			ev := bits.LoadLE(exact[i:], w)
			a := enc.Approximate(pv, ev, w)
			bits.StoreLE(scalarOut[i:], a, w)
			sst.add(ev, a)
			if cellGT(a, pv) != 0 {
				sst.Unreachable = true
			}
		}
		if kernelOut != scalarOut {
			t.Fatalf("%s/%v: kernel % x != scalar % x (prev % x exact % x)",
				enc.Name(), w, kernelOut, scalarOut, prev, exact)
		}
		if kst != sst {
			t.Fatalf("%s/%v: kernel stats %+v != scalar stats %+v (prev % x exact % x)",
				enc.Name(), w, kst, sst, prev, exact)
		}
	})
}

// FuzzOptimalMatchesBrute checks the O(width) optimal solver against the
// exponential subset enumeration, bit-for-bit including tie-breaks, plus
// the shared invariants.
func FuzzOptimalMatchesBrute(f *testing.F) {
	f.Add(uint32(0b1011), uint32(0b0100), byte(0))
	f.Add(uint32(0xBEEF), uint32(0xF00D), byte(1))
	f.Add(uint32(0x8001), uint32(0x7FFE), byte(1))
	f.Fuzz(func(t *testing.T, previous, exact uint32, sel byte) {
		w := fuzzWidth(sel)
		previous &= w.Mask()
		exact &= w.Mask()
		a := Optimal{}.Approximate(previous, exact, w)
		checkInvariants(t, "Optimal", previous, exact, a, w)
		b := OptimalBrute{}.Approximate(previous, exact, w)
		if a != b {
			t.Fatalf("Optimal(%#x, %#x, %v) = %#x, brute oracle says %#x", previous, exact, w, a, b)
		}
	})
}
