package approx

import "github.com/flipbit-sim/flipbit/internal/bits"

// Table is the precomputed decision table of the n-bit approximation
// algorithm (paper Table II shows the instance for n = 2).
//
// A table answers the only non-trivial case of Algorithm 2: the previous bit
// is 1 (so the output bit is free to be 0 or 1) and the exact bit is 0 (so
// setting it means deliberately overshooting). The decision is made from the
// n-1 lookahead bits of exact and previous below the current position, using
// a minimise-the-maximum-potential-error rule (§III-A3).
type Table struct {
	n int
	// overshoot is indexed by eLow<<(n-1) | pLow, where eLow and pLow are
	// the n-1 lookahead bits of exact and previous. A true entry means
	// "set the output bit to 1 even though exact's bit is 0".
	overshoot []bool
}

// DeriveTable builds the decision table for a window of n bits (the current
// bit plus n-1 lookahead bits), 1 <= n <= MaxN.
//
// Derivation, following §III-A3: let the current bit position carry weight
// 2^m relative to the lowest window bit (m = n-1), and let U denote the
// weight of the first bit *below* the window. Bits below the window are
// unknown: exact may hold anything there, and pessimistically previous holds
// zeros (nothing further is settable).
//
// Overshoot choice (approx[i] = 1, then force all lower bits to 0 via
// setZeros): the worst error is (2^m - eLow)·U, largest when exact's unknown
// low bits are all zero.
//
// Tight choice (approx[i] = 0, continue greedily): the algorithm can still
// recover g = greedy(pLow, eLow) inside the window, and nothing below it, so
// the worst error is (eLow - g + 1)·U - 1, largest when exact's unknown low
// bits are all ones.
//
// Comparing the U coefficients (ties favour the tight choice because of the
// -1 term) gives: overshoot iff 2^m - eLow < eLow - g + 1.
//
// For n = 2 this reproduces the paper's Table II exactly, which is asserted
// by TestDeriveTableMatchesPaperTableII.
func DeriveTable(n int) *Table {
	m := n - 1
	size := 1 << uint(2*m)
	t := &Table{n: n, overshoot: make([]bool, size)}
	for eLow := uint32(0); eLow < 1<<uint(m); eLow++ {
		for pLow := uint32(0); pLow < 1<<uint(m); pLow++ {
			g := greedyBelow(pLow, eLow, m)
			overshoot := (1<<uint(m))-eLow < eLow-g+1
			t.overshoot[eLow<<uint(m)|pLow] = overshoot
		}
	}
	return t
}

// N returns the window size of the table.
func (t *Table) N() int { return t.n }

// Decide computes one iteration of Algorithm 2, i.e. one hardware slice of
// Fig. 6. eWin and pWin are the n-bit windows of exact and previous with the
// current bit in the window's MSB position (zero padded past the LSB, as in
// Fig. 7). It returns the output bit and the propagated flags.
func (t *Table) Decide(eWin, pWin uint32, setOnes, setZeros bool) (bit uint32, outOnes, outZeros bool) {
	m := t.n - 1
	eTop := (eWin >> uint(m)) & 1
	pTop := (pWin >> uint(m)) & 1
	lowMask := uint32(1)<<uint(m) - 1

	switch {
	case pTop == 0:
		// Row 1 of Table II: the cell holds 0; programming cannot set
		// it. If exact wanted a 1 (and we have not already overshot)
		// the result is now strictly below exact: saturate the rest.
		if eTop == 1 && !setZeros {
			setOnes = true
		}
		return 0, setOnes, setZeros
	case setZeros:
		// Already overshot: keep every remaining bit clear.
		return 0, setOnes, setZeros
	case setOnes:
		// Already undershot: set every remaining permitted bit.
		return 1, setOnes, setZeros
	case eTop == 1:
		// Row 2 of Table II: wanted and permitted.
		return 1, setOnes, setZeros
	default:
		// previous allows a 1 that exact does not want: minimax call.
		if t.overshoot[(eWin&lowMask)<<uint(m)|(pWin&lowMask)] {
			return 1, setOnes, true
		}
		return 0, setOnes, setZeros
	}
}

// greedyBelow computes the best m-bit under-approximation of eLow that is a
// subset of pLow — the value Algorithm 1 would recover inside the lookahead
// window assuming nothing below the window is settable.
func greedyBelow(pLow, eLow uint32, m int) uint32 {
	var v uint32
	setOnes := false
	for i := m - 1; i >= 0; i-- {
		switch {
		case bits.Bit(pLow, i) == 1:
			if bits.Bit(eLow, i) == 1 || setOnes {
				v = bits.SetBit(v, i, 1)
			}
		case bits.Bit(eLow, i) == 1:
			setOnes = true
		}
	}
	return v
}

// Row describes one line of the paper-style truth table rendering
// (Table II). X entries in the paper are expanded; see Rows.
type Row struct {
	ExactI, ExactI1, PrevI, PrevI1 string // "0", "1" or "x"
	ApproxI                        string
}

// PaperTableII returns the six rows of Table II exactly as printed in the
// paper (n = 2), generated from the derived table rather than hardcoded.
// The first two rows use wildcards, matching the paper's compaction.
func PaperTableII() []Row {
	t := DeriveTable(2)
	rows := []Row{
		{"x", "x", "0", "x", "0"},
		{"1", "x", "1", "x", "1"},
	}
	// Remaining rows: exact[i]=0, previous[i]=1, enumerated over the
	// lookahead bits exact[i-1], previous[i-1].
	for _, e1 := range []uint32{0, 1} {
		for _, p1 := range []uint32{0, 1} {
			bit, _, _ := t.Decide(e1, 1<<1|p1, false, false)
			rows = append(rows, Row{
				ExactI: "0", ExactI1: digit(e1),
				PrevI: "1", PrevI1: digit(p1),
				ApproxI: digit(bit),
			})
		}
	}
	return rows
}

func digit(b uint32) string {
	if b == 0 {
		return "0"
	}
	return "1"
}
