// Batch encode kernels: the buffer-granular form of the §III-A algorithms.
//
// The scalar encoders walk one bit per iteration, calling Table.Decide 8/16/32
// times per value behind an interface dispatch. The paper's hardware performs
// the same chain in a single combinational pass (Fig. 6/7); this file is the
// software analogue. Each encoder that can be compiled exposes EncodeSlice,
// which encodes a whole buffer span and computes the page error statistics
// in-kernel, so the controller issues one call per page instead of one
// interface call (plus ~2·width table steps) per value.
//
// Compilation strategy, per window size n (see DESIGN.md §9 for the full
// derivation, including why a (carry, prevByte, exactByte)-indexed byte
// transducer is NOT sound for n ≥ 2):
//
//   - The setOnes/setZeros carry chain collapses into a find-first-break
//     formulation: scanning MSB→LSB, output bits equal exact bits until the
//     first *break* — either an undershoot (previous denies a wanted bit;
//     Algorithm 1 line 9) or a minimax overshoot (the Table fires). After an
//     undershoot every lower output bit equals the corresponding previous
//     bit; after an overshoot every lower output bit is 0. Both tails are
//     two mask operations.
//   - Undershoot candidates are one word op (exact &^ previous); the highest
//     one bounds how far overshoot candidates (previous &^ exact) need
//     probing. Probes hit the derived minimax table directly — 4^(n-1)
//     entries, at most 16 KiB for n = 8 — instead of re-deciding per bit.
//   - For n = 1 no overshoot exists and for n = 2 the table degenerates to
//     "next exact bit wanted but not available", so both compile to pure
//     word-parallel mask arithmetic with zero probes.
//   - For 8-bit values the whole chain folds into one lazily derived
//     65536-entry LUT indexed by (prevByte, exactByte): one table hit per
//     value. (Wider values cannot use a per-byte LUT: the minimax lookahead
//     window crosses byte boundaries.)
//   - Spans where exact is already reachable from previous are detected
//     eight bytes at a time (exact &^ previous == 0 over uint64 loads) and
//     copied through without entering the per-value path — the bulk-bitwise
//     trick of Flash-Cosmos/MCFlash applied to the common mostly-erased and
//     rewrite-in-place cases.
//
// Every kernel is bit-identical to its scalar encoder; kernel_test.go proves
// it exhaustively for 8-bit values and by fuzzing for 16/32-bit values
// (FuzzBatchKernelMatchesScalar), including the carry-across-byte-boundary
// cases.

package approx

import (
	"encoding/binary"
	mathbits "math/bits"
	"sync"

	"github.com/flipbit-sim/flipbit/internal/bits"
)

// BatchStats is the accounting EncodeSlice computes in-kernel, mirroring
// exactly what the controller's scalar encode loop accumulates per value:
// the error tracker sums, the approximated-value count, and reachability.
type BatchStats struct {
	Count        uint64 // values encoded
	Approximated uint64 // values where approx != exact
	SumAbs       uint64 // Σ |exact − approx|
	SumSq        uint64 // Σ (exact − approx)²
	MaxAbs       uint32 // max |exact − approx| over the span
	Unreachable  bool   // some output value is not programmable over prev
}

// add folds one (exact, approx) pair into the stats.
func (st *BatchStats) add(exact, approx uint32) {
	d := bits.AbsDiff(exact, approx)
	st.Count++
	st.SumAbs += uint64(d)
	st.SumSq += uint64(d) * uint64(d)
	if d > st.MaxAbs {
		st.MaxAbs = d
	}
	if approx != exact {
		st.Approximated++
	}
}

// BatchEncoder is implemented by encoders whose Algorithm-2 bit chain has
// been compiled into a batch kernel. EncodeSlice encodes the whole span
// prev/exact into approx (all three the same length, a multiple of
// w.Bytes(), values little-endian) and returns the in-kernel statistics.
//
// Reachability in BatchStats.Unreachable is judged under the cell
// semantics the kernel was compiled for: the bit kernels produce bitwise
// subsets (reachable on every cell mode, Unreachable always false), Exact
// reports the SLC word-wise subset test, and the NCell kernel's outputs
// are MLC-reachable by construction. The controller engages a kernel only
// on cell modes where its verdict and outputs are sound — see
// core.kernelEngages — and falls back to the scalar encoders otherwise.
// The scalar path remains the differential-test oracle: EncodeSlice must
// be bit-identical to width-wise calls of Approximate.
type BatchEncoder interface {
	Encoder
	EncodeSlice(prev, exact, approx []byte, w bits.Width) BatchStats
}

// Compile-time interface checks: the three hot-path encoders batch.
var (
	_ BatchEncoder = Exact{}
	_ BatchEncoder = OneBit{}
	_ BatchEncoder = (*NBit)(nil)
)

// kernel is the compiled batch form of the n-bit algorithm.
type kernel struct {
	n, m    int
	lowMask uint32 // m low bits: the lookahead field of a window
	fire    []bool // the minimax table, indexed eLow<<m | pLow

	// byteOnce/byteLUT is the 8-bit-value fast path: approx byte indexed by
	// prevByte<<8 | exactByte. Derived on first W8 use (64 KiB per n).
	byteOnce sync.Once
	byteLUT  []byte
}

// kernelCache holds the compiled kernels, one per window size, derived
// lazily exactly like tableCache.
var kernelCache [MaxN + 1]struct {
	once sync.Once
	k    *kernel
}

// cachedKernel returns the shared compiled kernel for window size n.
func cachedKernel(n int) *kernel {
	c := &kernelCache[n]
	c.once.Do(func() {
		c.k = &kernel{
			n:       n,
			m:       n - 1,
			lowMask: uint32(1)<<uint(n-1) - 1,
			fire:    cachedTable(n).overshoot,
		}
	})
	return c.k
}

// byteTable derives (once) and returns the 65536-entry per-byte LUT.
func (k *kernel) byteTable() []byte {
	k.byteOnce.Do(func() {
		lut := make([]byte, 1<<16)
		for p := uint32(0); p < 256; p++ {
			for e := uint32(0); e < 256; e++ {
				lut[p<<8|e] = byte(k.value(p, e))
			}
		}
		k.byteLUT = lut
	})
	return k.byteLUT
}

// value encodes one value through the compiled break-position chain. Inputs
// must already be masked to the logical width; windows below bit 0 read as
// zero through the shifts, matching the Fig. 7 zero padding.
func (k *kernel) value(p, e uint32) uint32 {
	u := e &^ p
	if u == 0 {
		return e // exact is reachable: identity, and no overshoot can fire
	}
	hU := mathbits.Len32(u) - 1
	// Overshoot candidates strictly above the highest undershoot; below it
	// the undershoot already broke the chain. (A shift count of 32 yields 0,
	// so hU == 31 clears every candidate.)
	c := p &^ e &^ (uint32(1)<<uint(hU+1) - 1)
	m := uint(k.m)
	for c != 0 {
		i := mathbits.Len32(c) - 1
		var eLow, pLow uint32
		if i >= k.m {
			sh := uint(i) - m
			eLow = e >> sh & k.lowMask
			pLow = p >> sh & k.lowMask
		} else {
			sh := m - uint(i)
			eLow = e << sh & k.lowMask
			pLow = p << sh & k.lowMask
		}
		if k.fire[eLow<<m|pLow] {
			// Minimax overshoot at i: exact above, 1 at i, zeros below.
			return e&^(uint32(1)<<uint(i+1)-1) | uint32(1)<<uint(i)
		}
		c &^= uint32(1) << uint(i)
	}
	// Undershoot at hU: exact above, previous at and below (previous has a
	// 0 at hU itself — that is what made it the break).
	low := uint32(1)<<uint(hU+1) - 1
	return e&^low | p&low
}

// oneBitValue is the compiled Algorithm 1: undershoot at the highest
// blocked-want bit, previous below. No overshoot exists for n = 1.
func oneBitValue(p, e uint32) uint32 {
	u := e &^ p
	if u == 0 {
		return e
	}
	low := uint32(1)<<uint(mathbits.Len32(u)) - 1
	return e&^low | p&low
}

// nbit2Value is the compiled n = 2 chain: the minimax table degenerates to
// "the next exact bit is wanted but previous cannot supply it", which makes
// the overshoot-candidate mask one shift expression — zero table probes.
func nbit2Value(p, e uint32) uint32 {
	u := e &^ p
	o := p &^ e & (e << 1) &^ (p << 1)
	br := u | o
	if br == 0 {
		return e
	}
	j := mathbits.Len32(br) - 1
	low := uint32(1)<<uint(j+1) - 1
	if u>>uint(j)&1 == 1 {
		return e&^low | p&low
	}
	return e&^low | uint32(1)<<uint(j)
}

// encodeSpan is the shared slice walker: it bulk-skips reachable 8-byte
// runs, dispatches the remaining values through fn, and accumulates the
// in-kernel statistics. fn receives width-masked inputs.
func encodeSpan(prev, exact, approx []byte, w bits.Width, fn func(p, e uint32) uint32) BatchStats {
	var st BatchStats
	vb := w.Bytes()
	end := len(exact) / vb * vb
	perChunk := uint64(8 / vb)
	i := 0
	for i < end {
		// Bulk fast path: if no bit of the next 8 bytes needs a 0→1 flip,
		// every value in them encodes to itself (the identity invariant) —
		// one uint64 test replaces 8/vb kernel dispatches. This is what
		// makes rewrites of mostly-unchanged or freshly erased pages cheap.
		if i+8 <= end &&
			binary.LittleEndian.Uint64(exact[i:])&^binary.LittleEndian.Uint64(prev[i:]) == 0 {
			copy(approx[i:i+8], exact[i:i+8])
			st.Count += perChunk
			i += 8
			continue
		}
		p := bits.LoadLE(prev[i:], w)
		e := bits.LoadLE(exact[i:], w)
		a := fn(p, e)
		bits.StoreLE(approx[i:], a, w)
		st.add(e, a)
		i += vb
	}
	return st
}

// encodeSpanW8 is the 8-bit-value walker: one byteLUT hit per value.
func encodeSpanW8(prev, exact, approx []byte, lut []byte) BatchStats {
	var st BatchStats
	i := 0
	for i < len(exact) {
		if i+8 <= len(exact) &&
			binary.LittleEndian.Uint64(exact[i:])&^binary.LittleEndian.Uint64(prev[i:]) == 0 {
			copy(approx[i:i+8], exact[i:i+8])
			st.Count += 8
			i += 8
			continue
		}
		e := exact[i]
		a := lut[uint32(prev[i])<<8|uint32(e)]
		approx[i] = a
		st.add(uint32(e), uint32(a))
		i++
	}
	return st
}

// EncodeSlice implements BatchEncoder: the batch form of Algorithm 2.
func (enc *NBit) EncodeSlice(prev, exact, approx []byte, w bits.Width) BatchStats {
	k := enc.kern
	if w == bits.W8 {
		return encodeSpanW8(prev, exact, approx, k.byteTable())
	}
	switch enc.n {
	case 1:
		return encodeSpan(prev, exact, approx, w, oneBitValue)
	case 2:
		return encodeSpan(prev, exact, approx, w, nbit2Value)
	default:
		return encodeSpan(prev, exact, approx, w, k.value)
	}
}

// EncodeSlice implements BatchEncoder: the batch form of Algorithm 1.
func (OneBit) EncodeSlice(prev, exact, approx []byte, w bits.Width) BatchStats {
	if w == bits.W8 {
		// Algorithm 1 is the n = 1 chain; share its byte LUT.
		return encodeSpanW8(prev, exact, approx, cachedKernel(1).byteTable())
	}
	return encodeSpan(prev, exact, approx, w, oneBitValue)
}

// EncodeSlice implements BatchEncoder for the pass-through encoder: the
// output is the exact data, the error is zero, and reachability is the
// word-wise subset test the conventional write path performs.
func (Exact) EncodeSlice(prev, exact, approx []byte, w bits.Width) BatchStats {
	var st BatchStats
	vb := w.Bytes()
	end := len(exact) / vb * vb
	st.Count = uint64(end / vb)
	copy(approx[:end], exact[:end])
	st.Unreachable = !bits.SubsetBytes(exact[:end], prev[:end])
	return st
}

// Segment is one (previous, exact, approx) buffer triple of a group-commit
// batch: the aligned dirty span of one queued page commit. All three slices
// must be the same length, a multiple of the width's byte count.
type Segment struct {
	Prev, Exact, Approx []byte
}

// EncodeSegments is the group-commit entry point into the batch kernels:
// one call encodes every segment of a coalesced bank batch, writing each
// segment's approximation into its Approx slice and its page statistics
// into out (which must be at least len(segs) long — per-segment statistics
// are kept separate because the error gate decides per page). Segments are
// processed in order, so per-page results are independent of how the batch
// was assembled.
func EncodeSegments(be BatchEncoder, segs []Segment, w bits.Width, out []BatchStats) {
	for i, s := range segs {
		out[i] = be.EncodeSlice(s.Prev, s.Exact, s.Approx, w)
	}
}
