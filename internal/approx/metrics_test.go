package approx

import "testing"

func TestErrorTrackerMAE(t *testing.T) {
	var tr ErrorTracker
	tr.Add(10, 7) // err 3
	tr.Add(5, 5)  // err 0
	tr.Add(0, 9)  // err 9
	if tr.Count() != 3 {
		t.Fatalf("Count = %d", tr.Count())
	}
	if tr.SumAbs() != 12 {
		t.Errorf("SumAbs = %d, want 12", tr.SumAbs())
	}
	if got := tr.MAE(); got != 4 {
		t.Errorf("MAE = %v, want 4", got)
	}
	if got := tr.MSE(); got != (9+0+81)/3.0 {
		t.Errorf("MSE = %v, want 30", got)
	}
}

func TestErrorTrackerEmpty(t *testing.T) {
	var tr ErrorTracker
	if tr.MAE() != 0 || tr.MSE() != 0 || tr.Count() != 0 {
		t.Error("empty tracker should report zeros")
	}
}

func TestErrorTrackerReset(t *testing.T) {
	var tr ErrorTracker
	tr.Add(1, 100)
	tr.Reset()
	if tr.MAE() != 0 || tr.Count() != 0 {
		t.Error("Reset did not clear the tracker")
	}
}
