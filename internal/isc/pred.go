package isc

import (
	"fmt"
	"strings"
)

// Pred is a predicate tree over indexed fields: equality leaves combined
// with And/Or/Not. Build trees with the constructors below; the planner in
// Index.Query lowers them onto in-flash senses.
type Pred interface {
	// String renders the tree for diagnostics.
	String() string
	isPred()
}

type predEq struct {
	field  string
	bucket int
}

type predAnd struct{ kids []Pred }
type predOr struct{ kids []Pred }
type predNot struct{ kid Pred }

func (predEq) isPred()  {}
func (predAnd) isPred() {}
func (predOr) isPred()  {}
func (predNot) isPred() {}

func (p predEq) String() string { return fmt.Sprintf("%s=%d", p.field, p.bucket) }
func (p predNot) String() string {
	return "not(" + p.kid.String() + ")"
}
func (p predAnd) String() string { return joinPreds("and", p.kids) }
func (p predOr) String() string  { return joinPreds("or", p.kids) }

func joinPreds(op string, kids []Pred) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return op + "(" + strings.Join(parts, ", ") + ")"
}

// Eq matches records whose field falls in the given bucket.
func Eq(field string, bucket int) Pred { return predEq{field: field, bucket: bucket} }

// In matches records whose field falls in any of the given buckets.
func In(field string, buckets ...int) Pred {
	kids := make([]Pred, len(buckets))
	for i, b := range buckets {
		kids[i] = predEq{field: field, bucket: b}
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return predOr{kids: kids}
}

// And matches records satisfying every child predicate.
func And(ps ...Pred) Pred {
	if len(ps) == 1 {
		return ps[0]
	}
	return predAnd{kids: ps}
}

// Or matches records satisfying any child predicate.
func Or(ps ...Pred) Pred {
	if len(ps) == 1 {
		return ps[0]
	}
	return predOr{kids: ps}
}

// Not matches records failing the child predicate.
func Not(p Pred) Pred { return predNot{kid: p} }

// Eval evaluates the predicate for one record given its bucket per field
// (bucketOf returns the record's bucket, or a negative value for a field
// the record has no value for — which fails every equality on it). This is
// the exact per-record semantics the in-flash plans approximate from the
// index; callers re-check fetched candidates with it to filter stale index
// bits.
func Eval(p Pred, bucketOf func(field string) int) bool {
	switch n := p.(type) {
	case predEq:
		return bucketOf(n.field) == n.bucket
	case predNot:
		return !Eval(n.kid, bucketOf)
	case predAnd:
		for _, k := range n.kids {
			if !Eval(k, bucketOf) {
				return false
			}
		}
		return true
	case predOr:
		for _, k := range n.kids {
			if Eval(k, bucketOf) {
				return true
			}
		}
		return false
	}
	return false
}

// Positive rewrites p into negation normal form with every leaf positive:
// Not distributes over And/Or by De Morgan, double negations cancel, and a
// negated equality becomes In(field, every other bucket) — buckets returns
// the bucket count of a field. The rewrite preserves semantics for records
// that fall in exactly one bucket per field, and it matters when the
// underlying bitmaps over-approximate membership (stale bits): positive
// leaves keep every plan a superset of the true matches, so a re-check can
// filter false positives, whereas complementing an over-approximation
// would lose matches unrecoverably.
func Positive(p Pred, buckets func(field string) int) Pred {
	return positive(p, buckets, false)
}

func positive(p Pred, buckets func(string) int, negated bool) Pred {
	switch n := p.(type) {
	case predEq:
		if !negated {
			return n
		}
		others := make([]int, 0, buckets(n.field))
		for b := 0; b < buckets(n.field); b++ {
			if b != n.bucket {
				others = append(others, b)
			}
		}
		return In(n.field, others...)
	case predNot:
		return positive(n.kid, buckets, !negated)
	case predAnd:
		kids := make([]Pred, len(n.kids))
		for i, k := range n.kids {
			kids[i] = positive(k, buckets, negated)
		}
		if negated {
			return Or(kids...)
		}
		return And(kids...)
	case predOr:
		// Negating an In — an Or of equalities on one field — dualises
		// directly to the complement In. The generic De Morgan path below
		// would be equivalent for single-bucket records but plans as an And
		// of wide Ins, one per negated leaf: quadratically more senses.
		if negated {
			if f, set, ok := sameFieldEqs(n.kids); ok {
				others := make([]int, 0, buckets(f))
				for b := 0; b < buckets(f); b++ {
					if !set[b] {
						others = append(others, b)
					}
				}
				return In(f, others...)
			}
		}
		kids := make([]Pred, len(n.kids))
		for i, k := range n.kids {
			kids[i] = positive(k, buckets, negated)
		}
		if negated {
			return And(kids...)
		}
		return Or(kids...)
	}
	return p
}

// sameFieldEqs reports whether every kid is an equality on one shared
// field, returning that field and the bucket set.
func sameFieldEqs(kids []Pred) (string, map[int]bool, bool) {
	if len(kids) == 0 {
		return "", nil, false
	}
	set := make(map[int]bool, len(kids))
	field := ""
	for _, k := range kids {
		eq, ok := k.(predEq)
		if !ok || (field != "" && eq.field != field) {
			return "", nil, false
		}
		field = eq.field
		set[eq.bucket] = true
	}
	return field, set, true
}

// walk visits every node of the tree.
func walk(p Pred, f func(Pred)) {
	f(p)
	switch n := p.(type) {
	case predNot:
		walk(n.kid, f)
	case predAnd:
		for _, k := range n.kids {
			walk(k, f)
		}
	case predOr:
		for _, k := range n.kids {
			walk(k, f)
		}
	}
}
