// Package isc implements in-storage compute over the flash simulator: bulk
// bitwise queries evaluated inside the array with multi-wordline senses
// (flash.SenseMulti) instead of streaming pages to the host.
//
// Two structures are provided:
//
//   - Index: per-field bucket bitmaps over record slots, queried with an
//     AND/OR/NOT predicate tree (Pred). Bitmaps are stored INVERTED — a bit
//     programmed to 0 means "slot is a member" — so index maintenance is
//     always an erase-free 1→0 program, and membership falls out of a sense
//     with the reference inverted (¬stored).
//
//   - PlaneStore: a bit-planar array of W-bit samples (plane j holds bit j
//     of every sample), searched by equality, range or proximity with one
//     sense per prefix term. Writes follow FlipBit semantics: an update may
//     only clear stored bits, so SetApprox clamps to the nearest reachable
//     value and searches widen by the observed error bound — approximate
//     storage with no false negatives.
//
// Both lay their bitmaps out so that chunk c of every bitmap lands in the
// same bank (strides are rounded up to a multiple of the bank count), which
// is exactly the same-bank rule SenseMulti enforces.
package isc

import (
	"errors"
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/flash"
)

// Device is the slice of the flash simulator in-storage compute needs.
// *flash.Device satisfies it directly; the kvs backend adapts to it so the
// index can ride on a core device.
type Device interface {
	// SenseMulti computes the bitwise op-combination of same-bank pages in
	// one array operation (charged once per sense, not per page).
	SenseMulti(op flash.SenseOp, pages []int, invert []bool, dst []byte) error
	// Read is a plain host read (per-byte charge), used by the host-side
	// oracle baselines.
	Read(addr int, dst []byte) error
	// ProgramByte clears bits of one byte (1 → 0 only).
	ProgramByte(addr int, v byte) error
	// ErasePage resets a page to all-ones.
	ErasePage(p int) error
}

// Shared errors.
var (
	ErrConfig       = errors.New("isc: invalid configuration")
	ErrUnknownField = errors.New("isc: predicate references an unknown field")
	ErrBucketRange  = errors.New("isc: bucket out of range for field")
	ErrSlotRange    = errors.New("isc: slot out of range")
	ErrUnreachable  = errors.New("isc: value not reachable without an erase")
	ErrErrorBudget  = errors.New("isc: nearest reachable value exceeds the error budget")
	ErrBitmapSize   = errors.New("isc: bitmap buffer length must equal BitmapBytes")
)

// bitmapLayout is the geometry shared by Index and PlaneStore: each bitmap
// (one bucket, or one bit plane) covers Slots bits split into page-sized
// chunks, and consecutive bitmaps are spaced stride pages apart with stride
// a multiple of the bank count, so chunk c of every bitmap sits in the same
// bank and can participate in one SenseMulti.
type bitmapLayout struct {
	pageSize   int
	firstPage  int
	bytes      int // bytes per bitmap: ceil(slots/8)
	chunkPages int // pages per bitmap: ceil(bytes/pageSize)
	stride     int // pages between consecutive bitmaps (chunkPages rounded up to banks)
}

func newBitmapLayout(slots, pageSize, banks, firstPage int) bitmapLayout {
	bytes := (slots + 7) / 8
	chunkPages := (bytes + pageSize - 1) / pageSize
	stride := (chunkPages + banks - 1) / banks * banks
	return bitmapLayout{
		pageSize:   pageSize,
		firstPage:  firstPage,
		bytes:      bytes,
		chunkPages: chunkPages,
		stride:     stride,
	}
}

// page returns the flash page holding chunk c of bitmap b.
func (l bitmapLayout) page(b, c int) int { return l.firstPage + b*l.stride + c }

// chunkLen returns how many bytes of chunk c carry bitmap payload (the last
// chunk of a bitmap is usually partial).
func (l bitmapLayout) chunkLen(c int) int {
	n := l.bytes - c*l.pageSize
	if n > l.pageSize {
		n = l.pageSize
	}
	return n
}

// requiredPages returns the region size for n bitmaps.
func (l bitmapLayout) requiredPages(n int) int { return n * l.stride }

// maskTail clears the bits of dst beyond the slot count, so padding bits in
// the final byte can never masquerade as matches.
func maskTail(dst []byte, slots int) {
	if rem := slots % 8; rem != 0 {
		dst[len(dst)-1] &= byte(1<<rem) - 1
	}
}

// checkGeometry validates the fields every in-storage structure shares.
func checkGeometry(pageSize, banks, maxSense, firstPage, slots int) error {
	switch {
	case pageSize <= 0:
		return fmt.Errorf("%w: page size %d", ErrConfig, pageSize)
	case banks <= 0:
		return fmt.Errorf("%w: bank count %d", ErrConfig, banks)
	case maxSense <= 0:
		return fmt.Errorf("%w: max sense pages %d", ErrConfig, maxSense)
	case firstPage < 0:
		return fmt.Errorf("%w: first page %d", ErrConfig, firstPage)
	case slots <= 0:
		return fmt.Errorf("%w: slot count %d", ErrConfig, slots)
	}
	return nil
}
