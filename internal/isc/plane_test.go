package isc

import (
	"errors"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

func testPlaneConfig() PlaneConfig {
	return PlaneConfig{
		PageSize:      16,
		Banks:         2,
		MaxSensePages: 4, // < Width: prefix senses must split into batches
		FirstPage:     0,
		Slots:         300,
		Width:         6,
	}
}

func newTestPlanes(t testing.TB) (*PlaneStore, *flash.Device) {
	t.Helper()
	dev := testDevice(t)
	ps, err := NewPlaneStore(dev, testPlaneConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Reset(); err != nil {
		t.Fatal(err)
	}
	return ps, dev
}

// bruteNearest enumerates every subset of cv and returns the smallest
// achievable |v - r| — the bound nearestSubset must meet.
func bruteNearest(cv, v int) int {
	best := v // r = 0 is always a subset
	for r := cv; ; r = (r - 1) & cv {
		e := r - v
		if e < 0 {
			e = -e
		}
		if e < best {
			best = e
		}
		if r == 0 {
			break
		}
	}
	return best
}

// TestNearestSubsetIsOptimal: for every (current, wanted) pair of the
// 6-bit space, the O(width) candidate construction must achieve the same
// error as brute-force subset enumeration, and return a true subset.
func TestNearestSubsetIsOptimal(t *testing.T) {
	const w = 6
	for cv := 0; cv < 1<<w; cv++ {
		for v := 0; v < 1<<w; v++ {
			r := nearestSubset(cv, v, w)
			if r&^cv != 0 {
				t.Fatalf("nearestSubset(%#x, %#x) = %#x: not a subset", cv, v, r)
			}
			e := r - v
			if e < 0 {
				e = -e
			}
			if want := bruteNearest(cv, v); e != want {
				t.Fatalf("nearestSubset(%#x, %#x) = %#x (err %d), optimum err %d", cv, v, r, e, want)
			}
		}
	}
}

// TestPlaneMatchesAgainstMirror: random exact and approximate writes,
// then equality and range matches compared bit-for-bit against a RAM
// mirror of the stored values. Matches must also never read a page.
func TestPlaneMatchesAgainstMirror(t *testing.T) {
	ps, dev := newTestPlanes(t)
	rng := xrand.New(0x9A37)
	cfg := testPlaneConfig()
	full := 1<<cfg.Width - 1
	stored := make([]int, cfg.Slots)
	assigned := make([]bool, cfg.Slots)
	for i := range stored {
		stored[i] = full
	}

	write := func() {
		slot := rng.Intn(cfg.Slots)
		v := rng.Intn(full + 1)
		if rng.Intn(2) == 0 {
			// Exact write of a reachable value.
			v &= stored[slot]
			if err := ps.Set(slot, v); err != nil {
				t.Fatal(err)
			}
			stored[slot], assigned[slot] = v, true
			return
		}
		r, err := ps.SetApprox(slot, v, full)
		if err != nil {
			t.Fatal(err)
		}
		stored[slot], assigned[slot] = r, true
	}
	check := func() {
		dst := make([]byte, ps.BitmapBytes())
		lo := rng.Intn(full + 1)
		hi := lo + rng.Intn(full+1-lo)
		before := dev.Stats()
		if err := ps.MatchRange(lo, hi, dst); err != nil {
			t.Fatal(err)
		}
		if d := dev.Stats().Sub(before); d.Reads != 0 || d.Senses == 0 {
			t.Fatalf("range match: %d host read bytes, %d senses", d.Reads, d.Senses)
		}
		for slot := 0; slot < cfg.Slots; slot++ {
			want := assigned[slot] && stored[slot] >= lo && stored[slot] <= hi
			if got := bit(dst, slot); got != want {
				t.Fatalf("range [%d,%d] slot %d (stored %d, assigned %v): got %v",
					lo, hi, slot, stored[slot], assigned[slot], got)
			}
		}
		v := rng.Intn(full + 1)
		if err := ps.MatchEqual(v, dst); err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < cfg.Slots; slot++ {
			want := assigned[slot] && stored[slot] == v
			if got := bit(dst, slot); got != want {
				t.Fatalf("equal %d slot %d (stored %d): got %v", v, slot, stored[slot], got)
			}
		}
	}

	for round := 0; round < 40; round++ {
		for i := 0; i < 25; i++ {
			write()
		}
		check()
	}
}

// TestMatchNearHasNoFalseNegatives: samples written approximately must
// always be found by a proximity search around their INTENDED value — the
// observed-error widening guarantees it whatever SetApprox clamped to.
func TestMatchNearHasNoFalseNegatives(t *testing.T) {
	ps, _ := newTestPlanes(t)
	rng := xrand.New(0xBEEF)
	cfg := testPlaneConfig()
	full := 1<<cfg.Width - 1
	intended := make([]int, 0, 200)
	slots := make([]int, 0, 200)
	used := map[int]bool{}
	for len(slots) < 200 {
		slot := rng.Intn(cfg.Slots)
		if used[slot] {
			continue
		}
		used[slot] = true
		v := rng.Intn(full + 1)
		if _, err := ps.SetApprox(slot, v, full); err != nil {
			t.Fatal(err)
		}
		slots = append(slots, slot)
		intended = append(intended, v)
	}
	dst := make([]byte, ps.BitmapBytes())
	for trial := 0; trial < 200; trial++ {
		v := rng.Intn(full + 1)
		tol := rng.Intn(8)
		if err := ps.MatchNear(v, tol, dst); err != nil {
			t.Fatal(err)
		}
		for i, slot := range slots {
			d := intended[i] - v
			if d < 0 {
				d = -d
			}
			if d <= tol && !bit(dst, slot) {
				t.Fatalf("near(%d, tol %d): slot %d intended %d missed (stored %d, maxErr %d)",
					v, tol, slot, intended[i], mustVal(t, ps, slot), ps.MaxObservedError())
			}
		}
	}
}

func mustVal(t *testing.T, ps *PlaneStore, slot int) int {
	t.Helper()
	v, ok := ps.Value(slot)
	if !ok {
		t.Fatalf("slot %d unassigned", slot)
	}
	return v
}

// TestSetApproxBudget: a write whose nearest reachable value misses by
// more than the budget must fail without touching flash, and exact writes
// of unreachable values must be refused.
func TestSetApproxBudget(t *testing.T) {
	ps, dev := newTestPlanes(t)
	if err := ps.Set(0, 0); err != nil { // clamp slot 0 to zero
		t.Fatal(err)
	}
	before := dev.Stats()
	if _, err := ps.SetApprox(0, 40, 3); !errors.Is(err, ErrErrorBudget) {
		t.Fatalf("budget exceeded: %v", err)
	}
	if d := dev.Stats().Sub(before); d.Programs != 0 {
		t.Fatalf("failed approx write still programmed %d bytes", d.Programs)
	}
	if err := ps.Set(0, 1); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("unreachable exact write: %v", err)
	}
	// Within budget: stored value lands within maxErr of the request and
	// the observed bound covers it.
	r, err := ps.SetApprox(1, 21, 64)
	if err != nil {
		t.Fatal(err)
	}
	e := r - 21
	if e < 0 {
		e = -e
	}
	if e > ps.MaxObservedError() {
		t.Fatalf("error %d exceeds observed bound %d", e, ps.MaxObservedError())
	}
	if _, err := ps.SetApprox(-1, 0, 0); !errors.Is(err, ErrSlotRange) {
		t.Fatalf("slot range: %v", err)
	}
	if _, err := ps.SetApprox(0, 1<<6, 0); !errors.Is(err, ErrConfig) {
		t.Fatalf("value width: %v", err)
	}
}

// TestPlaneConfigValidate covers the geometry checks.
func TestPlaneConfigValidate(t *testing.T) {
	dev := testDevice(t)
	bad := []PlaneConfig{
		{},
		{PageSize: 16, Banks: 2, MaxSensePages: 4, Slots: 10, Width: 0},
		{PageSize: 16, Banks: 2, MaxSensePages: 4, Slots: 10, Width: 17},
		{PageSize: 16, Banks: 2, MaxSensePages: 4, Slots: 0, Width: 6},
		{PageSize: 16, Banks: 0, MaxSensePages: 4, Slots: 10, Width: 6},
	}
	for i, cfg := range bad {
		if _, err := NewPlaneStore(dev, cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("config %d accepted: %v", i, err)
		}
	}
}
