package isc

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/flash"
)

// PlaneConfig describes a PlaneStore: device geometry, the carved page
// region, the sample capacity and the sample width in bits.
type PlaneConfig struct {
	PageSize      int
	Banks         int
	MaxSensePages int

	FirstPage int
	Slots     int // samples the store holds
	Width     int // bits per sample (1..16)
}

// Pages returns the region size in flash pages (Width bit-plane bitmaps).
func (c PlaneConfig) Pages() int {
	lay := newBitmapLayout(c.Slots, c.PageSize, c.Banks, c.FirstPage)
	return lay.requiredPages(c.Width)
}

// Validate rejects malformed configurations.
func (c PlaneConfig) Validate() error {
	if err := checkGeometry(c.PageSize, c.Banks, c.MaxSensePages, c.FirstPage, c.Slots); err != nil {
		return err
	}
	if c.Width < 1 || c.Width > 16 {
		return fmt.Errorf("%w: width %d (want 1..16)", ErrConfig, c.Width)
	}
	return nil
}

// PlaneStore holds W-bit samples bit-planar: plane j is a bitmap whose
// slot-th bit is bit j of sample slot. An erased region therefore reads as
// every sample at full scale (all bits 1), and — because flash programs
// only clear bits — an in-place update can only remove bits from a stored
// value. SetApprox embraces that FlipBit-style: it stores the nearest
// reachable value within an error budget instead of paying an erase, and
// the store tracks the worst error so searches can widen their window and
// never miss a sample (bounded-error approximate search).
//
// Searches are in-flash: equality is a single sense across all planes
// (reference inverted where the target bit is 0), and a range decomposes
// into at most 2·Width binary prefixes, each one sense.
type PlaneStore struct {
	dev Device
	cfg PlaneConfig
	lay bitmapLayout

	shadow   []byte // mirror of the plane region (controller RAM)
	vals     []int  // stored value per slot
	assigned []byte // bitmap: slot holds a sample (erased slots read full-scale)
	maxErr   int    // worst |intended - stored| accepted so far

	scratch [][]byte
	senseP  []int
	senseI  []bool
}

// NewPlaneStore builds a store over a carved region; call Reset to
// (re)initialise the planes.
func NewPlaneStore(dev Device, cfg PlaneConfig) (*PlaneStore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lay := newBitmapLayout(cfg.Slots, cfg.PageSize, cfg.Banks, cfg.FirstPage)
	ps := &PlaneStore{
		dev:      dev,
		cfg:      cfg,
		lay:      lay,
		shadow:   make([]byte, lay.requiredPages(cfg.Width)*cfg.PageSize),
		vals:     make([]int, cfg.Slots),
		assigned: make([]byte, lay.bytes),
		senseP:   make([]int, 0, cfg.MaxSensePages),
		senseI:   make([]bool, 0, cfg.MaxSensePages),
	}
	ps.resetShadow()
	return ps, nil
}

func (ps *PlaneStore) resetShadow() {
	for i := range ps.shadow {
		ps.shadow[i] = 0xFF
	}
	full := 1<<ps.cfg.Width - 1
	for i := range ps.vals {
		ps.vals[i] = full
	}
	for i := range ps.assigned {
		ps.assigned[i] = 0
	}
	ps.maxErr = 0
}

// Pages returns the region size in flash pages.
func (ps *PlaneStore) Pages() int { return ps.lay.requiredPages(ps.cfg.Width) }

// BitmapBytes returns the length match result buffers must have.
func (ps *PlaneStore) BitmapBytes() int { return ps.lay.bytes }

// MaxObservedError returns the worst |intended − stored| any SetApprox has
// accepted — the widening margin proximity searches use.
func (ps *PlaneStore) MaxObservedError() int { return ps.maxErr }

// Value returns the stored value of a slot and whether it is assigned.
func (ps *PlaneStore) Value(slot int) (int, bool) {
	if slot < 0 || slot >= ps.cfg.Slots {
		return 0, false
	}
	return ps.vals[slot], ps.assigned[slot/8]&(1<<(slot%8)) != 0
}

// Reset erases the plane region, unassigning every slot.
func (ps *PlaneStore) Reset() error {
	for p := 0; p < ps.Pages(); p++ {
		if err := ps.dev.ErasePage(ps.cfg.FirstPage + p); err != nil {
			return err
		}
	}
	ps.resetShadow()
	return nil
}

// Set stores v exactly. Programs can only clear bits, so v must be a
// bitwise subset of the slot's current value; otherwise ErrUnreachable is
// returned (callers wanting a lossy write use SetApprox).
func (ps *PlaneStore) Set(slot, v int) error {
	if err := ps.checkSlotVal(slot, v); err != nil {
		return err
	}
	if v&^ps.vals[slot] != 0 {
		return fmt.Errorf("%w: slot %d holds %#x, want %#x", ErrUnreachable, slot, ps.vals[slot], v)
	}
	return ps.program(slot, v)
}

// SetApprox stores the reachable value nearest to v. If even the best
// reachable value misses v by more than maxErr, nothing is written and
// ErrErrorBudget is returned. On success the stored value is returned and
// the store's observed-error bound is updated, keeping MatchNear exact
// with respect to intended values.
func (ps *PlaneStore) SetApprox(slot, v, maxErr int) (int, error) {
	if err := ps.checkSlotVal(slot, v); err != nil {
		return 0, err
	}
	if maxErr < 0 {
		return 0, fmt.Errorf("%w: negative error budget %d", ErrConfig, maxErr)
	}
	r := nearestSubset(ps.vals[slot], v, ps.cfg.Width)
	e := r - v
	if e < 0 {
		e = -e
	}
	if e > maxErr {
		return 0, fmt.Errorf("%w: nearest reachable %#x misses %#x by %d (budget %d)",
			ErrErrorBudget, r, v, e, maxErr)
	}
	if err := ps.program(slot, r); err != nil {
		return 0, err
	}
	if e > ps.maxErr {
		ps.maxErr = e
	}
	return r, nil
}

// nearestSubset returns the bitwise subset of cv closest to v (ties break
// low). Candidates are the greatest subset ≤ v, plus — for every cv bit
// position i where v is 0 and v's bits above i all lie in cv — the least
// subset > v obtained by setting bit i over v's prefix: enumerating those
// raise positions covers every minimal value above v, in O(width) instead
// of walking 2^popcount(cv) subsets.
func nearestSubset(cv, v, width int) int {
	// Greatest subset of cv that is ≤ v: match v's bits from the top while
	// the prefix is tight; the first position where v has a bit cv lacks
	// frees every lower cv bit.
	low, tight := 0, true
	for i := width - 1; i >= 0; i-- {
		bit := 1 << i
		switch {
		case !tight:
			low |= cv & bit
		case v&bit != 0 && cv&bit != 0:
			low |= bit
		case v&bit != 0: // v has the bit, cv cannot supply it: fall below
			tight = false
		}
	}
	best := low
	bestErr := v - low
	for i := 0; i < width; i++ {
		bit := 1 << i
		if cv&bit == 0 || v&bit != 0 {
			continue
		}
		above := -bit * 2 // mask of positions > i
		if v&above&^cv != 0 {
			continue // v's prefix above i is not representable
		}
		cand := v&above | bit
		if e := cand - v; e < bestErr {
			best, bestErr = cand, e
		}
	}
	return best
}

// program clears the plane bits taking the slot from its current value to
// r (a verified subset) and updates the mirrors.
func (ps *PlaneStore) program(slot, r int) error {
	cv := ps.vals[slot]
	byteIdx := slot / 8
	c := byteIdx / ps.cfg.PageSize
	off := byteIdx % ps.cfg.PageSize
	for j := 0; j < ps.cfg.Width; j++ {
		bit := 1 << j
		if cv&bit == 0 || r&bit != 0 {
			continue // plane bit already clear, or staying set
		}
		page := ps.lay.page(j, c)
		shOff := (page-ps.cfg.FirstPage)*ps.cfg.PageSize + off
		nv := ps.shadow[shOff] &^ (1 << (slot % 8))
		if err := ps.dev.ProgramByte(page*ps.cfg.PageSize+off, nv); err != nil {
			return err
		}
		ps.shadow[shOff] = nv
	}
	ps.vals[slot] = r
	ps.assigned[byteIdx] |= 1 << (slot % 8)
	return nil
}

func (ps *PlaneStore) checkSlotVal(slot, v int) error {
	if slot < 0 || slot >= ps.cfg.Slots {
		return fmt.Errorf("%w: slot %d of %d", ErrSlotRange, slot, ps.cfg.Slots)
	}
	if v < 0 || v >= 1<<ps.cfg.Width {
		return fmt.Errorf("%w: value %#x exceeds %d bits", ErrConfig, v, ps.cfg.Width)
	}
	return nil
}

// MatchEqual writes the slots whose stored value equals v into dst
// (1 = match, length BitmapBytes) — one sense per chunk across all planes.
func (ps *PlaneStore) MatchEqual(v int, dst []byte) error {
	return ps.MatchRange(v, v, dst)
}

// MatchRange writes the slots whose stored value lies in [lo, hi] into
// dst. The interval decomposes into at most 2·Width binary prefixes; each
// prefix is one multi-plane sense (reference inverted where the prefix bit
// is 0) and the prefix results are OR-ed host-side. Unassigned slots never
// match.
func (ps *PlaneStore) MatchRange(lo, hi int, dst []byte) error {
	if len(dst) != ps.lay.bytes {
		return fmt.Errorf("%w: got %d, want %d", ErrBitmapSize, len(dst), ps.lay.bytes)
	}
	full := 1<<ps.cfg.Width - 1
	if lo < 0 {
		lo = 0
	}
	if hi > full {
		hi = full
	}
	for i := range dst {
		dst[i] = 0
	}
	if lo > hi {
		return nil
	}
	acc := ps.getBuf()
	buf := ps.getBuf()
	defer ps.putBuf(acc)
	defer ps.putBuf(buf)
	for c := 0; c < ps.lay.chunkPages; c++ {
		for i := range acc {
			acc[i] = 0
		}
		for l, h := lo, hi; l <= h; {
			// Widest aligned block at l that fits in [l, h].
			free := 0
			for free < ps.cfg.Width && l&(1<<(free+1)-1) == 0 && l+1<<(free+1)-1 <= h {
				free++
			}
			if err := ps.sensePrefix(l, free, c, buf); err != nil {
				return err
			}
			for i := range acc {
				acc[i] |= buf[i]
			}
			l += 1 << free
			if l == 0 {
				break
			}
		}
		n := ps.lay.chunkLen(c)
		base := c * ps.cfg.PageSize
		for i := 0; i < n; i++ {
			dst[base+i] = acc[i] & ps.assigned[base+i]
		}
	}
	maskTail(dst, ps.cfg.Slots)
	return nil
}

// MatchNear writes the slots whose INTENDED value was within tol of v: the
// stored window widens by the observed SetApprox error bound, so a sample
// written as u with |u − v| ≤ tol can never be missed, whatever the store
// clamped it to (no false negatives; the extra width only adds false
// positives the caller can re-check).
func (ps *PlaneStore) MatchNear(v, tol int, dst []byte) error {
	if tol < 0 {
		return fmt.Errorf("%w: negative tolerance %d", ErrConfig, tol)
	}
	return ps.MatchRange(v-tol-ps.maxErr, v+tol+ps.maxErr, dst)
}

// sensePrefix senses the slots whose top Width−free bits equal those of
// prefix: one SenseAND per batch over the fixed planes, inverted where the
// prefix bit is 0. A fully free prefix matches everything.
func (ps *PlaneStore) sensePrefix(prefix, free, c int, out []byte) error {
	if free >= ps.cfg.Width {
		for i := range out {
			out[i] = 0xFF
		}
		return nil
	}
	ps.senseP = ps.senseP[:0]
	ps.senseI = ps.senseI[:0]
	first := true
	flush := func(dst []byte) error {
		err := ps.dev.SenseMulti(flash.SenseAND, ps.senseP, ps.senseI, dst)
		ps.senseP = ps.senseP[:0]
		ps.senseI = ps.senseI[:0]
		return err
	}
	for j := free; j < ps.cfg.Width; j++ {
		ps.senseP = append(ps.senseP, ps.lay.page(j, c))
		ps.senseI = append(ps.senseI, prefix&(1<<j) == 0)
		if len(ps.senseP) == ps.cfg.MaxSensePages {
			if err := ps.foldFlush(flush, &first, out); err != nil {
				return err
			}
		}
	}
	if len(ps.senseP) > 0 {
		if err := ps.foldFlush(flush, &first, out); err != nil {
			return err
		}
	}
	return nil
}

// foldFlush lands a sense batch in out, AND-folding after the first.
func (ps *PlaneStore) foldFlush(flush func([]byte) error, first *bool, out []byte) error {
	if *first {
		*first = false
		return flush(out)
	}
	buf := ps.getBuf()
	defer ps.putBuf(buf)
	if err := flush(buf); err != nil {
		return err
	}
	for i := range out {
		out[i] &= buf[i]
	}
	return nil
}

func (ps *PlaneStore) getBuf() []byte {
	if n := len(ps.scratch); n > 0 {
		b := ps.scratch[n-1]
		ps.scratch = ps.scratch[:n-1]
		return b
	}
	return make([]byte, ps.cfg.PageSize)
}

func (ps *PlaneStore) putBuf(b []byte) { ps.scratch = append(ps.scratch, b) }
