package isc

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/flash"
)

// Field names one indexed attribute and how many buckets its values hash
// or quantise into. Every (field, bucket) pair owns one membership bitmap.
type Field struct {
	Name    string
	Buckets int
}

// IndexConfig describes an Index: device geometry, the page region the
// bitmaps live in, the slot capacity and the indexed fields.
type IndexConfig struct {
	PageSize      int // device page size in bytes
	Banks         int // device bank count (pages interleave p % Banks)
	MaxSensePages int // device limit on wordlines per simultaneous sense

	FirstPage int // first page of the bitmap region
	Slots     int // record slots each bitmap covers
	Fields    []Field
}

// totalBuckets sums the bucket counts across fields.
func (c IndexConfig) totalBuckets() int {
	n := 0
	for _, f := range c.Fields {
		n += f.Buckets
	}
	return n
}

// Pages returns how many flash pages the index region occupies, so callers
// can carve the region before constructing the index.
func (c IndexConfig) Pages() int {
	lay := newBitmapLayout(c.Slots, c.PageSize, c.Banks, c.FirstPage)
	return lay.requiredPages(c.totalBuckets())
}

// Validate rejects malformed configurations.
func (c IndexConfig) Validate() error {
	if err := checkGeometry(c.PageSize, c.Banks, c.MaxSensePages, c.FirstPage, c.Slots); err != nil {
		return err
	}
	if len(c.Fields) == 0 {
		return fmt.Errorf("%w: no fields", ErrConfig)
	}
	seen := map[string]bool{}
	for _, f := range c.Fields {
		switch {
		case f.Name == "":
			return fmt.Errorf("%w: empty field name", ErrConfig)
		case f.Buckets <= 0:
			return fmt.Errorf("%w: field %q has %d buckets", ErrConfig, f.Name, f.Buckets)
		case seen[f.Name]:
			return fmt.Errorf("%w: duplicate field %q", ErrConfig, f.Name)
		}
		seen[f.Name] = true
	}
	return nil
}

// Index is a set of per-bucket membership bitmaps over record slots,
// stored inverted (0 = member) so additions are erase-free programs and
// membership is read with an inverted sense. Queries are predicate trees
// lowered onto batched multi-page senses; the host never reads a bitmap
// page on the in-flash path.
type Index struct {
	dev Device
	cfg IndexConfig
	lay bitmapLayout

	fieldOff map[string]Field // Buckets reused as count; offset stored separately
	offsets  map[string]int   // field name → first global bucket

	// shadow mirrors the bitmap region so maintenance can compute the
	// post-program byte without a read (controller RAM metadata, exactly
	// like the page map an FTL keeps).
	shadow []byte

	// scratch is a free-list of page-sized buffers for the recursive
	// planner; senseP/senseI batch leaf pages for one SenseMulti call.
	scratch [][]byte
	senseP  []int
	senseI  []bool
}

// NewIndex builds an index over a carved region. The region's pages are
// assumed erased or previously index-owned; call Reset to (re)initialise.
func NewIndex(dev Device, cfg IndexConfig) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		dev:      dev,
		cfg:      cfg,
		lay:      newBitmapLayout(cfg.Slots, cfg.PageSize, cfg.Banks, cfg.FirstPage),
		fieldOff: map[string]Field{},
		offsets:  map[string]int{},
		senseP:   make([]int, 0, cfg.MaxSensePages),
		senseI:   make([]bool, 0, cfg.MaxSensePages),
	}
	off := 0
	for _, f := range cfg.Fields {
		ix.fieldOff[f.Name] = f
		ix.offsets[f.Name] = off
		off += f.Buckets
	}
	ix.shadow = make([]byte, ix.lay.requiredPages(off)*cfg.PageSize)
	for i := range ix.shadow {
		ix.shadow[i] = 0xFF
	}
	return ix, nil
}

// Pages returns the size of the index region in flash pages.
func (ix *Index) Pages() int { return ix.lay.requiredPages(ix.cfg.totalBuckets()) }

// BitmapBytes returns the length Query result buffers must have.
func (ix *Index) BitmapBytes() int { return ix.lay.bytes }

// Slots returns the slot capacity.
func (ix *Index) Slots() int { return ix.cfg.Slots }

// Reset erases the whole bitmap region, emptying every bucket.
func (ix *Index) Reset() error {
	for p := 0; p < ix.Pages(); p++ {
		if err := ix.dev.ErasePage(ix.cfg.FirstPage + p); err != nil {
			return err
		}
	}
	for i := range ix.shadow {
		ix.shadow[i] = 0xFF
	}
	return nil
}

// globalBucket resolves (field, bucket) to a bitmap number.
func (ix *Index) globalBucket(field string, bucket int) (int, error) {
	f, ok := ix.fieldOff[field]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownField, field)
	}
	if bucket < 0 || bucket >= f.Buckets {
		return 0, fmt.Errorf("%w: %q bucket %d of %d", ErrBucketRange, field, bucket, f.Buckets)
	}
	return ix.offsets[field] + bucket, nil
}

// Add marks slot as a member of (field, bucket) by programming its bit to
// 0 — always erase-free, and idempotent (re-adding is a no-op). Stale
// members from updated or deleted records are expected; they surface as
// false positives the caller filters with Eval on the fetched record.
func (ix *Index) Add(slot int, field string, bucket int) error {
	if slot < 0 || slot >= ix.cfg.Slots {
		return fmt.Errorf("%w: slot %d of %d", ErrSlotRange, slot, ix.cfg.Slots)
	}
	g, err := ix.globalBucket(field, bucket)
	if err != nil {
		return err
	}
	byteIdx := slot / 8
	c := byteIdx / ix.cfg.PageSize
	off := byteIdx % ix.cfg.PageSize
	page := ix.lay.page(g, c)
	shOff := (page-ix.cfg.FirstPage)*ix.cfg.PageSize + off
	nv := ix.shadow[shOff] &^ (1 << (slot % 8))
	if nv == ix.shadow[shOff] {
		return nil // already a member
	}
	if err := ix.dev.ProgramByte(page*ix.cfg.PageSize+off, nv); err != nil {
		return err
	}
	ix.shadow[shOff] = nv
	return nil
}

// Query evaluates the predicate entirely in flash and writes the matching
// slots into dst (1 = match, conventional polarity, length BitmapBytes).
// The device is charged one sense per leaf batch — never a page read.
func (ix *Index) Query(p Pred, dst []byte) error {
	if len(dst) != ix.lay.bytes {
		return fmt.Errorf("%w: got %d, want %d", ErrBitmapSize, len(dst), ix.lay.bytes)
	}
	if err := ix.checkPred(p); err != nil {
		return err
	}
	buf := ix.getBuf()
	defer ix.putBuf(buf)
	for c := 0; c < ix.lay.chunkPages; c++ {
		if err := ix.evalFlash(p, c, buf); err != nil {
			return err
		}
		copy(dst[c*ix.cfg.PageSize:], buf[:ix.lay.chunkLen(c)])
	}
	maskTail(dst, ix.cfg.Slots)
	return nil
}

// QueryHost evaluates the same predicate with plain host reads of the
// bitmap pages — the read-everything baseline and the oracle the in-flash
// plans are tested against.
func (ix *Index) QueryHost(p Pred, dst []byte) error {
	if len(dst) != ix.lay.bytes {
		return fmt.Errorf("%w: got %d, want %d", ErrBitmapSize, len(dst), ix.lay.bytes)
	}
	if err := ix.checkPred(p); err != nil {
		return err
	}
	buf := ix.getBuf()
	defer ix.putBuf(buf)
	for c := 0; c < ix.lay.chunkPages; c++ {
		n := ix.lay.chunkLen(c)
		if err := ix.evalHost(p, c, buf[:n]); err != nil {
			return err
		}
		copy(dst[c*ix.cfg.PageSize:], buf[:n])
	}
	maskTail(dst, ix.cfg.Slots)
	return nil
}

// checkPred validates every leaf against the schema up front, so plans
// never fail half-evaluated.
func (ix *Index) checkPred(p Pred) error {
	var err error
	walk(p, func(n Pred) {
		if eq, ok := n.(predEq); ok && err == nil {
			_, err = ix.globalBucket(eq.field, eq.bucket)
		}
	})
	return err
}

func (ix *Index) getBuf() []byte {
	if n := len(ix.scratch); n > 0 {
		b := ix.scratch[n-1]
		ix.scratch = ix.scratch[:n-1]
		return b
	}
	return make([]byte, ix.cfg.PageSize)
}

func (ix *Index) putBuf(b []byte) { ix.scratch = append(ix.scratch, b) }

// evalFlash computes the membership bitmap of p for chunk c into out (one
// page), using in-flash senses only.
//
// The lowering rests on the inverted storage: for a leaf with stored page
// P, membership is M = ¬P, so AND(M₁..Mₖ) = SenseAND over the pages with
// every reference inverted, and OR(M₁..Mₖ) = SenseOR likewise — one sense
// for up to MaxSensePages leaves. A negated leaf is the stored page itself
// (¬M = P), so it joins the same batch with its invert flag cleared.
// Non-leaf children are evaluated recursively and folded host-side.
func (ix *Index) evalFlash(p Pred, c int, out []byte) error {
	switch n := p.(type) {
	case predEq:
		g, _ := ix.globalBucket(n.field, n.bucket)
		ix.senseP = append(ix.senseP[:0], ix.lay.page(g, c))
		ix.senseI = append(ix.senseI[:0], true)
		return ix.dev.SenseMulti(flash.SenseAND, ix.senseP, ix.senseI, out)
	case predNot:
		if eq, ok := n.kid.(predEq); ok {
			g, _ := ix.globalBucket(eq.field, eq.bucket)
			ix.senseP = append(ix.senseP[:0], ix.lay.page(g, c))
			ix.senseI = append(ix.senseI[:0], false)
			return ix.dev.SenseMulti(flash.SenseAND, ix.senseP, ix.senseI, out)
		}
		if err := ix.evalFlash(n.kid, c, out); err != nil {
			return err
		}
		for i := range out {
			out[i] = ^out[i]
		}
		return nil
	case predAnd:
		return ix.evalGroup(flash.SenseAND, n.kids, c, out)
	case predOr:
		return ix.evalGroup(flash.SenseOR, n.kids, c, out)
	}
	return fmt.Errorf("isc: unknown predicate node %T", p)
}

// evalGroup lowers one And/Or node: leaves are batched into senses of up
// to MaxSensePages pages, subtrees recurse, and partial results fold into
// out with the node's operator.
func (ix *Index) evalGroup(op flash.SenseOp, kids []Pred, c int, out []byte) error {
	identity := byte(0xFF)
	if op == flash.SenseOR {
		identity = 0
	}
	for i := range out {
		out[i] = identity
	}
	first := true
	flush := func(dst []byte) error {
		err := ix.dev.SenseMulti(op, ix.senseP, ix.senseI, dst)
		ix.senseP = ix.senseP[:0]
		ix.senseI = ix.senseI[:0]
		return err
	}
	fold := func(part []byte) {
		if op == flash.SenseAND {
			for i := range out {
				out[i] &= part[i]
			}
		} else {
			for i := range out {
				out[i] |= part[i]
			}
		}
	}
	ix.senseP = ix.senseP[:0]
	ix.senseI = ix.senseI[:0]
	var sub []Pred
	for _, k := range kids {
		page, inv, leaf := ix.leafPage(k, c)
		if !leaf {
			sub = append(sub, k)
			continue
		}
		ix.senseP = append(ix.senseP, page)
		ix.senseI = append(ix.senseI, inv)
		if len(ix.senseP) == ix.cfg.MaxSensePages {
			if first {
				if err := flush(out); err != nil {
					return err
				}
				first = false
				continue
			}
			buf := ix.getBuf()
			err := flush(buf)
			if err == nil {
				fold(buf)
			}
			ix.putBuf(buf)
			if err != nil {
				return err
			}
		}
	}
	if len(ix.senseP) > 0 {
		if first {
			if err := flush(out); err != nil {
				return err
			}
			first = false
		} else {
			buf := ix.getBuf()
			err := flush(buf)
			if err == nil {
				fold(buf)
			}
			ix.putBuf(buf)
			if err != nil {
				return err
			}
		}
	}
	for _, k := range sub {
		buf := ix.getBuf()
		err := ix.evalFlash(k, c, buf)
		if err == nil {
			if first {
				copy(out, buf)
				first = false
			} else {
				fold(buf)
			}
		}
		ix.putBuf(buf)
		if err != nil {
			return err
		}
	}
	return nil
}

// leafPage reports whether k lowers to a single sensed page in chunk c:
// an equality leaf (inverted reference) or its negation (plain reference).
func (ix *Index) leafPage(k Pred, c int) (page int, invert, ok bool) {
	switch n := k.(type) {
	case predEq:
		g, _ := ix.globalBucket(n.field, n.bucket)
		return ix.lay.page(g, c), true, true
	case predNot:
		if eq, isEq := n.kid.(predEq); isEq {
			g, _ := ix.globalBucket(eq.field, eq.bucket)
			return ix.lay.page(g, c), false, true
		}
	}
	return 0, false, false
}

// evalHost mirrors evalFlash with host reads; out is chunkLen(c) bytes.
func (ix *Index) evalHost(p Pred, c int, out []byte) error {
	switch n := p.(type) {
	case predEq:
		g, _ := ix.globalBucket(n.field, n.bucket)
		if err := ix.dev.Read(ix.lay.page(g, c)*ix.cfg.PageSize, out); err != nil {
			return err
		}
		for i := range out {
			out[i] = ^out[i]
		}
		return nil
	case predNot:
		if err := ix.evalHost(n.kid, c, out); err != nil {
			return err
		}
		for i := range out {
			out[i] = ^out[i]
		}
		return nil
	case predAnd, predOr:
		var kids []Pred
		identity := byte(0xFF)
		and := true
		if a, ok := n.(predAnd); ok {
			kids = a.kids
		} else {
			kids = n.(predOr).kids
			identity = 0
			and = false
		}
		for i := range out {
			out[i] = identity
		}
		buf := ix.getBuf()
		defer ix.putBuf(buf)
		part := buf[:len(out)]
		for _, k := range kids {
			if err := ix.evalHost(k, c, part); err != nil {
				return err
			}
			for i := range out {
				if and {
					out[i] &= part[i]
				} else {
					out[i] |= part[i]
				}
			}
		}
		return nil
	}
	return fmt.Errorf("isc: unknown predicate node %T", p)
}
