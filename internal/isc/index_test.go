package isc

import (
	"errors"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// testDevice returns a small device: 16-byte pages, 2 banks, and an index
// geometry that forces multi-chunk bitmaps (300 slots → 38 bytes → 3
// chunks) and multi-batch senses (MaxSensePages 3 in the index config).
func testDevice(t testing.TB) *flash.Device {
	t.Helper()
	sp := flash.DefaultSpec()
	sp.PageSize = 16
	sp.NumPages = 64
	sp.Banks = 2
	return flash.MustNewDevice(sp)
}

func testIndexConfig() IndexConfig {
	return IndexConfig{
		PageSize:      16,
		Banks:         2,
		MaxSensePages: 3, // force leaf batches to split and fold host-side
		FirstPage:     0,
		Slots:         300,
		Fields: []Field{
			{Name: "status", Buckets: 4},
			{Name: "region", Buckets: 3},
		},
	}
}

// membership is the RAM truth the index is compared against.
type membership map[string]map[int]map[int]bool // field → bucket → slot

func (m membership) add(field string, bucket, slot int) {
	if m[field] == nil {
		m[field] = map[int]map[int]bool{}
	}
	if m[field][bucket] == nil {
		m[field][bucket] = map[int]bool{}
	}
	m[field][bucket][slot] = true
}

func (m membership) has(field string, bucket, slot int) bool {
	return m[field][bucket][slot]
}

// evalModel evaluates the predicate for one slot against the RAM model.
func evalModel(p Pred, m membership, slot int) bool {
	switch n := p.(type) {
	case predEq:
		return m.has(n.field, n.bucket, slot)
	case predNot:
		return !evalModel(n.kid, m, slot)
	case predAnd:
		for _, k := range n.kids {
			if !evalModel(k, m, slot) {
				return false
			}
		}
		return true
	case predOr:
		for _, k := range n.kids {
			if evalModel(k, m, slot) {
				return true
			}
		}
		return false
	}
	return false
}

// randomPred draws a predicate tree of bounded depth over the test schema.
func randomPred(rng *xrand.RNG, depth int) Pred {
	fields := []Field{{Name: "status", Buckets: 4}, {Name: "region", Buckets: 3}}
	leaf := func() Pred {
		f := fields[rng.Intn(len(fields))]
		return Eq(f.Name, rng.Intn(f.Buckets))
	}
	if depth == 0 {
		return leaf()
	}
	switch rng.Intn(6) {
	case 0, 1:
		return leaf()
	case 2:
		return Not(randomPred(rng, depth-1))
	case 3, 4:
		kids := make([]Pred, 1+rng.Intn(3))
		for i := range kids {
			kids[i] = randomPred(rng, depth-1)
		}
		return And(kids...)
	default:
		kids := make([]Pred, 1+rng.Intn(3))
		for i := range kids {
			kids[i] = randomPred(rng, depth-1)
		}
		return Or(kids...)
	}
}

func bit(bm []byte, i int) bool { return bm[i/8]&(1<<(i%8)) != 0 }

// TestIndexQueryMatchesOracles: on random memberships and random predicate
// trees, the in-flash plan, the host-read oracle and the RAM model must
// agree on every slot — and the in-flash path must not issue a single host
// read of a bitmap page.
func TestIndexQueryMatchesOracles(t *testing.T) {
	dev := testDevice(t)
	ix, err := NewIndex(dev, testIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Reset(); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(0x1DE7)
	model := membership{}
	for _, f := range testIndexConfig().Fields {
		for slot := 0; slot < ix.Slots(); slot++ {
			// ~90% of slots get a bucket; ~15% pick up a second (stale)
			// membership, like an updated record would.
			if rng.Intn(10) == 0 {
				continue
			}
			n := 1
			if rng.Intn(7) == 0 {
				n = 2
			}
			for i := 0; i < n; i++ {
				b := rng.Intn(f.Buckets)
				if err := ix.Add(slot, f.Name, b); err != nil {
					t.Fatal(err)
				}
				model.add(f.Name, b, slot)
			}
		}
	}
	inFlash := make([]byte, ix.BitmapBytes())
	host := make([]byte, ix.BitmapBytes())
	for trial := 0; trial < 300; trial++ {
		p := randomPred(rng, 3)
		before := dev.Stats()
		if err := ix.Query(p, inFlash); err != nil {
			t.Fatalf("trial %d %s: %v", trial, p, err)
		}
		delta := dev.Stats().Sub(before)
		if delta.Reads != 0 {
			t.Fatalf("trial %d %s: in-flash query issued %d host read bytes", trial, p, delta.Reads)
		}
		if delta.Senses == 0 {
			t.Fatalf("trial %d %s: in-flash query issued no senses", trial, p)
		}
		if err := ix.QueryHost(p, host); err != nil {
			t.Fatalf("trial %d %s: host oracle: %v", trial, p, err)
		}
		for slot := 0; slot < ix.Slots(); slot++ {
			want := evalModel(p, model, slot)
			if got := bit(inFlash, slot); got != want {
				t.Fatalf("trial %d %s: slot %d in-flash=%v model=%v", trial, p, slot, got, want)
			}
			if got := bit(host, slot); got != want {
				t.Fatalf("trial %d %s: slot %d host=%v model=%v", trial, p, slot, got, want)
			}
		}
		// Padding bits beyond Slots must stay clear.
		for i := ix.Slots(); i < 8*len(inFlash); i++ {
			if bit(inFlash, i) || bit(host, i) {
				t.Fatalf("trial %d: padding bit %d set", trial, i)
			}
		}
	}
}

// TestIndexMaintenanceIsEraseFree: adds — including duplicate adds and the
// stale bits of updated records — must never erase a page; only Reset may.
func TestIndexMaintenanceIsEraseFree(t *testing.T) {
	dev := testDevice(t)
	ix, err := NewIndex(dev, testIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Reset(); err != nil {
		t.Fatal(err)
	}
	base := dev.Stats().Erases
	rng := xrand.New(7)
	for i := 0; i < 2000; i++ {
		if err := ix.Add(rng.Intn(ix.Slots()), "status", rng.Intn(4)); err != nil {
			t.Fatal(err)
		}
	}
	if got := dev.Stats().Erases; got != base {
		t.Fatalf("index maintenance erased %d pages", got-base)
	}
	// Re-adding an existing member must not even program.
	if err := ix.Add(5, "region", 1); err != nil {
		t.Fatal(err)
	}
	before := dev.Stats()
	if err := ix.Add(5, "region", 1); err != nil {
		t.Fatal(err)
	}
	if d := dev.Stats().Sub(before); d.Programs != 0 && d.ProgramsSkipped == 0 {
		t.Fatalf("duplicate add programmed: %+v", d)
	}
}

// TestIndexErrors covers schema validation and argument checks.
func TestIndexErrors(t *testing.T) {
	dev := testDevice(t)
	bad := []IndexConfig{
		{},
		{PageSize: 16, Banks: 2, MaxSensePages: 3, Slots: 10},                                      // no fields
		{PageSize: 16, Banks: 2, MaxSensePages: 3, Slots: 10, Fields: []Field{{Name: ""}}},         // empty name
		{PageSize: 16, Banks: 2, MaxSensePages: 3, Slots: 10, Fields: []Field{{Name: "f"}}},        // zero buckets
		{PageSize: 16, Banks: 2, MaxSensePages: 0, Slots: 10, Fields: []Field{{"f", 2}}},           // no senses
		{PageSize: 16, Banks: 2, MaxSensePages: 3, Slots: 10, Fields: []Field{{"f", 2}, {"f", 2}}}, // dup
	}
	for i, cfg := range bad {
		if _, err := NewIndex(dev, cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("config %d accepted: %v", i, err)
		}
	}
	ix, err := NewIndex(dev, testIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, ix.BitmapBytes())
	if err := ix.Query(Eq("bogus", 0), dst); !errors.Is(err, ErrUnknownField) {
		t.Errorf("unknown field: %v", err)
	}
	if err := ix.Query(Eq("status", 4), dst); !errors.Is(err, ErrBucketRange) {
		t.Errorf("bucket range: %v", err)
	}
	if err := ix.Query(Eq("status", 0), dst[:1]); !errors.Is(err, ErrBitmapSize) {
		t.Errorf("short buffer: %v", err)
	}
	if err := ix.Add(-1, "status", 0); !errors.Is(err, ErrSlotRange) {
		t.Errorf("slot range: %v", err)
	}
	if err := ix.Add(0, "status", -1); !errors.Is(err, ErrBucketRange) {
		t.Errorf("negative bucket: %v", err)
	}
}

// TestPredEval pins the exact per-record semantics candidates are
// re-checked with.
func TestPredEval(t *testing.T) {
	buckets := map[string]int{"status": 1, "region": 2}
	of := func(f string) int {
		if b, ok := buckets[f]; ok {
			return b
		}
		return -1
	}
	cases := []struct {
		p    Pred
		want bool
	}{
		{Eq("status", 1), true},
		{Eq("status", 0), false},
		{Eq("missing", 0), false},
		{Not(Eq("status", 0)), true},
		{And(Eq("status", 1), Eq("region", 2)), true},
		{And(Eq("status", 1), Eq("region", 0)), false},
		{Or(Eq("status", 0), Eq("region", 2)), true},
		{In("region", 0, 1, 2), true},
		{In("region", 0, 1), false},
		{And(), true},
		{Or(), false},
	}
	for _, tc := range cases {
		if got := Eval(tc.p, of); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.p, got, tc.want)
		}
	}
}

// TestPositiveRewritePreservesSemantics: for records with exactly one
// bucket per field, the negation-normal-form rewrite used for stale-bit
// soundness must evaluate identically to the original predicate, and its
// tree must contain no Not nodes.
func TestPositiveRewritePreservesSemantics(t *testing.T) {
	rng := xrand.New(0x9051)
	fields := map[string]int{"status": 4, "region": 3}
	counts := func(f string) int { return fields[f] }
	for trial := 0; trial < 500; trial++ {
		p := randomPred(rng, 3)
		q := Positive(p, counts)
		walk(q, func(n Pred) {
			if _, ok := n.(predNot); ok {
				t.Fatalf("trial %d: rewrite of %s left a Not: %s", trial, p, q)
			}
		})
		for rec := 0; rec < 30; rec++ {
			assign := map[string]int{"status": rng.Intn(4), "region": rng.Intn(3)}
			of := func(f string) int { return assign[f] }
			if Eval(p, of) != Eval(q, of) {
				t.Fatalf("trial %d: %s and rewrite %s disagree on %v", trial, p, q, assign)
			}
		}
	}
}

// BenchmarkIndexScanQuery measures one in-flash predicate evaluation over
// the full slot space.
func BenchmarkIndexScanQuery(b *testing.B) {
	dev := testDevice(b)
	ix, err := NewIndex(dev, testIndexConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := ix.Reset(); err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	for slot := 0; slot < ix.Slots(); slot++ {
		_ = ix.Add(slot, "status", rng.Intn(4))
		_ = ix.Add(slot, "region", rng.Intn(3))
	}
	p := And(In("status", 0, 1), Not(Eq("region", 2)))
	dst := make([]byte, ix.BitmapBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.Query(p, dst); err != nil {
			b.Fatal(err)
		}
	}
}
