package rival

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// TestWOMZeroValueGenerations: value 00 writes no cells at generation 1
// but must still consume the generation, so the *next* change lands as a
// generation-2 codeword rather than colliding with generation 1.
func TestWOMZeroValueGenerations(t *testing.T) {
	dev := newDev(t)
	w := NewWOM(dev, 0)
	zeros := make([]byte, w.Capacity())
	if err := w.Write(zeros); err != nil {
		t.Fatal(err)
	}
	if dev.Flash().Stats().Programs != 0 {
		t.Errorf("all-zero generation-1 write programmed %d bytes; 00 needs no cells",
			dev.Flash().Stats().Programs)
	}
	// Change everything: must fit in generation 2 with no erase.
	ones := make([]byte, w.Capacity())
	for i := range ones {
		ones[i] = 0xFF
	}
	if err := w.Write(ones); err != nil {
		t.Fatal(err)
	}
	if dev.Flash().Stats().Erases != 0 {
		t.Errorf("second write erased %d times", dev.Flash().Stats().Erases)
	}
	got := make([]byte, w.Capacity())
	_ = w.Read(got)
	for i := range got {
		if got[i] != 0xFF {
			t.Fatalf("byte %d = %#x after gen-2 write", i, got[i])
		}
	}
	// Third change: now the erase is due.
	rng := xrand.New(1)
	mixed := make([]byte, w.Capacity())
	for i := range mixed {
		mixed[i] = rng.Byte() | 1 // ensure most dibits change from 11
	}
	if err := w.Write(mixed); err != nil {
		t.Fatal(err)
	}
	if dev.Flash().Stats().Erases != 1 {
		t.Errorf("third write should erase exactly once, got %d", dev.Flash().Stats().Erases)
	}
}

// TestWOMGenerationsPerDibitIndependent: only dibits that actually change
// consume generations, so a hot dibit forces the erase while cold dibits
// could have absorbed more writes.
func TestWOMGenerationsPerDibitIndependent(t *testing.T) {
	dev := newDev(t)
	w := NewWOM(dev, 0)
	buf := make([]byte, w.Capacity())
	// Flip only the first byte's dibits each round; the rest stay 0.
	vals := []byte{0b01, 0b10, 0b11}
	for i, v := range vals {
		buf[0] = v
		if err := w.Write(buf); err != nil {
			t.Fatal(err)
		}
		wantErases := uint64(0)
		if i >= 2 { // third change of the same dibit
			wantErases = 1
		}
		if got := dev.Flash().Stats().Erases; got != wantErases {
			t.Fatalf("after write %d: erases = %d, want %d", i, got, wantErases)
		}
	}
}
