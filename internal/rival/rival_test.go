package rival

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

func newDev(t *testing.T) *core.Device {
	t.Helper()
	spec := flash.DefaultSpec()
	spec.PageSize = 48 // divisible by 3 for clean WOM packing
	spec.NumPages = 8
	return core.MustNewDevice(spec)
}

// --- LogWriter ---

func TestLogWriterAppendReadBack(t *testing.T) {
	dev := newDev(t)
	l, err := NewLogWriter(dev, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	rec := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	slot, err := l.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := l.ReadSlot(slot, got); err != nil {
		t.Fatal(err)
	}
	for i := range rec {
		if got[i] != rec[i] {
			t.Fatalf("byte %d = %#x", i, got[i])
		}
	}
}

// TestLogWriterErasesOnlyOnWrap: a full page of appends costs zero erases;
// the wrap costs exactly one.
func TestLogWriterErasesOnlyOnWrap(t *testing.T) {
	dev := newDev(t)
	l, err := NewLogWriter(dev, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	per := l.RecordsPerErase()
	if per != 12 { // 48/4
		t.Fatalf("records per erase = %d", per)
	}
	rec := []byte{1, 2, 3, 4}
	for i := 0; i < per; i++ {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Flash().Stats().Erases != 0 {
		t.Errorf("erases before wrap = %d", dev.Flash().Stats().Erases)
	}
	if _, err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	if dev.Flash().Stats().Erases != 1 {
		t.Errorf("erases after wrap = %d, want 1", dev.Flash().Stats().Erases)
	}
	if l.Head() != 1 {
		t.Errorf("head after wrap = %d", l.Head())
	}
}

func TestLogWriterValidation(t *testing.T) {
	dev := newDev(t)
	if _, err := NewLogWriter(dev, 0, 0); err == nil {
		t.Error("zero record size accepted")
	}
	l, _ := NewLogWriter(dev, 0, 4)
	if _, err := l.Append([]byte{1}); err == nil {
		t.Error("short record accepted")
	}
	if err := l.ReadSlot(99, make([]byte, 4)); err == nil {
		t.Error("bad slot accepted")
	}
}

// --- StrikeCounter ---

func TestStrikeCounterCounts(t *testing.T) {
	dev := newDev(t)
	c, err := NewStrikeCounter(dev, 0, 4) // 32 increments per erase
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if err := c.Increment(); err != nil {
			t.Fatal(err)
		}
		if c.Value() != uint64(i) {
			t.Fatalf("after %d increments Value() = %d", i, c.Value())
		}
	}
	// 100 increments at 32/erase: erases at increments 33 and 65 and 97.
	if got := dev.Flash().Stats().Erases; got != 3 {
		t.Errorf("erases = %d, want 3", got)
	}
}

func TestStrikeCounterLoad(t *testing.T) {
	dev := newDev(t)
	c, _ := NewStrikeCounter(dev, 0, 4)
	for i := 0; i < 10; i++ {
		if err := c.Increment(); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate reboot: rebuild from flash.
	c2, _ := NewStrikeCounter(dev, 0, 4)
	if err := c2.Load(0); err != nil {
		t.Fatal(err)
	}
	if c2.Value() != 10 {
		t.Errorf("recovered value = %d, want 10", c2.Value())
	}
}

// TestStrikeVsBinaryCounter: the strike encoding must need far fewer erases
// than rewriting the binary value.
func TestStrikeVsBinaryCounter(t *testing.T) {
	devS := newDev(t)
	strike, _ := NewStrikeCounter(devS, 0, 8) // 64/erase
	devB := newDev(t)
	binary := NewBinaryCounter(devB, 0)
	const n = 300
	for i := 0; i < n; i++ {
		if err := strike.Increment(); err != nil {
			t.Fatal(err)
		}
		if err := binary.Increment(); err != nil {
			t.Fatal(err)
		}
	}
	se := devS.Flash().Stats().Erases
	be := devB.Flash().Stats().Erases
	if se*10 > be {
		t.Errorf("strike erases %d not ≪ binary erases %d", se, be)
	}
	if strike.Value() != n || binary.Value() != n {
		t.Error("counter values diverged")
	}
}

func TestStrikeCounterValidation(t *testing.T) {
	dev := newDev(t)
	if _, err := NewStrikeCounter(dev, 0, 0); err == nil {
		t.Error("zero field accepted")
	}
	if _, err := NewStrikeCounter(dev, 0, 1000); err == nil {
		t.Error("oversized field accepted")
	}
}

// --- WOM ---

func TestWOMCapacityAndOverhead(t *testing.T) {
	dev := newDev(t)
	w := NewWOM(dev, 0)
	// 48 bytes = 384 cells = 128 dibits = 32 logical bytes.
	if w.Capacity() != 32 {
		t.Fatalf("capacity = %d, want 32", w.Capacity())
	}
	if w.Overhead() != 1.5 {
		t.Errorf("overhead = %v", w.Overhead())
	}
}

// TestWOMTwoWritesNoErase: two arbitrary full-buffer writes must not erase.
func TestWOMTwoWritesNoErase(t *testing.T) {
	dev := newDev(t)
	w := NewWOM(dev, 0)
	rng := xrand.New(3)
	a := make([]byte, w.Capacity())
	b := make([]byte, w.Capacity())
	for i := range a {
		a[i], b[i] = rng.Byte(), rng.Byte()
	}
	if err := w.Write(a); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(b); err != nil {
		t.Fatal(err)
	}
	if got := dev.Flash().Stats().Erases; got != 0 {
		t.Fatalf("erases after two writes = %d, want 0", got)
	}
	got := make([]byte, w.Capacity())
	if err := w.Read(got); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if got[i] != b[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], b[i])
		}
	}
}

// TestWOMThirdWriteErases: the third change of a dibit forces the erase.
func TestWOMThirdWriteErases(t *testing.T) {
	dev := newDev(t)
	w := NewWOM(dev, 0)
	bufs := [][]byte{make([]byte, 32), make([]byte, 32), make([]byte, 32)}
	rng := xrand.New(5)
	for _, b := range bufs {
		for i := range b {
			b[i] = rng.Byte()
		}
	}
	for _, b := range bufs[:2] {
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Write(bufs[2]); err != nil {
		t.Fatal(err)
	}
	if got := dev.Flash().Stats().Erases; got != 1 {
		t.Errorf("erases after third write = %d, want 1", got)
	}
	got := make([]byte, 32)
	_ = w.Read(got)
	for i := range bufs[2] {
		if got[i] != bufs[2][i] {
			t.Fatalf("byte %d corrupted after erase-and-rewrite", i)
		}
	}
}

// TestWOMFlashMatchesCache: decoding the cells directly must agree with the
// cached logical content after mixed-generation writes.
func TestWOMFlashMatchesCache(t *testing.T) {
	dev := newDev(t)
	w := NewWOM(dev, 0)
	rng := xrand.New(7)
	buf := make([]byte, w.Capacity())
	for round := 0; round < 5; round++ {
		for i := range buf {
			if rng.Intn(3) == 0 { // change only some bytes
				buf[i] = rng.Byte()
			}
		}
		if err := w.Write(buf); err != nil {
			t.Fatal(err)
		}
		for d := 0; d < w.Capacity()*4; d++ {
			got, err := w.DecodeCell(d)
			if err != nil {
				t.Fatal(err)
			}
			want := buf[d/4] >> uint(2*(d%4)) & 0b11
			if got != want {
				t.Fatalf("round %d dibit %d: cells decode %02b, cache %02b", round, d, got, want)
			}
		}
	}
}

// TestWOMRepeatedSameValueFree: rewriting identical data costs nothing.
func TestWOMRepeatedSameValueFree(t *testing.T) {
	dev := newDev(t)
	w := NewWOM(dev, 0)
	buf := make([]byte, w.Capacity())
	rng := xrand.New(9)
	for i := range buf {
		buf[i] = rng.Byte()
	}
	if err := w.Write(buf); err != nil {
		t.Fatal(err)
	}
	progsAfterFirst := dev.Flash().Stats().Programs
	for i := 0; i < 10; i++ {
		if err := w.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := dev.Flash().Stats().Programs; got != progsAfterFirst {
		t.Errorf("identical rewrites programmed %d extra bytes", got-progsAfterFirst)
	}
}

func TestWOMWriteSizeValidation(t *testing.T) {
	dev := newDev(t)
	w := NewWOM(dev, 0)
	if err := w.Write(make([]byte, 3)); err == nil {
		t.Error("short write accepted")
	}
}
