package rival

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/core"
)

// WOM implements the Rivest–Shamir ⟨2,2⟩ write-once-memory code over one
// flash page: every 2 logical bits occupy 3 cells and survive two writes
// between erases. This is the "coding" family of erase-reduction techniques
// the paper cites [39,57,58,98] and critiques for its memory footprint
// (1.5× here).
//
// Code (in RS space, where 1 = a written cell; flash stores the
// complement, since erased NOR cells read 1 and programming clears):
//
//	value  gen-1  gen-2
//	 00     000    111
//	 01     100    011
//	 10     010    101
//	 11     001    110
//
// gen-2(v) is the complement of gen-1(v), so any gen-1 codeword can reach
// any *different* value's gen-2 codeword by writing cells only — rewriting
// the same value is a no-op, which is what makes the construction work.
type WOM struct {
	dev  *core.Device
	page int
	// gen tracks the write generation of each dibit (0 = erased).
	gen []uint8
	// cache mirrors the decoded logical content.
	cache []byte
}

// gen1Cell[v] is the cell index written by the generation-1 codeword of v,
// or -1 for value 00 (no cell written).
var gen1Cell = [4]int{-1, 0, 1, 2}

// NewWOM builds a WOM store over one page. Capacity is
// 2·(pageBits/3)/8 logical bytes.
func NewWOM(dev *core.Device, page int) *WOM {
	ps := dev.Flash().Spec().PageSize
	dibits := ps * 8 / 3
	dibits -= dibits % 4 // whole logical bytes only
	return &WOM{
		dev:   dev,
		page:  page,
		gen:   make([]uint8, dibits),
		cache: make([]byte, dibits/4),
	}
}

// Capacity returns the logical bytes the page stores under the code.
func (w *WOM) Capacity() int { return len(w.cache) }

// Overhead returns the footprint multiplier of the code.
func (w *WOM) Overhead() float64 { return 1.5 }

// Read fills dst with the logical content (from the decoded cache, which
// mirrors flash; charge a page read for fidelity).
func (w *WOM) Read(dst []byte) error {
	// Charge the physical read of the coded page.
	buf := make([]byte, w.dev.Flash().Spec().PageSize)
	if err := w.dev.Flash().Read(w.dev.Flash().PageBase(w.page), buf); err != nil {
		return err
	}
	copy(dst, w.cache)
	return nil
}

// Write stores the logical buffer (must be exactly Capacity bytes). Dibits
// still on generation ≤ 1 absorb the change with programs only; if any
// dibit would need a third write, the whole page is erased first and
// everything restarts at generation 1.
func (w *WOM) Write(data []byte) error {
	if len(data) != w.Capacity() {
		return fmt.Errorf("rival: WOM write needs exactly %d bytes, got %d", w.Capacity(), len(data))
	}
	if w.needsErase(data) {
		if err := w.dev.Flash().ErasePage(w.page); err != nil {
			return err
		}
		for i := range w.gen {
			w.gen[i] = 0
		}
		for i := range w.cache {
			w.cache[i] = 0
		}
	}
	return w.program(data)
}

// needsErase reports whether any changing dibit has exhausted both
// generations.
func (w *WOM) needsErase(data []byte) bool {
	for d := 0; d < len(w.gen); d++ {
		if w.gen[d] >= 2 && w.dibitOf(data, d) != w.dibitOf(w.cache, d) {
			return true
		}
	}
	return false
}

// program writes every changing dibit at its next generation.
func (w *WOM) program(data []byte) error {
	fl := w.dev.Flash()
	base := fl.PageBase(w.page)
	// Collect per-byte clears so each flash byte is programmed once.
	ps := fl.Spec().PageSize
	clear := make([]byte, ps) // bits to clear per byte
	touched := make([]bool, ps)
	for d := 0; d < len(w.gen); d++ {
		v := w.dibitOf(data, d)
		cur := w.dibitOf(w.cache, d)
		if w.gen[d] != 0 && v == cur {
			continue // same value: no cells to write
		}
		var rs uint8 // RS-space codeword to have written after this op
		switch w.gen[d] {
		case 0:
			rs = gen1Word(v)
			w.gen[d] = 1
			if v == 0 {
				// 00 at generation 1 writes no cells but still
				// consumes the generation.
				w.setDibit(d, v)
				continue
			}
		case 1:
			rs = ^gen1Word(v) & 0b111 // generation-2 codeword
			w.gen[d] = 2
		default:
			return fmt.Errorf("rival: WOM dibit %d written past generation 2", d)
		}
		w.setDibit(d, v)
		for c := 0; c < 3; c++ {
			if rs&(1<<uint(c)) == 0 {
				continue
			}
			bit := d*3 + c
			clear[bit/8] |= 1 << uint(bit%8)
			touched[bit/8] = true
		}
	}
	for i := 0; i < ps; i++ {
		if !touched[i] {
			continue
		}
		cur, err := fl.ReadByteAt(base + i)
		if err != nil {
			return err
		}
		if err := fl.ProgramByte(base+i, cur&^clear[i]); err != nil {
			return err
		}
	}
	return nil
}

func gen1Word(v byte) uint8 {
	if gen1Cell[v] < 0 {
		return 0
	}
	return 1 << uint(gen1Cell[v])
}

func (w *WOM) dibitOf(buf []byte, d int) byte {
	return buf[d/4] >> uint(2*(d%4)) & 0b11
}

func (w *WOM) setDibit(d int, v byte) {
	shift := uint(2 * (d % 4))
	w.cache[d/4] = w.cache[d/4]&^(0b11<<shift) | v<<shift
}

// DecodeCell decodes one dibit directly from flash (used by tests to prove
// the cache matches the cells).
func (w *WOM) DecodeCell(d int) (byte, error) {
	fl := w.dev.Flash()
	base := fl.PageBase(w.page)
	var rs uint8
	for c := 0; c < 3; c++ {
		bit := d*3 + c
		b, err := fl.ReadByteAt(base + bit/8)
		if err != nil {
			return 0, err
		}
		if b&(1<<uint(bit%8)) == 0 { // cleared cell = written in RS space
			rs |= 1 << uint(c)
		}
	}
	switch popcount3(rs) {
	case 0:
		return 0, nil
	case 1:
		return cellValue(rs), nil
	case 2:
		return cellValue(^rs & 0b111), nil
	default:
		return 0, nil // 111 is generation-2 of value 00
	}
}

func popcount3(v uint8) int {
	return int(v&1 + v>>1&1 + v>>2&1)
}

// cellValue inverts gen1Word for weight-1 codewords.
func cellValue(rs uint8) byte {
	for v := byte(1); v < 4; v++ {
		if gen1Word(v) == rs {
			return v
		}
	}
	return 0
}
