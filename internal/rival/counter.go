package rival

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/core"
)

// StrikeCounter stores a monotonically increasing counter in flash such
// that each increment clears exactly one more bit — the classic EEPROM/
// flash "strike" (tally) encoding MicroVault-style counters build on.
// A field of n bytes supports 8·n increments per erase cycle; the decoded
// value is eraseCount·8·n + strikes.
//
// Compared to storing the binary counter value (which needs an erase
// almost every increment, because +1 usually sets bits), the strike
// encoding trades an 8×-per-bit footprint for a ~8·n× erase reduction.
// It is exact, but works only for counters (§VII).
type StrikeCounter struct {
	dev   *core.Device
	page  int
	bytes int // field width
	// cached state (mirrors flash; rebuilt by Load)
	strikes int
	erases  uint64
}

// NewStrikeCounter builds a counter over the first `fieldBytes` bytes of a
// page. The caller owns the page.
func NewStrikeCounter(dev *core.Device, page, fieldBytes int) (*StrikeCounter, error) {
	ps := dev.Flash().Spec().PageSize
	if fieldBytes <= 0 || fieldBytes > ps {
		return nil, fmt.Errorf("rival: counter field %d bytes does not fit a %d-byte page", fieldBytes, ps)
	}
	return &StrikeCounter{dev: dev, page: page, bytes: fieldBytes}, nil
}

// Capacity returns the increments supported per erase cycle.
func (c *StrikeCounter) Capacity() int { return 8 * c.bytes }

// Value returns the current counter value.
func (c *StrikeCounter) Value() uint64 {
	return c.erases*uint64(c.Capacity()) + uint64(c.strikes)
}

// Increment advances the counter by one, clearing a single bit, or erasing
// and restarting the field when all strikes are spent.
func (c *StrikeCounter) Increment() error {
	fl := c.dev.Flash()
	base := fl.PageBase(c.page)
	if c.strikes >= c.Capacity() {
		if err := fl.ErasePage(c.page); err != nil {
			return err
		}
		c.strikes = 0
		c.erases++
	}
	byteIdx := c.strikes / 8
	bitIdx := uint(c.strikes % 8)
	cur, err := fl.ReadByteAt(base + byteIdx)
	if err != nil {
		return err
	}
	if err := fl.ProgramByte(base+byteIdx, cur&^(1<<bitIdx)); err != nil {
		return err
	}
	c.strikes++
	return nil
}

// Load rebuilds the in-RAM strike count from flash (after a reboot). The
// erase-cycle count cannot be recovered from the field alone — real systems
// keep it in a second strike field; here the caller supplies it.
func (c *StrikeCounter) Load(eraseCycles uint64) error {
	fl := c.dev.Flash()
	base := fl.PageBase(c.page)
	strikes := 0
	for i := 0; i < c.bytes; i++ {
		b, err := fl.ReadByteAt(base + i)
		if err != nil {
			return err
		}
		for bit := uint(0); bit < 8; bit++ {
			if b&(1<<bit) == 0 {
				strikes++
			}
		}
	}
	c.strikes = strikes
	c.erases = eraseCycles
	return nil
}

// BinaryCounter stores the counter value directly as a little-endian word,
// rewriting it in place through the device on every increment — the naive
// baseline a strike counter replaces.
type BinaryCounter struct {
	dev   *core.Device
	addr  int
	value uint64
}

// NewBinaryCounter builds the naive counter at addr (8 bytes).
func NewBinaryCounter(dev *core.Device, addr int) *BinaryCounter {
	return &BinaryCounter{dev: dev, addr: addr}
}

// Value returns the current counter value.
func (c *BinaryCounter) Value() uint64 { return c.value }

// Increment advances the counter and rewrites its flash word.
func (c *BinaryCounter) Increment() error {
	c.value++
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(c.value >> uint(8*i))
	}
	return c.dev.Write(c.addr, buf[:])
}
