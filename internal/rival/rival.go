// Package rival implements the erase-reduction techniques the paper
// compares against in §VII, so the comparison can be *run* rather than
// cited:
//
//   - LogWriter: masked-overwrite / log-structured appending in the spirit
//     of Fazackerley et al. [25] — each record lands in fresh (still-ones)
//     bytes of the page, and the erase only comes once the page has been
//     consumed.
//   - StrikeCounter: a MicroVault-style [4] encoded counter whose
//     increments only clear bits (one strike per increment), trading
//     footprint for erase-free counting. Works only for counters, as the
//     paper notes.
//   - WOM: the Rivest–Shamir write-once-memory code — two writes of 2 bits
//     into 3 cells between erases, at a 1.5× footprint cost (the "coding
//     increases the memory footprint" critique of §VII).
//
// All three are exact (lossless); FlipBit's distinguishing move is spending
// *accuracy* instead of footprint. The exp-related experiment quantifies
// the trade on a shared workload.
package rival

import (
	"errors"
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/core"
)

// ErrRecordSize is returned when a record does not fit the configured slot.
var ErrRecordSize = errors.New("rival: record does not fit the log slot")

// LogWriter appends fixed-size records to a page-sized circular log.
// Within a page, each record is programmed into fresh bytes (no erase);
// when the page is full the next append erases it and starts over. This is
// the masked-overwrite discipline: every byte of a page is written at most
// once per erase cycle.
type LogWriter struct {
	dev      *core.Device
	page     int
	slot     int // record size in bytes
	perPage  int
	nextSlot int
}

// NewLogWriter builds a log over one page of dev with the given record
// size. The page is erased lazily on first wrap, not at construction.
func NewLogWriter(dev *core.Device, page, recordSize int) (*LogWriter, error) {
	ps := dev.Flash().Spec().PageSize
	if recordSize <= 0 || recordSize > ps {
		return nil, fmt.Errorf("%w: %d bytes in a %d-byte page", ErrRecordSize, recordSize, ps)
	}
	return &LogWriter{
		dev:     dev,
		page:    page,
		slot:    recordSize,
		perPage: ps / recordSize,
	}, nil
}

// RecordsPerErase returns how many appends fit between erases.
func (l *LogWriter) RecordsPerErase() int { return l.perPage }

// Append stores one record. Returns the slot index it landed in.
func (l *LogWriter) Append(rec []byte) (int, error) {
	if len(rec) != l.slot {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrRecordSize, len(rec), l.slot)
	}
	fl := l.dev.Flash()
	if l.nextSlot >= l.perPage {
		// Page consumed: erase and wrap (the cost masked overwriting
		// cannot avoid, per §VII).
		if err := fl.ErasePage(l.page); err != nil {
			return 0, err
		}
		l.nextSlot = 0
	}
	base := fl.PageBase(l.page) + l.nextSlot*l.slot
	for i, b := range rec {
		if err := fl.ProgramByte(base+i, b); err != nil {
			return 0, err
		}
	}
	slot := l.nextSlot
	l.nextSlot++
	return slot, nil
}

// ReadSlot reads one record back.
func (l *LogWriter) ReadSlot(slot int, dst []byte) error {
	if slot < 0 || slot >= l.perPage || len(dst) != l.slot {
		return fmt.Errorf("%w: slot %d", ErrRecordSize, slot)
	}
	base := l.dev.Flash().PageBase(l.page) + slot*l.slot
	return l.dev.Flash().Read(base, dst)
}

// Head returns the slot the next Append will use.
func (l *LogWriter) Head() int { return l.nextSlot }
