// Package detect is the end-to-end consumer of approximated video (paper
// §V, Fig. 13). The paper runs YOLOv3 on approximated frames and compares
// its detections against those on exact frames with IoU matching; here a
// background-difference blob detector plays the same role: any detector fed
// the same two versions of a frame and scored with the same IoU/F1 protocol
// answers "did approximation change what the application sees?".
package detect

import (
	"sort"

	"github.com/flipbit-sim/flipbit/internal/video"
)

// Params tunes the blob detector. Defaults (DefaultParams) suit the
// synthetic suite's 64×64 frames.
type Params struct {
	Threshold float64 // |pixel - background| needed to mark foreground
	MinArea   int     // discard components smaller than this
}

// DefaultParams returns detector settings matched to the video suite.
func DefaultParams() Params {
	return Params{Threshold: 30, MinArea: 8}
}

// Detect returns the bounding boxes of foreground blobs in a frame,
// given the deployment's background model for the same instant (classic
// background subtraction, as surveillance-style IoT pipelines use).
func Detect(f, background video.Frame, w, h int, p Params) []video.Box {
	mask := make([]bool, len(f))
	for i := range f {
		d := float64(f[i]) - float64(background[i])
		if d < 0 {
			d = -d
		}
		mask[i] = d >= p.Threshold
	}
	return components(mask, w, h, p.MinArea)
}

// components labels 4-connected foreground regions and returns their boxes.
func components(mask []bool, w, h, minArea int) []video.Box {
	seen := make([]bool, len(mask))
	var boxes []video.Box
	var stack []int
	for start := range mask {
		if !mask[start] || seen[start] {
			continue
		}
		area := 0
		box := video.Box{X0: w, Y0: h, X1: 0, Y1: 0}
		stack = append(stack[:0], start)
		seen[start] = true
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := idx%w, idx/w
			area++
			box.X0 = minInt(box.X0, x)
			box.Y0 = minInt(box.Y0, y)
			box.X1 = maxInt(box.X1, x+1)
			box.Y1 = maxInt(box.Y1, y+1)
			for _, nb := range [4]int{idx - 1, idx + 1, idx - w, idx + w} {
				if nb < 0 || nb >= len(mask) {
					continue
				}
				if (nb == idx-1 && x == 0) || (nb == idx+1 && x == w-1) {
					continue
				}
				if mask[nb] && !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		if area >= minArea {
			boxes = append(boxes, box)
		}
	}
	sort.Slice(boxes, func(i, j int) bool {
		if boxes[i].Y0 != boxes[j].Y0 {
			return boxes[i].Y0 < boxes[j].Y0
		}
		return boxes[i].X0 < boxes[j].X0
	})
	return boxes
}

// Counts accumulates detection-matching tallies across frames.
type Counts struct {
	TP, FP, FN int
}

// Match greedily pairs predicted boxes with reference boxes at the given
// IoU threshold (the paper uses 0.5 [50]) and accumulates TP/FP/FN.
func (c *Counts) Match(pred, ref []video.Box, iouThr float64) {
	usedRef := make([]bool, len(ref))
	for _, p := range pred {
		best, bestIoU := -1, iouThr
		for ri, r := range ref {
			if usedRef[ri] {
				continue
			}
			if iou := p.IoU(r); iou >= bestIoU {
				best, bestIoU = ri, iou
			}
		}
		if best >= 0 {
			usedRef[best] = true
			c.TP++
		} else {
			c.FP++
		}
	}
	for _, u := range usedRef {
		if !u {
			c.FN++
		}
	}
}

// Precision returns TP/(TP+FP), or 1 when nothing was predicted.
func (c Counts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 1 when there was nothing to find.
func (c Counts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Counts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
