package detect

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/video"
)

// synthetic 32x32 frame with a bright square on a flat background.
func frameWithSquare(x0, y0, size int, bg, fg byte) (video.Frame, video.Frame, video.Box) {
	const w, h = 32, 32
	f := make(video.Frame, w*h)
	bgf := make(video.Frame, w*h)
	for i := range f {
		f[i] = bg
		bgf[i] = bg
	}
	for y := y0; y < y0+size; y++ {
		for x := x0; x < x0+size; x++ {
			f[y*w+x] = fg
		}
	}
	return f, bgf, video.Box{X0: x0, Y0: y0, X1: x0 + size, Y1: y0 + size}
}

func TestDetectFindsSquare(t *testing.T) {
	f, bg, want := frameWithSquare(10, 12, 6, 100, 240)
	boxes := Detect(f, bg, 32, 32, DefaultParams())
	if len(boxes) != 1 {
		t.Fatalf("found %d boxes, want 1: %v", len(boxes), boxes)
	}
	if boxes[0].IoU(want) < 0.7 {
		t.Errorf("box %v has IoU %.2f with truth %v", boxes[0], boxes[0].IoU(want), want)
	}
}

func TestDetectEmptyFrame(t *testing.T) {
	f := make(video.Frame, 32*32)
	for i := range f {
		f[i] = 128
	}
	if boxes := Detect(f, f, 32, 32, DefaultParams()); len(boxes) != 0 {
		t.Errorf("flat frame produced boxes: %v", boxes)
	}
}

func TestDetectDarkObject(t *testing.T) {
	f, bg, want := frameWithSquare(5, 5, 7, 180, 20)
	boxes := Detect(f, bg, 32, 32, DefaultParams())
	if len(boxes) != 1 || boxes[0].IoU(want) < 0.6 {
		t.Errorf("dark object not detected: %v", boxes)
	}
}

func TestDetectTwoObjects(t *testing.T) {
	const w, h = 32, 32
	f := make(video.Frame, w*h)
	bg := make(video.Frame, w*h)
	for i := range f {
		f[i] = 100
		bg[i] = 100
	}
	for y := 3; y < 9; y++ {
		for x := 3; x < 9; x++ {
			f[y*w+x] = 250
		}
	}
	for y := 20; y < 27; y++ {
		for x := 22; x < 28; x++ {
			f[y*w+x] = 250
		}
	}
	boxes := Detect(f, bg, w, h, DefaultParams())
	if len(boxes) != 2 {
		t.Fatalf("found %d boxes, want 2: %v", len(boxes), boxes)
	}
}

func TestMinAreaFilter(t *testing.T) {
	f, bg, _ := frameWithSquare(10, 10, 2, 100, 250) // 4 px < MinArea 8
	if boxes := Detect(f, bg, 32, 32, DefaultParams()); len(boxes) != 0 {
		t.Errorf("tiny blob should be filtered: %v", boxes)
	}
}

func TestMatchPerfect(t *testing.T) {
	boxes := []video.Box{{X0: 1, Y0: 1, X1: 6, Y1: 6}, {X0: 10, Y0: 10, X1: 16, Y1: 16}}
	var c Counts
	c.Match(boxes, boxes, 0.5)
	if c.TP != 2 || c.FP != 0 || c.FN != 0 {
		t.Errorf("counts = %+v", c)
	}
	if c.F1() != 1 {
		t.Errorf("F1 = %v", c.F1())
	}
}

func TestMatchMisses(t *testing.T) {
	ref := []video.Box{{X0: 1, Y0: 1, X1: 6, Y1: 6}}
	pred := []video.Box{{X0: 20, Y0: 20, X1: 26, Y1: 26}}
	var c Counts
	c.Match(pred, ref, 0.5)
	if c.TP != 0 || c.FP != 1 || c.FN != 1 {
		t.Errorf("counts = %+v", c)
	}
	if c.F1() != 0 {
		t.Errorf("F1 = %v", c.F1())
	}
}

func TestMatchGreedyOneToOne(t *testing.T) {
	ref := []video.Box{{X0: 0, Y0: 0, X1: 10, Y1: 10}}
	pred := []video.Box{{X0: 0, Y0: 0, X1: 10, Y1: 10}, {X0: 1, Y0: 1, X1: 10, Y1: 10}}
	var c Counts
	c.Match(pred, ref, 0.5)
	// Only one prediction can claim the single reference.
	if c.TP != 1 || c.FP != 1 || c.FN != 0 {
		t.Errorf("counts = %+v", c)
	}
}

func TestCountsEmpty(t *testing.T) {
	var c Counts
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Error("empty counts should be perfect")
	}
}

// TestDetectorOnSuiteVideo: the detector must find the suite's objects on
// exact frames — precondition for the Fig. 13 experiment.
func TestDetectorOnSuiteVideo(t *testing.T) {
	v := video.ByID(5) // talker: one object
	found := 0
	for _, ti := range []int{0, 10, 20, 30} {
		boxes := Detect(v.Frame(ti), v.BackgroundFrame(ti), v.Width, v.Height, DefaultParams())
		truth := v.ObjectBoxes(ti)
		var c Counts
		c.Match(boxes, truth, 0.3)
		if c.TP > 0 {
			found++
		}
	}
	if found < 3 {
		t.Errorf("detector found the talker in only %d/4 frames", found)
	}
}
