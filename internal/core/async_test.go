package core

import (
	"errors"
	"sync"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// pageWrite is one scripted page commit of a bank's workload.
type pageWrite struct {
	page int
	data []byte
}

// bankPlan scripts a deterministic sequence of page writes against the
// pages of one bank. The plan depends only on (spec, bank, seed), so the
// same per-bank sequences can be driven serially, concurrently and through
// the async pipeline.
func bankPlan(spec flash.Spec, banks, bank, rounds int, seed uint64) []pageWrite {
	rng := xrand.New(seed)
	var pages []int
	for p := 0; p < spec.NumPages; p++ {
		if p%banks == bank {
			pages = append(pages, p)
		}
	}
	plan := make([]pageWrite, rounds)
	for r := range plan {
		buf := make([]byte, spec.PageSize)
		for i := range buf {
			buf[i] = rng.Byte()
		}
		plan[r] = pageWrite{page: pages[rng.Intn(len(pages))], data: buf}
	}
	return plan
}

// TestAsyncStatsEquivalenceSerialConcurrentAsync is the tentpole property:
// for identical per-bank write sequences, four drive modes — serial Write,
// one goroutine per bank, a single producer feeding the async pipeline,
// and concurrent producers feeding the async pipeline — must produce
// byte-identical merged flash stats (counts, float energy, busy time),
// controller stats, and array contents. Batch boundaries in the async
// pipeline are scheduling-dependent; the results must not be.
func TestAsyncStatsEquivalenceSerialConcurrentAsync(t *testing.T) {
	spec := concSpec()
	const rounds = 100
	for _, threshold := range []float64{0, 4, 255} {
		for seed := uint64(1); seed <= 2; seed++ {
			plans := make([][]pageWrite, spec.Banks)
			for b := range plans {
				plans[b] = bankPlan(spec, spec.Banks, b, rounds, seed*100+uint64(b))
			}

			serial := newConcDevice(t, spec, threshold)
			for _, plan := range plans {
				for _, pw := range plan {
					_ = serial.Write(serial.Flash().PageBase(pw.page), pw.data)
				}
			}

			conc := newConcDevice(t, spec, threshold)
			var wg sync.WaitGroup
			for b := range plans {
				wg.Add(1)
				go func(b int) {
					defer wg.Done()
					for _, pw := range plans[b] {
						_ = conc.Write(conc.Flash().PageBase(pw.page), pw.data)
					}
				}(b)
			}
			wg.Wait()

			drive := func(d *Device, concurrent bool) {
				if concurrent {
					var pw sync.WaitGroup
					for b := range plans {
						pw.Add(1)
						go func(b int) {
							defer pw.Done()
							for _, w := range plans[b] {
								d.WriteAsync(d.Flash().PageBase(w.page), w.data)
							}
						}(b)
					}
					pw.Wait()
				} else {
					// Round-robin enqueue: per-bank order is still
					// each plan's order.
					for r := 0; r < rounds; r++ {
						for b := range plans {
							w := plans[b][r]
							d.WriteAsync(d.Flash().PageBase(w.page), w.data)
						}
					}
				}
				d.Flush()
				if err := d.Close(); err != nil {
					t.Fatal(err)
				}
			}
			async := MustNewDevice(spec, WithAsyncCommit(8))
			if err := async.SetApproxRegion(0, spec.Size()); err != nil {
				t.Fatal(err)
			}
			async.SetThreshold(threshold)
			drive(async, false)

			asyncConc := MustNewDevice(spec, WithAsyncCommit(8))
			if err := asyncConc.SetApproxRegion(0, spec.Size()); err != nil {
				t.Fatal(err)
			}
			asyncConc.SetThreshold(threshold)
			drive(asyncConc, true)

			for _, m := range []struct {
				name string
				d    *Device
			}{{"concurrent", conc}, {"async", async}, {"async-concurrent", asyncConc}} {
				if s, c := serial.Flash().Stats(), m.d.Flash().Stats(); s != c {
					t.Errorf("threshold %v seed %d %s: flash stats differ\nserial %+v\ngot    %+v",
						threshold, seed, m.name, s, c)
				}
				for b := 0; b < spec.Banks; b++ {
					if s, c := serial.Flash().BankStats(b), m.d.Flash().BankStats(b); s != c {
						t.Errorf("threshold %v seed %d %s: bank %d shard differs\nserial %+v\ngot    %+v",
							threshold, seed, m.name, b, s, c)
					}
				}
				if s, c := serial.Stats(), m.d.Stats(); s != c {
					t.Errorf("threshold %v seed %d %s: controller stats differ\nserial %+v\ngot    %+v",
						threshold, seed, m.name, s, c)
				}
				for addr := 0; addr < spec.Size(); addr++ {
					if serial.Flash().Peek(addr) != m.d.Flash().Peek(addr) {
						t.Fatalf("threshold %v seed %d %s: array differs at %#x",
							threshold, seed, m.name, addr)
					}
				}
			}
		}
	}
}

// TestAsyncFlushDrainsQueuedWrites: writes enqueued without waiting are all
// committed once Flush returns, and futures resolved afterwards are
// immediate.
func TestAsyncFlushDrainsQueuedWrites(t *testing.T) {
	spec := concSpec()
	d := MustNewDevice(spec, WithAsyncCommit(4))
	defer d.Close()
	if err := d.SetApproxRegion(0, spec.Size()); err != nil {
		t.Fatal(err)
	}
	d.SetThreshold(255)
	rng := xrand.New(0xF1)
	var writes []pageWrite
	var commits []*Commit
	for i := 0; i < 200; i++ {
		p := rng.Intn(spec.NumPages)
		buf := make([]byte, spec.PageSize)
		for j := range buf {
			buf[j] = rng.Byte()
		}
		commits = append(commits, d.WriteAsync(d.Flash().PageBase(p), buf))
		writes = append(writes, pageWrite{page: p, data: buf})
	}
	d.Flush()
	st := d.Stats()
	if st.PagesApprox+st.PagesExact != 200 {
		t.Errorf("after Flush: %d pages committed, want 200 (%+v)", st.PagesApprox+st.PagesExact, st)
	}
	for _, c := range commits {
		if err := c.Wait(); err != nil {
			t.Errorf("commit error: %v", err)
		}
	}
	// A single enqueuer keeps each bank's order equal to program order, so
	// the flushed array must match a serial replay of the same writes.
	serial := newConcDevice(t, spec, 255)
	for _, w := range writes {
		_ = serial.Write(serial.Flash().PageBase(w.page), w.data)
	}
	for addr := 0; addr < spec.Size(); addr++ {
		if serial.Flash().Peek(addr) != d.Flash().Peek(addr) {
			t.Fatalf("array differs from serial replay at %#x", addr)
		}
	}
}

// TestAsyncCloseSemantics: Close drains, double Close is fine, WriteAsync
// after Close fails with ErrAsyncClosed, and synchronous Write/Read still
// work.
func TestAsyncCloseSemantics(t *testing.T) {
	spec := concSpec()
	d := MustNewDevice(spec, WithAsyncCommit(4))
	if err := d.SetApproxRegion(0, spec.Size()); err != nil {
		t.Fatal(err)
	}
	d.SetThreshold(255)
	buf := make([]byte, spec.PageSize)
	for i := range buf {
		buf[i] = 0x5A
	}
	c := d.WriteAsync(0, buf)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Errorf("pre-close write failed: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := d.WriteAsync(0, buf).Wait(); !errors.Is(err, ErrAsyncClosed) {
		t.Errorf("WriteAsync after Close = %v, want ErrAsyncClosed", err)
	}
	if err := d.Write(0, buf); err != nil {
		t.Errorf("synchronous Write after Close: %v", err)
	}
	got := make([]byte, spec.PageSize)
	if err := d.Read(0, got); err != nil {
		t.Errorf("Read after Close: %v", err)
	}
}

// TestAsyncWithoutOptionIsSynchronous: WriteAsync on a device built
// without WithAsyncCommit performs the write inline and returns a resolved
// future; Flush and Close are no-ops.
func TestAsyncWithoutOptionIsSynchronous(t *testing.T) {
	spec := concSpec()
	d := newConcDevice(t, spec, 255)
	buf := make([]byte, spec.PageSize)
	c := d.WriteAsync(0, buf)
	// The write already happened: stats are visible before Wait.
	if st := d.Stats(); st.PagesApprox+st.PagesExact != 1 {
		t.Errorf("synchronous fallback did not commit inline: %+v", st)
	}
	if err := c.Wait(); err != nil {
		t.Errorf("Wait: %v", err)
	}
	d.Flush()
	if err := d.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestAsyncMultiPageFuture: one WriteAsync spanning several pages (and
// banks) resolves only when every chunk committed, and the data lands.
func TestAsyncMultiPageFuture(t *testing.T) {
	spec := concSpec()
	d := MustNewDevice(spec, WithAsyncCommit(4))
	defer d.Close()
	data := make([]byte, spec.PageSize*3+7)
	rng := xrand.New(3)
	for i := range data {
		data[i] = rng.Byte()
	}
	addr := spec.PageSize/2 + 1
	if err := d.WriteAsync(addr, data).Wait(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: %02x != %02x", i, got[i], data[i])
		}
	}
	// Bounds and empty writes resolve immediately.
	if err := d.WriteAsync(spec.Size()-1, make([]byte, 2)).Wait(); !errors.Is(err, flash.ErrBounds) {
		t.Errorf("out-of-bounds WriteAsync = %v, want ErrBounds", err)
	}
	if err := d.WriteAsync(0, nil).Wait(); err != nil {
		t.Errorf("empty WriteAsync = %v, want nil", err)
	}
}

// TestAsyncErrorPropagation: the failure modes of the serial Write path
// surface through the completion future with the same error identities —
// flash.ErrWornOut (best-effort, sticky), flash.ErrPowerLoss (hard), and
// ErrExactDegraded from the health gate.
func TestAsyncErrorPropagation(t *testing.T) {
	spec := concSpec()
	spec.EnduranceCycles = 3

	t.Run("worn-out", func(t *testing.T) {
		d := MustNewDevice(spec, WithAsyncCommit(4))
		defer d.Close()
		a := make([]byte, spec.PageSize)
		b := make([]byte, spec.PageSize)
		for i := range a {
			a[i], b[i] = 0xAA, 0x55 // disjoint bits: every rewrite needs an erase
		}
		var sawWorn bool
		for i := 0; i < 2*int(spec.EnduranceCycles)+4; i++ {
			buf := a
			if i%2 == 1 {
				buf = b
			}
			if err := d.WriteAsync(0, buf).Wait(); err != nil {
				if !errors.Is(err, flash.ErrWornOut) {
					t.Fatalf("unexpected error: %v", err)
				}
				sawWorn = true
			}
		}
		if !sawWorn {
			t.Error("page never wore out through the async path")
		}
	})

	t.Run("power-loss", func(t *testing.T) {
		d := MustNewDevice(spec, WithAsyncCommit(4))
		defer d.Close()
		buf := make([]byte, spec.PageSize) // all zero: needs programs
		d.Flash().InjectPowerLoss(0)
		err := d.WriteAsync(0, buf).Wait()
		if !errors.Is(err, flash.ErrPowerLoss) {
			t.Errorf("WriteAsync under power loss = %v, want ErrPowerLoss", err)
		}
	})

	t.Run("exact-degraded", func(t *testing.T) {
		d := MustNewDevice(spec, WithAsyncCommit(4), WithHealthGate())
		defer d.Close()
		// Wear page 0 past its rating so the health gate refuses exact data.
		for i := 0; i <= int(spec.EnduranceCycles); i++ {
			_ = d.Flash().ErasePage(0)
		}
		buf := make([]byte, spec.PageSize)
		err := d.WriteAsync(0, buf).Wait()
		if !errors.Is(err, ErrExactDegraded) {
			t.Errorf("exact write to degraded page = %v, want ErrExactDegraded", err)
		}
	})
}

// TestAsyncCommitSteadyStateAllocs is the zero-alloc guard for the async
// steady state: once the pools are warm, WriteAsync + Wait allocates
// nothing — commits, page buffers and session buffers all recycle.
func TestAsyncCommitSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; allocation counts are meaningless")
	}
	spec := concSpec()
	d := MustNewDevice(spec, WithAsyncCommit(8))
	defer d.Close()
	if err := d.SetApproxRegion(0, spec.Size()); err != nil {
		t.Fatal(err)
	}
	d.SetThreshold(255)
	rng := xrand.New(11)
	a := make([]byte, spec.PageSize)
	b := make([]byte, spec.PageSize)
	for i := range a {
		a[i] = rng.Byte()
		b[i] = byte(int(a[i]) + rng.Intn(5) - 2)
	}
	for i := 0; i < 16; i++ { // warm the pools and the page
		if err := d.WriteAsync(0, a).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		buf := a
		if i%2 == 1 {
			buf = b
		}
		i++
		if err := d.WriteAsync(0, buf).Wait(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("async steady state allocates %.2f objects per op, want ~0", allocs)
	}
}
