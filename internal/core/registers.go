// Package core implements the FlipBit controller — the paper's primary
// contribution (§III). The controller sits between the flash chip's SRAM
// write buffers and the memory array. On every page commit it decides, from
// the previous page contents, a per-value approximation and a
// programmer-supplied error threshold, whether the page can be written with
// cheap 1→0 programs only or must fall back to an exact erase-and-program.
package core

import (
	"errors"
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/bits"
)

// Reg identifies one of the controller's memory-mapped configuration
// registers (§III-C: "we require 4 registers, two to store the start and end
// address of the approximatable memory region, one for the variable type,
// and one for the MAE threshold").
type Reg int

// Register file layout. Offsets are word indices; the MCU bus maps them at
// RegBankBase.
const (
	RegApproxStart Reg = iota // first byte of the approximatable region
	RegApproxEnd              // one past the last byte of the region
	RegWidth                  // value width: 8, 16 or 32
	RegThreshold              // MAE threshold, Q16.16 fixed point
	numRegs
)

// ThresholdFracBits is the number of fractional bits in the threshold
// register. The DNN experiments use sub-integer thresholds (e.g. 0.1), so
// the hardware compares sum(|err|) << 16 against threshold * count.
const ThresholdFracBits = 16

// Errors returned by register programming and the write path.
var (
	ErrBadWidth  = errors.New("core: width register must be 8, 16 or 32")
	ErrBadRegion = errors.New("core: approximatable region must be page aligned with start <= end")
	ErrBadReg    = errors.New("core: no such register")
)

// registerFile holds the raw register values; semantic accessors live on
// Device so validation can use the flash geometry.
type registerFile [numRegs]uint32

// ThresholdToFixed converts a floating MAE threshold to the Q16.16 register
// encoding, saturating at the register's maximum.
func ThresholdToFixed(mae float64) uint32 {
	if mae <= 0 {
		return 0
	}
	f := mae * (1 << ThresholdFracBits)
	if f >= float64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(f)
}

// FixedToThreshold converts the Q16.16 register encoding back to a float.
func FixedToThreshold(v uint32) float64 {
	return float64(v) / (1 << ThresholdFracBits)
}

// widthFromReg decodes the width register.
func widthFromReg(v uint32) (bits.Width, error) {
	w := bits.Width(v)
	if !w.Valid() {
		return 0, fmt.Errorf("%w: got %d", ErrBadWidth, v)
	}
	return w, nil
}
