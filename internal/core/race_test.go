//go:build race

package core

// raceEnabled reports that this test binary runs under the race detector,
// where sync.Pool intentionally drops items and allocation guards are
// meaningless.
const raceEnabled = true
