package core

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// TestIncoherentRegionDisablesApproximation: MMIO writes land in any order;
// a half-configured or inverted region must simply mark nothing
// approximatable rather than erroring or misbehaving.
func TestIncoherentRegionDisablesApproximation(t *testing.T) {
	d := MustNewDevice(testSpec())
	ps := d.Flash().Spec().PageSize

	// Start > end (mid-configuration state).
	if err := d.WriteReg(RegApproxStart, uint32(2*ps)); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if d.Approximatable(p) {
			t.Errorf("page %d approximatable with inverted region", p)
		}
	}
	// Writes through an incoherent region must stay exact.
	d.SetThreshold(255)
	buf := make([]byte, ps)
	for i := range buf {
		buf[i] = 0xAA
	}
	if err := d.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	if d.Stats().PagesApprox != 0 {
		t.Error("approximation ran with an incoherent region")
	}
	// Completing the configuration enables it.
	if err := d.WriteReg(RegApproxEnd, uint32(3*ps)); err != nil {
		t.Fatal(err)
	}
	if !d.Approximatable(2) {
		t.Error("page 2 should be approximatable once both registers are set")
	}

	// Misaligned registers are also incoherent.
	if err := d.WriteReg(RegApproxStart, 3); err != nil {
		t.Fatal(err)
	}
	if d.Approximatable(0) || d.Approximatable(2) {
		t.Error("misaligned region should disable approximation")
	}
}

// TestThresholdUnlimitedDisablesGate: the all-ones register value commits
// every approximatable page erase-free regardless of error.
func TestThresholdUnlimitedDisablesGate(t *testing.T) {
	d := MustNewDevice(testSpec())
	_ = d.SetApproxRegion(0, d.Flash().Spec().Size())
	if err := d.WriteReg(RegThreshold, ThresholdUnlimited); err != nil {
		t.Fatal(err)
	}
	ps := d.Flash().Spec().PageSize
	rng := xrand.New(3)
	buf := make([]byte, ps)
	_ = d.Write(0, buf) // zero page
	for round := 0; round < 10; round++ {
		for i := range buf {
			buf[i] = rng.Byte()
		}
		if err := d.Write(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if d.Stats().PagesExact != 0 {
		t.Errorf("unlimited threshold still fell back %d times", d.Stats().PagesExact)
	}
	if d.Flash().Stats().Erases != 0 {
		t.Errorf("unlimited threshold erased %d times", d.Flash().Stats().Erases)
	}
}

func TestMetricAndPolicyStrings(t *testing.T) {
	if MetricMAE.String() != "MAE" || MetricMSE.String() != "MSE" {
		t.Error("metric strings")
	}
	if FallbackPerPage.String() != "per-page" || FallbackPerValue.String() != "per-value" {
		t.Error("policy strings")
	}
}
