package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// Async commit pipeline: per-bank queues with group commit.
//
// The serial Write path pays one full load→apply→encode→gate→program pass
// per page, per caller, under the page's bank commit lock. WithAsyncCommit
// adds an opt-in pipeline in front of it: WriteAsync splits a write into
// page chunks, routes each chunk to its bank's queue, and returns a
// completion future. One worker goroutine per bank drains its queue in
// batches of up to the configured depth and commits a whole batch under a
// single bank-lock acquisition — loading every page first, then encoding
// every kernel-eligible span with ONE batch-kernel invocation
// (approx.EncodeSegments), then gating and programming each page in
// request order.
//
// Determinism: a bank's queue serializes that bank's commits in enqueue
// order, and every per-page decision depends only on (array state, request)
// — never on how the batch was assembled — so merged statistics and array
// contents are identical to a serial run of the same per-bank sequences
// regardless of batch boundaries (property-tested in async_test.go). While
// faults are armed on the flash device, workers process one request per
// lock hold instead of coalescing, so armed countdowns observe the same
// operation sequence a serial run would show them.

// ErrAsyncClosed is returned by WriteAsync after Close.
var ErrAsyncClosed = errors.New("core: async commit pipeline closed")

// WithAsyncCommit enables the asynchronous commit pipeline: one commit
// queue and worker per flash bank, coalescing up to depth queued writes
// per bank into one group commit. The serial Write path remains available
// (and remains the default when the option is absent). A device built with
// this option must be drained with Flush or shut down with Close before
// its results are read.
func WithAsyncCommit(depth int) Option {
	return func(d *Device) { d.asyncDepth = depth }
}

// Commit is the completion future of one WriteAsync call. Wait blocks
// until every page chunk of the write has committed and returns the
// write's error, with the same shape as the serial Write path: a hard
// error wins over flash.ErrWornOut, which is reported only when every
// chunk otherwise succeeded (the write is still performed best-effort).
//
// Wait may be called at most once, from one goroutine; it recycles the
// Commit, which must not be touched afterwards.
type Commit struct {
	eng *asyncEngine // nil for pre-resolved commits

	mu        sync.Mutex
	remaining int
	err       error // first hard (non-worn-out) chunk error
	worn      error // sticky flash.ErrWornOut

	ch chan error
}

// resolve accounts one finished chunk; the last chunk publishes the
// combined result.
func (c *Commit) resolve(err error) {
	c.mu.Lock()
	if err != nil {
		if errors.Is(err, flash.ErrWornOut) {
			if c.worn == nil {
				c.worn = err
			}
		} else if c.err == nil {
			c.err = err
		}
	}
	c.remaining--
	fire := c.remaining == 0
	var final error
	if fire {
		final = c.err
		if final == nil {
			final = c.worn
		}
	}
	c.mu.Unlock()
	if fire {
		c.ch <- final
	}
}

// Wait blocks until the write has fully committed and returns its error.
func (c *Commit) Wait() error {
	err := <-c.ch
	if c.eng != nil {
		c.eng.commitPool.Put(c)
	}
	return err
}

// resolvedCommit returns a future that is already complete. Used for
// writes that never reach the queues: empty data, bounds errors, a closed
// engine, or the synchronous fallback when no engine is configured.
func resolvedCommit(err error) *Commit {
	c := &Commit{ch: make(chan error, 1)}
	c.ch <- err
	return c
}

// asyncReq is one queued page chunk.
type asyncReq struct {
	page int
	off  int
	data []byte  // aliases (*buf)[:len]
	buf  *[]byte // pooled backing buffer
	c    *Commit
}

// asyncEngine owns the per-bank queues, workers and pools.
type asyncEngine struct {
	d      *Device
	depth  int
	queues []chan asyncReq
	wg     sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	pending int // enqueued but unresolved chunks
	closed  bool

	dataPool   sync.Pool // *[]byte, page-size backing buffers
	commitPool sync.Pool // *Commit with a live channel
}

func newAsyncEngine(d *Device, depth int) *asyncEngine {
	if depth < 1 {
		depth = 1
	}
	e := &asyncEngine{d: d, depth: depth, queues: make([]chan asyncReq, d.fl.Banks())}
	e.cond = sync.NewCond(&e.mu)
	ps := d.fl.Spec().PageSize
	e.dataPool.New = func() any {
		b := make([]byte, ps)
		return &b
	}
	e.commitPool.New = func() any {
		return &Commit{eng: e, ch: make(chan error, 1)}
	}
	for b := range e.queues {
		e.queues[b] = make(chan asyncReq, depth)
		e.wg.Add(1)
		w := newAsyncWorker(e, b)
		go w.run()
	}
	return e
}

// WriteAsync stores data at addr through the asynchronous commit pipeline
// and returns a completion future. Page chunks are committed by their
// banks' workers, possibly coalesced with other queued writes into one
// group commit; chunks of one bank commit in enqueue order. Without
// WithAsyncCommit the write is performed synchronously and the returned
// future is already resolved.
//
// WriteAsync is safe for concurrent use with other WriteAsync, Write and
// Read calls, but must not race Close.
func (d *Device) WriteAsync(addr int, data []byte) *Commit {
	e := d.async
	if e == nil {
		return resolvedCommit(d.Write(addr, data))
	}
	return e.write(addr, data)
}

// Flush blocks until every chunk enqueued before the call has resolved.
// A no-op without WithAsyncCommit.
func (d *Device) Flush() {
	if d.async != nil {
		d.async.flush()
	}
}

// Close drains and shuts down the async commit pipeline: it waits for all
// queued writes to commit and stops the per-bank workers. Subsequent
// WriteAsync calls return ErrAsyncClosed; Write and Read keep working.
// A no-op without WithAsyncCommit.
func (d *Device) Close() error {
	if d.async != nil {
		d.async.close()
	}
	return nil
}

func (e *asyncEngine) write(addr int, data []byte) *Commit {
	if len(data) == 0 {
		return resolvedCommit(nil)
	}
	d := e.d
	ps := d.fl.Spec().PageSize
	if addr < 0 || addr+len(data) > d.fl.Spec().Size() {
		return resolvedCommit(fmt.Errorf("%w: addr %#x len %d (size %#x)",
			flash.ErrBounds, addr, len(data), d.fl.Spec().Size()))
	}
	chunks := 0
	for a, n := addr, len(data); n > 0; {
		c := ps - a%ps
		if c > n {
			c = n
		}
		a, n = a+c, n-c
		chunks++
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return resolvedCommit(ErrAsyncClosed)
	}
	e.pending += chunks
	e.mu.Unlock()

	c := e.commitPool.Get().(*Commit)
	c.remaining, c.err, c.worn = chunks, nil, nil
	for len(data) > 0 {
		page := d.fl.PageOf(addr)
		off := addr - d.fl.PageBase(page)
		n := ps - off
		if n > len(data) {
			n = len(data)
		}
		buf := e.dataPool.Get().(*[]byte)
		chunk := (*buf)[:n]
		copy(chunk, data[:n])
		e.queues[d.fl.BankOf(page)] <- asyncReq{page: page, off: off, data: chunk, buf: buf, c: c}
		addr += n
		data = data[n:]
	}
	return c
}

func (e *asyncEngine) flush() {
	e.mu.Lock()
	for e.pending > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

func (e *asyncEngine) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.mu.Unlock()
	for _, q := range e.queues {
		close(q)
	}
	e.wg.Wait()
}

// finishReq resolves one chunk and returns its resources.
func (e *asyncEngine) finishReq(r asyncReq, err error) {
	r.c.resolve(err)
	e.dataPool.Put(r.buf)
	e.mu.Lock()
	e.pending--
	if e.pending == 0 {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// asyncWorker is one bank's commit worker. All scratch is worker-owned and
// sized to the queue depth, so the steady state allocates nothing.
type asyncWorker struct {
	e    *asyncEngine
	bank int

	batch    []asyncReq
	sessions []session
	errs     []error
	encs     []encodeResult
	encoded  []bool
	segs     []approx.Segment
	segIdx   []int
	stats    []approx.BatchStats
}

func newAsyncWorker(e *asyncEngine, bank int) *asyncWorker {
	return &asyncWorker{
		e:        e,
		bank:     bank,
		batch:    make([]asyncReq, 0, e.depth),
		sessions: make([]session, e.depth),
		errs:     make([]error, e.depth),
		encs:     make([]encodeResult, e.depth),
		encoded:  make([]bool, e.depth),
		segs:     make([]approx.Segment, 0, e.depth),
		segIdx:   make([]int, 0, e.depth),
		stats:    make([]approx.BatchStats, e.depth),
	}
}

// run drains the bank's queue until it is closed: one blocking receive,
// then an opportunistic non-blocking drain up to the configured depth —
// unless faults are armed, in which case requests are committed one at a
// time so fault countdowns observe serial-identical operation sequences.
func (w *asyncWorker) run() {
	defer w.e.wg.Done()
	q := w.e.queues[w.bank]
	for {
		req, ok := <-q
		if !ok {
			return
		}
		w.batch = w.batch[:0]
		w.batch = append(w.batch, req)
		if !w.e.d.fl.FaultsLive() {
		drain:
			for len(w.batch) < w.e.depth {
				select {
				case r, ok := <-q:
					if !ok {
						break drain
					}
					w.batch = append(w.batch, r)
				default:
					break drain
				}
			}
		}
		w.commitBatch(w.batch)
	}
}

// commitBatch splits a drained batch at duplicate pages — a later write to
// a page already in the group must observe the earlier commit's array
// state, so it starts a new group — and group-commits each window.
func (w *asyncWorker) commitBatch(batch []asyncReq) {
	for start := 0; start < len(batch); {
		end := start + 1
	window:
		for end < len(batch) {
			for i := start; i < end; i++ {
				if batch[i].page == batch[end].page {
					break window
				}
			}
			end++
		}
		w.commitGroup(batch[start:end])
		start = end
	}
}

// commitGroup commits one window of distinct-page requests under a single
// bank-lock acquisition: every session loads and applies first, then all
// kernel-eligible approximatable spans encode in one EncodeSegments call,
// then each session gates, programs and resolves in request order.
func (w *asyncWorker) commitGroup(reqs []asyncReq) {
	d := w.e.d
	d.commitMu[w.bank].Lock()

	// Phase 1: load + apply.
	n := len(reqs)
	for i := 0; i < n; i++ {
		s := &w.sessions[i]
		*s = session{d: d, page: reqs[i].page, off: reqs[i].off, data: reqs[i].data,
			bufs: d.bufPool.Get().(*commitBuffers)}
		w.encoded[i] = false
		if w.errs[i] = s.load(); w.errs[i] == nil {
			s.apply()
		}
	}

	// Phase 2: one batch-kernel invocation across the group.
	be, isBatch := d.enc.(approx.BatchEncoder)
	if isBatch && !d.scalarEncode {
		width := d.Width()
		w.segs = w.segs[:0]
		w.segIdx = w.segIdx[:0]
		for i := 0; i < n; i++ {
			if w.errs[i] != nil {
				continue
			}
			s := &w.sessions[i]
			if !d.Approximatable(s.page) {
				continue
			}
			lo, hi, batch := s.kernelSpan(width)
			if !batch {
				continue
			}
			w.segs = append(w.segs, approx.Segment{
				Prev:   s.bufs.previous[lo:hi],
				Exact:  s.bufs.exact[lo:hi],
				Approx: s.bufs.approx[lo:hi],
			})
			w.segIdx = append(w.segIdx, i)
		}
		if len(w.segs) > 0 {
			approx.EncodeSegments(be, w.segs, width, w.stats[:len(w.segs)])
			for j, i := range w.segIdx {
				w.encs[i] = d.batchResult(w.stats[j])
				w.encoded[i] = true
			}
		}
	}

	// Phase 3: gate + program + stats, in request order.
	for i := 0; i < n; i++ {
		if w.errs[i] == nil {
			w.errs[i] = d.finishLocked(w.bank, &w.sessions[i], w.encs[i], w.encoded[i])
		}
		d.bufPool.Put(w.sessions[i].bufs)
		w.sessions[i] = session{}
	}
	d.commitMu[w.bank].Unlock()

	for i := 0; i < n; i++ {
		w.e.finishReq(reqs[i], w.errs[i])
		w.errs[i] = nil
	}
}
