package core

import (
	"errors"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// TestTornCommitThenRecover: power lost in the middle of a page commit
// leaves the page torn; the controller surfaces the error, and simply
// rewriting the data afterwards converges to a correct page — the recovery
// discipline checkpointing firmware relies on.
func TestTornCommitThenRecover(t *testing.T) {
	d := MustNewDevice(testSpec())
	ps := d.Flash().Spec().PageSize
	rng := xrand.New(71)
	data := make([]byte, ps)
	for i := range data {
		data[i] = rng.Byte()
	}
	if err := d.Write(0, data); err != nil {
		t.Fatal(err)
	}
	// New content that definitely needs an erase.
	for i := range data {
		data[i] = ^data[i]
	}
	d.Flash().InjectPowerLoss(0)
	err := d.Write(0, data)
	if !errors.Is(err, flash.ErrPowerLoss) {
		t.Fatalf("want ErrPowerLoss through the controller, got %v", err)
	}
	// Rebooted: rewriting the same data must succeed and verify.
	if err := d.Write(0, data); err != nil {
		t.Fatalf("recovery write: %v", err)
	}
	got := make([]byte, ps)
	if err := d.Read(0, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d wrong after recovery", i)
		}
	}
}

// TestTornCommitMidMultiPageWrite: a power loss in page k of a multi-page
// write must leave earlier pages committed and report the failure, so a
// journaling caller can detect the partial write.
func TestTornCommitMidMultiPageWrite(t *testing.T) {
	d := MustNewDevice(testSpec())
	ps := d.Flash().Spec().PageSize
	rng := xrand.New(73)
	data := make([]byte, 3*ps)
	for i := range data {
		data[i] = rng.Byte()
	}
	if err := d.Write(0, data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = ^data[i]
	}
	// Each rewritten page needs 1 erase + up to ps programs; interrupt
	// somewhere inside the second page's operations.
	d.Flash().InjectPowerLoss(int(uint(ps)) + ps/2)
	err := d.Write(0, data)
	if !errors.Is(err, flash.ErrPowerLoss) {
		t.Fatalf("want ErrPowerLoss, got %v", err)
	}
	// Page 0 must have fully committed.
	got := make([]byte, ps)
	if err := d.Read(0, got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ps; i++ {
		if got[i] != data[i] {
			t.Fatalf("page 0 byte %d not committed before the fault", i)
		}
	}
}
