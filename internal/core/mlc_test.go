package core

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

func mlcSpec() flash.Spec {
	s := testSpec()
	s.Cell = flash.MLC
	return s
}

// TestMLCEndToEnd: the n-cell encoder through an MLC device — §VI made
// runnable. Drifting data over an MLC page must commit erase-free within
// the threshold, and the stored error must be bounded.
func TestMLCEndToEnd(t *testing.T) {
	d := MustNewDevice(mlcSpec(), WithEncoder(approx.MustNCell(2)))
	if err := d.SetApproxRegion(0, d.Flash().Spec().Size()); err != nil {
		t.Fatal(err)
	}
	if err := d.SetWidth(bits.W8); err != nil {
		t.Fatal(err)
	}
	d.SetThreshold(4)

	ps := d.Flash().Spec().PageSize
	rng := xrand.New(77)
	buf := make([]byte, ps)
	for i := range buf {
		buf[i] = rng.Byte()
	}
	if err := d.Write(0, buf); err != nil {
		t.Fatal(err)
	}
	erasesAfterFirst := d.Flash().Stats().Erases
	stored := make([]byte, ps)
	for round := 0; round < 40; round++ {
		for i := range buf {
			buf[i] = byte(int(buf[i]) + rng.Intn(5) - 2)
		}
		if err := d.Write(0, buf); err != nil {
			t.Fatal(err)
		}
		_ = d.Read(0, stored)
		var sum int
		for i := range buf {
			diff := int(buf[i]) - int(stored[i])
			if diff < 0 {
				diff = -diff
			}
			sum += diff
		}
		if mae := float64(sum) / float64(ps); mae > 4 {
			t.Fatalf("round %d: MLC page MAE %.2f exceeds threshold", round, mae)
		}
	}
	extra := d.Flash().Stats().Erases - erasesAfterFirst
	if extra > 20 {
		t.Errorf("MLC FlipBit erased %d times in 40 drifting writes", extra)
	}
	if d.Stats().PagesApprox == 0 {
		t.Error("no MLC pages committed erase-free")
	}
}

// TestMLCBeatsSLCOnDownwardBiasedData: data whose rewrites lower cell
// levels (e.g. decaying counters) is exactly writable on MLC but often
// unreachable on SLC. At threshold 0, MLC must avoid erases SLC needs.
func TestMLCBeatsSLCOnDownwardBiasedData(t *testing.T) {
	run := func(spec flash.Spec, enc approx.Encoder) uint64 {
		d := MustNewDevice(spec, WithEncoder(enc))
		_ = d.SetApproxRegion(0, d.Flash().Spec().Size())
		_ = d.SetWidth(bits.W8)
		d.SetThreshold(0) // lossless: count how often physics allows it
		ps := d.Flash().Spec().PageSize
		buf := make([]byte, ps)
		for i := range buf {
			buf[i] = 0xFF
		}
		_ = d.Write(0, buf)
		rng := xrand.New(5)
		for round := 0; round < 60; round++ {
			for i := range buf {
				// Decay each byte's cells by random downward steps.
				v := buf[i]
				var nv byte
				for c := 0; c < 4; c++ {
					lvl := v >> uint(2*c) & 0b11
					if lvl > 0 && rng.Intn(3) == 0 {
						lvl--
					}
					nv |= lvl << uint(2*c)
				}
				buf[i] = nv
			}
			_ = d.Write(0, buf)
		}
		return d.Flash().Stats().Erases
	}
	slcSpecV := testSpec()
	mlcErases := run(mlcSpec(), approx.MustNCell(1))
	slcErases := run(slcSpecV, approx.MustNBit(2))
	if mlcErases >= slcErases {
		t.Errorf("MLC erases %d >= SLC erases %d on downward-biased data", mlcErases, slcErases)
	}
	if mlcErases != 0 {
		t.Errorf("purely downward cell moves should need no MLC erases, got %d", mlcErases)
	}
}
