package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Tests for the batch encode-kernel wiring in the commit pipeline: the
// kernel path must be observationally identical to the scalar reference
// path (WithScalarEncode) — same flash contents, same controller stats,
// same flash op counts — and the span-restricted needsErase must agree
// with the full-page scan it replaced.

// fullPageNeedsErase is the pre-optimization reference: scan the whole
// page byte by byte under the cell mode.
func fullPageNeedsErase(s *session) bool {
	for i, v := range s.bufs.exact {
		if !s.d.cell.Reachable(s.bufs.previous[i], v) {
			return true
		}
	}
	return false
}

// TestNeedsEraseSpanEquivalence drives random partial-page sessions on
// SLC, MLC and TLC devices and checks the dirty-span needsErase against
// the full-page reference scan.
func TestNeedsEraseSpanEquivalence(t *testing.T) {
	for _, cell := range []flash.CellMode{flash.SLC, flash.MLC, flash.TLC} {
		spec := testSpec()
		spec.Cell = cell
		d := MustNewDevice(spec)
		rng := xrand.New(uint64(0xE5A5E + int(cell)))
		page := make([]byte, spec.PageSize)
		for round := 0; round < 200; round++ {
			for i := range page {
				page[i] = rng.Byte()
			}
			if err := d.Flash().EraseProgramPage(0, page); err != nil {
				t.Fatal(err)
			}
			off := rng.Intn(spec.PageSize)
			n := 1 + rng.Intn(spec.PageSize-off)
			data := make([]byte, n)
			for i := range data {
				switch round % 3 {
				case 0:
					data[i] = rng.Byte()
				case 1: // reachable: clear a few bits
					data[i] = page[off+i] &^ byte(rng.Intn(8))
				default: // unchanged
					data[i] = page[off+i]
				}
			}
			bufs := d.bufPool.Get().(*commitBuffers)
			s := &session{d: d, page: 0, off: off, data: data, bufs: bufs}
			if err := s.load(); err != nil {
				t.Fatal(err)
			}
			s.apply()
			if got, want := s.needsErase(), fullPageNeedsErase(s); got != want {
				t.Fatalf("%v off=%d len=%d: span needsErase=%v, full-page scan=%v",
					cell, off, n, got, want)
			}
			d.bufPool.Put(bufs)
		}
	}
}

// kernelEquivDevice builds the whole-array-approximatable device pair used
// by the differential test: one on the batch kernels, one forced onto the
// scalar reference path.
func kernelEquivDevice(t *testing.T, enc approx.Encoder, w bits.Width, thr float64, policy FallbackPolicy, scalar bool) *Device {
	t.Helper()
	opts := []Option{WithEncoder(enc), WithFallbackPolicy(policy)}
	if scalar {
		opts = append(opts, WithScalarEncode())
	}
	d := MustNewDevice(testSpec(), opts...)
	if err := d.SetApproxRegion(0, d.Flash().Spec().Size()); err != nil {
		t.Fatal(err)
	}
	if err := d.SetWidth(w); err != nil {
		t.Fatal(err)
	}
	d.SetThreshold(thr)
	return d
}

// TestBatchEncodeMatchesScalarDevice replays identical write workloads on a
// kernel device and a WithScalarEncode device and requires bit-identical
// behaviour end to end: controller stats, flash op counts, and every byte
// of the array.
func TestBatchEncodeMatchesScalarDevice(t *testing.T) {
	encoders := []approx.Encoder{approx.OneBit{}, approx.MustNBit(2), approx.MustNBit(8), approx.Exact{}}
	widths := []bits.Width{bits.W8, bits.W16, bits.W32}
	policies := []FallbackPolicy{FallbackPerPage, FallbackPerValue}
	for _, enc := range encoders {
		for _, w := range widths {
			for _, policy := range policies {
				name := fmt.Sprintf("%s/%v/policy%d", enc.Name(), w, policy)
				t.Run(name, func(t *testing.T) {
					kd := kernelEquivDevice(t, enc, w, 6, policy, false)
					sd := kernelEquivDevice(t, enc, w, 6, policy, true)
					spec := kd.Flash().Spec()
					rng := xrand.New(0xD1FF)
					buf := make([]byte, spec.PageSize)
					for op := 0; op < 120; op++ {
						page := rng.Intn(spec.NumPages)
						off := page * spec.PageSize
						n := spec.PageSize
						if op%3 == 1 { // partial, word-aligned writes too
							a := w.Bytes() * (1 + rng.Intn(spec.PageSize/w.Bytes()-1))
							off += 0
							n = a
						}
						for i := 0; i < n; i++ {
							buf[i] = rng.Byte()
						}
						if err := kd.Write(off, buf[:n]); err != nil {
							t.Fatal(err)
						}
						if err := sd.Write(off, buf[:n]); err != nil {
							t.Fatal(err)
						}
					}
					if ks, ss := kd.Stats(), sd.Stats(); ks != ss {
						t.Fatalf("controller stats diverge: kernel %+v, scalar %+v", ks, ss)
					}
					if kf, sf := kd.Flash().Stats(), sd.Flash().Stats(); kf != sf {
						t.Fatalf("flash op counts diverge: kernel %+v, scalar %+v", kf, sf)
					}
					kb := make([]byte, spec.Size())
					sb := make([]byte, spec.Size())
					if err := kd.Read(0, kb); err != nil {
						t.Fatal(err)
					}
					if err := sd.Read(0, sb); err != nil {
						t.Fatal(err)
					}
					for i := range kb {
						if kb[i] != sb[i] {
							t.Fatalf("flash contents diverge at byte %d: kernel %#x, scalar %#x", i, kb[i], sb[i])
						}
					}
				})
			}
		}
	}
}

// TestKernelEngagementMatrix pins the per-(encoder, cell mode) soundness
// matrix: the NCell kernel engages only on MLC (its outputs may set bits,
// which SLC cannot program, and a legal MLC cell move can raise a TLC
// field), Exact's SLC subset verdict engages only on SLC, subset-producing
// kernels engage everywhere, and encoders without kernels never do.
func TestKernelEngagementMatrix(t *testing.T) {
	modes := []flash.CellMode{flash.SLC, flash.MLC, flash.TLC}
	cases := []struct {
		enc  approx.Encoder
		want map[flash.CellMode]bool
	}{
		{approx.MustNCell(2), map[flash.CellMode]bool{flash.SLC: false, flash.MLC: true, flash.TLC: false}},
		{approx.Exact{}, map[flash.CellMode]bool{flash.SLC: true, flash.MLC: false, flash.TLC: false}},
		{approx.OneBit{}, map[flash.CellMode]bool{flash.SLC: true, flash.MLC: true, flash.TLC: true}},
		{approx.MustNBit(2), map[flash.CellMode]bool{flash.SLC: true, flash.MLC: true, flash.TLC: true}},
		{approx.Optimal{}, map[flash.CellMode]bool{flash.SLC: false, flash.MLC: false, flash.TLC: false}},
	}
	for _, c := range cases {
		for _, m := range modes {
			if got := kernelEngages(c.enc, m); got != c.want[m] {
				t.Errorf("kernelEngages(%s, %v) = %v, want %v", c.enc.Name(), m, got, c.want[m])
			}
		}
	}
}

// TestDenseCellKernelMatchesScalarDevice replays identical write workloads
// (full pages and word-aligned partials) on kernel and WithScalarEncode
// devices at MLC and TLC densities and requires bit-identical behaviour
// end to end — the replacement for the old TestMLCUsesScalarPath guard now
// that the kernels engage on dense cell modes.
func TestDenseCellKernelMatchesScalarDevice(t *testing.T) {
	cases := []struct {
		cell flash.CellMode
		enc  approx.Encoder
	}{
		{flash.MLC, approx.MustNCell(1)},
		{flash.MLC, approx.MustNCell(2)},
		{flash.MLC, approx.MustNCell(4)},
		{flash.TLC, approx.MustNBit(2)},
		{flash.TLC, approx.OneBit{}},
	}
	widths := []bits.Width{bits.W8, bits.W16, bits.W32}
	for _, c := range cases {
		for _, w := range widths {
			t.Run(fmt.Sprintf("%v/%s/%v", c.cell, c.enc.Name(), w), func(t *testing.T) {
				spec := testSpec()
				spec.Cell = c.cell
				mk := func(scalar bool) *Device {
					opts := []Option{WithEncoder(c.enc)}
					if scalar {
						opts = append(opts, WithScalarEncode())
					}
					d := MustNewDevice(spec, opts...)
					if err := d.SetApproxRegion(0, spec.Size()); err != nil {
						t.Fatal(err)
					}
					if err := d.SetWidth(w); err != nil {
						t.Fatal(err)
					}
					d.SetThreshold(6)
					return d
				}
				kd, sd := mk(false), mk(true)
				rng := xrand.New(0xD1FF)
				buf := make([]byte, spec.PageSize)
				for op := 0; op < 120; op++ {
					page := rng.Intn(spec.NumPages)
					off := page * spec.PageSize
					n := spec.PageSize
					if op%3 == 1 { // partial, word-aligned writes too
						n = w.Bytes() * (1 + rng.Intn(spec.PageSize/w.Bytes()-1))
					}
					for i := 0; i < n; i++ {
						buf[i] = rng.Byte()
					}
					if err := kd.Write(off, buf[:n]); err != nil {
						t.Fatal(err)
					}
					if err := sd.Write(off, buf[:n]); err != nil {
						t.Fatal(err)
					}
				}
				if ks, ss := kd.Stats(), sd.Stats(); ks != ss {
					t.Fatalf("controller stats diverge: kernel %+v, scalar %+v", ks, ss)
				}
				if kf, sf := kd.Flash().Stats(), sd.Flash().Stats(); kf != sf {
					t.Fatalf("flash op counts diverge: kernel %+v, scalar %+v", kf, sf)
				}
				kb := make([]byte, spec.Size())
				sb := make([]byte, spec.Size())
				if err := kd.Read(0, kb); err != nil {
					t.Fatal(err)
				}
				if err := sd.Read(0, sb); err != nil {
					t.Fatal(err)
				}
				for i := range kb {
					if kb[i] != sb[i] {
						t.Fatalf("flash contents diverge at byte %d: kernel %#x, scalar %#x", i, kb[i], sb[i])
					}
				}
			})
		}
	}
}

// TestMLCKernelCommitModeEquivalence drives identical per-bank write
// sequences through an MLC scalar-path oracle and three kernel-path drive
// modes — serial Write, one goroutine per bank, and the async group-commit
// pipeline — and requires byte-identical flash stats (global and per
// bank), controller stats, and array contents from all of them. This is
// the device-level proof that the NCell kernel wiring covers the sync,
// concurrent, and async commit paths alike.
func TestMLCKernelCommitModeEquivalence(t *testing.T) {
	spec := concSpec()
	spec.Cell = flash.MLC
	enc := approx.MustNCell(2)
	const rounds = 80
	for _, threshold := range []float64{4, 255} {
		plans := make([][]pageWrite, spec.Banks)
		for b := range plans {
			plans[b] = bankPlan(spec, spec.Banks, b, rounds, 0x31C+uint64(b))
		}
		mk := func(opts ...Option) *Device {
			d := MustNewDevice(spec, append([]Option{WithEncoder(enc)}, opts...)...)
			if err := d.SetApproxRegion(0, spec.Size()); err != nil {
				t.Fatal(err)
			}
			d.SetThreshold(threshold)
			return d
		}

		oracle := mk(WithScalarEncode())
		for _, plan := range plans {
			for _, pw := range plan {
				_ = oracle.Write(oracle.Flash().PageBase(pw.page), pw.data)
			}
		}

		serial := mk()
		for _, plan := range plans {
			for _, pw := range plan {
				_ = serial.Write(serial.Flash().PageBase(pw.page), pw.data)
			}
		}

		conc := mk()
		var wg sync.WaitGroup
		for b := range plans {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				for _, pw := range plans[b] {
					_ = conc.Write(conc.Flash().PageBase(pw.page), pw.data)
				}
			}(b)
		}
		wg.Wait()

		async := mk(WithAsyncCommit(8))
		for r := 0; r < rounds; r++ {
			for b := range plans {
				pw := plans[b][r]
				async.WriteAsync(async.Flash().PageBase(pw.page), pw.data)
			}
		}
		async.Flush()
		if err := async.Close(); err != nil {
			t.Fatal(err)
		}

		for _, m := range []struct {
			name string
			d    *Device
		}{{"serial-kernel", serial}, {"concurrent-kernel", conc}, {"async-kernel", async}} {
			if s, c := oracle.Flash().Stats(), m.d.Flash().Stats(); s != c {
				t.Errorf("threshold %v %s: flash stats differ\nscalar %+v\nkernel %+v", threshold, m.name, s, c)
			}
			for b := 0; b < spec.Banks; b++ {
				if s, c := oracle.Flash().BankStats(b), m.d.Flash().BankStats(b); s != c {
					t.Errorf("threshold %v %s: bank %d shard differs\nscalar %+v\nkernel %+v",
						threshold, m.name, b, s, c)
				}
			}
			if s, c := oracle.Stats(), m.d.Stats(); s != c {
				t.Errorf("threshold %v %s: controller stats differ\nscalar %+v\nkernel %+v", threshold, m.name, s, c)
			}
			for addr := 0; addr < spec.Size(); addr++ {
				if oracle.Flash().Peek(addr) != m.d.Flash().Peek(addr) {
					t.Fatalf("threshold %v %s: array differs at %#x", threshold, m.name, addr)
				}
			}
		}
	}
}

// TestCommitPageSteadyStateAllocsMLC mirrors the SLC steady-state guard on
// an MLC device with the NCell kernel engaged: the commit hot path must
// not allocate per page on the dense-cell path either.
func TestCommitPageSteadyStateAllocsMLC(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; allocation counts are meaningless")
	}
	spec := testSpec()
	spec.Cell = flash.MLC
	d := MustNewDevice(spec, WithEncoder(approx.MustNCell(2)))
	if err := d.SetApproxRegion(0, spec.Size()); err != nil {
		t.Fatal(err)
	}
	d.SetThreshold(255)
	rng := xrand.New(11)
	a := make([]byte, spec.PageSize)
	b := make([]byte, spec.PageSize)
	for i := range a {
		a[i] = rng.Byte()
		b[i] = byte(int(a[i]) + rng.Intn(5) - 2)
	}
	if err := d.Write(0, a); err != nil { // warm the pool, the page, and the LUT
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		buf := a
		if i%2 == 1 {
			buf = b
		}
		i++
		if err := d.Write(0, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("steady-state MLC commitPage allocates %.2f objects per op, want ~0", allocs)
	}
}

// TestCommitPageSteadyStateAllocs pins the zero-allocation property of the
// steady-state commit path with the batch kernels engaged. The buffer pool
// may be refilled by the GC mid-measurement, so a small tolerance is
// allowed instead of demanding exactly zero.
func TestCommitPageSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; allocation counts are meaningless")
	}
	d := newApproxDevice(t, 255)
	spec := d.Flash().Spec()
	rng := xrand.New(11)
	a := make([]byte, spec.PageSize)
	b := make([]byte, spec.PageSize)
	for i := range a {
		a[i] = rng.Byte()
		b[i] = byte(int(a[i]) + rng.Intn(5) - 2)
	}
	if err := d.Write(0, a); err != nil { // warm the pool and the page
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		buf := a
		if i%2 == 1 {
			buf = b
		}
		i++
		if err := d.Write(0, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Errorf("steady-state commitPage allocates %.2f objects per op, want ~0", allocs)
	}
}
