package core

import (
	"sync/atomic"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

// Commit-path micro-benchmarks: the per-page session cost bounds how fast
// the workload experiments can run.

func benchDevice(b *testing.B, threshold float64) (*Device, []byte, []byte) {
	b.Helper()
	spec := flash.DefaultSpec()
	spec.NumPages = 16
	d := MustNewDevice(spec)
	if err := d.SetApproxRegion(0, spec.Size()); err != nil {
		b.Fatal(err)
	}
	d.SetThreshold(threshold)
	rng := xrand.New(9)
	a := make([]byte, spec.PageSize)
	c := make([]byte, spec.PageSize)
	for i := range a {
		a[i] = rng.Byte()
		c[i] = byte(int(a[i]) + rng.Intn(5) - 2) // near neighbour
	}
	return d, a, c
}

// BenchmarkApproxCommit measures a page session that commits erase-free.
func BenchmarkApproxCommit(b *testing.B) {
	d, a, c := benchDevice(b, 255) // always approximate
	if err := d.Write(0, a); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := a
		if i%2 == 1 {
			buf = c
		}
		if err := d.Write(0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritePathKernel measures the end-to-end approximate commit with
// the batch encode kernels engaged (the default path on SLC).
func BenchmarkWritePathKernel(b *testing.B) {
	benchWritePath(b, false)
}

// BenchmarkWritePathScalar is the same workload forced onto the per-value
// reference encode path; the delta against BenchmarkWritePathKernel is the
// kernels' end-to-end impact.
func BenchmarkWritePathScalar(b *testing.B) {
	benchWritePath(b, true)
}

func benchWritePath(b *testing.B, scalar bool) {
	b.Helper()
	spec := flash.DefaultSpec()
	spec.NumPages = 16
	var opts []Option
	if scalar {
		opts = append(opts, WithScalarEncode())
	}
	d := MustNewDevice(spec, opts...)
	if err := d.SetApproxRegion(0, spec.Size()); err != nil {
		b.Fatal(err)
	}
	d.SetThreshold(255)
	rng := xrand.New(9)
	a := make([]byte, spec.PageSize)
	c := make([]byte, spec.PageSize)
	for i := range a {
		a[i] = rng.Byte()
		c[i] = byte(int(a[i]) + rng.Intn(5) - 2)
	}
	if err := d.Write(0, a); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(spec.PageSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := a
		if i%2 == 1 {
			buf = c
		}
		if err := d.Write(0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritePathConcurrent measures synchronous commits issued from
// b.RunParallel workers against a bank-sharded device — the contention
// profile of the sharded op-event bus. Run with -cpu=1,4 to see the
// single-core cost and the cross-bank scaling.
func BenchmarkWritePathConcurrent(b *testing.B) {
	spec := flash.DefaultSpec()
	spec.NumPages = 16
	d := MustNewDevice(spec)
	if err := d.SetApproxRegion(0, spec.Size()); err != nil {
		b.Fatal(err)
	}
	d.SetThreshold(255)
	rng := xrand.New(9)
	a := make([]byte, spec.PageSize)
	for i := range a {
		a[i] = rng.Byte()
	}
	for p := 0; p < spec.NumPages; p++ {
		if err := d.Write(d.Flash().PageBase(p), a); err != nil {
			b.Fatal(err)
		}
	}
	var next uint32
	b.SetBytes(int64(spec.PageSize))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Deal each worker its own page so workers map to banks
		// round-robin, like the writepath experiment.
		p := int(atomic.AddUint32(&next, 1)) % spec.NumPages
		for pb.Next() {
			if err := d.Write(d.Flash().PageBase(p), a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWritePathAsync measures the async pipeline: one producer keeps a
// window of writePathAsyncDepth commits in flight so per-bank group commit
// can form batches.
func BenchmarkWritePathAsync(b *testing.B) {
	const depth = 8
	spec := flash.DefaultSpec()
	spec.NumPages = 16
	d := MustNewDevice(spec, WithAsyncCommit(depth))
	defer d.Close()
	if err := d.SetApproxRegion(0, spec.Size()); err != nil {
		b.Fatal(err)
	}
	d.SetThreshold(255)
	rng := xrand.New(9)
	a := make([]byte, spec.PageSize)
	for i := range a {
		a[i] = rng.Byte()
	}
	if err := d.WriteAsync(0, a).Wait(); err != nil {
		b.Fatal(err)
	}
	window := make([]*Commit, 0, depth)
	b.SetBytes(int64(spec.PageSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(window) == depth {
			if err := window[0].Wait(); err != nil {
				b.Fatal(err)
			}
			window = window[:copy(window, window[1:])]
		}
		p := i % spec.NumPages
		window = append(window, d.WriteAsync(d.Flash().PageBase(p), a))
	}
	for _, c := range window {
		if err := c.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactCommit measures a page session that erases every time.
func BenchmarkExactCommit(b *testing.B) {
	d, a, c := benchDevice(b, 0)
	for i := range c {
		c[i] = ^a[i] // force erases
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := a
		if i%2 == 1 {
			buf = c
		}
		if err := d.Write(0, buf); err != nil {
			b.Fatal(err)
		}
	}
}
