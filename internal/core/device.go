package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// ErrorMetric selects the page-error statistic compared against the
// threshold register. The paper uses MAE because it is cheaper in hardware
// than MSE (§III-A4); MSE exists for the ablation bench.
type ErrorMetric int

// Supported error metrics.
const (
	MetricMAE ErrorMetric = iota
	MetricMSE
)

func (m ErrorMetric) String() string {
	if m == MetricMSE {
		return "MSE"
	}
	return "MAE"
}

// FallbackPolicy selects when a page abandons approximation and performs an
// exact erase-and-program. The paper gates on the mean error of the page;
// the per-value policy (ablation) falls back as soon as any single value
// exceeds the threshold.
type FallbackPolicy int

// Supported fallback policies.
const (
	FallbackPerPage FallbackPolicy = iota
	FallbackPerValue
)

func (p FallbackPolicy) String() string {
	if p == FallbackPerValue {
		return "per-value"
	}
	return "per-page"
}

// ErrExactDegraded is returned by the health-gated commit path
// (WithHealthGate) when exact data would land on a degraded page — one that
// has worn out or been retired. Approximate writes still proceed (stuck
// cells are just extra 1→0 flips inside the error budget); callers holding
// exact data must place it elsewhere.
var ErrExactDegraded = errors.New("core: page degraded; exact data refused")

// Stats aggregates the controller's decisions across committed pages.
type Stats struct {
	PagesApprox uint64 // pages committed with programs only (no erase)
	PagesExact  uint64 // pages that fell back to erase + exact program

	ValuesApproximated uint64 // values where approx != exact
	ValuesTotal        uint64 // values considered by the error check
	ErrorSum           uint64 // accumulated |exact - approx| over ValuesTotal

	// Health-gate accounting (zero unless WithHealthGate is configured).
	PagesDegraded uint64 // approximate commits routed onto degraded pages
	ExactRefused  uint64 // commits refused with ErrExactDegraded

	// Verify-retry accounting (zero unless WithRetry is configured).
	RetryAttempts uint64 // re-issued programs/erases after a transient verify failure
	RetrySaves    uint64 // operations that succeeded after at least one retry
	RetryRetired  uint64 // pages retired after exhausting the retry budget
}

// MAE returns the mean absolute error introduced across all checked values.
func (s Stats) MAE() float64 {
	if s.ValuesTotal == 0 {
		return 0
	}
	return float64(s.ErrorSum) / float64(s.ValuesTotal)
}

// add folds o into s.
func (s *Stats) add(o Stats) {
	s.PagesApprox += o.PagesApprox
	s.PagesExact += o.PagesExact
	s.ValuesApproximated += o.ValuesApproximated
	s.ValuesTotal += o.ValuesTotal
	s.ErrorSum += o.ErrorSum
	s.PagesDegraded += o.PagesDegraded
	s.ExactRefused += o.ExactRefused
	s.RetryAttempts += o.RetryAttempts
	s.RetrySaves += o.RetrySaves
	s.RetryRetired += o.RetryRetired
}

// Device is a flash chip with the FlipBit controller attached. All writes
// go through the buffered commit pipeline of §III-B; reads pass straight
// through to the flash array.
//
// Read and Write are safe for concurrent use: commits to pages in
// different flash banks proceed in parallel, commits within one bank
// serialize on the bank's commit lock, and controller statistics are
// sharded per bank and merged deterministically, so a concurrent run
// reports totals identical to a serial run of the same per-bank workload.
// Configuration (WriteReg, SetThreshold, SetEncoder, …) is not
// synchronised against in-flight writes: configure, then commit traffic.
type Device struct {
	fl   *flash.Device
	regs registerFile
	enc  approx.Encoder

	// cell caches the flash spec's cell mode (immutable after
	// construction) so the commit hot path never re-copies the Spec.
	cell flash.CellMode

	metric   ErrorMetric
	fallback FallbackPolicy

	// scalarEncode forces the per-value reference encode path even when
	// the encoder carries a batch kernel (WithScalarEncode).
	scalarEncode bool

	// commitMu serializes commit sessions per bank; shards are the
	// matching per-bank controller statistics, each guarded by its
	// bank's commit lock.
	commitMu []sync.Mutex
	shards   []Stats

	// bufPool recycles commit-session buffer sets; commits borrow a set
	// for the duration of one page session instead of contending for the
	// two fixed SRAM buffers of the serial design.
	bufPool sync.Pool

	// healthGate, when set, makes commitPage consult page health: exact
	// data is refused on degraded pages with ErrExactDegraded while
	// approximate data keeps flowing onto them.
	healthGate bool

	// retryMax/retryBackoff parameterise the verify-retry policy
	// (WithRetry): programs and erases that fail with flash.ErrTransient
	// are re-issued up to retryMax times with a linearly growing backoff
	// charged to the device-time ledger; exhausting the budget retires
	// the page instead of failing the write.
	retryMax     int
	retryBackoff time.Duration

	// scrubber is the background scrubber built by WithScrubber (scrub.go);
	// nil unless configured. It is constructed stopped — call Start.
	scrubber *Scrubber

	// async is the opt-in per-bank commit pipeline built by
	// WithAsyncCommit (async.go); nil for the default serial path.
	async *asyncEngine

	// Construction-time option state.
	banksOverride int
	asyncDepth    int
	observers     []flash.Observer
	faultSched    flash.FaultSchedule
	scrubCfg      *ScrubConfig
}

// commitBuffers is the SRAM triple one page commit works on: the page's
// previous contents, the exact data after the CPU's stores, and the
// approximation candidate.
type commitBuffers struct {
	previous []byte
	exact    []byte
	approx   []byte
}

// Option configures a Device at construction.
type Option func(*Device)

// WithEncoder selects the approximation encoder (default: 2-bit n-bit
// algorithm, the configuration the paper evaluates most).
func WithEncoder(e approx.Encoder) Option { return func(d *Device) { d.enc = e } }

// WithErrorMetric selects MAE (default) or MSE page gating.
func WithErrorMetric(m ErrorMetric) Option { return func(d *Device) { d.metric = m } }

// WithFallbackPolicy selects per-page (default) or per-value fallback.
func WithFallbackPolicy(p FallbackPolicy) Option { return func(d *Device) { d.fallback = p } }

// WithBanks overrides the flash spec's bank count (n independently
// lockable banks; commits to different banks run in parallel).
func WithBanks(n int) Option { return func(d *Device) { d.banksOverride = n } }

// WithObserver attaches an operation-event observer to the underlying
// flash device at construction. The observer receives every flash
// operation the controller issues; it must be safe for concurrent use if
// the device is driven from multiple goroutines.
func WithObserver(o flash.Observer) Option {
	return func(d *Device) { d.observers = append(d.observers, o) }
}

// WithFaultSchedule installs a fault schedule on the underlying flash
// device at construction, so faults are armed before the first operation.
// The schedule's first fault is armed immediately; use
// Flash().SetFaultSchedule to change it later.
func WithFaultSchedule(s flash.FaultSchedule) Option {
	return func(d *Device) { d.faultSched = s }
}

// WithHealthGate makes the commit path consult page health: commits that
// would place exact data on a degraded (worn-out or retired) page fail with
// ErrExactDegraded instead of writing data an upcoming erase would corrupt,
// while approximate commits keep flowing onto degraded pages — the paper's
// graceful-degradation story. The gate is also predictive: an exact commit
// that needs an erase on a page already at its endurance rating is refused
// *before* that erase kills the page, so acknowledged data is never
// destroyed by a doomed rewrite. Off by default, preserving the classic
// best-effort ErrWornOut behaviour.
func WithHealthGate() Option { return func(d *Device) { d.healthGate = true } }

// WithRetry installs the verify-retry policy on the commit and erase paths:
// a program or erase whose verify fails transiently (flash.ErrTransient) is
// re-issued up to max times, waiting backoff × attempt between issues (the
// wait is charged to the flash busy-time ledger via ChargeWait, so retries
// cost device time deterministically). A page that exhausts the budget is
// handed to the retire machinery — the page is fenced and the caller sees
// ErrExactDegraded, which the FTL and the KVS already route around by
// placing the data elsewhere — instead of failing the write outright.
func WithRetry(max int, backoff time.Duration) Option {
	return func(d *Device) {
		d.retryMax = max
		d.retryBackoff = backoff
	}
}

// WithScrubber builds a background scrubber (scrub.go) over the device at
// construction. The scrubber is returned by Device.Scrubber and starts
// stopped — call Start to launch its per-bank goroutines.
func WithScrubber(cfg ScrubConfig) Option {
	return func(d *Device) { d.scrubCfg = &cfg }
}

// WithScalarEncode forces the commit pipeline's per-value reference encode
// path even when the configured encoder has a compiled batch kernel
// (approx.BatchEncoder). The kernels are bit-identical to the scalar
// encoders — property- and fuzz-tested — so this option exists for
// differential testing and for measuring the kernels' end-to-end impact
// (the encodekernel bench experiment), not for correctness.
func WithScalarEncode() Option { return func(d *Device) { d.scalarEncode = true } }

// NewDevice builds a FlipBit device over a fresh flash array described by
// spec. The controller starts with approximation disabled (empty region),
// width 8 and threshold 0.
func NewDevice(spec flash.Spec, opts ...Option) (*Device, error) {
	d := &Device{
		enc: approx.MustNBit(2),
	}
	d.regs[RegWidth] = uint32(bits.W8)
	for _, o := range opts {
		o(d)
	}
	if d.banksOverride > 0 {
		spec.Banks = d.banksOverride
	}
	fl, err := flash.NewDevice(spec)
	if err != nil {
		return nil, err
	}
	d.fl = fl
	d.cell = fl.Spec().Cell
	for _, o := range d.observers {
		fl.Attach(o)
	}
	if d.faultSched != nil {
		fl.SetFaultSchedule(d.faultSched)
	}
	nb := fl.Banks()
	d.commitMu = make([]sync.Mutex, nb)
	d.shards = make([]Stats, nb)
	ps := fl.Spec().PageSize
	d.bufPool.New = func() any {
		return &commitBuffers{
			previous: make([]byte, ps),
			exact:    make([]byte, ps),
			approx:   make([]byte, ps),
		}
	}
	if d.scrubCfg != nil {
		d.scrubber = NewScrubber(d, *d.scrubCfg)
	}
	if d.asyncDepth > 0 {
		d.async = newAsyncEngine(d, d.asyncDepth)
	}
	return d, nil
}

// MustNewDevice is NewDevice for configurations known to be valid.
func MustNewDevice(spec flash.Spec, opts ...Option) *Device {
	d, err := NewDevice(spec, opts...)
	if err != nil {
		panic(err)
	}
	return d
}

// Flash exposes the underlying flash device for statistics and inspection.
func (d *Device) Flash() *flash.Device { return d.fl }

// Scrubber returns the background scrubber configured with WithScrubber, or
// nil when none was requested.
func (d *Device) Scrubber() *Scrubber { return d.scrubber }

// Stats returns a snapshot of the controller's decision counters: the
// per-bank shards merged in bank order. All counters are integers, so the
// merge is exact and a concurrent run that performed the same per-bank
// commits as a serial run reports identical totals.
func (d *Device) Stats() Stats {
	var s Stats
	for b := range d.shards {
		d.commitMu[b].Lock()
		s.add(d.shards[b])
		d.commitMu[b].Unlock()
	}
	return s
}

// BankStats returns the controller stats shard for one flash bank.
func (d *Device) BankStats(b int) Stats {
	d.commitMu[b].Lock()
	defer d.commitMu[b].Unlock()
	return d.shards[b]
}

// ResetStats clears both controller and flash statistics. This is the
// deep reset: the controller's per-bank decision shards and every flash
// bank's operation ledger go to zero together, so before/after deltas line
// up across both layers. Flash wear counters are physical state and are
// preserved (see flash.Device.ResetStats). To clear only the flash ledger
// and keep the controller's decision history, call Flash().ResetStats().
func (d *Device) ResetStats() {
	for b := range d.shards {
		d.commitMu[b].Lock()
		d.shards[b] = Stats{}
		d.commitMu[b].Unlock()
	}
	d.fl.ResetStats()
}

// Encoder returns the configured approximation encoder.
func (d *Device) Encoder() approx.Encoder { return d.enc }

// SetEncoder swaps the approximation encoder at run time (the synthesized
// hardware is run-time configurable for n = 1..8, §III-B).
func (d *Device) SetEncoder(e approx.Encoder) { d.enc = e }

// --- Memory-mapped register interface (§III-C) ---

// WriteReg stores val into register r. The width register validates its
// encoding (the hardware decodes it combinationally); the region registers
// accept any value — a half-configured or inconsistent region simply marks
// nothing approximatable until both registers are coherent, so the order of
// MMIO writes does not matter.
func (d *Device) WriteReg(r Reg, val uint32) error {
	switch r {
	case RegApproxStart, RegApproxEnd:
		d.regs[r] = val
		return nil
	case RegWidth:
		if _, err := widthFromReg(val); err != nil {
			return err
		}
		d.regs[r] = val
		return nil
	case RegThreshold:
		d.regs[r] = val
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrBadReg, int(r))
	}
}

// ReadReg returns the raw value of register r (0 for unknown registers,
// matching reads of unmapped MMIO).
func (d *Device) ReadReg(r Reg) uint32 {
	if r < 0 || r >= numRegs {
		return 0
	}
	return d.regs[r]
}

func (d *Device) validateRegion() error {
	start, end := int(d.regs[RegApproxStart]), int(d.regs[RegApproxEnd])
	ps := d.fl.Spec().PageSize
	if start > end || end > d.fl.Spec().Size() || start%ps != 0 || end%ps != 0 {
		return fmt.Errorf("%w: [%#x, %#x)", ErrBadRegion, start, end)
	}
	return nil
}

// --- Convenience configuration (what setApproxThreshold() and the linker
// script of Listing 1/2 boil down to) ---

// SetApproxRegion marks [start, end) as approximatable. Both bounds must be
// page aligned. Setting an empty region disables approximation.
func (d *Device) SetApproxRegion(start, end int) error {
	old0, old1 := d.regs[RegApproxStart], d.regs[RegApproxEnd]
	d.regs[RegApproxStart] = uint32(start)
	d.regs[RegApproxEnd] = uint32(end)
	if err := d.validateRegion(); err != nil {
		d.regs[RegApproxStart], d.regs[RegApproxEnd] = old0, old1
		return err
	}
	return nil
}

// SetWidth configures the value width used for approximation and error
// accounting.
func (d *Device) SetWidth(w bits.Width) error {
	return d.WriteReg(RegWidth, uint32(w))
}

// Width returns the configured value width.
func (d *Device) Width() bits.Width {
	w, _ := widthFromReg(d.regs[RegWidth])
	return w
}

// SetThreshold sets the error threshold (MAE or MSE depending on metric) in
// value units. This is the library equivalent of setApproxThreshold() in
// Listing 1. Thresholds at or above 65536 saturate the Q16.16 register to
// ThresholdUnlimited, which disables the error gate.
func (d *Device) SetThreshold(t float64) {
	d.regs[RegThreshold] = ThresholdToFixed(t)
}

// Threshold returns the configured error threshold in value units.
func (d *Device) Threshold() float64 {
	return FixedToThreshold(d.regs[RegThreshold])
}

// Approximatable reports whether the given page lies entirely in the
// configured approximatable region. An incoherent region configuration
// (inverted, misaligned or out of range) marks nothing approximatable.
func (d *Device) Approximatable(page int) bool {
	if d.validateRegion() != nil {
		return false
	}
	start, end := int(d.regs[RegApproxStart]), int(d.regs[RegApproxEnd])
	base := d.fl.PageBase(page)
	return base >= start && base+d.fl.Spec().PageSize <= end
}

// --- Data path ---

// Read fills dst from flash starting at addr (random access, as NOR
// supports; §II-C).
func (d *Device) Read(addr int, dst []byte) error {
	return d.fl.Read(addr, dst)
}

// SensePage performs a slow margin-aware controller sense of physical page
// p (dst must be one page): the read reference is shifted away from the
// threshold boundary, so marginal retention cells resolve to their stored
// value instead of flickering like they do on fast host reads. The
// hardened read path falls back to it when fast re-reads cannot settle a
// checksum, leaving only persistent damage for the single-bit repair to
// judge. Charged like any other full-page read.
func (d *Device) SensePage(p int, dst []byte) error {
	return d.fl.ReadPage(p, dst)
}

// Write stores data at addr through the FlipBit commit pipeline, splitting
// the access into page-sized sessions. Pages inside the approximatable
// region may be written approximately; all other pages are written exactly
// (with an erase only when physically required).
//
// A worn-out page reports flash.ErrWornOut but the write is still performed
// best-effort, so callers can continue and observe degraded data — exactly
// how a deployed device fails.
func (d *Device) Write(addr int, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	ps := d.fl.Spec().PageSize
	var wornOut error
	for len(data) > 0 {
		page := d.fl.PageOf(addr)
		off := addr - d.fl.PageBase(page)
		n := ps - off
		if n > len(data) {
			n = len(data)
		}
		if err := d.commitPage(page, off, data[:n]); err != nil {
			if errors.Is(err, flash.ErrWornOut) {
				wornOut = err
			} else {
				return err
			}
		}
		addr += n
		data = data[n:]
	}
	return wornOut
}

// --- Commit pipeline (§III-B "System Integration") ---
//
// One page commit runs five explicit stages:
//
//	load   — read the page's previous contents into a pooled buffer set
//	apply  — the CPU's stores land in the exact buffer
//	encode — the approximation unit rewrites the approx buffer value by
//	         value from (previous, exact), tracking error
//	gate   — the error threshold / reachability decision (Fig. 9 hardware)
//	program/erase — the chosen buffer commits to the flash array
//
// A session borrows its three SRAM page buffers from a sync.Pool rather
// than sharing two fixed device buffers, so sessions against different
// flash banks run concurrently; the bank's commit lock keeps the
// read-modify-write atomic per bank.

// session carries one page commit through the pipeline stages.
type session struct {
	d    *Device
	page int
	off  int
	data []byte
	bufs *commitBuffers
}

// encodeResult is what the encode stage hands the gate stage.
type encodeResult struct {
	tracker      approx.ErrorTracker
	approximated uint64
	exceeded     bool // per-value policy tripped
	unreachable  bool // some approximated value needs an erase anyway
}

// commitPage runs one commit session for a single page: off/data describe
// the bytes the CPU stores into the exact buffer.
func (d *Device) commitPage(page, off int, data []byte) error {
	bank := d.fl.BankOf(page)
	d.commitMu[bank].Lock()
	defer d.commitMu[bank].Unlock()

	bufs := d.bufPool.Get().(*commitBuffers)
	defer d.bufPool.Put(bufs)
	s := &session{d: d, page: page, off: off, data: data, bufs: bufs}

	// Stage 1: load. One array read is charged; the mirror into the
	// exact buffer is an SRAM copy.
	if err := s.load(); err != nil {
		return err
	}
	// Stage 2: apply the CPU's stores.
	s.apply()

	return d.finishLocked(bank, s, encodeResult{}, false)
}

// finishLocked runs the back half of the pipeline — health gate, encode,
// error gate, program/erase, stats fold — for one loaded-and-applied
// session. The group-commit path (async.go) precomputes the encode stage
// for a whole bank batch in one kernel call and passes encoded == true; the
// serial path lets the session encode itself. Called with the page's bank
// commit lock held.
func (d *Device) finishLocked(bank int, s *session, enc encodeResult, encoded bool) error {
	page := s.page

	// Health gate (§II-B graceful degradation): a degraded page — worn
	// out or retired — must not receive exact data. Even a program-only
	// exact write is unsafe there: stuck cells silently corrupt the next
	// value that needs them at 1. Approximate commits continue below.
	degraded := d.healthGate && d.fl.Degraded(page)

	if !d.Approximatable(page) {
		if degraded {
			d.shards[bank].ExactRefused++
			return fmt.Errorf("page %d: %w", page, ErrExactDegraded)
		}
		// Predictive fencing: a page at its endurance rating is still
		// healthy, but the erase this commit needs would push it past the
		// rating and stick cells under the fresh exact data. Refuse while
		// the data is still intact somewhere.
		if d.healthGate && s.needsErase() && d.fl.AtRating(page) {
			d.shards[bank].ExactRefused++
			return fmt.Errorf("page %d: %w", page, ErrExactDegraded)
		}
		return d.retryOp(bank, page, s.programExact)
	}

	// Stage 3: encode the approximation candidate (unless group commit
	// already ran the batch kernel over this session's span).
	if !encoded {
		enc = s.encode()
	}

	// Stage 4: gate on the error threshold (Fig. 9 hardware).
	if s.gate(enc) {
		if degraded || (d.healthGate && d.fl.AtRating(page)) {
			// The erase fallback is doomed on a degraded page — the
			// erase sticks more cells and the exact program lands
			// corrupted — and equally doomed on a page at its rating,
			// where this very erase would be the one that kills it.
			// Refuse instead of silently destroying data.
			d.shards[bank].ExactRefused++
			return fmt.Errorf("page %d: %w", page, ErrExactDegraded)
		}
		d.shards[bank].PagesExact++
		return d.retryOp(bank, page, s.eraseProgramExact)
	}

	// Stage 5: approximate commit — programs only, no erase possible by
	// construction (every value is a bitwise subset of previous, so stuck
	// cells — already 0 in previous — are automatically respected).
	sh := &d.shards[bank]
	sh.PagesApprox++
	sh.ValuesApproximated += enc.approximated
	sh.ValuesTotal += uint64(enc.tracker.Count())
	sh.ErrorSum += enc.tracker.SumAbs()
	if degraded {
		sh.PagesDegraded++
	}
	return d.retryOp(bank, page, s.programApprox)
}

// retryOp runs one flash-committing operation under the verify-retry policy
// (WithRetry). A transient verify failure is re-issued up to retryMax times
// with a linearly growing backoff charged to the device-time ledger; state
// after a transient failure is recoverable by construction (every bit that
// moved, moved toward the target), so a re-issue picks up where the failed
// pulse stopped. A page that exhausts the budget is retired and the caller
// sees ErrExactDegraded — the signal the FTL's spare-pool remap and the
// KVS's tail-retirement already treat as "place this data elsewhere" — so
// the write as a whole still succeeds. Called with the page's bank commit
// lock held (the retry stats live in that bank's shard).
func (d *Device) retryOp(bank, page int, op func() error) error {
	err := op()
	if err == nil || d.retryMax <= 0 || !errors.Is(err, flash.ErrTransient) {
		return err
	}
	sh := &d.shards[bank]
	for attempt := 1; attempt <= d.retryMax; attempt++ {
		sh.RetryAttempts++
		d.fl.ChargeWait(bank, d.retryBackoff*time.Duration(attempt))
		err = op()
		if err == nil {
			sh.RetrySaves++
			return nil
		}
		if !errors.Is(err, flash.ErrTransient) {
			return err
		}
	}
	sh.RetryRetired++
	if rerr := d.fl.Retire(page); rerr != nil {
		return errors.Join(err, rerr)
	}
	return fmt.Errorf("page %d: retry budget exhausted (%v): %w", page, err, ErrExactDegraded)
}

// ErasePage erases page p through the verify-retry policy. Management
// layers (the FTL's garbage collector, the KVS's compaction and reclaim
// paths) route their erases here instead of hitting the flash device
// directly, so a transiently failing erase is retried with backoff and an
// exhausted page is retired rather than silently left half-erased.
func (d *Device) ErasePage(p int) error {
	bank := d.fl.BankOf(p)
	d.commitMu[bank].Lock()
	defer d.commitMu[bank].Unlock()
	return d.retryOp(bank, p, func() error { return d.fl.ErasePage(p) })
}

// load reads the page into the previous buffer and mirrors it into the
// exact and approx buffers.
func (s *session) load() error {
	if err := s.d.fl.ReadPage(s.page, s.bufs.previous); err != nil {
		return err
	}
	copy(s.bufs.exact, s.bufs.previous)
	copy(s.bufs.approx, s.bufs.previous)
	return nil
}

// apply lands the CPU's stores in the exact buffer.
func (s *session) apply() {
	copy(s.bufs.exact[s.off:], s.data)
}

// encode rewrites the approx buffer from (previous, exact), tracking error
// over the values the CPU actually touched. When the encoder carries a
// compiled batch kernel (approx.BatchEncoder) sound for the device's cell
// mode — see kernelEngages — the whole span is encoded in one EncodeSlice
// call with the statistics accumulated in-kernel; otherwise (encoders
// without kernels, mode/kernel mismatches, or WithScalarEncode) it falls
// back to the per-value reference loop, which doubles as the
// differential-test oracle for the kernels.
func (s *session) encode() encodeResult {
	d := s.d
	w := d.Width()
	lo, hi, batch := s.kernelSpan(w)
	if batch {
		return s.encodeBatch(d.enc.(approx.BatchEncoder), lo, hi, w)
	}
	// Devirtualize the hot encoders: the concrete-typed calls let the
	// compiler skip the interface dispatch per value (and inline the
	// trivial ones), which matters at one call per value per page.
	switch enc := d.enc.(type) {
	case approx.Exact:
		return encodeScalarLoop(enc, s, lo, hi, w)
	case approx.OneBit:
		return encodeScalarLoop(enc, s, lo, hi, w)
	case *approx.NBit:
		return encodeScalarLoop(enc, s, lo, hi, w)
	case *approx.NCell:
		return encodeScalarLoop(enc, s, lo, hi, w)
	default:
		return encodeScalarLoop(d.enc, s, lo, hi, w)
	}
}

// kernelEngages reports whether enc's compiled batch kernel is sound on a
// device with the given cell mode — both its outputs (must be programmable
// without an erase) and its Unreachable verdict must match what the scalar
// loop would conclude under that mode's reachability:
//
//   - the NCell kernel reasons per two-bit cell, so it engages only on
//     MLC: its outputs may set bits (10 → 01), which SLC cannot program,
//     and a legal MLC cell move can *raise* a TLC field (0b1000 → 0b0100
//     lifts TLC field 0 from 0 to 4).
//   - Exact's kernel judges reachability with the SLC word-wise subset
//     test, so it engages only on SLC; on denser modes that verdict is
//     pessimistic and would diverge from the scalar loop's.
//   - every other batch encoder (OneBit, NBit) emits bitwise subsets of
//     previous — reachable under every cell mode, Unreachable always
//     false, matching the scalar verdict — so they engage everywhere.
func kernelEngages(enc approx.Encoder, cell flash.CellMode) bool {
	if _, ok := enc.(approx.BatchEncoder); !ok {
		return false
	}
	switch enc.(type) {
	case *approx.NCell:
		return cell == flash.MLC
	case approx.Exact:
		return cell == flash.SLC
	default:
		return true
	}
}

// kernelSpan returns the value-aligned dirty span the encode stage covers
// and whether the compiled batch kernel applies to it (a batch encoder
// sound for the cell mode, no scalar override, and a whole number of
// values). Sync, concurrent, and async group commits all route through
// this decision.
func (s *session) kernelSpan(w bits.Width) (lo, hi int, batch bool) {
	d := s.d
	vb := w.Bytes()
	lo, hi = alignDown(s.off, vb), alignUp(s.off+len(s.data), vb)
	if hi > len(s.bufs.exact) {
		hi = len(s.bufs.exact)
	}
	if !d.scalarEncode && (hi-lo)%vb == 0 {
		return lo, hi, kernelEngages(d.enc, d.cell)
	}
	return lo, hi, false
}

// encodeBatch runs the compiled kernel over the aligned dirty span and
// converts its in-kernel statistics to an encodeResult.
func (s *session) encodeBatch(be approx.BatchEncoder, lo, hi int, w bits.Width) encodeResult {
	st := be.EncodeSlice(s.bufs.previous[lo:hi], s.bufs.exact[lo:hi], s.bufs.approx[lo:hi], w)
	return s.d.batchResult(st)
}

// batchResult converts in-kernel batch statistics to an encodeResult.
// BatchStats carries exactly the aggregates the scalar loop accumulates:
// the error sums feed the tracker, MaxAbs reproduces the per-value
// threshold test (some value exceeds the threshold iff the largest one
// does), and Unreachable mirrors the per-value reachability check (approx
// kernel outputs are reachable by construction under the cell mode they
// engage on, so it only fires for Exact on an unreachable span).
func (d *Device) batchResult(st approx.BatchStats) encodeResult {
	var res encodeResult
	res.tracker.AddBatch(st.Count, st.SumAbs, st.SumSq)
	res.approximated = st.Approximated
	res.unreachable = st.Unreachable
	if d.fallback == FallbackPerValue {
		threshold := d.regs[RegThreshold]
		res.exceeded = threshold != ThresholdUnlimited &&
			uint64(st.MaxAbs)<<ThresholdFracBits > uint64(threshold)
	}
	return res
}

// encodeScalarLoop is the per-value reference encode stage, generic over
// the encoder's concrete type so session.encode's type switch devirtualizes
// the Approximate call. Loop invariants (cell mode, threshold register,
// fallback policy) are hoisted out of the loop.
func encodeScalarLoop[E approx.Encoder](enc E, s *session, lo, hi int, w bits.Width) encodeResult {
	d := s.d
	vb := w.Bytes()
	cell := d.cell
	threshold := d.regs[RegThreshold]
	perValue := d.fallback == FallbackPerValue && threshold != ThresholdUnlimited
	var res encodeResult
	for i := lo; i < hi; i += vb {
		prev := bits.LoadLE(s.bufs.previous[i:], w)
		exact := bits.LoadLE(s.bufs.exact[i:], w)
		a := enc.Approximate(prev, exact, w)
		bits.StoreLE(s.bufs.approx[i:], a, w)
		res.tracker.Add(exact, a)
		if a != exact {
			res.approximated++
		}
		// Encoders may return a value that is not reachable through
		// program pulses when approximating it is unacceptable (e.g.
		// the float32 encoder protecting sign/exponent bits, §VI);
		// the hardware's per-page needs-erase signal forces the
		// exact fallback in that case.
		if !valueReachable(cell, prev, a, w) {
			res.unreachable = true
		}
		if perValue && uint64(bits.AbsDiff(exact, a))<<ThresholdFracBits > uint64(threshold) {
			res.exceeded = true
		}
	}
	return res
}

// gate decides whether the page must fall back to the exact erase path.
func (s *session) gate(enc encodeResult) bool {
	exceeded := enc.exceeded
	if s.d.fallback == FallbackPerPage {
		exceeded = s.d.overThreshold(&enc.tracker, s.d.regs[RegThreshold])
	}
	return exceeded || enc.unreachable
}

// programApprox commits the approximation candidate with programs only.
func (s *session) programApprox() error {
	return s.d.fl.ProgramPage(s.page, s.bufs.approx)
}

// needsErase reports whether committing the exact buffer requires an erase:
// some bit needs a 0→1 transition only an erase can provide. The exact
// buffer differs from previous only inside the dirty span the CPU stored
// (load mirrors the page, apply overlays [off, off+len(data))), so only
// that span is scanned — word-wise for SLC cells, where reachability is
// the bitwise subset test over uint64 loads.
func (s *session) needsErase() bool {
	lo, hi := s.off, s.off+len(s.data)
	prev, exact := s.bufs.previous[lo:hi], s.bufs.exact[lo:hi]
	if s.d.cell == flash.SLC {
		return !bits.SubsetBytes(exact, prev)
	}
	for i, v := range exact {
		if !s.d.cell.Reachable(prev[i], v) {
			return true
		}
	}
	return false
}

// programExact writes the exact buffer to the page, erasing only if some
// bit needs a 0→1 transition. This is the conventional (non-FlipBit) write
// path and the fair baseline for every experiment.
func (s *session) programExact() error {
	fl := s.d.fl
	if !s.needsErase() {
		return fl.ProgramPage(s.page, s.bufs.exact)
	}
	return fl.EraseProgramPage(s.page, s.bufs.exact)
}

// eraseProgramExact is the approximation-failure fallback: §III-B specifies
// an exact write to an erased page.
func (s *session) eraseProgramExact() error {
	return s.d.fl.EraseProgramPage(s.page, s.bufs.exact)
}

// ThresholdUnlimited is the all-ones threshold register value; it disables
// the error gate entirely so every approximatable page commits erase-free.
const ThresholdUnlimited = ^uint32(0)

// overThreshold compares the page error statistic with the Q16.16 threshold
// using integer arithmetic, as the accumulator hardware would.
func (d *Device) overThreshold(tr *approx.ErrorTracker, threshold uint32) bool {
	if tr.Count() == 0 || threshold == ThresholdUnlimited {
		return false
	}
	switch d.metric {
	case MetricMSE:
		mse := tr.MSE()
		return mse > FixedToThreshold(threshold)
	default:
		return tr.SumAbs()<<ThresholdFracBits > uint64(threshold)*uint64(tr.Count())
	}
}

// valueReachable reports whether a width-w value can move from `from` to
// `to` with program pulses only. For SLC that is one word-wise subset test
// (to &^ from == 0, equivalent to the per-byte test since bytes don't
// interact); MLC needs the per-byte cell-level walk.
func valueReachable(m flash.CellMode, from, to uint32, w bits.Width) bool {
	if m == flash.SLC {
		return to&^from == 0
	}
	for i := 0; i < w.Bytes(); i++ {
		if !m.Reachable(byte(from>>uint(8*i)), byte(to>>uint(8*i))) {
			return false
		}
	}
	return true
}

func alignDown(v, a int) int { return v - v%a }

func alignUp(v, a int) int {
	if r := v % a; r != 0 {
		return v + a - r
	}
	return v
}
