package core

import (
	"errors"
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// ErrorMetric selects the page-error statistic compared against the
// threshold register. The paper uses MAE because it is cheaper in hardware
// than MSE (§III-A4); MSE exists for the ablation bench.
type ErrorMetric int

// Supported error metrics.
const (
	MetricMAE ErrorMetric = iota
	MetricMSE
)

func (m ErrorMetric) String() string {
	if m == MetricMSE {
		return "MSE"
	}
	return "MAE"
}

// FallbackPolicy selects when a page abandons approximation and performs an
// exact erase-and-program. The paper gates on the mean error of the page;
// the per-value policy (ablation) falls back as soon as any single value
// exceeds the threshold.
type FallbackPolicy int

// Supported fallback policies.
const (
	FallbackPerPage FallbackPolicy = iota
	FallbackPerValue
)

func (p FallbackPolicy) String() string {
	if p == FallbackPerValue {
		return "per-value"
	}
	return "per-page"
}

// Stats aggregates the controller's decisions across committed pages.
type Stats struct {
	PagesApprox uint64 // pages committed with programs only (no erase)
	PagesExact  uint64 // pages that fell back to erase + exact program

	ValuesApproximated uint64 // values where approx != exact
	ValuesTotal        uint64 // values considered by the error check
	ErrorSum           uint64 // accumulated |exact - approx| over ValuesTotal
}

// MAE returns the mean absolute error introduced across all checked values.
func (s Stats) MAE() float64 {
	if s.ValuesTotal == 0 {
		return 0
	}
	return float64(s.ErrorSum) / float64(s.ValuesTotal)
}

// Device is a flash chip with the FlipBit controller attached. All writes
// go through the dual-buffer commit path of §III-B; reads pass straight
// through to the flash array.
type Device struct {
	fl   *flash.Device
	regs registerFile
	enc  approx.Encoder

	metric   ErrorMetric
	fallback FallbackPolicy

	stats Stats
}

// Option configures a Device at construction.
type Option func(*Device)

// WithEncoder selects the approximation encoder (default: 2-bit n-bit
// algorithm, the configuration the paper evaluates most).
func WithEncoder(e approx.Encoder) Option { return func(d *Device) { d.enc = e } }

// WithErrorMetric selects MAE (default) or MSE page gating.
func WithErrorMetric(m ErrorMetric) Option { return func(d *Device) { d.metric = m } }

// WithFallbackPolicy selects per-page (default) or per-value fallback.
func WithFallbackPolicy(p FallbackPolicy) Option { return func(d *Device) { d.fallback = p } }

// NewDevice builds a FlipBit device over a fresh flash array described by
// spec. The controller starts with approximation disabled (empty region),
// width 8 and threshold 0.
func NewDevice(spec flash.Spec, opts ...Option) (*Device, error) {
	fl, err := flash.NewDevice(spec)
	if err != nil {
		return nil, err
	}
	d := &Device{
		fl:  fl,
		enc: approx.MustNBit(2),
	}
	d.regs[RegWidth] = uint32(bits.W8)
	for _, o := range opts {
		o(d)
	}
	return d, nil
}

// MustNewDevice is NewDevice for configurations known to be valid.
func MustNewDevice(spec flash.Spec, opts ...Option) *Device {
	d, err := NewDevice(spec, opts...)
	if err != nil {
		panic(err)
	}
	return d
}

// Flash exposes the underlying flash device for statistics and inspection.
func (d *Device) Flash() *flash.Device { return d.fl }

// Stats returns a snapshot of the controller's decision counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears both controller and flash statistics.
func (d *Device) ResetStats() {
	d.stats = Stats{}
	d.fl.ResetStats()
}

// Encoder returns the configured approximation encoder.
func (d *Device) Encoder() approx.Encoder { return d.enc }

// SetEncoder swaps the approximation encoder at run time (the synthesized
// hardware is run-time configurable for n = 1..8, §III-B).
func (d *Device) SetEncoder(e approx.Encoder) { d.enc = e }

// --- Memory-mapped register interface (§III-C) ---

// WriteReg stores val into register r. The width register validates its
// encoding (the hardware decodes it combinationally); the region registers
// accept any value — a half-configured or inconsistent region simply marks
// nothing approximatable until both registers are coherent, so the order of
// MMIO writes does not matter.
func (d *Device) WriteReg(r Reg, val uint32) error {
	switch r {
	case RegApproxStart, RegApproxEnd:
		d.regs[r] = val
		return nil
	case RegWidth:
		if _, err := widthFromReg(val); err != nil {
			return err
		}
		d.regs[r] = val
		return nil
	case RegThreshold:
		d.regs[r] = val
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrBadReg, int(r))
	}
}

// ReadReg returns the raw value of register r (0 for unknown registers,
// matching reads of unmapped MMIO).
func (d *Device) ReadReg(r Reg) uint32 {
	if r < 0 || r >= numRegs {
		return 0
	}
	return d.regs[r]
}

func (d *Device) validateRegion() error {
	start, end := int(d.regs[RegApproxStart]), int(d.regs[RegApproxEnd])
	ps := d.fl.Spec().PageSize
	if start > end || end > d.fl.Spec().Size() || start%ps != 0 || end%ps != 0 {
		return fmt.Errorf("%w: [%#x, %#x)", ErrBadRegion, start, end)
	}
	return nil
}

// --- Convenience configuration (what setApproxThreshold() and the linker
// script of Listing 1/2 boil down to) ---

// SetApproxRegion marks [start, end) as approximatable. Both bounds must be
// page aligned. Setting an empty region disables approximation.
func (d *Device) SetApproxRegion(start, end int) error {
	old0, old1 := d.regs[RegApproxStart], d.regs[RegApproxEnd]
	d.regs[RegApproxStart] = uint32(start)
	d.regs[RegApproxEnd] = uint32(end)
	if err := d.validateRegion(); err != nil {
		d.regs[RegApproxStart], d.regs[RegApproxEnd] = old0, old1
		return err
	}
	return nil
}

// SetWidth configures the value width used for approximation and error
// accounting.
func (d *Device) SetWidth(w bits.Width) error {
	return d.WriteReg(RegWidth, uint32(w))
}

// Width returns the configured value width.
func (d *Device) Width() bits.Width {
	w, _ := widthFromReg(d.regs[RegWidth])
	return w
}

// SetThreshold sets the error threshold (MAE or MSE depending on metric) in
// value units. This is the library equivalent of setApproxThreshold() in
// Listing 1. Thresholds at or above 65536 saturate the Q16.16 register to
// ThresholdUnlimited, which disables the error gate.
func (d *Device) SetThreshold(t float64) {
	d.regs[RegThreshold] = ThresholdToFixed(t)
}

// Threshold returns the configured error threshold in value units.
func (d *Device) Threshold() float64 {
	return FixedToThreshold(d.regs[RegThreshold])
}

// Approximatable reports whether the given page lies entirely in the
// configured approximatable region. An incoherent region configuration
// (inverted, misaligned or out of range) marks nothing approximatable.
func (d *Device) Approximatable(page int) bool {
	if d.validateRegion() != nil {
		return false
	}
	start, end := int(d.regs[RegApproxStart]), int(d.regs[RegApproxEnd])
	base := d.fl.PageBase(page)
	return base >= start && base+d.fl.Spec().PageSize <= end
}

// --- Data path ---

// Read fills dst from flash starting at addr (random access, as NOR
// supports; §II-C).
func (d *Device) Read(addr int, dst []byte) error {
	return d.fl.Read(addr, dst)
}

// Write stores data at addr through the FlipBit commit path, splitting the
// access into page-sized sessions. Pages inside the approximatable region
// may be written approximately; all other pages are written exactly (with
// an erase only when physically required).
//
// A worn-out page reports flash.ErrWornOut but the write is still performed
// best-effort, so callers can continue and observe degraded data — exactly
// how a deployed device fails.
func (d *Device) Write(addr int, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	ps := d.fl.Spec().PageSize
	var wornOut error
	for len(data) > 0 {
		page := d.fl.PageOf(addr)
		off := addr - d.fl.PageBase(page)
		n := ps - off
		if n > len(data) {
			n = len(data)
		}
		if err := d.commitPage(page, off, data[:n]); err != nil {
			if errors.Is(err, flash.ErrWornOut) {
				wornOut = err
			} else {
				return err
			}
		}
		addr += n
		data = data[n:]
	}
	return wornOut
}

// commitPage runs one dual-buffer write session (§III-B "System
// Integration") for a single page: off/data describe the bytes the CPU
// stores into the exact buffer.
func (d *Device) commitPage(page, off int, data []byte) error {
	fl := d.fl
	// Step 1: read the page into buffer 0 and mirror it into buffer 1.
	// One array read is charged; the mirror is an SRAM copy.
	if err := fl.LoadBuffer(0, page); err != nil {
		return err
	}
	exactBuf := fl.Buffer(0)
	approxBuf := fl.Buffer(1)
	previous := make([]byte, len(exactBuf))
	copy(previous, exactBuf)
	copy(approxBuf, exactBuf)

	// Step 2: the CPU writes the exact values into buffer 0.
	copy(exactBuf[off:], data)

	if !d.Approximatable(page) {
		return d.commitExact(page)
	}

	// Step 3: the approximation hardware rewrites buffer 1 value by
	// value from (previous, exact), tracking error over the values the
	// CPU actually touched.
	w := d.Width()
	vb := w.Bytes()
	lo, hi := alignDown(off, vb), alignUp(off+len(data), vb)
	if hi > len(exactBuf) {
		hi = len(exactBuf)
	}
	var tracker approx.ErrorTracker
	exceeded := false
	unreachable := false
	cellMode := fl.Spec().Cell
	threshold := d.regs[RegThreshold]
	approximated := uint64(0)
	for i := lo; i < hi; i += vb {
		prev := bits.LoadLE(previous[i:], w)
		exact := bits.LoadLE(exactBuf[i:], w)
		a := d.enc.Approximate(prev, exact, w)
		bits.StoreLE(approxBuf[i:], a, w)
		tracker.Add(exact, a)
		if a != exact {
			approximated++
		}
		// Encoders may return a value that is not reachable through
		// program pulses when approximating it is unacceptable (e.g.
		// the float32 encoder protecting sign/exponent bits, §VI);
		// the hardware's per-page needs-erase signal forces the
		// exact fallback in that case.
		if !valueReachable(cellMode, prev, a, w) {
			unreachable = true
		}
		if d.fallback == FallbackPerValue && threshold != ThresholdUnlimited &&
			uint64(bits.AbsDiff(exact, a))<<ThresholdFracBits > uint64(threshold) {
			exceeded = true
		}
	}

	// Step 4: gate on the error threshold (Fig. 9 hardware).
	if d.fallback == FallbackPerPage {
		exceeded = d.overThreshold(&tracker, threshold)
	}
	if exceeded || unreachable {
		d.stats.PagesExact++
		return d.commitExactErase(page)
	}

	// Approximate commit: programs only, no erase possible by
	// construction (every value is a bitwise subset of previous).
	d.stats.PagesApprox++
	d.stats.ValuesApproximated += approximated
	d.stats.ValuesTotal += uint64(tracker.Count())
	d.stats.ErrorSum += tracker.SumAbs()
	return fl.ProgramFromBuffer(page, 1)
}

// ThresholdUnlimited is the all-ones threshold register value; it disables
// the error gate entirely so every approximatable page commits erase-free.
const ThresholdUnlimited = ^uint32(0)

// overThreshold compares the page error statistic with the Q16.16 threshold
// using integer arithmetic, as the accumulator hardware would.
func (d *Device) overThreshold(tr *approx.ErrorTracker, threshold uint32) bool {
	if tr.Count() == 0 || threshold == ThresholdUnlimited {
		return false
	}
	switch d.metric {
	case MetricMSE:
		mse := tr.MSE()
		return mse > FixedToThreshold(threshold)
	default:
		return tr.SumAbs()<<ThresholdFracBits > uint64(threshold)*uint64(tr.Count())
	}
}

// commitExact writes buffer 0 to the page, erasing only if some bit needs a
// 0→1 transition. This is the conventional (non-FlipBit) write path and the
// fair baseline for every experiment.
func (d *Device) commitExact(page int) error {
	fl := d.fl
	buf := fl.Buffer(0)
	base := fl.PageBase(page)
	mode := fl.Spec().Cell
	needErase := false
	for i, v := range buf {
		if !mode.Reachable(fl.Peek(base+i), v) {
			needErase = true
			break
		}
	}
	if !needErase {
		return fl.ProgramFromBuffer(page, 0)
	}
	return fl.EraseProgramFromBuffer(page, 0)
}

// commitExactErase is the approximation-failure fallback: §III-B specifies
// an exact write to an erased page.
func (d *Device) commitExactErase(page int) error {
	return d.fl.EraseProgramFromBuffer(page, 0)
}

// valueReachable reports whether a width-w value can move from `from` to
// `to` with program pulses only, byte by byte under the cell mode.
func valueReachable(m flash.CellMode, from, to uint32, w bits.Width) bool {
	for i := 0; i < w.Bytes(); i++ {
		if !m.Reachable(byte(from>>uint(8*i)), byte(to>>uint(8*i))) {
			return false
		}
	}
	return true
}

func alignDown(v, a int) int { return v - v%a }

func alignUp(v, a int) int {
	if r := v % a; r != 0 {
		return v + a - r
	}
	return v
}
