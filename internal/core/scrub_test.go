package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/flipbit-sim/flipbit/internal/flash"
)

func scrubSpec() flash.Spec {
	s := flash.DefaultSpec()
	s.PageSize = 32
	s.NumPages = 8
	s.Banks = 2
	return s
}

// wearOut erases page p until it is past endurance.
func wearOut(t *testing.T, d *Device, p int) {
	t.Helper()
	fl := d.Flash()
	for !fl.WornOut(p) {
		if err := fl.ErasePage(p); err != nil && !errors.Is(err, flash.ErrWornOut) {
			t.Fatal(err)
		}
	}
}

func TestHealthGateRefusesExactOnDegraded(t *testing.T) {
	s := scrubSpec()
	s.EnduranceCycles = 3
	d := MustNewDevice(s, WithHealthGate())
	const p = 0
	wearOut(t, d, p)

	// Exact data (no approx region configured) must be refused.
	err := d.Write(d.fl.PageBase(p), []byte{1, 2, 3, 4})
	if !errors.Is(err, ErrExactDegraded) {
		t.Fatalf("exact write on degraded page: got %v, want ErrExactDegraded", err)
	}
	if got := d.Stats().ExactRefused; got != 1 {
		t.Errorf("ExactRefused = %d, want 1", got)
	}

	// Without the gate the legacy best-effort behaviour is preserved.
	d2 := MustNewDevice(s)
	wearOut(t, d2, p)
	if err := d2.Write(d2.fl.PageBase(p), []byte{1, 2, 3, 4}); errors.Is(err, ErrExactDegraded) {
		t.Fatalf("ungated device returned ErrExactDegraded: %v", err)
	}
}

func TestHealthGateRoutesApproxOntoDegraded(t *testing.T) {
	s := scrubSpec()
	s.EnduranceCycles = 3
	d := MustNewDevice(s, WithHealthGate())
	if err := d.SetApproxRegion(0, s.PageSize*s.NumPages); err != nil {
		t.Fatal(err)
	}
	d.SetThreshold(70000) // saturates to unlimited: gate never trips
	const p = 2
	wearOut(t, d, p)

	if err := d.Write(d.fl.PageBase(p), []byte{0x10, 0x20, 0x30, 0x40}); err != nil {
		t.Fatalf("approx write on degraded page: %v", err)
	}
	if got := d.Stats().PagesDegraded; got != 1 {
		t.Errorf("PagesDegraded = %d, want 1", got)
	}
}

// TestScrubRefreshesExactDrift: read-disturb drift on an exact page must be
// healed back to the intended image by the scrubber.
func TestScrubRefreshesExactDrift(t *testing.T) {
	d := MustNewDevice(scrubSpec())
	const p = 1
	fl := d.Flash()
	ps := fl.Spec().PageSize
	want := make([]byte, ps)
	for i := range want {
		want[i] = byte(0xF0 | i&0x0F)
	}
	if err := d.Write(fl.PageBase(p), want); err != nil {
		t.Fatal(err)
	}

	// Disturb the page until some legitimate 1 actually flips (the fault
	// picks random cells, which may already be 0).
	buf := make([]byte, ps)
	for fl.StuckBits(p) == 0 {
		fl.ArmBankFault(fl.BankOf(p), flash.Fault{Kind: flash.FaultReadDisturb, Bits: 8})
		if err := fl.ReadPage(p, buf); err != nil {
			t.Fatal(err)
		}
	}

	sc := NewScrubber(d, ScrubConfig{})
	sc.scrubPage(p)

	if err := d.Read(fl.PageBase(p), buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("page not restored:\n got %x\nwant %x", buf, want)
	}
	st := sc.Stats()
	if st.Refreshed != 1 || st.Sampled != 1 {
		t.Errorf("stats: %+v", st)
	}
	if got := fl.Stats().Scrubs; got != 1 {
		t.Errorf("flash Scrubs = %d, want 1", got)
	}
}

// TestScrubAbsorbsApproxDrift: drift within budget on an approximatable
// page costs nothing — no erase, no program, data left in place.
func TestScrubAbsorbsApproxDrift(t *testing.T) {
	s := scrubSpec()
	d := MustNewDevice(s)
	if err := d.SetApproxRegion(0, s.PageSize*s.NumPages); err != nil {
		t.Fatal(err)
	}
	d.SetThreshold(70000)
	const p = 3
	fl := d.Flash()
	if err := d.Write(fl.PageBase(p), bytes.Repeat([]byte{0xFF}, s.PageSize)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, s.PageSize)
	for fl.StuckBits(p) == 0 {
		fl.ArmBankFault(fl.BankOf(p), flash.Fault{Kind: flash.FaultReadDisturb, Bits: 4})
		if err := fl.ReadPage(p, buf); err != nil {
			t.Fatal(err)
		}
	}

	before := fl.Stats()
	sc := NewScrubber(d, ScrubConfig{MaxStuck: 64})
	sc.scrubPage(p)
	delta := fl.Stats().Sub(before)
	if delta.Erases != 0 || delta.Programs != 0 {
		t.Errorf("absorption touched flash: %+v", delta)
	}
	if st := sc.Stats(); st.Absorbed != 1 {
		t.Errorf("stats: %+v", st)
	}
	if fl.StuckBits(p) == 0 {
		t.Error("drift mask was cleared by absorption")
	}
}

// TestScrubRetiresWornPage: a worn-out page is retired (default hook: the
// flash layer's fence).
func TestScrubRetiresWornPage(t *testing.T) {
	s := scrubSpec()
	s.EnduranceCycles = 2
	d := MustNewDevice(s)
	const p = 4
	wearOut(t, d, p)

	sc := NewScrubber(d, ScrubConfig{})
	sc.scrubPage(p)
	if !d.Flash().Retired(p) {
		t.Fatal("worn page not retired")
	}
	if st := sc.Stats(); st.Retired != 1 {
		t.Errorf("stats: %+v", st)
	}
	// A second pass sees the retired page and leaves it alone.
	sc.scrubPage(p)
	if st := sc.Stats(); st.Retired != 1 || st.Clean != 1 {
		t.Errorf("second-pass stats: %+v", st)
	}
}

// TestScrubberConcurrentWithWrites: the scrubber's goroutines must coexist
// with a concurrent write load (exercised under -race in CI).
func TestScrubberConcurrentWithWrites(t *testing.T) {
	s := scrubSpec()
	s.NumPages = 16
	s.Banks = 4
	d := MustNewDevice(s, WithScrubber(ScrubConfig{
		Interval:     200 * time.Microsecond,
		PagesPerTick: 2,
		MaxStuck:     8,
	}))
	if err := d.SetApproxRegion(0, s.PageSize*s.NumPages/2); err != nil {
		t.Fatal(err)
	}
	d.SetThreshold(4)
	sc := d.Scrubber()
	if sc == nil {
		t.Fatal("WithScrubber did not build a scrubber")
	}
	sc.Start()
	sc.Start() // idempotent

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 8)
			for i := 0; i < 200; i++ {
				for j := range buf {
					buf[j] = byte(w*31 + i + j)
				}
				addr := ((w*5 + i) % s.NumPages) * s.PageSize
				if err := d.Write(addr, buf); err != nil &&
					!errors.Is(err, flash.ErrWornOut) {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	sc.Stop()
	sc.Stop() // idempotent
	if st := sc.Stats(); st.Sampled == 0 {
		t.Error("scrubber never sampled a page while running")
	}
}
