package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/flipbit-sim/flipbit/internal/flash"
)

// Background scrubbing. Flash cells drift: repeated reads disturb
// neighbouring cells and worn erases leave cells stuck at 0. The scrubber
// walks the device bank by bank, samples each page's drift mask (the fault
// model's ground truth, flash/health.go) and acts by page class:
//
//   - clean pages are left alone;
//   - approximatable pages absorb drift up to MaxStuck cells — stuck bits
//     are just extra 1→0 flips inside the error budget, so the data keeps
//     living there at zero refresh cost (the paper's core insight);
//   - exact pages with drift, and approximatable pages past the budget,
//     are refreshed in place: the intended image (data | mask) is rewritten
//     with an erase + program + verify, or handed to a caller-supplied
//     Refresh hook (the journaled FTL's crash-consistent path);
//   - worn-out pages that can no longer hold even approximate data are
//     retired, by default fencing them off at the flash layer, or through a
//     caller-supplied Retire hook (the FTL's spare-pool remap).
//
// Each bank is scrubbed by its own rate-limited goroutine; sampling and the
// raw refresh hold the bank's commit lock so an in-flight commit never
// interleaves with a refresh of the same page.

// DefaultScrubInterval is the per-bank tick period when ScrubConfig leaves
// Interval zero.
const DefaultScrubInterval = 10 * time.Millisecond

// ScrubConfig parameterises a Scrubber.
type ScrubConfig struct {
	// Interval is the delay between scrub ticks per bank (the rate limit);
	// zero or negative selects DefaultScrubInterval.
	Interval time.Duration

	// PagesPerTick is how many pages one bank tick samples (minimum 1).
	PagesPerTick int

	// MaxStuck is the stuck-cell budget an approximatable page may absorb
	// before it is refreshed or retired. Zero means approximatable pages
	// are refreshed as soon as any cell drifts (no absorption).
	MaxStuck int

	// Refresh, when non-nil, replaces the raw in-place erase + program
	// with a managed path (e.g. the journaled FTL's crash-consistent
	// RefreshPage). It receives the physical page and its restored
	// intended image, and is invoked without the bank's commit lock held —
	// the callback must provide its own exclusion if commits can race it.
	Refresh func(p int, restored []byte) error

	// Retire, when non-nil, replaces flash.Device.Retire for worn-out
	// pages (e.g. the FTL's spare-pool remap). Invoked without the bank's
	// commit lock held.
	Retire func(p int) error
}

// ScrubStats counts scrubber decisions.
type ScrubStats struct {
	Sampled   uint64 // pages examined
	Clean     uint64 // pages with no drift and no wear-out
	Absorbed  uint64 // approximatable pages left carrying drift
	Refreshed uint64 // pages rewritten to their intended image
	Retired   uint64 // worn-out pages retired
	Errors    uint64 // refresh/retire attempts that failed

	// Retention-drift decisions (flash/retention.go).
	RetentionAbsorbed  uint64 // approximatable pages left carrying marginal cells
	RetentionRefreshed uint64 // pages recharged in place (program cost, no erase)
}

// Scrubber is the background scrub engine for one device. Construct with
// NewScrubber (or the WithScrubber device option), then Start. Safe for
// concurrent use with device commits.
type Scrubber struct {
	d   *Device
	cfg ScrubConfig

	mu     sync.Mutex
	stats  ScrubStats
	cursor []int // per-bank index of the next page to sample

	runMu   sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
	running bool
}

// NewScrubber builds a stopped scrubber over d.
func NewScrubber(d *Device, cfg ScrubConfig) *Scrubber {
	return &Scrubber{d: d, cfg: cfg, cursor: make([]int, d.fl.Banks())}
}

// Stats returns a snapshot of the scrubber's decision counters.
func (s *Scrubber) Stats() ScrubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Scrubber) interval() time.Duration {
	if s.cfg.Interval <= 0 {
		return DefaultScrubInterval
	}
	return s.cfg.Interval
}

func (s *Scrubber) pagesPerTick() int {
	if s.cfg.PagesPerTick < 1 {
		return 1
	}
	return s.cfg.PagesPerTick
}

// Start launches one rate-limited goroutine per bank. Starting a running
// scrubber is a no-op.
func (s *Scrubber) Start() {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	if s.running {
		return
	}
	s.running = true
	s.stop = make(chan struct{})
	for b := 0; b < s.d.fl.Banks(); b++ {
		s.wg.Add(1)
		go s.run(b, s.stop)
	}
}

// Stop halts the per-bank goroutines and waits for in-flight scrubs to
// finish. Stopping a stopped scrubber is a no-op.
func (s *Scrubber) Stop() {
	s.runMu.Lock()
	if !s.running {
		s.runMu.Unlock()
		return
	}
	s.running = false
	close(s.stop)
	s.runMu.Unlock()
	s.wg.Wait()
}

func (s *Scrubber) run(bank int, stop chan struct{}) {
	defer s.wg.Done()
	t := time.NewTicker(s.interval())
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.ScrubBank(bank, s.pagesPerTick())
		}
	}
}

// ScrubBank synchronously scrubs the next n pages of one bank, advancing
// the bank's cursor. It is the deterministic entry point the fault-campaign
// engine drives directly (no goroutines, no timers).
func (s *Scrubber) ScrubBank(bank, n int) {
	nb := s.d.fl.Banks()
	pages := s.d.fl.Spec().NumPages
	perBank := (pages - bank + nb - 1) / nb // pages p with p % nb == bank
	if perBank == 0 {
		return
	}
	for i := 0; i < n; i++ {
		s.mu.Lock()
		idx := s.cursor[bank] % perBank
		s.cursor[bank] = idx + 1
		s.mu.Unlock()
		s.scrubPage(bank + idx*nb)
	}
}

// bump increments one stats counter.
func (s *Scrubber) bump(f func(*ScrubStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// scrubPage samples one page and applies the scrub policy.
func (s *Scrubber) scrubPage(p int) {
	d := s.d
	fl := d.fl
	s.bump(func(st *ScrubStats) { st.Sampled++ })

	if fl.Retired(p) {
		s.bump(func(st *ScrubStats) { st.Clean++ })
		return
	}

	bank := fl.BankOf(p)
	ps := fl.Spec().PageSize
	mask := make([]byte, ps)

	// Sample and decide under the bank's commit lock so a concurrent
	// commit never interleaves with the classification or a raw refresh.
	d.commitMu[bank].Lock()
	stuck, err := fl.StuckMaskInto(p, mask)
	if err != nil {
		d.commitMu[bank].Unlock()
		s.bump(func(st *ScrubStats) { st.Errors++ })
		return
	}
	rise := fl.RiseBits(p)
	worn := fl.WornOut(p)
	if stuck == 0 && rise == 0 && !worn {
		d.commitMu[bank].Unlock()
		s.bump(func(st *ScrubStats) { st.Clean++ })
		return
	}

	// Approximate data lives with drift: the encoder already treats stuck
	// cells as cleared bits of `previous`, and a marginal retention cell
	// is just read noise inside the same error budget, so up to MaxStuck
	// total cells the page needs no action at all.
	if d.Approximatable(p) && stuck+rise <= s.cfg.MaxStuck && !worn {
		d.commitMu[bank].Unlock()
		if rise > 0 {
			s.bump(func(st *ScrubStats) { st.RetentionAbsorbed++ })
		} else {
			s.bump(func(st *ScrubStats) { st.Absorbed++ })
		}
		return
	}

	// A worn page can no longer hold data; a page at its endurance rating
	// still can, but the erase a refresh needs would be the one that kills
	// it. Both retire — through the hook, data moves onto a spare.
	if worn || fl.AtRating(p) {
		d.commitMu[bank].Unlock()
		s.retire(p)
		return
	}

	// Pure retention drift refreshes in place: the array still holds the
	// intended image, so recharging the marginal cells costs one program
	// pulse per affected byte — no erase, no wear, no data movement.
	if stuck == 0 && rise > 0 {
		_, err := fl.RefreshRetention(p)
		d.commitMu[bank].Unlock()
		if err != nil {
			s.bump(func(st *ScrubStats) { st.Errors++ })
			return
		}
		fl.NoteScrub(p)
		s.bump(func(st *ScrubStats) { st.RetentionRefreshed++ })
		return
	}

	// Refresh: rebuild the intended image (data | mask) and rewrite it.
	restored := make([]byte, ps)
	if err := fl.ReadPage(p, restored); err != nil {
		d.commitMu[bank].Unlock()
		s.bump(func(st *ScrubStats) { st.Errors++ })
		return
	}
	for i := range restored {
		restored[i] |= mask[i]
	}
	if s.cfg.Refresh != nil {
		d.commitMu[bank].Unlock()
		err = s.cfg.Refresh(p, restored)
	} else {
		// Under the retry policy a transient erase verify-failure re-issues
		// the whole erase + program, so a torn erase never strands the page
		// with its committed image destroyed.
		err = d.retryOp(bank, p, func() error { return rawRefresh(fl, p, restored) })
		d.commitMu[bank].Unlock()
	}
	if err != nil {
		s.bump(func(st *ScrubStats) { st.Errors++ })
		if errors.Is(err, flash.ErrWornOut) {
			s.retire(p)
		}
		return
	}
	fl.NoteScrub(p)
	s.bump(func(st *ScrubStats) { st.Refreshed++ })
}

// retire takes a worn-out page out of service through the configured hook.
func (s *Scrubber) retire(p int) {
	var err error
	if s.cfg.Retire != nil {
		err = s.cfg.Retire(p)
	} else {
		err = s.d.fl.Retire(p)
	}
	if err != nil {
		s.bump(func(st *ScrubStats) { st.Errors++ })
		return
	}
	s.bump(func(st *ScrubStats) { st.Retired++ })
}

// rawRefresh rewrites page p to restored with erase + program + read-back
// verify — the default refresh for raw (unmanaged) devices.
func rawRefresh(fl *flash.Device, p int, restored []byte) error {
	if err := fl.EraseProgramPage(p, restored); err != nil {
		return err
	}
	got := make([]byte, len(restored))
	if err := fl.ReadPage(p, got); err != nil {
		return err
	}
	for i := range got {
		if got[i] != restored[i] {
			return fmt.Errorf("core: scrub verify failed: page %d byte %d got %02x want %02x",
				p, i, got[i], restored[i])
		}
	}
	return nil
}
