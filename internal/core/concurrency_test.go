package core

import (
	"math"
	"sync"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/energy"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

func concSpec() flash.Spec {
	s := flash.DefaultSpec()
	s.PageSize = 32
	s.NumPages = 32
	s.Banks = 4
	return s
}

func newConcDevice(t testing.TB, spec flash.Spec, threshold float64) *Device {
	t.Helper()
	d := MustNewDevice(spec)
	if err := d.SetApproxRegion(0, spec.Size()); err != nil {
		t.Fatal(err)
	}
	d.SetThreshold(threshold)
	return d
}

// bankWorkload issues a deterministic sequence of page writes against the
// pages of one bank.
func bankWorkload(d *Device, bank, rounds int, seed uint64) {
	spec := d.Flash().Spec()
	rng := xrand.New(seed)
	var pages []int
	for p := 0; p < spec.NumPages; p++ {
		if d.Flash().BankOf(p) == bank {
			pages = append(pages, p)
		}
	}
	buf := make([]byte, spec.PageSize)
	for r := 0; r < rounds; r++ {
		p := pages[rng.Intn(len(pages))]
		for i := range buf {
			buf[i] = rng.Byte()
		}
		_ = d.Write(d.Flash().PageBase(p), buf)
	}
}

// TestShardedStatsPropertyMergedEqualsSerial is the tentpole's correctness
// property: for identical per-bank workloads, a concurrent run (one
// goroutine per bank) must report byte-identical merged flash stats
// (operation counts, energy joules, busy time), controller stats, and
// controller MAE to a serial run. Several seeds and thresholds act as the
// property's sample space.
func TestShardedStatsPropertyMergedEqualsSerial(t *testing.T) {
	spec := concSpec()
	const rounds = 120
	for _, threshold := range []float64{0, 2, 8, 255} {
		for seed := uint64(1); seed <= 3; seed++ {
			serial := newConcDevice(t, spec, threshold)
			for b := 0; b < serial.Flash().Banks(); b++ {
				bankWorkload(serial, b, rounds, seed*100+uint64(b))
			}

			conc := newConcDevice(t, spec, threshold)
			var wg sync.WaitGroup
			for b := 0; b < conc.Flash().Banks(); b++ {
				wg.Add(1)
				go func(b int) {
					defer wg.Done()
					bankWorkload(conc, b, rounds, seed*100+uint64(b))
				}(b)
			}
			wg.Wait()

			if s, c := serial.Flash().Stats(), conc.Flash().Stats(); s != c {
				t.Errorf("threshold %v seed %d: flash stats differ\nserial     %+v\nconcurrent %+v",
					threshold, seed, s, c)
			}
			if s, c := serial.Stats(), conc.Stats(); s != c {
				t.Errorf("threshold %v seed %d: controller stats differ\nserial     %+v\nconcurrent %+v",
					threshold, seed, s, c)
			}
			if s, c := serial.Stats().MAE(), conc.Stats().MAE(); s != c {
				t.Errorf("threshold %v seed %d: MAE %v != %v", threshold, seed, s, c)
			}
			// The stored arrays must match too: same workload, same data.
			for addr := 0; addr < spec.Size(); addr++ {
				if serial.Flash().Peek(addr) != conc.Flash().Peek(addr) {
					t.Fatalf("threshold %v seed %d: array differs at %#x", threshold, seed, addr)
				}
			}
		}
	}
}

// TestConcurrentCommitsOverlappingBanks race-stresses the commit path: N
// goroutines writing pages across ALL banks (so bank commit locks are
// contended) must stay race-free, conserve page-decision counts, and keep
// integer stats consistent with the flash layer.
func TestConcurrentCommitsOverlappingBanks(t *testing.T) {
	spec := concSpec()
	d := newConcDevice(t, spec, 4)
	const workers = 8
	const perWorker = 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(900 + w))
			buf := make([]byte, spec.PageSize)
			for r := 0; r < perWorker; r++ {
				p := rng.Intn(spec.NumPages) // any page: banks overlap
				for i := range buf {
					buf[i] = rng.Byte()
				}
				if err := d.Write(d.Flash().PageBase(p), buf); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := d.Stats()
	if st.PagesApprox+st.PagesExact != workers*perWorker {
		t.Errorf("page decisions not conserved: approx %d + exact %d != %d",
			st.PagesApprox, st.PagesExact, workers*perWorker)
	}
	// Every commit loads its page once: reads == commits * page size.
	fst := d.Flash().Stats()
	if want := uint64(workers * perWorker * spec.PageSize); fst.Reads != want {
		t.Errorf("flash reads = %d, want %d", fst.Reads, want)
	}
	// Per-bank shards sum to the merged totals.
	var sum Stats
	for b := 0; b < d.Flash().Banks(); b++ {
		sum.add(d.BankStats(b))
	}
	if sum != st {
		t.Errorf("shard sum %+v != merged %+v", sum, st)
	}
}

// TestConcurrentWritesDisjointPagesPreserveData: concurrent exact writers
// on disjoint pages must land exactly their own bytes.
func TestConcurrentWritesDisjointPagesPreserveData(t *testing.T) {
	spec := concSpec()
	d := MustNewDevice(spec) // approximation disabled: every byte exact
	const workers = 8
	pagesPer := spec.NumPages / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(3000 + w))
			buf := make([]byte, spec.PageSize)
			for round := 0; round < 40; round++ {
				p := w*pagesPer + rng.Intn(pagesPer)
				for i := range buf {
					buf[i] = rng.Byte()
				}
				if err := d.Write(d.Flash().PageBase(p), buf); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				got := make([]byte, spec.PageSize)
				if err := d.Read(d.Flash().PageBase(p), got); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				for i := range buf {
					if got[i] != buf[i] {
						t.Errorf("worker %d page %d byte %d: %02x != %02x", w, p, i, got[i], buf[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentEnergyLedgerMatchesStats: a shared ledger subscribed to the
// op-event bus agrees with the merged stats even under concurrent commits
// (up to float summation order across banks).
func TestConcurrentEnergyLedgerMatchesStats(t *testing.T) {
	spec := concSpec()
	var led energy.Ledger
	d := MustNewDevice(spec, WithObserver(flash.NewLedgerObserver(&led)))
	if err := d.SetApproxRegion(0, spec.Size()); err != nil {
		t.Fatal(err)
	}
	d.SetThreshold(8)
	var wg sync.WaitGroup
	for b := 0; b < d.Flash().Banks(); b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			bankWorkload(d, b, 80, uint64(7000+b))
		}(b)
	}
	wg.Wait()
	st := d.Flash().Stats()
	if diff := math.Abs(float64(led.Total() - st.Energy)); diff > 1e-9*math.Abs(float64(st.Energy)) {
		t.Errorf("ledger total %v != stats energy %v", led.Total(), st.Energy)
	}
	if led.Busy() != st.Busy {
		t.Errorf("ledger busy %v != stats busy %v", led.Busy(), st.Busy)
	}
}
