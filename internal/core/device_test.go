package core

import (
	"errors"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/approx"
	"github.com/flipbit-sim/flipbit/internal/bits"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/xrand"
)

func testSpec() flash.Spec {
	s := flash.DefaultSpec()
	s.PageSize = 32
	s.NumPages = 16
	return s
}

// newApproxDevice returns a device with its whole array approximatable,
// width 8 and a generous threshold.
func newApproxDevice(t *testing.T, threshold float64) *Device {
	t.Helper()
	d := MustNewDevice(testSpec())
	if err := d.SetApproxRegion(0, d.Flash().Spec().Size()); err != nil {
		t.Fatal(err)
	}
	if err := d.SetWidth(bits.W8); err != nil {
		t.Fatal(err)
	}
	d.SetThreshold(threshold)
	return d
}

func TestWriteReadRoundTripExactRegion(t *testing.T) {
	d := MustNewDevice(testSpec()) // approximation disabled by default
	data := []byte{1, 2, 3, 4, 255, 0, 128, 7}
	if err := d.Write(5, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.Read(5, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestExactWritesNeverApproximate(t *testing.T) {
	d := MustNewDevice(testSpec())
	rng := xrand.New(3)
	buf := make([]byte, 64)
	for round := 0; round < 10; round++ {
		for i := range buf {
			buf[i] = rng.Byte()
		}
		if err := d.Write(0, buf); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(buf))
		_ = d.Read(0, got)
		for i := range buf {
			if got[i] != buf[i] {
				t.Fatalf("round %d: byte %d corrupted", round, i)
			}
		}
	}
	if d.Stats().PagesApprox != 0 {
		t.Error("approximation happened outside the approx region")
	}
}

// TestApproxWriteAvoidsErase: overwrite a page with values that are all
// subsets of the previous content; no erase may occur.
func TestApproxWriteAvoidsErase(t *testing.T) {
	d := newApproxDevice(t, 255)
	ps := d.Flash().Spec().PageSize
	first := make([]byte, ps)
	for i := range first {
		first[i] = 0xF0
	}
	if err := d.Write(0, first); err != nil {
		t.Fatal(err)
	}
	erasesAfterFirst := d.Flash().Stats().Erases
	second := make([]byte, ps)
	for i := range second {
		second[i] = 0x70 // subset of 0xF0
	}
	if err := d.Write(0, second); err != nil {
		t.Fatal(err)
	}
	if got := d.Flash().Stats().Erases; got != erasesAfterFirst {
		t.Errorf("erases went %d → %d; subset write must not erase", erasesAfterFirst, got)
	}
	got := make([]byte, ps)
	_ = d.Read(0, got)
	for i := range got {
		if got[i] != 0x70 {
			t.Fatalf("byte %d = %#x, want 0x70", i, got[i])
		}
	}
}

// TestApproxWriteIntroducesBoundedError: with threshold T, the per-page MAE
// of what lands in flash versus what was requested must be <= T.
func TestApproxWriteIntroducesBoundedError(t *testing.T) {
	const threshold = 8.0
	d := newApproxDevice(t, threshold)
	rng := xrand.New(17)
	ps := d.Flash().Spec().PageSize
	page := make([]byte, ps)
	for round := 0; round < 50; round++ {
		for i := range page {
			page[i] = rng.Byte()
		}
		if err := d.Write(0, page); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, ps)
		_ = d.Read(0, got)
		var sum int
		for i := range page {
			diff := int(page[i]) - int(got[i])
			if diff < 0 {
				diff = -diff
			}
			sum += diff
		}
		mae := float64(sum) / float64(ps)
		if mae > threshold {
			t.Fatalf("round %d: page MAE %.2f exceeds threshold %v", round, mae, threshold)
		}
	}
}

// TestZeroThresholdMeansLossless: threshold 0 must make every write exact
// (possibly via erase), never lossy.
func TestZeroThresholdMeansLossless(t *testing.T) {
	d := newApproxDevice(t, 0)
	rng := xrand.New(23)
	buf := make([]byte, 96)
	for round := 0; round < 20; round++ {
		for i := range buf {
			buf[i] = rng.Byte()
		}
		if err := d.Write(32, buf); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(buf))
		_ = d.Read(32, got)
		for i := range buf {
			if got[i] != buf[i] {
				t.Fatalf("round %d byte %d: lossy write at threshold 0", round, i)
			}
		}
	}
}

// TestHighThresholdEliminatesErases: with a saturated threshold every
// rewrite of the same region must avoid erases entirely after the first.
func TestHighThresholdEliminatesErases(t *testing.T) {
	d := newApproxDevice(t, 255)
	rng := xrand.New(29)
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = rng.Byte()
	}
	_ = d.Write(0, buf)
	erases := d.Flash().Stats().Erases
	for round := 0; round < 30; round++ {
		for i := range buf {
			buf[i] = rng.Byte()
		}
		_ = d.Write(0, buf)
	}
	if got := d.Flash().Stats().Erases; got != erases {
		t.Errorf("erases grew %d → %d despite saturated threshold", erases, got)
	}
	if d.Stats().PagesApprox == 0 {
		t.Error("no pages were approximated")
	}
}

func TestWidth16And32(t *testing.T) {
	for _, w := range []bits.Width{bits.W16, bits.W32} {
		d := newApproxDevice(t, 1<<20) // huge threshold: always approximate
		if err := d.SetWidth(w); err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(uint64(w))
		buf := make([]byte, 32)
		for i := range buf {
			buf[i] = rng.Byte()
		}
		if err := d.Write(0, buf); err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			buf[i] = rng.Byte()
		}
		if err := d.Write(0, buf); err != nil {
			t.Fatal(err)
		}
		// Every width-sized stored value must be a subset of what was
		// there before — impossible to check after the fact here, but
		// the flash device would have rejected any 0→1 program, so
		// reaching this point with zero erases beyond the first write
		// proves the invariant held.
		if d.Stats().PagesExact != 0 {
			t.Errorf("width %v: unexpected exact fallback", w)
		}
	}
}

func TestRegisterInterface(t *testing.T) {
	d := MustNewDevice(testSpec())
	if err := d.WriteReg(RegWidth, 16); err != nil {
		t.Fatal(err)
	}
	if d.Width() != bits.W16 {
		t.Error("width register did not take")
	}
	if err := d.WriteReg(RegWidth, 12); !errors.Is(err, ErrBadWidth) {
		t.Errorf("invalid width accepted: %v", err)
	}
	d.SetThreshold(2.5)
	if got := d.Threshold(); got != 2.5 {
		t.Errorf("threshold round trip = %v", got)
	}
	if got := d.ReadReg(RegThreshold); got != ThresholdToFixed(2.5) {
		t.Errorf("raw threshold = %#x", got)
	}
	if d.ReadReg(Reg(99)) != 0 {
		t.Error("unmapped register should read 0")
	}
	if err := d.WriteReg(Reg(99), 1); !errors.Is(err, ErrBadReg) {
		t.Error("unmapped register write should fail")
	}
}

func TestRegionValidation(t *testing.T) {
	d := MustNewDevice(testSpec())
	ps := d.Flash().Spec().PageSize
	if err := d.SetApproxRegion(ps, 3*ps); err != nil {
		t.Fatal(err)
	}
	if !d.Approximatable(1) || !d.Approximatable(2) {
		t.Error("pages 1,2 should be approximatable")
	}
	if d.Approximatable(0) || d.Approximatable(3) {
		t.Error("pages 0,3 should not be approximatable")
	}
	// Misaligned, inverted and oversized regions must be rejected and
	// leave the old configuration in place.
	for _, bad := range [][2]int{{1, ps}, {ps, ps + 1}, {2 * ps, ps}, {0, d.Flash().Spec().Size() + ps}} {
		if err := d.SetApproxRegion(bad[0], bad[1]); !errors.Is(err, ErrBadRegion) {
			t.Errorf("region %v accepted: %v", bad, err)
		}
	}
	if !d.Approximatable(1) {
		t.Error("failed configuration clobbered the previous region")
	}
}

func TestThresholdFixedPoint(t *testing.T) {
	cases := []float64{0, 0.1, 1, 2, 100, 65535}
	for _, c := range cases {
		got := FixedToThreshold(ThresholdToFixed(c))
		if diff := got - c; diff > 1e-4 || diff < -1e-4 {
			t.Errorf("threshold %v round-tripped to %v", c, got)
		}
	}
	if ThresholdToFixed(-1) != 0 {
		t.Error("negative threshold should clamp to 0")
	}
	if ThresholdToFixed(1e12) != ^uint32(0) {
		t.Error("huge threshold should saturate")
	}
}

func TestPerValueFallbackStricter(t *testing.T) {
	// A page where one value is far off but the mean is small: per-page
	// accepts, per-value falls back.
	run := func(policy FallbackPolicy) Stats {
		d := MustNewDevice(testSpec(), WithFallbackPolicy(policy))
		_ = d.SetApproxRegion(0, d.Flash().Spec().Size())
		_ = d.SetWidth(bits.W8)
		d.SetThreshold(4)
		ps := d.Flash().Spec().PageSize
		first := make([]byte, ps)
		// Previous content 0x00 everywhere: every rewrite to non-zero
		// values is unreachable and approximates to 0.
		_ = d.Write(0, first)
		second := make([]byte, ps)
		second[0] = 200 // error 200 on one value; mean 200/32 ≈ 6… adjust below
		_ = d.Write(0, second)
		return d.Stats()
	}
	// mean = 200/32 = 6.25 > 4 — both fall back; use a smaller outlier.
	runSmall := func(policy FallbackPolicy) Stats {
		d := MustNewDevice(testSpec(), WithFallbackPolicy(policy))
		_ = d.SetApproxRegion(0, d.Flash().Spec().Size())
		_ = d.SetWidth(bits.W8)
		d.SetThreshold(4)
		ps := d.Flash().Spec().PageSize
		_ = d.Write(0, make([]byte, ps))
		second := make([]byte, ps)
		second[0] = 100 // single error 100, mean 100/32 ≈ 3.1 < 4
		_ = d.Write(0, second)
		return d.Stats()
	}
	_ = run
	page := runSmall(FallbackPerPage)
	value := runSmall(FallbackPerValue)
	if page.PagesExact != 0 || page.PagesApprox != 2 {
		t.Errorf("per-page stats = %+v", page)
	}
	if value.PagesExact != 1 {
		t.Errorf("per-value stats = %+v; outlier should force fallback", value)
	}
}

func TestMSEMetric(t *testing.T) {
	d := MustNewDevice(testSpec(), WithErrorMetric(MetricMSE))
	_ = d.SetApproxRegion(0, d.Flash().Spec().Size())
	_ = d.SetWidth(bits.W8)
	// MSE threshold 4 corresponds to RMS error 2.
	d.SetThreshold(4)
	ps := d.Flash().Spec().PageSize
	_ = d.Write(0, make([]byte, ps)) // zero page
	buf := make([]byte, ps)
	for i := range buf {
		buf[i] = 3 // per-value error 3 → MSE 9 > 4 → fallback
	}
	_ = d.Write(0, buf)
	if d.Stats().PagesExact != 1 {
		t.Errorf("MSE gating did not fall back: %+v", d.Stats())
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := newApproxDevice(t, 255)
	ps := d.Flash().Spec().PageSize
	_ = d.Write(0, make([]byte, ps))
	buf := make([]byte, ps)
	for i := range buf {
		buf[i] = 5
	}
	_ = d.Write(0, buf) // previous 0x00 → approximates everything to 0
	st := d.Stats()
	if st.ValuesApproximated == 0 || st.ErrorSum == 0 {
		t.Errorf("stats did not accumulate: %+v", st)
	}
	// First write is error-free (erased page → zeros is reachable); the
	// second is off by 5 on every value, so the running MAE is 2.5.
	if st.MAE() != 2.5 {
		t.Errorf("MAE = %v, want 2.5", st.MAE())
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) || d.Flash().Stats() != (flash.Stats{}) {
		t.Error("ResetStats incomplete")
	}
}

func TestWriteSpanningPages(t *testing.T) {
	d := newApproxDevice(t, 0)
	ps := d.Flash().Spec().PageSize
	data := make([]byte, ps*3)
	rng := xrand.New(31)
	for i := range data {
		data[i] = rng.Byte()
	}
	if err := d.Write(ps/2, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	_ = d.Read(ps/2, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d corrupted in multi-page write", i)
		}
	}
}

func TestWriteEmpty(t *testing.T) {
	d := MustNewDevice(testSpec())
	if err := d.Write(0, nil); err != nil {
		t.Fatal(err)
	}
	if d.Flash().Stats() != (flash.Stats{}) {
		t.Error("empty write should charge nothing")
	}
}

func TestCustomEncoder(t *testing.T) {
	d := MustNewDevice(testSpec(), WithEncoder(approx.OneBit{}))
	if d.Encoder().Name() != "1-bit" {
		t.Error("WithEncoder ignored")
	}
	d.SetEncoder(approx.MustNBit(4))
	if d.Encoder().Name() != "4-bit" {
		t.Error("SetEncoder ignored")
	}
}

// TestWornOutPropagates: exhausting endurance on an exact-write-heavy page
// must surface flash.ErrWornOut through Write.
func TestWornOutPropagates(t *testing.T) {
	s := testSpec()
	s.EnduranceCycles = 10
	d := MustNewDevice(s)
	var sawWornOut bool
	a, b := make([]byte, s.PageSize), make([]byte, s.PageSize)
	for i := range a {
		a[i], b[i] = 0x55, 0xAA // alternating patterns force an erase each time
	}
	for i := 0; i < 30; i++ {
		buf := a
		if i%2 == 1 {
			buf = b
		}
		if err := d.Write(0, buf); err != nil {
			if !errors.Is(err, flash.ErrWornOut) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawWornOut = true
		}
	}
	if !sawWornOut {
		t.Error("never observed wear-out")
	}
}
