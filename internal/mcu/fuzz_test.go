package mcu

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

func testFlashSpec() flash.Spec {
	s := flash.DefaultSpec()
	s.NumPages = 8
	return s
}

func testDevice(s flash.Spec) *core.Device { return core.MustNewDevice(s) }

// FuzzAssemble: arbitrary source must assemble or error, never panic.
func FuzzAssemble(f *testing.F) {
	f.Add("movi r0, 1\nhalt")
	f.Add("label: b label")
	f.Add(".word 1,2,3\n.byte 4")
	f.Add("ldr r0, [sp, -8]")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Assemble(src, SRAMBase) // must not panic
	})
}

// FuzzDecodeExecute: any instruction word must decode and either execute
// or produce an error — no panics from the interpreter.
func FuzzDecodeExecute(f *testing.F) {
	f.Add(uint32(0))
	f.Add(Encode(OpAdd, 1, 2, 3, 0))
	f.Add(^uint32(0))
	f.Fuzz(func(t *testing.T, word uint32) {
		spec := testFlashSpec()
		bus := NewBus(1024, testDevice(spec))
		img := make([]byte, 8)
		leStore(img, word, 4)
		leStore(img[4:], Encode(OpHalt, 0, 0, 0, 0), 4)
		if err := bus.LoadProgram(SRAMBase, img); err != nil {
			t.Fatal(err)
		}
		cpu := NewCPU(bus, SRAMBase)
		_ = cpu.Run(10) // must not panic
		_ = Disassemble(word, SRAMBase)
	})
}
