package mcu

import (
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// TestMCUPathMatchesDirectPath cross-validates the two ways of driving the
// flash system: firmware running on the EM0 core (stores through the bus's
// write-combining buffer) and the direct Go-level device API used by the
// experiment harness. Both write the same drifting data stream into the
// same approximatable region, so the controller must make identical
// decisions and the ledgers must agree on programs, erases and energy
// (modulo the MCU's XIP instruction fetches, which only add reads).
func TestMCUPathMatchesDirectPath(t *testing.T) {
	spec := flash.DefaultSpec()
	spec.NumPages = 64

	// The data stream: two passes over a 512-byte region; pass p byte i
	// holds (i*13 + p*3) & 0xFF — the xipdevice example's pattern.
	value := func(pass, i int) byte { return byte(i*13 + pass*3) }

	// --- Direct path ---
	direct := core.MustNewDevice(spec)
	if err := direct.SetApproxRegion(0, 0x1000); err != nil {
		t.Fatal(err)
	}
	direct.SetThreshold(4)
	buf := make([]byte, 512)
	for pass := 0; pass < 2; pass++ {
		for i := range buf {
			buf[i] = value(pass, i)
		}
		if err := direct.Write(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	directStats := direct.Flash().Stats()
	directCtrl := direct.Stats()

	// --- MCU path: same stream, computed and stored by firmware ---
	mcuDev := core.MustNewDevice(spec)
	bus := NewBus(4096, mcuDev)
	img := MustAssemble(`
		li   r1, 0x40000000
		movi r0, 0
		str  r0, [r1, 0]
		li   r0, 0x1000
		str  r0, [r1, 4]
		movi r0, 8
		str  r0, [r1, 8]
		li   r0, 0x40000      ; threshold 4.0 (Q16.16)
		str  r0, [r1, 12]
		movi r5, 0            ; pass
	pass:
		li   r2, 0x20000000
		movi r3, 0
	loop:
		movi r4, 13
		mul  r4, r3, r4
		movi r6, 3
		mul  r6, r5, r6
		add  r4, r4, r6
		strb r4, [r2]
		addi r2, r2, 1
		addi r3, r3, 1
		cmpi r3, 512
		blt  loop
		li   r6, 0x40000010   ; flush
		str  r3, [r6]
		addi r5, r5, 1
		cmpi r5, 2
		blt  pass
		halt
	`, SRAMBase)
	if err := bus.LoadProgram(SRAMBase, img); err != nil {
		t.Fatal(err)
	}
	cpu := NewCPU(bus, SRAMBase)
	if err := cpu.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	mcuStats := mcuDev.Flash().Stats()
	mcuCtrl := mcuDev.Stats()

	if mcuStats.Programs != directStats.Programs {
		t.Errorf("programs: MCU %d vs direct %d", mcuStats.Programs, directStats.Programs)
	}
	if mcuStats.Erases != directStats.Erases {
		t.Errorf("erases: MCU %d vs direct %d", mcuStats.Erases, directStats.Erases)
	}
	if mcuCtrl.PagesApprox != directCtrl.PagesApprox || mcuCtrl.PagesExact != directCtrl.PagesExact {
		t.Errorf("controller decisions differ: MCU %+v vs direct %+v", mcuCtrl, directCtrl)
	}
	if mcuCtrl.ErrorSum != directCtrl.ErrorSum {
		t.Errorf("introduced error differs: MCU %d vs direct %d", mcuCtrl.ErrorSum, directCtrl.ErrorSum)
	}
	// Stored contents must agree byte for byte.
	a := make([]byte, 512)
	b := make([]byte, 512)
	if err := direct.Read(0, a); err != nil {
		t.Fatal(err)
	}
	if err := mcuDev.Read(0, b); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stored byte %d differs: direct %#x, MCU %#x", i, a[i], b[i])
		}
	}
}
