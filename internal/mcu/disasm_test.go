package mcu

import (
	"strings"
	"testing"
)

// TestDisassembleRoundTrip: assembling the disassembly of a program must
// produce the identical image — the classic assembler/disassembler
// consistency property.
func TestDisassembleRoundTrip(t *testing.T) {
	src := `
	start:
		movi r0, 42
		movt r1, 4096
		mov  r2, r0
		add  r3, r2, r0
		addi r3, r3, -7
		cmp  r3, r0
		beq  start
		cmpi r3, 100
		bgt  done
		lsl  r4, r3, r0
		ldr  r5, [sp, 8]
		strb r5, [lr]
		bl   start
		bx   lr
	done:
		halt
	`
	img1, err := Assemble(src, SRAMBase)
	if err != nil {
		t.Fatal(err)
	}
	listing := DisassembleImage(img1, SRAMBase)
	// Rebuild source from the listing (strip addresses and hex).
	var rebuilt []string
	for _, line := range strings.Split(strings.TrimSpace(listing), "\n") {
		parts := strings.SplitN(line, "  ", 3)
		if len(parts) != 3 {
			t.Fatalf("bad listing line %q", line)
		}
		rebuilt = append(rebuilt, parts[2])
	}
	img2, err := Assemble(strings.Join(rebuilt, "\n"), SRAMBase)
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\nlisting:\n%s", err, listing)
	}
	if len(img1) != len(img2) {
		t.Fatalf("image sizes differ: %d vs %d", len(img1), len(img2))
	}
	for i := range img1 {
		if img1[i] != img2[i] {
			t.Fatalf("byte %d differs after round trip\noriginal:\n%s", i, listing)
		}
	}
}

func TestDisassembleFormats(t *testing.T) {
	cases := []struct {
		word uint32
		want string
	}{
		{Encode(OpHalt, 0, 0, 0, 0), "halt"},
		{Encode(OpMovi, 3, 0, 0, -5), "movi r3, -5"},
		{Encode(OpAdd, 1, 2, 3, 0), "add r1, r2, r3"},
		{Encode(OpLdr, 5, RegSP, 0, 8), "ldr r5, [sp, 8]"},
		{Encode(OpStrb, 0, RegLR, 0, 0), "strb r0, [lr]"},
		{Encode(OpBx, 0, RegLR, 0, 0), "bx lr"},
		{Encode(OpCmpi, 0, 7, 0, 42), "cmpi r7, 42"},
	}
	for _, c := range cases {
		if got := Disassemble(c.word, 0); got != c.want {
			t.Errorf("Disassemble(%#x) = %q, want %q", c.word, got, c.want)
		}
	}
}

func TestDisassembleBranchTarget(t *testing.T) {
	// A branch at 0x100 jumping back to 0x100 encodes imm = -1.
	w := Encode(OpB, 0, 0, 0, -1)
	if got := Disassemble(w, 0x100); got != "b 0x100" {
		t.Errorf("branch disassembly = %q", got)
	}
}

func TestDisassembleIllegal(t *testing.T) {
	w := uint32(numOps) << opShift
	if got := Disassemble(w, 0); !strings.HasPrefix(got, ".word") {
		t.Errorf("illegal op should render as data, got %q", got)
	}
}
