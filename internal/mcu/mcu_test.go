package mcu

import (
	"errors"
	"strings"
	"testing"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

func newSystem(t *testing.T) (*Bus, *CPU) {
	t.Helper()
	spec := flash.DefaultSpec()
	spec.NumPages = 64
	dev := core.MustNewDevice(spec)
	bus := NewBus(4096, dev)
	cpu := NewCPU(bus, SRAMBase)
	return bus, cpu
}

// runSRAM assembles src at the SRAM base, loads and runs it.
func runSRAM(t *testing.T, src string) (*Bus, *CPU) {
	t.Helper()
	bus, cpu := newSystem(t)
	img, err := Assemble(src, SRAMBase)
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.LoadProgram(SRAMBase, img); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return bus, cpu
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Decoded{
		{Op: OpMovi, Rd: 3, Imm: -42},
		{Op: OpMovt, Rd: 15, Imm: 0x7FFF},
		{Op: OpAdd, Rd: 1, Rn: 2, Rm: 3},
		{Op: OpAddi, Rd: 4, Rn: 5, Imm: -100},
		{Op: OpB, Imm: -1000},
		{Op: OpBl, Imm: 123456},
		{Op: OpLdrb, Rd: 7, Rn: 8, Imm: 12},
	}
	for _, c := range cases {
		w := Encode(c.Op, c.Rd, c.Rn, c.Rm, c.Imm)
		got := Decode(w)
		if got != c {
			t.Errorf("round trip %+v → %+v", c, got)
		}
	}
}

func TestArithmetic(t *testing.T) {
	_, cpu := runSRAM(t, `
		movi r0, 6
		movi r1, 7
		mul  r2, r0, r1
		addi r2, r2, -2
		halt
	`)
	if cpu.R[2] != 40 {
		t.Errorf("r2 = %d, want 40", cpu.R[2])
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 = 55.
	_, cpu := runSRAM(t, `
		movi r0, 0      ; sum
		movi r1, 1      ; i
	loop:
		add  r0, r0, r1
		addi r1, r1, 1
		cmpi r1, 10
		ble  loop
		halt
	`)
	if cpu.R[0] != 55 {
		t.Errorf("sum = %d, want 55", cpu.R[0])
	}
}

func TestFunctionCall(t *testing.T) {
	_, cpu := runSRAM(t, `
		movi r0, 5
		bl   double
		bl   double
		halt
	double:
		add  r0, r0, r0
		bx   lr
	`)
	if cpu.R[0] != 20 {
		t.Errorf("r0 = %d, want 20", cpu.R[0])
	}
}

func TestSRAMLoadStore(t *testing.T) {
	_, cpu := runSRAM(t, `
		li   r1, 0x10000800
		movi r0, 0x1234
		strh r0, [r1]
		ldrb r2, [r1]       ; low byte
		ldrb r3, [r1, 1]    ; high byte
		ldrh r4, [r1]
		halt
	`)
	if cpu.R[2] != 0x34 || cpu.R[3] != 0x12 || cpu.R[4] != 0x1234 {
		t.Errorf("r2=%#x r3=%#x r4=%#x", cpu.R[2], cpu.R[3], cpu.R[4])
	}
}

func TestConsoleOutput(t *testing.T) {
	bus, _ := runSRAM(t, `
		li   r1, 0x40000014
		movi r0, 72        ; 'H'
		str  r0, [r1]
		movi r0, 105       ; 'i'
		str  r0, [r1]
		halt
	`)
	if got := bus.Console.String(); got != "Hi" {
		t.Errorf("console = %q, want \"Hi\"", got)
	}
}

// TestXIPExecution: code runs directly from flash; fetches charge flash
// reads (the NOR XIP property of §II-C).
func TestXIPExecution(t *testing.T) {
	bus, cpu := newSystem(t)
	img, err := Assemble(`
		movi r0, 11
		movi r1, 31
		add  r2, r0, r1
		halt
	`, FlashBase)
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.LoadProgram(FlashBase, img); err != nil {
		t.Fatal(err)
	}
	bus.Flash.ResetStats()
	cpu.PC = FlashBase
	if err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if cpu.R[2] != 42 {
		t.Errorf("r2 = %d", cpu.R[2])
	}
	st := bus.FlashStats()
	if st.Reads < 16 { // 4 instructions × 4 bytes
		t.Errorf("XIP fetches charged only %d flash byte reads", st.Reads)
	}
	if st.Energy <= 0 {
		t.Error("XIP fetches charged no energy")
	}
}

// TestFlashWriteCombining: byte stores to one flash page must commit as a
// single page session at flush, not one session per byte.
func TestFlashWriteCombining(t *testing.T) {
	bus, cpu := newSystem(t)
	img, err := Assemble(`
		li   r1, 0x20000400   ; flash page 4
		movi r0, 0
		movi r2, 0x55
	loop:
		strb r2, [r1]
		addi r1, r1, 1
		addi r0, r0, 1
		cmpi r0, 64
		blt  loop
		li   r3, 0x40000010   ; MMIO flush
		str  r0, [r3]
		halt
	`, SRAMBase)
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.LoadProgram(SRAMBase, img); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(10_000); err != nil {
		t.Fatal(err)
	}
	// Verify data landed.
	got := make([]byte, 64)
	if err := bus.Flash.Read(0x400, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0x55 {
			t.Fatalf("flash byte %d = %#x, want 0x55", i, b)
		}
	}
}

// TestFlashReadObservesPendingWrites: loads from a page with pending
// combined writes see the buffered data.
func TestFlashReadObservesPendingWrites(t *testing.T) {
	_, cpu := func() (*Bus, *CPU) {
		bus, cpu := newSystem(t)
		img := MustAssemble(`
			li   r1, 0x20000100
			movi r0, 0x77
			strb r0, [r1]
			ldrb r2, [r1]      ; must read 0x77 from the buffer
			halt
		`, SRAMBase)
		if err := bus.LoadProgram(SRAMBase, img); err != nil {
			t.Fatal(err)
		}
		if err := cpu.Run(1000); err != nil {
			t.Fatal(err)
		}
		return bus, cpu
	}()
	if cpu.R[2] != 0x77 {
		t.Errorf("r2 = %#x, want 0x77", cpu.R[2])
	}
}

// TestMMIOFlipBitRegisters: the program configures the approximatable
// region through MMIO, exactly as Listing 1's runtime does.
func TestMMIOFlipBitRegisters(t *testing.T) {
	bus, _ := runSRAM(t, `
		li   r1, 0x40000000
		movi r0, 0          ; approx start = 0
		str  r0, [r1, 0]
		li   r0, 0x200      ; approx end = 2 pages
		str  r0, [r1, 4]
		movi r0, 8          ; width
		str  r0, [r1, 8]
		li   r0, 0x20000    ; threshold 2.0 in Q16.16
		str  r0, [r1, 12]
		halt
	`)
	dev := bus.Flash
	if dev.ReadReg(core.RegApproxEnd) != 0x200 {
		t.Errorf("approx end = %#x", dev.ReadReg(core.RegApproxEnd))
	}
	if dev.Width() != 8 {
		t.Errorf("width = %v", dev.Width())
	}
	if dev.Threshold() != 2.0 {
		t.Errorf("threshold = %v", dev.Threshold())
	}
	if !dev.Approximatable(0) || !dev.Approximatable(1) || dev.Approximatable(2) {
		t.Error("approx region pages wrong")
	}
}

func TestCPUEnergyAccounting(t *testing.T) {
	_, cpu := runSRAM(t, `
		movi r0, 0
		movi r1, 0
	loop:
		addi r0, r0, 1
		cmpi r0, 100
		blt  loop
		halt
	`)
	if cpu.Cycles < 300 {
		t.Errorf("cycles = %d, expected a few hundred", cpu.Cycles)
	}
	if cpu.Energy() <= 0 {
		t.Error("no CPU energy accounted")
	}
}

func TestHaltFlushesPendingWrites(t *testing.T) {
	bus, _ := runSRAM(t, `
		li   r1, 0x20000000
		movi r0, 0x0F
		strb r0, [r1]
		halt
	`)
	var b [1]byte
	if err := bus.Flash.Read(0, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x0F {
		t.Errorf("flash byte = %#x; halt did not flush", b[0])
	}
}

func TestBusFaults(t *testing.T) {
	bus, _ := newSystem(t)
	if _, err := bus.Load(0x9000_0000, 4); !errors.Is(err, ErrBusFault) {
		t.Error("unmapped load should fault")
	}
	if err := bus.Store(0x0000_0010, 1, 4); !errors.Is(err, ErrBusFault) {
		t.Error("unmapped store should fault")
	}
}

func TestRunawayDetection(t *testing.T) {
	bus, cpu := newSystem(t)
	img := MustAssemble("loop: b loop", SRAMBase)
	if err := bus.LoadProgram(SRAMBase, img); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(100); !errors.Is(err, ErrRunaway) {
		t.Errorf("infinite loop should hit the step budget, got %v", err)
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"bogus r1, r2",
		"movi r99, 1",
		"movi r0, 100000",
		"b nowhere",
		"ldr r0, r1",
		"x: halt\nx: halt",
	}
	for _, src := range bad {
		if _, err := Assemble(src, SRAMBase); err == nil {
			t.Errorf("assembling %q should fail", src)
		}
	}
}

func TestAssemblerData(t *testing.T) {
	img, err := Assemble(`
		b start
	data:
		.word 0xDEADBEEF
		.byte 1, 2, 3
	start:
		li   r1, data
		ldr  r0, [r1]
		halt
	`, SRAMBase)
	if err != nil {
		t.Fatal(err)
	}
	bus, cpu := newSystem(t)
	if err := bus.LoadProgram(SRAMBase, img); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if cpu.R[0] != 0xDEADBEEF {
		t.Errorf("r0 = %#x", cpu.R[0])
	}
}

func TestHaltedCPUStaysHalted(t *testing.T) {
	_, cpu := runSRAM(t, "halt")
	if err := cpu.Step(); !errors.Is(err, ErrHalted) {
		t.Error("stepping a halted CPU should fail")
	}
}

func TestOpStringCoverage(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if strings.HasPrefix(op.String(), "op") {
			t.Errorf("op %d has no name", op)
		}
	}
}
