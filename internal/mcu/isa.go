// Package mcu is a small cycle-approximate microcontroller simulator — the
// repository's substitute for the cycle-accurate ARM Cortex-M0+ simulator
// the paper modifies (§IV). It provides what the evaluation needs from a
// CPU model: a core that executes code (in place from NOR flash, XIP),
// issues loads/stores through a bus that routes flash traffic to the
// FlipBit device model, and accounts cycles and energy at the M0+'s
// published operating point.
//
// The EM0 ISA is a Thumb-flavoured 32-bit-encoded RISC: 16 registers
// (r13 = sp, r14 = lr by convention), compare-and-branch, and byte/half/
// word loads and stores. A two-pass assembler (asm.go) turns source into
// the little-endian image the bus executes.
package mcu

import "fmt"

// Op is an EM0 opcode.
type Op uint32

// EM0 opcodes.
const (
	OpHalt Op = iota
	OpNop
	OpMovi // rd = signExtend(imm16)
	OpMovt // rd = (rd & 0xFFFF) | imm16<<16
	OpMov  // rd = rn
	OpAdd  // rd = rn + rm
	OpSub
	OpMul
	OpAnd
	OpOrr
	OpEor
	OpLsl
	OpLsr
	OpAsr
	OpAddi // rd = rn + imm14 (signed)
	OpCmp  // compare rn, rm
	OpCmpi // compare rn, imm14 (signed)
	OpB    // pc-relative branch, imm26 words
	OpBeq
	OpBne
	OpBlt // signed
	OpBge
	OpBgt
	OpBle
	OpBl // branch and link (lr = return address)
	OpBx // pc = rn
	OpLdr
	OpLdrh
	OpLdrb
	OpStr
	OpStrh
	OpStrb
	numOps
)

var opNames = map[Op]string{
	OpHalt: "halt", OpNop: "nop", OpMovi: "movi", OpMovt: "movt", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpAnd: "and", OpOrr: "orr",
	OpEor: "eor", OpLsl: "lsl", OpLsr: "lsr", OpAsr: "asr", OpAddi: "addi",
	OpCmp: "cmp", OpCmpi: "cmpi", OpB: "b", OpBeq: "beq", OpBne: "bne",
	OpBlt: "blt", OpBge: "bge", OpBgt: "bgt", OpBle: "ble", OpBl: "bl",
	OpBx: "bx", OpLdr: "ldr", OpLdrh: "ldrh", OpLdrb: "ldrb",
	OpStr: "str", OpStrh: "strh", OpStrb: "strb",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op%d", uint32(o))
}

// Instruction encoding, 32 bits:
//
//	[31:26] opcode
//	[25:22] rd
//	[21:18] rn
//	[17:14] rm
//	[13:0]  imm14 (signed where applicable)
//
// Exceptions: OpMovi/OpMovt use [15:0] as imm16 (rd in [25:22] still);
// branches (OpB..OpBl) use [25:0] as a signed word offset.
const (
	opShift = 26
	rdShift = 22
	rnShift = 18
	rmShift = 14

	imm14Mask = (1 << 14) - 1
	imm16Mask = (1 << 16) - 1
	imm26Mask = (1 << 26) - 1
)

// Encode packs an instruction.
func Encode(op Op, rd, rn, rm int, imm int32) uint32 {
	w := uint32(op) << opShift
	switch op {
	case OpB, OpBeq, OpBne, OpBlt, OpBge, OpBgt, OpBle, OpBl:
		return w | uint32(imm)&imm26Mask
	case OpMovi, OpMovt:
		return w | uint32(rd)<<rdShift | uint32(imm)&imm16Mask
	default:
		return w | uint32(rd)<<rdShift | uint32(rn)<<rnShift |
			uint32(rm)<<rmShift | uint32(imm)&imm14Mask
	}
}

// Decoded is an unpacked instruction.
type Decoded struct {
	Op         Op
	Rd, Rn, Rm int
	Imm        int32
}

// Decode unpacks an instruction word.
func Decode(w uint32) Decoded {
	op := Op(w >> opShift)
	d := Decoded{Op: op}
	switch op {
	case OpB, OpBeq, OpBne, OpBlt, OpBge, OpBgt, OpBle, OpBl:
		d.Imm = signExtend(w&imm26Mask, 26)
	case OpMovi, OpMovt:
		d.Rd = int(w >> rdShift & 0xF)
		d.Imm = signExtend(w&imm16Mask, 16)
	default:
		d.Rd = int(w >> rdShift & 0xF)
		d.Rn = int(w >> rnShift & 0xF)
		d.Rm = int(w >> rmShift & 0xF)
		d.Imm = signExtend(w&imm14Mask, 14)
	}
	return d
}

func signExtend(v uint32, bits int) int32 {
	shift := 32 - bits
	return int32(v<<uint(shift)) >> uint(shift)
}
