package mcu

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates EM0 assembly into a little-endian memory image
// positioned at base. Supported syntax:
//
//	label:                      ; comments with ';' or '//'
//	    movi r0, 42             ; 16-bit signed immediate
//	    movt r0, 0x2000         ; set high halfword
//	    li   r1, 0x20000000     ; pseudo: movi+movt (also accepts labels)
//	    li   r1, buffer
//	    mov/add/sub/mul/and/orr/eor/lsl/lsr/asr rd, rn, rm
//	    addi rd, rn, #imm
//	    cmp rn, rm   /  cmpi rn, #imm
//	    b/beq/bne/blt/bge/bgt/ble/bl label
//	    bx lr
//	    ldr/ldrh/ldrb rd, [rn]  or  [rn, #imm]
//	    str/strh/strb rd, [rn, #imm]
//	    halt / nop
//	    .word 1, 2, 0xFF        ; 32-bit data
//	    .byte 1, 2, 3           ; 8-bit data (next instruction realigns)
//
// Registers r0..r15; sp = r13, lr = r14. '#' before immediates is optional.
func Assemble(src string, base uint32) ([]byte, error) {
	type item struct {
		line   int
		label  string // set for label definitions
		mnem   string
		args   []string
		offset int
	}
	var items []item
	offset := 0
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// A line may carry "label:" followed by an instruction.
		for {
			if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], " \t") {
				items = append(items, item{line: lineNo + 1, label: line[:i], offset: offset})
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnem := strings.ToLower(fields[0])
		var args []string
		if len(fields) > 1 {
			args = splitArgs(fields[1])
		}
		it := item{line: lineNo + 1, mnem: mnem, args: args, offset: offset}
		switch mnem {
		case ".word":
			offset += 4 * len(args)
		case ".byte":
			offset += len(args)
			offset = (offset + 3) &^ 3 // realign
		case "li":
			offset += 8 // movi + movt
		default:
			offset += 4
		}
		items = append(items, it)
	}

	labels := make(map[string]uint32)
	for _, it := range items {
		if it.label != "" {
			if _, dup := labels[it.label]; dup {
				return nil, fmt.Errorf("asm line %d: duplicate label %q", it.line, it.label)
			}
			labels[it.label] = base + uint32(it.offset)
		}
	}

	image := make([]byte, offset)
	emitWord := func(off int, w uint32) {
		leStore(image[off:], w, 4)
	}
	for _, it := range items {
		if it.mnem == "" {
			continue
		}
		err := func() error {
			switch it.mnem {
			case ".word":
				for i, a := range it.args {
					v, err := immOrLabel(a, labels)
					if err != nil {
						return err
					}
					emitWord(it.offset+4*i, uint32(v))
				}
				return nil
			case ".byte":
				for i, a := range it.args {
					v, err := immOrLabel(a, labels)
					if err != nil {
						return err
					}
					image[it.offset+i] = byte(v)
				}
				return nil
			case "li":
				if len(it.args) != 2 {
					return fmt.Errorf("li needs rd, imm")
				}
				rd, err := reg(it.args[0])
				if err != nil {
					return err
				}
				v, err := immOrLabel(it.args[1], labels)
				if err != nil {
					return err
				}
				emitWord(it.offset, Encode(OpMovi, rd, 0, 0, int32(v&0xFFFF)))
				emitWord(it.offset+4, Encode(OpMovt, rd, 0, 0, int32(v>>16&0xFFFF)))
				return nil
			}
			w, err := encodeInstr(it.mnem, it.args, base+uint32(it.offset), labels)
			if err != nil {
				return err
			}
			emitWord(it.offset, w)
			return nil
		}()
		if err != nil {
			return nil, fmt.Errorf("asm line %d: %w", it.line, err)
		}
	}
	return image, nil
}

// MustAssemble is Assemble for programs known to be valid.
func MustAssemble(src string, base uint32) []byte {
	img, err := Assemble(src, base)
	if err != nil {
		panic(err)
	}
	return img
}

var mnem3 = map[string]Op{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "and": OpAnd,
	"orr": OpOrr, "eor": OpEor, "lsl": OpLsl, "lsr": OpLsr, "asr": OpAsr,
}

var mnemBranch = map[string]Op{
	"b": OpB, "beq": OpBeq, "bne": OpBne, "blt": OpBlt,
	"bge": OpBge, "bgt": OpBgt, "ble": OpBle, "bl": OpBl,
}

var mnemMem = map[string]Op{
	"ldr": OpLdr, "ldrh": OpLdrh, "ldrb": OpLdrb,
	"str": OpStr, "strh": OpStrh, "strb": OpStrb,
}

// arity gives the required operand count per mnemonic; memory ops are
// checked separately because their bracketed operand may split on commas.
var arity = map[string]int{
	"halt": 0, "nop": 0,
	"movi": 2, "movt": 2, "mov": 2, "li": 2,
	"addi": 3, "cmp": 2, "cmpi": 2, "bx": 1,
}

func encodeInstr(mnem string, args []string, pc uint32, labels map[string]uint32) (uint32, error) {
	if want, ok := arity[mnem]; ok && len(args) != want {
		return 0, fmt.Errorf("%s takes %d operand(s), got %d", mnem, want, len(args))
	}
	if _, ok := mnem3[mnem]; ok && len(args) != 3 {
		return 0, fmt.Errorf("%s takes 3 operands, got %d", mnem, len(args))
	}
	switch mnem {
	case "halt":
		return Encode(OpHalt, 0, 0, 0, 0), nil
	case "nop":
		return Encode(OpNop, 0, 0, 0, 0), nil
	case "movi", "movt":
		rd, err := reg(args[0])
		if err != nil {
			return 0, err
		}
		v, err := immOrLabel(args[1], labels)
		if err != nil {
			return 0, err
		}
		if v < -(1<<15) || v > 0xFFFF {
			return 0, fmt.Errorf("%s immediate %d out of 16-bit range (use li)", mnem, v)
		}
		op := OpMovi
		if mnem == "movt" {
			op = OpMovt
		}
		return Encode(op, rd, 0, 0, int32(v)), nil
	case "mov":
		rd, err := reg(args[0])
		if err != nil {
			return 0, err
		}
		rn, err := reg(args[1])
		if err != nil {
			return 0, err
		}
		return Encode(OpMov, rd, rn, 0, 0), nil
	case "addi":
		rd, err := reg(args[0])
		if err != nil {
			return 0, err
		}
		rn, err := reg(args[1])
		if err != nil {
			return 0, err
		}
		v, err := immOrLabel(args[2], labels)
		if err != nil {
			return 0, err
		}
		if v < -(1<<13) || v >= 1<<13 {
			return 0, fmt.Errorf("addi immediate %d out of 14-bit range", v)
		}
		return Encode(OpAddi, rd, rn, 0, int32(v)), nil
	case "cmp":
		rn, err := reg(args[0])
		if err != nil {
			return 0, err
		}
		rm, err := reg(args[1])
		if err != nil {
			return 0, err
		}
		return Encode(OpCmp, 0, rn, rm, 0), nil
	case "cmpi":
		rn, err := reg(args[0])
		if err != nil {
			return 0, err
		}
		v, err := immOrLabel(args[1], labels)
		if err != nil {
			return 0, err
		}
		if v < -(1<<13) || v >= 1<<13 {
			return 0, fmt.Errorf("cmpi immediate %d out of 14-bit range", v)
		}
		return Encode(OpCmpi, 0, rn, 0, int32(v)), nil
	case "bx":
		rn, err := reg(args[0])
		if err != nil {
			return 0, err
		}
		return Encode(OpBx, 0, rn, 0, 0), nil
	}
	if op, ok := mnem3[mnem]; ok {
		rd, err := reg(args[0])
		if err != nil {
			return 0, err
		}
		rn, err := reg(args[1])
		if err != nil {
			return 0, err
		}
		rm, err := reg(args[2])
		if err != nil {
			return 0, err
		}
		return Encode(op, rd, rn, rm, 0), nil
	}
	if op, ok := mnemBranch[mnem]; ok {
		if len(args) != 1 {
			return 0, fmt.Errorf("%s needs a target", mnem)
		}
		target, err := immOrLabel(args[0], labels)
		if err != nil {
			return 0, err
		}
		delta := (int64(target) - int64(pc) - 4) / 4
		if delta < -(1<<25) || delta >= 1<<25 {
			return 0, fmt.Errorf("branch target out of range")
		}
		return Encode(op, 0, 0, 0, int32(delta)), nil
	}
	if op, ok := mnemMem[mnem]; ok {
		if len(args) < 2 {
			return 0, fmt.Errorf("%s needs rd, [rn, #imm]", mnem)
		}
		rd, err := reg(args[0])
		if err != nil {
			return 0, err
		}
		rn, off, err := memOperand(strings.Join(args[1:], ","))
		if err != nil {
			return 0, err
		}
		if off < -(1<<13) || off >= 1<<13 {
			return 0, fmt.Errorf("memory offset %d out of 14-bit range", off)
		}
		return Encode(op, rd, rn, 0, int32(off)), nil
	}
	return 0, fmt.Errorf("unknown mnemonic %q", mnem)
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func reg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "sp":
		return RegSP, nil
	case "lr":
		return RegLR, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 16 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func immOrLabel(s string, labels map[string]uint32) (int64, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "#"))
	if v, ok := labels[s]; ok {
		return int64(v), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate or unknown label %q", s)
	}
	return v, nil
}

// memOperand parses "[rn]" or "[rn, #imm]".
func memOperand(s string) (int, int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(s, "["), "]")
	parts := strings.Split(inner, ",")
	rn, err := reg(parts[0])
	if err != nil {
		return 0, 0, err
	}
	if len(parts) == 1 {
		return rn, 0, nil
	}
	off, err := immOrLabel(parts[1], nil)
	if err != nil {
		return 0, 0, err
	}
	return rn, off, nil
}
