package mcu

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
)

// Memory map of the EM0 system.
const (
	SRAMBase  uint32 = 0x1000_0000
	FlashBase uint32 = 0x2000_0000
	MMIOBase  uint32 = 0x4000_0000
)

// MMIO register offsets. The first four are the FlipBit configuration
// registers of §III-C, memory-mapped exactly as the paper describes.
const (
	MMIOApproxStart = 0x00
	MMIOApproxEnd   = 0x04
	MMIOWidth       = 0x08
	MMIOThreshold   = 0x0C
	MMIOFlush       = 0x10 // write: flush the flash write-combining buffer
	MMIOConsole     = 0x14 // write: append low byte to the console
)

// mmioSize bounds the MMIO window; accesses past it fault.
const mmioSize = 0x1000

// ErrBusFault is returned for accesses outside any mapped region.
var ErrBusFault = errors.New("mcu: bus fault")

// Bus routes CPU accesses to SRAM, the flash device (XIP reads, buffered
// writes) and MMIO. Flash stores are write-combined per page — the CPU
// fills the chip's SRAM write buffer and the page commits when the access
// stream leaves the page or MMIOFlush is written — matching how the flash
// datasheet's buffered writes and FlipBit's dual-buffer session behave.
type Bus struct {
	SRAM    []byte
	Flash   *core.Device
	Console bytes.Buffer

	// Write-combining state for flash stores.
	wcPage  int // -1 when empty
	wcStart int // lowest dirty offset within the page
	wcEnd   int // one past the highest dirty offset
	wcData  []byte
}

// NewBus builds a bus with the given SRAM size over a FlipBit device.
func NewBus(sramSize int, dev *core.Device) *Bus {
	return &Bus{
		SRAM:   make([]byte, sramSize),
		Flash:  dev,
		wcPage: -1,
		wcData: make([]byte, dev.Flash().Spec().PageSize),
	}
}

// LoadProgram copies a program image into memory at addr (SRAM or flash).
// Flash images are installed with an exact write and do not count toward
// workload statistics (call ResetStats afterwards if needed).
func (b *Bus) LoadProgram(addr uint32, image []byte) error {
	switch {
	case addr >= SRAMBase && addr+uint32(len(image)) <= SRAMBase+uint32(len(b.SRAM)):
		copy(b.SRAM[addr-SRAMBase:], image)
		return nil
	case addr >= FlashBase && int(addr-FlashBase)+len(image) <= b.Flash.Flash().Spec().Size():
		return b.Flash.Write(int(addr-FlashBase), image)
	default:
		return fmt.Errorf("%w: program image at %#x (%d bytes)", ErrBusFault, addr, len(image))
	}
}

// Load reads size bytes (1, 2 or 4) little-endian from addr.
func (b *Bus) Load(addr uint32, size int) (uint32, error) {
	switch {
	case b.inSRAM(addr, size):
		return leLoad(b.SRAM[addr-SRAMBase:], size), nil
	case b.inFlash(addr, size):
		off := int(addr - FlashBase)
		// Reading a page with pending combined writes observes the
		// buffered bytes (the chip serves reads from its buffer).
		if b.pendingOverlap(off, size) {
			rel := off - b.Flash.Flash().PageBase(b.wcPage)
			return leLoad(b.wcData[rel:], size), nil
		}
		buf := make([]byte, size)
		if err := b.Flash.Read(off, buf); err != nil {
			return 0, err
		}
		return leLoad(buf, size), nil
	case addr >= MMIOBase && addr < MMIOBase+mmioSize:
		return b.mmioRead(addr - MMIOBase), nil
	default:
		return 0, fmt.Errorf("%w: load %#x", ErrBusFault, addr)
	}
}

// Store writes size bytes (1, 2 or 4) little-endian to addr.
func (b *Bus) Store(addr uint32, val uint32, size int) error {
	switch {
	case b.inSRAM(addr, size):
		leStore(b.SRAM[addr-SRAMBase:], val, size)
		return nil
	case b.inFlash(addr, size):
		return b.flashStore(int(addr-FlashBase), val, size)
	case addr >= MMIOBase && addr < MMIOBase+mmioSize:
		return b.mmioWrite(addr-MMIOBase, val)
	default:
		return fmt.Errorf("%w: store %#x", ErrBusFault, addr)
	}
}

// Flush commits any pending write-combined flash page.
func (b *Bus) Flush() error {
	if b.wcPage < 0 {
		return nil
	}
	base := b.Flash.Flash().PageBase(b.wcPage)
	start, end := b.wcStart, b.wcEnd
	b.wcPage = -1
	if start >= end {
		return nil
	}
	return b.Flash.Write(base+start, b.wcData[start:end])
}

func (b *Bus) inSRAM(addr uint32, size int) bool {
	return addr >= SRAMBase && addr+uint32(size) <= SRAMBase+uint32(len(b.SRAM))
}

func (b *Bus) inFlash(addr uint32, size int) bool {
	return addr >= FlashBase && int(addr-FlashBase)+size <= b.Flash.Flash().Spec().Size()
}

// flashStore adds a store to the write-combining buffer, committing the
// previous page when the stream moves on.
func (b *Bus) flashStore(off int, val uint32, size int) error {
	dev := b.Flash.Flash()
	page := dev.PageOf(off)
	if b.wcPage >= 0 && b.wcPage != page {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	if b.wcPage < 0 {
		b.wcPage = page
		// Seed the buffer with current content so sub-page commits
		// write back unmodified neighbours faithfully.
		dev.PeekPage(page, b.wcData)
		b.wcStart, b.wcEnd = dev.Spec().PageSize, 0
	}
	rel := off - dev.PageBase(page)
	leStore(b.wcData[rel:], val, size)
	if rel < b.wcStart {
		b.wcStart = rel
	}
	if rel+size > b.wcEnd {
		b.wcEnd = rel + size
	}
	return nil
}

func (b *Bus) pendingOverlap(off, size int) bool {
	if b.wcPage < 0 {
		return false
	}
	base := b.Flash.Flash().PageBase(b.wcPage)
	return off >= base && off+size <= base+b.Flash.Flash().Spec().PageSize
}

func (b *Bus) mmioRead(off uint32) uint32 {
	switch off {
	case MMIOApproxStart:
		return b.Flash.ReadReg(core.RegApproxStart)
	case MMIOApproxEnd:
		return b.Flash.ReadReg(core.RegApproxEnd)
	case MMIOWidth:
		return b.Flash.ReadReg(core.RegWidth)
	case MMIOThreshold:
		return b.Flash.ReadReg(core.RegThreshold)
	default:
		return 0
	}
}

func (b *Bus) mmioWrite(off, val uint32) error {
	switch off {
	case MMIOApproxStart:
		return b.Flash.WriteReg(core.RegApproxStart, val)
	case MMIOApproxEnd:
		return b.Flash.WriteReg(core.RegApproxEnd, val)
	case MMIOWidth:
		return b.Flash.WriteReg(core.RegWidth, val)
	case MMIOThreshold:
		return b.Flash.WriteReg(core.RegThreshold, val)
	case MMIOFlush:
		return b.Flush()
	case MMIOConsole:
		b.Console.WriteByte(byte(val))
		return nil
	default:
		return fmt.Errorf("%w: MMIO write %#x", ErrBusFault, MMIOBase+off)
	}
}

// FlashStats returns the flash device's operation ledger.
func (b *Bus) FlashStats() flash.Stats { return b.Flash.Flash().Stats() }

func leLoad(b []byte, size int) uint32 {
	var v uint32
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint32(b[i])
	}
	return v
}

func leStore(b []byte, v uint32, size int) {
	for i := 0; i < size; i++ {
		b[i] = byte(v >> uint(8*i))
	}
}
