package mcu

import (
	"fmt"
	"strings"
)

// Disassemble renders one instruction word as assembler syntax. Branch
// targets are shown as absolute addresses computed from pc (the address of
// the instruction itself).
func Disassemble(word uint32, pc uint32) string {
	in := Decode(word)
	r := func(n int) string {
		switch n {
		case RegSP:
			return "sp"
		case RegLR:
			return "lr"
		default:
			return fmt.Sprintf("r%d", n)
		}
	}
	switch in.Op {
	case OpHalt, OpNop:
		return in.Op.String()
	case OpMovi, OpMovt:
		return fmt.Sprintf("%s %s, %d", in.Op, r(in.Rd), in.Imm)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", r(in.Rd), r(in.Rn))
	case OpAdd, OpSub, OpMul, OpAnd, OpOrr, OpEor, OpLsl, OpLsr, OpAsr:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Rn), r(in.Rm))
	case OpAddi:
		return fmt.Sprintf("addi %s, %s, %d", r(in.Rd), r(in.Rn), in.Imm)
	case OpCmp:
		return fmt.Sprintf("cmp %s, %s", r(in.Rn), r(in.Rm))
	case OpCmpi:
		return fmt.Sprintf("cmpi %s, %d", r(in.Rn), in.Imm)
	case OpB, OpBeq, OpBne, OpBlt, OpBge, OpBgt, OpBle, OpBl:
		target := int64(pc) + 4 + int64(in.Imm)*4
		return fmt.Sprintf("%s %#x", in.Op, uint32(target))
	case OpBx:
		return fmt.Sprintf("bx %s", r(in.Rn))
	case OpLdr, OpLdrh, OpLdrb, OpStr, OpStrh, OpStrb:
		if in.Imm == 0 {
			return fmt.Sprintf("%s %s, [%s]", in.Op, r(in.Rd), r(in.Rn))
		}
		return fmt.Sprintf("%s %s, [%s, %d]", in.Op, r(in.Rd), r(in.Rn), in.Imm)
	default:
		return fmt.Sprintf(".word %#08x", word)
	}
}

// DisassembleImage renders a whole little-endian image loaded at base, one
// instruction per line with addresses.
func DisassembleImage(image []byte, base uint32) string {
	var b strings.Builder
	for off := 0; off+4 <= len(image); off += 4 {
		word := leLoad(image[off:], 4)
		fmt.Fprintf(&b, "%08x:  %08x  %s\n", base+uint32(off), word, Disassemble(word, base+uint32(off)))
	}
	return b.String()
}
