package mcu

import (
	"errors"
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/energy"
)

// Register conventions.
const (
	RegSP = 13
	RegLR = 14
)

// Cycle costs. The EM0 follows the M0+'s simple pipeline: one cycle per
// ALU operation, an extra cycle for taken branches, two cycles for memory
// accesses (bus wait states for slow devices are charged by the device
// model's latency, not here).
const (
	cyclesALU    = 1
	cyclesBranch = 2
	cyclesMem    = 2
)

// ErrHalted is returned when stepping a halted CPU.
var ErrHalted = errors.New("mcu: cpu halted")

// ErrRunaway is returned by Run when the step budget is exhausted.
var ErrRunaway = errors.New("mcu: step budget exhausted")

// CPU is one EM0 core attached to a bus.
type CPU struct {
	R      [16]uint32
	PC     uint32
	Cycles uint64
	Halted bool

	Bus   *Bus
	Model energy.CPUModel

	cmpA, cmpB int32
}

// NewCPU builds a core starting at entry, with the M0+ power model.
func NewCPU(bus *Bus, entry uint32) *CPU {
	return &CPU{Bus: bus, PC: entry, Model: energy.CortexM0Plus()}
}

// Energy returns the CPU energy consumed so far (excludes flash energy,
// which the flash device ledger tracks).
func (c *CPU) Energy() energy.Energy { return c.Model.EnergyFor(c.Cycles) }

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.Halted {
		return ErrHalted
	}
	word, err := c.Bus.Load(c.PC, 4)
	if err != nil {
		return fmt.Errorf("fetch at %#x: %w", c.PC, err)
	}
	in := Decode(word)
	next := c.PC + 4
	cycles := uint64(cyclesALU)

	switch in.Op {
	case OpHalt:
		c.Halted = true
		// Leaving the core flushes any pending buffered flash write.
		if err := c.Bus.Flush(); err != nil {
			return err
		}
	case OpNop:
	case OpMovi:
		c.R[in.Rd] = uint32(in.Imm)
	case OpMovt:
		c.R[in.Rd] = c.R[in.Rd]&0xFFFF | uint32(in.Imm)<<16
	case OpMov:
		c.R[in.Rd] = c.R[in.Rn]
	case OpAdd:
		c.R[in.Rd] = c.R[in.Rn] + c.R[in.Rm]
	case OpSub:
		c.R[in.Rd] = c.R[in.Rn] - c.R[in.Rm]
	case OpMul:
		c.R[in.Rd] = c.R[in.Rn] * c.R[in.Rm]
	case OpAnd:
		c.R[in.Rd] = c.R[in.Rn] & c.R[in.Rm]
	case OpOrr:
		c.R[in.Rd] = c.R[in.Rn] | c.R[in.Rm]
	case OpEor:
		c.R[in.Rd] = c.R[in.Rn] ^ c.R[in.Rm]
	case OpLsl:
		c.R[in.Rd] = c.R[in.Rn] << (c.R[in.Rm] & 31)
	case OpLsr:
		c.R[in.Rd] = c.R[in.Rn] >> (c.R[in.Rm] & 31)
	case OpAsr:
		c.R[in.Rd] = uint32(int32(c.R[in.Rn]) >> (c.R[in.Rm] & 31))
	case OpAddi:
		c.R[in.Rd] = c.R[in.Rn] + uint32(in.Imm)
	case OpCmp:
		c.cmpA, c.cmpB = int32(c.R[in.Rn]), int32(c.R[in.Rm])
	case OpCmpi:
		c.cmpA, c.cmpB = int32(c.R[in.Rn]), in.Imm
	case OpB, OpBeq, OpBne, OpBlt, OpBge, OpBgt, OpBle, OpBl:
		if c.takeBranch(in.Op) {
			if in.Op == OpBl {
				c.R[RegLR] = next
			}
			next = uint32(int64(c.PC) + 4 + int64(in.Imm)*4)
			cycles = cyclesBranch
		}
	case OpBx:
		next = c.R[in.Rn]
		cycles = cyclesBranch
	case OpLdr, OpLdrh, OpLdrb:
		size := map[Op]int{OpLdr: 4, OpLdrh: 2, OpLdrb: 1}[in.Op]
		v, err := c.Bus.Load(c.R[in.Rn]+uint32(in.Imm), size)
		if err != nil {
			return fmt.Errorf("pc %#x: %w", c.PC, err)
		}
		c.R[in.Rd] = v
		cycles = cyclesMem
	case OpStr, OpStrh, OpStrb:
		size := map[Op]int{OpStr: 4, OpStrh: 2, OpStrb: 1}[in.Op]
		if err := c.Bus.Store(c.R[in.Rn]+uint32(in.Imm), c.R[in.Rd], size); err != nil {
			return fmt.Errorf("pc %#x: %w", c.PC, err)
		}
		cycles = cyclesMem
	default:
		return fmt.Errorf("mcu: illegal instruction %#x at %#x", word, c.PC)
	}

	c.PC = next
	c.Cycles += cycles
	return nil
}

func (c *CPU) takeBranch(op Op) bool {
	switch op {
	case OpB, OpBl:
		return true
	case OpBeq:
		return c.cmpA == c.cmpB
	case OpBne:
		return c.cmpA != c.cmpB
	case OpBlt:
		return c.cmpA < c.cmpB
	case OpBge:
		return c.cmpA >= c.cmpB
	case OpBgt:
		return c.cmpA > c.cmpB
	case OpBle:
		return c.cmpA <= c.cmpB
	default:
		return false
	}
}

// Run steps the CPU until it halts or maxSteps instructions have executed.
func (c *CPU) Run(maxSteps int) error {
	for i := 0; i < maxSteps; i++ {
		if c.Halted {
			return nil
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	if c.Halted {
		return nil
	}
	return fmt.Errorf("%w after %d steps at pc %#x", ErrRunaway, maxSteps, c.PC)
}
