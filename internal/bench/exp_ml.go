package bench

import (
	"fmt"

	"github.com/flipbit-sim/flipbit/internal/core"
	"github.com/flipbit-sim/flipbit/internal/flash"
	"github.com/flipbit-sim/flipbit/internal/nn"
)

// mlRun executes flash-backed inference for one model at one threshold and
// returns accuracy plus flash statistics.
func mlRun(m *nn.Model, threshold float64, limit int) (float64, flash.Stats, error) {
	dev := core.MustNewDevice(flash.DefaultSpec())
	calib := m.Set.TrainX
	if len(calib) > 20 {
		calib = calib[:20]
	}
	runner, err := nn.NewFlashRunner(m.Net, dev, calib)
	if err != nil {
		return 0, flash.Stats{}, err
	}
	dev.SetThreshold(threshold)
	acc, err := runner.Evaluate(m.Set, limit)
	if err != nil {
		return 0, flash.Stats{}, err
	}
	return acc, dev.Flash().Stats(), nil
}

func mlLimit(cfg Config) int {
	if cfg.Quick {
		return 32
	}
	return 96
}

// tuneThreshold applies the paper's procedure (§V-A): probe the decade
// ladder 0.1, 1, 10, 100 to bracket the useful range, then sweep inside it,
// keeping the highest-saving threshold whose accuracy loss stays within
// maxLoss of the baseline.
func tuneThreshold(m *nn.Model, baseAcc float64, maxLoss float64, limit int) (float64, error) {
	best := 0.0
	bestSavings := -1.0
	var baseEnergy float64
	{
		_, st, err := mlRun(m, 0, limit)
		if err != nil {
			return 0, err
		}
		baseEnergy = float64(st.Energy)
	}
	try := func(thr float64) error {
		acc, st, err := mlRun(m, thr, limit)
		if err != nil {
			return err
		}
		if acc < baseAcc-maxLoss {
			return nil
		}
		if savings := 1 - float64(st.Energy)/baseEnergy; savings > bestSavings {
			best, bestSavings = thr, savings
		}
		return nil
	}
	// Decade ladder, then a linear sweep between the last passing decade
	// and the next one.
	lastPass := 0.0
	for _, thr := range []float64{0.1, 1, 10, 100} {
		acc, _, err := mlRun(m, thr, limit)
		if err != nil {
			return 0, err
		}
		if acc >= baseAcc-maxLoss {
			lastPass = thr
		}
		if err := try(thr); err != nil {
			return 0, err
		}
	}
	lo := lastPass
	if lo == 0 {
		lo = 0.1
	}
	for i := 1; i <= 8; i++ {
		if err := try(lo + lo*float64(i)); err != nil { // lo·(2..9)
			return 0, err
		}
	}
	return best, nil
}

// Fig12 reports per-model energy reduction and accuracy at per-model tuned
// thresholds (accuracy loss budget 1%, as in the paper's headline claim).
func Fig12(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "ML energy reduction and accuracy at tuned thresholds [Fig. 12]",
		Columns: []string{"model", "threshold", "baseline acc", "FlipBit acc", "energy reduction", "erases base→fb"},
	}
	limit := mlLimit(cfg)
	type fig12Row struct {
		thr, baseAcc, acc, red float64
		baseErases, fbErases   uint64
	}
	names := nn.ModelNames()
	// Models are independent: each run owns a fresh device, so the suite
	// fans out one model per worker.
	rows, err := mapConcurrent(names, func(name string) (fig12Row, error) {
		m := nn.TrainedModel(name)
		baseAcc, baseStats, err := mlRun(m, 0, limit)
		if err != nil {
			return fig12Row{}, err
		}
		thr, err := tuneThreshold(m, baseAcc, 0.01, limit)
		if err != nil {
			return fig12Row{}, err
		}
		acc, st, err := mlRun(m, thr, limit)
		if err != nil {
			return fig12Row{}, err
		}
		red := 1 - float64(st.Energy)/float64(baseStats.Energy)
		return fig12Row{thr, baseAcc, acc, red, baseStats.Erases, st.Erases}, nil
	})
	if err != nil {
		return nil, err
	}
	var reds []float64
	for i, name := range names {
		r := rows[i]
		reds = append(reds, r.red)
		t.AddRow(name, fmt.Sprintf("%g", r.thr), f2(r.baseAcc), f2(r.acc), pct(r.red),
			fmt.Sprintf("%d→%d", r.baseErases, r.fbErases))
	}
	t.AddRow("MEAN", "", "", "", pct(mean(reds)), "")
	t.Notes = append(t.Notes,
		"paper: 39% mean (up to 71%) energy reduction at ≤1% accuracy loss",
		"thresholds tuned by the paper's decade-ladder-then-sweep procedure (§V-A)")
	return t, nil
}

// Fig15 sweeps the threshold for every model.
func Fig15(cfg Config) (*Table, error) {
	thresholds := []float64{0.5, 1, 2, 4, 8, 16, 32}
	if cfg.Quick {
		thresholds = []float64{1, 4, 16}
	}
	t := &Table{
		ID:      "fig15",
		Title:   "ML threshold sweep: energy reduction and accuracy loss [Fig. 15]",
		Columns: []string{"model", "threshold", "energy reduction", "accuracy loss"},
	}
	limit := mlLimit(cfg)
	type sweepPoint struct {
		red, loss float64
	}
	names := nn.ModelNames()
	sweeps, err := mapConcurrent(names, func(name string) ([]sweepPoint, error) {
		m := nn.TrainedModel(name)
		baseAcc, baseStats, err := mlRun(m, 0, limit)
		if err != nil {
			return nil, err
		}
		points := make([]sweepPoint, 0, len(thresholds))
		for _, thr := range thresholds {
			acc, st, err := mlRun(m, thr, limit)
			if err != nil {
				return nil, err
			}
			red := 1 - float64(st.Energy)/float64(baseStats.Energy)
			points = append(points, sweepPoint{red, baseAcc - acc})
		}
		return points, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		for j, thr := range thresholds {
			p := sweeps[i][j]
			t.AddRow(name, fmt.Sprintf("%g", thr), pct(p.red), pct(p.loss))
		}
	}
	t.Notes = append(t.Notes,
		"paper: savings rise with threshold at growing accuracy cost; DNN savings climb less steeply than video (§V-A)")
	return t, nil
}

// Fig18 reports the lifetime increase for the ML workloads at the Fig. 12
// operating points.
func Fig18(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig18",
		Title:   "flash lifetime increase on ML workloads [Fig. 18]",
		Columns: []string{"model", "threshold", "baseline erases", "FlipBit erases", "lifetime increase"},
	}
	limit := mlLimit(cfg)
	type fig18Row struct {
		thr, inc             float64
		baseErases, fbErases uint64
	}
	names := nn.ModelNames()
	rows, err := mapConcurrent(names, func(name string) (fig18Row, error) {
		m := nn.TrainedModel(name)
		baseAcc, baseStats, err := mlRun(m, 0, limit)
		if err != nil {
			return fig18Row{}, err
		}
		thr, err := tuneThreshold(m, baseAcc, 0.01, limit)
		if err != nil {
			return fig18Row{}, err
		}
		_, st, err := mlRun(m, thr, limit)
		if err != nil {
			return fig18Row{}, err
		}
		inc := 0.0
		if st.Erases > 0 {
			inc = float64(baseStats.Erases)/float64(st.Erases) - 1
		} else if baseStats.Erases > 0 {
			inc = float64(baseStats.Erases)
		}
		return fig18Row{thr, inc, baseStats.Erases, st.Erases}, nil
	})
	if err != nil {
		return nil, err
	}
	var incs []float64
	for i, name := range names {
		r := rows[i]
		incs = append(incs, 1+r.inc)
		t.AddRow(name, fmt.Sprintf("%g", r.thr),
			fmt.Sprintf("%d", r.baseErases), fmt.Sprintf("%d", r.fbErases), pct(r.inc))
	}
	t.AddRow("GEOMEAN", "", "", "", pct(geomean(incs)-1))
	t.Notes = append(t.Notes, "paper geomean: +44% for the ML benchmarks (§V-C)")
	return t, nil
}
